(* Small supporting modules: Item ordering, Stats arithmetic, Result_set
   union, and engine behaviour on degenerate inputs. *)

open Xaos_core

let item = Alcotest.testable Item.pp Item.equal

let it id tag level = Item.make ~id ~tag ~level

let test_item_order_and_dedup () =
  let shuffled = [ it 5 "c" 2; it 1 "a" 1; it 5 "c" 2; it 3 "b" 2; it 1 "a" 1 ] in
  Alcotest.check (Alcotest.list item) "sorted unique"
    [ it 1 "a" 1; it 3 "b" 2; it 5 "c" 2 ]
    (Item.sort_dedup shuffled);
  Alcotest.check (Alcotest.list item) "empty" [] (Item.sort_dedup []);
  Alcotest.check (Alcotest.list item) "singleton" [ it 2 "x" 1 ]
    (Item.sort_dedup [ it 2 "x" 1 ])

let test_item_of_element () =
  let doc = Xaos_xml.Dom.of_string "<a><b/></a>" in
  match Xaos_xml.Dom.element_by_id doc 2 with
  | Some e ->
    Alcotest.check item "conversion" (it 2 "b" 2) (Item.of_element e)
  | None -> Alcotest.fail "missing element"

let test_stats_add () =
  let a = Stats.create () and b = Stats.create () in
  a.Stats.elements_total <- 10;
  a.Stats.elements_stored <- 3;
  a.Stats.max_depth <- 5;
  b.Stats.elements_total <- 20;
  b.Stats.elements_discarded <- 20;
  b.Stats.max_depth <- 2;
  let sum = Stats.add a b in
  Alcotest.(check int) "total" 30 sum.Stats.elements_total;
  Alcotest.(check int) "stored" 3 sum.Stats.elements_stored;
  Alcotest.(check int) "discarded" 20 sum.Stats.elements_discarded;
  Alcotest.(check int) "max of depths" 5 sum.Stats.max_depth

let test_discarded_fraction () =
  let s = Stats.create () in
  Alcotest.(check (float 1e-9)) "empty" 0. (Stats.discarded_fraction s);
  s.Stats.elements_total <- 4;
  s.Stats.elements_discarded <- 3;
  Alcotest.(check (float 1e-9)) "3/4" 0.75 (Stats.discarded_fraction s)

let test_result_set_union () =
  let a =
    { Result_set.items = [ it 1 "a" 1; it 3 "b" 2 ]; tuples = None;
      matching_count = Some 2 }
  in
  let b =
    { Result_set.items = [ it 3 "b" 2; it 5 "c" 2 ]; tuples = None;
      matching_count = Some 1 }
  in
  let u = Result_set.union a b in
  Alcotest.check (Alcotest.list item) "merged"
    [ it 1 "a" 1; it 3 "b" 2; it 5 "c" 2 ]
    u.Result_set.items;
  Alcotest.(check (option int)) "counts sum" (Some 3) u.Result_set.matching_count;
  let c = { b with Result_set.matching_count = None } in
  Alcotest.(check (option int)) "unknown poisons" None
    (Result_set.union a c).Result_set.matching_count

let test_engine_empty_stream () =
  (* no events at all: legal through the direct API; nothing matches *)
  let dag =
    Xaos_xpath.Xdag.of_xtree
      (Xaos_xpath.Xtree.of_path (Xaos_xpath.Parser.parse "/a"))
  in
  let engine = Engine.create dag in
  let r = Engine.finish engine in
  Alcotest.(check int) "empty" 0 (List.length r.Result_set.items)

let test_engine_finish_twice () =
  let dag =
    Xaos_xpath.Xdag.of_xtree
      (Xaos_xpath.Xtree.of_path (Xaos_xpath.Parser.parse "//b"))
  in
  let engine = Engine.create dag in
  List.iter (Engine.feed engine) (Xaos_xml.Sax.events_of_string "<a><b/></a>");
  let r1 = Engine.finish engine in
  let r2 = Engine.finish engine in
  Alcotest.(check int) "same" (List.length r1.Result_set.items)
    (List.length r2.Result_set.items)

let test_engine_max_depth_stat () =
  let q = Query.compile_exn "//x" in
  let _, stats = Query.run_string_with_stats q "<a><b><c><d/></c></b></a>" in
  Alcotest.(check int) "depth 4" 4 stats.Stats.max_depth

let test_very_deep_chain () =
  (* 2000 levels of nesting through the whole stack: parser, engine,
     resolution *)
  let n = 2000 in
  let buf = Buffer.create (n * 8) in
  for _ = 1 to n do
    Buffer.add_string buf "<d>"
  done;
  Buffer.add_string buf "<leaf/>";
  for _ = 1 to n do
    Buffer.add_string buf "</d>"
  done;
  let q = Query.compile_exn "//leaf/ancestor::d" in
  let r = Query.run_string q (Buffer.contents buf) in
  Alcotest.(check int) "all ancestors" n (List.length r.Result_set.items)

let test_many_siblings () =
  let n = 5000 in
  let buf = Buffer.create (n * 8) in
  Buffer.add_string buf "<r>";
  for i = 1 to n do
    Buffer.add_string buf
      (if i mod 2 = 0 then "<x><y/></x>" else "<x/>")
  done;
  Buffer.add_string buf "</r>";
  let q = Query.compile_exn "//x[y]" in
  let r = Query.run_string q (Buffer.contents buf) in
  Alcotest.(check int) "half match" (n / 2) (List.length r.Result_set.items)

let test_looking_for_without_filter () =
  (* with the relevance filter off, the derived looking-for set is still
     computed from the (now unfiltered) open stacks without crashing *)
  let config = { Engine.default_config with relevance_filter = false } in
  let dag =
    Xaos_xpath.Xdag.of_xtree
      (Xaos_xpath.Xtree.of_path
         (Xaos_xpath.Parser.parse "//a/ancestor::b"))
  in
  let engine = Engine.create ~config dag in
  Engine.start_element engine ~sym:(Xaos_xml.Symbol.intern "a") ~level:1 ();
  let entries = Engine.looking_for engine in
  Alcotest.(check bool) "derivable" true (List.length entries >= 1);
  Engine.end_element engine;
  ignore (Engine.finish engine)

let suite =
  [
    ("item order and dedup", `Quick, test_item_order_and_dedup);
    ("item of element", `Quick, test_item_of_element);
    ("stats add", `Quick, test_stats_add);
    ("discarded fraction", `Quick, test_discarded_fraction);
    ("result set union", `Quick, test_result_set_union);
    ("engine empty stream", `Quick, test_engine_empty_stream);
    ("finish twice", `Quick, test_engine_finish_twice);
    ("max depth stat", `Quick, test_engine_max_depth_stat);
    ("very deep chain", `Quick, test_very_deep_chain);
    ("many siblings", `Quick, test_many_siblings);
    ("looking-for without filter", `Quick, test_looking_for_without_filter);
  ]
