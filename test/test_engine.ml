(* The χαος engine against the paper's full worked example (Figure 2
   document, Figure 3 expression, Table 2 trace, Figure 4 result), plus
   targeted behavioural tests: optimistic propagation and undo, recursive
   documents, eager emission, configuration ablations. *)

open Xaos_core
module Parser = Xaos_xpath.Parser
module Xtree = Xaos_xpath.Xtree
module Xdag = Xaos_xpath.Xdag
module Sax = Xaos_xml.Sax

let fig2 = "<X><Y><W/><Z><V/><V/><W><W/></W></Z><U/></Y><Y><Z><W/></Z><U/></Y></X>"
let fig3 = "/descendant::Y[child::U]/descendant::W[ancestor::Z/child::V]"

let item = Alcotest.testable Item.pp Item.equal

let items_of_run ?config query doc =
  let q = Query.compile_exn ?config query in
  (Query.run_string q doc).Result_set.items

let check_result ?config msg expected query doc =
  let got = items_of_run ?config query doc in
  Alcotest.check (Alcotest.list item) msg expected got

let it id tag level = Item.make ~id ~tag ~level

(* ------------------------------------------------------------------ *)
(* Paper walk-through                                                  *)
(* ------------------------------------------------------------------ *)

let test_paper_result () =
  (* Figure 4: Solution = {W7,4 , W8,5} *)
  check_result "paper solution" [ it 7 "W" 4; it 8 "W" 5 ] fig3 fig2

let test_paper_matching_count () =
  (* Figure 4 lists exactly 4 total matchings at Root. The count requires
     full pointer slots (Section 5.1 counters discard it). *)
  let config = { Engine.default_config with boolean_subtrees = false } in
  let q = Query.compile_exn ~config fig3 in
  let r = Query.run_string q fig2 in
  Alcotest.(check (option int)) "4 total matchings" (Some 4)
    r.Result_set.matching_count

(* Table 2: the looking-for set after every event. The paper's step 1 is
   the virtual Root start (our engine's initial state); steps 2-27 are the
   real element events; step 28 (Root end) is the finished engine.

   Note two internal inconsistencies in the paper's table, documented in
   EXPERIMENTS.md: the "Matches" column of step 19 says (Z,inf) where the
   element matches Y, and step 25 omits (U,3) although the situation is
   identical to step 17 (Y 10,2 is still open at level 2). We assert the
   self-consistent trace. *)
let table2_expected =
  (* x-node ids: 0 Root, 1 Y, 2 U, 3 W, 4 Z, 5 V *)
  let y = (1, Engine.Any)
  and z = (4, Engine.Any)
  and w = (3, Engine.Any)
  and u l = (2, Engine.Exact l)
  and v l = (5, Engine.Exact l) in
  [
    (* after event #: expected looking-for set, sorted by x-node id *)
    [ y; z ] (* 2  S:X1 *);
    [ y; u 3; z ] (* 3  S:Y2 *);
    [ y; z ] (* 4  S:W3 *);
    [ y; u 3; z ] (* 5  E:W3 *);
    [ y; w; z; v 4 ] (* 6  S:Z4 *);
    [ y; w; z ] (* 7  S:V5 *);
    [ y; w; z; v 4 ] (* 8  E:V5 *);
    [ y; w; z ] (* 9  S:V6 *);
    [ y; w; z; v 4 ] (* 10 E:V6 *);
    [ y; w; z ] (* 11 S:W7 *);
    [ y; w; z ] (* 12 S:W8 *);
    [ y; w; z ] (* 13 E:W8 *);
    [ y; w; z; v 4 ] (* 14 E:W7 *);
    [ y; u 3; z ] (* 15 E:Z4 *);
    [ y; z ] (* 16 S:U9 *);
    [ y; u 3; z ] (* 17 E:U9 *);
    [ y; z ] (* 18 E:Y2 *);
    [ y; u 3; z ] (* 19 S:Y10 *);
    [ y; w; z; v 4 ] (* 20 S:Z11 *);
    [ y; w; z ] (* 21 S:W12 *);
    [ y; w; z; v 4 ] (* 22 E:W12 *);
    [ y; u 3; z ] (* 23 E:Z11 *);
    [ y; z ] (* 24 S:U13 *);
    [ y; u 3; z ] (* 25 E:U13  (paper omits (U,3) here; see note) *);
    [ y; z ] (* 26 E:Y10 *);
    [ y; z ] (* 27 E:X1 *);
  ]

let pp_req ppf = function
  | Engine.Exact l -> Format.fprintf ppf "%d" l
  | Engine.Any -> Format.pp_print_string ppf "inf"

let lf_entry =
  Alcotest.testable
    (fun ppf (v, req) -> Format.fprintf ppf "(%d,%a)" v pp_req req)
    ( = )

let test_table2_trace () =
  let dag = Xdag.of_xtree (Xtree.of_path (Parser.parse fig3)) in
  let engine = Engine.create dag in
  (* step 1 (S:Root): initial state *)
  Alcotest.check
    (Alcotest.list lf_entry)
    "step 1" [ (1, Engine.Any); (4, Engine.Any) ]
    (Engine.looking_for engine);
  let events = Sax.events_of_string fig2 in
  List.iteri
    (fun i ev ->
      Engine.feed engine ev;
      let expected = List.nth table2_expected i in
      Alcotest.check
        (Alcotest.list lf_entry)
        (Printf.sprintf "step %d" (i + 2))
        expected (Engine.looking_for engine))
    events;
  let result = Engine.finish engine in
  (* step 28 (E:Root): {(Root, 0)} *)
  Alcotest.check
    (Alcotest.list lf_entry)
    "step 28" [ (0, Engine.Exact 0) ]
    (Engine.looking_for engine);
  Alcotest.check (Alcotest.list item) "solution"
    [ it 7 "W" 4; it 8 "W" 5 ]
    result.Result_set.items

let test_paper_discard () =
  (* X1 and W3 are the two discarded elements in the walk-through. *)
  let q = Query.compile_exn fig3 in
  let _, stats = Query.run_string_with_stats q fig2 in
  Alcotest.(check int) "total" 13 stats.Stats.elements_total;
  Alcotest.(check int) "discarded" 2 stats.Stats.elements_discarded;
  Alcotest.(check int) "stored" 11 stats.Stats.elements_stored

let test_paper_undo_happens () =
  (* Steps 22-23: M(Z11) is optimistically assumed at W12's end and undone
     at Z11's end. *)
  let q = Query.compile_exn fig3 in
  let _, stats = Query.run_string_with_stats q fig2 in
  Alcotest.(check bool) "undos occurred" true (stats.Stats.undos > 0)

(* ------------------------------------------------------------------ *)
(* Axis semantics                                                      *)
(* ------------------------------------------------------------------ *)

let doc1 = "<a><b><c/><d><c/></d></b><c/></a>"
(* ids: a=1 b=2 c=3 d=4 c=5 c=6 *)

let test_child () =
  check_result "child" [ it 2 "b" 2 ] "/a/b" doc1;
  check_result "child two deep" [ it 3 "c" 3 ] "/a/b/c" doc1;
  check_result "no match" [] "/b" doc1

let test_descendant () =
  check_result "descendant" [ it 3 "c" 3; it 5 "c" 4; it 6 "c" 2 ] "//c" doc1;
  check_result "descendant below b" [ it 3 "c" 3; it 5 "c" 4 ] "/a/b//c" doc1

let test_parent () =
  check_result "parent" [ it 1 "a" 1; it 2 "b" 2; it 4 "d" 3 ] "//c/.." doc1;
  check_result "parent with test" [ it 4 "d" 3 ] "//c/parent::d" doc1

let test_ancestor () =
  check_result "ancestor" [ it 1 "a" 1; it 2 "b" 2; it 4 "d" 3 ]
    "//c/ancestor::*" doc1;
  check_result "ancestor named" [ it 2 "b" 2 ] "//c/ancestor::b" doc1

let test_self () =
  check_result "self narrowing" [ it 3 "c" 3; it 5 "c" 4; it 6 "c" 2 ]
    "//*[self::c]" doc1;
  check_result "self mismatch" [] "//c/self::d" doc1

let test_descendant_or_self () =
  check_result "dos" [ it 2 "b" 2; it 3 "c" 3; it 4 "d" 3; it 5 "c" 4 ]
    "/a/b/descendant-or-self::*" doc1

let test_ancestor_or_self () =
  check_result "aos"
    [ it 2 "b" 2; it 3 "c" 3; it 4 "d" 3; it 5 "c" 4; it 6 "c" 2 ]
    "//c/ancestor-or-self::*[ancestor::a]" doc1

let test_predicates_restrict () =
  check_result "predicate keeps d-parents" [ it 4 "d" 3 ] "//d[c]" doc1;
  check_result "predicate on ancestor" [ it 5 "c" 4 ] "//c[ancestor::d]" doc1;
  check_result "two predicates" [ it 2 "b" 2 ] "//b[c][d]" doc1

let test_wildcard () =
  check_result "wildcard step" [ it 3 "c" 3; it 6 "c" 2 ]
    "/a/*/c/ancestor::*/c" doc1

(* ------------------------------------------------------------------ *)
(* Optimism and undo                                                   *)
(* ------------------------------------------------------------------ *)

let test_optimism_refuted () =
  (* W closes before we know whether its Z ancestor will acquire a V
     child. Here it never does: the optimistic propagation must be undone
     and the result must be empty. *)
  check_result "undone optimism" []
    "//W[ancestor::Z/child::V]" "<Z><W/><U/></Z>";
  (* ... and here the V arrives after the W closed: the optimism is
     confirmed. *)
  check_result "confirmed optimism" [ it 2 "W" 2 ]
    "//W[ancestor::Z/child::V]" "<Z><W/><V/></Z>"

let test_undo_cascade () =
  (* The refutation of an inner structure must cascade: Y's satisfaction
     depended on W which depended optimistically on Z[V]. *)
  check_result "cascading undo" []
    "//Y[descendant::W[ancestor::Z/child::V]]" "<Y><Z><W/></Z></Y>";
  check_result "cascade control" [ it 1 "Y" 1 ]
    "//Y[descendant::W[ancestor::Z/child::V]]" "<Y><Z><W/><V/></Z></Y>"

let test_parent_axis_optimism () =
  check_result "parent pending at child end" [ it 2 "w" 2 ]
    "//w[../v]" "<p><w/><v/></p>";
  check_result "parent refuted" [] "//w[../v]" "<p><w/><u/></p>"

(* ------------------------------------------------------------------ *)
(* Recursive documents                                                 *)
(* ------------------------------------------------------------------ *)

let test_recursive_document () =
  let doc = "<a><a><b/><a><b/></a></a></a>" in
  (* ids: a1 a2 b3 a4 b5 *)
  check_result "nested a with b child"
    [ it 2 "a" 2; it 4 "a" 3 ]
    "//a[b]" doc;
  check_result "a under a" [ it 2 "a" 2; it 4 "a" 3 ] "//a//a" doc;
  check_result "b with two a ancestors"
    [ it 3 "b" 3; it 5 "b" 4 ]
    "//a//a/b" doc;
  check_result "triple nesting" [ it 4 "a" 3 ] "/a/a/a" doc

let test_recursive_ancestors () =
  let doc = "<a><a><c/></a><c/></a>" in
  (* ids: a1 a2 c3 c4 *)
  check_result "ancestor a of c" [ it 1 "a" 1; it 2 "a" 2 ]
    "//c/ancestor::a" doc

(* ------------------------------------------------------------------ *)
(* Configurations                                                      *)
(* ------------------------------------------------------------------ *)

let configs =
  [
    ("default", Engine.default_config);
    ("no boolean", { Engine.default_config with boolean_subtrees = false });
    ("no filter", { Engine.default_config with relevance_filter = false });
    ("eager", { Engine.default_config with emission = Engine.Eager });
    ( "no filter, no boolean",
      { Engine.default_config with relevance_filter = false; boolean_subtrees = false } );
  ]

let test_configs_agree () =
  let cases =
    [ (fig3, fig2); ("//a[b]", "<a><a><b/></a></a>"); ("//c", doc1);
      ("/a/b//c[ancestor::b]", doc1); ("//W[ancestor::Z/child::V]", fig2) ]
  in
  List.iter
    (fun (query, doc) ->
      let reference = items_of_run query doc in
      List.iter
        (fun (name, config) ->
          let got = items_of_run ~config query doc in
          Alcotest.check (Alcotest.list item)
            (Printf.sprintf "%s on %s" name query)
            reference got)
        configs)
    cases

let test_eager_mode_activates () =
  let check_eager query expected =
    let config = { Engine.default_config with emission = Engine.Eager } in
    let dag =
      Xdag.of_xtree (Xtree.of_path (Parser.parse query))
    in
    let engine = Engine.create ~config dag in
    Alcotest.(check bool) query expected (Engine.emits_eagerly engine)
  in
  check_eager "/a/b//c" true;
  check_eager "//c[d]" true;
  (* predicate on a chain node other than the output: not eager *)
  check_eager "/a[x]/b" false;
  (* backward axis: not eager *)
  check_eager "//c/ancestor::a" false;
  (* multiple outputs: not eager *)
  check_eager "/$a/$b" false

let test_eager_streams_matches () =
  let config = { Engine.default_config with emission = Engine.Eager } in
  let seen = ref [] in
  let q = Query.compile_exn ~config "//b" in
  let run = Query.start ~on_match:(fun i -> seen := i :: !seen) q in
  let events = Sax.events_of_string "<a><b/><c><b/></c></a>" in
  (* the first match must be reported before the document ends *)
  let rec feed_until_first = function
    | [] -> Alcotest.fail "no match reported"
    | ev :: rest ->
      Query.feed run ev;
      if !seen = [] then feed_until_first rest else rest
  in
  let remaining = feed_until_first events in
  Alcotest.(check bool) "reported mid-stream" true (remaining <> []);
  List.iter (Query.feed run) remaining;
  let r = Query.finish run in
  Alcotest.(check int) "both matches" 2 (List.length r.Result_set.items);
  Alcotest.(check int) "both streamed" 2 (List.length !seen)

let test_multiple_matches_same_element_dedup () =
  (* b(id 3) is reachable both via a/b and via //b: still reported once *)
  check_result "dedup" [ it 2 "b" 2; it 3 "b" 3 ] "//b" "<a><b><b/></b></a>"

(* ------------------------------------------------------------------ *)
(* Earliest-decision emission (PR 8)                                   *)
(* ------------------------------------------------------------------ *)

let earliest_config = { Engine.default_config with emission = Engine.Earliest }

(* Run [query] in earliest mode, returning (streamed items in callback
   order, final result-set items). The two must always agree. *)
let run_earliest ?budget query doc =
  let q = Query.compile_exn ~config:earliest_config query in
  let streamed = ref [] in
  let run =
    Query.start ?budget ~on_match:(fun i -> streamed := i :: !streamed) q
  in
  List.iter (Query.feed run) (Sax.events_of_string doc);
  let r = Query.finish run in
  (List.rev !streamed, r.Result_set.items)

let test_earliest_matches_deferred () =
  (* the tentpole differential: earliest mode works for every expression
     — backward axes, predicates, disjunctions — and both its streamed
     sequence and its final result set are byte-identical to deferred *)
  List.iter
    (fun (query, doc) ->
      let deferred = items_of_run query doc in
      let streamed, final = run_earliest query doc in
      Alcotest.check (Alcotest.list item) (query ^ ": final") deferred final;
      Alcotest.check (Alcotest.list item)
        (query ^ ": streamed") deferred streamed)
    [ (fig3, fig2); ("//W[ancestor::Z]", fig2);
      ("//W[ancestor::Z/child::V]", fig2); ("//c", doc1);
      ("/a/b//c[ancestor::b]", doc1); ("//b/ancestor::a", doc1);
      ("//a[b]", "<a><a><b/></a></a>");
      ("//x[a or b]", "<r><x><a/></x><x><b/></x><x><c/></x></r>") ]

let test_earliest_streams_mid_document () =
  (* decision-point delivery: //a//b's first match is certain at its own
     end event — it must come through on_match with most of the document
     still unread, not at the end-of-run flush *)
  let seen = ref [] in
  let q = Query.compile_exn ~config:earliest_config "//a//b" in
  let run = Query.start ~on_match:(fun i -> seen := i :: !seen) q in
  let events = Sax.events_of_string "<r><a><b/><c/><b/></a><d/><d/></r>" in
  let rec feed_until_first = function
    | [] -> Alcotest.fail "no match reported mid-stream"
    | ev :: rest ->
      Query.feed run ev;
      if !seen = [] then feed_until_first rest else rest
  in
  let remaining = feed_until_first events in
  Alcotest.(check bool)
    "reported well before the end" true
    (List.length remaining > List.length events / 2);
  List.iter (Query.feed run) remaining;
  let r = Query.finish run in
  Alcotest.(check int) "both matches" 2 (List.length r.Result_set.items);
  Alcotest.(check int) "both streamed" 2 (List.length !seen)

let test_earliest_dedup_across_disjuncts () =
  (* 'or' expands to one x-dag per disjunct; an element satisfying both
     must reach the callback exactly once — the same dedup the deferred
     union applies at finish *)
  let streamed, final = run_earliest "//x[a or b]" "<r><x><a/><b/></x></r>" in
  Alcotest.(check int) "one result" 1 (List.length final);
  Alcotest.check (Alcotest.list item) "streamed exactly once" final streamed

let test_earliest_finish_partial () =
  (* truncated stream: whatever was certain at the cut arrives through
     on_match exactly once, and agrees with the partial result set *)
  let q = Query.compile_exn ~config:earliest_config "//a//b" in
  let events =
    Sax.events_of_string "<r><a><b/><b/><a><b/></a></a><b/></r>"
  in
  let n = List.length events in
  List.iter
    (fun k ->
      let streamed = ref [] in
      let run =
        Query.start ~on_match:(fun i -> streamed := i :: !streamed) q
      in
      List.iteri (fun i ev -> if i < k then Query.feed run ev) events;
      let partial = Query.finish_partial run in
      let ids l = List.map (fun (i : Item.t) -> i.Item.id) l in
      Alcotest.(check (list int))
        (Printf.sprintf "cut at %d" k)
        (ids partial.Result_set.items)
        (ids (List.rev !streamed)))
    [ n / 4; n / 2; 3 * n / 4; n ]

let test_emission_histogram_counts_undo_heavy () =
  (* regression (stale sat_byte): a refutation must clear the structure's
     satisfaction stamp, or the undo-heavy paper run records latencies
     for superseded satisfactions and the emission histogram's count
     drifts away from the number of items actually emitted *)
  let was = Xaos_obs.Telemetry.enabled () in
  Xaos_obs.Telemetry.enable ();
  Fun.protect ~finally:(fun () ->
      if not was then Xaos_obs.Telemetry.disable ())
  @@ fun () ->
  let hist =
    match Xaos_obs.Histogram.find "engine/emission" with
    | Some h -> h
    | None -> Alcotest.fail "emission histogram unregistered"
  in
  List.iter
    (fun (name, config) ->
      Xaos_obs.Histogram.reset hist;
      let q = Query.compile_exn ~config fig3 in
      let r = Query.run_string q fig2 in
      Alcotest.(check int)
        (name ^ ": histogram count = emitted items")
        (List.length r.Result_set.items)
        (Xaos_obs.Histogram.count hist))
    [ ("deferred", Engine.default_config); ("earliest", earliest_config) ]

(* ------------------------------------------------------------------ *)
(* Multiple outputs                                                    *)
(* ------------------------------------------------------------------ *)

let test_tuples () =
  let q = Query.compile_exn "/$a/$b" in
  let r = Query.run_string q "<a><b/><b/></a>" in
  match r.Result_set.tuples with
  | None -> Alcotest.fail "expected tuples"
  | Some tuples ->
    Alcotest.(check int) "two pairs" 2 (List.length tuples);
    List.iter
      (fun tuple ->
        Alcotest.(check int) "arity" 2 (Array.length tuple);
        Alcotest.(check string) "first is a" "a" (Item.tag tuple.(0));
        Alcotest.(check string) "second is b" "b" (Item.tag tuple.(1)))
      tuples

let test_tuples_join () =
  (* Section 5.4: //Y[$U]//$W joined over shared W with //Z[$V]//$W; we
     express the intersection directly on the paper example. *)
  let q = Query.compile_exn "//Y[$child::U]//$W[ancestor::Z/$child::V]" in
  let r = Query.run_string q fig2 in
  match r.Result_set.tuples with
  | None -> Alcotest.fail "expected tuples"
  | Some tuples ->
    (* Figure 4's four total matchings project to (U,W,V) tuples:
       U9 x {W7,W8} x {V5,V6} = 4 tuples *)
    Alcotest.(check int) "four tuples" 4 (List.length tuples)

let test_tuple_items_are_first_output () =
  let q = Query.compile_exn "/$a/$b" in
  let r = Query.run_string q "<a><b/></a>" in
  Alcotest.check (Alcotest.list item) "items = first mark" [ it 1 "a" 1 ]
    r.Result_set.items

(* ------------------------------------------------------------------ *)
(* Or expressions                                                      *)
(* ------------------------------------------------------------------ *)

let test_or_union () =
  check_result "or" [ it 2 "b" 2; it 3 "c" 2 ] "/a/*[self::b or self::c]"
    "<a><b/><c/><d/></a>";
  check_result "or with overlap dedups" [ it 2 "b" 2 ]
    "/a/b[c or c/d]" "<a><b><c><d/></c></b></a>"

let test_or_with_backward () =
  check_result "or across axes" [ it 3 "x" 3; it 4 "x" 2 ]
    "//x[ancestor::b or parent::a]" "<a><b><x/></b><x/></a>"

(* ------------------------------------------------------------------ *)
(* Engine protocol errors                                              *)
(* ------------------------------------------------------------------ *)

let test_protocol_errors () =
  let dag = Xdag.of_xtree (Xtree.of_path (Parser.parse "/a")) in
  let engine = Engine.create dag in
  (match Engine.end_element engine with
  | _ -> Alcotest.fail "end without start"
  | exception Invalid_argument _ -> ());
  (match Engine.start_element engine ~sym:(Xaos_xml.Symbol.intern "a") ~level:5 () with
  | _ -> Alcotest.fail "level jump"
  | exception Invalid_argument _ -> ());
  Engine.start_element engine ~sym:(Xaos_xml.Symbol.intern "a") ~level:1 ();
  (match Engine.finish engine with
  | _ -> Alcotest.fail "finish with open element"
  | exception Invalid_argument _ -> ())

let test_empty_document_equivalent () =
  (* a document whose root matches nothing *)
  check_result "no matches at all" [] "//zzz" fig2

let test_root_level_queries () =
  check_result "absolute single step" [ it 1 "X" 1 ] "/X" fig2;
  check_result "wrong root name" [] "/Y" fig2;
  check_result "root wildcard" [ it 1 "X" 1 ] "/*" fig2

let suite =
  [
    ("paper: result", `Quick, test_paper_result);
    ("paper: matching count", `Quick, test_paper_matching_count);
    ("paper: table 2 trace", `Quick, test_table2_trace);
    ("paper: discard counts", `Quick, test_paper_discard);
    ("paper: undo happens", `Quick, test_paper_undo_happens);
    ("axis: child", `Quick, test_child);
    ("axis: descendant", `Quick, test_descendant);
    ("axis: parent", `Quick, test_parent);
    ("axis: ancestor", `Quick, test_ancestor);
    ("axis: self", `Quick, test_self);
    ("axis: descendant-or-self", `Quick, test_descendant_or_self);
    ("axis: ancestor-or-self", `Quick, test_ancestor_or_self);
    ("predicates restrict", `Quick, test_predicates_restrict);
    ("wildcard", `Quick, test_wildcard);
    ("optimism refuted and confirmed", `Quick, test_optimism_refuted);
    ("undo cascade", `Quick, test_undo_cascade);
    ("parent axis optimism", `Quick, test_parent_axis_optimism);
    ("recursive document", `Quick, test_recursive_document);
    ("recursive ancestors", `Quick, test_recursive_ancestors);
    ("configs agree", `Quick, test_configs_agree);
    ("eager mode activates", `Quick, test_eager_mode_activates);
    ("eager streams matches", `Quick, test_eager_streams_matches);
    ("same element dedup", `Quick, test_multiple_matches_same_element_dedup);
    ("earliest matches deferred", `Quick, test_earliest_matches_deferred);
    ("earliest streams mid-document", `Quick,
     test_earliest_streams_mid_document);
    ("earliest dedup across disjuncts", `Quick,
     test_earliest_dedup_across_disjuncts);
    ("earliest finish_partial", `Quick, test_earliest_finish_partial);
    ("emission histogram accounting", `Quick,
     test_emission_histogram_counts_undo_heavy);
    ("tuples", `Quick, test_tuples);
    ("tuples join", `Quick, test_tuples_join);
    ("tuple items", `Quick, test_tuple_items_are_first_output);
    ("or union", `Quick, test_or_union);
    ("or with backward axes", `Quick, test_or_with_backward);
    ("protocol errors", `Quick, test_protocol_errors);
    ("no matches", `Quick, test_empty_document_equivalent);
    ("root level queries", `Quick, test_root_level_queries);
  ]
