(* The causal provenance tracer: flag discipline, ring-buffer drop
   semantics, the Chrome trace-event export, and the paper's Figure 4
   provenance chain reconstructed from the Figure 2/3 walkthrough. *)

open Xaos_core
module Trc = Xaos_obs.Tracer
module Json = Xaos_obs.Json
module Parser = Xaos_xpath.Parser
module Xtree = Xaos_xpath.Xtree
module Xdag = Xaos_xpath.Xdag

let fig2 = "<X><Y><W/><Z><V/><V/><W><W/></W></Z><U/></Y><Y><Z><W/></Z><U/></Y></X>"
let fig3 = "/descendant::Y[child::U]/descendant::W[ancestor::Z/child::V]"

(* Run the Figure 2/3 walkthrough with the tracer on, positions threaded
   from the parser as the CLI does; returns the result set. *)
let traced_fig ?capacity () =
  Trc.enable ?capacity ();
  let xtree = Xtree.of_path (Parser.parse fig3) in
  let engine = Engine.create (Xdag.of_xtree xtree) in
  let parser = Xaos_xml.Sax.of_string fig2 in
  let rec loop () =
    match Xaos_xml.Sax.next parser with
    | None -> ()
    | Some ev ->
      let p = Xaos_xml.Sax.position parser in
      Trc.set_position ~byte:p.Xaos_xml.Sax.offset ~line:p.Xaos_xml.Sax.line;
      Engine.feed engine ev;
      loop ()
  in
  loop ();
  let result = Engine.finish engine in
  Trc.disable ();
  (xtree, result)

let test_disabled_records_nothing () =
  Trc.enable ();
  Trc.disable ();
  Trc.reset ();
  Trc.created ~serial:1 ~xnode:0 ~item_id:1 ~tag:"a" ~level:1
    ~parent_serial:0;
  Trc.propagated ~optimistic:true ~child:1 ~target:0;
  Trc.emitted ~serial:1 ~item_id:1;
  Trc.phase_begin "p";
  Alcotest.(check bool) "disabled" false (Trc.enabled ());
  Alcotest.(check int) "nothing recorded" 0 (Trc.recorded ());
  Alcotest.(check (list unit)) "no events" []
    (List.map ignore (Trc.events ()))

let test_figure4_provenance () =
  let _xtree, result = traced_fig () in
  (* the paper's solution: elements 7 and 8 (the W nest in the first Y) *)
  Alcotest.(check (list int)) "solution" [ 7; 8 ]
    (List.map (fun (i : Item.t) -> i.Item.id) result.Result_set.items);
  Alcotest.(check int) "no drops at default capacity" 0 (Trc.dropped ());
  List.iter
    (fun (item : Item.t) ->
      let chain = Trc.provenance ~item_id:item.Item.id in
      Alcotest.(check bool)
        (Printf.sprintf "item %d has a chain" item.Item.id)
        true
        (List.length chain >= 3);
      (* emission first... *)
      (match (List.hd chain).Trc.kind with
      | Trc.Emitted { item_id } ->
        Alcotest.(check int) "emission of the item" item.Item.id item_id
      | _ -> Alcotest.fail "chain must start with the emission");
      (* ...then alternating creations and surviving placements, ending
         with the placement into the root structure (serial 0) *)
      (match (List.nth chain 1).Trc.kind with
      | Trc.Created _ -> ()
      | _ -> Alcotest.fail "creation must follow the emission");
      (match (List.nth (List.rev chain) 0).Trc.kind with
      | Trc.Propagated { target_serial; _ } ->
        Alcotest.(check int) "chain reaches the root" 0 target_serial
      | _ -> Alcotest.fail "chain must end in a placement into the root");
      (* every event in the chain carries a document position *)
      List.iter
        (fun (e : Trc.event) ->
          Alcotest.(check bool) "byte position stamped" true (e.Trc.byte >= 0);
          Alcotest.(check bool) "line position stamped" true (e.Trc.line >= 1))
        chain;
      (* consecutive links are causally consistent: each placement's
         subject is the structure created just before it in the chain *)
      let rec check_links = function
        | (a : Trc.event) :: (b : Trc.event) :: rest ->
          (match (a.Trc.kind, b.Trc.kind) with
          | Trc.Created _, Trc.Propagated _ ->
            Alcotest.(check int) "placement subject" a.Trc.serial b.Trc.serial
          | Trc.Propagated { target_serial; _ }, Trc.Created _ ->
            Alcotest.(check int) "placement target" target_serial
              b.Trc.serial
          | _ -> ());
          check_links (b :: rest)
        | _ -> ()
      in
      check_links (List.tl chain))
    result.Result_set.items

let test_optimism_recorded () =
  (* steps 22/23 of Table 2: W12 optimistically propagates, E:Z11 undoes
     it and refutes the structures under Z10 *)
  let _ = traced_fig () in
  let kinds = List.map (fun (e : Trc.event) -> e.Trc.kind) (Trc.events ()) in
  let has p = List.exists p kinds in
  Alcotest.(check bool) "optimistic placement recorded" true
    (has (function Trc.Propagated { optimistic; _ } -> optimistic | _ -> false));
  Alcotest.(check bool) "undo recorded" true
    (has (function Trc.Undone _ -> true | _ -> false));
  Alcotest.(check bool) "refutation recorded" true
    (has (function Trc.Refuted -> true | _ -> false))

let test_ring_drops_oldest_keeps_links () =
  let _xtree, result = traced_fig ~capacity:8 () in
  Alcotest.(check bool) "ring wrapped" true (Trc.dropped () > 0);
  let retained = Trc.events () in
  Alcotest.(check int) "capacity bounds retention" 8 (List.length retained);
  Alcotest.(check int) "retained = recorded - dropped"
    (Trc.recorded () - Trc.dropped ())
    (List.length retained);
  (* oldest first, contiguous ids ending at the newest event *)
  let ids = List.map (fun (e : Trc.event) -> e.Trc.id) retained in
  Alcotest.(check (list int)) "contiguous newest window"
    (List.init 8 (fun i -> Trc.recorded () - 8 + i))
    ids;
  (* parent-cause links of retained events never dangle: find either
     returns the exact event or None for a dropped id, and never an
     unrelated event that happens to share a slot *)
  List.iter
    (fun (e : Trc.event) ->
      if e.Trc.parent >= 0 then
        match Trc.find e.Trc.parent with
        | None ->
          Alcotest.(check bool) "dropped parents are old" true
            (e.Trc.parent < Trc.recorded () - 8)
        | Some p -> Alcotest.(check int) "id matches" e.Trc.parent p.Trc.id)
    retained;
  (* provenance degrades to empty or a truncated-but-consistent chain,
     never an exception *)
  List.iter
    (fun (item : Item.t) -> ignore (Trc.provenance ~item_id:item.Item.id))
    result.Result_set.items

let test_chrome_export_round_trips () =
  let _ = traced_fig () in
  let json_text = Json.to_string (Trc.to_chrome ()) in
  match Json.parse json_text with
  | Error msg -> Alcotest.fail ("export must re-parse: " ^ msg)
  | Ok json ->
    Alcotest.(check (option string)) "displayTimeUnit" (Some "ms")
      Option.(bind (Json.member "displayTimeUnit" json) Json.to_str);
    let events =
      match Option.bind (Json.member "traceEvents" json) Json.to_list with
      | Some l -> l
      | None -> Alcotest.fail "traceEvents must be a list"
    in
    Alcotest.(check bool) "events present" true (List.length events > 10);
    let allowed = [ "B"; "E"; "X"; "i"; "b"; "n"; "e" ] in
    List.iter
      (fun ev ->
        let str k = Option.bind (Json.member k ev) Json.to_str in
        let num k = Option.bind (Json.member k ev) Json.to_float in
        let int k = Option.bind (Json.member k ev) Json.to_int in
        (match str "ph" with
        | Some ph ->
          Alcotest.(check bool) ("ph " ^ ph ^ " allowed") true
            (List.mem ph allowed);
          (* async structure events carry the serial as their id *)
          if List.mem ph [ "b"; "n"; "e" ] then
            Alcotest.(check bool) "async id present" true (int "id" <> None)
        | None -> Alcotest.fail "event without ph");
        Alcotest.(check bool) "name" true (str "name" <> None);
        Alcotest.(check (option int)) "pid" (Some 1) (int "pid");
        Alcotest.(check (option int)) "tid" (Some 1) (int "tid");
        match num "ts" with
        | Some ts -> Alcotest.(check bool) "ts non-negative" true (ts >= 0.)
        | None -> Alcotest.fail "event without ts")
      events

let test_enable_resets () =
  let _ = traced_fig () in
  let before = Trc.recorded () in
  Alcotest.(check bool) "something recorded" true (before > 0);
  Trc.enable ~capacity:16 ();
  Alcotest.(check int) "enable implies reset" 0 (Trc.recorded ());
  Alcotest.(check int) "capacity applied" 16 (Trc.capacity ());
  Trc.disable ()

let suite =
  [
    ("disabled is inert", `Quick, test_disabled_records_nothing);
    ("figure 4 provenance", `Quick, test_figure4_provenance);
    ("optimism in the ring", `Quick, test_optimism_recorded);
    ("ring drop keeps links", `Quick, test_ring_drops_oldest_keeps_links);
    ("chrome export round-trips", `Quick, test_chrome_export_round_trips);
    ("enable resets", `Quick, test_enable_resets);
  ]
