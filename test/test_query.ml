(* The Query front-end: compilation, run protocol, one-shot helpers, the
   Query_set broker, and the retention introspection. *)

open Xaos_core

let item = Alcotest.testable Item.pp Item.equal

let it id tag level = Item.make ~id ~tag ~level

let test_compile_errors () =
  (match Query.compile "/a[" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected syntax error");
  match Query.compile_exn "///" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_or_limit () =
  (* 2^7 = 128 disjuncts > default-ish small limit *)
  let q = "/a[b or c]/d[e or f]/g[h or i]/j[k or l]/m[n or o]/p[q or r]/s[t or u]" in
  (match Query.compile ~or_limit:64 q with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected or-limit error");
  match Query.compile ~or_limit:128 q with
  | Ok compiled ->
    Alcotest.(check int) "128 disjuncts" 128 (List.length (Query.disjuncts compiled))
  | Error e -> Alcotest.fail e

let test_unsatisfiable_compiles_to_empty () =
  let q = Query.compile_exn "/parent::x" in
  Alcotest.(check int) "no engines" 0 (List.length (Query.disjuncts q));
  let r = Query.run_string q "<a/>" in
  Alcotest.(check int) "no results" 0 (List.length r.Result_set.items)

let test_partial_unsatisfiable_or () =
  (* [/parent::q] asks for an element strictly above the root: that
     disjunct is structurally unsatisfiable and compiled away *)
  let q = Query.compile_exn "/a[/parent::q or b]" in
  Alcotest.(check int) "one engine" 1 (List.length (Query.disjuncts q));
  let r = Query.run_string q "<a><b/></a>" in
  Alcotest.check (Alcotest.list item) "result" [ it 1 "a" 1 ] r.Result_set.items;
  (* [parent::q] from a level-1 element names the virtual root, which no
     node test matches: satisfiable structurally, empty on every document *)
  let q2 = Query.compile_exn "/a[parent::q or b]" in
  Alcotest.(check int) "two engines" 2 (List.length (Query.disjuncts q2));
  let r2 = Query.run_string q2 "<a><b/></a>" in
  Alcotest.check (Alcotest.list item) "same result" [ it 1 "a" 1 ]
    r2.Result_set.items

let test_query_reusable () =
  let q = Query.compile_exn "//b" in
  let r1 = Query.run_string q "<a><b/></a>" in
  let r2 = Query.run_string q "<c><b/><b/></c>" in
  Alcotest.(check int) "first run" 1 (List.length r1.Result_set.items);
  Alcotest.(check int) "second run" 2 (List.length r2.Result_set.items)

let test_finish_idempotent () =
  let q = Query.compile_exn "//b" in
  let run = Query.start q in
  List.iter (Query.feed run) (Xaos_xml.Sax.events_of_string "<a><b/></a>");
  let r1 = Query.finish run in
  let r2 = Query.finish run in
  Alcotest.(check bool) "same result object" true (r1 == r2)

let test_run_file () =
  let file = Filename.temp_file "xaos_test" ".xml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc "<a><b/><c><b/></c></a>";
      close_out oc;
      let q = Query.compile_exn "//b" in
      let r = Query.run_file q file in
      Alcotest.(check int) "two" 2 (List.length r.Result_set.items))

let test_stats_accumulate_across_disjuncts () =
  let q = Query.compile_exn "//a[b or c]" in
  let _, stats = Query.run_string_with_stats q "<a><b/></a>" in
  (* two engines saw 2 elements each *)
  Alcotest.(check int) "4 total" 4 stats.Stats.elements_total

let test_retained_structures () =
  let q = Query.compile_exn "//b" in
  let run = Query.start q in
  List.iter (Query.feed run) (Xaos_xml.Sax.events_of_string "<a><b/><b/></a>");
  ignore (Query.finish run);
  Alcotest.(check int) "two b structures retained" 2
    (Query.retained_structures run);
  (* eager retains nothing *)
  let config = { Engine.default_config with emission = Engine.Eager } in
  let qe = Query.compile_exn ~config "//b" in
  let rune = Query.start qe in
  List.iter (Query.feed rune) (Xaos_xml.Sax.events_of_string "<a><b/><b/></a>");
  ignore (Query.finish rune);
  Alcotest.(check int) "eager retains none" 0 (Query.retained_structures rune)

let test_on_match_fires_once_per_item () =
  let seen = ref [] in
  let q = Query.compile_exn "//b" in
  let run = Query.start ~on_match:(fun i -> seen := i :: !seen) q in
  List.iter (Query.feed run)
    (Xaos_xml.Sax.events_of_string "<a><b><b/></b></a>");
  ignore (Query.finish run);
  Alcotest.(check int) "two callbacks" 2 (List.length !seen)

(* ---------------- Query_set ---------------- *)

let test_query_set_basic () =
  let set =
    match
      Query_set.compile
        [ ("bees", "//b"); ("cees", "//c"); ("none", "//zzz") ]
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "three queries" 3 (Query_set.size set);
  let outcomes = Query_set.run_string set "<a><b/><c/><b/></a>" in
  Alcotest.(check (list string))
    "matching names" [ "bees"; "cees" ]
    (Query_set.matching_names outcomes);
  let bees = List.find (fun o -> o.Query_set.query_name = "bees") outcomes in
  Alcotest.(check int) "two bees" 2 (List.length bees.Query_set.items)

let test_query_set_duplicate_names () =
  match Query_set.compile [ ("x", "//a"); ("x", "//b") ] with
  | exception Invalid_argument _ -> ()
  | Ok _ -> Alcotest.fail "expected duplicate-name failure"
  | Error _ -> Alcotest.fail "expected Invalid_argument, not compile error"

let test_query_set_compile_error_names_query () =
  match Query_set.compile [ ("good", "//a"); ("bad", "//[") ] with
  | Error msg ->
    Alcotest.(check bool) "mentions the name" true
      (String.length msg >= 3 && String.sub msg 0 3 = "bad")
  | Ok _ -> Alcotest.fail "expected error"

let test_query_set_backward_axes_subscription () =
  let set =
    match Query_set.compile [ ("anc", "//w/ancestor::y") ] with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let outcomes = Query_set.run_string set "<y><x><w/></x></y>" in
  Alcotest.(check (list string)) "matches" [ "anc" ]
    (Query_set.matching_names outcomes)

let test_query_set_doc_replay_agrees () =
  let set =
    match Query_set.compile [ ("q1", "//b[c]"); ("q2", "//c/..") ] with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let doc_s = "<a><b><c/></b><b/></a>" in
  let via_string = Query_set.run_string set doc_s in
  let via_doc = Query_set.run_doc set (Xaos_xml.Dom.of_string doc_s) in
  List.iter2
    (fun a b ->
      Alcotest.(check string) "name" a.Query_set.query_name b.Query_set.query_name;
      Alcotest.check (Alcotest.list item) "items" a.Query_set.items
        b.Query_set.items)
    via_string via_doc

let suite =
  [
    ("compile errors", `Quick, test_compile_errors);
    ("or limit", `Quick, test_or_limit);
    ("unsatisfiable", `Quick, test_unsatisfiable_compiles_to_empty);
    ("partially unsatisfiable or", `Quick, test_partial_unsatisfiable_or);
    ("query reusable", `Quick, test_query_reusable);
    ("finish idempotent", `Quick, test_finish_idempotent);
    ("run file", `Quick, test_run_file);
    ("stats across disjuncts", `Quick, test_stats_accumulate_across_disjuncts);
    ("retained structures", `Quick, test_retained_structures);
    ("on_match per item", `Quick, test_on_match_fires_once_per_item);
    ("query set basics", `Quick, test_query_set_basic);
    ("query set duplicate names", `Quick, test_query_set_duplicate_names);
    ("query set error naming", `Quick, test_query_set_compile_error_names_query);
    ("query set backward axes", `Quick, test_query_set_backward_axes_subscription);
    ("query set doc replay", `Quick, test_query_set_doc_replay_agrees);
  ]
