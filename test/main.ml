let () =
  Alcotest.run "xaos"
    [
      ("sax", Test_sax.suite);
      ("symbol", Test_symbol.suite);
      ("dom", Test_dom.suite);
      ("serialize", Test_serialize.suite);
      ("xpath", Test_xpath.suite);
      ("xtree-xdag", Test_xtree.suite);
      ("dnf", Test_dnf.suite);
      ("matching", Test_matching.suite);
      ("engine", Test_engine.suite);
      ("attributes", Test_attributes.suite);
      ("text", Test_text.suite);
      ("query", Test_query.suite);
      ("query-set", Test_query_set.suite);
      ("trace", Test_trace.suite);
      ("baseline", Test_baseline.suite);
      ("yfilter", Test_yfilter.suite);
      ("semantics", Test_semantics.suite);
      ("workloads", Test_workloads.suite);
      ("deepgen", Test_deepgen.suite);
      ("misc", Test_misc.suite);
      ("stats", Test_stats.suite);
      ("obs", Test_obs.suite);
      ("histogram", Test_histogram.suite);
      ("tracer", Test_tracer.suite);
      ("properties", Test_properties.suite);
      ("hardening", Test_hardening.suite);
      ("fuzz", Test_fuzz.suite);
      ("chaos", Test_chaos.suite);
      ("service", Test_service.suite);
      ("attrib", Test_attrib.suite);
    ]
