(* DOM construction, navigation, ids/levels matching the paper's Figure 2,
   and event replay. *)

module Dom = Xaos_xml.Dom
module Event = Xaos_xml.Event

(* The paper's Figure 2 document. *)
let fig2 = "<X><Y><W/><Z><V/><V/><W><W/></W></Z><U/></Y><Y><Z><W/></Z><U/></Y></X>"

let fig2_doc () = Dom.of_string fig2

let test_figure2_ids () =
  (* Figure 2(b) assigns: Root=0, X=1, Y=2, W=3, Z=4, V=5, V=6, W=7, W=8,
     U=9, Y=10, Z=11, W=12, U=13. *)
  let doc = fig2_doc () in
  Alcotest.(check int) "element count" 14 doc.Dom.element_count;
  let expected =
    [ (0, "#root", 0); (1, "X", 1); (2, "Y", 2); (3, "W", 3); (4, "Z", 3);
      (5, "V", 4); (6, "V", 4); (7, "W", 4); (8, "W", 5); (9, "U", 3);
      (10, "Y", 2); (11, "Z", 3); (12, "W", 4); (13, "U", 3) ]
  in
  List.iter
    (fun (id, tag, level) ->
      match Dom.element_by_id doc id with
      | None -> Alcotest.failf "element %d missing" id
      | Some e ->
        Alcotest.(check string) (Printf.sprintf "tag of %d" id) tag e.Dom.tag;
        Alcotest.(check int) (Printf.sprintf "level of %d" id) level e.Dom.level)
    expected

let get doc id =
  match Dom.element_by_id doc id with
  | Some e -> e
  | None -> Alcotest.failf "element %d missing" id

let test_parent_children () =
  let doc = fig2_doc () in
  let z4 = get doc 4 in
  Alcotest.(check (list int))
    "children of Z4" [ 5; 6; 7 ]
    (List.map (fun (e : Dom.element) -> e.id) (Dom.element_children z4));
  Alcotest.(check (option int))
    "parent of Z4" (Some 2)
    (Option.map (fun (e : Dom.element) -> e.id) (Dom.parent z4))

let test_ancestors () =
  let doc = fig2_doc () in
  let w8 = get doc 8 in
  Alcotest.(check (list int))
    "ancestors of W8, nearest first" [ 7; 4; 2; 1; 0 ]
    (List.map (fun (e : Dom.element) -> e.id) (Dom.ancestors w8))

let test_descendants_in_document_order () =
  let doc = fig2_doc () in
  let y2 = get doc 2 in
  Alcotest.(check (list int))
    "descendants of Y2" [ 3; 4; 5; 6; 7; 8; 9 ]
    (List.map (fun (e : Dom.element) -> e.id) (List.of_seq (Dom.descendants y2)))

let test_is_ancestor () =
  let doc = fig2_doc () in
  let check a d expected =
    Alcotest.(check bool)
      (Printf.sprintf "is_ancestor %d %d" a d)
      expected
      (Dom.is_ancestor (get doc a) (get doc d))
  in
  check 2 8 true;
  check 4 7 true;
  check 8 7 false;
  check 7 7 false;
  check 10 8 false;
  check 0 13 true

let test_subtree_size () =
  let doc = fig2_doc () in
  Alcotest.(check int) "subtree of Y2" 8 (Dom.subtree_size (get doc 2));
  Alcotest.(check int) "subtree of root" 14 (Dom.subtree_size doc.Dom.root);
  Alcotest.(check int) "leaf" 1 (Dom.subtree_size (get doc 13))

let test_event_replay_roundtrip () =
  let evs = Xaos_xml.Sax.events_of_string fig2 in
  let doc = Dom.of_events evs in
  let replayed = Dom.events doc in
  Alcotest.(check int) "same length" (List.length evs) (List.length replayed);
  List.iter2
    (fun a b ->
      if not (Event.equal a b) then
        Alcotest.failf "replay mismatch: %a vs %a" (fun _ -> ignore) a
          (fun _ -> ignore) b)
    evs replayed

let test_text_content () =
  let doc = Dom.of_string "<a>one<b>two</b><c><d>three</d></c>four</a>" in
  let a = get doc 1 in
  Alcotest.(check string) "concatenated text" "onetwothreefour"
    (Dom.text_content a)

let test_unbalanced_streams_rejected () =
  let open Event in
  let cases =
    [ [ start_element ~name:"a" ~level:1 () ];
      [ end_element ~name:"a" ~level:1 () ];
      [ start_element ~name:"a" ~level:1 ();
        end_element ~name:"a" ~level:1 ();
        end_element ~name:"b" ~level:1 () ] ]
  in
  List.iter
    (fun events ->
      match Dom.of_events events with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    cases

let test_iter_elements_order () =
  let doc = fig2_doc () in
  let ids = ref [] in
  Dom.iter_elements (fun e -> ids := e.Dom.id :: !ids) doc;
  Alcotest.(check (list int))
    "document order" (List.init 14 Fun.id) (List.rev !ids)

let suite =
  [
    ("figure 2 ids and levels", `Quick, test_figure2_ids);
    ("parent and children", `Quick, test_parent_children);
    ("ancestors", `Quick, test_ancestors);
    ("descendants order", `Quick, test_descendants_in_document_order);
    ("is_ancestor", `Quick, test_is_ancestor);
    ("subtree size", `Quick, test_subtree_size);
    ("event replay roundtrip", `Quick, test_event_replay_roundtrip);
    ("text content", `Quick, test_text_content);
    ("unbalanced streams rejected", `Quick, test_unbalanced_streams_rejected);
    ("iter order", `Quick, test_iter_elements_order);
  ]
