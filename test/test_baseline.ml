(* The Xalan-like DOM baseline: semantics and the traversal-counting
   behaviour the paper attributes to Xalan. *)

open Xaos_core
module Dom = Xaos_xml.Dom
module Dom_engine = Xaos_baseline.Dom_engine
module Parser = Xaos_xpath.Parser

let item = Alcotest.testable Item.pp Item.equal

let eval doc query = Dom_engine.eval doc (Parser.parse query)

let it id tag level = Item.make ~id ~tag ~level

let fig2 = "<X><Y><W/><Z><V/><V/><W><W/></W></Z><U/></Y><Y><Z><W/></Z><U/></Y></X>"

let test_paper_example () =
  let doc = Dom.of_string fig2 in
  Alcotest.check (Alcotest.list item) "paper solution"
    [ it 7 "W" 4; it 8 "W" 5 ]
    (eval doc "/descendant::Y[child::U]/descendant::W[ancestor::Z/child::V]")

let test_node_set_semantics () =
  (* duplicates across context nodes collapse; order is document order *)
  let doc = Dom.of_string "<a><b><c/></b><b><c/></b></a>" in
  Alcotest.check (Alcotest.list item) "dedup and order"
    [ it 1 "a" 1 ]
    (eval doc "//c/ancestor::a")

let test_backward_axes () =
  let doc = Dom.of_string "<a><b><x/></b><x/></a>" in
  Alcotest.check (Alcotest.list item) "parent" [ it 2 "b" 2 ]
    (eval doc "//x/parent::b");
  Alcotest.check (Alcotest.list item) "ancestor chain"
    [ it 1 "a" 1; it 2 "b" 2 ]
    (eval doc "//x/ancestor::*")

let test_predicates () =
  let doc = Dom.of_string "<a><b><c/></b><b/></a>" in
  Alcotest.check (Alcotest.list item) "predicate" [ it 2 "b" 2 ]
    (eval doc "/a/b[c]");
  Alcotest.check (Alcotest.list item) "and"
    []
    (eval doc "/a/b[c and d]");
  Alcotest.check (Alcotest.list item) "or"
    [ it 2 "b" 2 ]
    (eval doc "/a/b[c or d]");
  Alcotest.check (Alcotest.list item) "absolute predicate"
    [ it 2 "b" 2; it 4 "b" 2 ]
    (eval doc "/a/b[/a]")

let test_repeated_traversals_counted () =
  (* /descendant::x/ancestor::y revisits the ancestors of every x: the
     counter must exceed a single scan of the document. *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<y>";
  for _ = 1 to 50 do
    Buffer.add_string buf "<m><x/></m>"
  done;
  Buffer.add_string buf "</y>";
  let doc = Dom.of_string (Buffer.contents buf) in
  let _, counters =
    Dom_engine.eval_with_counters doc (Parser.parse "//x/ancestor::y")
  in
  (* descendant scan = 101 visits; then each of the 50 x's walks 3
     ancestors: the total must show the re-visiting. *)
  Alcotest.(check bool) "revisits happen" true
    (counters.Dom_engine.nodes_visited > doc.Dom.element_count + 100)

let test_bimodal_visit_counts () =
  (* The paper's Figure 7 explanation: on "bad" expressions the
     step-at-a-time engine re-traverses subtrees from every context node,
     so visits grow super-linearly in the document, while on "good"
     (selective child path) expressions they stay proportional. *)
  let nested n =
    let buf = Buffer.create (n * 8) in
    for _ = 1 to n do
      Buffer.add_string buf "<a><b>"
    done;
    for _ = 1 to n do
      Buffer.add_string buf "</b></a>"
    done;
    Dom.of_string (Buffer.contents buf)
  in
  let doc = nested 40 in
  let visits query =
    let _, c = Dom_engine.eval_with_counters doc (Parser.parse query) in
    c.Dom_engine.nodes_visited
  in
  let cheap = visits "/a/b/a/b" in
  let expensive = visits "//a//b//a//b" in
  Alcotest.(check bool)
    (Printf.sprintf "descendant chain revisits (%d) >> child chain (%d)"
       expensive cheap)
    true
    (expensive > 10 * doc.Dom.element_count && cheap < 2 * doc.Dom.element_count)

let test_eval_query_parse_error () =
  let doc = Dom.of_string "<a/>" in
  match Dom_engine.eval_query doc "/a[" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error"

let test_agrees_with_oracle_on_axes () =
  let doc = Dom.of_string "<a><b><c/><b><c/></b></b><c/></a>" in
  List.iter
    (fun query ->
      let path = Parser.parse query in
      let expected = Semantics.eval_path path doc in
      let got = List.sort_uniq Item.compare (Dom_engine.eval doc path) in
      Alcotest.check (Alcotest.list item) query expected got)
    [ "//c"; "//b//c"; "//c/ancestor::b"; "//b[c]/parent::*";
      "/a/descendant-or-self::b"; "//c/ancestor-or-self::c";
      "//b[self::b][c]"; "//*[parent::b]" ]

let suite =
  [
    ("paper example", `Quick, test_paper_example);
    ("node-set semantics", `Quick, test_node_set_semantics);
    ("backward axes", `Quick, test_backward_axes);
    ("predicates", `Quick, test_predicates);
    ("repeated traversals counted", `Quick, test_repeated_traversals_counted);
    ("bimodal visit counts", `Quick, test_bimodal_visit_counts);
    ("parse error", `Quick, test_eval_query_parse_error);
    ("agrees with oracle", `Quick, test_agrees_with_oracle_on_axes);
  ]
