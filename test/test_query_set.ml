(* The Query_set shared dispatch index (PR 3).

   The load-bearing property is differential: on any document and any
   query set, Shared dispatch must produce outcomes identical to the
   Naive feed-everyone loop. Exercised on hand-picked cases covering
   wildcards, backward axes and predicates, on randomized Randgen
   query/document pairs, on lenient-parsed mutated documents, and on
   truncated streams finished with [finish_partial].

   Also here: the satellite correctness fixes — id-based [Item.equal]
   agreeing with [Item.compare], monomorphic tuple merging in
   [Result_set.union], accumulated compile errors, and per-run budget
   abort isolation. *)

module Sax = Xaos_xml.Sax
module Event = Xaos_xml.Event
module Ast = Xaos_xpath.Ast
module Prng = Xaos_workloads.Prng
module Randgen = Xaos_workloads.Randgen
open Xaos_core

let item = Alcotest.testable Item.pp Item.equal

let it id tag level = Item.make ~id ~tag ~level

let outcome_str (o : Query_set.outcome) =
  Printf.sprintf "%s%s: [%s]" o.query_name
    (if o.aborted then " (aborted)" else "")
    (String.concat "; "
       (List.map (fun i -> Format.asprintf "%a" Item.pp i) o.items))

let check_outcomes msg expected actual =
  Alcotest.(check (list string))
    msg
    (List.map outcome_str expected)
    (List.map outcome_str actual)

let compile_exn pairs =
  match Query_set.compile pairs with
  | Ok t -> t
  | Error msg -> Alcotest.failf "Query_set.compile: %s" msg

(* ------------------------------------------------------------------ *)
(* Satellite fixes                                                     *)
(* ------------------------------------------------------------------ *)

let test_item_equal_is_id_based () =
  (* ids are unique document-order identifiers; equal must agree with
     compare (which orders by id) or dedup in Result_set.union is
     inconsistent *)
  let a = it 7 "a" 2 and b = it 7 "b" 5 in
  Alcotest.(check bool) "same id equal" true (Item.equal a b);
  Alcotest.(check int) "same id compare" 0 (Item.compare a b);
  Alcotest.(check bool) "diff id" false (Item.equal a (it 8 "a" 2))

let test_union_dedup_regression () =
  (* regression: with field-sensitive equal, two results for the same
     element id coming from different disjuncts survived the union *)
  let x =
    { Result_set.items = [ it 3 "a" 1 ]; tuples = None; matching_count = None }
  in
  let y =
    {
      Result_set.items = [ it 3 "a" 1; it 5 "b" 2 ];
      tuples = None;
      matching_count = None;
    }
  in
  let u = Result_set.union x y in
  Alcotest.(check (list item)) "deduped" [ it 3 "a" 1; it 5 "b" 2 ] u.items

let test_union_tuples_monomorphic () =
  (* tuple merge must not use polymorphic compare on Item.t arrays *)
  let t1 = [| it 1 "a" 1; it 2 "b" 2 |] in
  let t2 = [| it 1 "a" 1; it 3 "c" 2 |] in
  let x =
    {
      Result_set.items = [ it 1 "a" 1 ];
      tuples = Some [ t1 ];
      matching_count = None;
    }
  in
  let y =
    {
      Result_set.items = [ it 1 "a" 1 ];
      tuples = Some [ t1; t2 ];
      matching_count = None;
    }
  in
  let u = Result_set.union x y in
  match u.tuples with
  | None -> Alcotest.fail "expected tuples"
  | Some ts ->
    Alcotest.(check int) "tuple count" 2 (List.length ts);
    (* same-id-different-metadata duplicates also merge *)
    let t1' = [| it 1 "a" 9; it 2 "z" 9 |] in
    let z =
      { Result_set.items = []; tuples = Some [ t1' ]; matching_count = None }
    in
    let u2 = Result_set.union x z in
    Alcotest.(check int)
      "id-based tuple dedup" 1
      (List.length (Option.get u2.tuples))

let test_compile_errors_accumulate () =
  match
    Query_set.compile
      [ ("ok", "//a"); ("first-bad", "//["); ("second-bad", "///") ]
  with
  | Ok _ -> Alcotest.fail "expected compile failure"
  | Error msg ->
    let contains needle =
      let n = String.length needle and m = String.length msg in
      let rec go i = i + n <= m && (String.sub msg i n = needle || go (i + 1)) in
      Alcotest.(check bool) (needle ^ " mentioned") true (go 0)
    in
    contains "2 queries failed";
    contains "first-bad";
    contains "second-bad"

(* ------------------------------------------------------------------ *)
(* Shared dispatch: unit tests                                         *)
(* ------------------------------------------------------------------ *)

let events_of s = Sax.events_of_string s

let run_both ?budget t events =
  let shared = Query_set.run_events ?budget ~dispatch:Shared t events in
  let naive = Query_set.run_events ?budget ~dispatch:Naive t events in
  check_outcomes "shared = naive" naive shared;
  shared

let test_looking_for_update_path () =
  (* //a//b: before any <a> opens, only "a" is interesting; the top-level
     <b>s must be suppressed, the one under <a> delivered *)
  let t = compile_exn [ ("q", "//a//b") ] in
  let events = events_of "<r><b/><a><b/></a><b/></r>" in
  let s = Query_set.start t in
  List.iter (Query_set.feed s) events;
  let outcomes = Query_set.finish s in
  let dispatched, suppressed = Query_set.dispatch_stats s in
  (* starts: r,b,a,b,b -> only a and the inner b delivered (2 starts +
     2 ends); r and the outer b's suppressed *)
  Alcotest.(check int) "dispatched" 4 dispatched;
  Alcotest.(check int) "suppressed" 3 suppressed;
  (match outcomes with
  | [ o ] ->
    Alcotest.(check (list item)) "items" [ it 4 "b" 3 ] o.items;
    Alcotest.(check bool) "not aborted" false o.aborted
  | _ -> Alcotest.fail "one outcome expected");
  ignore (run_both t events)

let test_wildcard_bucket () =
  (* a wildcard frontier must receive every element event *)
  let t = compile_exn [ ("all", "//*"); ("b", "//b") ] in
  let events = events_of "<a><b/><z/></a>" in
  let s = Query_set.start t in
  List.iter (Query_set.feed s) events;
  let outcomes = Query_set.finish s in
  let _, suppressed = Query_set.dispatch_stats s in
  (* only "b" skips things: <a> and <z> starts *)
  Alcotest.(check int) "suppressed" 2 suppressed;
  (match outcomes with
  | [ all; b ] ->
    Alcotest.(check (list item))
      "wildcard items"
      [ it 1 "a" 1; it 2 "b" 2; it 3 "z" 2 ]
      all.items;
    Alcotest.(check (list item)) "named items" [ it 2 "b" 2 ] b.items
  | _ -> Alcotest.fail "two outcomes expected");
  ignore (run_both t events)

let test_engine_interest_transitions () =
  (* the raw engine-level notification protocol behind the index *)
  let dag =
    match Query.compile "//a/b" with
    | Ok q -> (match Query.disjuncts q with [ d ] -> d | _ -> assert false)
    | Error msg -> Alcotest.failf "compile: %s" msg
  in
  let log = ref [] in
  let e = Engine.create dag in
  Engine.subscribe_interest e
    {
      Engine.on_sym =
        (fun sym on -> log := (Xaos_xml.Symbol.name sym, on) :: !log);
      on_wildcard = (fun _ -> Alcotest.fail "no wildcard in //a/b");
    };
  Alcotest.(check (list (pair string bool)))
    "initial frontier"
    [ ("a", true) ]
    (List.rev !log);
  Engine.start_element e ~sym:(Xaos_xml.Symbol.intern "a") ~level:1 ();
  Engine.start_element e ~sym:(Xaos_xml.Symbol.intern "b") ~level:2 ();
  Engine.end_element e;
  Engine.end_element e;
  ignore (Engine.finish e);
  Alcotest.(check (list (pair string bool)))
    "transitions"
    [ ("a", true); ("b", true); ("b", false); ("a", false) ]
    (List.rev !log)

let test_budget_abort_isolation () =
  (* one run tripping its budget must not take the others down *)
  let t = compile_exn [ ("heavy", "//a"); ("light", "//r") ] in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<r>";
  for _ = 1 to 100 do
    Buffer.add_string buf "<a/>"
  done;
  Buffer.add_string buf "</r>";
  let events = events_of (Buffer.contents buf) in
  let check_mode dispatch =
    let outcomes = Query_set.run_events ~budget:50 ~dispatch t events in
    match outcomes with
    | [ heavy; light ] ->
      Alcotest.(check bool) "heavy aborted" true heavy.aborted;
      Alcotest.(check bool) "heavy partial nonempty" true (heavy.items <> []);
      Alcotest.(check bool)
        "heavy partial strict subset" true
        (List.length heavy.items < 100);
      Alcotest.(check bool) "light completed" false light.aborted;
      Alcotest.(check (list item)) "light items" [ it 1 "r" 1 ] light.items
    | _ -> Alcotest.fail "two outcomes expected"
  in
  check_mode Query_set.Shared;
  check_mode Query_set.Naive;
  ignore (run_both ~budget:50 t events)

let test_fixed_differential_cases () =
  let doc =
    "<site><people><person><name>alice</name><age>30</age></person>\
     <person><name>bob</name></person></people>\
     <items><item><name>rock</name></item></items></site>"
  in
  let events = events_of doc in
  let sets =
    [
      [ ("q1", "//person/name"); ("q2", "//item//name"); ("q3", "/site/items") ];
      [ ("w", "//*"); ("deep", "//person/*"); ("none", "//missing") ];
      [
        ("anc", "//name/ancestor::person");
        ("par", "//name/parent::item");
        ("pred", "//person[age]");
      ];
      [
        ("text", "//name[text()='bob']");
        ("contains", "//name[contains(text(),'oc')]");
        ("attr", "//person[@id]");
      ];
    ]
  in
  List.iter (fun pairs -> ignore (run_both (compile_exn pairs) events)) sets

let test_partial_differential () =
  (* truncated streams: feed a prefix, finish_partial, compare modes *)
  let doc =
    "<site><a><b><c/></b><b/></a><a><b><d/><c/></b></a><e><b/></e></site>"
  in
  let events = events_of doc in
  let t =
    compile_exn
      [ ("q1", "//a//c"); ("q2", "//b/ancestor::a"); ("q3", "//e") ]
  in
  let n = List.length events in
  List.iter
    (fun k ->
      let prefix = List.filteri (fun i _ -> i < k) events in
      let run dispatch =
        let s = Query_set.start ~dispatch t in
        List.iter (Query_set.feed s) prefix;
        Query_set.finish_partial s
      in
      check_outcomes
        (Printf.sprintf "partial at %d" k)
        (run Query_set.Naive) (run Query_set.Shared))
    [ n / 4; n / 2; (3 * n) / 4; n ]

let test_randomized_differential () =
  (* randomized query sets over Randgen documents; also replays each
     document through lenient parses of mutated bytes (PR-1 fuzz
     generators) so recovery streams hit the index too *)
  let rng = Prng.create 0x5e7 in
  for seed = 1 to 8 do
    let specs =
      List.init 3 (fun i ->
          Randgen.generate_spec ~size:4 ~seed:((seed * 13) + i) ())
    in
    let pairs =
      ("wild", "//*")
      :: List.mapi
           (fun i spec ->
             (Printf.sprintf "q%d" i, Ast.to_string spec.Randgen.query))
           specs
    in
    let t = compile_exn pairs in
    let doc =
      Randgen.document_string (List.hd specs) ~seed:(seed * 31) ~elements:150
    in
    ignore (run_both t (events_of doc));
    (* mutated + lenient-recovered variant *)
    let mutated = Test_fuzz.mutate rng doc in
    match Sax.events_of_string ~mode:Sax.Lenient mutated with
    | events -> ignore (run_both t events)
    | exception Sax.Limit_exceeded _ -> ()
  done

let suite =
  [
    Alcotest.test_case "item equal is id-based" `Quick
      test_item_equal_is_id_based;
    Alcotest.test_case "union dedup regression" `Quick
      test_union_dedup_regression;
    Alcotest.test_case "union tuples monomorphic" `Quick
      test_union_tuples_monomorphic;
    Alcotest.test_case "compile errors accumulate" `Quick
      test_compile_errors_accumulate;
    Alcotest.test_case "looking-for update path" `Quick
      test_looking_for_update_path;
    Alcotest.test_case "wildcard bucket" `Quick test_wildcard_bucket;
    Alcotest.test_case "engine interest transitions" `Quick
      test_engine_interest_transitions;
    Alcotest.test_case "budget abort isolation" `Quick
      test_budget_abort_isolation;
    Alcotest.test_case "fixed differential cases" `Quick
      test_fixed_differential_cases;
    Alcotest.test_case "partial differential" `Quick test_partial_differential;
    Alcotest.test_case "randomized differential" `Slow
      test_randomized_differential;
  ]
