(* The Query_set shared dispatch index (PR 3).

   The load-bearing property is differential: on any document and any
   query set, Shared dispatch must produce outcomes identical to the
   Naive feed-everyone loop. Exercised on hand-picked cases covering
   wildcards, backward axes and predicates, on randomized Randgen
   query/document pairs, on lenient-parsed mutated documents, and on
   truncated streams finished with [finish_partial].

   Also here: the satellite correctness fixes — id-based [Item.equal]
   agreeing with [Item.compare], monomorphic tuple merging in
   [Result_set.union], accumulated compile errors, and per-run budget
   abort isolation. *)

module Sax = Xaos_xml.Sax
module Event = Xaos_xml.Event
module Ast = Xaos_xpath.Ast
module Prng = Xaos_workloads.Prng
module Randgen = Xaos_workloads.Randgen
open Xaos_core

let item = Alcotest.testable Item.pp Item.equal

let it id tag level = Item.make ~id ~tag ~level

let outcome_str (o : Query_set.outcome) =
  Printf.sprintf "%s%s: [%s]" o.query_name
    (if o.aborted then " (aborted)" else "")
    (String.concat "; "
       (List.map (fun i -> Format.asprintf "%a" Item.pp i) o.items))

let check_outcomes msg expected actual =
  Alcotest.(check (list string))
    msg
    (List.map outcome_str expected)
    (List.map outcome_str actual)

let compile_exn pairs =
  match Query_set.compile pairs with
  | Ok t -> t
  | Error msg -> Alcotest.failf "Query_set.compile: %s" msg

(* ------------------------------------------------------------------ *)
(* Satellite fixes                                                     *)
(* ------------------------------------------------------------------ *)

let test_item_equal_is_id_based () =
  (* ids are unique document-order identifiers; equal must agree with
     compare (which orders by id) or dedup in Result_set.union is
     inconsistent *)
  let a = it 7 "a" 2 and b = it 7 "b" 5 in
  Alcotest.(check bool) "same id equal" true (Item.equal a b);
  Alcotest.(check int) "same id compare" 0 (Item.compare a b);
  Alcotest.(check bool) "diff id" false (Item.equal a (it 8 "a" 2))

let test_union_dedup_regression () =
  (* regression: with field-sensitive equal, two results for the same
     element id coming from different disjuncts survived the union *)
  let x =
    { Result_set.items = [ it 3 "a" 1 ]; tuples = None; matching_count = None }
  in
  let y =
    {
      Result_set.items = [ it 3 "a" 1; it 5 "b" 2 ];
      tuples = None;
      matching_count = None;
    }
  in
  let u = Result_set.union x y in
  Alcotest.(check (list item)) "deduped" [ it 3 "a" 1; it 5 "b" 2 ] u.items

let test_union_tuples_monomorphic () =
  (* tuple merge must not use polymorphic compare on Item.t arrays *)
  let t1 = [| it 1 "a" 1; it 2 "b" 2 |] in
  let t2 = [| it 1 "a" 1; it 3 "c" 2 |] in
  let x =
    {
      Result_set.items = [ it 1 "a" 1 ];
      tuples = Some [ t1 ];
      matching_count = None;
    }
  in
  let y =
    {
      Result_set.items = [ it 1 "a" 1 ];
      tuples = Some [ t1; t2 ];
      matching_count = None;
    }
  in
  let u = Result_set.union x y in
  match u.tuples with
  | None -> Alcotest.fail "expected tuples"
  | Some ts ->
    Alcotest.(check int) "tuple count" 2 (List.length ts);
    (* same-id-different-metadata duplicates also merge *)
    let t1' = [| it 1 "a" 9; it 2 "z" 9 |] in
    let z =
      { Result_set.items = []; tuples = Some [ t1' ]; matching_count = None }
    in
    let u2 = Result_set.union x z in
    Alcotest.(check int)
      "id-based tuple dedup" 1
      (List.length (Option.get u2.tuples))

let test_compile_errors_accumulate () =
  match
    Query_set.compile
      [ ("ok", "//a"); ("first-bad", "//["); ("second-bad", "///") ]
  with
  | Ok _ -> Alcotest.fail "expected compile failure"
  | Error msg ->
    let contains needle =
      let n = String.length needle and m = String.length msg in
      let rec go i = i + n <= m && (String.sub msg i n = needle || go (i + 1)) in
      Alcotest.(check bool) (needle ^ " mentioned") true (go 0)
    in
    contains "2 queries failed";
    contains "first-bad";
    contains "second-bad"

(* ------------------------------------------------------------------ *)
(* Shared dispatch: unit tests                                         *)
(* ------------------------------------------------------------------ *)

let events_of s = Sax.events_of_string s

(* The PR 8 extension of the oracle: the same (name, expression) pairs
   compiled in earliest-decision mode must produce outcomes identical to
   the deferred reference, and every run's mid-document [on_item] stream
   must be exactly its outcome's item list (same ids, same order, no
   duplicates, nothing missing) — including aborted/partial runs, whose
   certain items are flushed through the callback at the cut. *)
let check_earliest ?budget ?gate ~partial msg pairs events reference =
  let earliest_set =
    match
      Query_set.compile
        ~config:{ Engine.default_config with emission = Engine.Earliest }
        pairs
    with
    | Ok t -> t
    | Error e -> Alcotest.failf "earliest compile: %s" e
  in
  let streamed : (string, int list) Hashtbl.t = Hashtbl.create 8 in
  let on_item ~name (i : Item.t) =
    let sofar = Option.value ~default:[] (Hashtbl.find_opt streamed name) in
    Hashtbl.replace streamed name (i.Item.id :: sofar)
  in
  let s = Query_set.start ?budget ?gate ~on_item earliest_set in
  List.iter (Query_set.feed s) events;
  let outcomes =
    if partial then Query_set.finish_partial s else Query_set.finish s
  in
  check_outcomes (msg ^ ": earliest = deferred") reference outcomes;
  List.iter
    (fun (o : Query_set.outcome) ->
      let got =
        List.rev
          (Option.value ~default:[] (Hashtbl.find_opt streamed o.query_name))
      in
      Alcotest.(check (list int))
        (Printf.sprintf "%s: %s streamed = outcome" msg o.query_name)
        (List.map (fun (i : Item.t) -> i.Item.id) o.items)
        got)
    outcomes

let run_both ?budget t events =
  let shared = Query_set.run_events ?budget ~dispatch:Shared t events in
  let naive = Query_set.run_events ?budget ~dispatch:Naive t events in
  check_outcomes "shared = naive" naive shared;
  shared

let test_looking_for_update_path () =
  (* //a//b: before any <a> opens, only "a" is interesting; the top-level
     <b>s must be suppressed, the one under <a> delivered *)
  let t = compile_exn [ ("q", "//a//b") ] in
  let events = events_of "<r><b/><a><b/></a><b/></r>" in
  let s = Query_set.start t in
  List.iter (Query_set.feed s) events;
  let outcomes = Query_set.finish s in
  let dispatched, suppressed = Query_set.dispatch_stats s in
  (* starts: r,b,a,b,b -> only a and the inner b delivered (2 starts +
     2 ends); r and the outer b's suppressed *)
  Alcotest.(check int) "dispatched" 4 dispatched;
  Alcotest.(check int) "suppressed" 3 suppressed;
  (match outcomes with
  | [ o ] ->
    Alcotest.(check (list item)) "items" [ it 4 "b" 3 ] o.items;
    Alcotest.(check bool) "not aborted" false o.aborted
  | _ -> Alcotest.fail "one outcome expected");
  ignore (run_both t events)

let test_wildcard_bucket () =
  (* a wildcard frontier must receive every element event *)
  let t = compile_exn [ ("all", "//*"); ("b", "//b") ] in
  let events = events_of "<a><b/><z/></a>" in
  let s = Query_set.start t in
  List.iter (Query_set.feed s) events;
  let outcomes = Query_set.finish s in
  let _, suppressed = Query_set.dispatch_stats s in
  (* only "b" skips things: <a> and <z> starts *)
  Alcotest.(check int) "suppressed" 2 suppressed;
  (match outcomes with
  | [ all; b ] ->
    Alcotest.(check (list item))
      "wildcard items"
      [ it 1 "a" 1; it 2 "b" 2; it 3 "z" 2 ]
      all.items;
    Alcotest.(check (list item)) "named items" [ it 2 "b" 2 ] b.items
  | _ -> Alcotest.fail "two outcomes expected");
  ignore (run_both t events)

let test_engine_interest_transitions () =
  (* the raw engine-level notification protocol behind the index *)
  let dag =
    match Query.compile "//a/b" with
    | Ok q -> (match Query.disjuncts q with [ d ] -> d | _ -> assert false)
    | Error msg -> Alcotest.failf "compile: %s" msg
  in
  let log = ref [] in
  let e = Engine.create dag in
  Engine.subscribe_interest e
    {
      Engine.on_sym =
        (fun sym on -> log := (Xaos_xml.Symbol.name sym, on) :: !log);
      on_wildcard = (fun _ -> Alcotest.fail "no wildcard in //a/b");
    };
  Alcotest.(check (list (pair string bool)))
    "initial frontier"
    [ ("a", true) ]
    (List.rev !log);
  Engine.start_element e ~sym:(Xaos_xml.Symbol.intern "a") ~level:1 ();
  Engine.start_element e ~sym:(Xaos_xml.Symbol.intern "b") ~level:2 ();
  Engine.end_element e;
  Engine.end_element e;
  ignore (Engine.finish e);
  Alcotest.(check (list (pair string bool)))
    "transitions"
    [ ("a", true); ("b", true); ("b", false); ("a", false) ]
    (List.rev !log)

let test_budget_abort_isolation () =
  (* one run tripping its budget must not take the others down *)
  let t = compile_exn [ ("heavy", "//a"); ("light", "//r") ] in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<r>";
  for _ = 1 to 100 do
    Buffer.add_string buf "<a/>"
  done;
  Buffer.add_string buf "</r>";
  let events = events_of (Buffer.contents buf) in
  let check_mode dispatch =
    let outcomes = Query_set.run_events ~budget:50 ~dispatch t events in
    match outcomes with
    | [ heavy; light ] ->
      Alcotest.(check bool) "heavy aborted" true heavy.aborted;
      Alcotest.(check bool) "heavy partial nonempty" true (heavy.items <> []);
      Alcotest.(check bool)
        "heavy partial strict subset" true
        (List.length heavy.items < 100);
      Alcotest.(check bool) "light completed" false light.aborted;
      Alcotest.(check (list item)) "light items" [ it 1 "r" 1 ] light.items
    | _ -> Alcotest.fail "two outcomes expected"
  in
  check_mode Query_set.Shared;
  check_mode Query_set.Naive;
  ignore (run_both ~budget:50 t events)

(* ------------------------------------------------------------------ *)
(* Runtime registration (PR 6)                                         *)
(* ------------------------------------------------------------------ *)

let test_register_between_documents () =
  (* the registry mutates at runtime; live sessions keep their snapshot *)
  let t = compile_exn [ ("a", "//a") ] in
  let doc = "<r><a/><b/></r>" in
  let events = events_of doc in
  let s1 = Query_set.start t in
  Query_set.register t "b" (Query.compile_exn "//b");
  Alcotest.(check (list string)) "names" [ "a"; "b" ] (Query_set.names t);
  List.iter (Query_set.feed s1) events;
  Alcotest.(check int)
    "s1 snapshot predates register" 1
    (List.length (Query_set.finish s1));
  let s2 = Query_set.start t in
  Alcotest.(check bool) "unregister known" true (Query_set.unregister t "a");
  Alcotest.(check bool) "unregister unknown" false (Query_set.unregister t "a");
  List.iter (Query_set.feed s2) events;
  (match Query_set.finish s2 with
  | [ a; b ] ->
    Alcotest.(check (list item)) "a" [ it 2 "a" 2 ] a.items;
    Alcotest.(check (list item)) "b" [ it 3 "b" 2 ] b.items
  | _ -> Alcotest.fail "s2 keeps its two-query snapshot");
  let s3 = Query_set.start t in
  List.iter (Query_set.feed s3) events;
  match Query_set.finish s3 with
  | [ b ] -> Alcotest.(check string) "only b left" "b" b.query_name
  | _ -> Alcotest.fail "s3 sees the shrunk registry"

let test_add_run_mid_document () =
  (* ids: r=1 x=2 b=3 y=4 b=5 b=6 *)
  let doc = "<r><x><b/></x><y><b/><b/></y></r>" in
  let events = events_of doc in
  let check_mode dispatch =
    let t = compile_exn [ ("x", "//x") ] in
    let s = Query_set.start ~dispatch t in
    (* feed through </x> (events: start r, start x, start b, end b, end x) *)
    let prefix, rest =
      (List.filteri (fun i _ -> i < 5) events,
       List.filteri (fun i _ -> i >= 5) events)
    in
    List.iter (Query_set.feed s) prefix;
    (* a late subscription: sees elements from here on, with original ids *)
    Query_set.add_run s "late-b" (Query.compile_exn "//b");
    (* and one matching an open ancestor: the replayed chain must emit r *)
    Query_set.add_run s "late-r" (Query.compile_exn "//r");
    List.iter (Query_set.feed s) rest;
    (match Query_set.finish s with
    | [ x; late_b; late_r ] ->
      Alcotest.(check (list item)) "x" [ it 2 "x" 2 ] x.items;
      Alcotest.(check (list item))
        "late-b: only starts not yet seen"
        [ it 5 "b" 3; it 6 "b" 3 ]
        late_b.items;
      Alcotest.(check (list item))
        "late-r: open ancestor replayed"
        [ it 1 "r" 1 ]
        late_r.items
    | _ -> Alcotest.fail "three outcomes expected");
    (* duplicate live names are refused *)
    let s2 = Query_set.start ~dispatch t in
    Alcotest.check_raises "duplicate name"
      (Invalid_argument "Query_set.add_run: duplicate name x") (fun () ->
        Query_set.add_run s2 "x" (Query.compile_exn "//b"))
  in
  check_mode Query_set.Shared;
  check_mode Query_set.Naive

let test_remove_run_mid_document () =
  let doc = "<r><a/><a/><a/></r>" in
  let events = events_of doc in
  let check_mode dispatch =
    let t = compile_exn [ ("keep", "//r"); ("gone", "//a") ] in
    let s = Query_set.start ~dispatch t in
    let prefix, rest =
      (List.filteri (fun i _ -> i < 3) events,
       List.filteri (fun i _ -> i >= 3) events)
    in
    List.iter (Query_set.feed s) prefix;
    Alcotest.(check bool) "removed" true (Query_set.remove_run s "gone");
    Alcotest.(check bool) "already gone" false (Query_set.remove_run s "gone");
    List.iter (Query_set.feed s) rest;
    match Query_set.finish s with
    | [ keep ] ->
      Alcotest.(check string) "survivor" "keep" keep.query_name;
      Alcotest.(check (list item)) "survivor items" [ it 1 "r" 1 ] keep.items
    | _ -> Alcotest.fail "removed run must not appear in outcomes"
  in
  check_mode Query_set.Shared;
  check_mode Query_set.Naive

let test_registration_interleaved_with_streaming () =
  (* the satellite scenario: registration churn while documents stream,
     differential between dispatch modes at every step *)
  let rng = Prng.create 0xadd in
  let queries =
    [| "//a"; "//b"; "//a/b"; "//b/ancestor::a"; "//*"; "//a[b]" |]
  in
  let docs =
    [| "<r><a><b/></a><b/></r>"; "<r><b><a/></b><a><b/><b/></a></r>";
       "<a><b/><a><b/></a></a>" |]
  in
  let t = compile_exn [ ("q0", "//a") ] in
  let next = ref 1 in
  for step = 1 to 20 do
    (if Prng.bool rng then begin
       let name = Printf.sprintf "q%d" !next in
       incr next;
       Query_set.register t name (Query.compile_exn (Prng.pick rng queries))
     end
     else
       match Query_set.names t with
       | name :: _ when Query_set.size t > 1 ->
         ignore (Query_set.unregister t name)
       | _ -> ());
    let doc = docs.(step mod Array.length docs) in
    ignore (run_both t (events_of doc))
  done

(* ------------------------------------------------------------------ *)
(* Symbol.reset lifecycle (PR 6): long-lived registries must survive   *)
(* interning resets between documents                                  *)
(* ------------------------------------------------------------------ *)

let test_symbol_reset_between_documents () =
  let t =
    compile_exn
      [ ("q", "//person/name"); ("anc", "//name/ancestor::person");
        ("wild", "//*") ]
  in
  let doc =
    "<people><person><name>a</name></person><person><name>b</name>\
     </person></people>"
  in
  let expected =
    List.map outcome_str (Query_set.run_string ~dispatch:Shared t doc)
  in
  for round = 1 to 6 do
    Xaos_xml.Symbol.reset ();
    (* shift the fresh generation's symbol ids so a stale compiled-in id
       would resolve to the wrong tag, not just a missing one *)
    for i = 1 to round * 3 do
      ignore (Xaos_xml.Symbol.intern (Printf.sprintf "noise%d" i))
    done;
    List.iter
      (fun dispatch ->
        Alcotest.(check (list string))
          (Printf.sprintf "round %d" round)
          expected
          (List.map outcome_str (Query_set.run_string ~dispatch t doc)))
      [ Query_set.Shared; Query_set.Naive ]
  done

(* ------------------------------------------------------------------ *)
(* Budget_exceeded partial results (PR 6)                              *)
(* ------------------------------------------------------------------ *)

let test_budget_partial_results_reported () =
  (* the aborted run's items must be exactly what a lone Query.run with
     the same budget reports via finish_partial; the other run must be
     byte-identical to its unbudgeted result *)
  (* the budget caps retained (non-refuted) structures, so the light
     query must match few elements to stay under it while the heavy one
     blows past: 80 a's against 3 c's *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<r>";
  for _ = 1 to 80 do
    Buffer.add_string buf "<a/>"
  done;
  for _ = 1 to 3 do
    Buffer.add_string buf "<c/>"
  done;
  Buffer.add_string buf "</r>";
  let doc = Buffer.contents buf in
  let events = events_of doc in
  let budget = 30 in
  (* oracle: the heavy query alone, same budget *)
  let heavy_q = Query.compile_exn "//a" in
  let oracle =
    let run = Query.start ~budget heavy_q in
    try
      List.iter (Query.feed run) events;
      Alcotest.fail "oracle run should trip its budget"
    with Engine.Budget_exceeded _ -> (Query.finish_partial run).items
  in
  Alcotest.(check bool) "oracle nonempty" true (oracle <> []);
  let light_full =
    match Query_set.run_events (compile_exn [ ("light", "//c") ]) events with
    | [ o ] -> o.items
    | _ -> assert false
  in
  let t = compile_exn [ ("heavy", "//a"); ("light", "//c") ] in
  List.iter
    (fun dispatch ->
      match Query_set.run_events ~budget ~dispatch t events with
      | [ heavy; light ] ->
        Alcotest.(check bool) "heavy aborted" true heavy.aborted;
        Alcotest.(check bool) "heavy not failed" true (heavy.failed = None);
        Alcotest.(check (list item))
          "heavy partial = lone-run oracle" oracle heavy.items;
        Alcotest.(check bool) "light untouched flag" false light.aborted;
        Alcotest.(check (list item))
          "light untouched items" light_full light.items
      | _ -> Alcotest.fail "two outcomes expected")
    [ Query_set.Shared; Query_set.Naive ]

let test_fixed_differential_cases () =
  let doc =
    "<site><people><person><name>alice</name><age>30</age></person>\
     <person><name>bob</name></person></people>\
     <items><item><name>rock</name></item></items></site>"
  in
  let events = events_of doc in
  let sets =
    [
      [ ("q1", "//person/name"); ("q2", "//item//name"); ("q3", "/site/items") ];
      [ ("w", "//*"); ("deep", "//person/*"); ("none", "//missing") ];
      [
        ("anc", "//name/ancestor::person");
        ("par", "//name/parent::item");
        ("pred", "//person[age]");
      ];
      [
        ("text", "//name[text()='bob']");
        ("contains", "//name[contains(text(),'oc')]");
        ("attr", "//person[@id]");
      ];
    ]
  in
  List.iter
    (fun pairs ->
      let reference = run_both (compile_exn pairs) events in
      check_earliest ~partial:false "fixed" pairs events reference)
    sets

let test_partial_differential () =
  (* truncated streams: feed a prefix, finish_partial, compare modes *)
  let doc =
    "<site><a><b><c/></b><b/></a><a><b><d/><c/></b></a><e><b/></e></site>"
  in
  let events = events_of doc in
  let pairs = [ ("q1", "//a//c"); ("q2", "//b/ancestor::a"); ("q3", "//e") ] in
  let t = compile_exn pairs in
  let n = List.length events in
  List.iter
    (fun k ->
      let prefix = List.filteri (fun i _ -> i < k) events in
      let run dispatch =
        let s = Query_set.start ~dispatch t in
        List.iter (Query_set.feed s) prefix;
        Query_set.finish_partial s
      in
      let reference = run Query_set.Naive in
      check_outcomes
        (Printf.sprintf "partial at %d" k)
        reference (run Query_set.Shared);
      (* earliest + finish_partial: items certain at the truncation point
         come through on_item and agree with the partial outcomes *)
      check_earliest ~partial:true
        (Printf.sprintf "partial at %d" k)
        pairs prefix reference)
    [ n / 4; n / 2; (3 * n) / 4; n ]

let test_randomized_differential () =
  (* randomized query sets over Randgen documents; also replays each
     document through lenient parses of mutated bytes (PR-1 fuzz
     generators) so recovery streams hit the index too *)
  let rng = Prng.create 0x5e7 in
  for seed = 1 to 8 do
    let specs =
      List.init 3 (fun i ->
          Randgen.generate_spec ~size:4 ~seed:((seed * 13) + i) ())
    in
    let pairs =
      ("wild", "//*")
      :: List.mapi
           (fun i spec ->
             (Printf.sprintf "q%d" i, Ast.to_string spec.Randgen.query))
           specs
    in
    let t = compile_exn pairs in
    let doc =
      Randgen.document_string (List.hd specs) ~seed:(seed * 31) ~elements:150
    in
    let reference = run_both t (events_of doc) in
    check_earliest ~partial:false
      (Printf.sprintf "clean seed %d" seed)
      pairs (events_of doc) reference;
    (* mutated + lenient-recovered variant *)
    let mutated = Test_fuzz.mutate rng doc in
    match Sax.events_of_string ~mode:Sax.Lenient mutated with
    | events ->
      let reference = run_both t events in
      check_earliest ~partial:false
        (Printf.sprintf "mutated seed %d" seed)
        pairs events reference
    | exception Sax.Limit_exceeded _ -> ()
  done

(* ------------------------------------------------------------------ *)
(* Query-set compaction (PR 10)                                        *)
(* ------------------------------------------------------------------ *)

let test_class_key_equivalence () =
  let key s = Query.class_key (Query.compile_exn s) in
  Alcotest.(check string) "same text same class" (key "//a/b") (key "//a/b");
  Alcotest.(check string)
    "disjunct order irrelevant"
    (key "//a[b or c]")
    (key "//a[c or b]");
  Alcotest.(check bool) "different query" true (key "//a" <> key "//b");
  (* the key is structural, not symbol-id based: it must survive an
     interning reset (the broker resets every N documents) *)
  let before = key "//person/name" in
  Xaos_xml.Symbol.reset ();
  ignore (Xaos_xml.Symbol.intern "shift1");
  ignore (Xaos_xml.Symbol.intern "shift2");
  Alcotest.(check string) "survives Symbol.reset" before (key "//person/name");
  (* engine configuration is part of the class: an earliest-mode copy
     of a query must not share an engine with a deferred one *)
  let earliest =
    match
      Query.compile
        ~config:{ Engine.default_config with emission = Engine.Earliest }
        "//a/b"
    with
    | Ok q -> Query.class_key q
    | Error e -> Alcotest.failf "compile: %s" e
  in
  Alcotest.(check bool) "emission mode splits classes" true
    (earliest <> key "//a/b")

let test_gate_prefix_analysis () =
  let prefixes s = Query.gate_prefixes (Query.compile_exn s) in
  let gateable s = prefixes s <> None in
  (* predicate-free forward prefixes are gateable *)
  Alcotest.(check bool) "//a/b" true (gateable "//a/b");
  Alcotest.(check bool) "/site//item" true (gateable "/site//item");
  (match prefixes "//a/b" with
  | Some [ p ] -> Alcotest.(check int) "full path is the prefix" 2 (List.length p)
  | _ -> Alcotest.fail "//a/b: one disjunct prefix expected");
  (* a predicate on the first step empties the prefix *)
  Alcotest.(check bool) "//a[b] not gateable" false (gateable "//a[b]");
  (* subtree-zone remainders are safe behind the prefix *)
  Alcotest.(check bool) "//a/b[text()='x']" true (gateable "//a/b[text()='x']");
  Alcotest.(check bool) "//a/b[@id]" true (gateable "//a/b[@id]");
  (* a pure backward remainder stays on the open ancestor chain, which
     replay re-delivers *)
  Alcotest.(check bool) "//a/ancestor::b" true (gateable "//a/ancestor::b");
  (* ...but a forward axis OUT of the up zone may target elements that
     closed before the prefix fired: unsafe, must stay ungated *)
  Alcotest.(check bool)
    "//c/ancestor::d//e not gateable" false
    (gateable "//c/ancestor::d//e");
  (* text tests on up-zone elements need string value accumulated
     before activation: unsafe *)
  Alcotest.(check bool)
    "//a/ancestor::b[text()='x'] not gateable" false
    (gateable "//a/ancestor::b[text()='x']");
  (* disjuncts gate independently behind the shared predicate-free
     prefix... *)
  (match prefixes "//p/a[b or c]" with
  | Some [ p1; p2 ] ->
    Alcotest.(check int) "disjunct 1 prefix" 1 (List.length p1);
    Alcotest.(check int) "disjunct 2 prefix" 1 (List.length p2)
  | _ -> Alcotest.fail "//p/a[b or c]: two disjunct prefixes expected");
  (* ...but one unsafe disjunct poisons the whole query *)
  Alcotest.(check bool)
    "safe-or-unsafe not gateable" false
    (gateable "//p/a[b or ancestor::d//e]")

let test_compaction_duplicates_differential () =
  (* duplicate-heavy registry: 6 subscriptions, 3 equivalence classes *)
  let pairs =
    [
      ("a1", "//a"); ("a2", "//a"); ("b", "//b"); ("a3", "//a");
      ("or1", "//a[x or b]"); ("or2", "//a[b or x]");
    ]
  in
  let t = compile_exn pairs in
  Alcotest.(check int) "class count" 3 (Query_set.class_count t);
  let events = events_of "<r><a><b/><x/></a><b/><a/></r>" in
  let naive = Query_set.run_events ~dispatch:Naive t events in
  let uncompacted = Query_set.run_events ~compact:false t events in
  let compacted = Query_set.run_events ~compact:true t events in
  check_outcomes "uncompacted = naive" naive uncompacted;
  check_outcomes "compacted = naive" naive compacted;
  (* fan-out bookkeeping: every duplicate reports its class's sharing
     degree, singletons report 1 *)
  List.iter
    (fun (o : Query_set.outcome) ->
      let want =
        match o.query_name with
        | "a1" | "a2" | "a3" -> 3
        | "or1" | "or2" -> 2
        | _ -> 1
      in
      Alcotest.(check int) (o.query_name ^ " fanout") want o.fanout)
    compacted;
  (* session_stats exposes the compaction ratio's numerator/denominator *)
  let s = Query_set.start t in
  List.iter (Query_set.feed s) events;
  let classes, members, dormant = Query_set.session_stats s in
  Alcotest.(check int) "session classes" 3 classes;
  Alcotest.(check int) "session members" 6 members;
  Alcotest.(check int) "no gate, no dormant" 0 dormant;
  ignore (Query_set.finish s);
  (* earliest mode fans out through the same shared engines *)
  check_earliest ~partial:false "compaction" pairs events naive

let test_shared_class_remove_run_mid_document () =
  (* the satellite-2 regression: two subscribers share one class engine;
     removing one mid-document must not tear the engine down under the
     survivor *)
  let doc = "<r><a/><a/><a/></r>" in
  let events = events_of doc in
  let t = compile_exn [ ("keep", "//a"); ("drop", "//a") ] in
  Alcotest.(check int) "one shared class" 1 (Query_set.class_count t);
  let solo =
    match Query_set.run_events (compile_exn [ ("keep", "//a") ]) events with
    | [ o ] -> o.items
    | _ -> assert false
  in
  let s = Query_set.start t in
  let prefix, rest =
    (List.filteri (fun i _ -> i < 3) events,
     List.filteri (fun i _ -> i >= 3) events)
  in
  List.iter (Query_set.feed s) prefix;
  Alcotest.(check bool) "removed" true (Query_set.remove_run s "drop");
  List.iter (Query_set.feed s) rest;
  (match Query_set.finish s with
  | [ keep ] ->
    Alcotest.(check string) "survivor" "keep" keep.query_name;
    Alcotest.(check (list item)) "survivor sees the whole document" solo
      keep.items;
    Alcotest.(check int) "fanout back to 1" 1 keep.fanout
  | _ -> Alcotest.fail "exactly the survivor expected");
  (* removing the LAST member must still abort the engine (dispatch
     buckets drained), and a same-document re-add starts fresh *)
  let s2 = Query_set.start t in
  List.iter (Query_set.feed s2) prefix;
  Alcotest.(check bool) "first out" true (Query_set.remove_run s2 "keep");
  Alcotest.(check bool) "last out" true (Query_set.remove_run s2 "drop");
  List.iter (Query_set.feed s2) rest;
  Alcotest.(check (list string)) "all detached" []
    (List.map (fun (o : Query_set.outcome) -> o.query_name)
       (Query_set.finish s2))

let test_gate_differential () =
  (* the prefix gate must be invisible in results on every pattern mix,
     including the unsafe shapes it refuses to gate *)
  let docs =
    [
      "<r><b/><a><b/></a><b/></r>";
      (* e closes before c opens: the //c/ancestor::d//e trap document *)
      "<d><e/><f><c/></f></d>";
      "<site><people><person><name>x</name></person></people></site>";
      "<r><x><y><a><b/></a></y></x><a/></r>";
    ]
  in
  let pairs =
    [
      ("fwd", "//a/b"); ("deep", "//x//b"); ("trap", "//c/ancestor::d//e");
      ("anc", "//b/ancestor::a"); ("text", "//person/name[text()='x']");
      ("wild", "//*"); ("dup", "//a/b");
    ]
  in
  let t = compile_exn pairs in
  List.iter
    (fun doc ->
      let events = events_of doc in
      let naive = Query_set.run_events ~dispatch:Naive t events in
      check_outcomes ("gated = naive: " ^ doc) naive
        (Query_set.run_events ~gate:true t events);
      check_earliest ~gate:true ~partial:false ("gated earliest: " ^ doc)
        pairs events naive)
    docs;
  (* the trap query must genuinely match on the trap document — proving
     the gate would lose results if it gated it *)
  let trap_outcomes =
    Query_set.run_events ~dispatch:Naive t (events_of (List.nth docs 1))
  in
  let trap = List.find (fun (o : Query_set.outcome) -> o.query_name = "trap")
      trap_outcomes in
  Alcotest.(check bool) "trap query matches its document" true
    (trap.items <> [])

(* qcheck: earliest-vs-deferred over random query sets × chaos-faulted
   documents. Each seed draws three Randgen queries (backward axes and
   predicates included), builds a document, pushes it through a
   byte-level chaos fault and a lenient re-parse, and requires the
   earliest-mode outcomes — and every run's on_item stream — to agree
   with the deferred oracle. *)
let qcheck_earliest_chaos =
  QCheck.Test.make ~name:"qcheck: earliest = deferred under chaos faults"
    ~count:40
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 1_000_000))
    (fun seed ->
      let specs =
        List.init 3 (fun i ->
            Randgen.generate_spec ~size:4 ~seed:(seed + (i * 7919)) ())
      in
      let pairs =
        ("wild", "//*")
        :: List.mapi
             (fun i spec ->
               (Printf.sprintf "q%d" i, Ast.to_string spec.Randgen.query))
             specs
      in
      let t = compile_exn pairs in
      let doc =
        Randgen.document_string (List.hd specs) ~seed:(seed * 31)
          ~elements:120
      in
      let p = Xaos_xml.Chaos.plan ~seed ~rate:0.8 0 in
      let corrupted = Xaos_xml.Chaos.corrupt p doc in
      (match Sax.events_of_string ~mode:Sax.Lenient corrupted with
      | exception Sax.Limit_exceeded _ -> ()
      | events ->
        let reference = run_both t events in
        check_earliest ~partial:false
          (Printf.sprintf "chaos seed %d" seed)
          pairs events reference);
      true)

(* qcheck: compacted (and gated) engines vs independent ones. Each seed
   draws a few Randgen queries, then deliberately builds a duplicate- and
   shared-prefix-heavy subscription set from them (literal duplicates,
   reordered disjunctions, //-prefixed variants of the same steps), pushes
   a chaos-faulted document through, and requires the compacted session —
   with and without the prefix gate, in deferred and earliest modes — to
   agree with the uncompacted naive oracle outcome for outcome. *)
let qcheck_compaction_chaos =
  QCheck.Test.make
    ~name:"qcheck: compacted+gated = independent engines under chaos"
    ~count:30
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 1_000_000))
    (fun seed ->
      let specs =
        List.init 3 (fun i ->
            Randgen.generate_spec ~size:4 ~seed:(seed + (i * 104729)) ())
      in
      let base =
        List.map (fun spec -> Ast.to_string spec.Randgen.query) specs
      in
      let pairs =
        List.concat
          (List.mapi
             (fun i q ->
               [
                 (Printf.sprintf "q%d" i, q);
                 (* literal duplicate: same class, distinct subscriber *)
                 (Printf.sprintf "q%d-dup" i, q);
                 (* reordered disjunction: same class by sorted keys *)
                 (Printf.sprintf "q%d-or" i,
                  Printf.sprintf "%s[@k1 or @k2]" q);
                 (Printf.sprintf "q%d-ro" i,
                  Printf.sprintf "%s[@k2 or @k1]" q);
               ])
             base)
        @ [ ("wild", "//*"); ("wild-dup", "//*") ]
      in
      let t = compile_exn pairs in
      (* the construction guarantees sharing: at most one class per base
         query + one for the or-variants + one for //* *)
      Alcotest.(check bool)
        "sets actually compact" true
        (Query_set.class_count t < List.length pairs);
      let doc =
        Randgen.document_string (List.hd specs) ~seed:(seed * 37)
          ~elements:100
      in
      let p = Xaos_xml.Chaos.plan ~seed ~rate:0.7 0 in
      (match Sax.events_of_string ~mode:Sax.Lenient
               (Xaos_xml.Chaos.corrupt p doc) with
      | exception Sax.Limit_exceeded _ -> ()
      | events ->
        let naive = Query_set.run_events ~dispatch:Naive t events in
        check_outcomes "compacted = naive" naive
          (Query_set.run_events ~compact:true t events);
        check_outcomes "gated = naive" naive
          (Query_set.run_events ~gate:true t events);
        check_earliest ~partial:false
          (Printf.sprintf "compacted earliest seed %d" seed)
          pairs events naive;
        check_earliest ~gate:true ~partial:false
          (Printf.sprintf "gated earliest seed %d" seed)
          pairs events naive);
      true)

let suite =
  [
    Alcotest.test_case "item equal is id-based" `Quick
      test_item_equal_is_id_based;
    Alcotest.test_case "union dedup regression" `Quick
      test_union_dedup_regression;
    Alcotest.test_case "union tuples monomorphic" `Quick
      test_union_tuples_monomorphic;
    Alcotest.test_case "compile errors accumulate" `Quick
      test_compile_errors_accumulate;
    Alcotest.test_case "looking-for update path" `Quick
      test_looking_for_update_path;
    Alcotest.test_case "wildcard bucket" `Quick test_wildcard_bucket;
    Alcotest.test_case "engine interest transitions" `Quick
      test_engine_interest_transitions;
    Alcotest.test_case "budget abort isolation" `Quick
      test_budget_abort_isolation;
    Alcotest.test_case "register between documents" `Quick
      test_register_between_documents;
    Alcotest.test_case "add_run mid-document" `Quick test_add_run_mid_document;
    Alcotest.test_case "remove_run mid-document" `Quick
      test_remove_run_mid_document;
    Alcotest.test_case "registration interleaved with streaming" `Quick
      test_registration_interleaved_with_streaming;
    Alcotest.test_case "symbol reset between documents" `Quick
      test_symbol_reset_between_documents;
    Alcotest.test_case "budget partial results reported" `Quick
      test_budget_partial_results_reported;
    Alcotest.test_case "class key equivalence" `Quick
      test_class_key_equivalence;
    Alcotest.test_case "gate prefix analysis" `Quick test_gate_prefix_analysis;
    Alcotest.test_case "compaction duplicates differential" `Quick
      test_compaction_duplicates_differential;
    Alcotest.test_case "shared class remove_run mid-document" `Quick
      test_shared_class_remove_run_mid_document;
    Alcotest.test_case "gate differential" `Quick test_gate_differential;
    Alcotest.test_case "fixed differential cases" `Quick
      test_fixed_differential_cases;
    Alcotest.test_case "partial differential" `Quick test_partial_differential;
    Alcotest.test_case "randomized differential" `Slow
      test_randomized_differential;
    QCheck_alcotest.to_alcotest qcheck_earliest_chaos;
    QCheck_alcotest.to_alcotest qcheck_compaction_chaos;
  ]
