(* Stats aggregation semantics: how per-disjunct engine counters combine
   into the figure a user sees, and the edge cases of the Table 3
   discarded fraction. *)

open Xaos_core

let filled a b c d e f g h i j =
  let s = Stats.create () in
  s.Stats.elements_total <- a;
  s.Stats.elements_stored <- b;
  s.Stats.elements_discarded <- c;
  s.Stats.structures_created <- d;
  s.Stats.structures_refuted <- e;
  s.Stats.live_peak <- f;
  s.Stats.propagations <- g;
  s.Stats.undos <- h;
  s.Stats.max_depth <- i;
  s.Stats.parse_faults <- j;
  s.Stats.retained_bytes <- 100 * a;
  s.Stats.retained_peak_bytes <- 200 * a;
  s

let test_add_sums_and_maxes () =
  let a = filled 10 3 7 4 1 3 9 2 5 1 in
  let b = filled 20 5 15 6 2 4 11 3 2 2 in
  let sum = Stats.add a b in
  Alcotest.(check int) "elements_total summed" 30 sum.Stats.elements_total;
  Alcotest.(check int) "elements_stored summed" 8 sum.Stats.elements_stored;
  Alcotest.(check int) "elements_discarded summed" 22 sum.Stats.elements_discarded;
  Alcotest.(check int) "structures_created summed" 10 sum.Stats.structures_created;
  Alcotest.(check int) "structures_refuted summed" 3 sum.Stats.structures_refuted;
  (* disjunct engines hold their structures simultaneously: peaks add *)
  Alcotest.(check int) "live_peak summed" 7 sum.Stats.live_peak;
  Alcotest.(check int) "propagations summed" 20 sum.Stats.propagations;
  Alcotest.(check int) "undos summed" 5 sum.Stats.undos;
  (* both engines see the same document: depth is a max, not a sum *)
  Alcotest.(check int) "max_depth maxed" 5 sum.Stats.max_depth;
  Alcotest.(check int) "parse_faults summed" 3 sum.Stats.parse_faults;
  Alcotest.(check int) "retained_bytes summed" 3000 sum.Stats.retained_bytes;
  Alcotest.(check int) "retained_peak_bytes summed" 6000
    sum.Stats.retained_peak_bytes

let test_add_identity () =
  let a = filled 10 3 7 4 1 3 9 2 5 1 in
  let z = Stats.create () in
  let sum = Stats.add a z in
  List.iter2
    (fun (name, expected) (name', got) ->
      Alcotest.(check string) "field order" name name';
      Alcotest.(check int) name expected got)
    (Stats.to_fields a) (Stats.to_fields sum)

let test_discarded_fraction_empty () =
  (* no elements seen at all: the fraction is defined as 0, not NaN *)
  let s = Stats.create () in
  Alcotest.(check (float 0.)) "empty doc" 0. (Stats.discarded_fraction s)

let test_discarded_fraction_all_discarded () =
  (* a query matching nothing discards every element *)
  let q = Query.compile_exn "//zzz" in
  let result, s = Query.run_string_with_stats q "<a><b/><c><d/></c></a>" in
  Alcotest.(check int) "no results" 0 (List.length result.Result_set.items);
  Alcotest.(check int) "all elements seen" 4 s.Stats.elements_total;
  Alcotest.(check (float 0.)) "all discarded" 1. (Stats.discarded_fraction s)

let test_discarded_fraction_partial () =
  let s = Stats.create () in
  s.Stats.elements_total <- 8;
  s.Stats.elements_discarded <- 6;
  Alcotest.(check (float 1e-9)) "three quarters" 0.75
    (Stats.discarded_fraction s)

let test_to_fields_covers_all_counters () =
  let fields = Stats.to_fields (filled 1 2 3 4 5 6 7 8 9 10) in
  Alcotest.(check int) "twelve counters" 12 (List.length fields);
  let names = List.map fst fields in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " present") true (List.mem n names))
    [
      "elements_total"; "elements_stored"; "elements_discarded";
      "structures_created"; "structures_refuted"; "live_peak";
      "propagations"; "undos"; "max_depth"; "parse_faults";
      "retained_bytes"; "retained_peak_bytes";
    ]

let suite =
  [
    Alcotest.test_case "add sums counters, maxes depth" `Quick
      test_add_sums_and_maxes;
    Alcotest.test_case "add with zero is identity" `Quick test_add_identity;
    Alcotest.test_case "discarded_fraction on empty doc" `Quick
      test_discarded_fraction_empty;
    Alcotest.test_case "discarded_fraction when all discarded" `Quick
      test_discarded_fraction_all_discarded;
    Alcotest.test_case "discarded_fraction partial" `Quick
      test_discarded_fraction_partial;
    Alcotest.test_case "to_fields covers every counter" `Quick
      test_to_fields_covers_all_counters;
  ]
