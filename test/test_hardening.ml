(* Resource limits, lenient recovery policies, and graceful degradation
   on truncated input (Engine.abort / Query.finish_partial). *)

module Sax = Xaos_xml.Sax
module Event = Xaos_xml.Event
module Prng = Xaos_workloads.Prng
open Xaos_core

let start name level = Event.start_element ~name ~level ()

let end_ name level = Event.end_element ~name ~level ()

let check_events = Alcotest.(check (list (testable Event.pp Event.equal)))

let expect_limit kind f =
  match f () with
  | _ -> Alcotest.failf "expected Limit_exceeded %s" (Sax.limit_kind_name kind)
  | exception Sax.Limit_exceeded (_, k, _) ->
    Alcotest.(check string)
      "limit kind" (Sax.limit_kind_name kind) (Sax.limit_kind_name k)

(* an infinite input stream built from a repeated chunk, so limit trips
   must happen without ever reaching end of input *)
let endless chunk =
  let pos = ref 0 in
  Sax.of_function (fun buf n ->
      let written = ref 0 in
      while !written < n do
        Bytes.set buf !written chunk.[!pos mod String.length chunk];
        incr pos;
        incr written
      done;
      n)

let depth_bomb () =
  (* an unbounded <a><a><a>… nest must trip max-depth, not blow the heap *)
  expect_limit Sax.Max_depth (fun () -> Sax.iter ignore (endless "<a>"))

let entity_flood () =
  (* one root, then an unbounded run of entity references *)
  let first = ref true in
  let p =
    Sax.of_function (fun buf n ->
        let chunk = if !first then "<a>" else "&amp;" in
        first := false;
        let len = min n (String.length chunk) in
        Bytes.blit_string chunk 0 buf 0 len;
        len)
  in
  expect_limit Sax.Max_ref_expansions (fun () -> Sax.iter ignore p)

let giant_name () =
  let doc = "<" ^ String.make 100_000 'x' ^ "/>" in
  expect_limit Sax.Max_name_bytes (fun () -> Sax.events_of_string doc)

let attribute_flood () =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "<a";
  for i = 1 to 2000 do
    Buffer.add_string buf (Printf.sprintf " x%d=\"v\"" i)
  done;
  Buffer.add_string buf "/>";
  expect_limit Sax.Max_attr_count (fun () ->
      Sax.events_of_string (Buffer.contents buf))

let input_byte_cap () =
  let limits = { Sax.default_limits with Sax.max_input_bytes = 16 } in
  expect_limit Sax.Max_input_bytes (fun () ->
      Sax.events_of_string ~limits "<a><b>some text longer than the cap</b></a>")

let fault_cap () =
  (* the recovery-attempt budget is itself a limit: endless junk in
     lenient mode must not loop forever *)
  let limits = { Sax.default_limits with Sax.max_faults = 10 } in
  expect_limit Sax.Max_faults (fun () ->
      Sax.iter ignore
        (Sax.of_string ~limits ~mode:Sax.Lenient
           (String.concat "" (List.init 100 (fun _ -> "<a></b>")))))

(* --- lenient recovery policies ---------------------------------------- *)

let lenient ?on_fault doc = Sax.events_of_string ~mode:Sax.Lenient ?on_fault doc

let auto_close_mismatch () =
  let faults = ref 0 in
  let events = lenient ~on_fault:(fun _ -> incr faults) "<a><b></a>" in
  check_events "auto-closed"
    [ start "a" 1; start "b" 2; end_ "b" 2; end_ "a" 1 ]
    events;
  Alcotest.(check int) "one fault" 1 !faults

let drop_stray_end () =
  let events = lenient "<a></b></a>" in
  check_events "stray end dropped" [ start "a" 1; end_ "a" 1 ] events

let drop_duplicate_attribute () =
  let events = lenient {|<a x="1" x="2"/>|} in
  match events with
  | Event.Start_element { attributes; _ } :: _ ->
    Alcotest.(check (list (pair string string)))
      "first wins"
      [ ("x", "1") ]
      (List.map
         (fun (a : Event.attribute) -> (a.attr_name, a.attr_value))
         attributes)
  | _ -> Alcotest.fail "expected a start event"

let unknown_entity_literal () =
  let events = lenient "<a>&nbsp;</a>" in
  check_events "literal entity"
    [ start "a" 1; Event.Text "&nbsp;"; end_ "a" 1 ]
    events

let close_at_eof () =
  let events = lenient "<a><b>" in
  check_events "closed at eof"
    [ start "a" 1; start "b" 2; end_ "b" 2; end_ "a" 1 ]
    events

let multiple_roots () =
  let events = lenient "<a/><b/>" in
  check_events "document sequence"
    [ start "a" 1; end_ "a" 1; start "b" 1; end_ "b" 1 ]
    events

let strict_still_strict () =
  (* the same inputs must keep failing in the default mode *)
  List.iter
    (fun doc ->
      match Sax.events_of_string doc with
      | _ -> Alcotest.failf "strict mode accepted %S" doc
      | exception Sax.Error _ -> ())
    [ "<a><b></a>"; "<a></b></a>"; {|<a x="1" x="2"/>|}; "<a>&nbsp;</a>";
      "<a><b>"; "<a/><b/>" ]

(* --- graceful degradation --------------------------------------------- *)

let budget_trip () =
  let q = Query.compile_exn "//a" in
  let run = Query.start ~budget:3 q in
  let tripped =
    try
      for level = 1 to 10 do
        Query.feed run (start "a" level)
      done;
      false
    with Engine.Budget_exceeded { live; budget } ->
      Alcotest.(check int) "budget" 3 budget;
      Alcotest.(check bool) "live above budget" true (live > 3);
      true
  in
  Alcotest.(check bool) "tripped" true tripped;
  (* the engine is still consistent: partial results are available *)
  let partial = Query.finish_partial run in
  Alcotest.(check bool)
    "partial nonempty" true
    (List.length partial.Result_set.items > 0)

let abort_subset_of_full ~query ~events ~cuts ~seed =
  let q = Query.compile_exn query in
  let full = Query.run_events q events in
  let arr = Array.of_list events in
  let rng = Prng.create seed in
  for _ = 1 to cuts do
    let cut = Prng.int rng (Array.length arr + 1) in
    let run = Query.start q in
    for i = 0 to cut - 1 do
      Query.feed run arr.(i)
    done;
    let partial = Query.finish_partial run in
    List.iter
      (fun item ->
        if not (List.exists (Item.equal item) full.Result_set.items) then
          Alcotest.failf "cut %d: %s not in the full result" cut
            (Format.asprintf "%a" Item.pp item))
      partial.Result_set.items
  done;
  full

let truncated_xmark_partial () =
  let events = ref [] in
  let _ =
    Xaos_workloads.Xmark.generate
      (Xaos_workloads.Xmark.config 0.002)
      (fun ev -> events := ev :: !events)
  in
  let events = List.rev !events in
  let full =
    abort_subset_of_full ~query:Xaos_workloads.Xmark.paper_query ~events
      ~cuts:20 ~seed:7
  in
  (* a cut after the last event must lose nothing *)
  let q = Query.compile_exn Xaos_workloads.Xmark.paper_query in
  let run = Query.start q in
  List.iter (Query.feed run) events;
  let partial = Query.finish_partial run in
  Alcotest.(check int)
    "no loss at full length"
    (List.length full.Result_set.items)
    (List.length partial.Result_set.items)

let truncated_backward_axis_partial () =
  (* backward axes exercise the optimistic-matching undo path on abort *)
  let spec = Xaos_workloads.Randgen.generate_spec ~seed:11 () in
  let events = ref [] in
  let _ =
    Xaos_workloads.Randgen.document spec ~seed:77 ~elements:300 (fun ev ->
        events := ev :: !events)
  in
  let query = Xaos_xpath.Ast.to_string spec.Xaos_workloads.Randgen.query in
  ignore
    (abort_subset_of_full ~query ~events:(List.rev !events) ~cuts:15 ~seed:13)

let text_equality_not_certain () =
  (* text()='v' is not monotone under document extension, so an element
     still open at the truncation point must not be reported *)
  let q = Query.compile_exn "//a[text()='v']" in
  let run = Query.start q in
  Query.feed run (start "a" 1);
  Query.feed run (Event.Text "v");
  let partial = Query.finish_partial run in
  Alcotest.(check int) "withheld" 0 (List.length partial.Result_set.items);
  (* whereas a closed element is certain *)
  let run2 = Query.start q in
  Query.feed run2 (start "a" 1);
  Query.feed run2 (Event.Text "v");
  Query.feed run2 (end_ "a" 1);
  let partial2 = Query.finish_partial run2 in
  Alcotest.(check int) "certain" 1 (List.length partial2.Result_set.items)

let auto_close_burst () =
  (* Regression for the recovery event queue: a single mismatched end tag
     below 20k open elements enqueues 20k auto-close events at once. The
     queue is a front/back deque with O(1) amortized push and pop, so this
     is linear; the old [pending @ [ev]] representation rescanned the
     whole queue per push. The assertions pin the repaired stream itself:
     balanced, properly nested, innermost-first closes. *)
  let n = 20_000 in
  let buf = Buffer.create ((n * 3) + 16) in
  Buffer.add_string buf "<r>";
  for _ = 1 to n do
    Buffer.add_string buf "<a>"
  done;
  Buffer.add_string buf "</r>";
  let check_stream label parser =
    let starts = ref 0 and ends = ref 0 and depth = ref 0 in
    let nested = ref true in
    Sax.iter
      (fun ev ->
        match ev with
        | Event.Start_element { level; _ } ->
          incr starts;
          incr depth;
          if level <> !depth then nested := false
        | Event.End_element { level; _ } ->
          incr ends;
          if level <> !depth then nested := false;
          decr depth
        | _ -> ())
      parser;
    Alcotest.(check bool) (label ^ ": levels nest") true !nested;
    Alcotest.(check int) (label ^ ": balanced") 0 !depth;
    Alcotest.(check int) (label ^ ": starts") (n + 1) !starts;
    Alcotest.(check int) (label ^ ": ends") (n + 1) !ends
  in
  check_stream "mismatch burst"
    (Sax.of_string ~limits:Sax.unlimited ~mode:Sax.Lenient
       (Buffer.contents buf));
  (* same burst from end-of-input recovery (close_all_open) *)
  let truncated = String.sub (Buffer.contents buf) 0 (3 * (n + 1)) in
  check_stream "eof burst"
    (Sax.of_string ~limits:Sax.unlimited ~mode:Sax.Lenient truncated)

let suite =
  [
    Alcotest.test_case "depth bomb" `Quick depth_bomb;
    Alcotest.test_case "auto-close burst is linear" `Quick auto_close_burst;
    Alcotest.test_case "entity flood" `Quick entity_flood;
    Alcotest.test_case "giant name" `Quick giant_name;
    Alcotest.test_case "attribute flood" `Quick attribute_flood;
    Alcotest.test_case "input byte cap" `Quick input_byte_cap;
    Alcotest.test_case "fault cap" `Quick fault_cap;
    Alcotest.test_case "lenient: auto-close mismatch" `Quick
      auto_close_mismatch;
    Alcotest.test_case "lenient: drop stray end" `Quick drop_stray_end;
    Alcotest.test_case "lenient: drop duplicate attribute" `Quick
      drop_duplicate_attribute;
    Alcotest.test_case "lenient: unknown entity literal" `Quick
      unknown_entity_literal;
    Alcotest.test_case "lenient: close at eof" `Quick close_at_eof;
    Alcotest.test_case "lenient: multiple roots" `Quick multiple_roots;
    Alcotest.test_case "strict rejects what lenient repairs" `Quick
      strict_still_strict;
    Alcotest.test_case "engine budget trips" `Quick budget_trip;
    Alcotest.test_case "truncated xmark: partial subset" `Quick
      truncated_xmark_partial;
    Alcotest.test_case "truncated randgen: partial subset" `Quick
      truncated_backward_axis_partial;
    Alcotest.test_case "text equality withheld on abort" `Quick
      text_equality_not_certain;
  ]
