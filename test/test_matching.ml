(* Unit tests of the matching-structure machinery in isolation: slot
   stores with O(1) removal, placement bookkeeping, the recursive refute
   cascade, counting and traversal. *)

open Xaos_core

let item id = Item.make ~id ~tag:"t" ~level:1

let mk ?(serial = ref 0) ?(pointer_slots = [||]) xnode =
  incr serial;
  Matching.create ~serial:!serial ~xnode ~item:(item !serial) ~pointer_slots

let stats () = Stats.create ()

let test_empty_structure_satisfied () =
  let m = mk 1 in
  Alcotest.(check bool) "no slots = satisfied" true (Matching.satisfied_now m)

let test_slot_filling () =
  let serial = ref 0 in
  let parent = mk ~serial ~pointer_slots:[| true; false |] 1 in
  Alcotest.(check bool) "both empty" false (Matching.satisfied_now parent);
  Alcotest.(check bool) "slot 0 empty" false (Matching.slot_filled parent 0);
  let child_a = mk ~serial 2 in
  Matching.place ~child:child_a ~target:parent ~slot:0;
  Alcotest.(check bool) "slot 0 filled" true (Matching.slot_filled parent 0);
  Alcotest.(check bool) "still not satisfied" false (Matching.satisfied_now parent);
  let child_b = mk ~serial 3 in
  Matching.place ~child:child_b ~target:parent ~slot:1;
  Alcotest.(check bool) "counter slot filled" true (Matching.slot_filled parent 1);
  Alcotest.(check bool) "satisfied" true (Matching.satisfied_now parent)

let test_placements_recorded () =
  let serial = ref 0 in
  let p1 = mk ~serial ~pointer_slots:[| true |] 1 in
  let p2 = mk ~serial ~pointer_slots:[| true |] 1 in
  let child = mk ~serial 2 in
  Matching.place ~child ~target:p1 ~slot:0;
  Matching.place ~child ~target:p2 ~slot:0;
  Alcotest.(check int) "two placements" 2 (List.length child.Matching.placements)

let test_refute_removes_from_targets () =
  let serial = ref 0 in
  let parent = mk ~serial ~pointer_slots:[| true |] 1 in
  let a = mk ~serial 2 in
  let b = mk ~serial 2 in
  Matching.place ~child:a ~target:parent ~slot:0;
  Matching.place ~child:b ~target:parent ~slot:0;
  Matching.refute ~stats:(stats ()) a;
  Alcotest.(check bool) "a refuted" true (a.Matching.state = Matching.Refuted);
  Alcotest.(check bool) "slot still filled by b" true
    (Matching.slot_filled parent 0);
  Matching.refute ~stats:(stats ()) b;
  Alcotest.(check bool) "slot empty" false (Matching.slot_filled parent 0)

let test_refute_cascades_through_satisfied () =
  let serial = ref 0 in
  let grandparent = mk ~serial ~pointer_slots:[| true |] 1 in
  let parent = mk ~serial ~pointer_slots:[| true |] 2 in
  let child = mk ~serial 3 in
  Matching.place ~child ~target:parent ~slot:0;
  parent.Matching.state <- Matching.Satisfied;
  Matching.place ~child:parent ~target:grandparent ~slot:0;
  grandparent.Matching.state <- Matching.Satisfied;
  let st = stats () in
  Matching.refute ~stats:st child;
  Alcotest.(check bool) "parent revoked" true
    (parent.Matching.state = Matching.Refuted);
  Alcotest.(check bool) "grandparent revoked" true
    (grandparent.Matching.state = Matching.Refuted);
  Alcotest.(check int) "two undos" 2 st.Stats.undos

let test_refute_does_not_cascade_through_pending () =
  let serial = ref 0 in
  let parent = mk ~serial ~pointer_slots:[| true |] 1 in
  let child = mk ~serial 2 in
  Matching.place ~child ~target:parent ~slot:0;
  (* parent still pending: removal only, no revocation *)
  Matching.refute ~stats:(stats ()) child;
  Alcotest.(check bool) "parent untouched" true
    (parent.Matching.state = Matching.Pending);
  Alcotest.(check bool) "slot empty" false (Matching.slot_filled parent 0)

let test_refute_idempotent () =
  let serial = ref 0 in
  let parent = mk ~serial ~pointer_slots:[| false |] 1 in
  let child = mk ~serial 2 in
  Matching.place ~child ~target:parent ~slot:0;
  let st = stats () in
  Matching.refute ~stats:st child;
  Matching.refute ~stats:st child;
  (* counter must not go negative from a double refute *)
  Alcotest.(check bool) "counter empty exactly once" false
    (Matching.slot_filled parent 0);
  Alcotest.(check int) "one undo" 1 st.Stats.undos

let test_counter_slots () =
  let serial = ref 0 in
  let parent = mk ~serial ~pointer_slots:[| false |] 1 in
  let kids = List.init 5 (fun _ -> mk ~serial 2) in
  List.iter (fun child -> Matching.place ~child ~target:parent ~slot:0) kids;
  Alcotest.(check bool) "filled" true (Matching.slot_filled parent 0);
  List.iteri
    (fun i child ->
      Matching.refute ~stats:(stats ()) child;
      Alcotest.(check bool)
        (Printf.sprintf "after %d removals" (i + 1))
        (i < 4)
        (Matching.slot_filled parent 0))
    kids

let test_swap_remove_many () =
  (* removing in arbitrary order must keep the store consistent *)
  let serial = ref 0 in
  let parent = mk ~serial ~pointer_slots:[| true |] 1 in
  let kids = Array.init 20 (fun _ -> mk ~serial 2) in
  Array.iter (fun child -> Matching.place ~child ~target:parent ~slot:0) kids;
  let order = [ 10; 0; 19; 5; 5 (* no-op: already refuted *); 7; 3 ] in
  List.iter (fun i -> Matching.refute ~stats:(stats ()) kids.(i)) order;
  let remaining =
    Matching.collect_outputs ~is_output:(fun x -> x = 2) parent
  in
  Alcotest.(check int) "14 left" 14 (List.length remaining)

let test_count_matchings () =
  (* parent with two slots, 2 and 3 children: 6 combinations *)
  let serial = ref 0 in
  let parent = mk ~serial ~pointer_slots:[| true; true |] 1 in
  for _ = 1 to 2 do
    Matching.place ~child:(mk ~serial 2) ~target:parent ~slot:0
  done;
  for _ = 1 to 3 do
    Matching.place ~child:(mk ~serial 3) ~target:parent ~slot:1
  done;
  Alcotest.(check int) "2*3" 6 (Matching.count_matchings parent)

let test_count_matchings_shared_dag () =
  (* a child shared by two parents counts once per reference, memoized *)
  let serial = ref 0 in
  let root = mk ~serial ~pointer_slots:[| true |] 0 in
  let p1 = mk ~serial ~pointer_slots:[| true |] 1 in
  let p2 = mk ~serial ~pointer_slots:[| true |] 1 in
  let shared = mk ~serial ~pointer_slots:[||] 2 in
  Matching.place ~child:shared ~target:p1 ~slot:0;
  Matching.place ~child:shared ~target:p2 ~slot:0;
  Matching.place ~child:p1 ~target:root ~slot:0;
  Matching.place ~child:p2 ~target:root ~slot:0;
  Alcotest.(check int) "two matchings" 2 (Matching.count_matchings root)

let test_count_requires_pointers () =
  let serial = ref 0 in
  let parent = mk ~serial ~pointer_slots:[| false |] 1 in
  Matching.place ~child:(mk ~serial 2) ~target:parent ~slot:0;
  match Matching.count_matchings parent with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_collect_outputs_dedups_structures () =
  let serial = ref 0 in
  let root = mk ~serial ~pointer_slots:[| true; true |] 0 in
  let shared = mk ~serial 7 in
  Matching.place ~child:shared ~target:root ~slot:0;
  Matching.place ~child:shared ~target:root ~slot:1;
  let outputs = Matching.collect_outputs ~is_output:(fun x -> x = 7) root in
  Alcotest.(check int) "visited once" 1 (List.length outputs)

let test_enumerate_tuples () =
  let serial = ref 0 in
  let root = mk ~serial ~pointer_slots:[| true; true |] 0 in
  for _ = 1 to 2 do
    Matching.place ~child:(mk ~serial 1) ~target:root ~slot:0
  done;
  for _ = 1 to 2 do
    Matching.place ~child:(mk ~serial 2) ~target:root ~slot:1
  done;
  let tuples = Matching.enumerate_tuples ~outputs:[| 1; 2 |] root in
  Alcotest.(check int) "cross product" 4 (List.length tuples);
  List.iter
    (fun tuple -> Alcotest.(check int) "arity" 2 (Array.length tuple))
    tuples

let suite =
  [
    ("empty structure satisfied", `Quick, test_empty_structure_satisfied);
    ("slot filling", `Quick, test_slot_filling);
    ("placements recorded", `Quick, test_placements_recorded);
    ("refute removes", `Quick, test_refute_removes_from_targets);
    ("refute cascades", `Quick, test_refute_cascades_through_satisfied);
    ("refute stops at pending", `Quick, test_refute_does_not_cascade_through_pending);
    ("refute idempotent", `Quick, test_refute_idempotent);
    ("counter slots", `Quick, test_counter_slots);
    ("swap-remove many", `Quick, test_swap_remove_many);
    ("count matchings", `Quick, test_count_matchings);
    ("count with sharing", `Quick, test_count_matchings_shared_dag);
    ("count requires pointers", `Quick, test_count_requires_pointers);
    ("collect dedups", `Quick, test_collect_outputs_dedups_structures);
    ("enumerate tuples", `Quick, test_enumerate_tuples);
  ]
