(* The resilient pub/sub service (PR 6): quarantine policy, admission
   control, broker supervision, wire protocol, and the chaos soak.

   The soak is the acceptance test of the whole subsystem: a real server
   on a real Unix-domain socket, thousands of documents with chaos
   faults against a hundred live subscriptions, differential checks
   against a clean oracle, and a gate on zero crashes. *)

module Json = Xaos_obs.Json
module Sax = Xaos_xml.Sax
open Xaos_service

(* ------------------------------------------------------------------ *)
(* Quarantine                                                          *)
(* ------------------------------------------------------------------ *)

let test_quarantine_threshold_and_backoff () =
  let q =
    Quarantine.create
      ~config:{ Quarantine.threshold = 2; base_penalty = 4; max_penalty = 16 }
      ()
  in
  let fail now =
    Quarantine.record_failure q ~now ~name:"s" ~reason:"budget-exceeded"
  in
  Alcotest.(check bool) "below threshold" true (fail 1 = `Counted);
  Alcotest.(check bool) "not yet quarantined" false (Quarantine.is_quarantined q "s");
  Alcotest.(check bool) "threshold crossed" true (fail 2 = `Quarantined);
  Alcotest.(check bool) "now quarantined" true (Quarantine.is_quarantined q "s");
  Alcotest.(check (option string))
    "reason kept" (Some "budget-exceeded") (Quarantine.reason q "s");
  (* release at tick 2 + 4 = 6 *)
  Alcotest.(check (list string)) "not due early" [] (Quarantine.due q ~now:5);
  Alcotest.(check (list string)) "due at release" [ "s" ] (Quarantine.due q ~now:6);
  Quarantine.readmit q "s";
  Alcotest.(check bool) "readmitted" false (Quarantine.is_quarantined q "s");
  Alcotest.(check int) "transitions" 1 (Quarantine.times_quarantined q);
  Alcotest.(check int) "readmissions" 1 (Quarantine.times_readmitted q);
  (* probation: failing again re-quarantines with a doubled penalty *)
  ignore (fail 10);
  Alcotest.(check bool) "re-quarantined" true (fail 11 = `Quarantined);
  Alcotest.(check (list string)) "doubled penalty" [] (Quarantine.due q ~now:18);
  Alcotest.(check (list string))
    "release at 11+8" [ "s" ] (Quarantine.due q ~now:19)

let test_quarantine_success_resets_and_decays () =
  let q =
    Quarantine.create
      ~config:{ Quarantine.threshold = 2; base_penalty = 4; max_penalty = 64 }
      ()
  in
  let fail now =
    Quarantine.record_failure q ~now ~name:"s" ~reason:"raised: x"
  in
  (* consecutive counting: a success between failures resets the count *)
  ignore (fail 1);
  Quarantine.record_success q ~name:"s";
  Alcotest.(check bool) "count reset" true (fail 2 = `Counted);
  Alcotest.(check bool) "then quarantined" true (fail 3 = `Quarantined);
  Quarantine.readmit q "s";
  (* penalty after one quarantine is 8; clean documents halve it back *)
  Quarantine.record_success q ~name:"s";
  ignore (fail 20);
  Alcotest.(check bool) "quarantined again" true (fail 21 = `Quarantined);
  (* decayed back to base 4: release at 21 + 4 *)
  Alcotest.(check (list string)) "decayed penalty" [ "s" ] (Quarantine.due q ~now:25);
  Quarantine.forget q "s";
  Alcotest.(check (list (triple string string int)))
    "forgotten" [] (Quarantine.quarantined q)

(* ------------------------------------------------------------------ *)
(* Ingress                                                             *)
(* ------------------------------------------------------------------ *)

let test_ingress_watermarks_and_shedding () =
  let q = Ingress.create ~low:1 ~high:4 () in
  for i = 1 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "accept %d" i)
      true
      (Ingress.offer q ~priority:0 i = Ingress.Accepted)
  done;
  Alcotest.(check bool) "overloaded at high" true (Ingress.overloaded q);
  Alcotest.(check bool)
    "equal priority shed" true
    (Ingress.offer q ~priority:0 99 = Ingress.Shed_incoming);
  (* higher priority displaces the youngest lowest-priority item (4) *)
  (match Ingress.offer q ~priority:5 100 with
  | Ingress.Displaced v -> Alcotest.(check int) "victim is youngest" 4 v
  | _ -> Alcotest.fail "expected displacement");
  Alcotest.(check int) "length unchanged" 4 (Ingress.length q);
  (* take order: priority first, FIFO within priority *)
  Alcotest.(check (option int)) "priority first" (Some 100) (Ingress.take q);
  Alcotest.(check (option int)) "then FIFO" (Some 1) (Ingress.take q);
  Alcotest.(check bool) "still overloaded above low" true (Ingress.overloaded q);
  ignore (Ingress.take q);
  (* hysteresis: len 1 = low clears the overload *)
  Alcotest.(check bool) "cleared at low" false (Ingress.overloaded q);
  Alcotest.(check bool)
    "accepting again" true
    (Ingress.offer q ~priority:0 7 = Ingress.Accepted);
  Alcotest.(check int) "sheds counted" 1 (Ingress.shed_count q);
  Alcotest.(check int) "displacements counted" 1 (Ingress.displaced_count q);
  Alcotest.(check int) "one overload entry" 1 (Ingress.overload_entries q)

let test_ingress_close_drains () =
  let q = Ingress.create ~high:4 () in
  ignore (Ingress.offer q ~priority:0 1);
  ignore (Ingress.offer q ~priority:0 2);
  Ingress.close q;
  Alcotest.(check bool)
    "closed sheds" true
    (Ingress.offer q ~priority:9 3 = Ingress.Shed_incoming);
  Alcotest.(check (option int)) "drains 1" (Some 1) (Ingress.take q);
  Alcotest.(check (option int)) "drains 2" (Some 2) (Ingress.take q);
  Alcotest.(check (option int)) "then None" None (Ingress.take q)

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let test_protocol_roundtrip () =
  let reqs =
    [ Protocol.Subscribe { name = "q1"; query = "//a//b" };
      Protocol.Unsubscribe { name = "q1" };
      Protocol.Publish { doc_id = "d-1"; priority = 3; doc = "<a>\"x\"</a>" };
      Protocol.Stats; Protocol.Report; Protocol.Shutdown ]
  in
  List.iter
    (fun r ->
      let line = Protocol.to_line (Protocol.request_to_json r) in
      Alcotest.(check bool)
        ("single line: " ^ Protocol.op_name r)
        true
        (String.index line '\n' = String.length line - 1);
      match Protocol.request_of_line (String.trim line) with
      | Ok r' ->
        Alcotest.(check bool) ("roundtrip " ^ Protocol.op_name r) true (r = r')
      | Error e -> Alcotest.failf "roundtrip %s: %s" (Protocol.op_name r) e)
    reqs;
  (* defaulted priority *)
  (match Protocol.request_of_line {|{"op":"publish","id":"d","doc":"<a/>"}|} with
  | Ok (Protocol.Publish { priority = 0; _ }) -> ()
  | _ -> Alcotest.fail "priority should default to 0");
  List.iter
    (fun bad ->
      match Protocol.request_of_line bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should reject: %s" bad)
    [ "nonsense"; "{}"; {|{"op":"launch"}|}; {|{"op":"subscribe","name":"x"}|} ]

(* ------------------------------------------------------------------ *)
(* Broker supervision (no socket)                                      *)
(* ------------------------------------------------------------------ *)

let broker_config =
  { Broker.budget = Some 40; deadline_s = None;
    limits = { Sax.default_limits with max_text_bytes = 4096 };
    quarantine = { Quarantine.threshold = 2; base_penalty = 3; max_penalty = 24 };
    reset_symbols_every = 5 }

let heavy_doc =
  (* enough nesting that //*[*]//* exceeds the 40-structure budget while
     the selective queries stay tiny *)
  "<r>" ^ String.concat "" (List.init 12 (fun i ->
      Printf.sprintf "<a><b><c>x%d</c></b></a>" i)) ^ "</r>"

let test_broker_quarantine_lifecycle () =
  let b = Broker.create ~config:broker_config () in
  Alcotest.(check bool) "healthy sub" true
    (Broker.subscribe b ~name:"c" ~query:"//b/c" = Ok ());
  Alcotest.(check bool) "poison sub" true
    (Broker.subscribe b ~name:"poison" ~query:"//*[*]//*" = Ok ());
  Alcotest.(check bool) "dup refused" true
    (Result.is_error (Broker.subscribe b ~name:"c" ~query:"//a"));
  (* doc 1: poison aborts (counted), healthy matches *)
  let o1 = Broker.publish b ~doc_id:"d1" heavy_doc in
  Alcotest.(check (list string)) "poison aborted" [ "poison" ] o1.aborted;
  Alcotest.(check (option int)) "healthy matches" (Some 12)
    (List.assoc_opt "c" o1.matches);
  Alcotest.(check (list (pair string string))) "not yet quarantined" []
    o1.quarantined_now;
  (* doc 2: threshold 2 crossed *)
  let o2 = Broker.publish b ~doc_id:"d2" heavy_doc in
  Alcotest.(check (list string)) "quarantined now" [ "poison" ]
    (List.map fst o2.quarantined_now);
  Alcotest.(check bool) "status shows it" true
    (List.exists
       (fun (n, st) -> n = "poison" && st <> Broker.Live)
       (Broker.subscriptions b));
  (* docs 3-4: poison absent from outcomes *)
  let o3 = Broker.publish b ~doc_id:"d3" heavy_doc in
  Alcotest.(check (list string)) "no aborts while quarantined" [] o3.aborted;
  ignore (Broker.publish b ~doc_id:"d4" heavy_doc);
  (* doc 5: quarantined at tick 2 with penalty 3 -> due at tick 5 *)
  let o5 = Broker.publish b ~doc_id:"d5" heavy_doc in
  Alcotest.(check (list string)) "readmitted" [ "poison" ] o5.readmitted;
  Alcotest.(check (list string)) "and failing again" [ "poison" ] o5.aborted;
  (* healthy subscription was never disturbed *)
  Alcotest.(check int) "docs seen" 5 (Broker.docs_seen b);
  let stats = Broker.stats b in
  Alcotest.(check (option (float 0.0))) "quarantine stat" (Some 1.0)
    (List.assoc_opt "service/quarantined" stats);
  Alcotest.(check (option (float 0.0))) "readmit stat" (Some 1.0)
    (List.assoc_opt "service/readmitted" stats);
  (* the symbol table was reset at tick 5 (reset_symbols_every = 5):
     the next document must still evaluate correctly *)
  let o6 = Broker.publish b ~doc_id:"d6" heavy_doc in
  Alcotest.(check (option int)) "healthy after symbol reset" (Some 12)
    (List.assoc_opt "c" o6.matches)

let test_broker_malformed_and_limits () =
  let b = Broker.create ~config:broker_config () in
  Alcotest.(check bool) "sub" true
    (Broker.subscribe b ~name:"a" ~query:"//a" = Ok ());
  (* malformed input: lenient recovery, faults accounted, no raise *)
  let o = Broker.publish b ~doc_id:"bad" "<r><a><<<>junk</r>" in
  Alcotest.(check bool) "faults counted" true (o.faults > 0);
  Alcotest.(check bool) "doc still evaluated" true (o.events > 0);
  (* a resource limit ends the document partially instead of raising *)
  let o2 =
    Broker.publish b ~doc_id:"huge"
      ("<r><a>" ^ String.make 100_000 'x' ^ "</a></r>")
  in
  Alcotest.(check (option string)) "limit recorded" (Some "max-text-bytes")
    o2.limit_hit;
  (* the limit end is not blamed on the subscription *)
  let o3 = Broker.publish b ~doc_id:"ok" "<r><a/></r>" in
  Alcotest.(check (list (pair string string))) "no quarantine" []
    o3.quarantined_now;
  Alcotest.(check (option int)) "still live and matching" (Some 1)
    (List.assoc_opt "a" o3.matches);
  Alcotest.(check bool) "unsubscribe" true (Broker.unsubscribe b ~name:"a");
  Alcotest.(check bool) "gone" false (Broker.unsubscribe b ~name:"a")

let test_broker_report_schema () =
  let b = Broker.create ~config:broker_config () in
  ignore (Broker.subscribe b ~name:"a" ~query:"//a");
  ignore (Broker.publish b ~doc_id:"d" "<r><a/></r>");
  let r = Broker.report ~extra_stats:[ ("ingress/shed", 3.0) ] b in
  match Xaos_obs.Report.validate (Xaos_obs.Report.to_json r) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "broker report invalid: %s" e

(* ------------------------------------------------------------------ *)
(* The soak: the acceptance test                                       *)
(* ------------------------------------------------------------------ *)

let soak_socket name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "xaos-test-%s-%d.sock" name (Unix.getpid ()))

let check_soak name cfg =
  let s = Soak.run cfg in
  (match Soak.healthy s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s unhealthy: %s" name e);
  s

let test_soak_smoke () =
  let cfg =
    { Soak.default_config with docs = 300; subs = 40;
      socket_path = soak_socket "smoke" }
  in
  let s = check_soak "smoke" cfg in
  Alcotest.(check bool) "faults recovered" true (s.sax_faults > 0);
  Alcotest.(check bool) "client aborts survived" true (s.client_aborts > 0)

let test_soak_acceptance () =
  (* the ISSUE gate: >= 2000 documents, >= 100 live subscriptions *)
  let cfg = { Soak.default_config with socket_path = soak_socket "full" } in
  Alcotest.(check bool) "scale: docs" true (cfg.docs >= 2000);
  Alcotest.(check bool) "scale: subs" true (cfg.subs >= 100);
  let s = check_soak "acceptance" cfg in
  Alcotest.(check int) "zero crashes" 0 s.crashes;
  Alcotest.(check int) "zero mismatches" 0 s.mismatches;
  Alcotest.(check bool) "hundreds of differential checks" true
    (s.checked > 500);
  Alcotest.(check bool) "overload responses" true (s.shed > 0 && s.displaced > 0);
  Alcotest.(check bool) "quarantine cycles" true (s.quarantined_total >= 2);
  Alcotest.(check bool) "re-admissions" true (s.readmitted_total >= 1);
  Alcotest.(check bool) "report schema-valid" true s.report_valid

let suite =
  [
    Alcotest.test_case "quarantine threshold and backoff" `Quick
      test_quarantine_threshold_and_backoff;
    Alcotest.test_case "quarantine success resets and decays" `Quick
      test_quarantine_success_resets_and_decays;
    Alcotest.test_case "ingress watermarks and shedding" `Quick
      test_ingress_watermarks_and_shedding;
    Alcotest.test_case "ingress close drains" `Quick test_ingress_close_drains;
    Alcotest.test_case "protocol roundtrip" `Quick test_protocol_roundtrip;
    Alcotest.test_case "broker quarantine lifecycle" `Quick
      test_broker_quarantine_lifecycle;
    Alcotest.test_case "broker malformed and limits" `Quick
      test_broker_malformed_and_limits;
    Alcotest.test_case "broker report schema" `Quick test_broker_report_schema;
    Alcotest.test_case "soak smoke" `Quick test_soak_smoke;
    Alcotest.test_case "soak acceptance (2000 docs, 100 subs)" `Slow
      test_soak_acceptance;
  ]
