(* The resilient pub/sub service (PR 6): quarantine policy, admission
   control, broker supervision, wire protocol, and the chaos soak.

   The soak is the acceptance test of the whole subsystem: a real server
   on a real Unix-domain socket, thousands of documents with chaos
   faults against a hundred live subscriptions, differential checks
   against a clean oracle, and a gate on zero crashes. *)

module Json = Xaos_obs.Json
module Sax = Xaos_xml.Sax
open Xaos_service

(* ------------------------------------------------------------------ *)
(* Quarantine                                                          *)
(* ------------------------------------------------------------------ *)

let test_quarantine_threshold_and_backoff () =
  let q =
    Quarantine.create
      ~config:{ Quarantine.threshold = 2; base_penalty = 4; max_penalty = 16 }
      ()
  in
  let fail now =
    Quarantine.record_failure q ~now ~name:"s" ~reason:"budget-exceeded"
  in
  Alcotest.(check bool) "below threshold" true (fail 1 = `Counted);
  Alcotest.(check bool) "not yet quarantined" false (Quarantine.is_quarantined q "s");
  Alcotest.(check bool) "threshold crossed" true (fail 2 = `Quarantined);
  Alcotest.(check bool) "now quarantined" true (Quarantine.is_quarantined q "s");
  Alcotest.(check (option string))
    "reason kept" (Some "budget-exceeded") (Quarantine.reason q "s");
  (* release at tick 2 + 4 = 6 *)
  Alcotest.(check (list string)) "not due early" [] (Quarantine.due q ~now:5);
  Alcotest.(check (list string)) "due at release" [ "s" ] (Quarantine.due q ~now:6);
  Quarantine.readmit q "s";
  Alcotest.(check bool) "readmitted" false (Quarantine.is_quarantined q "s");
  Alcotest.(check int) "transitions" 1 (Quarantine.times_quarantined q);
  Alcotest.(check int) "readmissions" 1 (Quarantine.times_readmitted q);
  (* probation: failing again re-quarantines with a doubled penalty *)
  ignore (fail 10);
  Alcotest.(check bool) "re-quarantined" true (fail 11 = `Quarantined);
  Alcotest.(check (list string)) "doubled penalty" [] (Quarantine.due q ~now:18);
  Alcotest.(check (list string))
    "release at 11+8" [ "s" ] (Quarantine.due q ~now:19)

let test_quarantine_success_resets_and_decays () =
  let q =
    Quarantine.create
      ~config:{ Quarantine.threshold = 2; base_penalty = 4; max_penalty = 64 }
      ()
  in
  let fail now =
    Quarantine.record_failure q ~now ~name:"s" ~reason:"raised: x"
  in
  (* consecutive counting: a success between failures resets the count *)
  ignore (fail 1);
  Quarantine.record_success q ~name:"s";
  Alcotest.(check bool) "count reset" true (fail 2 = `Counted);
  Alcotest.(check bool) "then quarantined" true (fail 3 = `Quarantined);
  Quarantine.readmit q "s";
  (* penalty after one quarantine is 8; clean documents halve it back *)
  Quarantine.record_success q ~name:"s";
  ignore (fail 20);
  Alcotest.(check bool) "quarantined again" true (fail 21 = `Quarantined);
  (* decayed back to base 4: release at 21 + 4 *)
  Alcotest.(check (list string)) "decayed penalty" [ "s" ] (Quarantine.due q ~now:25);
  Quarantine.forget q "s";
  Alcotest.(check (list (triple string string int)))
    "forgotten" [] (Quarantine.quarantined q)

(* ------------------------------------------------------------------ *)
(* Ingress                                                             *)
(* ------------------------------------------------------------------ *)

let test_ingress_watermarks_and_shedding () =
  let q = Ingress.create ~low:1 ~high:4 () in
  for i = 1 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "accept %d" i)
      true
      (Ingress.offer q ~priority:0 i = Ingress.Accepted)
  done;
  Alcotest.(check bool) "overloaded at high" true (Ingress.overloaded q);
  Alcotest.(check bool)
    "equal priority shed" true
    (Ingress.offer q ~priority:0 99 = Ingress.Shed_incoming);
  (* higher priority displaces the youngest lowest-priority item (4) *)
  (match Ingress.offer q ~priority:5 100 with
  | Ingress.Displaced v -> Alcotest.(check int) "victim is youngest" 4 v
  | _ -> Alcotest.fail "expected displacement");
  Alcotest.(check int) "length unchanged" 4 (Ingress.length q);
  (* take order: priority first, FIFO within priority *)
  Alcotest.(check (option int)) "priority first" (Some 100) (Ingress.take q);
  Alcotest.(check (option int)) "then FIFO" (Some 1) (Ingress.take q);
  Alcotest.(check bool) "still overloaded above low" true (Ingress.overloaded q);
  ignore (Ingress.take q);
  (* hysteresis: len 1 = low clears the overload *)
  Alcotest.(check bool) "cleared at low" false (Ingress.overloaded q);
  Alcotest.(check bool)
    "accepting again" true
    (Ingress.offer q ~priority:0 7 = Ingress.Accepted);
  Alcotest.(check int) "sheds counted" 1 (Ingress.shed_count q);
  Alcotest.(check int) "displacements counted" 1 (Ingress.displaced_count q);
  Alcotest.(check int) "one overload entry" 1 (Ingress.overload_entries q)

let test_ingress_close_drains () =
  let q = Ingress.create ~high:4 () in
  ignore (Ingress.offer q ~priority:0 1);
  ignore (Ingress.offer q ~priority:0 2);
  Ingress.close q;
  Alcotest.(check bool)
    "closed sheds" true
    (Ingress.offer q ~priority:9 3 = Ingress.Shed_incoming);
  Alcotest.(check (option int)) "drains 1" (Some 1) (Ingress.take q);
  Alcotest.(check (option int)) "drains 2" (Some 2) (Ingress.take q);
  Alcotest.(check (option int)) "then None" None (Ingress.take q)

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let test_protocol_roundtrip () =
  let reqs =
    [ Protocol.Subscribe { name = "q1"; query = "//a//b"; earliest = false };
      Protocol.Subscribe { name = "q2"; query = "//a"; earliest = true };
      Protocol.Unsubscribe { name = "q1" };
      Protocol.Publish { doc_id = "d-1"; priority = 3; doc = "<a>\"x\"</a>" };
      Protocol.Stats; Protocol.Report; Protocol.Shutdown ]
  in
  List.iter
    (fun r ->
      let line = Protocol.to_line (Protocol.request_to_json r) in
      Alcotest.(check bool)
        ("single line: " ^ Protocol.op_name r)
        true
        (String.index line '\n' = String.length line - 1);
      match Protocol.request_of_line (String.trim line) with
      | Ok r' ->
        Alcotest.(check bool) ("roundtrip " ^ Protocol.op_name r) true (r = r')
      | Error e -> Alcotest.failf "roundtrip %s: %s" (Protocol.op_name r) e)
    reqs;
  (* defaulted priority *)
  (match Protocol.request_of_line {|{"op":"publish","id":"d","doc":"<a/>"}|} with
  | Ok (Protocol.Publish { priority = 0; _ }) -> ()
  | _ -> Alcotest.fail "priority should default to 0");
  List.iter
    (fun bad ->
      match Protocol.request_of_line bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should reject: %s" bad)
    [ "nonsense"; "{}"; {|{"op":"launch"}|}; {|{"op":"subscribe","name":"x"}|} ]

(* ------------------------------------------------------------------ *)
(* Broker supervision (no socket)                                      *)
(* ------------------------------------------------------------------ *)

let broker_config =
  { Broker.budget = Some 40; deadline_s = None;
    limits = { Sax.default_limits with max_text_bytes = 4096 };
    quarantine = { Quarantine.threshold = 2; base_penalty = 3; max_penalty = 24 };
    reset_symbols_every = 5; earliest = false; prefix_gate = true; slow_ms = None }

let heavy_doc =
  (* enough nesting that //*[*]//* exceeds the 40-structure budget while
     the selective queries stay tiny *)
  "<r>" ^ String.concat "" (List.init 12 (fun i ->
      Printf.sprintf "<a><b><c>x%d</c></b></a>" i)) ^ "</r>"

let test_broker_quarantine_lifecycle () =
  let b = Broker.create ~config:broker_config () in
  Alcotest.(check bool) "healthy sub" true
    (Broker.subscribe b ~name:"c" ~query:"//b/c" = Ok ());
  Alcotest.(check bool) "poison sub" true
    (Broker.subscribe b ~name:"poison" ~query:"//*[*]//*" = Ok ());
  Alcotest.(check bool) "dup refused" true
    (Result.is_error (Broker.subscribe b ~name:"c" ~query:"//a"));
  (* doc 1: poison aborts (counted), healthy matches *)
  let o1 = Broker.publish b ~doc_id:"d1" heavy_doc in
  Alcotest.(check (list string)) "poison aborted" [ "poison" ] o1.aborted;
  Alcotest.(check (option int)) "healthy matches" (Some 12)
    (List.assoc_opt "c" o1.matches);
  Alcotest.(check (list (pair string string))) "not yet quarantined" []
    o1.quarantined_now;
  (* doc 2: threshold 2 crossed *)
  let o2 = Broker.publish b ~doc_id:"d2" heavy_doc in
  Alcotest.(check (list string)) "quarantined now" [ "poison" ]
    (List.map fst o2.quarantined_now);
  Alcotest.(check bool) "status shows it" true
    (List.exists
       (fun (n, st) -> n = "poison" && st <> Broker.Live)
       (Broker.subscriptions b));
  (* docs 3-4: poison absent from outcomes *)
  let o3 = Broker.publish b ~doc_id:"d3" heavy_doc in
  Alcotest.(check (list string)) "no aborts while quarantined" [] o3.aborted;
  ignore (Broker.publish b ~doc_id:"d4" heavy_doc);
  (* doc 5: quarantined at tick 2 with penalty 3 -> due at tick 5 *)
  let o5 = Broker.publish b ~doc_id:"d5" heavy_doc in
  Alcotest.(check (list string)) "readmitted" [ "poison" ] o5.readmitted;
  Alcotest.(check (list string)) "and failing again" [ "poison" ] o5.aborted;
  (* healthy subscription was never disturbed *)
  Alcotest.(check int) "docs seen" 5 (Broker.docs_seen b);
  let stats = Broker.stats b in
  Alcotest.(check (option (float 0.0))) "quarantine stat" (Some 1.0)
    (List.assoc_opt "service/quarantined" stats);
  Alcotest.(check (option (float 0.0))) "readmit stat" (Some 1.0)
    (List.assoc_opt "service/readmitted" stats);
  (* the symbol table was reset at tick 5 (reset_symbols_every = 5):
     the next document must still evaluate correctly *)
  let o6 = Broker.publish b ~doc_id:"d6" heavy_doc in
  Alcotest.(check (option int)) "healthy after symbol reset" (Some 12)
    (List.assoc_opt "c" o6.matches)

let test_broker_malformed_and_limits () =
  let b = Broker.create ~config:broker_config () in
  Alcotest.(check bool) "sub" true
    (Broker.subscribe b ~name:"a" ~query:"//a" = Ok ());
  (* malformed input: lenient recovery, faults accounted, no raise *)
  let o = Broker.publish b ~doc_id:"bad" "<r><a><<<>junk</r>" in
  Alcotest.(check bool) "faults counted" true (o.faults > 0);
  Alcotest.(check bool) "doc still evaluated" true (o.events > 0);
  (* a resource limit ends the document partially instead of raising *)
  let o2 =
    Broker.publish b ~doc_id:"huge"
      ("<r><a>" ^ String.make 100_000 'x' ^ "</a></r>")
  in
  Alcotest.(check (option string)) "limit recorded" (Some "max-text-bytes")
    o2.limit_hit;
  (* the limit end is not blamed on the subscription *)
  let o3 = Broker.publish b ~doc_id:"ok" "<r><a/></r>" in
  Alcotest.(check (list (pair string string))) "no quarantine" []
    o3.quarantined_now;
  Alcotest.(check (option int)) "still live and matching" (Some 1)
    (List.assoc_opt "a" o3.matches);
  Alcotest.(check bool) "unsubscribe" true (Broker.unsubscribe b ~name:"a");
  Alcotest.(check bool) "gone" false (Broker.unsubscribe b ~name:"a")

let test_broker_report_schema () =
  let b = Broker.create ~config:broker_config () in
  ignore (Broker.subscribe b ~name:"a" ~query:"//a");
  ignore (Broker.publish b ~doc_id:"d" "<r><a/></r>");
  let r = Broker.report ~extra_stats:[ ("ingress/shed", 3.0) ] b in
  match Xaos_obs.Report.validate (Xaos_obs.Report.to_json r) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "broker report invalid: %s" e

(* ------------------------------------------------------------------ *)
(* Server over a real socket: framing and earliest-mode item pushes    *)
(* ------------------------------------------------------------------ *)

let soak_socket name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "xaos-test-%s-%d.sock" name (Unix.getpid ()))

let with_server ~name ~config_f f =
  let socket_path = soak_socket name in
  let config = config_f (Server.default_config socket_path) in
  let server = Server.start config in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f socket_path)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path) with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e);
  (* a wedged test fails in seconds instead of hanging the suite *)
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
  fd

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then go (off + Unix.write fd b off (len - off))
  in
  go 0

let send_req fd req = write_all fd (Protocol.to_line (Protocol.request_to_json req))

(* Read response lines (reassembled across reads) until [enough] holds on
   everything parsed so far, EOF, or the receive timeout. Returns the
   parsed responses in arrival order and whether EOF was reached. *)
let read_until fd enough =
  let chunk = Bytes.create 4096 in
  let acc = Buffer.create 256 in
  let seen = ref [] in
  let eof = ref false in
  let split () =
    let s = Buffer.contents acc in
    let len = String.length s in
    let rec go start =
      match String.index_from_opt s start '\n' with
      | None ->
        Buffer.clear acc;
        Buffer.add_substring acc s start (len - start)
      | Some nl ->
        (match Json.parse (String.sub s start (nl - start)) with
        | Ok j -> seen := j :: !seen
        | Error _ -> ());
        go (nl + 1)
    in
    go 0
  in
  let rec loop () =
    if not (enough (List.rev !seen)) then
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> eof := true
      | n ->
        Buffer.add_subbytes acc chunk 0 n;
        split ();
        loop ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error _ -> eof := true
  in
  loop ();
  (List.rev !seen, !eof)

let jstr name j = Option.bind (Json.member name j) Json.to_str

let is_event kind j = jstr "event" j = Some kind

(* a complete request split into 1-byte writes must be reassembled into
   exactly one request — the frame cap must not misfire on small frames
   that merely arrive slowly *)
let test_server_split_frame_one_byte_writes () =
  with_server ~name:"split"
    ~config_f:(fun c -> { c with max_line_bytes = 4096 })
  @@ fun path ->
  let fd = connect path in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  send_req fd (Protocol.Subscribe { name = "q"; query = "//a"; earliest = false });
  let acks, _ =
    read_until fd (fun seen ->
        List.exists (fun j -> jstr "op" j = Some "subscribe") seen)
  in
  Alcotest.(check bool) "subscribe acked" true
    (List.exists (fun j -> Json.member "ok" j = Some (Json.Bool true)) acks);
  let line =
    Protocol.to_line
      (Protocol.request_to_json
         (Protocol.Publish { doc_id = "d1"; priority = 0; doc = "<r><a/></r>" }))
  in
  String.iter (fun ch -> write_all fd (String.make 1 ch)) line;
  let seen, eof =
    read_until fd (fun seen -> List.exists (is_event "processed") seen)
  in
  Alcotest.(check bool) "connection survived" false eof;
  let processed = List.find (is_event "processed") seen in
  Alcotest.(check (option string)) "the one request parsed" (Some "d1")
    (jstr "id" processed);
  match Option.bind (Json.member "matches" processed) Json.to_obj with
  | Some [ ("q", Json.Int 1) ] -> ()
  | _ -> Alcotest.fail "expected exactly q=1 in matches"

(* an unterminated line past the frame cap fails closed: a typed event
   log record, one parse error response, then disconnect — never a
   truncated parse, never unbounded buffering *)
let test_server_oversized_line_fails_closed () =
  let log_was = Xaos_obs.Eventlog.enabled () in
  Xaos_obs.Eventlog.enable ();
  Xaos_obs.Eventlog.clear ();
  Fun.protect
    ~finally:(fun () -> if not log_was then Xaos_obs.Eventlog.disable ())
  @@ fun () ->
  with_server ~name:"oversize"
    ~config_f:(fun c -> { c with max_line_bytes = 256 })
  @@ fun path ->
  let fd = connect path in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  (* dribble 600 bytes with no newline, in small writes so the frame
     must accumulate across reads before tripping the cap *)
  for _ = 1 to 60 do
    write_all fd (String.make 10 'x')
  done;
  let seen, eof =
    read_until fd (fun seen ->
        List.exists (fun j -> jstr "op" j = Some "parse") seen)
  in
  (match List.find_opt (fun j -> jstr "op" j = Some "parse") seen with
  | Some err ->
    Alcotest.(check bool) "refusal is an error" true
      (Json.member "ok" err = Some (Json.Bool false));
    let msg = Option.value ~default:"" (jstr "error" err) in
    Alcotest.(check bool) "typed message" true
      (String.length msg >= 12 && String.sub msg 0 12 = "line exceeds")
  | None -> Alcotest.fail "no parse error response before close");
  (* the server must now hang up on us *)
  let _, eof =
    if eof then ([], true) else read_until fd (fun _ -> false)
  in
  Alcotest.(check bool) "connection closed" true eof;
  let typed =
    List.exists
      (fun (e : Xaos_obs.Eventlog.event) ->
        e.reason = Some Xaos_obs.Eventlog.Line_too_long)
      (Xaos_obs.Eventlog.events ())
  in
  Alcotest.(check bool) "Line_too_long in the event log" true typed

(* earliest-mode subscription over the wire: one [item] event per result,
   pushed before the document's [processed] summary, ids in document
   order, and the final match count agreeing with the pushes *)
let test_server_earliest_item_events () =
  with_server ~name:"earliest" ~config_f:(fun c -> c)
  @@ fun path ->
  let fd = connect path in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  send_req fd (Protocol.Subscribe { name = "e"; query = "//a//b"; earliest = true });
  let _ =
    read_until fd (fun seen ->
        List.exists (fun j -> jstr "op" j = Some "subscribe") seen)
  in
  send_req fd
    (Protocol.Publish
       { doc_id = "d"; priority = 0; doc = "<r><a><b/><c/><b/></a></r>" });
  let seen, _ =
    read_until fd (fun seen -> List.exists (is_event "processed") seen)
  in
  let items = List.filter (is_event "item") seen in
  Alcotest.(check int) "one item event per result" 2 (List.length items);
  let ids =
    List.filter_map (fun j -> Option.bind (Json.member "item_id" j) Json.to_int)
      items
  in
  Alcotest.(check bool) "document order" true (List.sort compare ids = ids);
  List.iter
    (fun j ->
      Alcotest.(check (option string)) "tag" (Some "b") (jstr "tag" j);
      Alcotest.(check (option string)) "owner name" (Some "e") (jstr "name" j))
    items;
  (* every item event precedes the processed summary *)
  let rec before l =
    match l with
    | [] -> true
    | j :: tl -> if is_event "processed" j then not (List.exists (is_event "item") tl)
      else before tl
  in
  Alcotest.(check bool) "items pushed before processed" true (before seen);
  let processed = List.find (is_event "processed") seen in
  match Option.bind (Json.member "matches" processed) Json.to_obj with
  | Some [ ("e", Json.Int 2) ] -> ()
  | _ -> Alcotest.fail "summary must agree with the item pushes"

(* ------------------------------------------------------------------ *)
(* The soak: the acceptance test                                       *)
(* ------------------------------------------------------------------ *)

let check_soak name cfg =
  let s = Soak.run cfg in
  (match Soak.healthy s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s unhealthy: %s" name e);
  s

let test_soak_smoke () =
  let cfg =
    { Soak.default_config with docs = 300; subs = 40;
      socket_path = soak_socket "smoke" }
  in
  let s = check_soak "smoke" cfg in
  Alcotest.(check bool) "faults recovered" true (s.sax_faults > 0);
  Alcotest.(check bool) "client aborts survived" true (s.client_aborts > 0)

let test_soak_acceptance () =
  (* the ISSUE gate: >= 2000 documents, >= 100 live subscriptions *)
  let cfg = { Soak.default_config with socket_path = soak_socket "full" } in
  Alcotest.(check bool) "scale: docs" true (cfg.docs >= 2000);
  Alcotest.(check bool) "scale: subs" true (cfg.subs >= 100);
  let s = check_soak "acceptance" cfg in
  Alcotest.(check int) "zero crashes" 0 s.crashes;
  Alcotest.(check int) "zero mismatches" 0 s.mismatches;
  Alcotest.(check bool) "hundreds of differential checks" true
    (s.checked > 500);
  Alcotest.(check bool) "overload responses" true (s.shed > 0 && s.displaced > 0);
  Alcotest.(check bool) "quarantine cycles" true (s.quarantined_total >= 2);
  Alcotest.(check bool) "re-admissions" true (s.readmitted_total >= 1);
  Alcotest.(check bool) "report schema-valid" true s.report_valid

let suite =
  [
    Alcotest.test_case "quarantine threshold and backoff" `Quick
      test_quarantine_threshold_and_backoff;
    Alcotest.test_case "quarantine success resets and decays" `Quick
      test_quarantine_success_resets_and_decays;
    Alcotest.test_case "ingress watermarks and shedding" `Quick
      test_ingress_watermarks_and_shedding;
    Alcotest.test_case "ingress close drains" `Quick test_ingress_close_drains;
    Alcotest.test_case "protocol roundtrip" `Quick test_protocol_roundtrip;
    Alcotest.test_case "broker quarantine lifecycle" `Quick
      test_broker_quarantine_lifecycle;
    Alcotest.test_case "broker malformed and limits" `Quick
      test_broker_malformed_and_limits;
    Alcotest.test_case "broker report schema" `Quick test_broker_report_schema;
    Alcotest.test_case "server reassembles 1-byte-write frames" `Quick
      test_server_split_frame_one_byte_writes;
    Alcotest.test_case "server fails closed on oversized lines" `Quick
      test_server_oversized_line_fails_closed;
    Alcotest.test_case "server pushes earliest item events" `Quick
      test_server_earliest_item_events;
    Alcotest.test_case "soak smoke" `Quick test_soak_smoke;
    Alcotest.test_case "soak acceptance (2000 docs, 100 subs)" `Slow
      test_soak_acceptance;
  ]
