(* Mutation fuzzing of the SAX parser.

   Base documents come from the Randgen workload; each is corrupted by a
   handful of byte-level mutations (flips, deletions, insertions of
   markup-significant bytes, truncations, slice duplication). The
   contracts under test:

   - strict mode may reject input only with [Sax.Error] or
     [Sax.Limit_exceeded] — any other exception is a parser bug;
   - lenient mode never rejects: it must return an event list for every
     input, and that list must be balanced ([Dom.of_events] accepts it). *)

module Sax = Xaos_xml.Sax
module Dom = Xaos_xml.Dom
module Prng = Xaos_workloads.Prng
module Randgen = Xaos_workloads.Randgen

(* bytes that steer the parser into interesting states *)
let hostile =
  [| '<'; '>'; '&'; ';'; '"'; '\''; '='; '/'; '!'; '?'; '-'; ']'; '\000';
     ' '; 'a'; '\xff' |]

let mutate rng doc =
  let len = String.length doc in
  if len = 0 then doc
  else
    match Prng.int rng 6 with
    | 0 ->
      (* flip one byte to an arbitrary value *)
      let b = Bytes.of_string doc in
      Bytes.set b (Prng.int rng len) (Char.chr (Prng.int rng 256));
      Bytes.to_string b
    | 1 ->
      (* delete a short slice *)
      let i = Prng.int rng len in
      let n = min (len - i) (1 + Prng.int rng 8) in
      String.sub doc 0 i ^ String.sub doc (i + n) (len - i - n)
    | 2 ->
      (* insert a burst of markup-significant bytes *)
      let i = Prng.int rng (len + 1) in
      let burst =
        String.init (1 + Prng.int rng 6) (fun _ -> Prng.pick rng hostile)
      in
      String.sub doc 0 i ^ burst ^ String.sub doc i (len - i)
    | 3 ->
      (* truncate *)
      String.sub doc 0 (Prng.int rng len)
    | 4 ->
      (* duplicate a slice in place *)
      let i = Prng.int rng len in
      let n = min (len - i) (1 + Prng.int rng 16) in
      String.sub doc 0 (i + n) ^ String.sub doc i (len - i)
    | _ ->
      (* swap two bytes *)
      let b = Bytes.of_string doc in
      let i = Prng.int rng len and j = Prng.int rng len in
      let ci = Bytes.get b i in
      Bytes.set b i (Bytes.get b j);
      Bytes.set b j ci;
      Bytes.to_string b

let check_strict doc =
  match Sax.events_of_string doc with
  | _ -> ()
  | exception Sax.Error _ -> ()
  | exception Sax.Limit_exceeded _ -> ()
  | exception e ->
    Alcotest.failf "strict parser leaked %s on %S" (Printexc.to_string e)
      doc

let check_lenient doc =
  match Sax.events_of_string ~mode:Sax.Lenient doc with
  | events -> (
    match Dom.of_events events with
    | _ -> ()
    | exception e ->
      Alcotest.failf "lenient stream unbalanced (%s) on %S"
        (Printexc.to_string e) doc)
  | exception Sax.Limit_exceeded _ -> ()
  | exception e ->
    Alcotest.failf "lenient parser raised %s on %S" (Printexc.to_string e)
      doc

let mutants_per_doc = 24

let base_docs = 25

let fuzz_mutated () =
  for seed = 1 to base_docs do
    let spec = Randgen.generate_spec ~seed () in
    let doc = Randgen.document_string spec ~seed:(seed * 7) ~elements:120 in
    let rng = Prng.create (seed * 1000003) in
    for _ = 1 to mutants_per_doc do
      let mutated = mutate rng doc in
      check_strict mutated;
      check_lenient mutated
    done
  done

let fuzz_garbage () =
  (* pure noise, not derived from any document *)
  let rng = Prng.create 0xdead in
  for _ = 1 to 200 do
    let s =
      String.init
        (Prng.int rng 64)
        (fun _ ->
          if Prng.bool rng then Prng.pick rng hostile
          else Char.chr (Prng.int rng 256))
    in
    check_strict s;
    check_lenient s
  done

let lenient_levels_consistent () =
  (* recovered streams must still carry well-formed levels: a start at
     level [d] is followed by events at depth >= d, and its end event
     comes back at level [d] *)
  let rng = Prng.create 42 in
  let spec = Randgen.generate_spec ~seed:3 () in
  let doc = Randgen.document_string spec ~seed:21 ~elements:120 in
  for _ = 1 to 50 do
    let mutated = mutate rng doc in
    match Sax.events_of_string ~mode:Sax.Lenient mutated with
    | exception Sax.Limit_exceeded _ -> ()
    | events ->
      let depth = ref 0 in
      List.iter
        (fun ev ->
          match ev with
          | Xaos_xml.Event.Start_element { level; _ } ->
            incr depth;
            Alcotest.(check int) "start level" !depth level
          | Xaos_xml.Event.End_element { level; _ } ->
            Alcotest.(check int) "end level" !depth level;
            decr depth
          | _ -> ())
        events;
      Alcotest.(check int) "balanced at end" 0 !depth
  done

let suite =
  [
    Alcotest.test_case "mutated documents" `Quick fuzz_mutated;
    Alcotest.test_case "garbage strings" `Quick fuzz_garbage;
    Alcotest.test_case "lenient levels consistent" `Quick
      lenient_levels_consistent;
  ]
