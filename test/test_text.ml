(* String-value (text) predicate extension: [text()='v'] and
   [contains(text(),'v')], decided at end events via per-element text
   buffers. *)

open Xaos_core
module Ast = Xaos_xpath.Ast
module Parser = Xaos_xpath.Parser

let item = Alcotest.testable Item.pp Item.equal

let it id tag level = Item.make ~id ~tag ~level

let doc =
  "<lib><book><title>OCaml in Action</title></book>\
   <book><title>Streaming XML</title></book>\
   <note>read OCaml</note></lib>"
(* ids: lib=1 book=2 title=3 book=4 title=5 note=6 *)

let run ?config q =
  (Query.run_string (Query.compile_exn ?config q) doc).Result_set.items

let check msg expected q = Alcotest.check (Alcotest.list item) msg expected (run q)

let test_parse_and_print () =
  let roundtrip input printed =
    match Parser.parse_result input with
    | Error e -> Alcotest.failf "%s: %s" input e
    | Ok p ->
      Alcotest.(check string) input printed (Ast.to_string p);
      (match Parser.parse_result printed with
      | Ok p2 -> Alcotest.(check bool) "fixpoint" true (Ast.equal p p2)
      | Error e -> Alcotest.failf "%s: %s" printed e)
  in
  roundtrip "//a[text()='x']" "/descendant::a[text()='x']";
  roundtrip "//a[contains(text(),'x y')]" "/descendant::a[contains(text(),'x y')]";
  roundtrip "//a[text()=\"d'oh\"]" "/descendant::a[text()=\"d'oh\"]";
  roundtrip "//a[@k and text()='v' or b]"
    "/descendant::a[@k and text()='v' or child::b]";
  (* 'text' and 'contains' remain usable as plain element names *)
  roundtrip "//text/contains" "/descendant::text/child::contains"

let test_parse_errors () =
  List.iter
    (fun input ->
      match Parser.parse_result input with
      | Error _ -> ()
      | Ok p -> Alcotest.failf "%s parsed as %s" input (Ast.to_string p))
    [ "//a[text()]"; "//a[text()=]"; "//a[text()=x]"; "//a[contains(b,'x')]";
      "//a[contains(text())]"; "//a[contains(text(),'x']" ]

let test_equality () =
  check "exact" [ it 5 "title" 3 ] "//title[text()='Streaming XML']";
  check "no match" [] "//title[text()='Streaming']"

let test_contains () =
  check "substring" [ it 3 "title" 3 ] "//title[contains(text(),'OCaml')]";
  (* string values include descendants' text, so lib and the first book
     match as well *)
  check "ancestors too"
    [ it 1 "lib" 1; it 2 "book" 2; it 3 "title" 3; it 6 "note" 2 ]
    "//*[contains(text(),'OCaml')]"

let test_string_value_includes_descendants () =
  (* lib's string value concatenates all text below it *)
  check "ancestor sees nested text" [ it 1 "lib" 1 ]
    "/lib[contains(text(),'Action')]";
  check "book sees title text" [ it 2 "book" 2 ]
    "//book[contains(text(),'Action')]"

let test_split_text_runs () =
  (* CDATA splits character data into several Text events; the buffered
     string value must still concatenate *)
  let doc = "<a>one<![CDATA[ two ]]>three</a>" in
  let r = Query.run_string (Query.compile_exn "/a[text()='one two three']") doc in
  Alcotest.(check int) "joined" 1 (List.length r.Result_set.items)

let test_text_with_backward_axes () =
  check "ancestor with text test" [ it 3 "title" 3 ]
    "//title/ancestor::book[contains(text(),'OCaml')]/title";
  check "combined with attr-free predicates" [ it 2 "book" 2 ]
    "//title[text()='OCaml in Action']/.."

let test_refutes_optimism () =
  (* W closes before its ancestor Z's text is known; the text test fails
     at Z's end, so the optimistic propagation must be undone *)
  let doc = "<Z><W/>oops</Z>" in
  let q = "//W[ancestor::Z[text()='fine']]" in
  let r = Query.run_string (Query.compile_exn q) doc in
  Alcotest.(check int) "undone" 0 (List.length r.Result_set.items);
  let doc2 = "<Z><W/>fine</Z>" in
  let r2 = Query.run_string (Query.compile_exn q) doc2 in
  Alcotest.(check int) "confirmed" 1 (List.length r2.Result_set.items)

let test_eager_not_used_for_chain_text () =
  (* a text test on a chain ancestor forbids eager emission... *)
  let config = { Engine.default_config with emission = Engine.Eager } in
  let dag q =
    Xaos_xpath.Xdag.of_xtree (Xaos_xpath.Xtree.of_path (Parser.parse q))
  in
  let e1 = Engine.create ~config (dag "/a[text()='x']/b") in
  Alcotest.(check bool) "not eager" false (Engine.emits_eagerly e1);
  (* ... but one on the output node itself is fine *)
  let e2 = Engine.create ~config (dag "/a/b[text()='x']") in
  Alcotest.(check bool) "eager ok" true (Engine.emits_eagerly e2);
  (* and results agree either way *)
  let d = "<a><b>x</b><b>y</b></a>" in
  let r_eager =
    (Query.run_string (Query.compile_exn ~config "/a/b[text()='x']") d)
      .Result_set.items
  in
  let r_lazy =
    (Query.run_string (Query.compile_exn "/a/b[text()='x']") d)
      .Result_set.items
  in
  Alcotest.check (Alcotest.list item) "agree" r_lazy r_eager

let test_all_engines_agree () =
  let d = Xaos_xml.Dom.of_string doc in
  List.iter
    (fun q ->
      let path = Parser.parse q in
      let oracle = Semantics.eval_path path d in
      let baseline =
        Xaos_baseline.Dom_engine.eval d path |> List.sort_uniq Item.compare
      in
      let streaming = run q in
      Alcotest.check (Alcotest.list item) (q ^ " baseline") oracle baseline;
      Alcotest.check (Alcotest.list item) (q ^ " engine") oracle streaming)
    [ "//title[text()='Streaming XML']"; "//book[contains(text(),'OCaml')]";
      "//*[text()='read OCaml']"; "//book[title[text()='Streaming XML']]";
      "//note[text()='read OCaml' or contains(text(),'zzz')]";
      "//title[contains(text(),'')]" ]

let test_empty_needle_matches_everything () =
  check "empty contains" [ it 3 "title" 3; it 5 "title" 3 ]
    "//title[contains(text(),'')]"

let suite =
  [
    ("parse and print", `Quick, test_parse_and_print);
    ("parse errors", `Quick, test_parse_errors);
    ("equality", `Quick, test_equality);
    ("contains", `Quick, test_contains);
    ("string value includes descendants", `Quick, test_string_value_includes_descendants);
    ("split text runs", `Quick, test_split_text_runs);
    ("with backward axes", `Quick, test_text_with_backward_axes);
    ("refutes optimism", `Quick, test_refutes_optimism);
    ("eager interaction", `Quick, test_eager_not_used_for_chain_text);
    ("engines agree", `Quick, test_all_engines_agree);
    ("empty needle", `Quick, test_empty_needle_matches_everything);
  ]
