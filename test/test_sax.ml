(* Streaming XML parser tests: event correctness, levels, markup corners,
   references, and failure injection on ill-formed input. *)

module Sax = Xaos_xml.Sax
module Event = Xaos_xml.Event

let event = Alcotest.testable Event.pp Event.equal

let events = Alcotest.list event

let parse = Sax.events_of_string

let start ?(attrs = []) name level =
  Event.start_element
    ~attributes:
      (List.map (fun (n, v) -> { Event.attr_name = n; attr_value = v }) attrs)
    ~name ~level ()

let stop name level = Event.end_element ~name ~level ()

let check_events msg expected input =
  Alcotest.check events msg expected (parse input)

let fails msg input =
  match parse input with
  | _ -> Alcotest.failf "%s: expected Sax.Error on %S" msg input
  | exception Sax.Error _ -> ()

let test_single_element () =
  check_events "one element" [ start "a" 1; stop "a" 1 ] "<a></a>"

let test_self_closing () =
  check_events "self-closing" [ start "a" 1; stop "a" 1 ] "<a/>";
  check_events "self-closing with space" [ start "a" 1; stop "a" 1 ] "<a />"

let test_nesting_levels () =
  check_events "levels count from 1"
    [ start "a" 1; start "b" 2; start "c" 3; stop "c" 3; stop "b" 2;
      start "b" 2; stop "b" 2; stop "a" 1 ]
    "<a><b><c></c></b><b/></a>"

let test_recursive_same_tag () =
  check_events "recursive nesting"
    [ start "a" 1; start "a" 2; start "a" 3; stop "a" 3; stop "a" 2; stop "a" 1 ]
    "<a><a><a/></a></a>"

let test_attributes () =
  check_events "attributes"
    [ start ~attrs:[ ("x", "1"); ("y", "two words") ] "a" 1; stop "a" 1 ]
    "<a x=\"1\" y='two words'/>"

let test_attribute_references () =
  check_events "entity refs in attribute"
    [ start ~attrs:[ ("x", "a<b&c\"d") ] "a" 1; stop "a" 1 ]
    "<a x=\"a&lt;b&amp;c&quot;d\"/>"

let test_text_and_references () =
  check_events "text with references"
    [ start "a" 1; Event.Text "x < y & z > w 'q' \"p\""; stop "a" 1 ]
    "<a>x &lt; y &amp; z &gt; w &apos;q&apos; &quot;p&quot;</a>"

let test_character_references () =
  check_events "decimal and hex character references"
    [ start "a" 1; Event.Text "A B \xe2\x82\xac"; stop "a" 1 ]
    "<a>&#65; &#x42; &#x20AC;</a>"

let test_cdata () =
  check_events "cdata"
    [ start "a" 1; Event.Text "if (a<b && c>d) {}"; stop "a" 1 ]
    "<a><![CDATA[if (a<b && c>d) {}]]></a>";
  check_events "cdata with lone brackets"
    [ start "a" 1; Event.Text "x]y]]z"; stop "a" 1 ]
    "<a><![CDATA[x]y]]z]]></a>"

let test_comments () =
  check_events "comments"
    [ start "a" 1; Event.Comment " hello "; stop "a" 1 ]
    "<a><!-- hello --></a>"

let test_processing_instruction () =
  check_events "pi"
    [ start "a" 1;
      Event.Processing_instruction { target = "php"; content = "echo 1;" };
      stop "a" 1 ]
    "<a><?php echo 1;?></a>"

let test_xml_declaration_skipped () =
  check_events "xml decl is consumed silently"
    [ start "a" 1; stop "a" 1 ]
    "<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>"

let test_doctype_skipped () =
  check_events "doctype with internal subset"
    [ start "a" 1; stop "a" 1 ]
    "<!DOCTYPE a [<!ELEMENT a ANY> <!ATTLIST a x CDATA \"y>z\">]><a/>"

let test_prolog_and_epilog_comments () =
  check_events "comments around the root"
    [ Event.Comment "pre"; start "a" 1; stop "a" 1; Event.Comment "post" ]
    "<!--pre--><a/><!--post-->"

let test_whitespace_around_root () =
  check_events "whitespace in prolog/epilog ignored"
    [ start "a" 1; stop "a" 1 ]
    "  \n <a></a> \t\n"

let test_whitespace_text_kept_in_content () =
  check_events "whitespace inside the root is text"
    [ start "a" 1; Event.Text " "; stop "a" 1 ]
    "<a> </a>"

let test_mismatched_tags () =
  fails "mismatched" "<a></b>";
  fails "extra close" "<a></a></a>";
  fails "unclosed" "<a><b></b>";
  fails "nothing" "";
  fails "only text" "hello"

let test_malformed_markup () =
  fails "bare ampersand" "<a>&</a>";
  fails "unknown entity" "<a>&nbsp;</a>";
  fails "unquoted attribute" "<a x=1/>";
  fails "lt in attribute" "<a x=\"<\"/>";
  fails "duplicate attribute" "<a x=\"1\" x=\"2\"/>";
  fails "double dash in comment" "<a><!-- a -- b --></a>";
  fails "second root" "<a/><b/>";
  fails "text after root" "<a/>oops";
  fails "eof in tag" "<a";
  fails "eof in attribute" "<a x=\"1";
  fails "eof in comment" "<a><!-- ";
  fails "eof in cdata" "<a><![CDATA[x";
  fails "empty char ref" "<a>&#;</a>";
  fails "surrogate char ref" "<a>&#xD800;</a>"

let test_error_positions () =
  match parse "<a>\n  <b></c></a>" with
  | _ -> Alcotest.fail "expected error"
  | exception Sax.Error (pos, _) ->
    Alcotest.(check int) "line" 2 pos.Sax.line

let test_depth_tracking () =
  let p = Sax.of_string "<a><b/></a>" in
  Alcotest.(check int) "initial depth" 0 (Sax.depth p);
  ignore (Sax.next p);
  Alcotest.(check int) "after <a>" 1 (Sax.depth p)

let test_streaming_chunks () =
  (* feed the document one byte at a time through of_function *)
  let doc = "<a x=\"1\"><b>text</b><!--c--></a>" in
  let i = ref 0 in
  let refill buf n =
    if !i >= String.length doc || n = 0 then 0
    else begin
      Bytes.set buf 0 doc.[!i];
      incr i;
      1
    end
  in
  let p = Sax.of_function refill in
  let collected = List.rev (Sax.fold (fun acc e -> e :: acc) [] p) in
  Alcotest.check events "chunked = whole" (parse doc) collected

let test_large_flat_document () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<r>";
  for _ = 1 to 1000 do
    Buffer.add_string buf "<x/>"
  done;
  Buffer.add_string buf "</r>";
  let evs = parse (Buffer.contents buf) in
  Alcotest.(check int) "event count" 2002 (List.length evs)

let test_deep_document () =
  let buf = Buffer.create 4096 in
  for _ = 1 to 500 do
    Buffer.add_string buf "<d>"
  done;
  for _ = 1 to 500 do
    Buffer.add_string buf "</d>"
  done;
  let evs = parse (Buffer.contents buf) in
  Alcotest.(check int) "count" 1000 (List.length evs);
  match List.nth evs 499 with
  | Event.Start_element { level; _ } -> Alcotest.(check int) "level" 500 level
  | _ -> Alcotest.fail "expected start"

let suite =
  [
    ("single element", `Quick, test_single_element);
    ("self-closing", `Quick, test_self_closing);
    ("nesting levels", `Quick, test_nesting_levels);
    ("recursive same tag", `Quick, test_recursive_same_tag);
    ("attributes", `Quick, test_attributes);
    ("attribute references", `Quick, test_attribute_references);
    ("text references", `Quick, test_text_and_references);
    ("character references", `Quick, test_character_references);
    ("cdata", `Quick, test_cdata);
    ("comments", `Quick, test_comments);
    ("processing instruction", `Quick, test_processing_instruction);
    ("xml declaration", `Quick, test_xml_declaration_skipped);
    ("doctype", `Quick, test_doctype_skipped);
    ("prolog/epilog comments", `Quick, test_prolog_and_epilog_comments);
    ("whitespace around root", `Quick, test_whitespace_around_root);
    ("whitespace in content", `Quick, test_whitespace_text_kept_in_content);
    ("mismatched tags", `Quick, test_mismatched_tags);
    ("malformed markup", `Quick, test_malformed_markup);
    ("error positions", `Quick, test_error_positions);
    ("depth tracking", `Quick, test_depth_tracking);
    ("streaming chunks", `Quick, test_streaming_chunks);
    ("large flat document", `Quick, test_large_flat_document);
    ("deep document", `Quick, test_deep_document);
  ]
