(* Service-latency histograms: bucket placement at the power-of-two
   boundaries, the <2x quantile overshoot bound, cross-thread scratch
   merging, and the zero-cost disabled record path. *)

module Tel = Xaos_obs.Telemetry
module H = Xaos_obs.Histogram

let fresh () =
  Tel.reset ();
  Tel.disable ()

(* Cumulative count at the bucket whose upper bound is [bound]. *)
let cum_at summary bound =
  match List.assoc_opt bound summary.H.s_buckets with
  | Some c -> c
  | None -> Alcotest.failf "no bucket with bound %g" bound

let test_disabled_record_is_noop () =
  fresh ();
  let h = H.make "test/disabled" in
  H.record h 42;
  H.record_seconds h 0.5;
  Alcotest.(check int) "nothing recorded" 0 (H.count h);
  Alcotest.(check (float 0.)) "quantile of empty" 0. (H.p99 h)

let test_bucket_boundaries () =
  fresh ();
  Tel.enable ();
  let h = H.make "test/bounds" in
  (* an observed value falls in the bucket whose upper bound is the
     smallest power of two >= the value; 0 and 1 share bucket 0 *)
  List.iter (H.record h) [ 0; 1; 2; 3; 4; 5; 1024; 1025 ];
  let s = H.summary h in
  Alcotest.(check int) "<=1" 2 (cum_at s 1.);
  Alcotest.(check int) "<=2" 3 (cum_at s 2.);
  Alcotest.(check int) "<=4" 5 (cum_at s 4.);
  Alcotest.(check int) "<=8" 6 (cum_at s 8.);
  Alcotest.(check int) "<=1024" 7 (cum_at s 1024.);
  Alcotest.(check int) "<=2048" 8 (cum_at s 2048.);
  Alcotest.(check int) "+inf holds all" 8 (cum_at s infinity);
  Alcotest.(check int) "bucket count" H.bucket_count
    (List.length s.H.s_buckets);
  (* negative observations clamp to zero instead of corrupting a sum *)
  H.record h (-7);
  Alcotest.(check int) "clamped into bucket 0" 3 (cum_at (H.summary h) 1.);
  (* beyond 2^30 lands in +inf, whose quantile is the exact maximum *)
  let big = H.make "test/big" in
  H.record big (1 lsl 40);
  Alcotest.(check (float 0.)) "+inf quantile = exact max"
    (float_of_int (1 lsl 40))
    (H.p99 big)

(* The documented accuracy contract: the estimate is the bucket's upper
   bound, so true_v <= estimate < 2 * true_v for every quantile (the
   +inf bucket reports the exact maximum and is exact). *)
let test_quantile_error_bound () =
  fresh ();
  Tel.enable ();
  let h = H.make "test/quantiles" in
  let values = List.init 1000 (fun i -> (7 * i) + 1) in
  List.iter (H.record h) values;
  let sorted = List.sort compare values in
  let n = List.length sorted in
  List.iter
    (fun q ->
      let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
      let true_v = float_of_int (List.nth sorted (rank - 1)) in
      let est = H.quantile h q in
      if est < true_v then
        Alcotest.failf "q=%g: estimate %g below true %g" q est true_v;
      if est >= 2. *. true_v then
        Alcotest.failf "q=%g: estimate %g >= 2x true %g" q est true_v)
    [ 0.01; 0.25; 0.50; 0.90; 0.99 ];
  Alcotest.(check (float 0.)) "max exact" 6994. (H.max_value h);
  Alcotest.(check (float 0.)) "q=1 hits a real bound" 8192. (H.quantile h 1.0)

let test_cross_thread_merge () =
  fresh ();
  Tel.enable ();
  let shared = H.make "test/merge" in
  let lock = Mutex.create () in
  let worker lo =
    Thread.create
      (fun () ->
        (* lock-free private scratch, folded in under the shared lock —
           the usage pattern the server's worker threads follow *)
        let scratch = H.make "test/merge/scratch" in
        for v = lo to lo + 499 do
          H.record scratch v
        done;
        Mutex.lock lock;
        H.merge ~into:shared scratch;
        Mutex.unlock lock)
      ()
  in
  let threads = [ worker 1; worker 501 ] in
  List.iter Thread.join threads;
  Alcotest.(check int) "all observations merged" 1000 (H.count shared);
  Alcotest.(check (float 0.)) "max survives merge" 1000. (H.max_value shared);
  Alcotest.(check (float 0.)) "sum survives merge"
    (float_of_int (1000 * 1001 / 2))
    (H.sum shared);
  (* merging drained scratch data must work even after the sink went
     off mid-run *)
  let late = H.make "test/late" in
  H.record late 9;
  Tel.disable ();
  H.merge ~into:shared late;
  Alcotest.(check int) "merge is unconditional" 1001 (H.count shared)

let test_scaled_seconds () =
  fresh ();
  Tel.enable ();
  (* a seconds histogram records microseconds and scales on read *)
  let h = H.make ~unit_:"s" ~scale:1e-6 "test/seconds" in
  H.record_seconds h 0.001;
  Alcotest.(check int) "one observation" 1 (H.count h);
  Alcotest.(check (float 1e-9)) "sum back in seconds" 0.001 (H.sum h);
  (* 1000us falls in the 1024us bucket; the bound reads as seconds *)
  Alcotest.(check (float 1e-9)) "bound scaled to seconds" 0.001024 (H.p50 h)

let test_registry_and_stats () =
  fresh ();
  Tel.enable ();
  let h = H.create ~unit_:"bytes" "test/registered" in
  Alcotest.(check bool) "create dedups" true (H.create "test/registered" == h);
  Alcotest.(check bool) "findable" true (H.find "test/registered" = Some h);
  H.record h 100;
  let stats = H.stats () in
  let get k =
    match List.assoc_opt k stats with
    | Some v -> v
    | None -> Alcotest.failf "missing stat %s" k
  in
  Alcotest.(check (float 0.)) "p50 stat" 128. (get "test/registered_p50_bytes");
  Alcotest.(check (float 0.)) "count stat" 1. (get "test/registered_count");
  let summaries = H.summaries () in
  Alcotest.(check bool) "non-empty summarised" true
    (List.exists (fun s -> s.H.s_name = "test/registered") summaries);
  H.reset_all ();
  Alcotest.(check int) "reset_all zeroes" 0 (H.count h);
  Alcotest.(check bool) "empty drops out of summaries" false
    (List.exists (fun s -> s.H.s_name = "test/registered") (H.summaries ()))

let suite =
  [
    Alcotest.test_case "disabled record is a no-op" `Quick
      test_disabled_record_is_noop;
    Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
    Alcotest.test_case "quantile error bound" `Quick test_quantile_error_bound;
    Alcotest.test_case "cross-thread merge" `Quick test_cross_thread_merge;
    Alcotest.test_case "scaled seconds histogram" `Quick test_scaled_seconds;
    Alcotest.test_case "registry and flat stats" `Quick test_registry_and_stats;
  ]
