#!/usr/bin/env bash
# Integration tests for the xaos command-line tool. Invoked by dune with
# the binary's path as $1; any failed assertion aborts the run.
set -eu

XAOS="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() { echo "cli_test: $*" >&2; exit 1; }

expect() { # expect <description> <expected> <actual>
  if [ "$2" != "$3" ]; then
    fail "$1: expected [$2], got [$3]"
  fi
}

# --- eval over a file, paper example --------------------------------------
cat > "$WORK/fig2.xml" <<'EOF'
<X><Y><W/><Z><V/><V/><W><W/></W></Z><U/></Y><Y><Z><W/></Z><U/></Y></X>
EOF
OUT=$("$XAOS" eval '/descendant::Y[child::U]/descendant::W[ancestor::Z/child::V]' "$WORK/fig2.xml")
expect "paper solution" "W(7)@4
W(8)@5" "$OUT"

# --- eval from stdin, count ------------------------------------------------
OUT=$(echo '<a><b/><c><b/></c></a>' | "$XAOS" eval --count '//b')
expect "count from stdin" "2" "$OUT"

# --- dom engine agrees -----------------------------------------------------
OUT=$("$XAOS" eval --engine dom --count '//W[ancestor::Z]' "$WORK/fig2.xml")
expect "dom engine" "3" "$OUT"
OUT=$("$XAOS" eval --engine dom-dedup --count '//W[ancestor::Z]' "$WORK/fig2.xml")
expect "dom-dedup engine" "3" "$OUT"

# --- tuples ----------------------------------------------------------------
OUT=$(echo '<a><b/><b/></a>' | "$XAOS" eval --tuples '/$a/$b' | tail -2)
expect "tuples" "(a(1)@1, b(2)@2)
(a(1)@1, b(3)@2)" "$OUT"

# --- attribute and text extensions ----------------------------------------
OUT=$(echo '<m><i k="1">x</i><i>y</i></m>' | "$XAOS" eval --count '//i[@k]')
expect "attribute test" "1" "$OUT"
OUT=$(echo "<m><i>ab</i><i>cd</i></m>" | "$XAOS" eval --count "//i[contains(text(),'c')]")
expect "text test" "1" "$OUT"

# --- explain ---------------------------------------------------------------
OUT=$("$XAOS" explain '//listitem/ancestor::category//name' | grep -c 'x-dag')
expect "explain shows x-dag" "1" "$OUT"
OUT=$("$XAOS" explain '/parent::q' | grep -c 'unsatisfiable')
expect "explain flags unsatisfiable" "1" "$OUT"

# --- trace -------------------------------------------------------------------
OUT=$("$XAOS" trace '/descendant::Y[child::U]/descendant::W[ancestor::Z/child::V]' "$WORK/fig2.xml" | grep -c 'undo$')
expect "trace shows the undo" "1" "$OUT"

# --- exit-code taxonomy ------------------------------------------------------
# 0 ok, 1 query error, 2 I/O error, 3 ill-formed input, 4 limit tripped
code() { # code <expected> <cmd...>
  local expected="$1"; shift
  set +e
  "$@" >/dev/null 2>&1 </dev/null
  local actual=$?
  set -e
  expect "exit code of: $*" "$expected" "$actual"
}
echo '<a><b/></a>' > "$WORK/small.xml"
echo '<a><b></a>'  > "$WORK/bad.xml"
code 1 "$XAOS" eval '/a[' "$WORK/small.xml"
code 2 "$XAOS" eval '/a' "$WORK/no_such_file.xml"
code 3 "$XAOS" eval '/a' "$WORK/bad.xml"
code 4 "$XAOS" eval --max-depth 1 '/a' "$WORK/small.xml"
code 4 "$XAOS" eval --max-bytes 4 '/a' "$WORK/small.xml"
code 2 "$XAOS" filter "$WORK/no_such_subs.txt" "$WORK/small.xml"
code 3 "$XAOS" filter <(echo '//b') "$WORK/bad.xml"

# --- earliest-decision emission ---------------------------------------------
# differential: the streamed item lines must equal the deferred result set,
# on the paper example (backward axes) and on a generated XMark document
OUT_DEF=$("$XAOS" eval '/descendant::Y[child::U]/descendant::W[ancestor::Z/child::V]' "$WORK/fig2.xml")
OUT_EARLY=$("$XAOS" eval --earliest '/descendant::Y[child::U]/descendant::W[ancestor::Z/child::V]' "$WORK/fig2.xml")
expect "earliest equals deferred on the paper example" "$OUT_DEF" "$OUT_EARLY"
code 1 "$XAOS" eval --eager --earliest '//b' "$WORK/small.xml"

# --- lenient recovery --------------------------------------------------------
OUT=$("$XAOS" eval --lenient --count '//b' "$WORK/bad.xml")
expect "lenient repairs and matches" "1" "$OUT"
OUT=$("$XAOS" eval --lenient --stats '//b' "$WORK/bad.xml" 2>&1 >/dev/null | grep -c 'parse faults: 1')
expect "lenient counts faults in stats" "1" "$OUT"

# --- partial results on truncated input -------------------------------------
printf '<a><b/><b/><c>unterminated' > "$WORK/trunc.xml"
OUT=$("$XAOS" eval --partial-ok --count '//b' "$WORK/trunc.xml" 2>/dev/null)
expect "partial-ok exits 0 with certain results" "2" "$OUT"
code 3 "$XAOS" eval '//b' "$WORK/trunc.xml"

# --- generate + filter -----------------------------------------------------
"$XAOS" generate xmark --scale 0.002 -o "$WORK/xm.xml" 2>/dev/null
test -s "$WORK/xm.xml" || fail "xmark output missing"
printf '//person[@id]\n# comment\n//no_such_thing\n' > "$WORK/subs.txt"
OUT=$("$XAOS" filter "$WORK/subs.txt" "$WORK/xm.xml" | awk '{print $2}' | tr '\n' ' ')
expect "filter verdicts" "MATCH - " "$OUT"

# earliest differential on the XMark document: same items, same order
"$XAOS" eval '//listitem/ancestor::category//name' "$WORK/xm.xml" > "$WORK/xm_def.out"
"$XAOS" eval --earliest '//listitem/ancestor::category//name' "$WORK/xm.xml" > "$WORK/xm_early.out"
cmp -s "$WORK/xm_def.out" "$WORK/xm_early.out" \
  || fail "earliest and deferred differ on the xmark document"

# truncated XMark: --partial-ok reports a subset of the full result, exit 0
FULL=$("$XAOS" eval --count '//listitem/ancestor::category//name' "$WORK/xm.xml")
head -c $(( $(wc -c < "$WORK/xm.xml") / 2 )) "$WORK/xm.xml" > "$WORK/xm_trunc.xml"
code 3 "$XAOS" eval '//name' "$WORK/xm_trunc.xml"
PART=$("$XAOS" eval --partial-ok --count '//listitem/ancestor::category//name' "$WORK/xm_trunc.xml" 2>/dev/null) \
  || fail "partial-ok on truncated xmark should exit 0"
[ "$PART" -le "$FULL" ] || fail "partial count $PART exceeds full count $FULL"

# --- telemetry: --report, report validate, --metrics ------------------------
"$XAOS" eval --count --report "$WORK/run.json" \
  '//listitem/ancestor::category//name' "$WORK/xm.xml" > /dev/null
test -s "$WORK/run.json" || fail "--report wrote nothing"
OUT=$(grep -c '"schema_version": 4' "$WORK/run.json")
expect "report carries schema version" "1" "$OUT"
OUT=$(grep -c '"relevance"' "$WORK/run.json")
expect "report carries relevance section" "1" "$OUT"
OUT=$(grep -c '"snapshots"' "$WORK/run.json")
expect "report carries snapshot series" "1" "$OUT"
"$XAOS" report validate "$WORK/run.json" > /dev/null \
  || fail "report validate rejected a fresh report"
echo '{"schema_version": 999, "kind": "eval"}' > "$WORK/future.json"
code 3 "$XAOS" report validate "$WORK/future.json"
code 2 "$XAOS" report validate "$WORK/no_such_report.json"
OUT=$("$XAOS" eval --count --metrics - '//b' "$WORK/small.xml" | grep -c '^xaos_sax_events_total')
expect "metrics exposition has sax counter" "1" "$OUT"
# --report needs the streaming engine
code 1 "$XAOS" eval --engine dom --report "$WORK/r2.json" '//b' "$WORK/small.xml"
# --stats now includes wall-clock and peak heap
OUT=$("$XAOS" eval --stats '//b' "$WORK/small.xml" 2>&1 >/dev/null | grep -c 'peak heap:')
expect "--stats reports peak heap" "1" "$OUT"

# --- provenance: --trace-out, xaos why ---------------------------------------
"$XAOS" eval --count --trace-out "$WORK/trace.json" \
  '//listitem/ancestor::category//name' "$WORK/xm.xml" > /dev/null
test -s "$WORK/trace.json" || fail "--trace-out wrote nothing"
OUT=$(grep -c '"displayTimeUnit": "ms"' "$WORK/trace.json")
expect "chrome trace header" "1" "$OUT"
OUT=$(grep -c '"traceEvents"' "$WORK/trace.json")
expect "chrome trace events array" "1" "$OUT"
# --trace-out needs the streaming engine too
code 1 "$XAOS" eval --engine dom --trace-out "$WORK/t2.json" '//b' "$WORK/small.xml"
# a tiny ring still produces a loadable trace
"$XAOS" eval --count --trace-out "$WORK/trace_small.json" --trace-capacity 8 \
  '//W[ancestor::Z]' "$WORK/fig2.xml" > /dev/null
test -s "$WORK/trace_small.json" || fail "bounded-ring trace missing"

OUT=$("$XAOS" why '/descendant::Y[child::U]/descendant::W[ancestor::Z/child::V]' "$WORK/fig2.xml")
echo "$OUT" | grep -q 'W(7)@4' || fail "why misses result W(7)@4"
echo "$OUT" | grep -q 'emitted at byte' || fail "why misses emission position"
echo "$OUT" | grep -q 'created at byte' || fail "why misses creation position"
echo "$OUT" | grep -q 'propagated.*into the root structure' \
  || fail "why chain does not reach the root"
OUT=$("$XAOS" why --item 7 '//W[ancestor::Z]' "$WORK/fig2.xml" | grep -c '^W(')
expect "why --item explains one item" "1" "$OUT"

# --- snapshot interval + NDJSON metrics --------------------------------------
OUT=$("$XAOS" eval --count --metrics - --snapshot-interval 64 \
  '//b' "$WORK/small.xml" | grep -c '"retained_bytes"')
[ "$OUT" -ge 1 ] || fail "metrics streamed no NDJSON snapshot points"

# --- report diff -------------------------------------------------------------
"$XAOS" eval --count --report "$WORK/run2.json" \
  '//listitem/ancestor::category//name' "$WORK/xm.xml" > /dev/null
"$XAOS" report diff "$WORK/run.json" "$WORK/run2.json" --threshold-pct 10000 \
  > /dev/null || fail "report diff flagged a regression at threshold 10000%"
set +e
"$XAOS" report diff "$WORK/run.json" "$WORK/run2.json" --threshold-pct=-101 > /dev/null
DIFF_CODE=$?
set -e
expect "report diff exits 1 on regression" "1" "$DIFF_CODE"
code 3 "$XAOS" report diff "$WORK/no_such.json" "$WORK/run2.json"

# --- trace truncation message states the limit -------------------------------
OUT=$("$XAOS" trace --limit 1 '//b' "$WORK/small.xml" | grep -c -- '--limit is 1, default 200')
expect "trace truncation states current limit and default" "1" "$OUT"
OUT=$("$XAOS" trace --help=plain 2>/dev/null | grep -c 'default 200')
expect "trace --help documents the default limit" "1" "$OUT"

# --- subscription service: serve / subscribe / publish / stats --------------
SOCK="$WORK/service.sock"
printf '//b\n# comment\n//c\n' > "$WORK/service_subs.txt"
"$XAOS" serve --socket "$SOCK" --subscriptions "$WORK/service_subs.txt" \
  --metrics "$WORK/serve_metrics.ndjson" --snapshot-interval 0.2 \
  --attrib --slow-ms 0 --flight-sample 1 --flight-dir "$WORK/flights" \
  2> "$WORK/serve.log" &
SERVE_PID=$!
for _ in $(seq 1 50); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || fail "service socket never appeared"

"$XAOS" subscribe --socket "$SOCK" mine '//b' > "$WORK/sub.log" 2>&1 &
SUB_PID=$!
sleep 0.3
OUT=$("$XAOS" publish --socket "$SOCK" "$WORK/small.xml")
echo "$OUT" | grep -q '"event":"processed"' || fail "publish saw no processed event"
echo "$OUT" | grep -q '"mine":1' || fail "publish outcome misses the live subscription"
# --- cost attribution over the wire: profile, slowlog, flight files ---------
OUT=$("$XAOS" profile --socket "$SOCK")
echo "$OUT" | grep -q 'top by match_s:' || fail "profile misses the cost table"
echo "$OUT" | grep -q 'mine' || fail "profile misses the live subscription"
echo "$OUT" | grep -q 'attribution disabled' \
  && fail "profile claims attribution is disabled on an --attrib server"
OUT=$("$XAOS" slowlog --socket "$SOCK" --json)
echo "$OUT" | grep -q '"doc_id"' || fail "slowlog recorded no document at --slow-ms 0"
echo "$OUT" | grep -q '"top"' || fail "slowlog record misses the per-subscription breakdown"
code 1 "$XAOS" profile --socket "$SOCK" --by nonsense
# every document samples at --flight-sample 1: a trace file with all six
# pipeline stages appears once the writer thread finishes the recording
FLIGHT=""
for _ in $(seq 1 50); do
  FLIGHT=$(ls "$WORK/flights"/flight-*.json 2>/dev/null | head -1 || true)
  [ -n "$FLIGHT" ] && break
  sleep 0.1
done
[ -n "$FLIGHT" ] || fail "no flight recording written"
grep -q '"traceEvents"' "$FLIGHT" || fail "flight file is not a chrome trace"
for stage in ingress parse dispatch match emission writer; do
  grep -q "\"$stage\"" "$FLIGHT" || fail "flight trace misses the $stage stage"
done

OUT=$("$XAOS" service-stats --socket "$SOCK")
echo "$OUT" | grep -q '"service/docs":1' || fail "service stats missed the document"
echo "$OUT" | grep -q '"service/live_subscriptions":3' \
  || fail "service stats misses the subscriptions"
code 2 "$XAOS" publish --socket "$WORK/no_such.sock" "$WORK/small.xml"

# --- observability against the live server ----------------------------------
# one-shot exposition scrape: well-formed, and the published document shows
OUT=$("$XAOS" metrics --socket "$SOCK")
echo "$OUT" | grep -q '^# TYPE xaos_service_docs_total counter' \
  || fail "metrics scrape misses the docs counter type line"
echo "$OUT" | grep -q '^xaos_service_docs_total 1$' \
  || fail "metrics scrape misses the published document"
echo "$OUT" | grep -q '^xaos_stage_parse_seconds_count [1-9]' \
  || fail "metrics scrape has an empty parse-stage histogram"
# every sample line is  name[{labels}] value  — no malformed exposition rows
BAD=$(echo "$OUT" | grep -v '^#' | grep -v '^$' \
  | grep -cv '^xaos_[a-z_]*\({[^}]*}\)\? [0-9.eE+-]*$' || true)
expect "exposition sample lines well-formed" "0" "$BAD"
code 2 "$XAOS" metrics --socket "$WORK/no_such.sock"

# stats-stream pushes periodic snapshots: two frames within the timeout
set +e
timeout 3 "$XAOS" top --socket "$SOCK" --interval 0.3 > "$WORK/top.out"
set -e
OUT=$(grep -c 'snapshot #' "$WORK/top.out")
[ "$OUT" -ge 2 ] || fail "stats-stream delivered $OUT snapshots, wanted >= 2"

# top --once renders a single frame without a TTY and exits
OUT=$("$XAOS" top --socket "$SOCK" --once)
echo "$OUT" | grep -q 'snapshot #' || fail "top --once rendered no snapshot"
echo "$OUT" | grep -q 'docs 1' || fail "top --once misses the document count"
echo "$OUT" | grep -q 'parse' || fail "top --once misses the latency table"

sleep 0.2
grep -q '"event":"match"' "$WORK/sub.log" || fail "subscriber saw no match event"
kill -INT "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
wait "$SUB_PID" 2>/dev/null || true
[ -S "$SOCK" ] && fail "socket file not removed on shutdown"
grep -q 'service stopped' "$WORK/serve.log" || fail "serve did not stop cleanly"
# the --metrics sampler streamed periodic NDJSON snapshots and a final
# exposition dump
OUT=$(grep -c '"stats"' "$WORK/serve_metrics.ndjson")
[ "$OUT" -ge 2 ] || fail "serve --metrics sampled $OUT snapshots, wanted >= 2"
grep -q '^# TYPE xaos_service_docs_total counter' "$WORK/serve_metrics.ndjson" \
  || fail "serve --metrics misses the final exposition"

# --- chaos soak smoke: healthy run, valid report, event log ------------------
"$XAOS" soak --docs 120 --subs 25 --socket "$WORK/soak.sock" \
  --report "$WORK/soak.json" --event-log "$WORK/soak_events.ndjson" \
  --quiet > "$WORK/soak.out" \
  || fail "soak smoke unhealthy"
grep -q 'HEALTHY' "$WORK/soak.out" || fail "soak did not report HEALTHY"
grep -q 'crashes 0' "$WORK/soak.out" || fail "soak reported crashes"
"$XAOS" report validate "$WORK/soak.json" > /dev/null \
  || fail "soak report failed validation"
grep -q '"service_latency"' "$WORK/soak.json" \
  || fail "soak report misses the latency section"
grep -q '"stage/parse"' "$WORK/soak.json" \
  || fail "soak report misses the parse-stage histogram"
grep -q '"engine/emission"' "$WORK/soak.json" \
  || fail "soak report misses the emission histogram"
# the event log streamed typed supervision records
grep -q '"reason":"budget-exceeded"' "$WORK/soak_events.ndjson" \
  || fail "event log misses a typed quarantine record"
grep -q '"reason":"backoff-elapsed"' "$WORK/soak_events.ndjson" \
  || fail "event log misses a typed readmit record"
grep -q '"reason":"queue-full"' "$WORK/soak_events.ndjson" \
  || fail "event log misses a typed shed record"
grep -q '"reason":"slow-document"' "$WORK/soak_events.ndjson" \
  || fail "event log misses a typed slow-document record"
# cost attribution ran, conserved, and landed in the v4 report
grep -q 'accounts (conserved)' "$WORK/soak.out" \
  || fail "soak summary misses the conserved attribution line"
grep -q 'flight stages' "$WORK/soak.out" \
  || fail "soak summary misses the flight stage list"
grep -q '"attribution"' "$WORK/soak.json" \
  || fail "soak report misses the attribution section"

# --- report diff tolerates optional sections absent on one side --------------
# run.json (eval, no attribution) as baseline against the soak's
# attribution-bearing report: skip with a note, exit 0
OUT=$("$XAOS" report diff "$WORK/run.json" "$WORK/soak.json" --threshold-pct 100000) \
  || fail "diff against a baseline without attribution exited nonzero"
echo "$OUT" | grep -q 'note: skipping attribution (absent in baseline)' \
  || fail "diff misses the attribution skip note"

# --- generate random is deterministic ---------------------------------------
"$XAOS" generate random --seed 5 --elements 500 -o "$WORK/r1.xml" --query-out "$WORK/q1" 2>/dev/null
"$XAOS" generate random --seed 5 --elements 500 -o "$WORK/r2.xml" --query-out "$WORK/q2" 2>/dev/null
cmp -s "$WORK/r1.xml" "$WORK/r2.xml" || fail "random docs differ across runs"
cmp -s "$WORK/q1" "$WORK/q2" || fail "random queries differ across runs"
QUERY=$(cat "$WORK/q1")
"$XAOS" eval --count "$QUERY" "$WORK/r1.xml" > /dev/null || fail "generated query fails on its document"

echo "cli_test: all assertions passed"
