(* The interned-symbol event core: intern/lookup round-trips, id
   stability, generation resets between documents of one Query_set
   session, wildcard interaction, and the differential property pinning
   the interned engine to the string-keyed Section 3.3 semantics (which
   deliberately never touches the symbol table). *)

module Symbol = Xaos_xml.Symbol
module Event = Xaos_xml.Event
open Xaos_core

let test_roundtrip () =
  Symbol.reset ();
  let a = Symbol.intern "alpha" in
  let b = Symbol.intern "beta" in
  Alcotest.(check string) "name of a" "alpha" (Symbol.name a);
  Alcotest.(check string) "name of b" "beta" (Symbol.name b);
  Alcotest.(check bool) "distinct names, distinct ids" false
    (Symbol.equal a b);
  Alcotest.(check int) "intern is idempotent" a (Symbol.intern "alpha");
  Alcotest.(check (option int)) "find sees interned" (Some b)
    (Symbol.find "beta");
  Alcotest.(check (option int)) "find misses fresh" None
    (Symbol.find "gamma")

let test_id_stability () =
  Symbol.reset ();
  (* ids are dense and stable in first-intern order within a generation *)
  let ids = List.map Symbol.intern [ "x"; "y"; "z"; "y"; "x" ] in
  Alcotest.(check (list int)) "dense, first-intern order" [ 0; 1; 2; 1; 0 ] ids;
  Alcotest.(check int) "count" 3 (Symbol.count ());
  let gen = Symbol.generation () in
  Symbol.reset ();
  Alcotest.(check bool) "reset bumps generation" true
    (Symbol.generation () > gen);
  Alcotest.(check int) "reset empties table" 0 (Symbol.count ());
  (* stale ids are detected rather than silently mapped *)
  (match Symbol.name 2 with
  | _ -> Alcotest.fail "stale id should raise"
  | exception Invalid_argument _ -> ());
  Alcotest.(check int) "fresh generation re-assigns from 0" 0
    (Symbol.intern "z")

let test_wildcard_bit () =
  Symbol.reset ();
  Alcotest.(check bool) "plain name matches *" true
    (Symbol.matches_wildcard (Symbol.intern "item"));
  Alcotest.(check bool) "virtual #root does not match *" false
    (Symbol.matches_wildcard (Symbol.intern Xaos_xml.Dom.root_tag));
  Alcotest.(check bool) "none does not match *" false
    (Symbol.matches_wildcard Symbol.none);
  (* agreement with the AST-level definition on every event of a parse *)
  List.iter
    (fun ev ->
      match Event.sym ev with
      | Some sym ->
        Alcotest.(check bool)
          ("wildcard bit for " ^ Symbol.name sym)
          (Xaos_xpath.Ast.test_matches Xaos_xpath.Ast.Wildcard
             (Symbol.name sym))
          (Symbol.matches_wildcard sym)
      | None -> ())
    (Xaos_xml.Sax.events_of_string "<r><a/><b>t</b></r>")

let test_wildcard_and_text_query () =
  Symbol.reset ();
  (* wildcard x-nodes and text tests ride the interned path end to end:
     the virtual root must stay out of wildcard results, and text tests
     must still resolve on the symbol-carrying items *)
  let q = Query.compile_exn "//*[text()='foo']" in
  let r = Query.run_string q "<r><a>foo</a><b>bar</b><c><a>foo</a></c></r>" in
  (* string values: a(2)="foo", c(4)="foo" (via its descendant), a(5)="foo";
     r(1)="foobarfoo" and the virtual root never enter *)
  Alcotest.(check (list string))
    "only foo-valued elements, no #root"
    [ "a"; "c"; "a" ]
    (List.map Item.tag r.Result_set.items)

(* One Query_set compiled once, two documents with a Symbol.reset between
   them: the second document's ids are assigned differently (shifted by
   junk interns), yet results stay correct because engines re-resolve
   their name tests at Query_set.start. *)
let test_reset_between_documents () =
  Symbol.reset ();
  let t =
    match Query_set.compile [ ("q1", "//a/b"); ("q2", "//c") ] with
    | Ok t -> t
    | Error msg -> Alcotest.failf "compile: %s" msg
  in
  let doc = "<r><a><b/></a><c/><x><a><b/></a></x></r>" in
  let run () =
    let s = Query_set.start t in
    List.iter (Query_set.feed s) (Xaos_xml.Sax.events_of_string doc);
    Query_set.finish s
    |> List.map (fun o ->
           ( o.Query_set.query_name,
             List.map
               (fun it -> (Item.tag it, it.Item.id, it.Item.level))
               o.Query_set.items ))
  in
  let first = run () in
  Symbol.reset ();
  (* skew the id assignment so any cached pre-reset id would misresolve *)
  for i = 0 to 40 do
    ignore (Symbol.intern (Printf.sprintf "junk%d" i) : Symbol.t)
  done;
  let second = run () in
  Alcotest.(
    check
      (list (pair string (list (triple string int int)))))
    "same outcomes across a generation reset" first second;
  Alcotest.(check (list (pair string (list (triple string int int)))))
    "expected outcomes"
    [ ("q1", [ ("b", 3, 3); ("b", 7, 4) ]); ("q2", [ ("c", 4, 2) ]) ]
    first

(* The differential oracle: Semantics is the string-keyed pre-refactor
   specification (it matches labels with String.equal on Dom.element.tag
   and never consults the symbol table); the streaming engine runs fully
   interned. Each case starts a fresh generation with a random id skew,
   so agreement proves results are invariant under id assignment. *)
let differential_interned_vs_string_keyed =
  let open QCheck in
  Test.make ~name:"interned engine = string-keyed semantics" ~count:300
    (make
       ~print:(fun (skew, (d, p)) ->
         Printf.sprintf "skew %d, %s on %s" skew (Xaos_xpath.Ast.to_string p) d)
       Gen.(
         pair (int_bound 20)
           (pair Test_properties.gen_doc Test_properties.gen_path)))
    (fun (skew, (doc_s, path)) ->
      Symbol.reset ();
      for i = 0 to skew - 1 do
        ignore (Symbol.intern (Printf.sprintf "skew%d" i) : Symbol.t)
      done;
      match Query.compile_path path with
      | Error msg -> QCheck.Test.fail_reportf "compile failed: %s" msg
      | Ok q ->
        let doc = Xaos_xml.Dom.of_string doc_s in
        let oracle = Semantics.eval_path path doc in
        let streamed = (Query.run_string q doc_s).Result_set.items in
        let shared =
          match Query_set.of_queries [ ("q", q) ] with
          | t -> (
            match Query_set.run_string t doc_s with
            | [ o ] -> o.Query_set.items
            | _ -> assert false)
        in
        let show items =
          String.concat ","
            (List.map (fun i -> Format.asprintf "%a" Item.pp i) items)
        in
        if not (List.equal Item.equal oracle streamed) then
          QCheck.Test.fail_reportf "engine %s <> oracle %s" (show streamed)
            (show oracle)
        else if not (List.equal Item.equal oracle shared) then
          QCheck.Test.fail_reportf "shared dispatch %s <> oracle %s"
            (show shared) (show oracle)
        else true)

let suite =
  [
    Alcotest.test_case "intern/lookup round-trip" `Quick test_roundtrip;
    Alcotest.test_case "id stability and reset" `Quick test_id_stability;
    Alcotest.test_case "wildcard matchability bit" `Quick test_wildcard_bit;
    Alcotest.test_case "wildcard + text test query" `Quick
      test_wildcard_and_text_query;
    Alcotest.test_case "reset between documents in a session" `Quick
      test_reset_between_documents;
    QCheck_alcotest.to_alcotest differential_interned_vs_string_keyed;
  ]
