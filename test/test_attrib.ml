(* Cost attribution and the flight recorder (PR 9): the per-key account
   registry, conservation of the broker's per-run charges against its
   independently accumulated pipeline totals (across chaos faults,
   quarantine and unsubscribe), the threshold-triggered slow-document
   log, and the sampled flight recorder's keep rules and Perfetto
   (Chrome trace-event) export. *)

module Json = Xaos_obs.Json
module Attrib = Xaos_obs.Attrib
module Flight = Xaos_obs.Flight
module Tel = Xaos_obs.Telemetry
module Eventlog = Xaos_obs.Eventlog
module Sax = Xaos_xml.Sax
open Xaos_service

(* Every test leaves the process-global registries the way the rest of
   the suite expects them: attribution and the recorder off and empty. *)
let fresh () =
  Attrib.disable ();
  Attrib.reset ();
  Flight.disable ();
  Flight.reset ();
  Eventlog.disable ();
  Eventlog.clear ()

let jget path j =
  match Json.member path j with
  | Some v -> v
  | None -> Alcotest.failf "missing JSON field %s" path

let jnum path j =
  match Json.to_float (jget path j) with
  | Some f -> f
  | None -> Alcotest.failf "field %s is not a number" path

(* ------------------------------------------------------------------ *)
(* Account registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_disabled_charge_is_noop () =
  fresh ();
  let a = Attrib.account "s1" in
  Attrib.charge a ~events:10 ~match_s:0.5 ~structures:3 ~live_peak:7
    ~retained_peak_bytes:1024 ~emissions:2 ~fault:true;
  (match Attrib.accounts () with
  | [ sn ] ->
    Alcotest.(check int) "no docs" 0 sn.Attrib.sn_docs;
    Alcotest.(check int) "no events" 0 sn.Attrib.sn_events;
    Alcotest.(check int) "no faults" 0 sn.Attrib.sn_faults
  | l -> Alcotest.failf "expected one account, got %d" (List.length l));
  let t = Attrib.totals () in
  Alcotest.(check int) "totals docs" 0 t.Attrib.t_docs;
  Alcotest.(check int) "totals events" 0 t.Attrib.t_events

let test_charging_accumulates_and_peaks () =
  fresh ();
  Attrib.enable ();
  let a = Attrib.account "s1" in
  Alcotest.(check string) "key" "s1" (Attrib.key a);
  Attrib.charge a ~events:5 ~match_s:0.25 ~structures:2 ~live_peak:10
    ~retained_peak_bytes:100 ~emissions:1 ~fault:false;
  Attrib.charge a ~events:3 ~match_s:0.5 ~structures:4 ~live_peak:6
    ~retained_peak_bytes:400 ~emissions:2 ~fault:true;
  (* same key resolves to the same account: attribution follows the
     tenant across resubscribes *)
  Attrib.charge (Attrib.account "s1") ~events:2 ~match_s:0.25 ~structures:0
    ~live_peak:1 ~retained_peak_bytes:1 ~emissions:0 ~fault:false;
  let b = Attrib.account "s2" in
  Attrib.charge b ~events:1 ~match_s:0.125 ~structures:1 ~live_peak:2
    ~retained_peak_bytes:8 ~emissions:0 ~fault:false;
  (match Attrib.accounts () with
  | [ s1; s2 ] ->
    Alcotest.(check string) "order" "s1" s1.Attrib.sn_key;
    Alcotest.(check int) "docs sum" 3 s1.Attrib.sn_docs;
    Alcotest.(check int) "events sum" 10 s1.Attrib.sn_events;
    Alcotest.(check (float 1e-9)) "match sum" 1.0 s1.Attrib.sn_match_s;
    Alcotest.(check int) "structures sum" 6 s1.Attrib.sn_structures;
    Alcotest.(check int) "live peak is max" 10 s1.Attrib.sn_live_peak;
    Alcotest.(check int) "retained peak is max" 400
      s1.Attrib.sn_retained_peak_bytes;
    Alcotest.(check int) "emissions sum" 3 s1.Attrib.sn_emissions;
    Alcotest.(check int) "faults counted" 1 s1.Attrib.sn_faults;
    Alcotest.(check string) "second key" "s2" s2.Attrib.sn_key
  | l -> Alcotest.failf "expected two accounts, got %d" (List.length l));
  let t = Attrib.totals () in
  Alcotest.(check int) "total subscriptions" 2 t.Attrib.t_subscriptions;
  Alcotest.(check int) "total docs" 4 t.Attrib.t_docs;
  Alcotest.(check int) "total events" 11 t.Attrib.t_events;
  Alcotest.(check (float 1e-9)) "total match" 1.125 t.Attrib.t_match_s;
  Alcotest.(check int) "total faults" 1 t.Attrib.t_faults;
  Attrib.reset ();
  Alcotest.(check int) "reset drops accounts" 0
    (List.length (Attrib.accounts ()))

let test_top_ordering_and_order_names () =
  fresh ();
  Attrib.enable ();
  let charge key ~events ~match_s ~emissions ~fault =
    Attrib.charge (Attrib.account key) ~events ~match_s ~structures:0
      ~live_peak:0 ~retained_peak_bytes:0 ~emissions ~fault
  in
  charge "cheap" ~events:1 ~match_s:0.01 ~emissions:9 ~fault:false;
  charge "hot" ~events:50 ~match_s:0.9 ~emissions:0 ~fault:false;
  charge "chatty" ~events:100 ~match_s:0.1 ~emissions:3 ~fault:true;
  let keys by n = List.map (fun s -> s.Attrib.sn_key) (Attrib.top ~by n) in
  Alcotest.(check (list string))
    "by match time" [ "hot"; "chatty" ]
    (keys Attrib.By_match_s 2);
  Alcotest.(check (list string))
    "by events" [ "chatty"; "hot"; "cheap" ]
    (keys Attrib.By_events 3);
  Alcotest.(check (list string))
    "by emissions" [ "cheap"; "chatty" ]
    (keys Attrib.By_emissions 2);
  Alcotest.(check (list string))
    "by faults" [ "chatty" ] (keys Attrib.By_faults 1);
  Alcotest.(check int) "top clamps to registry size" 3
    (List.length (Attrib.top ~by:Attrib.By_match_s 99));
  (* wire spellings round-trip, plus the documented aliases *)
  List.iter
    (fun by ->
      match Attrib.order_of_string (Attrib.order_name by) with
      | Some by' when by' = by -> ()
      | _ -> Alcotest.failf "order %s does not round-trip" (Attrib.order_name by))
    [ Attrib.By_match_s; Attrib.By_events; Attrib.By_emissions;
      Attrib.By_structures; Attrib.By_faults ];
  Alcotest.(check bool) "alias match" true
    (Attrib.order_of_string "match" = Some Attrib.By_match_s);
  Alcotest.(check bool) "alias time" true
    (Attrib.order_of_string "time" = Some Attrib.By_match_s);
  Alcotest.(check bool) "alias items" true
    (Attrib.order_of_string "items" = Some Attrib.By_emissions);
  Alcotest.(check bool) "unknown rejected" true
    (Attrib.order_of_string "bogus" = None)

let test_snapshot_json_fields () =
  fresh ();
  Attrib.enable ();
  Attrib.charge (Attrib.account "s") ~events:4 ~match_s:0.5 ~structures:2
    ~live_peak:3 ~retained_peak_bytes:64 ~emissions:1 ~fault:true;
  (match Attrib.accounts () with
  | [ sn ] ->
    let j = Attrib.snapshot_to_json sn in
    Alcotest.(check (option string)) "key" (Some "s")
      (Json.to_str (jget "key" j));
    Alcotest.(check (float 0.)) "docs" 1. (jnum "docs" j);
    Alcotest.(check (float 0.)) "events" 4. (jnum "events" j);
    Alcotest.(check (float 1e-9)) "match_s" 0.5 (jnum "match_s" j);
    Alcotest.(check (float 0.)) "structures" 2. (jnum "structures" j);
    Alcotest.(check (float 0.)) "live_peak" 3. (jnum "live_peak" j);
    Alcotest.(check (float 0.)) "retained" 64.
      (jnum "retained_peak_bytes" j);
    Alcotest.(check (float 0.)) "emissions" 1. (jnum "emissions" j);
    Alcotest.(check (float 0.)) "faults" 1. (jnum "faults" j)
  | _ -> Alcotest.fail "expected one account");
  let tj = Attrib.totals_to_json (Attrib.totals ()) in
  Alcotest.(check (float 0.)) "totals subscriptions" 1.
    (jnum "subscriptions" tj);
  Alcotest.(check (float 0.)) "totals docs" 1. (jnum "docs" tj);
  Alcotest.(check (float 1e-9)) "totals match_s" 0.5 (jnum "match_s" tj)

(* ------------------------------------------------------------------ *)
(* Conservation against the broker's pipeline totals                   *)
(* ------------------------------------------------------------------ *)

let chaos_config =
  { Broker.budget = Some 40; deadline_s = None;
    limits = { Sax.default_limits with max_text_bytes = 4096 };
    quarantine = { Quarantine.threshold = 2; base_penalty = 3; max_penalty = 24 };
    reset_symbols_every = 4; earliest = false; prefix_gate = true; slow_ms = Some 0. }

let heavy_doc =
  "<r>" ^ String.concat "" (List.init 12 (fun i ->
      Printf.sprintf "<a><b><c>x%d</c></b></a>" i)) ^ "</r>"

(* A chaotic broker run — budget aborts, quarantine + re-admission, a
   malformed document, an unsubscribe midway — after which the account
   registry's totals must equal the broker's independently accumulated
   pipeline counters exactly. This is the in-process twin of the soak's
   conservation gate. *)
let test_conservation_under_chaos () =
  fresh ();
  Attrib.enable ();
  Eventlog.enable ();
  let b = Broker.create ~config:chaos_config () in
  List.iter
    (fun (name, query) ->
      match Broker.subscribe b ~name ~query with
      | Ok () -> ()
      | Error e -> Alcotest.failf "subscribe %s: %s" name e)
    [ ("c", "//b/c"); ("a", "//a"); ("leaf", "//c"); ("none", "//zzz");
      ("poison", "//*[*]//*") ];
  for i = 1 to 6 do
    ignore (Broker.publish b ~doc_id:(Printf.sprintf "h%d" i) heavy_doc)
  done;
  (* malformed bytes: the parser faults, the document still completes *)
  ignore (Broker.publish b ~doc_id:"bad" "<r><a><<<>junk</r>");
  (* churn: a departing tenant keeps its account *)
  Alcotest.(check bool) "unsubscribe" true (Broker.unsubscribe b ~name:"a");
  for i = 7 to 10 do
    ignore (Broker.publish b ~doc_id:(Printf.sprintf "h%d" i) heavy_doc)
  done;
  let stats = Broker.stats b in
  let stat name =
    match List.assoc_opt name stats with
    | Some v -> v
    | None -> Alcotest.failf "missing broker stat %s" name
  in
  (* the chaos actually happened *)
  Alcotest.(check bool) "poison aborted" true
    (stat "service/runs_aborted" >= 1.);
  Alcotest.(check bool) "quarantine fired" true
    (stat "service/quarantined" >= 1.);
  Alcotest.(check bool) "parser faulted" true
    (stat "service/sax_faults" >= 1.);
  (* conservation: every run outcome was charged exactly once *)
  let t = Attrib.totals () in
  Alcotest.(check int) "accounts cover every subscription" 5
    t.Attrib.t_subscriptions;
  Alcotest.(check (float 0.)) "docs vs run outcomes"
    (stat "service/run_outcomes")
    (float_of_int t.Attrib.t_docs);
  Alcotest.(check (float 0.)) "events vs deliveries"
    (stat "service/deliveries")
    (float_of_int t.Attrib.t_events);
  Alcotest.(check (float 0.)) "emissions vs emitted items"
    (stat "service/emitted_items")
    (float_of_int t.Attrib.t_emissions);
  Alcotest.(check (float 0.)) "faults vs aborted+failed"
    (stat "service/runs_aborted" +. stat "service/runs_failed")
    (float_of_int t.Attrib.t_faults);
  let want = stat "service/match_seconds" in
  let tol = 1e-6 *. Float.max 1. want in
  Alcotest.(check bool) "match seconds agree" true
    (Float.abs (want -. t.Attrib.t_match_s) <= tol);
  Alcotest.(check bool) "faults were charged" true (t.Attrib.t_faults > 0)

(* The PR 10 variant: a duplicate-heavy subscription set, so the broker
   runs shared class engines with fan-out emission and splits each
   class's match seconds across its sharers. Conservation must still
   hold exactly: the split shares re-sum to the pipeline totals, and
   per-subscription charges (events, emissions, faults) stay whole. *)
let test_conservation_shared_engines () =
  fresh ();
  Attrib.enable ();
  Eventlog.enable ();
  let b = Broker.create ~config:chaos_config () in
  List.iter
    (fun (name, query) ->
      match Broker.subscribe b ~name ~query with
      | Ok () -> ()
      | Error e -> Alcotest.failf "subscribe %s: %s" name e)
    [ ("c1", "//b/c"); ("c2", "//b/c"); ("c3", "//b/c"); ("a1", "//a");
      ("a2", "//a"); ("none", "//zzz"); ("poison1", "//*[*]//*");
      ("poison2", "//*[*]//*") ]; (* poison duplicated: shared abort *)
  for i = 1 to 6 do
    ignore (Broker.publish b ~doc_id:(Printf.sprintf "h%d" i) heavy_doc)
  done;
  ignore (Broker.publish b ~doc_id:"bad" "<r><a><<<>junk</r>");
  (* churn one member of a shared class: the siblings keep their engine *)
  Alcotest.(check bool) "unsubscribe" true (Broker.unsubscribe b ~name:"c2");
  for i = 7 to 10 do
    ignore (Broker.publish b ~doc_id:(Printf.sprintf "h%d" i) heavy_doc)
  done;
  let stats = Broker.stats b in
  let stat name =
    match List.assoc_opt name stats with
    | Some v -> v
    | None -> Alcotest.failf "missing broker stat %s" name
  in
  (* compaction was actually in effect *)
  Alcotest.(check bool) "fewer classes than members" true
    (stat "service/queryset_classes" < stat "service/queryset_members");
  Alcotest.(check bool) "ratio above 1" true
    (stat "service/compaction_ratio" > 1.);
  Alcotest.(check bool) "poison aborted" true
    (stat "service/runs_aborted" >= 1.);
  Alcotest.(check bool) "parser faulted" true
    (stat "service/sax_faults" >= 1.);
  let t = Attrib.totals () in
  Alcotest.(check int) "accounts cover every subscription" 8
    t.Attrib.t_subscriptions;
  Alcotest.(check (float 0.)) "docs vs run outcomes"
    (stat "service/run_outcomes")
    (float_of_int t.Attrib.t_docs);
  Alcotest.(check (float 0.)) "events vs deliveries"
    (stat "service/deliveries")
    (float_of_int t.Attrib.t_events);
  Alcotest.(check (float 0.)) "emissions vs emitted items"
    (stat "service/emitted_items")
    (float_of_int t.Attrib.t_emissions);
  Alcotest.(check (float 0.)) "faults vs aborted+failed"
    (stat "service/runs_aborted" +. stat "service/runs_failed")
    (float_of_int t.Attrib.t_faults);
  (* the load-bearing check: per-member split shares of shared engine
     time re-sum to the broker's independent pipeline total *)
  let want = stat "service/match_seconds" in
  let tol = 1e-6 *. Float.max 1. want in
  Alcotest.(check bool) "split match seconds re-sum exactly" true
    (Float.abs (want -. t.Attrib.t_match_s) <= tol);
  (* duplicates of the same query must be charged identical event and
     emission counts: they fan out of one engine *)
  let acct key =
    match
      List.find_opt (fun (s : Attrib.snapshot) -> s.Attrib.sn_key = key)
        (Attrib.accounts ())
    with
    | Some s -> s
    | None -> Alcotest.failf "missing account %s" key
  in
  let c1 = acct "c1" and c3 = acct "c3" in
  Alcotest.(check int) "duplicate events equal" c1.Attrib.sn_events
    c3.Attrib.sn_events;
  Alcotest.(check int) "duplicate emissions equal" c1.Attrib.sn_emissions
    c3.Attrib.sn_emissions

(* ------------------------------------------------------------------ *)
(* Slow-document log                                                   *)
(* ------------------------------------------------------------------ *)

let test_slow_log_triggering () =
  fresh ();
  Eventlog.enable ();
  (* threshold 0 ms: every document is deterministically slow *)
  let b = Broker.create ~config:chaos_config () in
  (match Broker.subscribe b ~name:"c" ~query:"//b/c" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "subscribe: %s" e);
  for i = 1 to 3 do
    ignore (Broker.publish b ~doc_id:(Printf.sprintf "d%d" i) heavy_doc)
  done;
  let slow = Broker.slow_docs b in
  Alcotest.(check int) "every document flagged" 3 (List.length slow);
  (match slow with
  | newest :: _ ->
    Alcotest.(check string) "newest first" "d3" newest.Broker.sd_doc_id;
    Alcotest.(check bool) "total time recorded" true
      (newest.Broker.sd_total_ms >= 0.);
    Alcotest.(check bool) "events counted" true (newest.Broker.sd_events > 0);
    (* the per-subscription breakdown is sorted by cost, descending *)
    let rec descending = function
      | (_, a) :: ((_, b) :: _ as rest) -> a >= b && descending rest
      | _ -> true
    in
    Alcotest.(check bool) "breakdown descending" true
      (descending newest.Broker.sd_top);
    let j = Broker.slow_doc_to_json newest in
    Alcotest.(check (option string)) "json doc id" (Some "d3")
      (Json.to_str (jget "doc_id" j));
    Alcotest.(check bool) "json top is a list" true
      (Json.to_list (jget "top" j) <> None)
  | [] -> Alcotest.fail "no slow records");
  Alcotest.(check (float 0.)) "stats counter" 3.
    (List.assoc "service/slow_docs" (Broker.stats b));
  (* the typed event-log record rides along *)
  let slow_events =
    List.filter
      (fun (e : Eventlog.event) ->
        e.kind = "slow-doc" && e.reason = Some Eventlog.Slow_document)
      (Eventlog.events ())
  in
  Alcotest.(check int) "typed slow records" 3 (List.length slow_events);
  (* no threshold, no log *)
  let b2 = Broker.create ~config:{ chaos_config with slow_ms = None } () in
  ignore (Broker.subscribe b2 ~name:"c" ~query:"//b/c");
  ignore (Broker.publish b2 ~doc_id:"d" heavy_doc);
  Alcotest.(check int) "disabled log stays empty" 0
    (List.length (Broker.slow_docs b2))

let test_slow_log_ring_is_bounded () =
  fresh ();
  let b = Broker.create ~config:chaos_config () in
  ignore (Broker.subscribe b ~name:"c" ~query:"//b/c");
  for i = 1 to 70 do
    ignore (Broker.publish b ~doc_id:(Printf.sprintf "d%d" i) "<r><b><c>x</c></b></r>")
  done;
  let slow = Broker.slow_docs b in
  Alcotest.(check int) "ring capped at 64" 64 (List.length slow);
  (match slow with
  | newest :: _ ->
    Alcotest.(check string) "newest survives" "d70" newest.Broker.sd_doc_id
  | [] -> Alcotest.fail "empty ring");
  Alcotest.(check (float 0.)) "counter keeps the true total" 70.
    (List.assoc "service/slow_docs" (Broker.stats b))

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let with_fake_clock now f =
  Tel.set_clock (fun () -> !now);
  Fun.protect ~finally:(fun () -> Tel.set_clock Unix.gettimeofday) f

let test_flight_keep_rules () =
  fresh ();
  Flight.configure ~sample_every:3 ();
  Alcotest.(check bool) "active" true (Flight.active ());
  let on_grid = Flight.start ~doc_id:"g" in
  Flight.set_tick on_grid 6;
  Alcotest.(check bool) "tick on grid keeps" true (Flight.keep on_grid);
  let off_grid = Flight.start ~doc_id:"o" in
  Flight.set_tick off_grid 7;
  Alcotest.(check bool) "tick off grid drops" false (Flight.keep off_grid);
  Flight.mark_slow off_grid;
  Alcotest.(check bool) "slow always keeps" true (Flight.keep off_grid);
  let faulted = Flight.start ~doc_id:"f" in
  Flight.set_tick faulted 8;
  Flight.mark_faulted faulted;
  Alcotest.(check bool) "faulted always keeps" true (Flight.keep faulted);
  (* a kept recording with no directory is remembered but not written *)
  Alcotest.(check bool) "finish keeps in memory" true
    (Flight.finish on_grid = None);
  Alcotest.(check int) "nothing written" 0 (Flight.written ());
  (match Flight.last () with
  | Some fl -> Alcotest.(check string) "last kept" "g" (Flight.doc_id fl)
  | None -> Alcotest.fail "no last recording");
  Flight.disable ();
  Alcotest.(check bool) "disabled" false (Flight.active ())

let test_flight_chrome_roundtrip () =
  fresh ();
  let now = ref 100.0 in
  with_fake_clock now (fun () ->
      let fl = Flight.start ~doc_id:"doc-1" in
      Flight.set_tick fl 42;
      (* the six pipeline stages, with per-subscription children laid
         inside the match aggregate on track 1 *)
      Flight.span fl ~name:"ingress" ~start:99.9 ~stop:100.0 ();
      Flight.span fl ~name:"parse" ~start:100.0 ~stop:100.3
        ~args:[ ("events", Json.Int 17) ] ();
      Flight.span fl ~name:"dispatch" ~start:100.3 ~stop:100.4 ();
      Flight.span fl ~cat:"match" ~track:1 ~name:"match" ~start:100.4
        ~stop:100.8 ();
      Flight.span fl ~cat:"match" ~track:1 ~name:"s1" ~start:100.4
        ~stop:100.6 ();
      Flight.span fl ~cat:"match" ~track:1 ~name:"s2" ~start:100.6
        ~stop:100.8 ();
      Flight.span fl ~name:"emission" ~start:100.8 ~stop:100.9 ();
      Flight.span fl ~name:"writer" ~start:100.9 ~stop:101.0 ();
      Alcotest.(check (list string)) "span names in order"
        [ "ingress"; "parse"; "dispatch"; "match"; "s1"; "s2"; "emission";
          "writer" ]
        (Flight.span_names fl);
      (* negative durations clamp instead of corrupting the trace *)
      Flight.span fl ~name:"clamped" ~start:101.0 ~stop:100.0 ();
      let j =
        match Json.parse (Json.to_string (Flight.to_chrome fl)) with
        | Ok j -> j
        | Error e -> Alcotest.failf "chrome export does not parse: %s" e
      in
      Alcotest.(check (option string)) "time unit" (Some "ms")
        (Json.to_str (jget "displayTimeUnit" j));
      let events =
        match Json.to_list (jget "traceEvents" j) with
        | Some l -> l
        | None -> Alcotest.fail "traceEvents is not a list"
      in
      (* root + 9 spans *)
      Alcotest.(check int) "event count" 10 (List.length events);
      let by_name name =
        match
          List.find_opt (fun e -> Json.to_str (jget "name" e) = Some name)
            events
        with
        | Some e -> e
        | None -> Alcotest.failf "no event named %s" name
      in
      List.iter
        (fun e ->
          Alcotest.(check (option string)) "complete events" (Some "X")
            (Json.to_str (jget "ph" e));
          Alcotest.(check (option int)) "pid is the tick" (Some 42)
            (Json.to_int (jget "pid" e));
          Alcotest.(check bool) "timestamps shifted non-negative" true
            (jnum "ts" e >= 0.))
        events;
      (* earliest span (ingress) lands at ts 0 after the shift *)
      Alcotest.(check (float 1e-6)) "ingress at origin" 0.
        (jnum "ts" (by_name "ingress"));
      (* microsecond scale: the 0.3 s parse is 300000 us *)
      Alcotest.(check (float 1.)) "parse duration in us" 300000.
        (jnum "dur" (by_name "parse"));
      Alcotest.(check (option int)) "match on track 1" (Some 1)
        (Json.to_int (jget "tid" (by_name "match")));
      (* children nest inside the match aggregate *)
      let m = by_name "match" in
      let m0 = jnum "ts" m and m1 = jnum "ts" m +. jnum "dur" m in
      List.iter
        (fun name ->
          let c = by_name name in
          let c0 = jnum "ts" c and c1 = jnum "ts" c +. jnum "dur" c in
          Alcotest.(check bool)
            (name ^ " nested in match window") true
            (c0 >= m0 -. 1. && c1 <= m1 +. 1.))
        [ "s1"; "s2" ];
      Alcotest.(check (float 1e-6)) "clamped duration" 0.
        (jnum "dur" (by_name "clamped"));
      (* root span covers the whole recording *)
      let root = by_name "doc doc-1" in
      Alcotest.(check (float 1.)) "root spans the recording" (1.1 *. 1e6)
        (jnum "dur" root))

let temp_dir () =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "xaos-flight-test-%d-%d" (Unix.getpid ())
         (int_of_float (Unix.gettimeofday () *. 1000.) mod 1000000))
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

let test_flight_finish_writes_and_caps () =
  fresh ();
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> fresh (); rm_rf dir)
    (fun () ->
      Flight.configure ~sample_every:1 ~dir ~max_files:2 ();
      let record tick =
        let fl = Flight.start ~doc_id:(Printf.sprintf "d%d" tick) in
        Flight.set_tick fl tick;
        Flight.span fl ~name:"parse" ~start:0. ~stop:0.001 ();
        fl
      in
      let f1 = record 1 in
      (match Flight.finish f1 with
      | Some path ->
        Alcotest.(check bool) "file exists" true (Sys.file_exists path);
        let ic = open_in_bin path in
        let body = really_input_string ic (in_channel_length ic) in
        close_in ic;
        (match Json.parse body with
        | Ok j ->
          Alcotest.(check bool) "file is a chrome trace" true
            (Json.member "traceEvents" j <> None)
        | Error e -> Alcotest.failf "flight file does not parse: %s" e)
      | None -> Alcotest.fail "first recording not written");
      Alcotest.(check bool) "finish is idempotent" true
        (Flight.finish f1 = None);
      Alcotest.(check int) "one file written" 1 (Flight.written ());
      ignore (Flight.finish (record 2));
      Alcotest.(check int) "two files written" 2 (Flight.written ());
      (* the cap stops disk writes but the recording is still kept *)
      let f3 = record 3 in
      Alcotest.(check bool) "cap refuses the third file" true
        (Flight.finish f3 = None);
      Alcotest.(check int) "cap held" 2 (Flight.written ());
      (match Flight.last () with
      | Some fl -> Alcotest.(check string) "still remembered" "d3"
                     (Flight.doc_id fl)
      | None -> Alcotest.fail "capped recording forgotten"))

(* The broker fills a recording with real pipeline spans: parse,
   dispatch, emission on track 0 and the match aggregate on track 1,
   and marks it slow under the zero threshold so the keep rule fires
   regardless of the sampling grid. *)
let test_broker_fills_flight_spans () =
  fresh ();
  let b = Broker.create ~config:chaos_config () in
  ignore (Broker.subscribe b ~name:"c" ~query:"//b/c");
  ignore (Broker.subscribe b ~name:"a" ~query:"//a");
  let fl = Flight.start ~doc_id:"d1" in
  let o = Broker.publish ~flight:fl b ~doc_id:"d1" heavy_doc in
  Flight.set_tick fl o.Broker.tick;
  let names = Flight.span_names fl in
  List.iter
    (fun stage ->
      Alcotest.(check bool) (stage ^ " span present") true
        (List.mem stage names))
    [ "parse"; "dispatch"; "emission"; "match" ];
  Alcotest.(check bool) "slow threshold marks the recording" true
    (Flight.keep fl);
  (* finishing with no grid configured still keeps it (marked slow) *)
  Alcotest.(check bool) "kept without disk" true (Flight.finish fl = None);
  match Flight.last () with
  | Some kept -> Alcotest.(check string) "remembered" "d1" (Flight.doc_id kept)
  | None -> Alcotest.fail "slow recording dropped"

let suite =
  [
    Alcotest.test_case "disabled charge is a no-op" `Quick
      test_disabled_charge_is_noop;
    Alcotest.test_case "charging accumulates, peaks max" `Quick
      test_charging_accumulates_and_peaks;
    Alcotest.test_case "top ordering and order names" `Quick
      test_top_ordering_and_order_names;
    Alcotest.test_case "snapshot and totals JSON" `Quick
      test_snapshot_json_fields;
    Alcotest.test_case "conservation under chaos" `Quick
      test_conservation_under_chaos;
    Alcotest.test_case "conservation under shared engines" `Quick
      test_conservation_shared_engines;
    Alcotest.test_case "slow log triggering" `Quick test_slow_log_triggering;
    Alcotest.test_case "slow log ring bounded" `Quick
      test_slow_log_ring_is_bounded;
    Alcotest.test_case "flight keep rules" `Quick test_flight_keep_rules;
    Alcotest.test_case "flight chrome round-trip" `Quick
      test_flight_chrome_roundtrip;
    Alcotest.test_case "flight files and cap" `Quick
      test_flight_finish_writes_and_caps;
    Alcotest.test_case "broker fills flight spans" `Quick
      test_broker_fills_flight_spans;
  ]
