(* Property-based tests (qcheck, registered as alcotest cases):
   - XML serialize/parse roundtrip;
   - XPath pretty-print/parse fixpoint;
   - the central differential property: on random (document, query)
     pairs, the streaming engine in every configuration, the DOM
     baseline, and the executable Section 3.3 semantics all agree;
   - engine invariants (stats conservation, matching-count agreement). *)

open Xaos_core
module Ast = Xaos_xpath.Ast
module Gen = QCheck.Gen

(* ---------------- document generator ---------------- *)

type tree = T of string * (string * string) list * string * tree list
(* tag, attributes, leading text, children *)

let tags = [| "a"; "b"; "c" |]

let attr_keys = [| "k"; "m" |]

let words = [| ""; "foo"; "bar"; "foo bar" |]

let gen_tag = Gen.oneofa tags

let gen_attrs =
  Gen.frequency
    [ (3, Gen.pure []);
      (1,
        Gen.map2
          (fun k v -> [ (k, v) ])
          (Gen.oneofa attr_keys)
          (Gen.oneofa [| "1"; "2" |])) ]

let gen_tree : tree Gen.t =
  Gen.sized_size (Gen.int_range 1 25)
    (Gen.fix (fun self n ->
         if n <= 1 then
           Gen.map3 (fun t attrs text -> T (t, attrs, text, []))
             gen_tag gen_attrs (Gen.oneofa words)
         else
           Gen.map4
             (fun t attrs text kids -> T (t, attrs, text, kids))
             gen_tag gen_attrs (Gen.oneofa words)
             (Gen.list_size (Gen.int_range 0 3) (self (n / 2)))))

let rec tree_to_string (T (tag, attrs, text, kids)) =
  Printf.sprintf "<%s%s>%s%s</%s>" tag
    (String.concat ""
       (List.map (fun (k, v) -> Printf.sprintf " %s=\"%s\"" k v) attrs))
    text
    (String.concat "" (List.map tree_to_string kids))
    tag

let gen_doc = Gen.map tree_to_string gen_tree

(* ---------------- expression generator ---------------- *)

let gen_axis =
  Gen.oneofl
    [ Ast.Child; Ast.Descendant; Ast.Parent; Ast.Ancestor; Ast.Self;
      Ast.Descendant_or_self; Ast.Ancestor_or_self ]

let gen_test =
  Gen.frequency
    [ (6, Gen.map (fun t -> Ast.Name t) gen_tag); (1, Gen.pure Ast.Wildcard) ]

let ( let* ) x f = Gen.( >>= ) x f

let rec gen_steps depth n =
  if n <= 1 then Gen.map (fun s -> [ s ]) (gen_step depth 1)
  else
    let* split = Gen.int_range 1 n in
    if split >= n then Gen.map (fun s -> [ s ]) (gen_step depth n)
    else
      let* first = gen_step depth split in
      let* rest = gen_steps depth (n - split) in
      Gen.pure (first :: rest)

and gen_step depth budget =
  let* axis = gen_axis in
  let* test = gen_test in
  let* predicates =
    if depth >= 2 || budget <= 1 then Gen.pure []
    else
      Gen.frequency
        [ (3, Gen.pure []);
          (1, Gen.map (fun p -> [ p ]) (gen_predicate (depth + 1) (budget - 1)))
        ]
  in
  Gen.pure { Ast.axis; test; predicates; marked = false }

and gen_predicate depth budget =
  let* choice = Gen.int_bound 7 in
  match choice with
  | 6 ->
    let* attr_key = Gen.oneofa attr_keys in
    let* attr_value =
      Gen.oneofl [ None; Some "1"; Some "2"; Some "zz" ]
    in
    Gen.pure (Ast.Attr { Ast.attr_key; attr_value })
  | 7 ->
    let* text_op = Gen.oneofl [ Ast.Text_equals; Ast.Text_contains ] in
    let* text_value = Gen.oneofa [| "foo"; "bar"; "zz"; "" |] in
    Gen.pure (Ast.Text { Ast.text_op; text_value })
  | 0 when budget >= 2 ->
    let* a = gen_predicate (depth + 1) (budget / 2) in
    let* b = gen_predicate (depth + 1) (budget - (budget / 2)) in
    Gen.pure (Ast.And (a, b))
  | 1 when budget >= 2 ->
    let* a = gen_predicate (depth + 1) (budget / 2) in
    let* b = gen_predicate (depth + 1) (budget - (budget / 2)) in
    Gen.pure (Ast.Or (a, b))
  | _ ->
    let* absolute = Gen.frequency [ (5, Gen.pure false); (1, Gen.pure true) ] in
    let* steps = gen_steps depth (min budget 3) in
    Gen.pure (Ast.Path { Ast.absolute; steps })

let gen_path : Ast.path Gen.t =
  let* n = Gen.int_range 1 5 in
  let* steps = gen_steps 0 n in
  Gen.pure { Ast.absolute = true; steps }

let arb_doc = QCheck.make ~print:Fun.id gen_doc

let arb_path = QCheck.make ~print:Ast.to_string gen_path

let arb_case =
  QCheck.make
    ~print:(fun (d, p) -> Printf.sprintf "%s on %s" (Ast.to_string p) d)
    (Gen.pair gen_doc gen_path)

(* ---------------- properties ---------------- *)

let count = 500

let xml_roundtrip =
  QCheck.Test.make ~name:"xml: serialize/parse roundtrip" ~count arb_doc
    (fun doc_s ->
      let doc = Xaos_xml.Dom.of_string doc_s in
      let out = Xaos_xml.Serialize.to_string doc in
      let doc2 = Xaos_xml.Dom.of_string out in
      let ids d =
        let acc = ref [] in
        Xaos_xml.Dom.iter_elements
          (fun e -> acc := (e.Xaos_xml.Dom.id, e.Xaos_xml.Dom.tag, e.Xaos_xml.Dom.level) :: !acc)
          d;
        !acc
      in
      ids doc = ids doc2)

let xpath_print_parse =
  QCheck.Test.make ~name:"xpath: print/parse fixpoint" ~count arb_path
    (fun path ->
      let printed = Ast.to_string path in
      match Xaos_xpath.Parser.parse_result printed with
      | Error msg -> QCheck.Test.fail_reportf "%s does not reparse: %s" printed msg
      | Ok reparsed -> Ast.equal path reparsed)

let items_equal a b = List.equal Item.equal a b

let show_items items =
  String.concat "," (List.map (fun i -> Format.asprintf "%a" Item.pp i) items)

let differential =
  QCheck.Test.make ~name:"differential: engine = baseline = semantics" ~count
    arb_case (fun (doc_s, path) ->
      let doc = Xaos_xml.Dom.of_string doc_s in
      let oracle = Semantics.eval_path path doc in
      let baseline =
        Xaos_baseline.Dom_engine.eval doc path |> List.sort_uniq Item.compare
      in
      if not (items_equal oracle baseline) then
        QCheck.Test.fail_reportf "baseline %s <> oracle %s"
          (show_items baseline) (show_items oracle)
      else begin
        let configs =
          [ Engine.default_config;
            { Engine.default_config with boolean_subtrees = false };
            { Engine.default_config with relevance_filter = false };
            { Engine.default_config with emission = Engine.Eager } ]
        in
        List.for_all
          (fun config ->
            match Query.compile_path ~config path with
            | Error msg -> QCheck.Test.fail_reportf "compile failed: %s" msg
            | Ok q ->
              let got = (Query.run_string q doc_s).Result_set.items in
              if items_equal oracle got then true
              else
                QCheck.Test.fail_reportf "engine %s <> oracle %s"
                  (show_items got) (show_items oracle))
          configs
      end)

let dom_replay_equals_sax =
  QCheck.Test.make ~name:"engine: DOM replay = SAX streaming" ~count arb_case
    (fun (doc_s, path) ->
      match Query.compile_path path with
      | Error msg -> QCheck.Test.fail_reportf "compile failed: %s" msg
      | Ok q ->
        let via_sax = (Query.run_string q doc_s).Result_set.items in
        let via_dom =
          (Query.run_doc q (Xaos_xml.Dom.of_string doc_s)).Result_set.items
        in
        items_equal via_sax via_dom)

let stats_conservation =
  QCheck.Test.make ~name:"engine: stored + discarded = total" ~count arb_case
    (fun (doc_s, path) ->
      match Query.compile_path path with
      | Error msg -> QCheck.Test.fail_reportf "compile failed: %s" msg
      | Ok q ->
        let _, stats = Query.run_string_with_stats q doc_s in
        (* one engine per satisfiable disjunct sees the whole stream *)
        let engines = List.length (Query.disjuncts q) in
        let doc = Xaos_xml.Dom.of_string doc_s in
        stats.Stats.elements_stored + stats.Stats.elements_discarded
        = stats.Stats.elements_total
        && stats.Stats.elements_total
           = engines * (doc.Xaos_xml.Dom.element_count - 1))

let matching_count_agrees =
  QCheck.Test.make ~name:"engine: matching count = |total matchings|"
    ~count:300 arb_case (fun (doc_s, path) ->
      (* restrict to or-free so the oracle's and the engine's disjunct
         structures coincide *)
      match Xaos_xpath.Dnf.expand path with
      | [ _ ] -> (
        let config = { Engine.default_config with boolean_subtrees = false } in
        match Query.compile_path ~config path with
        | Error _ -> true
        | Ok q -> (
          let r = Query.run_string q doc_s in
          let doc = Xaos_xml.Dom.of_string doc_s in
          let oracle_count =
            List.length
              (Semantics.total_matchings (Xaos_xpath.Xtree.of_path path) doc)
          in
          match r.Result_set.matching_count with
          | Some n ->
            if n = oracle_count then true
            else
              QCheck.Test.fail_reportf "engine says %d, oracle %d" n
                oracle_count
          | None -> oracle_count = 0))
      | _ -> QCheck.assume_fail ())

let filter_only_reduces_storage =
  QCheck.Test.make ~name:"engine: relevance filter never stores more"
    ~count:300 arb_case (fun (doc_s, path) ->
      let run config =
        match Query.compile_path ~config path with
        | Error _ -> None
        | Ok q -> Some (snd (Query.run_string_with_stats q doc_s))
      in
      match
        ( run Engine.default_config,
          run { Engine.default_config with relevance_filter = false } )
      with
      | Some filtered, Some unfiltered ->
        filtered.Stats.structures_created
        <= unfiltered.Stats.structures_created
      | _, _ -> true)

(* forward-only linear subscriptions: the YFilter-supported class *)
let gen_linear_path : Ast.path Gen.t =
  let* n = Gen.int_range 1 4 in
  let* steps =
    Gen.flatten_l
      (List.init n (fun _ ->
           let* axis = Gen.oneofl [ Ast.Child; Ast.Descendant ] in
           let* test = gen_test in
           Gen.pure { Ast.axis; test; predicates = []; marked = false }))
  in
  Gen.pure { Ast.absolute = true; steps }

let arb_filtering_case =
  QCheck.make
    ~print:(fun (d, ps) ->
      Printf.sprintf "%s on %s"
        (String.concat " ; " (List.map Ast.to_string ps))
        d)
    (Gen.pair gen_doc (Gen.list_size (Gen.int_range 1 6) gen_linear_path))

let yfilter_agrees =
  QCheck.Test.make ~name:"yfilter: shared automaton = per-query engines"
    ~count:300 arb_filtering_case (fun (doc_s, paths) ->
      match Xaos_baseline.Yfilter.build paths with
      | Error msg -> QCheck.Test.fail_reportf "build failed: %s" msg
      | Ok nfa ->
        let yf = Xaos_baseline.Yfilter.run_string nfa doc_s in
        let expected =
          List.concat
            (List.mapi
               (fun qi path ->
                 match Query.compile_path path with
                 | Error msg -> QCheck.Test.fail_reportf "compile: %s" msg
                 | Ok q ->
                   if (Query.run_string q doc_s).Result_set.items <> [] then
                     [ qi ]
                   else [])
               paths)
        in
        if yf = expected then true
        else
          QCheck.Test.fail_reportf "yfilter [%s] <> xaos [%s]"
            (String.concat "," (List.map string_of_int yf))
            (String.concat "," (List.map string_of_int expected)))

let dnf_size_formula =
  QCheck.Test.make ~name:"dnf: expansion is or-free and complete" ~count
    arb_path (fun path ->
      let disjuncts = Xaos_xpath.Dnf.expand path in
      disjuncts <> []
      && List.for_all
           (fun d ->
             (* or-free: expanding again is the identity *)
             match Xaos_xpath.Dnf.expand d with
             | [ only ] -> Ast.equal only d
             | _ -> false)
           disjuncts)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      xml_roundtrip;
      xpath_print_parse;
      differential;
      dom_replay_equals_sax;
      stats_conservation;
      matching_count_agrees;
      filter_only_reduces_storage;
      yfilter_agrees;
      dnf_size_formula;
    ]
