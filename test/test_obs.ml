(* Telemetry layer: disabled path is inert, enabled path counts, spans
   time with an injected clock, JSON round-trips exactly, and run
   reports survive serialise -> parse -> of_json. *)

module Tel = Xaos_obs.Telemetry
module Json = Xaos_obs.Json
module Report = Xaos_obs.Report
module Snapshot = Xaos_obs.Snapshot
module Expose = Xaos_obs.Expose
module Attrib = Xaos_obs.Attrib

(* Each test starts from a clean slate; cells persist (process-global
   registry) but their values reset. *)
let fresh () =
  Tel.reset ();
  Tel.disable ()

(* ---------------- telemetry ---------------- *)

let test_disabled_is_noop () =
  fresh ();
  let c = Tel.counter "test_noop_total" in
  Tel.incr c;
  Tel.add c 41;
  Alcotest.(check int) "counter untouched" 0 (Tel.counter_value c);
  let g = Tel.gauge "test_noop_gauge" in
  Tel.set_gauge g 7;
  Alcotest.(check int) "gauge untouched" 0 (Tel.gauge_value g)

let test_enabled_counts () =
  fresh ();
  Tel.enable ();
  let c = Tel.counter "test_count_total" in
  Tel.incr c;
  Tel.add c 41;
  Alcotest.(check int) "counter" 42 (Tel.counter_value c);
  let g = Tel.gauge "test_count_gauge" in
  Tel.set_gauge g 7;
  Tel.set_gauge g 3;
  Alcotest.(check int) "gauge holds last value" 3 (Tel.gauge_value g);
  Alcotest.(check int) "gauge high-water" 7 (Tel.gauge_max g);
  Tel.reset ();
  Alcotest.(check int) "reset clears" 0 (Tel.counter_value c)

let test_registry_dedups () =
  fresh ();
  let a = Tel.counter "test_dedup_total" in
  let b = Tel.counter "test_dedup_total" in
  Tel.enable ();
  Tel.incr a;
  Tel.incr b;
  Alcotest.(check int) "same cell" 2 (Tel.counter_value a);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Telemetry: metric kind mismatch for test_dedup_total")
    (fun () -> ignore (Tel.gauge "test_dedup_total"))

let test_span_with_injected_clock () =
  fresh ();
  Tel.enable ();
  let t = ref 0. in
  Tel.set_clock (fun () -> !t);
  let sp = Tel.span "test_span_seconds" in
  Tel.enter sp;
  t := 1.5;
  Tel.leave sp;
  Tel.enter sp;
  t := 2.0;
  Tel.leave sp;
  (* unmatched leave must be ignored, not crash or double-count *)
  Tel.leave sp;
  let s = Tel.span_summary sp in
  Tel.set_clock (fun () -> Unix.gettimeofday ());
  Alcotest.(check int) "count" 2 s.Tel.count;
  Alcotest.(check (float 1e-9)) "total" 2.0 s.Tel.total_s;
  Alcotest.(check (float 1e-9)) "min" 0.5 s.Tel.min_s;
  Alcotest.(check (float 1e-9)) "max" 1.5 s.Tel.max_s

let test_time_is_exception_safe () =
  fresh ();
  Tel.enable ();
  let sp = Tel.span "test_time_seconds" in
  (try Tel.time sp (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "span closed despite raise" 1
    (Tel.span_summary sp).Tel.count

let test_histogram_summary () =
  fresh ();
  Tel.enable ();
  let h = Tel.histogram "test_hist" in
  List.iter (Tel.observe h) [ 1.; 3.; 100. ];
  let s = Tel.histogram_summary h in
  Alcotest.(check int) "count" 3 s.Tel.h_count;
  Alcotest.(check (float 1e-9)) "sum" 104. s.Tel.h_sum;
  Alcotest.(check (float 1e-9)) "min" 1. s.Tel.h_min;
  Alcotest.(check (float 1e-9)) "max" 100. s.Tel.h_max;
  (* cumulative buckets end with +inf holding everything *)
  let _, last = List.nth s.Tel.h_buckets (List.length s.Tel.h_buckets - 1) in
  Alcotest.(check int) "inf bucket" 3 last

let test_expose_mentions_metrics () =
  fresh ();
  Tel.enable ();
  let c = Tel.counter ~help:"a test counter" "test_expose_total" in
  Tel.add c 5;
  let buf = Buffer.create 256 in
  Tel.expose buf;
  let text = Buffer.contents buf in
  let contains needle =
    let n = String.length needle and len = String.length text in
    let rec at i = i + n <= len && (String.sub text i n = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "sample line" true (contains "test_expose_total 5");
  Alcotest.(check bool) "help line" true
    (contains "# HELP test_expose_total a test counter");
  Alcotest.(check bool) "type line" true
    (contains "# TYPE test_expose_total counter")

(* Sanitization at the exposition boundary: metric names from arbitrary
   strings, label values from arbitrary subscription ids. *)
let test_expose_sanitization () =
  Alcotest.(check string) "illegal chars become underscores"
    "stage_parse_total" (Expose.sanitize_name "stage/parse total");
  Alcotest.(check string) "digit start prefixed" "_9lives"
    (Expose.sanitize_name "9lives");
  Alcotest.(check string) "empty becomes underscore" "_"
    (Expose.sanitize_name "");
  Alcotest.(check string) "legal name untouched" "xaos_ok:name_1"
    (Expose.sanitize_name "xaos_ok:name_1");
  Alcotest.(check string) "quote escaped" {|say \"hi\"|}
    (Expose.escape_label_value {|say "hi"|});
  Alcotest.(check string) "backslash escaped" {|a\\b|}
    (Expose.escape_label_value {|a\b|});
  Alcotest.(check string) "newline escaped" {|a\nb|}
    (Expose.escape_label_value "a\nb")

(* Hostile subscription ids must not corrupt the exposition: the
   attribution samples label-escape them, and the structural checker
   accepts the result. *)
let test_expose_survives_hostile_names () =
  fresh ();
  Tel.enable ();
  let attrib_was = Attrib.enabled () in
  Fun.protect
    ~finally:(fun () ->
      if not attrib_was then Attrib.disable ();
      Attrib.reset ();
      fresh ())
    (fun () ->
      Attrib.reset ();
      Attrib.enable ();
      List.iter
        (fun name ->
          Attrib.charge (Attrib.account name) ~events:3 ~match_s:0.01
            ~structures:1 ~live_peak:1 ~retained_peak_bytes:8 ~emissions:1
            ~fault:false)
        [ {|quo"te|}; {|back\slash|}; "new\nline"; "with space"; "//a[@b]" ];
      let text = Expose.render () in
      (match Expose.check text with
      | Ok () -> ()
      | Error e -> Alcotest.failf "hostile names broke the exposition: %s" e);
      (* the accounts actually made it out as labeled samples *)
      let contains needle =
        let n = String.length needle and len = String.length text in
        let rec at i =
          i + n <= len && (String.sub text i n = needle || at (i + 1))
        in
        at 0
      in
      Alcotest.(check bool) "labeled attribution sample" true
        (contains {|sub="with space"|});
      Alcotest.(check bool) "quote sample escaped" true
        (contains {|sub="quo\"te"|});
      (* a raw newline inside a label would split the sample line *)
      Alcotest.(check bool) "newline sample escaped" true
        (contains {|sub="new\nline"|}))

(* ---------------- json ---------------- *)

let test_json_round_trip () =
  let v =
    Json.Obj
      [
        ("i", Json.Int 42);
        ("f", Json.Float 0.1);
        ("tiny", Json.Float 5.9604644775390625e-06);
        ("s", Json.String "he said \"hi\"\n\ttab");
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Float 2.5; Json.String "x" ]);
        ("empty", Json.Obj []);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Error e -> Alcotest.fail e
  | Ok v' ->
    (* structural equality must hold exactly, floats included *)
    Alcotest.(check bool) "round trip" true (v = v')

let test_json_parse_errors () =
  let bad = [ "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ] in
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    bad

let test_json_accessors () =
  match Json.parse {|{"a": {"b": [10, 2.5]}, "s": "x"}|} with
  | Error e -> Alcotest.fail e
  | Ok v ->
    let open Json in
    (match member "a" v with
    | Some a -> (
      match member "b" a with
      | Some (List [ i; f ]) ->
        Alcotest.(check (option int)) "int" (Some 10) (to_int i);
        Alcotest.(check (option (float 0.))) "float" (Some 2.5) (to_float f)
      | _ -> Alcotest.fail "b not a 2-list")
    | None -> Alcotest.fail "missing a");
    Alcotest.(check bool) "absent member" true (member "zz" v = None)

(* ---------------- snapshot ---------------- *)

let test_snapshot_series () =
  fresh ();
  let t = ref 0. in
  Tel.set_clock (fun () -> !t);
  let s = Snapshot.create ~interval_bytes:100 () in
  Alcotest.(check bool) "first sample due immediately" true
    (Snapshot.due s ~bytes:0);
  Snapshot.sample s ~bytes:0 ~events:0 ~depth:0 ~live:0 ~looking_for:1;
  Alcotest.(check bool) "not due before interval" false
    (Snapshot.due s ~bytes:99);
  t := 1.0;
  Snapshot.sample s ~bytes:200 ~events:10 ~depth:3 ~live:5 ~looking_for:2;
  (* a regressing byte offset must be dropped, keeping the series
     monotone *)
  Snapshot.sample s ~bytes:150 ~events:11 ~depth:3 ~live:5 ~looking_for:2;
  Tel.set_clock (fun () -> Unix.gettimeofday ());
  let pts = Snapshot.points s in
  Alcotest.(check int) "two points" 2 (List.length pts);
  let bytes = List.map (fun p -> p.Snapshot.sn_bytes) pts in
  Alcotest.(check (list int)) "monotone bytes" [ 0; 200 ] bytes;
  let last = List.nth pts 1 in
  Alcotest.(check (float 1e-9)) "elapsed" 1.0 last.Snapshot.sn_elapsed_s;
  Alcotest.(check (float 1e-6)) "rate" 200. last.Snapshot.sn_bytes_per_sec

(* ---------------- eventlog ---------------- *)

module Eventlog = Xaos_obs.Eventlog

let fresh_log () =
  fresh ();
  Eventlog.disable ();
  Eventlog.set_sink None;
  Eventlog.set_level Eventlog.Info;
  Eventlog.set_capacity 1024;
  Eventlog.clear ()

let test_eventlog_ring_drop () =
  fresh_log ();
  Eventlog.enable ();
  Eventlog.set_capacity 4;
  let base = Eventlog.recorded () in
  for i = 1 to 10 do
    Eventlog.record ~kind:"shed" ~reason:Eventlog.Queue_full
      (Printf.sprintf "doc-%d" i)
  done;
  let events = Eventlog.events () in
  Alcotest.(check int) "ring holds capacity" 4 (List.length events);
  Alcotest.(check (list string)) "newest win, oldest first"
    [ "doc-7"; "doc-8"; "doc-9"; "doc-10" ]
    (List.map (fun e -> e.Eventlog.subject) events);
  Alcotest.(check int) "overwrites counted" 6 (Eventlog.dropped ());
  Alcotest.(check int) "all accepted" 10 (Eventlog.recorded () - base);
  (* sequence numbers survive the drops *)
  let seqs = List.map (fun e -> e.Eventlog.seq) events in
  Alcotest.(check bool) "seq strictly increasing" true
    (List.for_all2 ( < ) seqs (List.tl seqs @ [ max_int ]));
  Eventlog.clear ();
  Alcotest.(check int) "clear empties ring" 0
    (List.length (Eventlog.events ()));
  Alcotest.(check int) "clear zeroes drop counter" 0 (Eventlog.dropped ());
  Eventlog.disable ()

let test_eventlog_level_filter () =
  fresh_log ();
  Eventlog.enable ();
  Eventlog.set_level Eventlog.Warn;
  let base = Eventlog.recorded () in
  Eventlog.record ~level:Eventlog.Debug ~kind:"noise" "below";
  Eventlog.record ~kind:"noise" "info-is-below-warn";
  Eventlog.record ~level:Eventlog.Warn ~kind:"quarantine"
    ~reason:Eventlog.Budget_exceeded "poison";
  Eventlog.record ~level:Eventlog.Error ~kind:"crash"
    ~reason:Eventlog.Thread_crash "evaluator";
  let kinds = List.map (fun e -> e.Eventlog.kind) (Eventlog.events ()) in
  Alcotest.(check (list string)) "only >= warn recorded"
    [ "quarantine"; "crash" ] kinds;
  Alcotest.(check int) "filtered events not counted" 2
    (Eventlog.recorded () - base);
  (* while disabled nothing lands, whatever the level *)
  Eventlog.disable ();
  Eventlog.record ~level:Eventlog.Error ~kind:"crash" "ignored";
  Alcotest.(check int) "disabled is a no-op" 2 (Eventlog.recorded () - base)

let test_eventlog_sink_and_json () =
  fresh_log ();
  Eventlog.enable ();
  let lines = ref [] in
  Eventlog.set_sink (Some (fun line -> lines := line :: !lines));
  Eventlog.record ~kind:"readmit" ~reason:Eventlog.Backoff_elapsed
    ~detail:[ ("tick", Json.Int 17) ]
    "poison";
  Eventlog.record ~kind:"doc-end"
    ~reason:(Eventlog.Sax_limit "max_depth")
    "doc-3";
  Eventlog.set_sink None;
  match List.rev_map Json.parse !lines with
  | [ Ok first; Ok second ] ->
    let str k j = Option.bind (Json.member k j) Json.to_str in
    Alcotest.(check (option string)) "kind" (Some "readmit")
      (str "kind" first);
    Alcotest.(check (option string)) "typed reason code"
      (Some "backoff-elapsed") (str "reason" first);
    Alcotest.(check (option string)) "parameterised reason code"
      (Some "sax-limit:max_depth") (str "reason" second);
    Alcotest.(check (option int)) "detail preserved" (Some 17)
      (Option.bind (Json.member "detail" first) (fun d ->
           Option.bind (Json.member "tick" d) Json.to_int));
    Eventlog.disable ()
  | _ -> Alcotest.fail "expected exactly two well-formed sink lines"

(* ---------------- report ---------------- *)

(* A hand-built v4 attribution section: two accounts, top sorted
   descending by match time, totals covering a third account that did
   not make the cut. *)
let sample_attribution () =
  let entry key docs events match_s emissions faults =
    { Report.ae_key = key; ae_docs = docs; ae_events = events;
      ae_match_s = match_s; ae_structures = 2 * docs; ae_live_peak = 5;
      ae_retained_peak_bytes = 128; ae_emissions = emissions;
      ae_faults = faults }
  in
  { Report.at_subscriptions = 3; at_docs = 9; at_events = 48;
    at_match_s = 0.8; at_structures = 18; at_emissions = 6; at_faults = 1;
    at_top = [ entry "hot" 3 25 0.5 3 1; entry "warm" 3 15 0.25 2 0 ] }

let sample_report () =
  fresh ();
  Tel.enable ();
  let t = ref 0. in
  Tel.set_clock (fun () -> !t);
  let sp = Tel.span "test_report_seconds" in
  Tel.enter sp;
  t := 0.25;
  Tel.leave sp;
  let snap = Snapshot.create ~interval_bytes:10 () in
  Snapshot.sample snap ~bytes:0 ~events:0 ~depth:0 ~live:0 ~looking_for:1;
  t := 0.5;
  Snapshot.sample snap ~retained_bytes:25 ~bytes:50 ~events:9 ~depth:2 ~live:3
    ~looking_for:2;
  Tel.set_clock (fun () -> Unix.gettimeofday ());
  (* a real histogram summary, +inf bucket included, for the schema-v3
     service_latency section *)
  let hist = Xaos_obs.Histogram.make ~unit_:"s" ~scale:1e-6 "stage/test" in
  List.iter
    (Xaos_obs.Histogram.record hist)
    [ 120; 450; 900; 15_000 ];
  Report.make ~kind:"test"
    ~config:[ ("query", Json.String "//a"); ("eager", Json.Bool false) ]
    ~stats:[ ("elements_total", 12.); ("wall_s", 0.5) ]
    ~spans:[ Tel.span_summary sp ]
    ~snapshots:(Snapshot.points snap)
    ~tables:
      [ { Report.title = "t"; columns = [ "a"; "b" ]; rows = [ [ "1"; "2" ] ] } ]
    ~gc:(Report.gc_now ())
    ~relevance:
      (Report.relevance_of ~bytes_seen:1000 ~retained_bytes:25
         ~retained_peak_bytes:80 ~elements_total:12 ~elements_stored:3)
    ~service_latency:[ Xaos_obs.Histogram.summary hist ]
    ~attribution:(sample_attribution ())
    ()

let test_report_round_trip () =
  let r = sample_report () in
  let text = Report.to_string r in
  match Json.parse text with
  | Error e -> Alcotest.fail e
  | Ok json -> (
    match Report.of_json json with
    | Error e -> Alcotest.fail e
    | Ok r' ->
      Alcotest.(check int) "version" Report.schema_version r'.Report.version;
      Alcotest.(check string) "kind" "test" r'.Report.kind;
      Alcotest.(check bool) "config" true (r.Report.config = r'.Report.config);
      Alcotest.(check bool) "stats" true (r.Report.stats = r'.Report.stats);
      Alcotest.(check bool) "spans" true (r.Report.spans = r'.Report.spans);
      Alcotest.(check bool) "snapshots" true
        (r.Report.snapshots = r'.Report.snapshots);
      Alcotest.(check bool) "tables" true (r.Report.tables = r'.Report.tables);
      Alcotest.(check bool) "gc" true (r.Report.gc = r'.Report.gc);
      Alcotest.(check bool) "relevance" true
        (r.Report.relevance = r'.Report.relevance);
      (* v4 section survives exactly *)
      Alcotest.(check bool) "attribution" true
        (r.Report.attribution = r'.Report.attribution);
      (* v3 section survives exactly, +inf bucket bound included *)
      Alcotest.(check bool) "service_latency" true
        (r.Report.service_latency = r'.Report.service_latency);
      match r'.Report.service_latency with
      | [ s ] ->
        let bound, total =
          List.nth s.Xaos_obs.Histogram.s_buckets
            (List.length s.Xaos_obs.Histogram.s_buckets - 1)
        in
        Alcotest.(check bool) "last bound is +inf" true (bound = infinity);
        Alcotest.(check int) "inf bucket holds all" 4 total
      | _ -> Alcotest.fail "expected one latency summary")

(* A v1 report (no relevance section, no retained_bytes on snapshot
   points) must still decode: the later optional fields default. *)
let test_report_reads_v1 () =
  let r = sample_report () in
  let strip_v2 = function
    | Json.Obj fields ->
      Json.Obj
        (List.filter_map
           (function
             | "schema_version", _ -> Some ("schema_version", Json.Int 1)
             | "relevance", _ -> None
             | "snapshots", Json.List pts ->
               Some
                 ( "snapshots",
                   Json.List
                     (List.map
                        (function
                          | Json.Obj pf ->
                            Json.Obj
                              (List.filter
                                 (fun (k, _) -> k <> "retained_bytes")
                                 pf)
                          | p -> p)
                        pts) )
             | kv -> Some kv)
           fields)
    | j -> j
  in
  let v1 = strip_v2 (Report.to_json r) in
  (match Report.validate v1 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "v1 report rejected: %s" e);
  match Report.of_json v1 with
  | Error e -> Alcotest.fail e
  | Ok r' ->
    Alcotest.(check int) "version preserved" 1 r'.Report.version;
    Alcotest.(check bool) "no relevance section" true
      (r'.Report.relevance = None);
    List.iter
      (fun p ->
        Alcotest.(check int) "retained defaults to 0" 0
          p.Snapshot.sn_retained_bytes)
      r'.Report.snapshots

(* A v2 report (everything but service_latency) must still decode with
   the v3 section empty. *)
let test_report_reads_v2 () =
  let r = sample_report () in
  let strip_v3 = function
    | Json.Obj fields ->
      Json.Obj
        (List.filter_map
           (function
             | "schema_version", _ -> Some ("schema_version", Json.Int 2)
             | "service_latency", _ -> None
             | kv -> Some kv)
           fields)
    | j -> j
  in
  let v2 = strip_v3 (Report.to_json r) in
  (match Report.validate v2 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "v2 report rejected: %s" e);
  match Report.of_json v2 with
  | Error e -> Alcotest.fail e
  | Ok r' ->
    Alcotest.(check int) "version preserved" 2 r'.Report.version;
    Alcotest.(check bool) "no latency section" true
      (r'.Report.service_latency = []);
    Alcotest.(check bool) "relevance still present" true
      (r'.Report.relevance <> None)

(* A v3 report (everything but attribution) must still decode with the
   v4 section absent — this is what `xaos report diff` relies on when
   comparing a fresh v4 report against an older committed baseline. *)
let test_report_reads_v3 () =
  let r = sample_report () in
  let strip_v4 = function
    | Json.Obj fields ->
      Json.Obj
        (List.filter_map
           (function
             | "schema_version", _ -> Some ("schema_version", Json.Int 3)
             | "attribution", _ -> None
             | kv -> Some kv)
           fields)
    | j -> j
  in
  let v3 = strip_v4 (Report.to_json r) in
  (match Report.validate v3 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "v3 report rejected: %s" e);
  match Report.of_json v3 with
  | Error e -> Alcotest.fail e
  | Ok r' ->
    Alcotest.(check int) "version preserved" 3 r'.Report.version;
    Alcotest.(check bool) "no attribution section" true
      (r'.Report.attribution = None);
    Alcotest.(check bool) "latency still present" true
      (r'.Report.service_latency <> [])

(* The attribution section's structural invariants: non-negative
   quantities, top bounded by the registry size, top sorted descending
   by match time. *)
let test_attribution_validation () =
  let r = sample_report () in
  let map_attribution f = function
    | Json.Obj fields ->
      Json.Obj
        (List.map
           (function
             | "attribution", Json.Obj af -> ("attribution", Json.Obj (f af))
             | kv -> kv)
           fields)
    | j -> j
  in
  let set key v fields =
    List.map (function k, _ when k = key -> (k, v) | kv -> kv) fields
  in
  let reject what j =
    match Report.validate j with
    | Ok () -> Alcotest.failf "%s accepted" what
    | Error _ -> ()
  in
  let base = Report.to_json r in
  reject "negative total"
    (map_attribution (set "faults" (Json.Int (-1))) base);
  reject "top larger than the registry"
    (map_attribution (set "subscriptions" (Json.Int 1)) base);
  (* reverse the top list: ascending match_s *)
  reject "unsorted top"
    (map_attribution
       (fun af ->
         List.map
           (function
             | "top", Json.List l -> ("top", Json.List (List.rev l))
             | kv -> kv)
           af)
       base);
  (* a negative per-entry quantity *)
  reject "negative entry"
    (map_attribution
       (fun af ->
         List.map
           (function
             | "top", Json.List (Json.Obj e :: rest) ->
               ("top", Json.List (Json.Obj (set "events" (Json.Int (-5)) e) :: rest))
             | kv -> kv)
           af)
       base)

let test_relevance_validation () =
  let r = sample_report () in
  (* a relevance section claiming more retained than its peak is
     inconsistent *)
  let corrupt = function
    | Json.Obj fields ->
      Json.Obj
        (List.map
           (function
             | "relevance", Json.Obj rf ->
               ( "relevance",
                 Json.Obj
                   (List.map
                      (function
                        | "retained_bytes", _ ->
                          ("retained_bytes", Json.Int 999_999)
                        | kv -> kv)
                      rf) )
             | kv -> kv)
           fields)
    | j -> j
  in
  match Report.validate (corrupt (Report.to_json r)) with
  | Ok () -> Alcotest.fail "retained > peak accepted"
  | Error _ -> ()

let test_report_validate () =
  let r = sample_report () in
  (match Report.validate (Report.to_json r) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid report rejected: %s" e);
  (* an unsupported schema version must be rejected, not guessed at *)
  let bump = function
    | Json.Obj fields ->
      Json.Obj
        (List.map
           (function
             | "schema_version", _ -> ("schema_version", Json.Int 999)
             | kv -> kv)
           fields)
    | j -> j
  in
  (match Report.validate (bump (Report.to_json r)) with
  | Ok () -> Alcotest.fail "future schema version accepted"
  | Error _ -> ());
  (* snapshots out of byte order are a malformed series *)
  let scramble = function
    | Json.Obj fields ->
      Json.Obj
        (List.map
           (function
             | "snapshots", Json.List [ a; b ] ->
               ("snapshots", Json.List [ b; a ])
             | kv -> kv)
           fields)
    | j -> j
  in
  match Report.validate (scramble (Report.to_json r)) with
  | Ok () -> Alcotest.fail "non-monotone snapshots accepted"
  | Error _ -> ()

let test_report_write_read () =
  let r = sample_report () in
  let path = Filename.temp_file "xaos_report" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Report.write path r;
      match Report.read path with
      | Error e -> Alcotest.fail e
      | Ok r' ->
        Alcotest.(check bool) "file round trip" true
          (r.Report.stats = r'.Report.stats
          && r.Report.snapshots = r'.Report.snapshots))

let suite =
  [
    Alcotest.test_case "disabled telemetry is a no-op" `Quick
      test_disabled_is_noop;
    Alcotest.test_case "enabled telemetry counts" `Quick test_enabled_counts;
    Alcotest.test_case "registry dedups by name" `Quick test_registry_dedups;
    Alcotest.test_case "span timing with injected clock" `Quick
      test_span_with_injected_clock;
    Alcotest.test_case "time closes span on raise" `Quick
      test_time_is_exception_safe;
    Alcotest.test_case "histogram summary" `Quick test_histogram_summary;
    Alcotest.test_case "prometheus exposition" `Quick
      test_expose_mentions_metrics;
    Alcotest.test_case "json round trip" `Quick test_json_round_trip;
    Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "json accessors" `Quick test_json_accessors;
    Alcotest.test_case "snapshot series monotone" `Quick test_snapshot_series;
    Alcotest.test_case "report round trip" `Quick test_report_round_trip;
    Alcotest.test_case "report validation" `Quick test_report_validate;
    Alcotest.test_case "report reads v1" `Quick test_report_reads_v1;
    Alcotest.test_case "report reads v2" `Quick test_report_reads_v2;
    Alcotest.test_case "report reads v3" `Quick test_report_reads_v3;
    Alcotest.test_case "attribution validation" `Quick
      test_attribution_validation;
    Alcotest.test_case "exposition sanitization" `Quick
      test_expose_sanitization;
    Alcotest.test_case "exposition survives hostile names" `Quick
      test_expose_survives_hostile_names;
    Alcotest.test_case "eventlog ring drop" `Quick test_eventlog_ring_drop;
    Alcotest.test_case "eventlog level filter" `Quick
      test_eventlog_level_filter;
    Alcotest.test_case "eventlog sink and typed reasons" `Quick
      test_eventlog_sink_and_json;
    Alcotest.test_case "relevance validation" `Quick test_relevance_validation;
    Alcotest.test_case "report write/read" `Quick test_report_write_read;
  ]
