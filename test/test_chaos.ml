(* The deterministic fault injector (PR 6).

   The properties the soak relies on: plans are pure functions of
   (seed, doc index) — a failure replays from its seed alone; byte-level
   faults never make [iter_events] raise anything but the documented
   exceptions (lenient recovery absorbs the rest); a refill-boundary
   split never changes the event stream. *)

module Sax = Xaos_xml.Sax
module Event = Xaos_xml.Event
module Chaos = Xaos_xml.Chaos

let doc =
  "<feed><channel><t00><item><name>alpha</name></item>\
   <item><name>beta</name></item></t00></channel></feed>"

let events_of_plan ?limits p d =
  let out = ref [] in
  Chaos.iter_events ?limits p d (fun ev -> out := ev :: !out);
  List.rev !out

let test_determinism () =
  for i = 0 to 199 do
    let p1 = Chaos.plan ~seed:7 ~rate:0.5 i in
    let p2 = Chaos.plan ~seed:7 ~rate:0.5 i in
    Alcotest.(check (option string))
      (Printf.sprintf "kind of doc %d" i)
      (Option.map Chaos.kind_name (Chaos.kind p1))
      (Option.map Chaos.kind_name (Chaos.kind p2));
    Alcotest.(check string)
      (Printf.sprintf "bytes of doc %d" i)
      (Chaos.corrupt p1 doc) (Chaos.corrupt p2 doc);
    Alcotest.(check string)
      (Printf.sprintf "describe of doc %d" i)
      (Chaos.describe p1) (Chaos.describe p2)
  done;
  (* a different seed must produce a different fault pattern *)
  let pattern seed =
    List.init 200 (fun i ->
        Option.map Chaos.kind_name (Chaos.kind (Chaos.plan ~seed ~rate:0.5 i)))
  in
  Alcotest.(check bool) "seeds differ" true (pattern 7 <> pattern 8)

let test_rate_boundaries () =
  for i = 0 to 99 do
    Alcotest.(check bool)
      "rate 0 is clean" true
      (Chaos.kind (Chaos.plan ~seed:3 ~rate:0.0 i) = None);
    Alcotest.(check bool)
      "rate 1 always faults" true
      (Chaos.kind (Chaos.plan ~seed:3 ~rate:1.0 i) <> None);
    Alcotest.(check bool)
      "clean is clean" true
      (Chaos.kind (Chaos.clean i) = None)
  done

let test_all_kinds_drawn () =
  let seen = Hashtbl.create 8 in
  for i = 0 to 499 do
    match Chaos.kind (Chaos.plan ~seed:11 ~rate:1.0 i) with
    | Some k -> Hashtbl.replace seen (Chaos.kind_name k) ()
    | None -> ()
  done;
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Chaos.kind_name k ^ " drawn")
        true
        (Hashtbl.mem seen (Chaos.kind_name k)))
    Chaos.all_kinds

let plan_of_kind kind seed =
  (* rate 1 with a single-kind pool pins the fault class *)
  Chaos.plan ~kinds:[ kind ] ~seed ~rate:1.0 0

let test_corrupt_shapes () =
  for seed = 0 to 49 do
    let truncated = Chaos.corrupt (plan_of_kind Chaos.Truncate seed) doc in
    Alcotest.(check bool)
      "truncate shortens" true
      (String.length truncated < String.length doc
      && truncated = String.sub doc 0 (String.length truncated));
    let corrupted = Chaos.corrupt (plan_of_kind Chaos.Corrupt_tag seed) doc in
    Alcotest.(check int)
      "corrupt-tag preserves length" (String.length doc)
      (String.length corrupted);
    let burst = Chaos.corrupt (plan_of_kind Chaos.Text_burst seed) doc in
    Alcotest.(check bool)
      "text burst adds >= 4096 bytes" true
      (String.length burst >= String.length doc + 4096);
    let deep = Chaos.corrupt (plan_of_kind Chaos.Depth_burst seed) doc in
    (* balanced splice (possibly after the root — lenient absorbs that):
       depth grew past 96 *)
    let depth = ref 0 and peak = ref 0 in
    List.iter
      (function
        | Event.Start_element _ ->
          incr depth;
          if !depth > !peak then peak := !depth
        | Event.End_element _ -> decr depth
        | _ -> ())
      (Sax.events_of_string ~mode:Sax.Lenient deep);
    Alcotest.(check bool) "depth burst nests >= 96" true (!peak >= 96);
    (* parse/consume-time kinds leave the bytes alone *)
    Alcotest.(check string) "split-refill is identity" doc
      (Chaos.corrupt (plan_of_kind Chaos.Split_refill seed) doc);
    Alcotest.(check string) "inject-exn is identity" doc
      (Chaos.corrupt (plan_of_kind Chaos.Inject_exn seed) doc)
  done

let test_split_refill_invariance () =
  (* refill-boundary splits must not change the event stream *)
  let baseline = Sax.events_of_string ~mode:Sax.Lenient doc in
  for seed = 0 to 19 do
    Alcotest.(check int)
      "same event count" (List.length baseline)
      (List.length (events_of_plan (plan_of_kind Chaos.Split_refill seed) doc));
    Alcotest.(check bool)
      "same events" true
      (baseline = events_of_plan (plan_of_kind Chaos.Split_refill seed) doc)
  done

let test_inject_exn () =
  (* the planned crash index can be up to 65: use a document with more
     events than that so the injection always lands *)
  let big =
    "<r>" ^ String.concat "" (List.init 40 (fun i ->
        Printf.sprintf "<a>t%d</a>" i)) ^ "</r>"
  in
  for seed = 0 to 19 do
    let p = plan_of_kind Chaos.Inject_exn seed in
    let pushed = ref 0 in
    match Chaos.iter_events p big (fun _ -> incr pushed) with
    | () -> Alcotest.fail "Injected expected"
    | exception Chaos.Injected { doc = d; event_index } ->
      Alcotest.(check int) "doc index" 0 d;
      Alcotest.(check bool) "index positive" true (event_index >= 1);
      Alcotest.(check int) "events before the crash" (event_index - 1) !pushed
  done

let test_byte_faults_never_escape_lenient_recovery () =
  (* the soak's core premise: whatever the byte-level faults produce,
     lenient parsing under limits either finishes or trips a limit —
     nothing else escapes *)
  let limits = { Sax.default_limits with max_text_bytes = 8192 } in
  let faults = ref 0 in
  let limit_ends = ref 0 in
  for i = 0 to 299 do
    let p = Chaos.plan ~seed:23 ~rate:1.0 i in
    match
      Chaos.iter_events ~limits ~on_fault:(fun _ -> incr faults) p doc ignore
    with
    | () -> ()
    | exception Sax.Limit_exceeded _ -> incr limit_ends
    | exception Chaos.Injected _ -> ()
  done;
  Alcotest.(check bool) "some recoveries happened" true (!faults > 0);
  Alcotest.(check bool) "some limit trips happened" true (!limit_ends > 0)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "rate boundaries" `Quick test_rate_boundaries;
    Alcotest.test_case "all kinds drawn" `Quick test_all_kinds_drawn;
    Alcotest.test_case "corrupt shapes" `Quick test_corrupt_shapes;
    Alcotest.test_case "split-refill invariance" `Quick
      test_split_refill_invariance;
    Alcotest.test_case "inject-exn" `Quick test_inject_exn;
    Alcotest.test_case "byte faults never escape lenient recovery" `Quick
      test_byte_faults_never_escape_lenient_recovery;
  ]
