(* Attribute-test extension: [@key], [@key='value'], trailing /@key steps —
   parsed, represented on x-nodes, and agreed on by all three engines. *)

open Xaos_core
module Ast = Xaos_xpath.Ast
module Parser = Xaos_xpath.Parser
module Xtree = Xaos_xpath.Xtree

let item = Alcotest.testable Item.pp Item.equal

let doc =
  "<shop><item id=\"i1\" cat=\"tools\"><name>axe</name></item>\
   <item id=\"i2\"><name>saw</name></item>\
   <item id=\"i3\" cat=\"toys\"><name>kite</name></item></shop>"
(* ids: shop=1 item=2 name=3 item=4 name=5 item=6 name=7 *)

let it id tag level = Item.make ~id ~tag ~level

let run ?config q = (Query.run_string (Query.compile_exn ?config q) doc).Result_set.items

let check msg expected q = Alcotest.check (Alcotest.list item) msg expected (run q)

let test_parse_and_print () =
  let roundtrip input printed =
    match Parser.parse_result input with
    | Error e -> Alcotest.failf "%s: %s" input e
    | Ok p ->
      Alcotest.(check string) input printed (Ast.to_string p);
      (match Parser.parse_result printed with
      | Ok p2 -> Alcotest.(check bool) "fixpoint" true (Ast.equal p p2)
      | Error e -> Alcotest.failf "%s does not reparse: %s" printed e)
  in
  roundtrip "//item[@cat]" "/descendant::item[@cat]";
  roundtrip "//item[@cat='tools']" "/descendant::item[@cat='tools']";
  roundtrip "//item[@cat=\"to'ols\"]" "/descendant::item[@cat=\"to'ols\"]";
  roundtrip "//item[@a and @b='2' or c]"
    "/descendant::item[@a and @b='2' or child::c]";
  roundtrip "//name[../@cat]" "/descendant::name[parent::*[@cat]]"

let test_parse_errors () =
  List.iter
    (fun input ->
      match Parser.parse_result input with
      | Error _ -> ()
      | Ok p -> Alcotest.failf "%s parsed as %s" input (Ast.to_string p))
    [ "//item[@]"; "//item[@cat=]"; "//item[@cat=tools]"; "//item[@cat='x]";
      "//@cat"; "/a/@cat/b" ]

let test_existence () =
  check "existence" [ it 2 "item" 2; it 6 "item" 2 ] "//item[@cat]"

let test_equality () =
  check "equality" [ it 2 "item" 2 ] "//item[@cat='tools']";
  check "no match" [] "//item[@cat='nope']"

let test_missing_attribute () =
  check "missing" [] "//item[@missing]";
  check "equality on missing" [] "//item[@missing='x']"

let test_boolean_combinations () =
  check "and" [ it 6 "item" 2 ] "//item[@cat and @id='i3']";
  check "or" [ it 2 "item" 2; it 4 "item" 2 ] "//item[@cat='tools' or @id='i2']";
  check "attr and path" [ it 2 "item" 2; it 6 "item" 2 ] "//item[@cat and name]"

let test_trailing_attr_step () =
  check "parent attr" [ it 3 "name" 3; it 7 "name" 3 ] "//name[../@cat]";
  check "parent attr value" [ it 7 "name" 3 ] "//name[../@cat='toys']"

let test_attr_with_backward_axes () =
  check "ancestor with attr" [ it 3 "name" 3 ]
    "//name/ancestor::item[@cat='tools']/name"

let test_xtree_carries_attrs () =
  let t = Xtree.of_path (Parser.parse "//item[@cat='tools'][@id]") in
  let node = t.Xtree.nodes.(1) in
  Alcotest.(check int) "two attr tests" 2 (List.length node.Xtree.attrs)

let test_all_engines_agree () =
  let d = Xaos_xml.Dom.of_string doc in
  List.iter
    (fun q ->
      let path = Parser.parse q in
      let oracle = Semantics.eval_path path d in
      let baseline =
        Xaos_baseline.Dom_engine.eval d path |> List.sort_uniq Item.compare
      in
      let streaming = run q in
      Alcotest.check (Alcotest.list item) (q ^ " baseline") oracle baseline;
      Alcotest.check (Alcotest.list item) (q ^ " engine") oracle streaming)
    [ "//item[@cat]"; "//item[@cat='toys']"; "//name[../@id='i2']";
      "//item[@cat or @id]"; "/shop[@x]"; "//*[@id='i1']/name" ]

let test_duplicate_and_missing_keys () =
  (* Event-level: the engine's single-pass attribute scan stops at the
     first occurrence of the key (assoc-lookup semantics, matching the
     Section 3.3 oracle) and must scan to the end before declaring a key
     missing. Duplicate keys cannot come from the parsers (strict rejects,
     lenient drops them), so feed events directly. *)
  let run_events q attrs =
    let q = Query.compile_exn q in
    let run = Query.start q in
    let attributes =
      List.map
        (fun (attr_name, attr_value) -> { Xaos_xml.Event.attr_name; attr_value })
        attrs
    in
    Query.feed run (Xaos_xml.Event.start_element ~attributes ~name:"a" ~level:1 ());
    Query.feed run (Xaos_xml.Event.end_element ~name:"a" ~level:1 ());
    (Query.finish run).Result_set.items
  in
  let dup = [ ("k", "1"); ("k", "2") ] in
  Alcotest.check (Alcotest.list item) "first occurrence wins"
    [ it 1 "a" 1 ]
    (run_events "/a[@k='1']" dup);
  Alcotest.check (Alcotest.list item) "later duplicate is shadowed" []
    (run_events "/a[@k='2']" dup);
  Alcotest.check (Alcotest.list item) "existence via duplicates"
    [ it 1 "a" 1 ]
    (run_events "/a[@k]" dup);
  Alcotest.check (Alcotest.list item) "missing key scans to the end" []
    (run_events "/a[@z]" dup);
  Alcotest.check (Alcotest.list item) "missing key with value" []
    (run_events "/a[@z='1']" dup);
  Alcotest.check (Alcotest.list item) "match after other keys"
    [ it 1 "a" 1 ]
    (run_events "/a[@k='1']" [ ("x", "0"); ("y", "0"); ("k", "1") ])

let test_eager_with_attrs () =
  (* attribute tests are pure filters: they do not break eager mode *)
  let config = { Engine.default_config with emission = Engine.Eager } in
  Alcotest.check (Alcotest.list item) "eager attr filter"
    [ it 2 "item" 2 ]
    (run ~config "//item[@cat='tools']")

let suite =
  [
    ("parse and print", `Quick, test_parse_and_print);
    ("parse errors", `Quick, test_parse_errors);
    ("existence", `Quick, test_existence);
    ("equality", `Quick, test_equality);
    ("missing attribute", `Quick, test_missing_attribute);
    ("boolean combinations", `Quick, test_boolean_combinations);
    ("trailing attribute step", `Quick, test_trailing_attr_step);
    ("with backward axes", `Quick, test_attr_with_backward_axes);
    ("x-tree carries attrs", `Quick, test_xtree_carries_attrs);
    ("engines agree", `Quick, test_all_engines_agree);
    ("duplicate and missing keys", `Quick, test_duplicate_and_missing_keys);
    ("eager with attrs", `Quick, test_eager_with_attrs);
  ]
