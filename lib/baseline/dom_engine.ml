module Ast = Xaos_xpath.Ast
module Dom = Xaos_xml.Dom
module Symbol = Xaos_xml.Symbol

type counters = {
  mutable nodes_visited : int;
  mutable predicate_evaluations : int;
}

(* The traversals mirror Xalan's per-context-node axis walks; the counter
   is bumped per element reached, counting repeats across context nodes. *)
let axis_nodes counters doc axis (context : Dom.element) =
  ignore doc;
  let visit e =
    counters.nodes_visited <- counters.nodes_visited + 1;
    e
  in
  match axis with
  | Ast.Child -> List.map visit (Dom.element_children context)
  | Ast.Descendant -> List.of_seq (Seq.map visit (Dom.descendants context))
  | Ast.Parent ->
    (match context.parent with Some p -> [ visit p ] | None -> [])
  | Ast.Ancestor -> List.map visit (Dom.ancestors context)
  | Ast.Self -> [ visit context ]
  | Ast.Descendant_or_self ->
    List.of_seq (Seq.map visit (Dom.self_and_descendants context))
  | Ast.Ancestor_or_self -> visit context :: List.map visit (Dom.ancestors context)

(* Name tests compare interned symbols: [test_sym] is resolved once per
   step (see [eval_steps]), elements carry the symbol captured at build
   time, and the wildcard decision is the precomputed per-symbol bit. The
   [e.id <> 0] guard keeps the virtual root out of wildcard results, as
   before. *)
let test_sym_of = function
  | Ast.Name n -> Symbol.intern n
  | Ast.Wildcard -> Symbol.none

let test_matches test_sym (e : Dom.element) =
  if Symbol.equal test_sym Symbol.none then
    e.id <> 0 && Symbol.matches_wildcard e.sym
  else Symbol.equal test_sym e.sym

(* Step-at-a-time evaluation. In the faithful (Xalan-like) mode, the
   per-context result lists are concatenated WITHOUT merging duplicates
   between steps: each step is evaluated again from every context node it
   receives, which is exactly the re-traversal behaviour the paper
   measures (and the source of the worst-case O(D^n) bound of Gottlob et
   al. cited in its introduction). With [dedup = true] the engine becomes
   the obvious improved variant that sorts and merges the node set after
   every step. Both return proper node sets: the final result is always
   deduplicated. *)
let rec eval_steps counters ~dedup doc contexts steps =
  match steps with
  | [] -> contexts
  | step :: rest ->
    let test_sym = test_sym_of step.Ast.test in
    let selected =
      List.concat_map
        (fun context ->
          axis_nodes counters doc step.Ast.axis context
          |> List.filter (fun e ->
                 test_matches test_sym e
                 && List.for_all
                      (fun pred -> eval_predicate counters ~dedup doc e pred)
                      step.Ast.predicates))
        contexts
    in
    let selected =
      if dedup then
        List.sort_uniq
          (fun (a : Dom.element) b -> Int.compare a.id b.id)
          selected
      else selected
    in
    eval_steps counters ~dedup doc selected rest

and eval_predicate counters ~dedup doc context = function
  | Ast.Attr test ->
    Ast.attr_test_matches test
      ~find:(fun key ->
        List.find_map
          (fun { Xaos_xml.Event.attr_name; attr_value } ->
            if String.equal attr_name key then Some attr_value else None)
          context.Dom.attributes)
  | Ast.Text test ->
    Ast.text_test_matches test (Dom.text_content context)
  | Ast.Path p ->
    counters.predicate_evaluations <- counters.predicate_evaluations + 1;
    let start = if p.Ast.absolute then [ doc.Dom.root ] else [ context ] in
    eval_steps counters ~dedup doc start p.Ast.steps <> []
  | Ast.And (a, b) ->
    eval_predicate counters ~dedup doc context a
    && eval_predicate counters ~dedup doc context b
  | Ast.Or (a, b) ->
    eval_predicate counters ~dedup doc context a
    || eval_predicate counters ~dedup doc context b

let eval_with_counters ?(dedup = false) doc (path : Ast.path) =
  let counters = { nodes_visited = 0; predicate_evaluations = 0 } in
  (* Top-level paths are evaluated from the root, absolute or not, in line
     with the Rxp grammar (Table 1 only derives absolute ones). *)
  let elements = eval_steps counters ~dedup doc [ doc.Dom.root ] path.Ast.steps in
  let node_set =
    List.sort_uniq (fun (a : Dom.element) b -> Int.compare a.id b.id) elements
  in
  (List.map Xaos_core.Item.of_element node_set, counters)

let eval ?dedup doc path = fst (eval_with_counters ?dedup doc path)

let eval_string input path = eval (Dom.of_string input) path

let eval_query doc input =
  match Xaos_xpath.Parser.parse_result input with
  | Error msg -> Error msg
  | Ok path -> Ok (eval doc path)
