module Ast = Xaos_xpath.Ast
module Symbol = Xaos_xml.Symbol

type query_id = int

let supported_step (s : Ast.step) =
  (match s.Ast.axis with
  | Ast.Child | Ast.Descendant -> true
  | Ast.Parent | Ast.Ancestor | Ast.Self | Ast.Descendant_or_self
  | Ast.Ancestor_or_self ->
    false)
  && s.Ast.predicates = []
  && not s.Ast.marked

let supported (p : Ast.path) =
  p.Ast.absolute && List.for_all supported_step p.Ast.steps

(* The automaton is a prefix-sharing trie whose edges carry the step's
   (axis, test); subscriptions accepting at a node are recorded there.
   Each edge also precomputes its name test's interned symbol
   ([Symbol.none] for the wildcard), so the per-event transition compares
   integers — the automaton must be built and run within one symbol-table
   generation, like every engine. *)
type edge = {
  e_axis : Ast.axis;
  e_test : Ast.node_test;
  e_sym : Symbol.t;  (* [Symbol.none] iff [e_test] is the wildcard *)
  e_target : node;
}

and node = {
  id : int;
  mutable edges : edge list;
  mutable accepts : query_id list;
}

type t = {
  root : node;
  queries : int;
  states : int;
}

let build paths =
  let counter = ref 0 in
  let fresh () =
    let node = { id = !counter; edges = []; accepts = [] } in
    incr counter;
    node
  in
  let root = fresh () in
  let rec insert node qid = function
    | [] ->
      node.accepts <- qid :: node.accepts;
      ()
    | (step : Ast.step) :: rest ->
      let axis = step.Ast.axis and test = step.Ast.test in
      let child =
        match
          List.find_opt
            (fun e -> e.e_axis = axis && e.e_test = test)
            node.edges
        with
        | Some e -> e.e_target
        | None ->
          let child = fresh () in
          let e_sym =
            match test with
            | Ast.Name n -> Symbol.intern n
            | Ast.Wildcard -> Symbol.none
          in
          node.edges <-
            node.edges @ [ { e_axis = axis; e_test = test; e_sym; e_target = child } ];
          child
      in
      insert child qid rest
  in
  let rec check qid = function
    | [] -> Ok ()
    | p :: rest ->
      if supported p then check (qid + 1) rest
      else
        Error
          (Printf.sprintf
             "subscription %d (%s) is outside the forward-only linear class \
              this automaton supports"
             qid (Ast.to_string p))
  in
  match check 0 paths with
  | Error _ as e -> e
  | Ok () ->
    List.iteri (fun qid p -> insert root qid p.Ast.steps) paths;
    Ok { root; queries = List.length paths; states = !counter }

let query_count t = t.queries

let state_count t = t.states

(* Runtime: YFilter's stack of active-state sets. An activation is
   {e fresh} when its node was reached by an edge at exactly this level —
   its child edges fire on the element's children, its descendant edges on
   any proper descendant. An activation {e carried} down from a shallower
   level may only fire its descendant edges: the child edges belonged to
   the level where it was fresh. A query accepts when its node is freshly
   activated (the element completes the path). *)
type activation = {
  a_node : node;
  a_carried : bool;
}

type run = {
  automaton : t;
  mutable stack : activation list list;
  counts : int array;
}

let has_descendant_edges node =
  List.exists (fun e -> e.e_axis = Ast.Descendant) node.edges

let start automaton =
  {
    automaton;
    stack = [ [ { a_node = automaton.root; a_carried = false } ] ];
    counts = Array.make automaton.queries 0;
  }

let accept run node =
  List.iter (fun qid -> run.counts.(qid) <- run.counts.(qid) + 1) node.accepts

let step_set run current sym =
  let next = ref [] in
  let fresh = Hashtbl.create 8 in
  let activate node =
    if not (Hashtbl.mem fresh node.id) then begin
      Hashtbl.add fresh node.id ();
      accept run node;
      next := { a_node = node; a_carried = false } :: !next
    end
  in
  (* integer comparison only: the edge's name test was interned at build
     time, and wildcard matchability is a precomputed per-symbol bit *)
  let edge_matches e =
    if Symbol.equal e.e_sym Symbol.none then Symbol.matches_wildcard sym
    else Symbol.equal e.e_sym sym
  in
  let fire (activation : activation) =
    List.iter
      (fun e ->
        match e.e_axis with
        | Ast.Child ->
          if (not activation.a_carried) && edge_matches e then
            activate e.e_target
        | Ast.Descendant -> if edge_matches e then activate e.e_target
        | Ast.Parent | Ast.Ancestor | Ast.Self | Ast.Descendant_or_self
        | Ast.Ancestor_or_self ->
          assert false)
      activation.a_node.edges
  in
  List.iter fire current;
  (* nodes with pending descendant edges survive into the deeper set;
     a fresh copy already in [next] subsumes the carried one *)
  List.iter
    (fun a ->
      if has_descendant_edges a.a_node && not (Hashtbl.mem fresh a.a_node.id)
      then begin
        Hashtbl.add fresh a.a_node.id ();
        next := { a_node = a.a_node; a_carried = true } :: !next
      end)
    current;
  !next

let feed run event =
  match event with
  | Xaos_xml.Event.Start_element { sym; _ } -> (
    match run.stack with
    | current :: _ ->
      let next = step_set run current sym in
      run.stack <- next :: run.stack
    | [] -> invalid_arg "Yfilter.feed: unbalanced events")
  | Xaos_xml.Event.End_element _ -> (
    match run.stack with
    | _ :: (_ :: _ as rest) -> run.stack <- rest
    | [ _ ] | [] -> invalid_arg "Yfilter.feed: unbalanced events")
  | Xaos_xml.Event.Text _ | Xaos_xml.Event.Comment _
  | Xaos_xml.Event.Processing_instruction _ ->
    ()

let matches run =
  let result = ref [] in
  for qid = Array.length run.counts - 1 downto 0 do
    if run.counts.(qid) > 0 then result := qid :: !result
  done;
  !result

let match_counts run = Array.copy run.counts

let run_string automaton input =
  let run = start automaton in
  Xaos_xml.Sax.iter (feed run) (Xaos_xml.Sax.of_string input);
  matches run
