module Ast = Xaos_xpath.Ast
module Prefix_gate = Xaos_core.Prefix_gate

type query_id = int

let supported_step (s : Ast.step) =
  (match s.Ast.axis with
  | Ast.Child | Ast.Descendant -> true
  | Ast.Parent | Ast.Ancestor | Ast.Self | Ast.Descendant_or_self
  | Ast.Ancestor_or_self ->
    false)
  && s.Ast.predicates = []
  && not s.Ast.marked

let supported (p : Ast.path) =
  p.Ast.absolute && List.for_all supported_step p.Ast.steps

(* The automaton is {!Xaos_core.Prefix_gate}'s prefix-sharing trie —
   originally written here, generalized into core for whole-query-set
   compaction — with query ids as payloads. *)
type t = {
  gate : query_id Prefix_gate.t;
  queries : int;
}

let build paths =
  let rec check qid = function
    | [] -> Ok ()
    | p :: rest ->
      if supported p then check (qid + 1) rest
      else
        Error
          (Printf.sprintf
             "subscription %d (%s) is outside the forward-only linear class \
              this automaton supports"
             qid (Ast.to_string p))
  in
  match check 0 paths with
  | Error _ as e -> e
  | Ok () ->
    let gate = Prefix_gate.create () in
    List.iteri
      (fun qid (p : Ast.path) ->
        Prefix_gate.add gate
          (List.map (fun (s : Ast.step) -> (s.Ast.axis, s.Ast.test)) p.Ast.steps)
          qid)
      paths;
    Ok { gate; queries = List.length paths }

let query_count t = t.queries

let state_count t = Prefix_gate.state_count t.gate

type run = {
  walk : query_id Prefix_gate.run;
  counts : int array;
}

let start automaton =
  {
    walk = Prefix_gate.start automaton.gate;
    counts = Array.make automaton.queries 0;
  }

let feed run event =
  match Prefix_gate.feed run.walk event with
  | [] -> ()
  | accepted ->
    List.iter (fun qid -> run.counts.(qid) <- run.counts.(qid) + 1) accepted

let matches run =
  let result = ref [] in
  for qid = Array.length run.counts - 1 downto 0 do
    if run.counts.(qid) > 0 then result := qid :: !result
  done;
  !result

let match_counts run = Array.copy run.counts

let run_string automaton input =
  let run = start automaton in
  Xaos_xml.Sax.iter (feed run) (Xaos_xml.Sax.of_string input);
  matches run
