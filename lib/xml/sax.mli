(** Streaming (SAX-style) XML parser.

    This is the event source of the paper's Figure 1. The parser is a pull
    parser: {!next} returns the next {!Event.t} of the depth-first pre-order
    traversal of the document, without ever materializing the tree. Memory
    use is bounded by the input buffer plus the open-element stack, so
    arbitrarily large documents can be processed.

    Supported XML: elements, attributes, character data, entity references
    ([&lt; &gt; &amp; &apos; &quot;]) and character references ([&#n;] /
    [&#xh;]), CDATA sections, comments, processing instructions, the XML
    declaration, and (skipped) DOCTYPE declarations including an internal
    subset. Namespaces are not interpreted: a qualified name is just a tag
    string, as in the paper's data model. DTD-defined entities are not
    expanded.

    {2 Hardening}

    Two orthogonal mechanisms protect the process from hostile input:

    - {b Resource limits} ({!limits}): hard caps on nesting depth, token
      sizes, attribute counts, reference expansions, recovery attempts and
      total input bytes. A tripped limit raises {!Limit_exceeded} in
      {e both} modes — limits are resource guards, not well-formedness
      opinions, so they are never "recovered".
    - {b Lenient recovery mode} ([~mode:Lenient]): well-formedness faults
      are repaired instead of raised, each one reported through the
      [on_fault] callback. Per-error-class policies: mismatched end tags
      auto-close the elements opened above the match; end tags matching
      nothing are dropped; duplicate attributes are dropped; malformed
      references become literal text; stray markup and out-of-place text
      are skipped to the next tag boundary; truncated input auto-closes
      every open element. A lenient parse therefore always produces a
      balanced event stream ({!Dom.of_events} accepts it), and never raises
      {!Error} — only {!Limit_exceeded} can interrupt it.

    In the default strict mode, well-formedness is enforced: one root
    element, properly nested matching tags, quoted attribute values, no
    duplicate attributes, no ['<'] in attribute values, no content after
    the root element. *)

type position = {
  line : int;  (** 1-based *)
  column : int;  (** 1-based, in bytes *)
  offset : int;  (** 0-based byte offset *)
}

exception Error of position * string
(** Raised by {!next} on ill-formed input (strict mode only). *)

(** {1 Resource limits} *)

type limit_kind =
  | Max_depth  (** element-nesting depth (depth bombs) *)
  | Max_name_bytes  (** bytes in one element/attribute/entity name *)
  | Max_attr_value_bytes  (** bytes in one attribute value *)
  | Max_text_bytes  (** bytes in one text/CDATA/comment/PI token *)
  | Max_attr_count  (** attributes on one element *)
  | Max_ref_expansions  (** character/entity references per document *)
  | Max_input_bytes  (** total input consumed *)
  | Max_faults  (** lenient-mode recovery attempts per document *)

exception Limit_exceeded of position * limit_kind * int
(** [Limit_exceeded (pos, kind, bound)]: the limit [kind], configured at
    [bound], tripped at [pos]. Raised in both strict and lenient mode. *)

type limits = {
  max_depth : int;
  max_name_bytes : int;
  max_attr_value_bytes : int;
  max_text_bytes : int;
  max_attr_count : int;
  max_ref_expansions : int;
  max_input_bytes : int;
  max_faults : int;
}

val default_limits : limits
(** Generous production defaults: depth 10{_k}, names 4 KiB, attribute
    values 1 MiB, text tokens 16 MiB, 1024 attributes, 10{^6} reference
    expansions, unlimited input bytes, 10{_k} recovery attempts. *)

val unlimited : limits
(** Every field [max_int] — the historic unguarded behaviour. *)

val limit_kind_name : limit_kind -> string
(** Stable kebab-case name, e.g. ["max-depth"]. *)

val pp_limit_kind : Format.formatter -> limit_kind -> unit

(** {1 Modes and faults} *)

type mode =
  | Strict  (** raise {!Error} on the first well-formedness violation *)
  | Lenient  (** repair and report; see the module header *)

type fault = {
  fault_position : position;
  fault_message : string;
}
(** One recovered well-formedness violation (lenient mode). *)

type t
(** A parser over one document. *)

val of_string :
  ?limits:limits -> ?mode:mode -> ?on_fault:(fault -> unit) -> string -> t

val of_channel :
  ?limits:limits -> ?mode:mode -> ?on_fault:(fault -> unit) -> in_channel -> t

val of_function :
  ?limits:limits -> ?mode:mode -> ?on_fault:(fault -> unit) ->
  (bytes -> int -> int) -> t
(** [of_function refill]: [refill buf n] must write at most [n] bytes into
    [buf] starting at offset 0 and return how many were written; [0] means
    end of input. *)

val next : t -> Event.t option
(** The next event, or [None] once the document has been fully consumed.
    After [None], subsequent calls keep returning [None].
    @raise Error on ill-formed input in strict mode.
    @raise Limit_exceeded when a resource limit trips (both modes). *)

val position : t -> position
(** Current position, for error reporting and progress tracking. *)

val depth : t -> int
(** Number of currently open elements. The level of the next start event
    would be [depth t + 1]. *)

val fault_count : t -> int
(** Well-formedness faults recovered so far (lenient mode; [0] in strict
    mode). *)

val ref_expansions : t -> int
(** Character/entity references expanded so far. *)

val bytes_read : t -> int
(** Input bytes consumed so far (equals [position t].offset). *)

val iter : (Event.t -> unit) -> t -> unit
(** Push-style driver: applies the callback to every remaining event. *)

val fold : ('a -> Event.t -> 'a) -> 'a -> t -> 'a

val events_of_string :
  ?limits:limits -> ?mode:mode -> ?on_fault:(fault -> unit) -> string ->
  Event.t list
(** Parse a complete document held in memory. Convenient for tests. *)

val pp_position : Format.formatter -> position -> unit
