(* Deterministic fault injection. Everything is derived from a splitmix64
   stream keyed by (seed, doc index): draw k means "the k-th value of that
   document's stream", so adding a new parameter never shifts the ones
   before it and old seeds keep reproducing old faults. The PRNG is ~10
   lines and lives here rather than in lib/workloads because the
   dependency points the other way (workloads emit through this layer). *)

type kind =
  | Truncate
  | Corrupt_tag
  | Text_burst
  | Depth_burst
  | Split_refill
  | Inject_exn

let kind_name = function
  | Truncate -> "truncate"
  | Corrupt_tag -> "corrupt-tag"
  | Text_burst -> "text-burst"
  | Depth_burst -> "depth-burst"
  | Split_refill -> "split-refill"
  | Inject_exn -> "inject-exn"

let all_kinds =
  [ Truncate; Corrupt_tag; Text_burst; Depth_burst; Split_refill; Inject_exn ]

exception Injected of { doc : int; event_index : int }

(* splitmix64 over a fixed key: stateless draws by index *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

type plan = {
  doc : int;
  key : int64;
  fault : kind option;
}

let draw plan k =
  mix64 (Int64.add plan.key (Int64.mul (Int64.of_int (k + 1)) 0x9e3779b97f4a7c15L))

let draw_int plan k bound =
  if bound <= 0 then 0
  else Int64.to_int (Int64.rem (Int64.logand (draw plan k) Int64.max_int)
                       (Int64.of_int bound))

let draw_float plan k =
  (* 53 uniform bits into [0, 1) *)
  Int64.to_float (Int64.shift_right_logical (draw plan k) 11) *. 0x1p-53

let clean doc = { doc; key = 0L; fault = None }

let plan ?(kinds = all_kinds) ~seed ~rate doc =
  if kinds = [] then invalid_arg "Chaos.plan: empty kind list";
  let key =
    mix64 (Int64.add (Int64.of_int seed)
             (Int64.mul (Int64.of_int doc) 0x9e3779b97f4a7c15L))
  in
  let p = { doc; key; fault = None } in
  if draw_float p 0 >= rate then p
  else { p with fault = Some (List.nth kinds (draw_int p 1 (List.length kinds))) }

let kind p = p.fault

let doc_index p = p.doc

(* Fault parameters, each on its own draw index so they never shift. *)
let truncate_at p len = 1 + draw_int p 2 (max 1 (len - 1))

let corrupt_len p = 1 + draw_int p 3 4

let burst_text_bytes p = 4096 lsl draw_int p 4 6 (* 4 KiB .. 128 KiB *)

let burst_depth p = 96 + draw_int p 5 416 (* 96 .. 511 *)

let refill_chunk p = 1 + draw_int p 6 7 (* 1 .. 8 byte refills *)

let inject_at p = 1 + draw_int p 7 64

(* a random insertion point just after some '>' so well-formed faults
   stay well-formed; falls back to the end of the document *)
let after_tag p k doc =
  let len = String.length doc in
  let start = draw_int p k (max 1 len) in
  let rec scan i steps =
    if steps = 0 then len
    else if doc.[i] = '>' then i + 1
    else scan ((i + 1) mod len) (steps - 1)
  in
  if len = 0 then 0 else scan (start mod len) len

let describe p =
  match p.fault with
  | None -> "clean"
  | Some Truncate -> Printf.sprintf "truncate(doc %d)" p.doc
  | Some Corrupt_tag ->
    Printf.sprintf "corrupt-tag(%d bytes)" (corrupt_len p)
  | Some Text_burst ->
    Printf.sprintf "text-burst(%d bytes)" (burst_text_bytes p)
  | Some Depth_burst -> Printf.sprintf "depth-burst(%d)" (burst_depth p)
  | Some Split_refill ->
    Printf.sprintf "split-refill(%d-byte chunks)" (refill_chunk p)
  | Some Inject_exn -> Printf.sprintf "inject-exn(event %d)" (inject_at p)

let corrupt p doc =
  match p.fault with
  | None | Some Split_refill | Some Inject_exn -> doc
  | Some Truncate ->
    let len = String.length doc in
    if len <= 1 then doc else String.sub doc 0 (truncate_at p len)
  | Some Corrupt_tag ->
    let len = String.length doc in
    if len = 0 then doc
    else begin
      (* overwrite a few bytes starting inside some tag: find a '<' and
         stomp on what follows with markup-hostile junk *)
      let b = Bytes.of_string doc in
      let start = draw_int p 8 len in
      let lt =
        let rec scan i steps =
          if steps = 0 then start
          else if Bytes.get b i = '<' then i
          else scan ((i + 1) mod len) (steps - 1)
        in
        scan start len
      in
      let junk = [| '<'; '>'; '&'; '='; '\x00'; '"'; ' '; '/' |] in
      for j = 0 to corrupt_len p - 1 do
        let pos = lt + 1 + j in
        if pos < len then
          Bytes.set b pos junk.(draw_int p (16 + j) (Array.length junk))
      done;
      Bytes.to_string b
    end
  | Some Text_burst ->
    let at = after_tag p 9 doc in
    let n = burst_text_bytes p in
    String.concat ""
      [ String.sub doc 0 at; String.make n 'A';
        String.sub doc at (String.length doc - at) ]
  | Some Depth_burst ->
    let at = after_tag p 10 doc in
    let d = burst_depth p in
    let buf = Buffer.create ((d * 7) + String.length doc) in
    Buffer.add_string buf (String.sub doc 0 at);
    for _ = 1 to d do Buffer.add_string buf "<z>" done;
    for _ = 1 to d do Buffer.add_string buf "</z>" done;
    Buffer.add_string buf (String.sub doc at (String.length doc - at));
    Buffer.contents buf

let iter_events ?limits ?on_fault p doc push =
  let payload = corrupt p doc in
  let parser =
    match p.fault with
    | Some Split_refill ->
      (* deliver the bytes [chunk] at a time so every token type crosses
         refill boundaries *)
      let chunk = refill_chunk p in
      let pos = ref 0 in
      Sax.of_function ?limits ~mode:Sax.Lenient ?on_fault (fun buf n ->
          let k = min (min chunk n) (String.length payload - !pos) in
          if k <= 0 then 0
          else begin
            Bytes.blit_string payload !pos buf 0 k;
            pos := !pos + k;
            k
          end)
    | _ -> Sax.of_string ?limits ~mode:Sax.Lenient ?on_fault payload
  in
  let boom =
    match p.fault with Some Inject_exn -> inject_at p | _ -> max_int
  in
  let count = ref 0 in
  let rec loop () =
    match Sax.next parser with
    | None -> ()
    | Some ev ->
      incr count;
      if !count = boom then
        raise (Injected { doc = p.doc; event_index = !count });
      push ev;
      loop ()
  in
  loop ()
