(** Interned element-name symbols.

    Every distinct element name is interned exactly once — at parse time
    for streamed documents, at compile time for query name tests — into a
    process-global table mapping the name to a small dense integer. All
    per-event work downstream (engine relevance candidates, the shared
    dispatch index, item identity) indexes arrays by the symbol id; the
    string is rendered back only at emission or serialization.

    {b Lifetime.} The table is global and append-only between {!reset}
    calls. Ids are stable within a {e generation}: everything that caches
    a symbol (compiled engines, YFilter automata, DOM trees, buffered
    events) must be created and consumed within one generation. Engines
    resolve their name tests at creation time — once per run, never per
    event — so resetting between documents and starting fresh runs is
    safe; see the "Interned-symbol event core" section of DESIGN.md. *)

type t = int
(** A symbol id: a dense non-negative integer, comparable with [=] and
    directly usable as an array index (kept transparent for exactly that
    reason — the engine and the dispatch index are arrays over ids). *)

val none : t
(** A sentinel ([-1]) that is never returned by {!intern}; used for
    "no name test" slots (wildcards, the query root). *)

val intern : string -> t
(** Intern a name, returning its id. Idempotent within a generation:
    interning the same string twice returns the same id. *)

val find : string -> t option
(** The id of an already-interned name, without interning it. *)

val name : t -> string
(** The name behind an id — an O(1) array load.
    @raise Invalid_argument on {!none} or a stale id from a previous
    generation that has not been re-interned. *)

val matches_wildcard : t -> bool
(** Whether the symbol's name matches the wildcard node test [*]:
    precomputed at intern time, mirroring
    [Xaos_xpath.Ast.test_matches Wildcard] (everything except
    ['#']-prefixed virtual names such as ["#root"]). [false] on
    {!none}. *)

val count : unit -> int
(** Number of symbols interned in the current generation. Ids are exactly
    [0 .. count () - 1]. *)

val generation : unit -> int
(** Incremented by every {!reset}; lets holders of cached symbols detect
    staleness in assertions/tests. *)

val reset : unit -> unit
(** Empty the table and start a new generation. Ids handed out before the
    reset become meaningless; re-intern after resetting. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Debug printer, e.g. [item#3]. *)
