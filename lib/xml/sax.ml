type position = {
  line : int;
  column : int;
  offset : int;
}

exception Error of position * string

(* Telemetry hook points (no-ops unless a sink is installed): bytes are
   counted per refill, not per character, so the disabled cost sits on
   the buffer-fill path rather than the per-byte hot loop. *)
module Tel = Xaos_obs.Telemetry

let counter_bytes =
  Tel.counter ~help:"input bytes consumed by the SAX parser"
    "xaos_sax_bytes_total"

let counter_events =
  Tel.counter ~help:"events produced by the SAX parser"
    "xaos_sax_events_total"

let counter_refs =
  Tel.counter ~help:"character/entity references expanded"
    "xaos_sax_ref_expansions_total"

let counter_faults =
  Tel.counter ~help:"well-formedness faults recovered in lenient mode"
    "xaos_sax_faults_total"

(* ------------------------------------------------------------------ *)
(* Resource limits                                                     *)
(* ------------------------------------------------------------------ *)

type limit_kind =
  | Max_depth
  | Max_name_bytes
  | Max_attr_value_bytes
  | Max_text_bytes
  | Max_attr_count
  | Max_ref_expansions
  | Max_input_bytes
  | Max_faults

exception Limit_exceeded of position * limit_kind * int

type limits = {
  max_depth : int;
  max_name_bytes : int;
  max_attr_value_bytes : int;
  max_text_bytes : int;
  max_attr_count : int;
  max_ref_expansions : int;
  max_input_bytes : int;
  max_faults : int;
}

let default_limits =
  {
    max_depth = 10_000;
    max_name_bytes = 4_096;
    max_attr_value_bytes = 1_048_576;
    max_text_bytes = 16_777_216;
    max_attr_count = 1_024;
    max_ref_expansions = 1_000_000;
    max_input_bytes = max_int;
    max_faults = 10_000;
  }

let unlimited =
  {
    max_depth = max_int;
    max_name_bytes = max_int;
    max_attr_value_bytes = max_int;
    max_text_bytes = max_int;
    max_attr_count = max_int;
    max_ref_expansions = max_int;
    max_input_bytes = max_int;
    max_faults = max_int;
  }

let limit_kind_name = function
  | Max_depth -> "max-depth"
  | Max_name_bytes -> "max-name-bytes"
  | Max_attr_value_bytes -> "max-attr-value-bytes"
  | Max_text_bytes -> "max-text-bytes"
  | Max_attr_count -> "max-attr-count"
  | Max_ref_expansions -> "max-ref-expansions"
  | Max_input_bytes -> "max-input-bytes"
  | Max_faults -> "max-faults"

let pp_limit_kind ppf k = Format.pp_print_string ppf (limit_kind_name k)

(* ------------------------------------------------------------------ *)
(* Parsing modes and faults                                            *)
(* ------------------------------------------------------------------ *)

type mode =
  | Strict
  | Lenient

type fault = {
  fault_position : position;
  fault_message : string;
}

(* Parsing proceeds through three phases: the prolog (before the root
   element), the content of the root element, and the epilog (after it).
   [stack] holds the open element names; its length is the current depth. *)
type phase =
  | Prolog
  | Content
  | Epilog
  | Done

type t = {
  refill : bytes -> int -> int;
  buf : bytes;
  mutable pos : int;  (* next unread byte in [buf] *)
  mutable len : int;  (* number of valid bytes in [buf] *)
  mutable eof : bool;
  mutable line : int;
  mutable column : int;
  mutable offset : int;
  mutable stack : (string * Symbol.t) list;
      (* open element names with their interned symbols: end events reuse
         the symbol of the matching start event without re-interning *)
  mutable depth : int;
  mutable phase : phase;
  (* Queued events (e.g. the End after <a/>, or a burst of auto-closes in
     lenient mode) as a functional deque: [pending_front] in order,
     [pending_back] reversed. Push and amortized pop are O(1); the old
     single-list representation appended with [l @ [ev]], O(n) per
     push. *)
  mutable pending_front : Event.t list;
  mutable pending_back : Event.t list;
  scratch : Buffer.t;
  scratch2 : Buffer.t;
  scratch3 : Buffer.t;  (* raw reference text, for lenient fallbacks *)
  limits : limits;
  mode : mode;
  on_fault : fault -> unit;
  mutable faults : int;
  mutable refs : int;  (* character/entity references expanded so far *)
}

let buffer_size = 65536

let make ?(limits = default_limits) ?(mode = Strict) ?(on_fault = fun _ -> ())
    refill =
  {
    refill;
    buf = Bytes.create buffer_size;
    pos = 0;
    len = 0;
    eof = false;
    line = 1;
    column = 1;
    offset = 0;
    stack = [];
    depth = 0;
    phase = Prolog;
    pending_front = [];
    pending_back = [];
    scratch = Buffer.create 256;
    scratch2 = Buffer.create 64;
    scratch3 = Buffer.create 32;
    limits;
    mode;
    on_fault;
    faults = 0;
    refs = 0;
  }

let of_function ?limits ?mode ?on_fault refill = make ?limits ?mode ?on_fault refill

let of_channel ?limits ?mode ?on_fault ic =
  make ?limits ?mode ?on_fault (fun buf n -> input ic buf 0 n)

let of_string ?limits ?mode ?on_fault s =
  let consumed = ref 0 in
  let refill buf n =
    let remaining = String.length s - !consumed in
    let count = min n remaining in
    Bytes.blit_string s !consumed buf 0 count;
    consumed := !consumed + count;
    count
  in
  make ?limits ?mode ?on_fault refill

let position p = { line = p.line; column = p.column; offset = p.offset }

let depth p = p.depth

let fault_count p = p.faults

let ref_expansions p = p.refs

let bytes_read p = p.offset

let pp_position ppf ({ line; column; offset } : position) =
  Format.fprintf ppf "line %d, column %d (byte %d)" line column offset

let error p msg = raise (Error (position p, msg))

let errorf p fmt = Format.kasprintf (fun msg -> error p msg) fmt

let limit_error p kind value = raise (Limit_exceeded (position p, kind, value))

let lenient p = p.mode = Lenient

(* Record a recovered fault. The recovery-attempt cap is itself a limit:
   input that keeps the parser in pathological recovery forever is as
   hostile as a depth bomb. *)
let fault_at p pos msg =
  p.faults <- p.faults + 1;
  Tel.incr counter_faults;
  if p.faults > p.limits.max_faults then
    raise (Limit_exceeded (pos, Max_faults, p.limits.max_faults));
  p.on_fault { fault_position = pos; fault_message = msg }

let fault p msg = fault_at p (position p) msg

let faultf p fmt = Format.kasprintf (fun msg -> fault p msg) fmt

(* ------------------------------------------------------------------ *)
(* Character-level input                                               *)
(* ------------------------------------------------------------------ *)

let ensure p =
  if p.pos >= p.len && not p.eof then begin
    let count = p.refill p.buf buffer_size in
    p.pos <- 0;
    p.len <- count;
    if count = 0 then p.eof <- true else Tel.add counter_bytes count
  end

(* Peek at the next byte without consuming it; '\000' at end of input
   (NUL is not legal in XML, so the sentinel is unambiguous for
   well-formed documents; [at_eof] disambiguates hostile ones). *)
let peek p =
  ensure p;
  if p.pos >= p.len then '\000' else Bytes.unsafe_get p.buf p.pos

let at_eof p =
  ensure p;
  p.eof && p.pos >= p.len

let advance p =
  ensure p;
  if p.pos < p.len then begin
    if p.offset >= p.limits.max_input_bytes then
      limit_error p Max_input_bytes p.limits.max_input_bytes;
    let c = Bytes.unsafe_get p.buf p.pos in
    p.pos <- p.pos + 1;
    p.offset <- p.offset + 1;
    if Char.equal c '\n' then begin
      p.line <- p.line + 1;
      p.column <- 1
    end
    else p.column <- p.column + 1
  end

let next_char p =
  let c = peek p in
  if Char.equal c '\000' then error p "unexpected end of input";
  advance p;
  c

let expect p expected =
  let c = next_char p in
  if not (Char.equal c expected) then
    errorf p "expected %C but found %C" expected c

let expect_string p s = String.iter (fun c -> expect p c) s

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space p =
  while is_space (peek p) do
    advance p
  done

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | c -> Char.code c >= 0x80 (* permissive: any non-ASCII byte *)

let is_name_char c =
  is_name_start c || (match c with '0' .. '9' | '-' | '.' -> true | _ -> false)

let read_name p =
  let c = peek p in
  if not (is_name_start c) then errorf p "expected a name but found %C" c;
  Buffer.clear p.scratch2;
  while is_name_char (peek p) do
    if Buffer.length p.scratch2 >= p.limits.max_name_bytes then
      limit_error p Max_name_bytes p.limits.max_name_bytes;
    Buffer.add_char p.scratch2 (next_char p)
  done;
  Buffer.contents p.scratch2

(* ------------------------------------------------------------------ *)
(* References                                                          *)
(* ------------------------------------------------------------------ *)

let valid_scalar u = u >= 0 && u <= 0x10FFFF && not (u >= 0xD800 && u <= 0xDFFF)

(* Add the UTF-8 encoding of the Unicode scalar value [u] to [buf]. *)
let add_utf8 p buf u =
  if not (valid_scalar u) then errorf p "invalid character reference U+%X" u;
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex_value p = function
  | '0' .. '9' as c -> Char.code c - Char.code '0'
  | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
  | c -> errorf p "invalid hexadecimal digit %C" c

let expand_entity = function
  | "lt" -> Some '<'
  | "gt" -> Some '>'
  | "amp" -> Some '&'
  | "apos" -> Some '\''
  | "quot" -> Some '"'
  | _ -> None

(* Read a reference after the '&' has been consumed, appending the
   replacement text to [buf]. In lenient mode a malformed reference is
   recovered by appending its raw text instead of raising. *)
let read_reference p buf =
  p.refs <- p.refs + 1;
  Tel.incr counter_refs;
  if p.refs > p.limits.max_ref_expansions then
    limit_error p Max_ref_expansions p.limits.max_ref_expansions;
  if Char.equal (peek p) '#' then begin
    advance p;
    Buffer.clear p.scratch3;
    let hex = Char.equal (peek p) 'x' in
    if hex then begin
      advance p;
      Buffer.add_char p.scratch3 'x'
    end;
    let value = ref 0 in
    let digits = ref 0 in
    let rec loop () =
      match peek p with
      | ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') as c
        when hex || (c >= '0' && c <= '9') ->
        (* saturate instead of overflowing: anything past the last valid
           scalar is equally invalid *)
        if !value <= 0x110000 then
          value := (!value * if hex then 16 else 10) + hex_value p c;
        incr digits;
        Buffer.add_char p.scratch3 c;
        advance p;
        loop ()
      | _ -> ()
    in
    loop ();
    let raw () = "&#" ^ Buffer.contents p.scratch3 in
    if !digits = 0 then
      if lenient p then begin
        fault p "empty character reference";
        Buffer.add_string buf (raw ())
      end
      else error p "empty character reference"
    else if not (Char.equal (peek p) ';') then
      if lenient p then begin
        fault p "character reference without ';'";
        Buffer.add_string buf (raw ())
      end
      else expect p ';'
    else begin
      advance p;
      if valid_scalar !value then add_utf8 p buf !value
      else if lenient p then begin
        faultf p "invalid character reference U+%X" !value;
        Buffer.add_string buf (raw () ^ ";")
      end
      else errorf p "invalid character reference U+%X" !value
    end
  end
  else if is_name_start (peek p) then begin
    let name = read_name p in
    if not (Char.equal (peek p) ';') then
      if lenient p then begin
        faultf p "entity reference &%s without ';'" name;
        Buffer.add_char buf '&';
        Buffer.add_string buf name
      end
      else expect p ';'
    else
      match expand_entity name with
      | Some c ->
        advance p;
        Buffer.add_char buf c
      | None ->
        if lenient p then begin
          advance p;
          faultf p "unknown entity reference &%s;" name;
          Buffer.add_char buf '&';
          Buffer.add_string buf name;
          Buffer.add_char buf ';'
        end
        else errorf p "unknown entity reference &%s;" name
  end
  else if lenient p then begin
    fault p "bare '&' in content";
    Buffer.add_char buf '&'
  end
  else errorf p "expected a name but found %C" (peek p)

(* ------------------------------------------------------------------ *)
(* Markup                                                              *)
(* ------------------------------------------------------------------ *)

let check_value_limit p =
  if Buffer.length p.scratch > p.limits.max_attr_value_bytes then
    limit_error p Max_attr_value_bytes p.limits.max_attr_value_bytes

let read_attribute_value p =
  let quote = peek p in
  if Char.equal quote '"' || Char.equal quote '\'' then begin
    advance p;
    Buffer.clear p.scratch;
    let rec loop () =
      check_value_limit p;
      let c = peek p in
      if Char.equal c quote then advance p
      else
        match c with
        | '\000' -> error p "unexpected end of input in attribute value"
        | '<' ->
          if lenient p then begin
            fault p "'<' in attribute value";
            advance p;
            Buffer.add_char p.scratch '<';
            loop ()
          end
          else error p "'<' is not allowed in attribute values"
        | '&' ->
          advance p;
          read_reference p p.scratch;
          loop ()
        | c ->
          advance p;
          Buffer.add_char p.scratch c;
          loop ()
    in
    loop ();
    Buffer.contents p.scratch
  end
  else if lenient p then begin
    (* recover HTML-style unquoted values: read to the next delimiter *)
    fault p "unquoted attribute value";
    Buffer.clear p.scratch;
    let rec loop () =
      check_value_limit p;
      match peek p with
      | '\000' | '>' | '/' | '<' -> ()
      | c when is_space c -> ()
      | c ->
        advance p;
        Buffer.add_char p.scratch c;
        loop ()
    in
    loop ();
    Buffer.contents p.scratch
  end
  else error p "attribute value must be quoted"

let read_attributes p =
  let rec loop count acc =
    skip_space p;
    match peek p with
    | '>' | '/' -> List.rev acc
    | c when is_name_start c ->
      if count >= p.limits.max_attr_count then
        limit_error p Max_attr_count p.limits.max_attr_count;
      let attr_name = read_name p in
      skip_space p;
      let attr_value =
        if Char.equal (peek p) '=' then begin
          advance p;
          skip_space p;
          Some (read_attribute_value p)
        end
        else if lenient p then begin
          faultf p "attribute %s without a value" attr_name;
          None
        end
        else (expect p '='; None)
      in
      let attr_value = Option.value attr_value ~default:"" in
      if List.exists (fun a -> String.equal a.Event.attr_name attr_name) acc
      then
        if lenient p then begin
          faultf p "dropping duplicate attribute %s" attr_name;
          loop (count + 1) acc
        end
        else errorf p "duplicate attribute %s" attr_name
      else loop (count + 1) ({ Event.attr_name; attr_value } :: acc)
    | c ->
      if at_eof p then error p "unexpected end of input in tag"
      else if lenient p then begin
        faultf p "skipping unexpected %C in tag" c;
        advance p;
        loop count acc
      end
      else errorf p "unexpected %C in tag" c
  in
  loop 0 []

let check_text_limit p =
  if Buffer.length p.scratch > p.limits.max_text_bytes then
    limit_error p Max_text_bytes p.limits.max_text_bytes

(* "<!-" consumed; consume the second '-' and the comment body. A literal
   "--" inside a comment is ill-formed per the XML spec. *)
let read_comment p =
  expect p '-';
  Buffer.clear p.scratch;
  let rec loop () =
    check_text_limit p;
    let c = next_char p in
    if Char.equal c '-' && Char.equal (peek p) '-' then begin
      advance p;
      if Char.equal (peek p) '>' then advance p
      else if lenient p then begin
        fault p "'--' inside a comment";
        Buffer.add_string p.scratch "--";
        loop ()
      end
      else expect p '>'
    end
    else begin
      Buffer.add_char p.scratch c;
      loop ()
    end
  in
  loop ();
  Event.Comment (Buffer.contents p.scratch)

(* "<![" consumed; expect "CDATA[" then scan to "]]>". [brackets] counts the
   run of ']' characters read but not yet emitted: the final two belong to
   the terminator, any excess is literal content ("]]]>" => "]" ^ end). *)
let read_cdata p =
  expect_string p "CDATA[";
  Buffer.clear p.scratch;
  let rec loop brackets =
    check_text_limit p;
    match next_char p with
    | ']' -> loop (brackets + 1)
    | '>' when brackets >= 2 ->
      for _ = 1 to brackets - 2 do
        Buffer.add_char p.scratch ']'
      done
    | c ->
      for _ = 1 to brackets do
        Buffer.add_char p.scratch ']'
      done;
      Buffer.add_char p.scratch c;
      loop 0
  in
  loop 0;
  Event.Text (Buffer.contents p.scratch)

(* "<?" consumed. *)
let read_pi p =
  let target = read_name p in
  skip_space p;
  Buffer.clear p.scratch;
  let rec loop () =
    check_text_limit p;
    let c = next_char p in
    if Char.equal c '?' && Char.equal (peek p) '>' then advance p
    else begin
      Buffer.add_char p.scratch c;
      loop ()
    end
  in
  loop ();
  (target, Buffer.contents p.scratch)

(* "<!D" dispatched; skip the whole declaration, including an internal
   subset in square brackets and quoted system/public literals. *)
let skip_doctype p =
  expect_string p "DOCTYPE";
  let rec loop bracket_depth =
    match next_char p with
    | '[' -> loop (bracket_depth + 1)
    | ']' -> loop (bracket_depth - 1)
    | '>' when bracket_depth <= 0 -> ()
    | '"' ->
      let rec str () = if not (Char.equal (next_char p) '"') then str () in
      str ();
      loop bracket_depth
    | '\'' ->
      let rec str () = if not (Char.equal (next_char p) '\'') then str () in
      str ();
      loop bracket_depth
    | _ -> loop bracket_depth
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let read_text p =
  Buffer.clear p.scratch;
  let rec loop () =
    check_text_limit p;
    match peek p with
    | '<' | '\000' -> ()
    | '&' ->
      advance p;
      read_reference p p.scratch;
      loop ()
    | c ->
      advance p;
      Buffer.add_char p.scratch c;
      loop ()
  in
  loop ();
  Buffer.contents p.scratch

let pending_push p ev = p.pending_back <- ev :: p.pending_back

(* Queue a list of events, in order, after everything already queued. *)
let pending_push_all p evs = p.pending_back <- List.rev_append evs p.pending_back

let pending_pop p =
  match p.pending_front with
  | ev :: rest ->
    p.pending_front <- rest;
    Some ev
  | [] -> (
    match p.pending_back with
    | [] -> None
    | back -> (
      p.pending_back <- [];
      match List.rev back with
      | ev :: rest ->
        p.pending_front <- rest;
        Some ev
      | [] -> assert false))

(* The '<' and the first name character are still unread. *)
let start_element p =
  let name = read_name p in
  let attributes = read_attributes p in
  skip_space p;
  match next_char p with
  | '>' ->
    if p.depth + 1 > p.limits.max_depth then
      limit_error p Max_depth p.limits.max_depth;
    let sym = Symbol.intern name in
    p.stack <- (name, sym) :: p.stack;
    p.depth <- p.depth + 1;
    if p.phase = Prolog then p.phase <- Content;
    Event.Start_element { name; sym; attributes; level = p.depth }
  | '/' ->
    expect p '>';
    (* Self-closing: emit Start now, queue the matching End. Depth is left
       unchanged since the element opens and closes atomically. *)
    let level = p.depth + 1 in
    if level > p.limits.max_depth then limit_error p Max_depth p.limits.max_depth;
    let sym = Symbol.intern name in
    pending_push p (Event.End_element { name; sym; level });
    if p.phase = Prolog then p.phase <- Epilog;
    Event.Start_element { name; sym; attributes; level }
  | c -> errorf p "unexpected %C at end of start tag" c

(* "</" consumed. Returns [None] when (in lenient mode) the end tag had no
   matching open element and was dropped. *)
let end_element p =
  let name = read_name p in
  skip_space p;
  (match peek p with
  | '>' -> advance p
  | _ when lenient p ->
    faultf p "malformed end tag </%s>" name;
    let rec skip () =
      match peek p with
      | '>' -> advance p
      | '<' | '\000' -> ()
      | _ ->
        advance p;
        skip ()
    in
    skip ()
  | _ -> expect p '>');
  match p.stack with
  | [] ->
    if lenient p then begin
      faultf p "dropping unmatched end tag </%s>" name;
      None
    end
    else errorf p "unmatched end tag </%s>" name
  | (top, sym) :: rest when String.equal top name ->
    let level = p.depth in
    p.stack <- rest;
    p.depth <- p.depth - 1;
    if p.depth = 0 then p.phase <- Epilog;
    Some (Event.End_element { name; sym; level })
  | (top, _) :: _ ->
    if not (lenient p) then
      errorf p "mismatched end tag: expected </%s> but found </%s>" top name
    else if List.exists (fun (t, _) -> String.equal name t) p.stack then begin
      (* auto-close every element opened above the matching one *)
      faultf p "auto-closing unclosed <%s> at </%s>" top name;
      let rec close depth stack acc =
        match stack with
        | [] -> assert false
        | (t, tsym) :: rest ->
          let acc =
            Event.End_element { name = t; sym = tsym; level = depth } :: acc
          in
          if String.equal t name then (rest, depth - 1, List.rev acc)
          else close (depth - 1) rest acc
      in
      let stack, depth, events = close p.depth p.stack [] in
      p.stack <- stack;
      p.depth <- depth;
      if p.depth = 0 then p.phase <- Epilog;
      match events with
      | first :: queued ->
        pending_push_all p queued;
        Some first
      | [] -> assert false
    end
    else begin
      faultf p "dropping unmatched end tag </%s>" name;
      None
    end

(* Virtually close every open element (truncated input, lenient mode). *)
let close_all_open p =
  let rec events depth stack acc =
    match stack with
    | [] -> List.rev acc
    | (t, sym) :: rest ->
      events (depth - 1) rest
        (Event.End_element { name = t; sym; level = depth } :: acc)
  in
  let evs = events p.depth p.stack [] in
  p.stack <- [];
  p.depth <- 0;
  p.phase <- Epilog;
  evs

let rec next_raw p =
  match pending_pop p with
  | Some _ as some -> some
  | None -> (
    match p.phase with
    | Done -> None
    | Epilog -> (
      skip_space p;
      match peek p with
      | '\000' ->
        if at_eof p || not (lenient p) then begin
          p.phase <- Done;
          None
        end
        else begin
          fault p "NUL byte after the root element";
          advance p;
          next_raw p
        end
      | '<' -> (
        advance p;
        match peek p with
        | '!' -> (
          advance p;
          match peek p with
          | '-' ->
            advance p;
            Some (read_comment p)
          | c -> errorf p "unexpected declaration %C after the root element" c)
        | '?' ->
          advance p;
          let target, content = read_pi p in
          Some (Event.Processing_instruction { target; content })
        | '/' when lenient p -> (
          advance p;
          match end_element p with
          | Some ev -> Some ev
          | None -> next_raw p)
        | c when lenient p && is_name_start c ->
          fault p "multiple root elements";
          p.phase <- Content;
          Some (start_element p)
        | _ -> error p "only one root element is allowed")
      | _ ->
        if lenient p then begin
          fault p "text after the root element";
          ignore (read_text p);
          next_raw p
        end
        else error p "text content is not allowed after the root element")
    | Prolog -> (
      skip_space p;
      match peek p with
      | '\000' ->
        if (not (at_eof p)) && lenient p then begin
          fault p "NUL byte before the root element";
          advance p;
          next_raw p
        end
        else if lenient p then begin
          fault p "empty document: no root element";
          p.phase <- Done;
          None
        end
        else error p "empty document: no root element"
      | '<' -> (
        advance p;
        match peek p with
        | '!' -> (
          advance p;
          match peek p with
          | '-' ->
            advance p;
            Some (read_comment p)
          | 'D' ->
            skip_doctype p;
            next_raw p
          | c -> errorf p "unexpected declaration starting with %C" c)
        | '?' ->
          advance p;
          let target, content = read_pi p in
          if String.equal (String.lowercase_ascii target) "xml" then
            (* XML declaration: consume silently. *)
            next_raw p
          else Some (Event.Processing_instruction { target; content })
        | '/' when lenient p -> (
          advance p;
          match end_element p with
          | Some ev -> Some ev
          | None -> next_raw p)
        | '/' -> error p "end tag before any start tag"
        | _ -> Some (start_element p))
      | _ ->
        if lenient p then begin
          fault p "text before the root element";
          while (not (Char.equal (peek p) '<')) && not (Char.equal (peek p) '\000')
          do
            advance p
          done;
          next_raw p
        end
        else error p "text content is not allowed before the root element")
    | Content -> (
      match peek p with
      | '\000' ->
        if not (lenient p) then
          errorf p "unexpected end of input: %d element(s) still open" p.depth
        else if not (at_eof p) then begin
          fault p "NUL byte in content";
          advance p;
          next_raw p
        end
        else if p.depth = 0 then begin
          (* lenient document-sequence mode after extra roots *)
          p.phase <- Done;
          None
        end
        else begin
          faultf p "unexpected end of input: auto-closing %d open element(s)"
            p.depth;
          match close_all_open p with
          | [] -> next_raw p
          | first :: queued ->
            pending_push_all p queued;
            Some first
        end
      | '<' -> (
        advance p;
        match peek p with
        | '/' -> (
          advance p;
          match end_element p with
          | Some ev -> Some ev
          | None -> next_raw p)
        | '!' -> (
          advance p;
          match peek p with
          | '-' ->
            advance p;
            Some (read_comment p)
          | '[' ->
            advance p;
            (match read_cdata p with
            | Event.Text "" -> next_raw p
            | other -> Some other)
          | c -> errorf p "unexpected declaration starting with %C" c)
        | '?' ->
          advance p;
          let target, content = read_pi p in
          Some (Event.Processing_instruction { target; content })
        | _ -> Some (start_element p))
      | _ ->
        let text = read_text p in
        if String.length text = 0 then next_raw p else Some (Event.Text text)))

(* In lenient mode every remaining well-formedness error resynchronizes:
   record the fault, make at least one byte of progress, skip to the next
   tag boundary and try again. Every '<'-initiated construct consumes the
   '<' before it can fail, so the retry is guaranteed to advance.
   [Limit_exceeded] is a resource guard, not a recoverable fault: it
   propagates in both modes. *)
let rec next_mode p =
  match p.mode with
  | Strict -> next_raw p
  | Lenient -> (
    let before = p.offset in
    try next_raw p with
    | Error (pos, msg) ->
      fault_at p pos msg;
      if p.offset = before && not (at_eof p) then advance p;
      while (not (Char.equal (peek p) '<')) && not (Char.equal (peek p) '\000')
      do
        advance p
      done;
      next_mode p)

let next p =
  match next_mode p with
  | Some _ as result ->
    Tel.incr counter_events;
    result
  | None -> None

let iter f p =
  let rec loop () =
    match next p with
    | None -> ()
    | Some ev ->
      f ev;
      loop ()
  in
  loop ()

let fold f init p =
  let rec loop acc =
    match next p with
    | None -> acc
    | Some ev -> loop (f acc ev)
  in
  loop init

let events_of_string ?limits ?mode ?on_fault s =
  let p = of_string ?limits ?mode ?on_fault s in
  List.rev (fold (fun acc ev -> ev :: acc) [] p)
