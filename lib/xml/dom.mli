(** In-memory document tree (DOM-like).

    The tree follows the paper's model (Section 2.1): it is rooted at a
    virtual element [Root] with [id = 0] and [level = 0] that contains the
    document element. Element ids are assigned in document (pre-) order, so
    the document element has [id = 1], exactly as in the paper's Figure 2.

    This is the substrate for the Xalan-like baseline engine, and for the
    χαος(DOM) configuration of Figures 6–7 where events are replayed from a
    prebuilt tree. *)

type element = {
  id : int;  (** document-order identifier; the virtual root has id 0 *)
  tag : string;
  sym : Symbol.t;  (** [Symbol.intern tag], captured at build time *)
  level : int;  (** distance from the virtual root (root = 0) *)
  attributes : Event.attribute list;
  mutable parent : element option;  (** [None] only for the virtual root *)
  mutable children : node list;  (** in document order *)
  mutable exit_id : int;
      (** largest element id in this element's subtree; together with [id]
          this gives O(1) ancestor/descendant tests *)
}

and node =
  | Element of element
  | Text of string
  | Comment of string
  | Pi of string * string

type doc = {
  root : element;  (** the virtual root *)
  element_count : int;  (** number of elements including the virtual root *)
}

val root_tag : string
(** Tag of the virtual root element (["#root"]); no real element can carry
    it since ['#'] is not a name character. *)

(** {1 Construction} *)

val of_events : Event.t list -> doc
(** Build a tree from a complete event stream (element events only are
    significant for structure; text/comments/PIs are kept as leaves).
    @raise Invalid_argument on an unbalanced stream. *)

val of_sax : Sax.t -> doc
(** Drain a SAX parser into a tree. *)

val of_string : string -> doc
(** Parse and build. @raise Sax.Error on ill-formed input. *)

(** {1 Navigation} *)

val element_children : element -> element list

val parent : element -> element option
(** Parent element; [None] for the virtual root. *)

val ancestors : element -> element list
(** Proper ancestors, nearest first, ending with the virtual root. *)

val descendants : element -> element Seq.t
(** Proper descendant elements, in document order. *)

val self_and_descendants : element -> element Seq.t

val is_ancestor : element -> element -> bool
(** [is_ancestor a d] iff [a] is a proper ancestor of [d]. O(1). *)

val iter_elements : (element -> unit) -> doc -> unit
(** All elements in document order, including the virtual root. *)

val element_by_id : doc -> int -> element option
(** Linear scan; intended for tests. *)

val text_content : element -> string
(** Concatenated text descendants, in document order. *)

(** {1 Replay} *)

val events : doc -> Event.t list
(** The event stream of the document below the virtual root — the stream a
    SAX parse of the same document would produce (modulo text coalescing). *)

val iter_events : (Event.t -> unit) -> doc -> unit
(** Like {!events} but without building the list: used by the χαος(DOM)
    configuration to replay a prebuilt tree through the streaming engine. *)

(** {1 Statistics} *)

val subtree_size : element -> int
(** Number of elements in the subtree rooted at the element, inclusive. *)

val pp_element : Format.formatter -> element -> unit
(** Prints the paper's [T_{i,l}] notation, e.g. [W(7)@4]. *)
