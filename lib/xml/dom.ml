type element = {
  id : int;
  tag : string;
  sym : Symbol.t;
  level : int;
  attributes : Event.attribute list;
  mutable parent : element option;
  mutable children : node list;
  mutable exit_id : int;
}

and node =
  | Element of element
  | Text of string
  | Comment of string
  | Pi of string * string

type doc = {
  root : element;
  element_count : int;
}

let root_tag = "#root"

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

type builder = {
  mutable next_id : int;
  mutable open_stack : (element * node list ref) list;
  (* (element, reversed children accumulated so far) *)
  virtual_root : element;
  root_children : node list ref;
}

let new_element ~id ~tag ~sym ~level ~attributes =
  { id; tag; sym; level; attributes; parent = None; children = []; exit_id = id }

let builder_create () =
  let virtual_root =
    new_element ~id:0 ~tag:root_tag ~sym:(Symbol.intern root_tag) ~level:0
      ~attributes:[]
  in
  let root_children = ref [] in
  {
    next_id = 1;
    open_stack = [ (virtual_root, root_children) ];
    virtual_root;
    root_children;
  }

let builder_push b event =
  match event with
  | Event.Start_element { name; sym; attributes; level } ->
    let id = b.next_id in
    b.next_id <- id + 1;
    let elem = new_element ~id ~tag:name ~sym ~level ~attributes in
    (match b.open_stack with
    | (parent, _) :: _ -> elem.parent <- Some parent
    | [] -> invalid_arg "Dom.of_events: unbalanced stream");
    b.open_stack <- (elem, ref []) :: b.open_stack
  | Event.End_element _ -> (
    match b.open_stack with
    | (elem, children) :: ((_, parent_children) :: _ as rest) ->
      elem.children <- List.rev !children;
      elem.exit_id <- b.next_id - 1;
      parent_children := Element elem :: !parent_children;
      b.open_stack <- rest
    | _ -> invalid_arg "Dom.of_events: unbalanced stream")
  | Event.Text s -> (
    match b.open_stack with
    | (_, children) :: _ -> children := Text s :: !children
    | [] -> invalid_arg "Dom.of_events: unbalanced stream")
  | Event.Comment s -> (
    match b.open_stack with
    | (_, children) :: _ -> children := Comment s :: !children
    | [] -> invalid_arg "Dom.of_events: unbalanced stream")
  | Event.Processing_instruction { target; content } -> (
    match b.open_stack with
    | (_, children) :: _ -> children := Pi (target, content) :: !children
    | [] -> invalid_arg "Dom.of_events: unbalanced stream")

let builder_finish b =
  match b.open_stack with
  | [ (root, children) ] ->
    root.children <- List.rev !children;
    root.exit_id <- b.next_id - 1;
    { root; element_count = b.next_id }
  | _ -> invalid_arg "Dom.of_events: unbalanced stream"

let of_events events =
  let b = builder_create () in
  List.iter (builder_push b) events;
  builder_finish b

let of_sax parser =
  let b = builder_create () in
  Sax.iter (builder_push b) parser;
  builder_finish b

let of_string s = of_sax (Sax.of_string s)

(* ------------------------------------------------------------------ *)
(* Navigation                                                          *)
(* ------------------------------------------------------------------ *)

let element_children e =
  List.filter_map (function Element c -> Some c | _ -> None) e.children

let parent e = e.parent

let ancestors e =
  let rec loop acc e =
    match e.parent with
    | None -> List.rev acc
    | Some p -> loop (p :: acc) p
  in
  loop [] e

let rec descendants_of_nodes nodes () =
  match nodes with
  | [] -> Seq.Nil
  | Element e :: rest ->
    Seq.Cons (e, fun () -> Seq.append (descendants_of_nodes e.children) (descendants_of_nodes rest) ())
  | _ :: rest -> descendants_of_nodes rest ()

let descendants e = descendants_of_nodes e.children

let self_and_descendants e = Seq.cons e (descendants e)

let is_ancestor a d = a.id < d.id && d.id <= a.exit_id

let iter_elements f doc =
  let rec walk e =
    f e;
    List.iter (function Element c -> walk c | _ -> ()) e.children
  in
  walk doc.root

let element_by_id doc id =
  let found = ref None in
  (try
     iter_elements
       (fun e -> if e.id = id then begin found := Some e; raise Exit end)
       doc
   with Exit -> ());
  !found

let text_content e =
  let buf = Buffer.create 64 in
  let rec walk nodes =
    List.iter
      (function
        | Text s -> Buffer.add_string buf s
        | Element c -> walk c.children
        | Comment _ | Pi _ -> ())
      nodes
  in
  walk e.children;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

let iter_events f doc =
  let rec walk_nodes nodes =
    List.iter
      (function
        | Element e ->
          f (Event.Start_element
               { name = e.tag; sym = e.sym; attributes = e.attributes;
                 level = e.level });
          walk_nodes e.children;
          f (Event.End_element { name = e.tag; sym = e.sym; level = e.level })
        | Text s -> f (Event.Text s)
        | Comment s -> f (Event.Comment s)
        | Pi (target, content) ->
          f (Event.Processing_instruction { target; content }))
      nodes
  in
  walk_nodes doc.root.children

let events doc =
  let acc = ref [] in
  iter_events (fun ev -> acc := ev :: !acc) doc;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

let subtree_size e = e.exit_id - e.id + 1

let pp_element ppf e = Format.fprintf ppf "%s(%d)@%d" e.tag e.id e.level
