type attribute = {
  attr_name : string;
  attr_value : string;
}

type t =
  | Start_element of {
      name : string;
      sym : Symbol.t;
      attributes : attribute list;
      level : int;
    }
  | End_element of { name : string; sym : Symbol.t; level : int }
  | Text of string
  | Comment of string
  | Processing_instruction of { target : string; content : string }

let start_element ?(attributes = []) ~name ~level () =
  Start_element { name; sym = Symbol.intern name; attributes; level }

let end_element ~name ~level () =
  End_element { name; sym = Symbol.intern name; level }

let name = function
  | Start_element { name; _ } | End_element { name; _ } -> Some name
  | Text _ | Comment _ | Processing_instruction _ -> None

let sym = function
  | Start_element { sym; _ } | End_element { sym; _ } -> Some sym
  | Text _ | Comment _ | Processing_instruction _ -> None

let level = function
  | Start_element { level; _ } | End_element { level; _ } -> Some level
  | Text _ | Comment _ | Processing_instruction _ -> None

let is_element_event = function
  | Start_element _ | End_element _ -> true
  | Text _ | Comment _ | Processing_instruction _ -> false

let attribute key = function
  | Start_element { attributes; _ } ->
    let rec find = function
      | [] -> None
      | { attr_name; attr_value } :: rest ->
        if String.equal attr_name key then Some attr_value else find rest
    in
    find attributes
  | End_element _ | Text _ | Comment _ | Processing_instruction _ -> None

let pp ppf = function
  | Start_element { name; level; _ } -> Format.fprintf ppf "S:%s@%d" name level
  | End_element { name; level; _ } -> Format.fprintf ppf "E:%s@%d" name level
  | Text s -> Format.fprintf ppf "T:%S" s
  | Comment s -> Format.fprintf ppf "C:%S" s
  | Processing_instruction { target; content } ->
    Format.fprintf ppf "PI:%s %S" target content

let equal_attribute a b =
  String.equal a.attr_name b.attr_name && String.equal a.attr_value b.attr_value

(* Equality compares the name strings, not the symbols: it must stay
   meaningful across table generations (e.g. comparing an expected event
   list built after a [Symbol.reset] against buffered events). *)
let equal a b =
  match a, b with
  | Start_element a, Start_element b ->
    String.equal a.name b.name
    && a.level = b.level
    && List.length a.attributes = List.length b.attributes
    && List.for_all2 equal_attribute a.attributes b.attributes
  | End_element a, End_element b -> String.equal a.name b.name && a.level = b.level
  | Text a, Text b | Comment a, Comment b -> String.equal a b
  | Processing_instruction a, Processing_instruction b ->
    String.equal a.target b.target && String.equal a.content b.content
  | ( ( Start_element _ | End_element _ | Text _ | Comment _
      | Processing_instruction _ ),
      _ ) ->
    false
