(** Deterministic fault injection for event streams — the enabling
    counterpart of the resilient service layer's soak testing.

    A {!plan} is derived purely from [(seed, doc index)]: the same seed
    replays the same faults on the same documents, so a soak failure is
    reproducible from its seed alone. Faults model what a long-lived
    subscription service actually meets:

    - {b Truncate}: the document is cut mid-byte (a dropped connection);
    - {b Corrupt_tag}: bytes inside a tag are overwritten with junk
      (bit rot, framing bugs) — exercises lenient recovery;
    - {b Text_burst}: an oversized character-data run is spliced in at a
      tag boundary (well-formed, but trips text-token limits);
    - {b Depth_burst}: a deep balanced nest is spliced in (well-formed,
      but trips depth limits);
    - {b Split_refill}: the bytes arrive in tiny refill chunks, stressing
      every token-across-buffer-boundary path in the parser;
    - {b Inject_exn}: {!Injected} is raised from inside the event loop at
      a planned event index (a crashing downstream consumer). *)

type kind =
  | Truncate
  | Corrupt_tag
  | Text_burst
  | Depth_burst
  | Split_refill
  | Inject_exn

val kind_name : kind -> string
(** Stable kebab-case reason code, e.g. ["corrupt-tag"]. *)

val all_kinds : kind list

exception Injected of { doc : int; event_index : int }
(** The planned consumer crash of an [Inject_exn] fault. *)

type plan
(** The (possibly absent) fault assigned to one document. *)

val plan : ?kinds:kind list -> seed:int -> rate:float -> int -> plan
(** [plan ~seed ~rate doc] decides deterministically whether document
    number [doc] is faulted (probability [rate]) and how. [kinds]
    restricts the fault classes drawn from (default {!all_kinds}). *)

val clean : int -> plan
(** A plan with no fault (the oracle side of a differential run). *)

val kind : plan -> kind option

val doc_index : plan -> int

val describe : plan -> string
(** ["clean"] or the fault's reason code with its parameters. *)

val corrupt : plan -> string -> string
(** Apply the plan's byte-level fault to a serialized document —
    identity for [None], [Split_refill] and [Inject_exn] (those act at
    parse/consume time, not on the wire). This is what a chaos publisher
    sends over the socket. *)

val iter_events :
  ?limits:Sax.limits ->
  ?on_fault:(Sax.fault -> unit) ->
  plan -> string -> (Event.t -> unit) -> unit
(** Parse [corrupt plan doc] leniently — through a split refill under
    [Split_refill] — pushing each event to the callback; raises
    {!Injected} at the planned event index under [Inject_exn]. May also
    raise {!Sax.Limit_exceeded} (burst faults exist to trip limits). *)
