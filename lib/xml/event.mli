(** Parsing events produced by the streaming XML parser.

    The event stream is equivalent to a depth-first, pre-order traversal of
    the document tree (paper, Section 2.2): for each element a
    [Start_element] is generated, then its content in document order, and
    finally an [End_element].

    Levels follow the paper's convention: the virtual [Root] element has
    level 0, so the document element has level 1.

    Element events carry both the name string and its interned
    {!Symbol.t}: the parser interns each start tag once, and every
    downstream consumer (engine relevance, dispatch index) works on the
    integer id only. Construct events through {!start_element} /
    {!end_element} (or copy the [sym] of an existing event) so the two
    fields never disagree. *)

type attribute = {
  attr_name : string;
  attr_value : string;
}

type t =
  | Start_element of {
      name : string;
      sym : Symbol.t;  (** [Symbol.intern name], interned at parse time *)
      attributes : attribute list;
      level : int;
    }
      (** Start tag. [level] is the distance from the virtual root. *)
  | End_element of { name : string; sym : Symbol.t; level : int }
      (** End tag (also generated for empty-element tags). *)
  | Text of string
      (** Character data, with entity and character references resolved.
          Adjacent runs (e.g. around a CDATA section) may arrive as several
          [Text] events. *)
  | Comment of string  (** [<!-- ... -->], content without the delimiters. *)
  | Processing_instruction of { target : string; content : string }
      (** [<?target content?>]. *)

val start_element :
  ?attributes:attribute list -> name:string -> level:int -> unit -> t
(** A [Start_element] with [sym] interned from [name]. *)

val end_element : name:string -> level:int -> unit -> t
(** An [End_element] with [sym] interned from [name]. *)

val name : t -> string option
(** Element name for start/end events, [None] otherwise. *)

val sym : t -> Symbol.t option
(** Interned element name for start/end events, [None] otherwise. *)

val level : t -> int option
(** Level for start/end events, [None] otherwise. *)

val is_element_event : t -> bool
(** [true] on [Start_element] and [End_element]. The χαος engine consumes
    only element events. *)

val attribute : string -> t -> string option
(** [attribute k e] is the value of attribute [k] on a start event. *)

val pp : Format.formatter -> t -> unit
(** Debug printer, e.g. [S:foo@2]. *)

val equal : t -> t -> bool
(** Structural equality on names/levels/content; symbols are ignored so
    the comparison stays meaningful across {!Symbol.reset}
    generations. *)
