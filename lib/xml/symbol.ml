(* Process-global interning table. One array-backed side table per
   property keeps [name] and [matches_wildcard] O(1) loads with no
   hashing: the hot path of the engine and the dispatch index only ever
   touches the integer ids. *)

type t = int

let none = -1

let initial = 256

let table : (string, int) Hashtbl.t = Hashtbl.create initial

let names = ref (Array.make initial "")

(* '\001' iff the symbol's name matches the wildcard node test: nonempty
   names not starting with '#' ('#' is not an XML name character, so only
   virtual elements such as the "#root" wrapper carry it). Must mirror
   [Xaos_xpath.Ast.test_matches Wildcard]. *)
let wild = ref (Bytes.make initial '\000')

let size = ref 0

let generation_counter = ref 0

let ensure_capacity n =
  let cap = Array.length !names in
  if n > cap then begin
    let cap' = max n (2 * cap) in
    let names' = Array.make cap' "" in
    Array.blit !names 0 names' 0 !size;
    names := names';
    let wild' = Bytes.make cap' '\000' in
    Bytes.blit !wild 0 wild' 0 !size;
    wild := wild'
  end

let intern s =
  match Hashtbl.find table s with
  | id -> id
  | exception Not_found ->
    let id = !size in
    ensure_capacity (id + 1);
    size := id + 1;
    !names.(id) <- s;
    if String.length s = 0 || not (Char.equal s.[0] '#') then
      Bytes.set !wild id '\001';
    Hashtbl.add table s id;
    id

let find s = Hashtbl.find_opt table s

let name id =
  if id < 0 || id >= !size then
    invalid_arg (Printf.sprintf "Symbol.name: unknown symbol %d" id)
  else !names.(id)

let matches_wildcard id =
  id >= 0 && id < !size && Char.equal (Bytes.unsafe_get !wild id) '\001'

let count () = !size

let generation () = !generation_counter

let reset () =
  Hashtbl.reset table;
  Bytes.fill !wild 0 !size '\000';
  Array.fill !names 0 !size "";
  size := 0;
  incr generation_counter

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Int.compare a b

let pp ppf id =
  if id < 0 || id >= !size then Format.fprintf ppf "?%d" id
  else Format.fprintf ppf "%s#%d" !names.(id) id
