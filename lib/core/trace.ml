type step = {
  index : int;
  event : Xaos_xml.Event.t;
  pos : Xaos_xml.Sax.position option;
  matches : (int * Item.t) list;
  looking_for : (int * Engine.level_requirement) list;
  propagations : int;
  undos : int;
  discarded : bool;
}

type t = {
  steps : step list;
  result : Result_set.t;
  stats : Stats.t;
}

(* One element-event step: bracket the feed with activity deltas. The
   matches column reads the innermost frame — after the feed for a start
   event (the structures just registered), before it for an end event
   (the structures about to be resolved). *)
let capture engine ~index ~pos event =
  let stats = Engine.stats engine in
  let props0 = stats.Stats.propagations and undos0 = stats.Stats.undos in
  let matches_before = Engine.frame_matches engine in
  Engine.feed engine event;
  let matches =
    match event with
    | Xaos_xml.Event.Start_element _ -> Engine.frame_matches engine
    | _ -> matches_before
  in
  {
    index;
    event;
    pos;
    matches;
    looking_for = Engine.looking_for engine;
    propagations = stats.Stats.propagations - props0;
    undos = stats.Stats.undos - undos0;
    discarded = matches = [];
  }

let run_positioned ?config dag events =
  let engine = Engine.create ?config dag in
  let steps = ref [] in
  let index = ref 1 (* the paper's step 1 is the virtual Root start *) in
  List.iter
    (fun (event, pos) ->
      match event with
      | Xaos_xml.Event.Start_element _ | Xaos_xml.Event.End_element _ ->
        incr index;
        steps := capture engine ~index:!index ~pos event :: !steps
      | Xaos_xml.Event.Text _ | Xaos_xml.Event.Comment _
      | Xaos_xml.Event.Processing_instruction _ ->
        Engine.feed engine event)
    events;
  let result = Engine.finish engine in
  { steps = List.rev !steps; result; stats = Engine.stats engine }

let run ?config dag events =
  run_positioned ?config dag (List.map (fun e -> (e, None)) events)

(* Pull events with the parser position just past each token — the byte
   offset the rendered row reports. *)
let positioned_events parser =
  let rec loop acc =
    match Xaos_xml.Sax.next parser with
    | None -> List.rev acc
    | Some event ->
      loop ((event, Some (Xaos_xml.Sax.position parser)) :: acc)
  in
  loop []

let run_sax ?config dag parser =
  run_positioned ?config dag (positioned_events parser)

let run_string ?config dag input =
  run_sax ?config dag (Xaos_xml.Sax.of_string input)

let label_of (xtree : Xaos_xpath.Xtree.t) v =
  Format.asprintf "%a" Xaos_xpath.Xtree.pp_label
    xtree.Xaos_xpath.Xtree.nodes.(v).Xaos_xpath.Xtree.label

let pp_looking_for ~xtree ppf entries =
  Format.pp_print_char ppf '{';
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (v, req) ->
      match req with
      | Engine.Exact l -> Format.fprintf ppf "(%s,%d)" (label_of xtree v) l
      | Engine.Any -> Format.fprintf ppf "(%s,inf)" (label_of xtree v))
    ppf entries;
  Format.pp_print_char ppf '}'

let pp_step ~xtree ppf step =
  let event = Format.asprintf "%a" Xaos_xml.Event.pp step.event in
  let offset =
    match step.pos with
    | Some p -> Printf.sprintf "@%d" p.Xaos_xml.Sax.offset
    | None -> ""
  in
  let matches =
    if step.matches = [] then
      match step.event with
      | Xaos_xml.Event.Start_element _ -> "discarded"
      | _ -> "-"
    else
      String.concat ","
        (List.map (fun (v, _) -> label_of xtree v) step.matches)
  in
  let activity =
    match step.propagations, step.undos with
    | 0, 0 -> ""
    | p, 0 -> Format.sprintf "  +%d prop" p
    | 0, u -> Format.sprintf "  -%d undo" u
    | p, u -> Format.sprintf "  +%d prop -%d undo" p u
  in
  Format.fprintf ppf "%3d %6s  %-12s %-12s %a%s" step.index offset event
    matches
    (pp_looking_for ~xtree)
    step.looking_for activity

let pp ~xtree ppf t =
  Format.fprintf ppf "%3s %6s  %-12s %-12s %s@." "#" "byte" "event" "matches"
    "looking-for set after the event";
  List.iter (fun step -> Format.fprintf ppf "%a@." (pp_step ~xtree) step) t.steps;
  Format.fprintf ppf "result: %a@." Result_set.pp t.result;
  Format.fprintf ppf "stats:  %a@." Stats.pp t.stats
