(** Execution tracing: reproduce the paper's Table 2 walkthrough for any
    expression and document.

    Each element event becomes one trace step recording which x-nodes the
    element matched (the table's "Matches" column), the looking-for set
    after the event, and the propagation/undo activity the event caused.
    Intended for debugging, teaching and the test suite; the [xaos trace]
    CLI command renders it. Works on or-free expressions (one engine):
    expand with {!Xaos_xpath.Dnf} and trace disjuncts separately. *)

type step = {
  index : int;  (** 1-based; the paper numbers the virtual Root start 1,
                    so real element events start at 2 *)
  event : Xaos_xml.Event.t;  (** the element event *)
  pos : Xaos_xml.Sax.position option;
      (** document position just past the event's token — the row's byte
          offset; [None] when tracing a bare event list *)
  matches : (int * Item.t) list;
      (** x-nodes the element matched (start: just registered; end: about
          to be resolved) *)
  looking_for : (int * Engine.level_requirement) list;
      (** the derived looking-for set {e after} the event *)
  propagations : int;  (** placements performed by this event *)
  undos : int;  (** optimistic placements revoked by this event *)
  discarded : bool;  (** start events only: the element was not relevant *)
}

type t = {
  steps : step list;
  result : Result_set.t;
  stats : Stats.t;
}

val run :
  ?config:Engine.config -> Xaos_xpath.Xdag.t -> Xaos_xml.Event.t list -> t
(** Evaluate while recording; text/comment events contribute to text
    tests but produce no steps, as in the paper. Steps carry no
    positions — see {!run_positioned}/{!run_sax} for offsets. *)

val run_positioned :
  ?config:Engine.config -> Xaos_xpath.Xdag.t ->
  (Xaos_xml.Event.t * Xaos_xml.Sax.position option) list -> t
(** As {!run}, with a document position attached to each event. *)

val run_sax : ?config:Engine.config -> Xaos_xpath.Xdag.t -> Xaos_xml.Sax.t -> t
(** Pull events from a parser, stamping each step with the parser
    position — what [xaos trace] runs.
    @raise Xaos_xml.Sax.Error on ill-formed input. *)

val run_string :
  ?config:Engine.config -> Xaos_xpath.Xdag.t -> string -> t
(** {!run_sax} over an in-memory document.
    @raise Xaos_xml.Sax.Error on ill-formed input. *)

val pp_step :
  xtree:Xaos_xpath.Xtree.t -> Format.formatter -> step -> unit
(** One table row, e.g.
    [5  E:W@3             -            {(Y,inf), (Z,inf), (U,3)}]. *)

val pp : xtree:Xaos_xpath.Xtree.t -> Format.formatter -> t -> unit
(** The whole table plus the result line. *)
