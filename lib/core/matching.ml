type state =
  | Pending
  | Satisfied
  | Refuted

(* Telemetry hook points; flag-guarded no-ops unless a sink is
   installed. Refutation and undo live here rather than in [Engine]
   because the recursive undo cascade never surfaces there. *)
let counter_refuted =
  Xaos_obs.Telemetry.counter ~help:"matching structures conclusively refuted"
    "xaos_engine_structures_refuted_total"

let counter_undos =
  Xaos_obs.Telemetry.counter
    ~help:"optimistic placements removed by the refutation cascade"
    "xaos_engine_undos_total"

(* A pointer slot is a growable array of entries supporting O(1) removal
   by swap-with-last: each entry knows its current index, and the
   placement record kept by the child points at the entry. Without this,
   undoing optimistic propagation would rescan the whole submatching per
   refutation — quadratic on match-rich documents. *)
type slot_store = {
  mutable entries : entry array;
  mutable len : int;
}

and entry = {
  e_child : t;
  mutable e_index : int;
}

and slot =
  | Pointers of slot_store
  | Counter of int ref

and t = {
  serial : int;
  xnode : int;
  item : Item.t;
  slots : slot array;
  mutable placements : placement list;
  mutable state : state;
  mutable sat_byte : int;
      (* stream byte offset when this structure first became Satisfied;
         -1 until then (and again after a refutation: a superseded
         satisfaction must not leak into another structure's latency).
         Subtracting it from the offset at emission time gives the
         result's emission latency in document bytes. *)
  mutable undecided : int;
      (* earliest-decision bookkeeping: live placements into this
         structure whose child is not yet [stable]. Incremented by
         {!place}, decremented when the child is refuted (here) or
         latched stable (by the engine). 0 means every current slot
         entry is final. *)
  mutable stable : bool;
      (* latched by the engine: this structure is certain to be
         [Satisfied] in the completed document and can never be refuted.
         Monotone — never unset. *)
  mutable anchored : bool;
      (* latched by the engine: certainly reachable from the final
         satisfied root structure, i.e. part of a total matching. *)
  mutable emitted : bool;
      (* earliest mode: [on_match] already fired for this structure;
         the end-of-run collection must not emit it again *)
  mutable early_pushed : bool;
      (* earliest mode: this structure latched stable while still open
         and was pushed into its consistent forward-axis targets right
         then; its own resolution must not push it a second time *)
}

and placement = {
  p_target : t;
  p_slot : int;
  p_entry : entry option;  (* None when the slot is a counter *)
}

let create ~serial ~xnode ~item ~pointer_slots =
  let slots =
    Array.map
      (fun pointer ->
        if pointer then Pointers { entries = [||]; len = 0 }
        else Counter (ref 0))
      pointer_slots
  in
  { serial; xnode; item; slots; placements = []; state = Pending;
    sat_byte = -1; undecided = 0; stable = false; anchored = false;
    emitted = false; early_pushed = false }

(* Rough heap footprint of one structure in bytes: the record and item,
   the slot array with one store header (or counter ref) per slot, an
   amortized placement cell per slot, plus the tag string. An estimate,
   not an exact measurement — its job is to scale with what the engine
   retains so the relevance ratio can be tracked per run. *)
let approx_bytes t =
  let words = 12 + (3 * Array.length t.slots) in
  (Sys.word_size / 8 * words) + String.length (Item.tag t.item)

let store_push store entry =
  let capacity = Array.length store.entries in
  if store.len = capacity then begin
    let grown = Array.make (max 4 (2 * capacity)) entry in
    Array.blit store.entries 0 grown 0 store.len;
    store.entries <- grown
  end;
  store.entries.(store.len) <- entry;
  entry.e_index <- store.len;
  store.len <- store.len + 1

let store_remove store entry =
  let i = entry.e_index in
  let last = store.len - 1 in
  let moved = store.entries.(last) in
  store.entries.(i) <- moved;
  moved.e_index <- i;
  store.len <- last

let store_iter f store =
  for i = 0 to store.len - 1 do
    f store.entries.(i).e_child
  done

let store_fold f init store =
  let acc = ref init in
  for i = 0 to store.len - 1 do
    acc := f !acc store.entries.(i).e_child
  done;
  !acc

let place ~child ~target ~slot =
  let p_entry =
    match target.slots.(slot) with
    | Pointers store ->
      let entry = { e_child = child; e_index = 0 } in
      store_push store entry;
      Some entry
    | Counter n ->
      incr n;
      None
  in
  if not child.stable then target.undecided <- target.undecided + 1;
  child.placements <- { p_target = target; p_slot = slot; p_entry } :: child.placements

let slot_filled t i =
  match t.slots.(i) with
  | Pointers store -> store.len > 0
  | Counter n -> !n > 0

let satisfied_now t =
  let n = Array.length t.slots in
  let rec loop i = i >= n || (slot_filled t i && loop (i + 1)) in
  loop 0

(* Remove the child's entry from the target slot; true if it emptied. *)
let remove_placement { p_target; p_slot; p_entry } =
  match p_target.slots.(p_slot), p_entry with
  | Pointers store, Some entry ->
    store_remove store entry;
    store.len = 0
  | Counter n, None ->
    decr n;
    !n = 0
  | Pointers _, None | Counter _, Some _ -> assert false

let refute ?(on_undo = fun (_ : t) -> ()) ~stats t =
  let rec go t =
    if t.state <> Refuted then begin
      t.state <- Refuted;
      (* a refuted structure was never decided: whatever satisfaction it
         had is superseded, so its byte stamp must not survive *)
      t.sat_byte <- -1;
      stats.Stats.structures_refuted <- stats.Stats.structures_refuted + 1;
      stats.Stats.retained_bytes <-
        stats.Stats.retained_bytes - approx_bytes t;
      Xaos_obs.Telemetry.incr counter_refuted;
      if Xaos_obs.Tracer.enabled () then
        Xaos_obs.Tracer.refuted ~serial:t.serial;
      let placements = t.placements in
      t.placements <- [];
      List.iter
        (fun placement ->
          let target = placement.p_target in
          if target.state <> Refuted then begin
            stats.Stats.undos <- stats.Stats.undos + 1;
            Xaos_obs.Telemetry.incr counter_undos;
            if Xaos_obs.Tracer.enabled () then
              Xaos_obs.Tracer.undone ~child:t.serial ~target:target.serial;
            let emptied = remove_placement placement in
            (* [t] is refuted, so it was never [stable] and was counted
               in the target's undecided placements at [place] time *)
            target.undecided <- target.undecided - 1;
            (* A pending target performs its own satisfaction check at
               resolution time; only a satisfied one must be revoked. *)
            if emptied && target.state = Satisfied then go target
            else on_undo target
          end)
        placements
    end
  in
  go t

let pointer_store t i =
  match t.slots.(i) with
  | Pointers store -> store
  | Counter _ ->
    invalid_arg
      "Matching: operation requires pointer slots (disable the \
       boolean-subtree optimization)"

let count_matchings t =
  let memo = Hashtbl.create 64 in
  let rec count t =
    match Hashtbl.find_opt memo t.serial with
    | Some n -> n
    | None ->
      let n = ref 1 in
      Array.iteri
        (fun i _ ->
          let store = pointer_store t i in
          n := !n * store_fold (fun acc m -> acc + count m) 0 store)
        t.slots;
      Hashtbl.add memo t.serial !n;
      !n
  in
  count t

let collect_outputs ?(on_emit = fun (_ : t) -> ()) ~is_output t =
  let visited = Hashtbl.create 64 in
  let acc = ref [] in
  let rec visit t =
    if not (Hashtbl.mem visited t.serial) then begin
      Hashtbl.add visited t.serial ();
      if is_output t.xnode then begin
        acc := t.item :: !acc;
        on_emit t;
        if Xaos_obs.Tracer.enabled () then
          Xaos_obs.Tracer.emitted ~serial:t.serial ~item_id:t.item.Item.id
      end;
      Array.iter
        (function
          | Pointers store -> store_iter visit store
          | Counter _ -> ())
        t.slots
    end
  in
  visit t;
  !acc

(* Partial tuples are assoc lists from output x-node id to item, kept
   sorted by x-node id so that structural comparison dedups them. The two
   sides always cover disjoint x-tree subtrees, so keys never collide. *)
let rec merge_tuple a b =
  match a, b with
  | [], t | t, [] -> t
  | (ka, va) :: ta, (kb, vb) :: tb ->
    if ka < kb then (ka, va) :: merge_tuple ta b
    else if kb < ka then (kb, vb) :: merge_tuple a tb
    else (ka, va) :: merge_tuple ta tb

let enumerate_tuples ~outputs t =
  let output_set = Hashtbl.create 8 in
  Array.iter (fun id -> Hashtbl.replace output_set id ()) outputs;
  let memo = Hashtbl.create 64 in
  (* tuples t = the output projections of all matchings rooted here *)
  let rec tuples t =
    match Hashtbl.find_opt memo t.serial with
    | Some ts -> ts
    | None ->
      let own =
        if Hashtbl.mem output_set t.xnode then [ [ (t.xnode, t.item) ] ]
        else [ [] ]
      in
      let acc = ref own in
      Array.iteri
        (fun i _slot ->
          let store = pointer_store t i in
          let slot_tuples =
            store_fold (fun acc m -> List.rev_append (tuples m) acc) [] store
          in
          acc :=
            List.concat_map
              (fun partial ->
                List.map (fun st -> merge_tuple partial st) slot_tuples)
              !acc)
        t.slots;
      let result = List.sort_uniq compare !acc in
      Hashtbl.add memo t.serial result;
      result
  in
  let complete = tuples t in
  let order = Array.mapi (fun i id -> (id, i)) outputs in
  List.filter_map
    (fun tuple ->
      if List.length tuple <> Array.length outputs then None
      else begin
        let arr = Array.make (Array.length outputs) None in
        List.iter
          (fun (xnode, item) ->
            Array.iter
              (fun (id, i) -> if id = xnode then arr.(i) <- Some item)
              order)
          tuple;
        if Array.for_all Option.is_some arr then
          Some (Array.map Option.get arr)
        else None
      end)
    complete
  |> List.sort_uniq compare

let pp ppf t =
  let state =
    match t.state with
    | Pending -> "pending"
    | Satisfied -> "sat"
    | Refuted -> "refuted"
  in
  Format.fprintf ppf "M(%a : x%d) %s" Item.pp t.item t.xnode state
