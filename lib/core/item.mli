(** A document element as reported in query results.

    The streaming engine never materializes the document, so results are
    element descriptors rather than tree nodes. Ids are assigned in
    document order with the virtual root at 0, matching
    {!Xaos_xml.Dom.element.id}, which lets tests compare streaming results
    against the DOM baseline directly. *)

type t = {
  id : int;  (** document-order identifier (paper's [id]) *)
  tag : string;
  level : int;  (** distance from the virtual root (paper's [level]) *)
}

val compare : t -> t -> int
(** Document order (by [id]). *)

val equal : t -> t -> bool
(** Same element: id equality. Ids are unique per document (they are
    document-order element identifiers), so [equal] agrees with
    [compare] — two items never compare equal while being [not equal]. *)

val pp : Format.formatter -> t -> unit
(** The paper's notation, e.g. [W(7)@4] for W with id 7 at level 4. *)

val of_element : Xaos_xml.Dom.element -> t

val sort_dedup : t list -> t list
(** Document order, duplicates removed. *)
