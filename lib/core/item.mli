(** A document element as reported in query results.

    The streaming engine never materializes the document, so results are
    element descriptors rather than tree nodes. Ids are assigned in
    document order with the virtual root at 0, matching
    {!Xaos_xml.Dom.element.id}, which lets tests compare streaming results
    against the DOM baseline directly.

    The element name is stored as its interned {!Xaos_xml.Symbol.t}; the
    string is rendered back (an O(1) table load) only at emission and
    serialization through {!tag} / {!pp}. *)

type t = {
  id : int;  (** document-order identifier (paper's [id]) *)
  sym : Xaos_xml.Symbol.t;  (** interned element name *)
  level : int;  (** distance from the virtual root (paper's [level]) *)
}

val compare : t -> t -> int
(** Document order (by [id]). *)

val equal : t -> t -> bool
(** Same element: id equality. Ids are unique per document (they are
    document-order element identifiers), so [equal] agrees with
    [compare] — two items never compare equal while being [not equal]. *)

val make : id:int -> tag:string -> level:int -> t
(** Convenience constructor interning [tag]; intended for tests and call
    sites that start from a string. *)

val tag : t -> string
(** The element name, rendered from the symbol. *)

val pp : Format.formatter -> t -> unit
(** The paper's notation, e.g. [W(7)@4] for W with id 7 at level 4. *)

val of_element : Xaos_xml.Dom.element -> t

val sort_dedup : t list -> t list
(** Document order, duplicates removed. *)
