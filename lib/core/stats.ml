type t = {
  mutable elements_total : int;
  mutable elements_stored : int;
  mutable elements_discarded : int;
  mutable structures_created : int;
  mutable structures_refuted : int;
  mutable live_peak : int;
  mutable propagations : int;
  mutable undos : int;
  mutable max_depth : int;
  mutable parse_faults : int;
  mutable retained_bytes : int;
  mutable retained_peak_bytes : int;
}

let create () =
  {
    elements_total = 0;
    elements_stored = 0;
    elements_discarded = 0;
    structures_created = 0;
    structures_refuted = 0;
    live_peak = 0;
    propagations = 0;
    undos = 0;
    max_depth = 0;
    parse_faults = 0;
    retained_bytes = 0;
    retained_peak_bytes = 0;
  }

let discarded_fraction t =
  if t.elements_total = 0 then 0.
  else float_of_int t.elements_discarded /. float_of_int t.elements_total

let add a b =
  {
    elements_total = a.elements_total + b.elements_total;
    elements_stored = a.elements_stored + b.elements_stored;
    elements_discarded = a.elements_discarded + b.elements_discarded;
    structures_created = a.structures_created + b.structures_created;
    structures_refuted = a.structures_refuted + b.structures_refuted;
    (* disjunct engines hold their structures simultaneously, so the sum
       is the faithful pressure figure *)
    live_peak = a.live_peak + b.live_peak;
    propagations = a.propagations + b.propagations;
    undos = a.undos + b.undos;
    max_depth = max a.max_depth b.max_depth;
    parse_faults = a.parse_faults + b.parse_faults;
    retained_bytes = a.retained_bytes + b.retained_bytes;
    retained_peak_bytes = a.retained_peak_bytes + b.retained_peak_bytes;
  }

let to_fields t =
  [
    ("elements_total", t.elements_total);
    ("elements_stored", t.elements_stored);
    ("elements_discarded", t.elements_discarded);
    ("structures_created", t.structures_created);
    ("structures_refuted", t.structures_refuted);
    ("live_peak", t.live_peak);
    ("propagations", t.propagations);
    ("undos", t.undos);
    ("max_depth", t.max_depth);
    ("parse_faults", t.parse_faults);
    ("retained_bytes", t.retained_bytes);
    ("retained_peak_bytes", t.retained_peak_bytes);
  ]

let pp ppf t =
  Format.fprintf ppf
    "elements: %d total, %d stored, %d discarded (%.2f%%); structures: %d \
     created, %d refuted, %d live peak; propagations: %d; undos: %d; max \
     depth: %d; parse faults: %d; retained bytes: %d (peak %d)"
    t.elements_total t.elements_stored t.elements_discarded
    (100. *. discarded_fraction t)
    t.structures_created t.structures_refuted t.live_peak t.propagations
    t.undos t.max_depth t.parse_faults t.retained_bytes t.retained_peak_bytes
