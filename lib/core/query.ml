module Ast = Xaos_xpath.Ast
module Tel = Xaos_obs.Telemetry

let span_compile =
  Tel.span ~help:"time compiling expressions (parse, DNF, x-tree, x-dag)"
    "xaos_query_compile_seconds"

let counter_compiled =
  Tel.counter ~help:"queries compiled" "xaos_query_compiled_total"

let counter_runs =
  Tel.counter ~help:"query runs started" "xaos_query_runs_total"

type t = {
  path : Ast.path;
  config : Engine.config;
  dags : Xaos_xpath.Xdag.t list;
  class_key : string;
  gate_prefixes : (Ast.axis * Ast.node_test) list list option;
}

(* --- Equivalence-class key ---------------------------------------------- *)

(* Two queries are evaluation-equivalent iff they compile to the same
   multiset of x-dags under the same engine configuration: the engine's
   behaviour (and hence results, emission timing, budget consumption) is
   a pure function of (config, dags). Disjunct keys are sorted so
   [a or b] and [b or a] share a class. *)
let config_fingerprint (c : Engine.config) =
  Printf.sprintf "b=%b;r=%b;e=%s" c.Engine.boolean_subtrees
    c.Engine.relevance_filter
    (match c.Engine.emission with
     | Engine.Deferred -> "d"
     | Engine.Eager -> "g"
     | Engine.Earliest -> "e")

let class_key_of ~config dags =
  let keys = List.sort compare (List.map Xaos_xpath.Xdag.key dags) in
  Digest.to_hex
    (Digest.string (String.concat "," (config_fingerprint config :: keys)))

(* --- Safe shared-prefix extraction -------------------------------------- *)

(* The gate front-end (see {!Query_set}) keeps a class engine dormant
   until a shared-prefix automaton accepts one of its disjuncts'
   prefixes, then attaches the engine mid-document via the open-chain
   replay used for runtime registration. Replay re-delivers the start
   events of the currently-open ancestor chain (with attributes), and
   nothing else. A prefix is only safe if every match the full query
   could produce is still produced by an engine attached at the first
   prefix acceptance.

   The maximal candidate prefix is the leading run of predicate-free
   child/descendant steps. The remainder is checked by zone: walking the
   remaining steps from the prefix node, each step's matches live either
   in the subtree of the prefix match ([`Subtree]) or on/above it
   ([`Up], reached through a backward axis). Subtree elements open after
   acceptance, so every event that concerns them is seen live. Up-zone
   elements are on the open ancestor chain at acceptance, so their start
   events (and attributes) are covered by replay — but a forward axis
   *out of* the up zone may land on elements that closed before
   acceptance (e.g. [//c/ancestor::d//e] with [<e>] closing before [<c>]
   opens), and a text test on an up-zone element needs string value
   accumulated before acceptance; both make the prefix unsafe. Absolute
   predicate paths restart from the root (up zone) and are likewise
   unsafe. *)
let rec steps_safe zone (steps : Ast.step list) =
  match steps with
  | [] -> true
  | step :: rest ->
    let zone' =
      match zone, step.Ast.axis with
      | `Subtree, (Ast.Child | Ast.Descendant | Ast.Self
                  | Ast.Descendant_or_self) -> Some `Subtree
      | `Subtree, (Ast.Parent | Ast.Ancestor | Ast.Ancestor_or_self) ->
        Some `Up
      | `Up, (Ast.Self | Ast.Parent | Ast.Ancestor | Ast.Ancestor_or_self) ->
        Some `Up
      | `Up, (Ast.Child | Ast.Descendant | Ast.Descendant_or_self) -> None
    in
    (match zone' with
     | None -> false
     | Some zone' ->
       List.for_all (pred_safe zone') step.Ast.predicates
       && steps_safe zone' rest)

and pred_safe zone = function
  | Ast.Attr _ -> true
  | Ast.Text _ -> zone = `Subtree
  | Ast.Path p -> (not p.Ast.absolute) && steps_safe zone p.Ast.steps
  | Ast.And (a, b) -> pred_safe zone a && pred_safe zone b
  | Ast.Or (a, b) -> pred_safe zone a && pred_safe zone b

let gate_prefix_of_path (p : Ast.path) =
  let rec take acc = function
    | ({ Ast.axis = Ast.Child | Ast.Descendant; predicates = []; _ } as s)
      :: rest ->
      take ((s.Ast.axis, s.Ast.test) :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let prefix, rest = take [] p.Ast.steps in
  if prefix = [] then None
  else if steps_safe `Subtree rest then Some prefix
  else None

let compile_path ?(config = Engine.default_config) ?(or_limit = 64) path =
  Tel.time span_compile (fun () ->
      match Xaos_xpath.Dnf.expand_bounded ~limit:or_limit path with
      | Error msg -> Error msg
      | Ok disjuncts ->
        let compiled =
          List.filter_map
            (fun disjunct ->
              let xtree = Xaos_xpath.Xtree.of_path disjunct in
              match Xaos_xpath.Xdag.of_xtree xtree with
              | dag -> Some (disjunct, Xaos_xpath.Xdag.intern dag)
              | exception Xaos_xpath.Xdag.Unsatisfiable -> None)
            disjuncts
        in
        let dags = List.map snd compiled in
        (* A class is gateable only if every satisfiable disjunct has a
           safe nonempty prefix; the gate attaches the whole class at
           the first acceptance of any of them. With no satisfiable
           disjuncts the query matches nothing: [Some []] keeps it
           dormant forever. *)
        let gate_prefixes =
          let prefixes =
            List.map (fun (d, _) -> gate_prefix_of_path d) compiled
          in
          if List.for_all Option.is_some prefixes then
            Some (List.filter_map Fun.id prefixes)
          else None
        in
        (* Warm the symbol table with every name test so runs start with
           the names already interned. Engines re-resolve their label
           symbols at creation time (see [Engine.create]), so compiled
           queries survive a [Symbol.reset] between documents; this pass
           only ensures compile, not first-event, pays the hashing. *)
        List.iter
          (fun (dag : Xaos_xpath.Xdag.t) ->
            Array.iter
              (fun (node : Xaos_xpath.Xtree.xnode) ->
                match node.label with
                | Xaos_xpath.Xtree.Test (Ast.Name n) ->
                  ignore (Xaos_xml.Symbol.intern n : Xaos_xml.Symbol.t)
                | Xaos_xpath.Xtree.Test Ast.Wildcard | Xaos_xpath.Xtree.Root
                  -> ())
              dag.xtree.nodes)
          dags;
        Tel.incr counter_compiled;
        Ok
          { path; config; dags;
            class_key = class_key_of ~config dags;
            gate_prefixes })

let compile ?config ?or_limit input =
  match Xaos_xpath.Parser.parse_result input with
  | Error msg -> Error msg
  | Ok path -> compile_path ?config ?or_limit path

let compile_exn ?config ?or_limit input =
  match compile ?config ?or_limit input with
  | Ok q -> q
  | Error msg -> invalid_arg ("Query.compile_exn: " ^ msg)

let path q = q.path

let emission q = q.config.Engine.emission

let disjuncts q = q.dags

let class_key q = q.class_key

let gate_prefixes q = q.gate_prefixes

let uses_backward_axes q = Ast.uses_backward_axis q.path

type run = {
  engines : Engine.t list;
  mutable result : Result_set.t option;
}

let start ?on_match ?budget q =
  Tel.incr counter_runs;
  (* Disjunct engines report matches independently, so an item matched by
     several disjuncts would reach the callback once per disjunct —
     result sets dedup at union time, the callback boundary must too.
     Ids are document-order element ids, identical across engines fed
     the same events. *)
  let on_match =
    match on_match, q.dags with
    | Some f, _ :: _ :: _ ->
      let seen : (int, unit) Hashtbl.t = Hashtbl.create 32 in
      Some
        (fun (item : Item.t) ->
          if not (Hashtbl.mem seen item.id) then begin
            Hashtbl.add seen item.id ();
            f item
          end)
    | _ -> on_match
  in
  let engines =
    List.map
      (fun dag -> Engine.create ~config:q.config ?budget ?on_match dag)
      q.dags
  in
  { engines; result = None }

let feed run event = List.iter (fun e -> Engine.feed e event) run.engines

(* Interest aggregation across disjunct engines: the run is interested in
   a name iff any engine is, so per-engine transitions are counted and the
   listener only sees run-level 0 <-> nonzero changes. Counts are keyed by
   interned symbol — transitions never hash a string. The single-disjunct
   common case subscribes the listener directly. *)
let subscribe_interest run (listener : Engine.interest_listener) =
  match run.engines with
  | [] -> ()
  | [ e ] -> Engine.subscribe_interest e listener
  | engines ->
    let sym_counts : (Xaos_xml.Symbol.t, int ref) Hashtbl.t =
      Hashtbl.create 16
    in
    let wildcard = ref 0 in
    let aggregated =
      {
        Engine.on_sym =
          (fun sym on ->
            let c =
              match Hashtbl.find_opt sym_counts sym with
              | Some c -> c
              | None ->
                let c = ref 0 in
                Hashtbl.add sym_counts sym c;
                c
            in
            if on then begin
              incr c;
              if !c = 1 then listener.Engine.on_sym sym true
            end
            else begin
              decr c;
              if !c = 0 then listener.Engine.on_sym sym false
            end);
        on_wildcard =
          (fun on ->
            if on then begin
              incr wildcard;
              if !wildcard = 1 then listener.Engine.on_wildcard true
            end
            else begin
              decr wildcard;
              if !wildcard = 0 then listener.Engine.on_wildcard false
            end);
      }
    in
    List.iter (fun e -> Engine.subscribe_interest e aggregated) engines

let wants_text run = List.exists Engine.wants_text run.engines

let sync_next_id run id =
  List.iter (fun e -> Engine.sync_next_id e id) run.engines

let set_stream_byte run b =
  List.iter (fun e -> Engine.set_stream_byte e b) run.engines

let finish run =
  match run.result with
  | Some r -> r
  | None ->
    let r =
      match List.map Engine.finish run.engines with
      | [] -> Result_set.empty
      | first :: rest -> List.fold_left Result_set.union first rest
    in
    run.result <- Some r;
    r

let finish_partial run =
  match run.result with
  | Some r -> r
  | None ->
    let r =
      match List.map Engine.abort run.engines with
      | [] -> Result_set.empty
      | first :: rest -> List.fold_left Result_set.union first rest
    in
    run.result <- Some r;
    r

let run_stats run =
  List.fold_left
    (fun acc e -> Stats.add acc (Engine.stats e))
    (Stats.create ()) run.engines

let retained_structures run =
  List.fold_left (fun acc e -> acc + Engine.retained_structures e) 0 run.engines

let retained_bytes run =
  List.fold_left
    (fun acc e -> acc + (Engine.stats e).Stats.retained_bytes)
    0 run.engines

let live_structures run =
  List.fold_left
    (fun acc e ->
      let s = Engine.stats e in
      acc + (s.Stats.structures_created - s.Stats.structures_refuted))
    0 run.engines

let looking_for_size run =
  List.fold_left
    (fun acc e -> acc + List.length (Engine.looking_for e))
    0 run.engines

let run_events q events =
  let r = start q in
  List.iter (feed r) events;
  finish r

let run_sax q parser =
  let r = start q in
  Xaos_xml.Sax.iter (feed r) parser;
  finish r

let run_string q input = run_sax q (Xaos_xml.Sax.of_string input)

let run_file q file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> run_sax q (Xaos_xml.Sax.of_channel ic))

let feed_doc run doc =
  List.iter (fun e -> Engine.feed_doc e doc) run.engines

let run_doc q doc =
  let r = start q in
  feed_doc r doc;
  finish r

let with_stats runner q input =
  let r = start q in
  runner r input;
  let result = finish r in
  (result, run_stats r)

let run_string_with_stats q input =
  with_stats
    (fun r input -> Xaos_xml.Sax.iter (feed r) (Xaos_xml.Sax.of_string input))
    q input

let run_doc_with_stats q doc = with_stats feed_doc q doc

let run_file_with_stats q file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      with_stats
        (fun r ic -> Xaos_xml.Sax.iter (feed r) (Xaos_xml.Sax.of_channel ic))
        q ic)
