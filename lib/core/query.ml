module Ast = Xaos_xpath.Ast
module Tel = Xaos_obs.Telemetry

let span_compile =
  Tel.span ~help:"time compiling expressions (parse, DNF, x-tree, x-dag)"
    "xaos_query_compile_seconds"

let counter_compiled =
  Tel.counter ~help:"queries compiled" "xaos_query_compiled_total"

let counter_runs =
  Tel.counter ~help:"query runs started" "xaos_query_runs_total"

type t = {
  path : Ast.path;
  config : Engine.config;
  dags : Xaos_xpath.Xdag.t list;
}

let compile_path ?(config = Engine.default_config) ?(or_limit = 64) path =
  Tel.time span_compile (fun () ->
      match Xaos_xpath.Dnf.expand_bounded ~limit:or_limit path with
      | Error msg -> Error msg
      | Ok disjuncts ->
        let dags =
          List.filter_map
            (fun disjunct ->
              let xtree = Xaos_xpath.Xtree.of_path disjunct in
              match Xaos_xpath.Xdag.of_xtree xtree with
              | dag -> Some dag
              | exception Xaos_xpath.Xdag.Unsatisfiable -> None)
            disjuncts
        in
        (* Warm the symbol table with every name test so runs start with
           the names already interned. Engines re-resolve their label
           symbols at creation time (see [Engine.create]), so compiled
           queries survive a [Symbol.reset] between documents; this pass
           only ensures compile, not first-event, pays the hashing. *)
        List.iter
          (fun (dag : Xaos_xpath.Xdag.t) ->
            Array.iter
              (fun (node : Xaos_xpath.Xtree.xnode) ->
                match node.label with
                | Xaos_xpath.Xtree.Test (Ast.Name n) ->
                  ignore (Xaos_xml.Symbol.intern n : Xaos_xml.Symbol.t)
                | Xaos_xpath.Xtree.Test Ast.Wildcard | Xaos_xpath.Xtree.Root
                  -> ())
              dag.xtree.nodes)
          dags;
        Tel.incr counter_compiled;
        Ok { path; config; dags })

let compile ?config ?or_limit input =
  match Xaos_xpath.Parser.parse_result input with
  | Error msg -> Error msg
  | Ok path -> compile_path ?config ?or_limit path

let compile_exn ?config ?or_limit input =
  match compile ?config ?or_limit input with
  | Ok q -> q
  | Error msg -> invalid_arg ("Query.compile_exn: " ^ msg)

let path q = q.path

let emission q = q.config.Engine.emission

let disjuncts q = q.dags

let uses_backward_axes q = Ast.uses_backward_axis q.path

type run = {
  engines : Engine.t list;
  mutable result : Result_set.t option;
}

let start ?on_match ?budget q =
  Tel.incr counter_runs;
  (* Disjunct engines report matches independently, so an item matched by
     several disjuncts would reach the callback once per disjunct —
     result sets dedup at union time, the callback boundary must too.
     Ids are document-order element ids, identical across engines fed
     the same events. *)
  let on_match =
    match on_match, q.dags with
    | Some f, _ :: _ :: _ ->
      let seen : (int, unit) Hashtbl.t = Hashtbl.create 32 in
      Some
        (fun (item : Item.t) ->
          if not (Hashtbl.mem seen item.id) then begin
            Hashtbl.add seen item.id ();
            f item
          end)
    | _ -> on_match
  in
  let engines =
    List.map
      (fun dag -> Engine.create ~config:q.config ?budget ?on_match dag)
      q.dags
  in
  { engines; result = None }

let feed run event = List.iter (fun e -> Engine.feed e event) run.engines

(* Interest aggregation across disjunct engines: the run is interested in
   a name iff any engine is, so per-engine transitions are counted and the
   listener only sees run-level 0 <-> nonzero changes. Counts are keyed by
   interned symbol — transitions never hash a string. The single-disjunct
   common case subscribes the listener directly. *)
let subscribe_interest run (listener : Engine.interest_listener) =
  match run.engines with
  | [] -> ()
  | [ e ] -> Engine.subscribe_interest e listener
  | engines ->
    let sym_counts : (Xaos_xml.Symbol.t, int ref) Hashtbl.t =
      Hashtbl.create 16
    in
    let wildcard = ref 0 in
    let aggregated =
      {
        Engine.on_sym =
          (fun sym on ->
            let c =
              match Hashtbl.find_opt sym_counts sym with
              | Some c -> c
              | None ->
                let c = ref 0 in
                Hashtbl.add sym_counts sym c;
                c
            in
            if on then begin
              incr c;
              if !c = 1 then listener.Engine.on_sym sym true
            end
            else begin
              decr c;
              if !c = 0 then listener.Engine.on_sym sym false
            end);
        on_wildcard =
          (fun on ->
            if on then begin
              incr wildcard;
              if !wildcard = 1 then listener.Engine.on_wildcard true
            end
            else begin
              decr wildcard;
              if !wildcard = 0 then listener.Engine.on_wildcard false
            end);
      }
    in
    List.iter (fun e -> Engine.subscribe_interest e aggregated) engines

let wants_text run = List.exists Engine.wants_text run.engines

let sync_next_id run id =
  List.iter (fun e -> Engine.sync_next_id e id) run.engines

let set_stream_byte run b =
  List.iter (fun e -> Engine.set_stream_byte e b) run.engines

let finish run =
  match run.result with
  | Some r -> r
  | None ->
    let r =
      match List.map Engine.finish run.engines with
      | [] -> Result_set.empty
      | first :: rest -> List.fold_left Result_set.union first rest
    in
    run.result <- Some r;
    r

let finish_partial run =
  match run.result with
  | Some r -> r
  | None ->
    let r =
      match List.map Engine.abort run.engines with
      | [] -> Result_set.empty
      | first :: rest -> List.fold_left Result_set.union first rest
    in
    run.result <- Some r;
    r

let run_stats run =
  List.fold_left
    (fun acc e -> Stats.add acc (Engine.stats e))
    (Stats.create ()) run.engines

let retained_structures run =
  List.fold_left (fun acc e -> acc + Engine.retained_structures e) 0 run.engines

let retained_bytes run =
  List.fold_left
    (fun acc e -> acc + (Engine.stats e).Stats.retained_bytes)
    0 run.engines

let live_structures run =
  List.fold_left
    (fun acc e ->
      let s = Engine.stats e in
      acc + (s.Stats.structures_created - s.Stats.structures_refuted))
    0 run.engines

let looking_for_size run =
  List.fold_left
    (fun acc e -> acc + List.length (Engine.looking_for e))
    0 run.engines

let run_events q events =
  let r = start q in
  List.iter (feed r) events;
  finish r

let run_sax q parser =
  let r = start q in
  Xaos_xml.Sax.iter (feed r) parser;
  finish r

let run_string q input = run_sax q (Xaos_xml.Sax.of_string input)

let run_file q file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> run_sax q (Xaos_xml.Sax.of_channel ic))

let feed_doc run doc =
  List.iter (fun e -> Engine.feed_doc e doc) run.engines

let run_doc q doc =
  let r = start q in
  feed_doc r doc;
  finish r

let with_stats runner q input =
  let r = start q in
  runner r input;
  let result = finish r in
  (result, run_stats r)

let run_string_with_stats q input =
  with_stats
    (fun r input -> Xaos_xml.Sax.iter (feed r) (Xaos_xml.Sax.of_string input))
    q input

let run_doc_with_stats q doc = with_stats feed_doc q doc

let run_file_with_stats q file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      with_stats
        (fun r ic -> Xaos_xml.Sax.iter (feed r) (Xaos_xml.Sax.of_channel ic))
        q ic)
