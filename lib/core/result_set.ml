type t = {
  items : Item.t list;
  tuples : Item.t array list option;
  matching_count : int option;
}

let empty = { items = []; tuples = None; matching_count = None }

(* Lexicographic, length first, elementwise by {!Item.compare} (ids are
   unique element identifiers, so id order is exact tuple identity). An
   explicit monomorphic comparison: the polymorphic [compare] it replaces
   would silently change meaning if the payload type ever grows fields
   that must not participate in identity. *)
let tuple_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else begin
    let rec loop i =
      if i = la then 0
      else
        let c = Item.compare a.(i) b.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0
  end

let union a b =
  {
    items = Item.sort_dedup (a.items @ b.items);
    tuples =
      (match a.tuples, b.tuples with
      | None, t | t, None -> t
      | Some x, Some y -> Some (List.sort_uniq tuple_compare (x @ y)));
    matching_count =
      (match a.matching_count, b.matching_count with
      | Some x, Some y -> Some (x + y)
      | _, _ -> None);
  }

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Item.pp)
    t.items;
  match t.tuples with
  | None -> ()
  | Some tuples ->
    Format.fprintf ppf " tuples: %d" (List.length tuples)
