type t = {
  queries : (string * Query.t) list;
}

let gauge_subscriptions =
  Xaos_obs.Telemetry.gauge ~help:"subscriptions in the last compiled set"
    "xaos_filter_subscriptions"

let counter_documents =
  Xaos_obs.Telemetry.counter ~help:"documents run through a query set"
    "xaos_filter_documents_total"

let counter_dispatched =
  Xaos_obs.Telemetry.counter
    ~help:"(element event, run) deliveries performed by query sets"
    "xaos_filter_events_dispatched_total"

let counter_suppressed =
  Xaos_obs.Telemetry.counter
    ~help:"(element event, run) deliveries suppressed by the shared \
           dispatch index"
    "xaos_filter_events_suppressed_total"

let of_queries queries =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (name, _) ->
      if Hashtbl.mem seen name then
        invalid_arg ("Query_set.of_queries: duplicate name " ^ name);
      Hashtbl.add seen name ())
    queries;
  Xaos_obs.Telemetry.set_gauge gauge_subscriptions (List.length queries);
  { queries }

let compile ?config pairs =
  (* accumulate every failing query: a large subscription set should need
     one round-trip to fix, not one per broken expression *)
  let compiled =
    List.map (fun (name, expression) -> (name, Query.compile ?config expression))
      pairs
  in
  let errors =
    List.filter_map
      (function
        | name, Error msg -> Some (Printf.sprintf "%s: %s" name msg)
        | _, Ok _ -> None)
      compiled
  in
  match errors with
  | [] ->
    Ok
      (of_queries
         (List.map
            (fun (name, result) -> (name, Result.get_ok result))
            compiled))
  | [ e ] -> Error e
  | es ->
    Error
      (Printf.sprintf "%d queries failed to compile:\n%s" (List.length es)
         (String.concat "\n" es))

let names t = List.map fst t.queries

let size t = List.length t.queries

type outcome = {
  query_name : string;
  items : Item.t list;
  aborted : bool;
}

type dispatch =
  | Shared
  | Naive

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

type run_state = {
  rs_id : int;
  rs_name : string;
  rs_run : Query.run;
  mutable rs_aborted : bool;
  mutable rs_stamp : int;
      (** last event stamp this run was collected for; dedupes a run
          reached through both its tag bucket and the wildcard bucket *)
}

type session = {
  mode : dispatch;
  runs : run_state array;
  mutable buckets : (int, run_state) Hashtbl.t option array;
      (** indexed by interned symbol id: runs whose current looking-for
          frontier contains an x-node with that name test (keyed by
          [rs_id]); grown on demand as interest callbacks mention new
          symbols. The per-event lookup is one array load — dispatch
          never hashes the element name. *)
  wildcard : (int, run_state) Hashtbl.t;
      (** runs whose frontier contains a wildcard x-node: interested in
          every element tag *)
  text_interested : (int, run_state) Hashtbl.t;
      (** runs with an open text-test buffer; recomputed after each
          delivered element event, the only points where it can change *)
  mutable delivery_stack : run_state list list;
      (** per open element (innermost first): the runs its start event
          was delivered to — its end event goes to exactly those *)
  mutable stamp : int;
  mutable next_id : int;
      (** document-order element counter, synced into delivered runs so
          suppressed events do not shift the ids of reported items *)
  mutable live : int;  (** runs not yet aborted *)
  mutable dispatched : int;
  mutable suppressed : int;
}

let bucket_add s sym rs =
  if sym >= Array.length s.buckets then begin
    let cap = max (sym + 1) (2 * Array.length s.buckets) in
    let grown = Array.make cap None in
    Array.blit s.buckets 0 grown 0 (Array.length s.buckets);
    s.buckets <- grown
  end;
  let bucket =
    match s.buckets.(sym) with
    | Some b -> b
    | None ->
      let b = Hashtbl.create 8 in
      s.buckets.(sym) <- Some b;
      b
  in
  Hashtbl.replace bucket rs.rs_id rs

let bucket_remove s sym rs =
  if sym < Array.length s.buckets then
    match s.buckets.(sym) with
    | None -> ()
    | Some b -> Hashtbl.remove b rs.rs_id

let start ?budget ?(dispatch = Shared) t =
  Xaos_obs.Telemetry.incr counter_documents;
  let runs =
    Array.of_list
      (List.mapi
         (fun i (name, q) ->
           {
             rs_id = i;
             rs_name = name;
             rs_run = Query.start ?budget q;
             rs_aborted = false;
             rs_stamp = -1;
           })
         t.queries)
  in
  let s =
    {
      mode = dispatch;
      runs;
      buckets = Array.make (max 16 (Xaos_xml.Symbol.count ())) None;
      wildcard = Hashtbl.create 16;
      text_interested = Hashtbl.create 16;
      delivery_stack = [];
      stamp = 0;
      next_id = 1;
      live = Array.length runs;
      dispatched = 0;
      suppressed = 0;
    }
  in
  (match dispatch with
  | Naive -> ()
  | Shared ->
    Array.iter
      (fun rs ->
        Query.subscribe_interest rs.rs_run
          {
            Engine.on_sym =
              (fun sym on ->
                if on then bucket_add s sym rs else bucket_remove s sym rs);
            on_wildcard =
              (fun on ->
                if on then Hashtbl.replace s.wildcard rs.rs_id rs
                else Hashtbl.remove s.wildcard rs.rs_id);
          })
      runs);
  s

(* Feed one event to one run; a budget trip aborts that run only. The
   partial result is extracted (and memoized) immediately, and the abort
   unwinds the run's open matches, which drains its dispatch buckets
   through the interest callbacks. *)
let feed_run s rs ev =
  if not rs.rs_aborted then begin
    try Query.feed rs.rs_run ev
    with Engine.Budget_exceeded _ ->
      rs.rs_aborted <- true;
      s.live <- s.live - 1;
      Hashtbl.remove s.text_interested rs.rs_id;
      ignore (Query.finish_partial rs.rs_run)
  end

(* After a delivered element event, the run's text interest may have
   changed (a text-test buffer opened or closed). *)
let refresh_text_interest s rs =
  if not rs.rs_aborted then begin
    if Query.wants_text rs.rs_run then
      Hashtbl.replace s.text_interested rs.rs_id rs
    else Hashtbl.remove s.text_interested rs.rs_id
  end

let collect_bucket acc stamp bucket =
  Hashtbl.fold
    (fun _ rs acc ->
      if rs.rs_stamp = stamp || rs.rs_aborted then acc
      else begin
        rs.rs_stamp <- stamp;
        rs :: acc
      end)
    bucket acc

let feed_shared s ev =
  match ev with
  | Xaos_xml.Event.Start_element { sym; _ } ->
    s.stamp <- s.stamp + 1;
    (* snapshot the interested runs before delivering: feeding a run can
       mutate the buckets (interest callbacks, budget aborts) *)
    let interested =
      let acc =
        if sym < Array.length s.buckets then
          match Array.unsafe_get s.buckets sym with
          | Some bucket -> collect_bucket [] s.stamp bucket
          | None -> []
        else []
      in
      collect_bucket acc s.stamp s.wildcard
    in
    let id = s.next_id in
    s.next_id <- id + 1;
    let delivered = List.length interested in
    s.dispatched <- s.dispatched + delivered;
    s.suppressed <- s.suppressed + (s.live - delivered);
    Xaos_obs.Telemetry.add counter_dispatched delivered;
    Xaos_obs.Telemetry.add counter_suppressed (s.live - delivered);
    List.iter
      (fun rs ->
        Query.sync_next_id rs.rs_run id;
        feed_run s rs ev;
        refresh_text_interest s rs)
      interested;
    s.delivery_stack <- interested :: s.delivery_stack
  | Xaos_xml.Event.End_element _ -> (
    match s.delivery_stack with
    | [] -> invalid_arg "Query_set.feed: end event without open element"
    | interested :: rest ->
      s.delivery_stack <- rest;
      s.dispatched <- s.dispatched + List.length interested;
      Xaos_obs.Telemetry.add counter_dispatched (List.length interested);
      List.iter
        (fun rs ->
          feed_run s rs ev;
          refresh_text_interest s rs)
        interested)
  | Xaos_xml.Event.Text _ ->
    (* string values include descendant text, so routing follows the open
       text-test buffers, not the element that owns the event *)
    if Hashtbl.length s.text_interested > 0 then begin
      let interested =
        Hashtbl.fold (fun _ rs acc -> rs :: acc) s.text_interested []
      in
      List.iter (fun rs -> feed_run s rs ev) interested
    end
  | Xaos_xml.Event.Comment _ | Xaos_xml.Event.Processing_instruction _ -> ()

let feed_naive s ev =
  (match ev with
  | Xaos_xml.Event.Start_element _ ->
    s.dispatched <- s.dispatched + s.live;
    Xaos_obs.Telemetry.add counter_dispatched s.live
  | _ -> ());
  Array.iter (fun rs -> feed_run s rs ev) s.runs

let feed s ev =
  match s.mode with Shared -> feed_shared s ev | Naive -> feed_naive s ev

let finish s =
  Array.to_list s.runs
  |> List.map (fun rs ->
         let result =
           if rs.rs_aborted then Query.finish_partial rs.rs_run
           else Query.finish rs.rs_run
         in
         {
           query_name = rs.rs_name;
           items = result.Result_set.items;
           aborted = rs.rs_aborted;
         })

let finish_partial s =
  Array.to_list s.runs
  |> List.map (fun rs ->
         let result = Query.finish_partial rs.rs_run in
         {
           query_name = rs.rs_name;
           items = result.Result_set.items;
           aborted = true;
         })

let dispatch_stats s = (s.dispatched, s.suppressed)

(* ------------------------------------------------------------------ *)
(* One-shot helpers                                                    *)
(* ------------------------------------------------------------------ *)

let run_events ?budget ?dispatch t events =
  let s = start ?budget ?dispatch t in
  List.iter (feed s) events;
  finish s

let run_sax ?budget ?dispatch t parser =
  let s = start ?budget ?dispatch t in
  Xaos_xml.Sax.iter (feed s) parser;
  finish s

let run_string ?budget ?dispatch t input =
  run_sax ?budget ?dispatch t (Xaos_xml.Sax.of_string input)

let run_doc ?budget t doc =
  (* DOM replay bypasses the event stream, so dispatch stays per-run;
     budget trips are still isolated per run *)
  let s = start ?budget ~dispatch:Naive t in
  Array.iter
    (fun rs ->
      try Query.feed_doc rs.rs_run doc
      with Engine.Budget_exceeded _ ->
        rs.rs_aborted <- true;
        s.live <- s.live - 1;
        ignore (Query.finish_partial rs.rs_run))
    s.runs;
  finish s

let matching_names outcomes =
  List.filter_map
    (fun o -> match o.items with [] -> None | _ :: _ -> Some o.query_name)
    outcomes
