type t = {
  mutable queries : (string * Query.t) list;
      (** registration order; names unique among live entries *)
  mutable version : int;
      (** bumped by {!register}/{!unregister}; invalidates the gate cache *)
  mutable gate_cache : gate_cache option;
}

and gate_cache = {
  gc_version : int;
  gc_generation : int;  (** symbol-table generation the trie was built in *)
  gc_trie : string Prefix_gate.t;  (** payloads are equivalence-class keys *)
  gc_gated : (string, unit) Hashtbl.t;  (** class keys present in the trie *)
}

let gauge_subscriptions =
  Xaos_obs.Telemetry.gauge ~help:"subscriptions in the current set"
    "xaos_filter_subscriptions"

let gauge_classes =
  Xaos_obs.Telemetry.gauge
    ~help:"engine equivalence classes in the last started session"
    "xaos_queryset_classes"

let gauge_compaction =
  Xaos_obs.Telemetry.gauge
    ~help:"subscriptions per engine class in the last started session \
           (fan-out ratio; 1.0 = no sharing)"
    "xaos_queryset_compaction_ratio"

let counter_documents =
  Xaos_obs.Telemetry.counter ~help:"documents run through a query set"
    "xaos_filter_documents_total"

let counter_dispatched =
  Xaos_obs.Telemetry.counter
    ~help:"(element event, run) deliveries performed by query sets"
    "xaos_filter_events_dispatched_total"

let counter_suppressed =
  Xaos_obs.Telemetry.counter
    ~help:"(element event, run) deliveries suppressed by the shared \
           dispatch index"
    "xaos_filter_events_suppressed_total"

let counter_run_faults =
  Xaos_obs.Telemetry.counter
    ~help:"runs aborted by an engine exception other than Budget_exceeded"
    "xaos_filter_run_faults_total"

let counter_gate_activations =
  Xaos_obs.Telemetry.counter
    ~help:"dormant engine classes activated by the shared-prefix gate"
    "xaos_filter_gate_activations_total"

let of_queries queries =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (name, _) ->
      if Hashtbl.mem seen name then
        invalid_arg ("Query_set.of_queries: duplicate name " ^ name);
      Hashtbl.add seen name ())
    queries;
  Xaos_obs.Telemetry.set_gauge gauge_subscriptions (List.length queries);
  { queries; version = 0; gate_cache = None }

let compile ?config pairs =
  (* accumulate every failing query: a large subscription set should need
     one round-trip to fix, not one per broken expression *)
  let compiled =
    List.map (fun (name, expression) -> (name, Query.compile ?config expression))
      pairs
  in
  let errors =
    List.filter_map
      (function
        | name, Error msg -> Some (Printf.sprintf "%s: %s" name msg)
        | _, Ok _ -> None)
      compiled
  in
  match errors with
  | [] ->
    Ok
      (of_queries
         (List.map
            (fun (name, result) -> (name, Result.get_ok result))
            compiled))
  | [ e ] -> Error e
  | es ->
    Error
      (Printf.sprintf "%d queries failed to compile:\n%s" (List.length es)
         (String.concat "\n" es))

let names t = List.map fst t.queries

let size t = List.length t.queries

let mem t name = List.mem_assoc name t.queries

let class_count t =
  let keys = Hashtbl.create 16 in
  List.iter
    (fun (_, q) -> Hashtbl.replace keys (Query.class_key q) ())
    t.queries;
  Hashtbl.length keys

let register t name q =
  if List.mem_assoc name t.queries then
    invalid_arg ("Query_set.register: duplicate name " ^ name);
  t.queries <- t.queries @ [ (name, q) ];
  t.version <- t.version + 1;
  Xaos_obs.Telemetry.set_gauge gauge_subscriptions (List.length t.queries)

let unregister t name =
  if List.mem_assoc name t.queries then begin
    t.queries <- List.filter (fun (n, _) -> n <> name) t.queries;
    t.version <- t.version + 1;
    Xaos_obs.Telemetry.set_gauge gauge_subscriptions (List.length t.queries);
    true
  end
  else false

(* The shared-prefix gate trie is a pure function of (registry contents,
   symbol generation); rebuilt lazily when either moves. Only classes
   every one of whose disjuncts has a safe prefix (see
   {!Query.gate_prefixes}) enter the trie — the rest attach eagerly at
   session start as before. *)
let gate_for t =
  let generation = Xaos_xml.Symbol.generation () in
  match t.gate_cache with
  | Some gc when gc.gc_version = t.version && gc.gc_generation = generation ->
    gc
  | Some _ | None ->
    let trie = Prefix_gate.create () in
    let gated = Hashtbl.create 16 in
    let seen = Hashtbl.create 16 in
    List.iter
      (fun (_, q) ->
        let key = Query.class_key q in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          match Query.gate_prefixes q with
          | None -> ()
          | Some prefixes ->
            List.iter (fun p -> Prefix_gate.add trie p key) prefixes;
            Hashtbl.add gated key ()
        end)
      t.queries;
    let gc =
      { gc_version = t.version; gc_generation = generation; gc_trie = trie;
        gc_gated = gated }
    in
    t.gate_cache <- Some gc;
    gc

type outcome = {
  query_name : string;
  items : Item.t list;
  aborted : bool;
  failed : string option;
  spent_s : float;
      (* this subscription's share of its class engine's match seconds
         (class wall-clock split evenly across the live fan-out);
         0. while telemetry is disabled — the clock is never read then *)
  delivered : int;
      (* events the class engine was fed (dispatch deliveries + replays) *)
  fanout : int;
      (* subscriptions sharing this outcome's engine (>= 1); the
         denominator of the [spent_s] split *)
  stats : Stats.t;
      (* the engine's counters: structures created, live peak, retained
         bytes — the cost-attribution source *)
}

type dispatch =
  | Shared
  | Naive

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

(* One subscription's membership in an engine class. *)
type member = {
  m_name : string;
  mutable m_removed : bool;
      (** unregistered mid-session: muted at emission and excluded from
          the reported outcomes; the class engine keeps running while
          other members are live *)
}

(* One engine equivalence class: a single {!Query.run} evaluated once
   per document, fanning results out to every member. Uncompacted
   sessions degenerate to one singleton class per subscription. *)
type run_state = {
  rs_id : int;
  rs_query : Query.t;
  mutable rs_members : member list;  (** registration order *)
  mutable rs_live_members : int;  (** refcount: members not yet removed *)
  mutable rs_run : Query.run option;
      (** [None] while gate-dormant: the engine is not created until the
          shared-prefix gate accepts one of the class's prefixes *)
  mutable rs_aborted : bool;
  mutable rs_error : string option;
      (** a non-budget engine exception; the run was aborted in place *)
  mutable rs_stamp : int;
      (** last event stamp this run was collected for; dedupes a run
          reached through both its tag bucket and the wildcard bucket *)
  mutable rs_spent : float;
      (** wall-clock seconds spent in this class's engine (feed +
          finish); accumulated only while telemetry is enabled *)
  mutable rs_delivered : int;
      (** events fed to this engine — one int increment per delivery, so
          it is counted even while telemetry is off *)
  mutable rs_result : Result_set.t option;
      (** memoized finish: the class is resolved once, at its first
          member's outcome *)
}

type session = {
  mode : dispatch;
  budget : int option;  (** applied to runs added mid-session too *)
  compact : bool;
  mutable runs_rev : run_state list;  (** reverse creation order *)
  mutable members_rev : (member * run_state) list;
      (** reverse registration order — the outcome order *)
  classes : (string, run_state) Hashtbl.t;
      (** class key -> session-start class (mid-document {!add_run}s get
          fresh singleton classes: joining an engine that has already
          consumed events would leak results from before the join) *)
  mutable next_run_id : int;
  mutable buckets : (int, run_state) Hashtbl.t option array;
      (** indexed by interned symbol id: runs whose current looking-for
          frontier contains an x-node with that name test (keyed by
          [rs_id]); grown on demand as interest callbacks mention new
          symbols. The per-event lookup is one array load — dispatch
          never hashes the element name. *)
  wildcard : (int, run_state) Hashtbl.t;
      (** runs whose frontier contains a wildcard x-node: interested in
          every element tag *)
  text_interested : (int, run_state) Hashtbl.t;
      (** runs with an open text-test buffer; recomputed after each
          delivered element event, the only points where it can change *)
  mutable delivery_stack : run_state list list;
      (** per open element (innermost first): the runs its start event
          was delivered to — its end event goes to exactly those *)
  mutable open_events : (Xaos_xml.Event.t * int) list;
      (** the open start events with their document-order ids (innermost
          first) — replayed into runs registered mid-stream so a late
          subscription sees its ancestor context *)
  mutable stamp : int;
  mutable next_id : int;
      (** document-order element counter, synced into delivered runs so
          suppressed events do not shift the ids of reported items *)
  mutable live : int;  (** active engines: not aborted, not dormant *)
  mutable dormant : int;  (** gate-dormant classes (no engine yet) *)
  mutable gate_run : string Prefix_gate.run option;
      (** the shared-prefix walk; dropped once nothing is dormant *)
  mutable dispatched : int;
  mutable suppressed : int;
  mutable current_byte : int;
      (** stream byte offset pushed in by the driver via
          {!set_stream_byte}; [-1] = no driver pushes it. Forwarded to a
          run's engines just before each delivery so emission latency
          can be stamped in bytes. *)
  on_item : (name:string -> Item.t -> unit) option;
      (** mid-document match delivery: wired as [on_match] into runs
          whose query was compiled with a non-deferred emission mode, so
          a driver (the service broker) can push results while the
          document is still streaming. Fans out to every live member;
          removed members are muted. *)
}

let bucket_add s sym rs =
  if sym >= Array.length s.buckets then begin
    let cap = max (sym + 1) (2 * Array.length s.buckets) in
    let grown = Array.make cap None in
    Array.blit s.buckets 0 grown 0 (Array.length s.buckets);
    s.buckets <- grown
  end;
  let bucket =
    match s.buckets.(sym) with
    | Some b -> b
    | None ->
      let b = Hashtbl.create 8 in
      s.buckets.(sym) <- Some b;
      b
  in
  Hashtbl.replace bucket rs.rs_id rs

let bucket_remove s sym rs =
  if sym < Array.length s.buckets then
    match s.buckets.(sym) with
    | None -> ()
    | Some b -> Hashtbl.remove b rs.rs_id

(* Abort one class in place, leaving the session consistent. Used for
   budget trips, engine faults and removal of the last member; the
   partial result is extracted (and memoized by the engine) immediately,
   and the abort unwinds the run's open matches, which drains its
   dispatch buckets through the interest callbacks. An engine broken by
   an arbitrary exception may fail to unwind — its buckets then keep
   stale entries, which dispatch skips via [rs_aborted]. A dormant class
   has no engine: aborting it just takes it out of the gate's reach. *)
let abort_run s rs =
  if not rs.rs_aborted then begin
    rs.rs_aborted <- true;
    match rs.rs_run with
    | None -> s.dormant <- s.dormant - 1
    | Some run ->
      s.live <- s.live - 1;
      Hashtbl.remove s.text_interested rs.rs_id;
      (try ignore (Query.finish_partial run) with _ -> ())
  end

(* Feed one event to one class engine. A budget trip aborts that class
   only; any other engine exception likewise poisons just this class
   (fault isolation: one broken subscription must never take the session
   down) but is remembered as [rs_error] so callers can distinguish
   degraded service from a resource trip. *)
let feed_run s rs ev =
  match rs.rs_run with
  | None -> ()
  | Some run ->
    if not rs.rs_aborted then begin
      rs.rs_delivered <- rs.rs_delivered + 1;
      if s.current_byte >= 0 then Query.set_stream_byte run s.current_byte;
      if Xaos_obs.Telemetry.enabled () then begin
        (* per-class match time; the clock is only read (and the float
           only boxed) on the telemetry-enabled path *)
        let t0 = Xaos_obs.Telemetry.now () in
        (try Query.feed run ev with
        | Engine.Budget_exceeded _ -> abort_run s rs
        | exn ->
          rs.rs_error <- Some (Printexc.to_string exn);
          Xaos_obs.Telemetry.incr counter_run_faults;
          abort_run s rs);
        rs.rs_spent <- rs.rs_spent +. (Xaos_obs.Telemetry.now () -. t0)
      end
      else
        try Query.feed run ev with
        | Engine.Budget_exceeded _ -> abort_run s rs
        | exn ->
          rs.rs_error <- Some (Printexc.to_string exn);
          Xaos_obs.Telemetry.incr counter_run_faults;
          abort_run s rs
    end

(* After a delivered element event, the run's text interest may have
   changed (a text-test buffer opened or closed). *)
let refresh_text_interest s rs =
  match rs.rs_run with
  | None -> ()
  | Some run ->
    if not rs.rs_aborted then begin
      if Query.wants_text run then Hashtbl.replace s.text_interested rs.rs_id rs
      else Hashtbl.remove s.text_interested rs.rs_id
    end

(* Create a class shell (no engine yet) and its first member. *)
let new_class s q name =
  let rs =
    {
      rs_id = s.next_run_id;
      rs_query = q;
      rs_members = [];
      rs_live_members = 0;
      rs_run = None;
      rs_aborted = false;
      rs_error = None;
      rs_stamp = -1;
      rs_spent = 0.;
      rs_delivered = 0;
      rs_result = None;
    }
  in
  s.next_run_id <- s.next_run_id + 1;
  s.runs_rev <- rs :: s.runs_rev;
  let m = { m_name = name; m_removed = false } in
  rs.rs_members <- [ m ];
  rs.rs_live_members <- 1;
  s.members_rev <- (m, rs) :: s.members_rev;
  rs

(* Fan a later duplicate subscription into an existing class. Only valid
   before any event reached the engine (i.e. at session start): the
   class's results are the member's results exactly when they evaluate
   the same stream suffix. *)
let join_class s rs name =
  let m = { m_name = name; m_removed = false } in
  rs.rs_members <- rs.rs_members @ [ m ];
  rs.rs_live_members <- rs.rs_live_members + 1;
  s.members_rev <- (m, rs) :: s.members_rev

(* Start the class engine and wire it into the session: subscribe it to
   the dispatch index (Shared), replay the open ancestor chain with the
   original document-order ids, and route the pending end events to it
   by joining every delivery-stack frame. The index is maintained
   incrementally — the interest callbacks fired during subscription and
   replay populate exactly the buckets the new run's frontier needs.
   Called at session start for ungated classes, from the gate on first
   prefix acceptance, and from {!add_run}. *)
let activate s rs =
  match rs.rs_run with
  | Some _ -> ()
  | None ->
    if not rs.rs_aborted then begin
      let q = rs.rs_query in
      let on_match =
        match s.on_item with
        | Some f when Query.emission q <> Engine.Deferred ->
          Some
            (fun item ->
              List.iter
                (fun m -> if not m.m_removed then f ~name:m.m_name item)
                rs.rs_members)
        | Some _ | None -> None
      in
      let run = Query.start ?on_match ?budget:s.budget q in
      rs.rs_run <- Some run;
      s.live <- s.live + 1;
      (match s.mode with
      | Naive -> ()
      | Shared ->
        Query.subscribe_interest run
          {
            Engine.on_sym =
              (fun sym on ->
                if on then bucket_add s sym rs else bucket_remove s sym rs);
            on_wildcard =
              (fun on ->
                if on then Hashtbl.replace s.wildcard rs.rs_id rs
                else Hashtbl.remove s.wildcard rs.rs_id);
          });
      (* replay outer-to-inner; the open chain always has consecutive
         levels, so it is a valid stream prefix for sparse and strict
         engines alike *)
      List.iter
        (fun (ev, id) ->
          Query.sync_next_id run id;
          feed_run s rs ev)
        (List.rev s.open_events);
      (* future starts must carry the session's counter, not the replay's *)
      if not rs.rs_aborted then Query.sync_next_id run s.next_id;
      match s.mode with
      | Shared ->
        s.delivery_stack <-
          List.map (fun frame -> rs :: frame) s.delivery_stack;
        refresh_text_interest s rs
      | Naive -> ()
    end

let start ?budget ?(dispatch = Shared) ?(compact = true) ?(gate = false)
    ?on_item t =
  Xaos_obs.Telemetry.incr counter_documents;
  (* compaction (and the gate riding on it) only applies to shared
     dispatch: the naive loop is the uncompacted reference oracle *)
  let compact = compact && dispatch = Shared in
  let gate = gate && compact in
  let gc = if gate then Some (gate_for t) else None in
  let s =
    {
      mode = dispatch;
      budget;
      compact;
      runs_rev = [];
      members_rev = [];
      classes = Hashtbl.create 16;
      next_run_id = 0;
      buckets = Array.make (max 16 (Xaos_xml.Symbol.count ())) None;
      wildcard = Hashtbl.create 16;
      text_interested = Hashtbl.create 16;
      delivery_stack = [];
      open_events = [];
      stamp = 0;
      next_id = 1;
      live = 0;
      dormant = 0;
      gate_run = None;
      dispatched = 0;
      suppressed = 0;
      current_byte = -1;
      on_item;
    }
  in
  List.iter
    (fun (name, q) ->
      if compact then begin
        let key = Query.class_key q in
        match Hashtbl.find_opt s.classes key with
        | Some rs -> join_class s rs name
        | None ->
          let rs = new_class s q name in
          Hashtbl.add s.classes key rs;
          let gated =
            match gc with
            | Some gc -> Hashtbl.mem gc.gc_gated key
            | None -> false
          in
          if gated then s.dormant <- s.dormant + 1 else activate s rs
      end
      else begin
        let rs = new_class s q name in
        activate s rs
      end)
    t.queries;
  (match gc with
  | Some gc when s.dormant > 0 ->
    s.gate_run <- Some (Prefix_gate.start gc.gc_trie)
  | Some _ | None -> ());
  let classes = List.length s.runs_rev in
  let members = List.length s.members_rev in
  Xaos_obs.Telemetry.set_gauge gauge_classes classes;
  Xaos_obs.Telemetry.set_gauge_float gauge_compaction
    (if classes = 0 then 1. else float_of_int members /. float_of_int classes);
  s

let add_run s name q =
  if
    List.exists
      (fun (m, _) -> (not m.m_removed) && m.m_name = name)
      s.members_rev
  then invalid_arg ("Query_set.add_run: duplicate name " ^ name);
  (* always a fresh singleton class: a mid-document join must see only
     the stream from here on, which an engine started earlier has
     already partially consumed *)
  activate s (new_class s q name)

let remove_run s name =
  match
    List.find_opt
      (fun (m, _) -> (not m.m_removed) && m.m_name = name)
      s.members_rev
  with
  | None -> false
  | Some (m, rs) ->
    m.m_removed <- true;
    rs.rs_live_members <- rs.rs_live_members - 1;
    (* refcount: the class engine keeps running while any other member
       is live; only the last removal tears it down *)
    if rs.rs_live_members = 0 then begin
      abort_run s rs;
      if s.dormant = 0 then s.gate_run <- None
    end;
    true

let collect_bucket acc stamp bucket =
  Hashtbl.fold
    (fun _ rs acc ->
      if rs.rs_stamp = stamp || rs.rs_aborted then acc
      else begin
        rs.rs_stamp <- stamp;
        rs :: acc
      end)
    bucket acc

let feed_shared s ev =
  match ev with
  | Xaos_xml.Event.Start_element { sym; _ } ->
    (* the gate walks first: a newly-accepted class is activated (with
       ancestor replay, which excludes this event) before dispatch
       collects the interested runs, so its engine receives this very
       element through its freshly-populated buckets *)
    (match s.gate_run with
    | None -> ()
    | Some g -> (
      match Prefix_gate.start_element g sym with
      | [] -> ()
      | keys ->
        List.iter
          (fun key ->
            match Hashtbl.find_opt s.classes key with
            | Some rs when rs.rs_run = None && not rs.rs_aborted ->
              s.dormant <- s.dormant - 1;
              Xaos_obs.Telemetry.incr counter_gate_activations;
              activate s rs
            | Some _ | None -> ())
          keys;
        if s.dormant = 0 then s.gate_run <- None));
    s.stamp <- s.stamp + 1;
    (* snapshot the interested runs before delivering: feeding a run can
       mutate the buckets (interest callbacks, budget aborts) *)
    let interested =
      let acc =
        if sym < Array.length s.buckets then
          match Array.unsafe_get s.buckets sym with
          | Some bucket -> collect_bucket [] s.stamp bucket
          | None -> []
        else []
      in
      collect_bucket acc s.stamp s.wildcard
    in
    let id = s.next_id in
    s.next_id <- id + 1;
    s.open_events <- (ev, id) :: s.open_events;
    let delivered = List.length interested in
    s.dispatched <- s.dispatched + delivered;
    s.suppressed <- s.suppressed + (s.live - delivered);
    Xaos_obs.Telemetry.add counter_dispatched delivered;
    Xaos_obs.Telemetry.add counter_suppressed (s.live - delivered);
    List.iter
      (fun rs ->
        (match rs.rs_run with
        | Some run -> Query.sync_next_id run id
        | None -> ());
        feed_run s rs ev;
        refresh_text_interest s rs)
      interested;
    s.delivery_stack <- interested :: s.delivery_stack
  | Xaos_xml.Event.End_element _ -> (
    (match s.gate_run with
    | None -> ()
    | Some g -> Prefix_gate.end_element g);
    match s.delivery_stack with
    | [] -> invalid_arg "Query_set.feed: end event without open element"
    | interested :: rest ->
      s.delivery_stack <- rest;
      (match s.open_events with
      | [] -> ()
      | _ :: tl -> s.open_events <- tl);
      s.dispatched <- s.dispatched + List.length interested;
      Xaos_obs.Telemetry.add counter_dispatched (List.length interested);
      List.iter
        (fun rs ->
          feed_run s rs ev;
          refresh_text_interest s rs)
        interested)
  | Xaos_xml.Event.Text _ ->
    (* string values include descendant text, so routing follows the open
       text-test buffers, not the element that owns the event *)
    if Hashtbl.length s.text_interested > 0 then begin
      let interested =
        Hashtbl.fold (fun _ rs acc -> rs :: acc) s.text_interested []
      in
      List.iter (fun rs -> feed_run s rs ev) interested
    end
  | Xaos_xml.Event.Comment _ | Xaos_xml.Event.Processing_instruction _ -> ()

let feed_naive s ev =
  (match ev with
  | Xaos_xml.Event.Start_element _ ->
    let id = s.next_id in
    s.next_id <- id + 1;
    s.open_events <- (ev, id) :: s.open_events;
    s.dispatched <- s.dispatched + s.live;
    Xaos_obs.Telemetry.add counter_dispatched s.live
  | Xaos_xml.Event.End_element _ -> (
    match s.open_events with
    | [] -> ()
    | _ :: tl -> s.open_events <- tl)
  | _ -> ());
  List.iter (fun rs -> feed_run s rs ev) s.runs_rev

let feed s ev =
  match s.mode with Shared -> feed_shared s ev | Naive -> feed_naive s ev

(* End-of-document resolution counts toward the class's match time too:
   deferred emission does its output traversal in [Query.finish]. *)
let timed_finish rs f =
  if Xaos_obs.Telemetry.enabled () then begin
    let t0 = Xaos_obs.Telemetry.now () in
    let result = f () in
    rs.rs_spent <- rs.rs_spent +. (Xaos_obs.Telemetry.now () -. t0);
    result
  end
  else f ()

(* Resolve a class once (memoized): the first member's outcome pays the
   finish, later members reuse the result. A dormant class never built
   an engine — its prefix never appeared, so its result set is empty. *)
let finish_class s ~partial rs =
  match rs.rs_result with
  | Some r -> r
  | None ->
    let r =
      timed_finish rs @@ fun () ->
      match rs.rs_run with
      | None -> Result_set.empty
      | Some run ->
        if s.current_byte >= 0 then Query.set_stream_byte run s.current_byte;
        if partial || rs.rs_aborted then
          try Query.finish_partial run with _ -> Result_set.empty
        else
          (* end-of-document work runs the engine too: an exception here
             gets the same per-run isolation as [feed] *)
          match Query.finish run with
          | result -> result
          | exception Engine.Budget_exceeded _ ->
            rs.rs_aborted <- true;
            (try Query.finish_partial run with _ -> Result_set.empty)
          | exception exn ->
            rs.rs_error <- Some (Printexc.to_string exn);
            Xaos_obs.Telemetry.incr counter_run_faults;
            rs.rs_aborted <- true;
            (try Query.finish_partial run with _ -> Result_set.empty)
    in
    rs.rs_result <- Some r;
    r

let outcome_of ~aborted m rs result =
  (* physical seconds are conserved: the class's wall-clock is split
     evenly across the members still reporting, so attribution sums
     back to the pipeline total (PR 9 invariant, extended to fan-out) *)
  let sharers = max 1 rs.rs_live_members in
  {
    query_name = m.m_name;
    items = result.Result_set.items;
    aborted;
    failed = rs.rs_error;
    spent_s = rs.rs_spent /. float_of_int sharers;
    delivered = rs.rs_delivered;
    fanout = sharers;
    stats =
      (match rs.rs_run with
      | None -> Stats.create ()
      | Some run -> (try Query.run_stats run with _ -> Stats.create ()));
  }

let finish_with ~partial s =
  List.rev s.members_rev
  |> List.filter_map (fun (m, rs) ->
         if m.m_removed then None
         else
           let result = finish_class s ~partial rs in
           Some (outcome_of ~aborted:(partial || rs.rs_aborted) m rs result))

let finish s = finish_with ~partial:false s

let finish_partial s = finish_with ~partial:true s

let dispatch_stats s = (s.dispatched, s.suppressed)

let session_stats s =
  let members =
    List.fold_left
      (fun acc (m, _) -> if m.m_removed then acc else acc + 1)
      0 s.members_rev
  in
  (List.length s.runs_rev, members, s.dormant)

let set_stream_byte s b = s.current_byte <- b

(* ------------------------------------------------------------------ *)
(* One-shot helpers                                                    *)
(* ------------------------------------------------------------------ *)

let run_events ?budget ?dispatch ?compact ?gate t events =
  let s = start ?budget ?dispatch ?compact ?gate t in
  List.iter (feed s) events;
  finish s

let run_sax ?budget ?dispatch ?compact ?gate t parser =
  let s = start ?budget ?dispatch ?compact ?gate t in
  Xaos_xml.Sax.iter (feed s) parser;
  finish s

let run_string ?budget ?dispatch ?compact ?gate t input =
  run_sax ?budget ?dispatch ?compact ?gate t (Xaos_xml.Sax.of_string input)

let run_doc ?budget t doc =
  (* DOM replay bypasses the event stream, so dispatch stays per-run;
     budget trips are still isolated per run *)
  let s = start ?budget ~dispatch:Naive t in
  List.iter
    (fun rs ->
      match rs.rs_run with
      | None -> ()
      | Some run -> (
        try Query.feed_doc run doc
        with Engine.Budget_exceeded _ -> abort_run s rs))
    (List.rev s.runs_rev);
  finish s

let matching_names outcomes =
  List.filter_map
    (fun o -> match o.items with [] -> None | _ :: _ -> Some o.query_name)
    outcomes
