type t = {
  mutable queries : (string * Query.t) list;
      (** registration order; names unique among live entries *)
}

let gauge_subscriptions =
  Xaos_obs.Telemetry.gauge ~help:"subscriptions in the current set"
    "xaos_filter_subscriptions"

let counter_documents =
  Xaos_obs.Telemetry.counter ~help:"documents run through a query set"
    "xaos_filter_documents_total"

let counter_dispatched =
  Xaos_obs.Telemetry.counter
    ~help:"(element event, run) deliveries performed by query sets"
    "xaos_filter_events_dispatched_total"

let counter_suppressed =
  Xaos_obs.Telemetry.counter
    ~help:"(element event, run) deliveries suppressed by the shared \
           dispatch index"
    "xaos_filter_events_suppressed_total"

let counter_run_faults =
  Xaos_obs.Telemetry.counter
    ~help:"runs aborted by an engine exception other than Budget_exceeded"
    "xaos_filter_run_faults_total"

let of_queries queries =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (name, _) ->
      if Hashtbl.mem seen name then
        invalid_arg ("Query_set.of_queries: duplicate name " ^ name);
      Hashtbl.add seen name ())
    queries;
  Xaos_obs.Telemetry.set_gauge gauge_subscriptions (List.length queries);
  { queries }

let compile ?config pairs =
  (* accumulate every failing query: a large subscription set should need
     one round-trip to fix, not one per broken expression *)
  let compiled =
    List.map (fun (name, expression) -> (name, Query.compile ?config expression))
      pairs
  in
  let errors =
    List.filter_map
      (function
        | name, Error msg -> Some (Printf.sprintf "%s: %s" name msg)
        | _, Ok _ -> None)
      compiled
  in
  match errors with
  | [] ->
    Ok
      (of_queries
         (List.map
            (fun (name, result) -> (name, Result.get_ok result))
            compiled))
  | [ e ] -> Error e
  | es ->
    Error
      (Printf.sprintf "%d queries failed to compile:\n%s" (List.length es)
         (String.concat "\n" es))

let names t = List.map fst t.queries

let size t = List.length t.queries

let mem t name = List.mem_assoc name t.queries

let register t name q =
  if List.mem_assoc name t.queries then
    invalid_arg ("Query_set.register: duplicate name " ^ name);
  t.queries <- t.queries @ [ (name, q) ];
  Xaos_obs.Telemetry.set_gauge gauge_subscriptions (List.length t.queries)

let unregister t name =
  if List.mem_assoc name t.queries then begin
    t.queries <- List.filter (fun (n, _) -> n <> name) t.queries;
    Xaos_obs.Telemetry.set_gauge gauge_subscriptions (List.length t.queries);
    true
  end
  else false

type outcome = {
  query_name : string;
  items : Item.t list;
  aborted : bool;
  failed : string option;
  spent_s : float;
      (* wall-clock seconds this run spent matching (feed + finish);
         0. while telemetry is disabled — the clock is never read then *)
  delivered : int;
      (* events this run was fed (dispatch deliveries + replays) *)
  stats : Stats.t;
      (* the run's engine counters: structures created, live peak,
         retained bytes — the cost-attribution source *)
}

type dispatch =
  | Shared
  | Naive

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

type run_state = {
  rs_id : int;
  rs_name : string;
  rs_run : Query.run;
  mutable rs_aborted : bool;
  mutable rs_removed : bool;
      (** unregistered mid-session: keeps absorbing its pending end
          events as no-ops but is excluded from the reported outcomes *)
  mutable rs_error : string option;
      (** a non-budget engine exception; the run was aborted in place *)
  mutable rs_stamp : int;
      (** last event stamp this run was collected for; dedupes a run
          reached through both its tag bucket and the wildcard bucket *)
  mutable rs_spent : float;
      (** wall-clock seconds spent in this run's engine (feed + finish);
          accumulated only while telemetry is enabled *)
  mutable rs_delivered : int;
      (** events fed to this run — one int increment per delivery, so it
          is counted even while telemetry is off *)
}

type session = {
  mode : dispatch;
  budget : int option;  (** applied to runs added mid-session too *)
  mutable runs_rev : run_state list;  (** reverse registration order *)
  mutable next_run_id : int;
  mutable buckets : (int, run_state) Hashtbl.t option array;
      (** indexed by interned symbol id: runs whose current looking-for
          frontier contains an x-node with that name test (keyed by
          [rs_id]); grown on demand as interest callbacks mention new
          symbols. The per-event lookup is one array load — dispatch
          never hashes the element name. *)
  wildcard : (int, run_state) Hashtbl.t;
      (** runs whose frontier contains a wildcard x-node: interested in
          every element tag *)
  text_interested : (int, run_state) Hashtbl.t;
      (** runs with an open text-test buffer; recomputed after each
          delivered element event, the only points where it can change *)
  mutable delivery_stack : run_state list list;
      (** per open element (innermost first): the runs its start event
          was delivered to — its end event goes to exactly those *)
  mutable open_events : (Xaos_xml.Event.t * int) list;
      (** the open start events with their document-order ids (innermost
          first) — replayed into runs registered mid-stream so a late
          subscription sees its ancestor context *)
  mutable stamp : int;
  mutable next_id : int;
      (** document-order element counter, synced into delivered runs so
          suppressed events do not shift the ids of reported items *)
  mutable live : int;  (** runs not yet aborted *)
  mutable dispatched : int;
  mutable suppressed : int;
  mutable current_byte : int;
      (** stream byte offset pushed in by the driver via
          {!set_stream_byte}; [-1] = no driver pushes it. Forwarded to a
          run's engines just before each delivery so emission latency
          can be stamped in bytes. *)
  on_item : (name:string -> Item.t -> unit) option;
      (** mid-document match delivery: wired as [on_match] into runs
          whose query was compiled with a non-deferred emission mode, so
          a driver (the service broker) can push results while the
          document is still streaming. Removed runs are muted. *)
}

let bucket_add s sym rs =
  if sym >= Array.length s.buckets then begin
    let cap = max (sym + 1) (2 * Array.length s.buckets) in
    let grown = Array.make cap None in
    Array.blit s.buckets 0 grown 0 (Array.length s.buckets);
    s.buckets <- grown
  end;
  let bucket =
    match s.buckets.(sym) with
    | Some b -> b
    | None ->
      let b = Hashtbl.create 8 in
      s.buckets.(sym) <- Some b;
      b
  in
  Hashtbl.replace bucket rs.rs_id rs

let bucket_remove s sym rs =
  if sym < Array.length s.buckets then
    match s.buckets.(sym) with
    | None -> ()
    | Some b -> Hashtbl.remove b rs.rs_id

(* Abort one run in place, leaving the session consistent. Used for
   budget trips, engine faults and mid-session removal; the partial
   result is extracted (and memoized) immediately, and the abort unwinds
   the run's open matches, which drains its dispatch buckets through the
   interest callbacks. An engine broken by an arbitrary exception may
   fail to unwind — its buckets then keep stale entries, which dispatch
   skips via [rs_aborted]. *)
let abort_run s rs =
  if not rs.rs_aborted then begin
    rs.rs_aborted <- true;
    s.live <- s.live - 1;
    Hashtbl.remove s.text_interested rs.rs_id;
    try ignore (Query.finish_partial rs.rs_run) with _ -> ()
  end

(* Feed one event to one run. A budget trip aborts that run only; any
   other engine exception likewise poisons just this run (fault
   isolation: one broken subscription must never take the session down)
   but is remembered as [rs_error] so callers can distinguish degraded
   service from a resource trip. *)
let feed_run s rs ev =
  if not rs.rs_aborted then begin
    rs.rs_delivered <- rs.rs_delivered + 1;
    if s.current_byte >= 0 then Query.set_stream_byte rs.rs_run s.current_byte;
    if Xaos_obs.Telemetry.enabled () then begin
      (* per-subscription match time; the clock is only read (and the
         float only boxed) on the telemetry-enabled path *)
      let t0 = Xaos_obs.Telemetry.now () in
      (try Query.feed rs.rs_run ev with
      | Engine.Budget_exceeded _ -> abort_run s rs
      | exn ->
        rs.rs_error <- Some (Printexc.to_string exn);
        Xaos_obs.Telemetry.incr counter_run_faults;
        abort_run s rs);
      rs.rs_spent <- rs.rs_spent +. (Xaos_obs.Telemetry.now () -. t0)
    end
    else
      try Query.feed rs.rs_run ev with
      | Engine.Budget_exceeded _ -> abort_run s rs
      | exn ->
        rs.rs_error <- Some (Printexc.to_string exn);
        Xaos_obs.Telemetry.incr counter_run_faults;
        abort_run s rs
  end

(* After a delivered element event, the run's text interest may have
   changed (a text-test buffer opened or closed). *)
let refresh_text_interest s rs =
  if not rs.rs_aborted then begin
    if Query.wants_text rs.rs_run then
      Hashtbl.replace s.text_interested rs.rs_id rs
    else Hashtbl.remove s.text_interested rs.rs_id
  end

(* Attach a fresh run to the session: subscribe it to the dispatch index
   (Shared), replay the open ancestor chain with the original
   document-order ids, and route the pending end events to it by joining
   every delivery-stack frame. The index is maintained incrementally —
   the interest callbacks fired during subscription and replay populate
   exactly the buckets the new run's frontier needs. *)
let attach s name q =
  (* the callback closes over the run it belongs to (to honour
     mid-session removal), which does not exist until [Query.start]
     returns — hence the knot *)
  let rs_cell = ref None in
  let on_match =
    match s.on_item with
    | Some f when Query.emission q <> Engine.Deferred ->
      Some
        (fun item ->
          match !rs_cell with
          | Some rs when rs.rs_removed -> ()
          | Some _ | None -> f ~name item)
    | Some _ | None -> None
  in
  let rs =
    {
      rs_id = s.next_run_id;
      rs_name = name;
      rs_run = Query.start ?on_match ?budget:s.budget q;
      rs_aborted = false;
      rs_removed = false;
      rs_error = None;
      rs_stamp = -1;
      rs_spent = 0.;
      rs_delivered = 0;
    }
  in
  rs_cell := Some rs;
  s.next_run_id <- s.next_run_id + 1;
  s.runs_rev <- rs :: s.runs_rev;
  s.live <- s.live + 1;
  (match s.mode with
  | Naive -> ()
  | Shared ->
    Query.subscribe_interest rs.rs_run
      {
        Engine.on_sym =
          (fun sym on ->
            if on then bucket_add s sym rs else bucket_remove s sym rs);
        on_wildcard =
          (fun on ->
            if on then Hashtbl.replace s.wildcard rs.rs_id rs
            else Hashtbl.remove s.wildcard rs.rs_id);
      });
  (* replay outer-to-inner; the open chain always has consecutive levels,
     so it is a valid stream prefix for sparse and strict engines alike *)
  List.iter
    (fun (ev, id) ->
      Query.sync_next_id rs.rs_run id;
      feed_run s rs ev)
    (List.rev s.open_events);
  (* future starts must carry the session's counter, not the replay's *)
  if not rs.rs_aborted then Query.sync_next_id rs.rs_run s.next_id;
  (match s.mode with
  | Shared ->
    s.delivery_stack <- List.map (fun frame -> rs :: frame) s.delivery_stack;
    refresh_text_interest s rs
  | Naive -> ());
  rs

let start ?budget ?(dispatch = Shared) ?on_item t =
  Xaos_obs.Telemetry.incr counter_documents;
  let s =
    {
      mode = dispatch;
      budget;
      runs_rev = [];
      next_run_id = 0;
      buckets = Array.make (max 16 (Xaos_xml.Symbol.count ())) None;
      wildcard = Hashtbl.create 16;
      text_interested = Hashtbl.create 16;
      delivery_stack = [];
      open_events = [];
      stamp = 0;
      next_id = 1;
      live = 0;
      dispatched = 0;
      suppressed = 0;
      current_byte = -1;
      on_item;
    }
  in
  List.iter (fun (name, q) -> ignore (attach s name q)) t.queries;
  s

let add_run s name q =
  if
    List.exists
      (fun rs -> (not rs.rs_removed) && rs.rs_name = name)
      s.runs_rev
  then invalid_arg ("Query_set.add_run: duplicate name " ^ name);
  ignore (attach s name q)

let remove_run s name =
  match
    List.find_opt
      (fun rs -> (not rs.rs_removed) && rs.rs_name = name)
      s.runs_rev
  with
  | None -> false
  | Some rs ->
    rs.rs_removed <- true;
    abort_run s rs;
    true

let collect_bucket acc stamp bucket =
  Hashtbl.fold
    (fun _ rs acc ->
      if rs.rs_stamp = stamp || rs.rs_aborted then acc
      else begin
        rs.rs_stamp <- stamp;
        rs :: acc
      end)
    bucket acc

let feed_shared s ev =
  match ev with
  | Xaos_xml.Event.Start_element { sym; _ } ->
    s.stamp <- s.stamp + 1;
    (* snapshot the interested runs before delivering: feeding a run can
       mutate the buckets (interest callbacks, budget aborts) *)
    let interested =
      let acc =
        if sym < Array.length s.buckets then
          match Array.unsafe_get s.buckets sym with
          | Some bucket -> collect_bucket [] s.stamp bucket
          | None -> []
        else []
      in
      collect_bucket acc s.stamp s.wildcard
    in
    let id = s.next_id in
    s.next_id <- id + 1;
    s.open_events <- (ev, id) :: s.open_events;
    let delivered = List.length interested in
    s.dispatched <- s.dispatched + delivered;
    s.suppressed <- s.suppressed + (s.live - delivered);
    Xaos_obs.Telemetry.add counter_dispatched delivered;
    Xaos_obs.Telemetry.add counter_suppressed (s.live - delivered);
    List.iter
      (fun rs ->
        Query.sync_next_id rs.rs_run id;
        feed_run s rs ev;
        refresh_text_interest s rs)
      interested;
    s.delivery_stack <- interested :: s.delivery_stack
  | Xaos_xml.Event.End_element _ -> (
    match s.delivery_stack with
    | [] -> invalid_arg "Query_set.feed: end event without open element"
    | interested :: rest ->
      s.delivery_stack <- rest;
      (match s.open_events with
      | [] -> ()
      | _ :: tl -> s.open_events <- tl);
      s.dispatched <- s.dispatched + List.length interested;
      Xaos_obs.Telemetry.add counter_dispatched (List.length interested);
      List.iter
        (fun rs ->
          feed_run s rs ev;
          refresh_text_interest s rs)
        interested)
  | Xaos_xml.Event.Text _ ->
    (* string values include descendant text, so routing follows the open
       text-test buffers, not the element that owns the event *)
    if Hashtbl.length s.text_interested > 0 then begin
      let interested =
        Hashtbl.fold (fun _ rs acc -> rs :: acc) s.text_interested []
      in
      List.iter (fun rs -> feed_run s rs ev) interested
    end
  | Xaos_xml.Event.Comment _ | Xaos_xml.Event.Processing_instruction _ -> ()

let feed_naive s ev =
  (match ev with
  | Xaos_xml.Event.Start_element _ ->
    let id = s.next_id in
    s.next_id <- id + 1;
    s.open_events <- (ev, id) :: s.open_events;
    s.dispatched <- s.dispatched + s.live;
    Xaos_obs.Telemetry.add counter_dispatched s.live
  | Xaos_xml.Event.End_element _ -> (
    match s.open_events with
    | [] -> ()
    | _ :: tl -> s.open_events <- tl)
  | _ -> ());
  List.iter (fun rs -> feed_run s rs ev) s.runs_rev

let feed s ev =
  match s.mode with Shared -> feed_shared s ev | Naive -> feed_naive s ev

let outcome_of ~aborted rs result =
  {
    query_name = rs.rs_name;
    items = result.Result_set.items;
    aborted;
    failed = rs.rs_error;
    spent_s = rs.rs_spent;
    delivered = rs.rs_delivered;
    stats = (try Query.run_stats rs.rs_run with _ -> Stats.create ());
  }

(* End-of-document resolution counts toward the run's match time too:
   deferred emission does its output traversal in [Query.finish]. *)
let timed_finish rs f =
  if Xaos_obs.Telemetry.enabled () then begin
    let t0 = Xaos_obs.Telemetry.now () in
    let result = f () in
    rs.rs_spent <- rs.rs_spent +. (Xaos_obs.Telemetry.now () -. t0);
    result
  end
  else f ()

let finish s =
  List.rev s.runs_rev
  |> List.filter_map (fun rs ->
         if rs.rs_removed then None
         else
           let result =
             timed_finish rs @@ fun () ->
             if s.current_byte >= 0 then
               Query.set_stream_byte rs.rs_run s.current_byte;
             if rs.rs_aborted then
               try Query.finish_partial rs.rs_run
               with _ -> Result_set.empty
             else
               (* end-of-document work runs the engine too: an exception
                  here gets the same per-run isolation as [feed] *)
               match Query.finish rs.rs_run with
               | result -> result
               | exception Engine.Budget_exceeded _ ->
                 rs.rs_aborted <- true;
                 (try Query.finish_partial rs.rs_run
                  with _ -> Result_set.empty)
               | exception exn ->
                 rs.rs_error <- Some (Printexc.to_string exn);
                 Xaos_obs.Telemetry.incr counter_run_faults;
                 rs.rs_aborted <- true;
                 (try Query.finish_partial rs.rs_run
                  with _ -> Result_set.empty)
           in
           Some (outcome_of ~aborted:rs.rs_aborted rs result))

let finish_partial s =
  List.rev s.runs_rev
  |> List.filter_map (fun rs ->
         if rs.rs_removed then None
         else
           let result =
             timed_finish rs @@ fun () ->
             if s.current_byte >= 0 then
               Query.set_stream_byte rs.rs_run s.current_byte;
             try Query.finish_partial rs.rs_run with _ -> Result_set.empty
           in
           Some (outcome_of ~aborted:true rs result))

let dispatch_stats s = (s.dispatched, s.suppressed)

let set_stream_byte s b = s.current_byte <- b

(* ------------------------------------------------------------------ *)
(* One-shot helpers                                                    *)
(* ------------------------------------------------------------------ *)

let run_events ?budget ?dispatch t events =
  let s = start ?budget ?dispatch t in
  List.iter (feed s) events;
  finish s

let run_sax ?budget ?dispatch t parser =
  let s = start ?budget ?dispatch t in
  Xaos_xml.Sax.iter (feed s) parser;
  finish s

let run_string ?budget ?dispatch t input =
  run_sax ?budget ?dispatch t (Xaos_xml.Sax.of_string input)

let run_doc ?budget t doc =
  (* DOM replay bypasses the event stream, so dispatch stays per-run;
     budget trips are still isolated per run *)
  let s = start ?budget ~dispatch:Naive t in
  List.iter
    (fun rs ->
      try Query.feed_doc rs.rs_run doc
      with Engine.Budget_exceeded _ -> abort_run s rs)
    (List.rev s.runs_rev);
  finish s

let matching_names outcomes =
  List.filter_map
    (fun o -> match o.items with [] -> None | _ :: _ -> Some o.query_name)
    outcomes
