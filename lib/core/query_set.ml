type t = {
  queries : (string * Query.t) list;
}

let gauge_subscriptions =
  Xaos_obs.Telemetry.gauge ~help:"subscriptions in the last compiled set"
    "xaos_filter_subscriptions"

let counter_documents =
  Xaos_obs.Telemetry.counter ~help:"documents run through a query set"
    "xaos_filter_documents_total"

let of_queries queries =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (name, _) ->
      if Hashtbl.mem seen name then
        invalid_arg ("Query_set.of_queries: duplicate name " ^ name);
      Hashtbl.add seen name ())
    queries;
  Xaos_obs.Telemetry.set_gauge gauge_subscriptions (List.length queries);
  { queries }

let compile ?config pairs =
  let rec loop acc = function
    | [] -> Ok (of_queries (List.rev acc))
    | (name, expression) :: rest -> (
      match Query.compile ?config expression with
      | Ok q -> loop ((name, q) :: acc) rest
      | Error msg -> Error (Printf.sprintf "%s: %s" name msg))
  in
  loop [] pairs

let names t = List.map fst t.queries

let size t = List.length t.queries

type outcome = {
  query_name : string;
  items : Item.t list;
}

let start_all t =
  Xaos_obs.Telemetry.incr counter_documents;
  List.map (fun (name, q) -> (name, Query.start q)) t.queries

let finish_all runs =
  List.map
    (fun (query_name, run) ->
      { query_name; items = (Query.finish run).Result_set.items })
    runs

let run_events t events =
  let runs = start_all t in
  List.iter (fun ev -> List.iter (fun (_, run) -> Query.feed run ev) runs) events;
  finish_all runs

let run_sax t parser =
  let runs = start_all t in
  Xaos_xml.Sax.iter
    (fun ev -> List.iter (fun (_, run) -> Query.feed run ev) runs)
    parser;
  finish_all runs

let run_string t input = run_sax t (Xaos_xml.Sax.of_string input)

let run_doc t doc =
  let runs = start_all t in
  List.iter (fun (_, run) -> Query.feed_doc run doc) runs;
  finish_all runs

let matching_names outcomes =
  List.filter_map
    (fun o -> match o.items with [] -> None | _ :: _ -> Some o.query_name)
    outcomes
