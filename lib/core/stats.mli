(** Execution counters of the streaming engine.

    [elements_discarded] / [elements_total] is the quantity reported in the
    paper's Table 3: the fraction of document elements filtered out as not
    relevant (and therefore never stored). *)

type t = {
  mutable elements_total : int;
      (** document elements seen (start events), virtual root excluded *)
  mutable elements_stored : int;
      (** elements found relevant for at least one x-node *)
  mutable elements_discarded : int;  (** the rest *)
  mutable structures_created : int;  (** matching structures allocated *)
  mutable structures_refuted : int;
      (** structures conclusively refuted (and hence reclaimable) *)
  mutable live_peak : int;
      (** largest [created - refuted] observed — peak count of matching
          structures alive at once; what {!Engine}'s structure budget
          guards *)
  mutable propagations : int;
      (** placements of a matching into a submatching slot, both confirmed
          pushes and optimistic pulls *)
  mutable undos : int;
      (** placements removed by the optimistic-propagation cleanup *)
  mutable max_depth : int;  (** deepest open-element nesting reached *)
  mutable parse_faults : int;
      (** well-formedness faults recovered by a lenient parse feeding this
          engine; filled in by the front end (the engine itself never sees
          malformed markup) *)
  mutable retained_bytes : int;
      (** estimated bytes currently held in live matching structures
          ({!Matching.approx_bytes} summed over created minus refuted) —
          the numerator of the relevance ratio *)
  mutable retained_peak_bytes : int;
      (** largest [retained_bytes] observed during the run *)
}

val create : unit -> t

val discarded_fraction : t -> float
(** [elements_discarded / elements_total]; [0.] on an empty document. *)

val add : t -> t -> t
(** Pointwise sum ([max] for [max_depth]): aggregates the per-disjunct
    engines of an [or] query. [live_peak] is summed too — disjunct engines
    hold their structures simultaneously. *)

val to_fields : t -> (string * int) list
(** Every counter under a stable snake_case name — the [stats] section of
    a {!Xaos_obs.Report}. [discarded_fraction] is derivable and not
    included. *)

val pp : Format.formatter -> t -> unit
