module Symbol = Xaos_xml.Symbol

type t = {
  id : int;
  sym : Symbol.t;
  level : int;
}

let compare a b = Int.compare a.id b.id

(* Ids are document-order element identifiers, unique per document, so id
   equality IS item identity; tag and level are derived attributes of the
   same element. Checking them here would make [equal] disagree with
   [compare] (which drives {!sort_dedup} and result-set merging). *)
let equal a b = a.id = b.id

let make ~id ~tag ~level = { id; sym = Symbol.intern tag; level }

let tag t = Symbol.name t.sym

let pp ppf { id; sym; level } =
  Format.fprintf ppf "%s(%d)@%d" (Symbol.name sym) id level

let of_element (e : Xaos_xml.Dom.element) =
  { id = e.id; sym = e.sym; level = e.level }

(* Array-based sort: result sets can reach the size of the document, and
   List.sort_uniq would allocate a cons cell per merge step. *)
let sort_dedup items =
  match items with
  | [] | [ _ ] -> items
  | _ :: _ :: _ ->
    let arr = Array.of_list items in
    Array.sort (fun a b -> Int.compare a.id b.id) arr;
    let out = ref [] in
    for i = Array.length arr - 1 downto 0 do
      match !out with
      | last :: _ when last.id = arr.(i).id -> ()
      | _ -> out := arr.(i) :: !out
    done;
    !out
