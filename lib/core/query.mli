(** User-facing query API: compile an XPath expression once, run it over
    any number of documents in a single streaming pass each.

    Compilation parses the expression, expands [or] into disjuncts
    (Section 5.2), and builds the x-tree and x-dag of each disjunct. A run
    instantiates one {!Engine} per disjunct, feeds every event to all of
    them (still one pass over the document), and unions the results.

    {[
      let q = Query.compile_exn "//listitem/ancestor::category//name" in
      let result = Query.run_file q "auctions.xml" in
      List.iter (Format.printf "%a@." Item.pp) result.Result_set.items
    ]} *)

type t
(** A compiled query. Immutable; reusable across runs and threads. *)

val compile :
  ?config:Engine.config -> ?or_limit:int -> string -> (t, string) result
(** Parse and compile. [or_limit] bounds the DNF expansion (default 64
    disjuncts). Unsatisfiable disjuncts (see {!Xaos_xpath.Xdag.Unsatisfiable})
    are compiled away; a query all of whose disjuncts are unsatisfiable is
    valid and returns empty results. *)

val compile_exn : ?config:Engine.config -> ?or_limit:int -> string -> t
(** @raise Invalid_argument on a syntax error or expansion overflow. *)

val compile_path : ?config:Engine.config -> ?or_limit:int -> Xaos_xpath.Ast.path -> (t, string) result
(** Compile an already-parsed expression. *)

val path : t -> Xaos_xpath.Ast.path
(** The original expression. *)

val emission : t -> Engine.emission
(** The emission mode this query was compiled with (see
    {!Engine.emission}); drivers use it to decide whether [on_match]
    can fire mid-document. *)

val disjuncts : t -> Xaos_xpath.Xdag.t list
(** The compiled representations (satisfiable disjuncts only). *)

val class_key : t -> string
(** Canonical equivalence-class key: a digest of the engine
    configuration and the sorted {!Xaos_xpath.Xdag.key}s of the
    satisfiable disjuncts. Two queries with the same key compile to
    structurally identical engines and are evaluation-equivalent —
    {!Query_set} runs one engine per distinct key and fans results out
    to every subscriber in the class. Stable across documents and
    {!Xaos_xml.Symbol.reset}. *)

val gate_prefixes :
  t -> (Xaos_xpath.Ast.axis * Xaos_xpath.Ast.node_test) list list option
(** Safe shared-prefix of each satisfiable disjunct, when the whole
    query is gateable: [Some prefixes] means the class engine may stay
    dormant until a shared-prefix automaton (see {!Prefix_gate}) accepts
    one of the prefixes, then attach mid-document via open-chain replay
    without losing any match. Each prefix is the query's leading run of
    predicate-free child/descendant steps; the analysis rejects (returns
    [None] for) remainders whose matches could require events from
    before the attach point — a forward axis out of the ancestor zone, a
    text test on an ancestor-zone element, or an absolute predicate
    path. [Some []] (no satisfiable disjuncts) means the query matches
    nothing and never needs an engine. *)

val uses_backward_axes : t -> bool

(** {1 Running} *)

type run
(** An in-flight evaluation over one document. *)

val start : ?on_match:(Item.t -> unit) -> ?budget:int -> t -> run
(** [budget] caps live matching structures per disjunct engine; a feed
    that would exceed it raises {!Engine.Budget_exceeded} (after which
    {!finish_partial} still works). [on_match] fires exactly once per
    result item even when several disjuncts match it (deduplicated at
    the callback boundary, mirroring the result-set union); its timing
    follows the compiled {!emission} mode. *)

val feed : run -> Xaos_xml.Event.t -> unit

val subscribe_interest : run -> Engine.interest_listener -> unit
(** Attach a tag-interest listener to every disjunct engine, aggregated
    so the listener sees run-level transitions only (the run wants a tag
    iff any disjunct does). Switches the engines to sparse feeding; see
    {!Engine.subscribe_interest} for the suppression contract. Used by
    {!Query_set}'s shared dispatch index. *)

val wants_text : run -> bool
(** Whether a text event right now must be delivered to this run: some
    disjunct engine has an open element waiting on a text test. *)

val sync_next_id : run -> int -> unit
(** Propagate the dispatcher's document-order element counter to every
    disjunct engine (see {!Engine.sync_next_id}); required before each
    start event delivered sparsely so result items keep document ids. *)

val set_stream_byte : run -> int -> unit
(** Propagate the stream's current byte offset to every disjunct engine
    (see {!Engine.set_stream_byte}) for emission-latency observation. *)

val feed_doc : run -> Xaos_xml.Dom.doc -> unit
(** Feed a prebuilt tree's element events directly (see
    {!Engine.feed_doc}). *)

val finish : run -> Result_set.t

val finish_partial : run -> Result_set.t
(** Results already certain at this point of the stream, even if the
    document is incomplete: virtually closes still-open elements in every
    disjunct engine (see {!Engine.abort}) and unions. Use when the stream
    died mid-document (truncation, {!Xaos_xml.Sax.Limit_exceeded},
    {!Engine.Budget_exceeded}); the answer is a subset of the
    full-document result set. *)

val run_stats : run -> Stats.t
(** Aggregated over disjunct engines; meaningful after {!finish} too. *)

val retained_structures : run -> int
(** Matching structures reachable at end of document, summed over the
    disjunct engines (see {!Engine.retained_structures}). *)

val retained_bytes : run -> int
(** Estimated bytes currently held in live matching structures, summed
    over the disjunct engines — the numerator of the relevance ratio
    (against the parser's bytes read). Counter arithmetic, snapshot-safe. *)

val live_structures : run -> int
(** Currently live (created - refuted) matching structures, summed over
    the disjunct engines. Cheap (counter arithmetic); what the
    {!Xaos_obs.Snapshot} sampler records mid-stream. *)

val looking_for_size : run -> int
(** Size of the combined looking-for set — entries summed over the
    disjunct engines. Derives the set ({!Engine.looking_for}), so it
    costs O(x-nodes · open matches): fine at snapshot cadence, not per
    event. *)

(** {1 One-shot helpers} *)

val run_events : t -> Xaos_xml.Event.t list -> Result_set.t
val run_sax : t -> Xaos_xml.Sax.t -> Result_set.t
val run_string : t -> string -> Result_set.t
(** Streaming evaluation over an XML document held in a string.
    @raise Xaos_xml.Sax.Error on ill-formed XML. *)

val run_file : t -> string -> Result_set.t
(** Streaming evaluation over a file; the document is never materialized. *)

val run_doc : t -> Xaos_xml.Dom.doc -> Result_set.t
(** Replay events from a prebuilt DOM tree — the paper's χαος(DOM)
    configuration used to factor out parsing costs in Figures 6–7. *)

val run_string_with_stats : t -> string -> Result_set.t * Stats.t
val run_doc_with_stats : t -> Xaos_xml.Dom.doc -> Result_set.t * Stats.t
val run_file_with_stats : t -> string -> Result_set.t * Stats.t
