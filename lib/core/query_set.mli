(** Evaluate many compiled queries over one document in a single pass —
    the publish/subscribe arrangement of the filtering systems the paper
    compares against (XFilter/YFilter), with χαος's extra capability:
    subscriptions may use backward axes.

    Three sharing layers compound under {!Shared} dispatch:

    + {e Compaction} (on by default): subscriptions whose queries are
      evaluation-equivalent — same {!Query.class_key}, i.e. the same
      hash-consed x-dags under the same engine configuration — share one
      engine {e equivalence class}. The class engine evaluates once and
      fans its results out to every member; match seconds are split
      across the fan-out in the reported outcomes, so attribution still
      sums to the pipeline total.
    + The tag-keyed {e dispatch index} merged from every class engine's
      x-dag looking-for frontier: a start/end element event is delivered
      only to the runs whose current frontier can match its tag (plus
      the wildcard bucket); everything else is suppressed without
      touching the run at all. The index is maintained incrementally
      through {!Engine.subscribe_interest} notifications as each run's
      frontier evolves with the stream, so suppression is sound: a
      suppressed event could not have created a matching structure in
      that run.
    + Optionally, a {e shared-prefix gate} ({!Prefix_gate}, the
      generalized YFilter trie): classes whose every disjunct has a safe
      forward prefix ({!Query.gate_prefixes}) start {e dormant}, with no
      engine at all, and are attached mid-document through the
      open-chain replay machinery the first time the trie accepts one of
      their prefixes. A document touching none of the prefixes never
      pays for those engines.

    Outcomes are identical per subscription name to the {!Naive} loop on
    every document — the differential oracle the test suite exercises. *)

type t
(** A registry of named compiled queries. Long-lived: subscriptions can
    be {!register}ed and {!unregister}ed at runtime between documents;
    a {!session} snapshots the registry when it starts (and can itself
    take mid-stream {!add_run}/{!remove_run} changes). *)

val of_queries : (string * Query.t) list -> t
(** Build from (name, query) pairs. Names must be unique.
    @raise Invalid_argument on a duplicate name. *)

val register : t -> string -> Query.t -> unit
(** Add a subscription at runtime. Sessions already started are not
    affected (use {!add_run} to join one mid-stream).
    @raise Invalid_argument on a duplicate name. *)

val unregister : t -> string -> bool
(** Remove a subscription; [false] if the name is unknown. Sessions
    already started keep their snapshot. *)

val mem : t -> string -> bool

val compile :
  ?config:Engine.config -> (string * string) list -> (t, string) result
(** Compile (name, expression) pairs. All failures are accumulated: the
    error message lists every offending expression (prefixed by its
    name, one per line), so a large subscription set is debugged in one
    round-trip. *)

val names : t -> string list

val size : t -> int

val class_count : t -> int
(** Distinct engine equivalence classes ({!Query.class_key}) among the
    registered subscriptions — what a compacted {!Shared} session will
    run engines for. [size t / class_count t] is the compaction ratio. *)

(** {1 Matching} *)

type outcome = {
  query_name : string;
  items : Item.t list;  (** document order, duplicate-free *)
  aborted : bool;
      (** the outcome is partial: this run tripped the structure budget
          mid-stream, raised (see [failed]), or the whole session was
          finished via {!finish_partial}; [items] are the results
          already certain at the abort point *)
  failed : string option;
      (** fault isolation: the run's engine raised something other than
          {!Engine.Budget_exceeded} and was aborted in place (the
          message is [Printexc.to_string] of the exception); the other
          runs were untouched *)
  spent_s : float;
      (** this subscription's share of the wall-clock seconds its class
          engine spent matching (feed plus end-of-document resolution):
          the class total split evenly across the live fan-out, so
          summing [spent_s] over all outcomes still equals the physical
          seconds the pipeline spent — the conservation invariant cost
          attribution relies on. [fanout = 1] (no sharing) makes this
          the plain per-subscription match time. Always [0.] while
          telemetry is disabled: the clock is never read on the
          disabled path. *)
  delivered : int;
      (** events this outcome's class engine was fed: dispatch
          deliveries plus ancestor replays for mid-stream registration.
          Counted unconditionally (one int increment), so it is valid
          with telemetry off. Not split across the fan-out: every
          member's results came from all of these deliveries. *)
  fanout : int;
      (** subscriptions sharing this outcome's engine when it was
          resolved (>= 1) — the denominator of the [spent_s] split *)
  stats : Stats.t;
      (** the class engine's counters ({!Query.run_stats}) at outcome
          time: structures created, live peak, retained bytes — what
          cost attribution charges to the owning subscription. Shared
          members report the same engine's counters. *)
}

type dispatch =
  | Shared  (** route events through the shared dispatch index *)
  | Naive  (** deliver every event to every run (the reference loop) *)

(** {2 Sessions}

    A session is one document streamed through the whole set. Feed it
    the document's events, then {!finish}. A run that raises
    {!Engine.Budget_exceeded} is aborted {e individually}: its partial
    outcome is captured and the remaining runs keep going. *)

type session

val start :
  ?budget:int -> ?dispatch:dispatch -> ?compact:bool -> ?gate:bool ->
  ?on_item:(name:string -> Item.t -> unit) -> t -> session
(** Fresh runs for one document. [budget] caps live matching structures
    per disjunct engine of every run. [dispatch] defaults to
    {!Shared}. [compact] (default [true], {!Shared} only) folds
    subscriptions with equal {!Query.class_key} into one shared engine
    with fan-out emission; under {!Naive} it is forced off so the naive
    loop stays the uncompacted reference. [gate] (default [false];
    implies [compact]) additionally keeps gateable classes
    ({!Query.gate_prefixes}) dormant behind the shared-prefix trie,
    attaching them mid-document on first prefix acceptance — results
    are unchanged, but per-event dispatch/suppression counts differ
    from the ungated session, which is why it is opt-in here (the
    service broker turns it on). [on_item] enables mid-document match
    delivery: it is wired as the [on_match] callback of every class
    whose query was compiled with a non-deferred {!Engine.emission}
    mode (deferred runs never call it — their items only appear in the
    {!finish} outcomes), fires at most once per (member, item), and is
    muted for members detached via {!remove_run}. Items delivered
    mid-stream still appear in the member's outcome: the callback is a
    preview, the outcome stays the complete record. *)

val feed : session -> Xaos_xml.Event.t -> unit
(** Route one event. Under {!Shared} dispatch, element events reach only
    the interested runs; text is delivered to runs with an open
    text-test buffer; comments and PIs are dropped. *)

val add_run : session -> string -> Query.t -> unit
(** Join a subscription mid-document. The session replays the currently
    open ancestor chain (with the original document-order element ids)
    into the fresh run and maintains the dispatch index incrementally,
    so the run matches everything decidable from this point on: results
    are those of a full run restricted to elements whose start event had
    not yet been seen, plus the open ancestors themselves. Always a
    fresh singleton class, never folded into an existing engine — an
    engine started earlier has consumed events the late subscriber must
    not see. The session's budget applies.
    @raise Invalid_argument on a duplicate live name. *)

val remove_run : session -> string -> bool
(** Detach a subscription mid-document: its membership is muted and
    excluded from {!finish} outcomes; [false] if the name is not live in
    this session. The class engine is refcounted — it is only aborted
    (draining its dispatch-index buckets) when the last live member
    detaches, so sharing subscribers are unaffected. *)

val finish : session -> outcome list
(** Outcomes in query order, including empty ones. *)

val finish_partial : session -> outcome list
(** The document died mid-stream (truncation, parse error, limit): every
    live run is finished via {!Query.finish_partial} and all outcomes
    are flagged [aborted]. *)

val set_stream_byte : session -> int -> unit
(** Tell the session the input stream's current byte offset (e.g.
    {!Xaos_xml.Sax.bytes_read} after pulling the event about to be
    fed). Forwarded to a run's engines at each delivery so results can
    be stamped for emission-latency measurement (bytes between a result
    becoming decidable and its emission). Purely observational; never
    calling it leaves every latency at 0. *)

val dispatch_stats : session -> int * int
(** [(dispatched, suppressed)] (start-event, run) delivery counts so far
    — the A/B observability for the dispatch index. Runs are engine
    classes, so compaction lowers both. Suppressed is always 0 under
    {!Naive}. *)

val session_stats : session -> int * int * int
(** [(classes, members, dormant)]: engine classes in this session
    (active or dormant), live (non-removed) subscriptions fanning into
    them, and classes still gate-dormant. [members / classes] is the
    session's compaction ratio. *)

(** {2 One-shot helpers} *)

val run_events :
  ?budget:int -> ?dispatch:dispatch -> ?compact:bool -> ?gate:bool ->
  t -> Xaos_xml.Event.t list -> outcome list
(** One pass; outcomes in query order, including empty ones. *)

val run_sax :
  ?budget:int -> ?dispatch:dispatch -> ?compact:bool -> ?gate:bool ->
  t -> Xaos_xml.Sax.t -> outcome list

val run_string :
  ?budget:int -> ?dispatch:dispatch -> ?compact:bool -> ?gate:bool ->
  t -> string -> outcome list

val run_doc : ?budget:int -> t -> Xaos_xml.Dom.doc -> outcome list
(** DOM replay feeds each run directly (no event stream to dispatch), so
    it always uses the per-run loop; budget trips still abort runs
    individually. *)

val matching_names : outcome list -> string list
(** Names of the queries with at least one result — the routing decision
    of a filtering broker. *)
