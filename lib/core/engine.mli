(** The χαος streaming evaluation engine for one or-free Rxp (paper,
    Section 4).

    The engine consumes the element events of one document in a single
    depth-first, document-order pass and maintains:

    - per x-node stacks of {e open matches} — matching structures of
      currently open (hence ancestor-chain) elements. These implement the
      paper's looking-for filtering: an incoming element is {e relevant}
      for x-node [v] iff every x-dag parent of [v] has an open match at a
      level compatible with the edge kind (Section 4.1). The paper's
      looking-for set is derivable from the stacks and exposed as
      {!looking_for} for observability and tests;
    - the matching structures themselves, composed along the {e x-tree} at
      end-element events: backward-axis slots are filled by optimistically
      pulling the open candidate structures (steps 13/22 of the paper's
      Table 2 walk-through), forward-axis structures are pushed into the
      consistent open parent structures, and refuted optimism is undone
      recursively (step 23).

    Use {!Query} for the user-facing API (parsing, [or] handling, result
    assembly across disjuncts). *)

(** When results leave the engine. Result {e sets} are identical in all
    three modes; only the timing (and ordering guarantees) of the
    [on_match] callback differ. *)
type emission =
  | Deferred
      (** everything is reported by {!finish}, the paper's Section 4.4
          end-of-document collection *)
  | Eager
      (** Section 5.1(b): when the query shape allows it (see
          {!emits_eagerly}), report each result element at its end event
          and retain no structures at all. Falls back to [Deferred]
          behaviour for shapes it cannot handle. *)
  | Earliest
      (** earliest-decision emission: report each result element at the
          first end event where its membership in the final result set
          is decided — a per-structure pending-dependency count tracks
          the optimistic placements whose refutation could still revoke
          it, and a document-ordered pending buffer flushes the moment a
          candidate is both certainly satisfied and certainly part of a
          total matching. Sound for every expression, including backward
          axes and truncated documents ({!abort}). *)

type config = {
  boolean_subtrees : bool;
      (** Section 5.1(a): track output-free subtrees as support counters
          instead of retaining child structures. On by default. *)
  relevance_filter : bool;
      (** the looking-for filtering; turning it off (ablation) keeps
          results identical but stores structures for every label match *)
  emission : emission;
}

val default_config : config
(** [boolean_subtrees = true; relevance_filter = true;
    emission = Deferred]. *)

exception Budget_exceeded of { live : int; budget : int }
(** The engine's live matching structures ([created - refuted]) exceeded
    the configured budget. A typed resource trip instead of an OOM kill:
    the engine is still consistent, so {!abort} can extract the results
    certain so far. *)

type t

val create :
  ?config:config -> ?budget:int -> ?on_match:(Item.t -> unit) ->
  Xaos_xpath.Xdag.t -> t
(** A fresh engine over the given x-dag. [on_match] fires on each result
    element as soon as the engine knows it is in the result — at its end
    event in eager mode, at the earliest decided event in earliest mode
    (in document order, each item exactly once across the stream and the
    {!finish} residue), at document end otherwise. [budget] caps the
    number of live matching structures (default unlimited); see
    {!Budget_exceeded}. *)

val emits_eagerly : t -> bool
(** Whether eager emission is active: it was requested, the expression
    uses forward axes only, has a single output x-node, and every x-node
    outside the output's subtree lies on the plain chain from Root to the
    output. Under these conditions a satisfied output element can never be
    revoked and nothing outside the chain is pending. *)

(** {1 Feeding events} *)

val start_element :
  t -> ?attrs:Xaos_xml.Event.attribute list -> sym:Xaos_xml.Symbol.t ->
  level:int -> unit -> unit
(** The element name arrives as its interned symbol (parsers intern at
    tokenization time, see {!Xaos_xml.Event}); the engine performs no
    string hashing or comparison on this path.
    @raise Invalid_argument if [level] is not [current depth + 1] (after
    {!subscribe_interest}, if it does not nest: [level <= depth]).
    [attrs] feed the attribute-test extension; omitting them is fine for
    expressions without [@]-tests. *)

val end_element : t -> unit
(** @raise Invalid_argument if no element is open. *)

val feed : t -> Xaos_xml.Event.t -> unit
(** Dispatch an element event; text/comment/PI events are ignored, as in
    the paper's model. *)

val feed_doc : t -> Xaos_xml.Dom.doc -> unit
(** Feed the element events of a prebuilt tree directly, without
    materializing {!Xaos_xml.Event.t} values — the χαος(DOM) replay path
    of Figures 6–7. *)

val finish : t -> Result_set.t
(** Resolve the root structure at end of document and return the results.
    Idempotent: the result is memoized, so a second call returns it
    without replaying [on_match] or re-recording emission latencies.
    @raise Invalid_argument if elements are still open. *)

val abort : t -> Result_set.t
(** Graceful degradation on truncated input: virtually close every open
    element and return the results already {e certain} at the truncation
    point — a subset of what the full document would have produced
    (constraints of the query language are monotone under document
    extension; the one non-monotone construct, [text()='v'] on an element
    still open at truncation, conservatively refutes). Safe to call after
    {!Budget_exceeded} too. *)

val run_events : ?config:config -> Xaos_xpath.Xdag.t -> Xaos_xml.Event.t list -> Result_set.t
(** [create], [feed] everything, [finish]. *)

val run_sax : ?config:config -> Xaos_xpath.Xdag.t -> Xaos_xml.Sax.t -> Result_set.t

(** {1 Introspection} *)

type level_requirement =
  | Exact of int
  | Any  (** the paper's [∞] *)

val looking_for : t -> (int * level_requirement) list
(** The current looking-for set, derived from the open-match stacks with
    the paper's Table 2 conventions: an x-node is listed iff all its x-dag
    parents have compatible open matches; exact-level entries are listed
    only while they can match the next start event (the paper "stops
    looking for [(U, 3)]" while inside a deeper element); Root is listed
    as [(0, Exact 0)] before the document starts and after it ends.
    Entries are sorted by x-node id. *)

val stats : t -> Stats.t

(** {1 Tag-interest notifications (shared multi-query dispatch)} *)

(** Callbacks fired when the set of element names the engine's
    looking-for frontier can match changes. [on_sym sym on] fires when
    the interned name [sym] enters ([on = true]) or leaves ([on = false])
    the interest set; [on_wildcard] likewise when a wildcard x-node
    becomes or stops being reachable. Transitions are exact
    (0 <-> nonzero counts), so a subscriber can maintain a
    symbol -> interested-engines index with O(1) bucket updates per
    transition and no string hashing. *)
type interest_listener = {
  on_sym : Xaos_xml.Symbol.t -> bool -> unit;
  on_wildcard : bool -> unit;
}

val subscribe_interest : t -> interest_listener -> unit
(** Attach the listener and immediately fire [on_sym _ true] /
    [on_wildcard true] for the current interest set (the initial
    looking-for frontier on a fresh engine). The interest set is the
    level-free projection of the paper's looking-for set: an x-node
    counts as interesting when every x-dag parent has an open match,
    levels ignored — a superset of {!looking_for}, which is what makes
    suppressing non-interesting events sound.

    Subscribing also switches the engine to {e sparse} feeding: start
    events need only nest ([level > depth]) rather than extend depth by
    exactly one, so a dispatcher may suppress whole (start, end) event
    pairs the engine is not interested in. Suppressed pairs must be
    matched: deliver an end event iff its start event was delivered.
    Character data must be delivered whenever {!wants_text} holds,
    regardless of the enclosing element's routing.

    @raise Invalid_argument if already subscribed. *)

val wants_text : t -> bool
(** Whether a text event right now would be recorded: some open matched
    element is waiting to decide a text test. Cheap; intended as the
    per-event routing check for character data under shared dispatch. *)

val sync_next_id : t -> int -> unit
(** Set the document-order id the next start event will carry. A sparse
    dispatcher must call this before each delivered start event (ids
    normally advance one per start event seen, which under-counts when
    events are suppressed); results then stay byte-identical to a full
    feed. *)

val set_stream_byte : t -> int -> unit
(** Tell the engine the current byte offset of the input stream (e.g.
    {!Xaos_xml.Sax.bytes_read} after pulling the event about to be fed).
    Purely observational: structures satisfied from here on are stamped
    with this offset, and results emitted at {!finish} record
    [current - stamp] into the [engine/emission] latency histogram.
    Never calling it leaves every latency at 0. One int store — safe on
    the hot path. *)

val frame_matches : t -> (int * Item.t) list
(** (x-node id, element) pairs registered at the innermost open element —
    the "Matches" column of the paper's Table 2. Empty when the innermost
    element was discarded, or at depth 0. *)

val retained_structures : t -> int
(** Matching structures reachable from the root structure — the engine's
    actual end-of-document retention. Counter slots (Section 5.1) retain
    nothing through themselves, and an eager engine retains nothing at
    all. Meaningful after {!finish}. *)

val depth : t -> int
