module Ast = Xaos_xpath.Ast
module Xtree = Xaos_xpath.Xtree
module Xdag = Xaos_xpath.Xdag
module Symbol = Xaos_xml.Symbol

(* Telemetry hook points, process-global across engines (per-run figures
   stay in the per-engine {!Stats.t}). Every operation below is a
   flag-guarded no-op unless a sink is installed. *)
module Tel = Xaos_obs.Telemetry
module Trc = Xaos_obs.Tracer

let span_start_element =
  Tel.span ~help:"time handling element start events"
    "xaos_engine_start_element_seconds"

let span_end_element =
  Tel.span ~help:"time handling element end events (resolution)"
    "xaos_engine_end_element_seconds"

let counter_elements =
  Tel.counter ~help:"element start events fed to engines"
    "xaos_engine_elements_total"

let counter_stored =
  Tel.counter ~help:"elements found relevant and stored"
    "xaos_engine_elements_stored_total"

let counter_structures =
  Tel.counter ~help:"matching structures allocated"
    "xaos_engine_structures_created_total"

let counter_propagations =
  Tel.counter ~help:"matching placements, confirmed pushes and optimistic pulls"
    "xaos_engine_propagations_total"

let gauge_live =
  Tel.gauge ~help:"live matching structures (created - refuted)"
    "xaos_engine_live_structures"

let gauge_retained_bytes =
  Tel.gauge ~help:"estimated bytes held in live matching structures"
    "xaos_engine_retained_bytes"

let hist_lifetime =
  Tel.histogram
    ~help:"elements opened during a matching structure's lifetime, \
           recorded when the structure resolves"
    "xaos_engine_structure_lifetime_elements"

(* Emission latency in document bytes: how much input streamed past
   between a result becoming decidable (its structure turning Satisfied)
   and the result actually being emitted. Eager emission records 0 by
   construction; deferred emission measures the Section 4.4 end-of-run
   collection against the byte offset stamped at satisfaction time. *)
let hist_emission =
  Xaos_obs.Histogram.create ~unit_:"bytes"
    ~help:"bytes streamed between a result becoming decidable and its \
           emission"
    "engine/emission"

type emission =
  | Deferred
  | Eager
  | Earliest

type config = {
  boolean_subtrees : bool;
  relevance_filter : bool;
  emission : emission;
}

let default_config =
  { boolean_subtrees = true; relevance_filter = true; emission = Deferred }

exception Budget_exceeded of { live : int; budget : int }

type level_requirement =
  | Exact of int
  | Any

(* Static, per-x-node view of the query, precomputed from the x-tree and
   x-dag so the per-event work only touches arrays. *)
type slot_info = {
  slot_axis : Ast.axis;
  slot_target : int;  (* x-node id of the x-tree child *)
}

type tree_parent = {
  up_axis : Ast.axis;
  up_node : int;  (* x-node id of the x-tree parent *)
  up_slot : int;  (* index of this x-node in the parent's slots *)
}

type xinfo = {
  label : Xtree.label;
  label_sym : Symbol.t;
      (* interned name test, resolved once at engine creation — never per
         event; [Symbol.none] for wildcard and Root labels *)
  label_wild : bool;  (* the label is the wildcard node test *)
  label_slot : int;
      (* dense per-engine index over the distinct name-test symbols of
         this query (x-nodes sharing a name share the slot); [-1] for
         wildcard and Root. Interest counting indexes a slot array of
         this size rather than one sized by the global vocabulary. *)
  attr_tests : Ast.attr_test list;  (* conjunction; usually empty *)
  text_tests : Ast.text_test list;  (* conjunction; decided at end events *)
  dag_parents : (Xdag.kind * int) array;
  slots : slot_info array;
  pointer_slots : bool array;
  tree_parent : tree_parent option;
  output : bool;
}

(* One open document element is represented by the list of matching
   structures created at its start event, tagged with their x-node ids;
   they are resolved (children of the x-tree first, i.e. by descending
   x-node id) at its end event. The frame records the element's document
   level so that an engine fed a dispatch-filtered (sparse) event stream
   still closes text buffers and restores its depth correctly. *)
type frame = {
  f_level : int;
  f_matches : Matching.t list;
}

(* Tag-interest notifications for shared multi-query dispatch: the engine
   reports when the set of element names its looking-for frontier can
   match changes. A callback fires only on 0 <-> nonzero transitions of a
   tag's active x-node count, so a subscriber maintains an exact tag ->
   interested-engines index with O(1) amortized work per transition. *)
type interest_listener = {
  on_sym : Symbol.t -> bool -> unit;
  on_wildcard : bool -> unit;
}

type interest_state = {
  listener : interest_listener;
  blocked : int array;
      (** per x-node: number of x-dag parents whose open-match stack is
          empty; the node is {e active} (its tag is looked for, levels
          ignored) iff the count is 0 *)
  sym_active : int array;
      (** per label slot (see {!xinfo.label_slot}): number of active
          x-nodes carrying that name test; no hashing on any
          transition *)
  mutable wildcard_active : int;
}

type t = {
  dag : Xdag.t;
  info : xinfo array;
  config : config;
  budget : int;
      (** cap on live (created - refuted) matching structures; exceeding it
          raises {!Budget_exceeded} instead of growing without bound *)
  eager : bool;
  earliest : bool;
      (** earliest-decision emission: emit each primary-output structure
          the moment it is certainly in the final result set (stable and
          anchored, see below), in document order via {!field-pending} *)
  ordered_resolution : bool;
      (** whether same-element (self / or-self) dependencies exist, in
          which case a frame's structures must resolve in descending
          x-node id order; without them any order is correct and the sort
          is skipped *)
  on_match : (Item.t -> unit) option;
  output_ids : int array;
  mutable serial : int;
  mutable next_id : int;
  open_stacks : Matching.t list array;
      (** [open_stacks.(v)]: structures of open elements matching x-node
          [v], innermost (deepest level) first; levels strictly decrease
          down the stack since open elements are nested *)
  mutable frames : frame list;
  mutable depth : int;
  root_struct : Matching.t;
  stats : Stats.t;
  mutable finished : bool;
  mutable aborting : bool;
      (** set by {!abort}: elements being closed virtually have incomplete
          string values, so non-monotone text tests must refute *)
  mutable sparse : bool;
      (** set by {!subscribe_interest}: the engine accepts event streams
          with suppressed (start, end) pairs — levels must still nest but
          need not be contiguous *)
  mutable interest : interest_state option;
  mutable eager_items : Item.t list;  (* reversed *)
  mutable pending : Matching.t array;
      (** earliest mode: binary min-heap on document-order item id of
          the primary-output structures awaiting a verdict; emission
          flushes from the top, so [on_match] fires in document order *)
  mutable pending_len : int;
  mutable final : Result_set.t option;
      (** memoized {!finish} result: a second finish must not replay
          [on_match] or re-record emission latencies *)
  has_text_tests : bool;
  mutable text_buffers : (int * Buffer.t) list;
      (** (level, buffer) for open elements whose structures carry text
          tests, innermost first; character data is appended to all of
          them, since an element's string value includes its descendants'
          text *)
  mutable candidate_cache : int array array;
      (** per symbol id: candidate x-nodes in x-dag topological order,
          memoized per distinct symbol so a start event does not rescan
          every x-node; entries are {!uncomputed} until first use and the
          array grows on demand as new symbols appear *)
  mutable stream_byte : int;
      (** current stream byte offset, pushed in by the driver (0 when no
          driver pushes it); stamped onto structures at satisfaction time
          for emission-latency observation *)
}

(* Physical-equality sentinel for not-yet-computed cache entries: a real
   candidate array never aliases it, and a [-1] element can never be an
   x-node id, so the [==] test is unambiguous. *)
let uncomputed : int array = Array.make 1 (-1)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(* Eager emission (Section 5.1(b)) is sound when the expression uses only
   forward axes (so satisfaction at an end event is final: nothing is
   optimistic), has a single output x-node, and every x-node outside the
   output's subtree sits on the bare chain from Root to the output (so the
   relevance filter alone certifies everything above the output, and no
   side predicate can still be pending when the output element ends). *)
let eager_allowed (xtree : Xtree.t) =
  match xtree.outputs with
  | [ out ] ->
    let forward_only =
      Array.for_all
        (fun (n : Xtree.xnode) ->
          List.for_all (fun (axis, _) -> Ast.forward axis) n.children)
        xtree.nodes
    in
    let rec chain_ok (n : Xtree.xnode) =
      (* walking up from the output: each proper ancestor must have
         exactly one x-tree child (its chain successor) and no pending
         constraints of its own — a text test is only decided at the
         ancestor's end event, long after the output element closed *)
      match n.parent_edge with
      | None -> true
      | Some (_, parent) ->
        List.length parent.children = 1 && parent.texts = [] && chain_ok parent
    in
    forward_only && chain_ok out
  | _ -> false

let build_info config eager (dag : Xdag.t) =
  let xtree = dag.xtree in
  let has_output = Xtree.subtree_has_output xtree in
  let slot_of_sym : (Symbol.t, int) Hashtbl.t = Hashtbl.create 8 in
  Array.map
    (fun (node : Xtree.xnode) ->
      let slots =
        Array.of_list
          (List.map
             (fun (axis, (child : Xtree.xnode)) ->
               { slot_axis = axis; slot_target = child.id })
             node.children)
      in
      let pointer_slots =
        Array.map
          (fun s ->
            (not eager)
            && ((not config.boolean_subtrees) || has_output.(s.slot_target)))
          slots
      in
      let tree_parent =
        Option.map
          (fun (axis, (parent : Xtree.xnode)) ->
            let up_slot =
              let rec index i = function
                | [] -> assert false
                | (_, (c : Xtree.xnode)) :: rest ->
                  if c.id = node.id then i else index (i + 1) rest
              in
              index 0 parent.children
            in
            { up_axis = axis; up_node = parent.id; up_slot })
          node.parent_edge
      in
      let label_sym, label_wild =
        match node.label with
        | Xtree.Test (Ast.Name n) -> (Symbol.intern n, false)
        | Xtree.Test Ast.Wildcard -> (Symbol.none, true)
        | Xtree.Root -> (Symbol.none, false)
      in
      let label_slot =
        if Symbol.equal label_sym Symbol.none then -1
        else
          match Hashtbl.find_opt slot_of_sym label_sym with
          | Some slot -> slot
          | None ->
            let slot = Hashtbl.length slot_of_sym in
            Hashtbl.add slot_of_sym label_sym slot;
            slot
      in
      {
        label = node.label;
        label_sym;
        label_wild;
        label_slot;
        attr_tests = node.attrs;
        text_tests = node.texts;
        dag_parents = Array.of_list dag.parents.(node.id);
        slots;
        pointer_slots;
        tree_parent;
        output = node.output;
      })
    xtree.nodes

let create ?(config = default_config) ?(budget = max_int) ?on_match
    (dag : Xdag.t) =
  let eager =
    config.emission = Eager && config.relevance_filter
    && eager_allowed dag.xtree
  in
  let earliest = config.emission = Earliest in
  let info = build_info config eager dag in
  let root_item =
    { Item.id = 0; sym = Symbol.intern Xaos_xml.Dom.root_tag; level = 0 }
  in
  let root_struct =
    Matching.create ~serial:0 ~xnode:dag.xtree.root.id ~item:root_item
      ~pointer_slots:info.(dag.xtree.root.id).pointer_slots
  in
  (* The root is reachable from itself by definition; stability still has
     to be earned (all its slot entries final), see [try_stabilize]. *)
  if earliest then root_struct.Matching.anchored <- true;
  let open_stacks = Array.make (Xtree.size dag.xtree) [] in
  open_stacks.(dag.xtree.root.id) <- [ root_struct ];
  let ordered_resolution =
    Array.exists
      (List.exists (fun (kind, _) ->
           match kind with
           | Xdag.Kself | Xdag.Kdescendant_or_self -> true
           | Xdag.Kchild | Xdag.Kdescendant -> false))
      dag.children
  in
  {
    dag;
    info;
    config;
    budget;
    eager;
    earliest;
    ordered_resolution;
    on_match;
    output_ids =
      Array.of_list (List.map (fun (n : Xtree.xnode) -> n.id) dag.xtree.outputs);
    serial = 1;
    next_id = 1;
    open_stacks;
    frames = [];
    depth = 0;
    root_struct;
    stats = Stats.create ();
    finished = false;
    aborting = false;
    sparse = false;
    interest = None;
    eager_items = [];
    pending = [||];
    pending_len = 0;
    final = None;
    has_text_tests =
      Array.exists (fun (n : Xtree.xnode) -> n.texts <> []) dag.xtree.nodes;
    text_buffers = [];
    (* start small and grow on demand: under shared dispatch an engine
       only ever sees the symbols it is interested in, so sizing this at
       [Symbol.count ()] would tax sessions with many engines over large
       vocabularies for slots never touched *)
    candidate_cache = Array.make 16 uncomputed;
    stream_byte = 0;
  }

let set_stream_byte t b = t.stream_byte <- b

(* Candidate x-nodes for an element-name symbol, in topological order
   (Kself edges need same-event witnesses registered first). Computed once
   per distinct symbol; the per-event lookup is two array loads and a
   physical-equality test — no hashing, no allocation. *)
let candidates t sym =
  let cache =
    if sym < Array.length t.candidate_cache then t.candidate_cache
    else begin
      let cap = max (sym + 1) (2 * Array.length t.candidate_cache) in
      let cache = Array.make cap uncomputed in
      Array.blit t.candidate_cache 0 cache 0 (Array.length t.candidate_cache);
      t.candidate_cache <- cache;
      cache
    end
  in
  let arr = Array.unsafe_get cache sym in
  if arr != uncomputed then arr
  else begin
    let root_id = t.dag.xtree.root.id in
    let wild = Symbol.matches_wildcard sym in
    let matching =
      Array.to_list t.dag.topo
      |> List.filter (fun v ->
             v <> root_id
             &&
             let i = t.info.(v) in
             Symbol.equal i.label_sym sym || (i.label_wild && wild))
    in
    let arr = Array.of_list matching in
    cache.(sym) <- arr;
    arr
  end

let emits_eagerly t = t.eager

let stats t = t.stats

let depth t = t.depth

(* ------------------------------------------------------------------ *)
(* Tag-interest tracking (shared dispatch support)                     *)
(* ------------------------------------------------------------------ *)

let interest_activate s (info : xinfo array) v =
  let i = info.(v) in
  if i.label_slot >= 0 then begin
    let c = s.sym_active.(i.label_slot) + 1 in
    s.sym_active.(i.label_slot) <- c;
    if c = 1 then s.listener.on_sym i.label_sym true
  end
  else if i.label_wild then begin
    s.wildcard_active <- s.wildcard_active + 1;
    if s.wildcard_active = 1 then s.listener.on_wildcard true
  end

let interest_deactivate s (info : xinfo array) v =
  let i = info.(v) in
  if i.label_slot >= 0 then begin
    let c = s.sym_active.(i.label_slot) - 1 in
    s.sym_active.(i.label_slot) <- c;
    if c = 0 then s.listener.on_sym i.label_sym false
  end
  else if i.label_wild then begin
    s.wildcard_active <- s.wildcard_active - 1;
    if s.wildcard_active = 0 then s.listener.on_wildcard false
  end

(* The open-match stack of x-node [p] went empty -> nonempty: every x-dag
   child of [p] loses one blocker; a child reaching zero blockers becomes
   active (its tag joins the interest set). The converse on
   nonempty -> empty. Both are no-ops without a subscriber. *)
let stack_became_nonempty t p =
  match t.interest with
  | None -> ()
  | Some s ->
    List.iter
      (fun ((_ : Xdag.kind), c) ->
        let b = s.blocked.(c) - 1 in
        s.blocked.(c) <- b;
        if b = 0 then interest_activate s t.info c)
      t.dag.children.(p)

let stack_became_empty t p =
  match t.interest with
  | None -> ()
  | Some s ->
    List.iter
      (fun ((_ : Xdag.kind), c) ->
        if s.blocked.(c) = 0 then interest_deactivate s t.info c;
        s.blocked.(c) <- s.blocked.(c) + 1)
      t.dag.children.(p)

let subscribe_interest t listener =
  (match t.interest with
  | Some _ -> invalid_arg "Engine.subscribe_interest: already subscribed"
  | None -> ());
  t.sparse <- true;
  let n = Array.length t.info in
  let blocked = Array.make n 0 in
  for v = 0 to n - 1 do
    Array.iter
      (fun ((_ : Xdag.kind), p) ->
        if t.open_stacks.(p) = [] then blocked.(v) <- blocked.(v) + 1)
      t.info.(v).dag_parents
  done;
  let slots =
    Array.fold_left (fun acc i -> max acc (i.label_slot + 1)) 0 t.info
  in
  let s =
    { listener; blocked; sym_active = Array.make (max 1 slots) 0;
      wildcard_active = 0 }
  in
  t.interest <- Some s;
  let root_id = t.dag.xtree.root.id in
  for v = 0 to n - 1 do
    if v <> root_id && blocked.(v) = 0 then interest_activate s t.info v
  done

let wants_text t = t.has_text_tests && t.text_buffers <> []

(* Under sparse feeding the engine no longer sees every start event, so
   its element counter would drift from document ids; the dispatcher owns
   the document-order counter and syncs it in before each delivered start
   event, keeping reported items identical to a full feed. *)
let sync_next_id t id = t.next_id <- id

(* ------------------------------------------------------------------ *)
(* Relevance (the looking-for filtering, Section 4.1)                  *)
(* ------------------------------------------------------------------ *)

(* Does the x-dag parent [p], reached over an edge of [kind], have an open
   match at a level compatible with a new element at [level]? All open
   matches lie on the current ancestor path, so the containment part of
   consistency is implied and only levels need checking. For [Kself], the
   witness is the same element's own match for [p], registered earlier in
   this very start event thanks to topological candidate order. *)
let rec stack_satisfies kind level stack =
  match stack with
  | [] -> false
  | (m : Matching.t) :: rest ->
    let ml = m.item.level in
    (match kind with
    | Xdag.Kchild -> ml = level - 1
    | Xdag.Kdescendant -> ml < level
    | Xdag.Kself -> ml = level
    | Xdag.Kdescendant_or_self -> ml <= level)
    || stack_satisfies kind level rest

let relevant t v ~level =
  let parents = t.info.(v).dag_parents in
  let n = Array.length parents in
  let rec loop i =
    i >= n
    ||
    let kind, p = parents.(i) in
    stack_satisfies kind level t.open_stacks.(p) && loop (i + 1)
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

(* One pass over the attribute list per test, stopping at the first
   occurrence of the key (first occurrence wins, as in
   {!Ast.attr_test_matches} over an assoc lookup) — no option or closure
   allocation on the start-event path. *)
let rec attr_test_ok (test : Ast.attr_test) attrs =
  match attrs with
  | [] -> false (* attribute absent: both [@k] and [@k='v'] fail *)
  | { Xaos_xml.Event.attr_name; attr_value } :: rest ->
    if String.equal attr_name test.attr_key then
      match test.attr_value with
      | None -> true (* existence test *)
      | Some expected -> String.equal expected attr_value
    else attr_test_ok test rest

let rec attr_tests_ok tests attrs =
  match tests with
  | [] -> true
  | test :: rest -> attr_test_ok test attrs && attr_tests_ok rest attrs

(* The open witness that made x-node [v] relevant at [level]: the
   innermost level-consistent open match of the first x-dag parent that
   has one. Recorded as the parent cause of a Created trace event; only
   evaluated when the tracer is on, never on the production hot path. *)
let witness_serial t v ~level =
  let parents = t.info.(v).dag_parents in
  let n = Array.length parents in
  let rec loop i =
    if i >= n then -1
    else begin
      let kind, p = parents.(i) in
      let rec scan = function
        | [] -> loop (i + 1)
        | (m : Matching.t) :: rest ->
          let ml = m.item.level in
          let ok =
            match kind with
            | Xdag.Kchild -> ml = level - 1
            | Xdag.Kdescendant -> ml < level
            | Xdag.Kself -> ml = level
            | Xdag.Kdescendant_or_self -> ml <= level
          in
          if ok then m.serial else scan rest
      in
      scan t.open_stacks.(p)
    end
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* Earliest-decision emission                                          *)
(* ------------------------------------------------------------------ *)

(* Generalizes the narrow eager mode to arbitrary expressions, per the
   earliest-answering direction (Gienieczko et al.): emit each candidate
   at the first event where its membership in the final result set is
   decided, instead of holding everything to end of document because an
   optimistic backward-axis placement upstream might still refute it.

   A structure is latched [stable] once it is certain to be Satisfied in
   the completed document whatever the rest of the stream contains:

   - a resolved [Satisfied] structure with [undecided = 0]: every current
     slot entry is itself stable, so no slot can ever empty again and the
     refutation cascade cannot reach it; a resolved structure gains no
     new entries, so the state is final;
   - a still-open [Pending] structure with all slots filled, [undecided =
     0] and no text test: its attribute tests passed at creation, the
     filled slots can never empty (only forward slots fill while open —
     backward slots stay empty until resolution and block this case
     through [satisfied_now]), and no text verdict is outstanding, so its
     own resolution is guaranteed to find it satisfied. Later pushes only
     add entries, never remove, so the latch is monotone. The aborting
     path is covered too: a latched structure has no [text()='v'] test,
     the one construct a virtual close refutes.

   [anchored] marks certain reachability from the final satisfied root
   structure — i.e. membership in a total matching: seeded at the root,
   propagated into the slot entries of structures that are both stable
   and anchored (and onto children pushed into such structures later).
   Stable entries are never removed from slots, so an anchored chain is
   intact at end of document by induction.

   [stable && anchored] therefore means the deferred Section 4.4
   collection is guaranteed to reach and emit this structure — so it can
   be emitted the moment both latches hold. Refutation, conversely,
   discards the candidate without ever emitting. *)
let rec try_stabilize t (m : Matching.t) =
  if
    t.earliest && (not m.stable)
    && m.undecided = 0
    && (match m.state with
       | Matching.Satisfied -> true
       | Matching.Pending ->
         Matching.satisfied_now m && t.info.(m.xnode).text_tests = []
       | Matching.Refuted -> false)
  then begin
    m.stable <- true;
    (* an open-latched structure is decided here, before its resolution
       ever stamps it *)
    if m.sat_byte < 0 then m.sat_byte <- t.stream_byte;
    if m.anchored then anchor_slots t m;
    (* this structure no longer counts as undecided wherever it has been
       placed; targets that reach zero may latch in turn *)
    List.iter
      (fun (p : Matching.placement) ->
        let target = p.Matching.p_target in
        if target.Matching.state <> Matching.Refuted then begin
          target.Matching.undecided <- target.Matching.undecided - 1;
          try_stabilize t target
        end)
      m.placements;
    (* early propagation: a structure that latches while its element is
       still open can be pushed into its forward-axis targets right now
       instead of waiting for its end event — the consistent targets are
       its ancestors' structures, all open since before this element
       started, and no element opening below can add one, so the target
       set at resolution would be exactly this one *)
    if m.state = Matching.Pending then early_push t m
  end

and anchor t (m : Matching.t) =
  if not m.anchored then begin
    m.anchored <- true;
    (* only a stable structure's entries are final; a pending one
       propagates when it latches (see [try_stabilize]) *)
    if m.stable then anchor_slots t m
  end

and anchor_slots t (m : Matching.t) =
  Array.iter
    (function
      | Matching.Pointers store ->
        for i = 0 to store.len - 1 do
          anchor t store.entries.(i).e_child
        done
      | Matching.Counter _ -> ())
    m.slots

(* Restricted to strict forward axes: for [Self] / [Descendant_or_self]
   the witness could be the same element's own structure, whose openness
   at resolution depends on the in-frame resolution order — pushing early
   there could create placements the deferred path never makes. *)
and early_push t (m : Matching.t) =
  match t.info.(m.xnode).tree_parent with
  | Some { up_axis = (Ast.Child | Ast.Descendant) as up_axis; up_node; up_slot }
    ->
    m.early_pushed <- true;
    let l = m.item.Item.level in
    List.iter
      (fun (target : Matching.t) ->
        let ml = target.Matching.item.Item.level in
        if match up_axis with Ast.Child -> ml = l - 1 | _ -> ml < l then
          place_counted t ~optimistic:false ~child:m ~target ~slot:up_slot)
      t.open_stacks.(up_node)
  | Some _ | None -> ()

and place_counted t ~optimistic ~child ~target ~slot =
  Matching.place ~child ~target ~slot;
  if t.earliest then begin
    (* a new entry of a stable anchored structure is itself part of a
       total matching if it survives; the stability gate still applies
       at emission time *)
    if target.Matching.stable && target.Matching.anchored then
      anchor t child;
    (* an already-stable child adds no undecided count, so this entry may
       be the one that completes the target's latch conditions — without
       this the child's own latch walk (which ran before the placement
       existed) never reaches the target *)
    if child.Matching.stable then try_stabilize t target
  end;
  t.stats.propagations <- t.stats.propagations + 1;
  Tel.incr counter_propagations;
  if Trc.enabled () then
    Trc.propagated ~optimistic ~child:child.Matching.serial
      ~target:target.Matching.serial

(* Refutation with the earliest-decision hook: every undo of an
   optimistic placement can zero a surviving target's undecided count and
   latch it stable. *)
let refute_struct t m =
  if t.earliest then
    Matching.refute ~on_undo:(fun target -> try_stabilize t target)
      ~stats:t.stats m
  else Matching.refute ~stats:t.stats m

(* The pending-emission buffer: a binary min-heap on document-order item
   id over every primary-output structure created so far. Flushing pops
   while the top is decided — refuted tops are dropped, stable anchored
   tops are emitted — and stops at the first undecided structure, so the
   [on_match] stream is in document order: an item emitted at the
   end-of-document residual pass always has a larger id than every item
   emitted early (a smaller undecided id would have blocked the flush). *)
let heap_swap t i j =
  let tmp = t.pending.(i) in
  t.pending.(i) <- t.pending.(j);
  t.pending.(j) <- tmp

let heap_id t i = t.pending.(i).Matching.item.Item.id

let heap_push t (m : Matching.t) =
  let cap = Array.length t.pending in
  if t.pending_len = cap then begin
    let grown = Array.make (max 8 (2 * cap)) m in
    Array.blit t.pending 0 grown 0 t.pending_len;
    t.pending <- grown
  end;
  t.pending.(t.pending_len) <- m;
  t.pending_len <- t.pending_len + 1;
  let i = ref (t.pending_len - 1) in
  while !i > 0 && heap_id t ((!i - 1) / 2) > heap_id t !i do
    heap_swap t ((!i - 1) / 2) !i;
    i := (!i - 1) / 2
  done

let heap_pop t =
  t.pending_len <- t.pending_len - 1;
  t.pending.(0) <- t.pending.(t.pending_len);
  let i = ref 0 in
  let moving = ref true in
  while !moving do
    let l = (2 * !i) + 1 in
    let r = l + 1 in
    let smallest = ref !i in
    if l < t.pending_len && heap_id t l < heap_id t !smallest then
      smallest := l;
    if r < t.pending_len && heap_id t r < heap_id t !smallest then
      smallest := r;
    if !smallest <> !i then begin
      heap_swap t !smallest !i;
      i := !smallest
    end
    else moving := false
  done

let emit_now t (m : Matching.t) =
  m.Matching.emitted <- true;
  if Trc.enabled () then Trc.emitted ~serial:m.serial ~item_id:m.item.Item.id;
  if Tel.enabled () && m.sat_byte >= 0 then
    Xaos_obs.Histogram.record hist_emission (t.stream_byte - m.sat_byte);
  match t.on_match with
  | Some f -> f m.item
  | None -> ()

let rec flush_ready t =
  if t.pending_len > 0 then begin
    let m = t.pending.(0) in
    if m.Matching.state = Matching.Refuted then begin
      heap_pop t;
      flush_ready t
    end
    else if m.Matching.stable && m.Matching.anchored then begin
      heap_pop t;
      emit_now t m;
      flush_ready t
    end
  end

let start_element t ?(attrs = []) ~sym ~level () =
  if t.finished then invalid_arg "Engine.start_element: already finished";
  if t.sparse then begin
    if level <= t.depth then
      invalid_arg
        (Printf.sprintf
           "Engine.start_element: level %d does not nest inside current \
            depth %d"
           level t.depth)
  end
  else if level <> t.depth + 1 then
    invalid_arg
      (Printf.sprintf
         "Engine.start_element: level %d does not extend current depth %d"
         level t.depth);
  Tel.enter span_start_element;
  Tel.incr counter_elements;
  let id = t.next_id in
  t.next_id <- id + 1;
  t.depth <- level;
  let st = t.stats in
  st.elements_total <- st.elements_total + 1;
  if level > st.max_depth then st.max_depth <- level;
  (* Candidates come in x-dag topological order, so same-element witnesses
     for Kself edges are registered before they are needed. This is the
     hottest loop of the engine: written without closures, and the item
     descriptor shared by the element's structures is allocated only when
     a first structure is. *)
  let cands = candidates t sym in
  let n = Array.length cands in
  if n = 0 then begin
    st.elements_discarded <- st.elements_discarded + 1;
    t.frames <- { f_level = level; f_matches = [] } :: t.frames;
    Tel.leave span_start_element
  end
  else begin
    let frame = ref [] in
    let item = ref None in
    for i = 0 to n - 1 do
      let v = Array.unsafe_get cands i in
      if
        attr_tests_ok t.info.(v).attr_tests attrs
        && ((not t.config.relevance_filter) || relevant t v ~level)
      then begin
        let item =
          match !item with
          | Some it -> it
          | None ->
            let it = { Item.id; sym; level } in
            item := Some it;
            it
        in
        let m =
          Matching.create ~serial:t.serial ~xnode:v ~item
            ~pointer_slots:t.info.(v).pointer_slots
        in
        if Trc.enabled () then
          Trc.created ~serial:t.serial ~xnode:v ~item_id:id
            ~tag:(Symbol.name sym) ~level
            ~parent_serial:(witness_serial t v ~level);
        t.serial <- t.serial + 1;
        st.structures_created <- st.structures_created + 1;
        st.retained_bytes <- st.retained_bytes + Matching.approx_bytes m;
        if st.retained_bytes > st.retained_peak_bytes then
          st.retained_peak_bytes <- st.retained_bytes;
        Tel.incr counter_structures;
        (match t.open_stacks.(v) with
        | [] ->
          t.open_stacks.(v) <- [ m ];
          stack_became_nonempty t v
        | _ :: _ as stack -> t.open_stacks.(v) <- m :: stack);
        if
          t.earliest
          && Array.length t.output_ids > 0
          && v = t.output_ids.(0)
        then heap_push t m;
        frame := m :: !frame
      end
    done;
    (match !frame with
    | [] -> st.elements_discarded <- st.elements_discarded + 1
    | _ :: _ ->
      st.elements_stored <- st.elements_stored + 1;
      Tel.incr counter_stored;
      if
        t.has_text_tests
        && List.exists
             (fun (m : Matching.t) -> t.info.(m.xnode).text_tests <> [])
             !frame
      then t.text_buffers <- (level, Buffer.create 64) :: t.text_buffers);
    t.frames <- { f_level = level; f_matches = !frame } :: t.frames;
    let live = st.structures_created - st.structures_refuted in
    if live > st.live_peak then st.live_peak <- live;
    Tel.set_gauge gauge_live live;
    Tel.set_gauge gauge_retained_bytes st.retained_bytes;
    Tel.leave span_start_element;
    if live > t.budget then
      raise (Budget_exceeded { live; budget = t.budget })
  end

(* Character data: append to the buffer of every open element that is
   waiting to decide a text test. *)
let text_event t s =
  if t.has_text_tests then
    List.iter (fun (_, buf) -> Buffer.add_string buf s) t.text_buffers

(* Resolve the matching structure [m] of x-node [v] at the end event of
   its element (paper, Sections 4.2-4.3):
   1. fill backward-axis slots by optimistically pulling every consistent
      open candidate (they are all ancestors, still unresolved);
   2. if all slots are filled, the structure represents a (possibly
      optimistic) total matching: push it into the consistent open
      structures of its x-tree parent when the connecting axis is forward
      (backward connections were/will be pulled from the other side);
   3. otherwise refute it, undoing any optimistic placements that already
      involve it. *)
(* Whether an open match at level [ml] is a consistent partner for a
   structure at level [l] over the given axis, the structure being on the
   descendant side for backward axes and the ancestor side for forward
   ones. All open matches are on the current ancestor path, so only the
   level needs checking. *)
let level_ok axis ~l ~ml =
  match axis with
  | Ast.Child | Ast.Parent -> ml = l - 1
  | Ast.Descendant | Ast.Ancestor -> ml < l
  | Ast.Self -> ml = l
  | Ast.Descendant_or_self -> ml <= l
  | Ast.Ancestor_or_self -> ml < l (* the "self" case is handled apart *)

let rec place_consistent t axis ~l ~target ~slot stack =
  match stack with
  | [] -> ()
  | (cand : Matching.t) :: rest ->
    (* the pulled candidates are still-open ancestors: their own
       matchings are unresolved, so this placement is optimistic *)
    if level_ok axis ~l ~ml:cand.item.level then
      place_counted t ~optimistic:true ~child:cand ~target ~slot;
    place_consistent t axis ~l ~target ~slot rest

let rec push_consistent t axis ~l ~child ~slot stack =
  match stack with
  | [] -> ()
  | (target : Matching.t) :: rest ->
    if level_ok axis ~l ~ml:target.item.level then
      place_counted t ~optimistic:false ~child ~target ~slot;
    push_consistent t axis ~l ~child ~slot rest

let rec same_element_match frame xnode =
  match frame with
  | [] -> None
  | (m : Matching.t) :: rest ->
    if m.xnode = xnode then Some m else same_element_match rest xnode

let resolve t frame ~text (m : Matching.t) =
  (* structure lifetime in elements: how many elements started while it
     was open; [m.item.id] is the element id at creation. The [enabled]
     guard keeps the disabled path free of the float boxing a direct
     [observe] call would do. *)
  if Tel.enabled () then
    Tel.observe_int hist_lifetime (t.next_id - m.item.id);
  let v = m.xnode in
  (match t.open_stacks.(v) with
  | top :: rest when top == m ->
    t.open_stacks.(v) <- rest;
    (match rest with [] -> stack_became_empty t v | _ :: _ -> ())
  | _ -> assert false);
  let info = t.info.(v) in
  let text_ok =
    match info.text_tests with
    | [] -> true
    | tests ->
      let value = match text with Some s -> s | None -> assert false in
      (* A virtually-closed element has an incomplete string value:
         [contains] is monotone under extension so a positive verdict is
         final, but [text()='v'] could be revoked by more text — refute. *)
      (not
         (t.aborting
         && List.exists
              (fun (tt : Ast.text_test) -> tt.text_op = Ast.Text_equals)
              tests))
      && List.for_all (fun test -> Ast.text_test_matches test value) tests
  in
  if not text_ok then refute_struct t m
  else begin
  let l = m.item.level in
  for i = 0 to Array.length info.slots - 1 do
    let s = Array.unsafe_get info.slots i in
    match s.slot_axis with
    | Ast.Parent | Ast.Ancestor ->
      place_consistent t s.slot_axis ~l ~target:m ~slot:i
        t.open_stacks.(s.slot_target)
    | Ast.Ancestor_or_self -> (
      place_consistent t s.slot_axis ~l ~target:m ~slot:i
        t.open_stacks.(s.slot_target);
      (* The "or self" witness is this same element's structure for the
         target x-node; it resolved earlier in this frame (larger id),
         so its verdict is already known. *)
      match same_element_match frame s.slot_target with
      | Some same when same.state = Matching.Satisfied ->
        place_counted t ~optimistic:false ~child:same ~target:m ~slot:i
      | Some _ | None -> ())
    | Ast.Child | Ast.Descendant | Ast.Self | Ast.Descendant_or_self -> ()
  done;
  if Matching.satisfied_now m then begin
    m.state <- Matching.Satisfied;
    if m.sat_byte < 0 then m.sat_byte <- t.stream_byte;
    (match info.tree_parent with
    | None -> ()
    | Some _ when m.early_pushed ->
      (* already placed into every consistent target when it latched
         stable while open — pushing again would duplicate entries *)
      ()
    | Some { up_axis; up_node; up_slot } -> (
      match up_axis with
      | Ast.Child | Ast.Descendant | Ast.Self | Ast.Descendant_or_self ->
        push_consistent t up_axis ~l ~child:m ~slot:up_slot
          t.open_stacks.(up_node)
      | Ast.Parent | Ast.Ancestor | Ast.Ancestor_or_self -> ()));
    if t.eager && info.output then begin
      if Trc.enabled () then
        Trc.emitted ~serial:m.serial ~item_id:m.item.id;
      (* emission follows satisfaction within the same event *)
      Xaos_obs.Histogram.record hist_emission 0;
      t.eager_items <- m.item :: t.eager_items;
      match t.on_match with
      | Some f -> f m.item
      | None -> ()
    end;
    (* the confirmed pushes above ran first, so if this latches, the
       undecided decrement reaches every target placed into *)
    try_stabilize t m
  end
  else refute_struct t m
  end

let end_element t =
  match t.frames with
  | [] -> invalid_arg "Engine.end_element: no open element"
  | { f_level = closing_level; f_matches = frame } :: rest ->
    Tel.enter span_end_element;
    t.frames <- rest;
    (* under sparse feeding the enclosing *delivered* element need not sit
       at [closing_level - 1]; the next outer frame knows its level *)
    t.depth <- (match rest with [] -> 0 | outer :: _ -> outer.f_level);
    let text =
      match t.text_buffers with
      | (level, buf) :: deeper when level = closing_level ->
        t.text_buffers <- deeper;
        Some (Buffer.contents buf)
      | _ -> None
    in
    (match frame with
    | [] -> ()
    | [ m ] -> resolve t frame ~text m
    | _ :: _ :: _ ->
      (* Children of the x-tree resolve before their parents so that
         same-element dependencies (self and or-self axes) are ready;
         descending x-node id is exactly that order. Structures were
         prepended in topological order, which need not be id order, so
         sort — but only when such dependencies can exist at all. *)
      let matches =
        if t.ordered_resolution then
          List.sort
            (fun (a : Matching.t) (b : Matching.t) ->
              Int.compare b.xnode a.xnode)
            frame
        else frame
      in
      List.iter (fun m -> resolve t matches ~text m) matches);
    (* verdicts only change at end events (resolution and the refutation
       cascade), so this is the only flush point needed mid-document *)
    if t.earliest then flush_ready t;
    Tel.leave span_end_element

let feed t event =
  match event with
  | Xaos_xml.Event.Start_element { sym; attributes; level; _ } ->
    start_element t ~attrs:attributes ~sym ~level ()
  | Xaos_xml.Event.End_element _ -> end_element t
  | Xaos_xml.Event.Text s -> text_event t s
  | Xaos_xml.Event.Comment _ | Xaos_xml.Event.Processing_instruction _ -> ()

(* Feed a prebuilt tree directly, without materializing intermediate
   events — the hot path of the χαος(DOM) configuration. *)
let rec feed_nodes t nodes =
  match nodes with
  | [] -> ()
  | Xaos_xml.Dom.Element e :: rest ->
    start_element t ~attrs:e.attributes ~sym:e.sym ~level:e.level ();
    feed_nodes t e.children;
    end_element t;
    feed_nodes t rest
  | Xaos_xml.Dom.Text s :: rest ->
    text_event t s;
    feed_nodes t rest
  | (Xaos_xml.Dom.Comment _ | Xaos_xml.Dom.Pi _) :: rest -> feed_nodes t rest

let feed_doc t (doc : Xaos_xml.Dom.doc) = feed_nodes t doc.root.children

(* ------------------------------------------------------------------ *)
(* Finishing and results                                               *)
(* ------------------------------------------------------------------ *)

(* The matching count is only computed when the caller explicitly ran
   with full pointer slots (boolean_subtrees = false): it is an
   introspection artifact (the paper's Figure 4), and counting traverses
   every retained structure, which would tax ordinary runs. *)
let wants_matching_count t =
  (not t.config.boolean_subtrees) && not t.eager

let compute_final t =
  if t.eager then
    {
      Result_set.items = Item.sort_dedup (List.rev t.eager_items);
      tuples = None;
      matching_count = None;
    }
  else if t.root_struct.state = Matching.Satisfied then begin
    (* items report the first output x-node; further marks are only
       visible through the tuples *)
    let primary = t.output_ids.(0) in
    let items, residual =
      if t.earliest then begin
        (* the same Section 4.4 collection as deferred mode — result
           sets are identical by construction — but only structures not
           already streamed out mid-document still owe an [on_match] *)
        let residual = ref [] in
        let on_emit (m : Matching.t) =
          if not m.emitted then residual := m :: !residual
        in
        let items =
          Item.sort_dedup
            (Matching.collect_outputs ~on_emit
               ~is_output:(fun v -> v = primary)
               t.root_struct)
        in
        (items, Some !residual)
      end
      else begin
        let on_emit =
          if Tel.enabled () then (fun (m : Matching.t) ->
            if m.sat_byte >= 0 then
              Xaos_obs.Histogram.record hist_emission
                (t.stream_byte - m.sat_byte))
          else fun _ -> ()
        in
        let items =
          Item.sort_dedup
            (Matching.collect_outputs ~on_emit
               ~is_output:(fun v -> v = primary)
               t.root_struct)
        in
        (items, None)
      end
    in
    (match residual with
    | Some residual ->
      (* every early emission has a smaller item id than any structure
         still pending (it would have blocked the flush otherwise), so
         delivering the residue in id order keeps the whole [on_match]
         stream in document order *)
      List.stable_sort
        (fun (a : Matching.t) (b : Matching.t) ->
          Int.compare a.item.Item.id b.item.Item.id)
        residual
      |> List.iter (fun m -> emit_now t m)
    | None -> (
      match t.on_match with
      | Some f -> List.iter f items
      | None -> ()));
    let tuples =
      if Array.length t.output_ids > 1 then
        Some (Matching.enumerate_tuples ~outputs:t.output_ids t.root_struct)
      else None
    in
    let matching_count =
      if wants_matching_count t then
        Some (Matching.count_matchings t.root_struct)
      else None
    in
    { Result_set.items; tuples; matching_count }
  end
  else Result_set.empty

let finish t =
  match t.final with
  | Some r -> r
  | None ->
    if t.frames <> [] then
      invalid_arg "Engine.finish: document has unclosed elements";
    if not t.finished then begin
      t.finished <- true;
      let root_id = t.dag.xtree.root.id in
      (match t.open_stacks.(root_id) with
      | top :: rest when top == t.root_struct ->
        t.open_stacks.(root_id) <- rest;
        (match rest with [] -> stack_became_empty t root_id | _ :: _ -> ())
      | _ -> assert false);
      (* Root cannot have backward-axis children (that would have made the
         x-dag cyclic), so resolution is a bare satisfaction check. *)
      if Matching.satisfied_now t.root_struct then
        t.root_struct.state <- Matching.Satisfied
      else refute_struct t t.root_struct
    end;
    let r = compute_final t in
    t.final <- Some r;
    r

(* Graceful degradation on truncated input: virtually close every open
   element, then finish. Resolution at the virtual end events sees exactly
   the content streamed so far; ancestor/descendant relations among prefix
   elements are final and [contains] text tests are monotone under
   document extension, while the non-monotone [text()='v'] tests refute on
   virtually-closed elements (see [resolve]). Every reported item is
   therefore already certain — the full document could only add results,
   never revoke these. *)
let abort t =
  t.aborting <- true;
  while t.frames <> [] do
    end_element t
  done;
  finish t

let frame_matches t =
  match t.frames with
  | [] -> []
  | frame :: _ ->
    List.map (fun (m : Matching.t) -> (m.xnode, m.item)) frame.f_matches

(* Number of matching structures still reachable from the root structure —
   what the engine actually holds at end of document (counter slots retain
   nothing; eager mode reaches nothing). *)
let retained_structures t =
  if t.eager then 0
  else begin
    let visited = Hashtbl.create 64 in
    let count = ref 0 in
    let rec visit (m : Matching.t) =
      if not (Hashtbl.mem visited m.serial) then begin
        Hashtbl.add visited m.serial ();
        incr count;
        Array.iter
          (function
            | Matching.Pointers store ->
              for i = 0 to store.len - 1 do
                visit store.entries.(i).e_child
              done
            | Matching.Counter _ -> ())
          m.slots
      end
    in
    visit t.root_struct;
    !count - 1 (* the root structure itself is not a match *)
  end

let run_events ?config dag events =
  let t = create ?config dag in
  List.iter (feed t) events;
  finish t

let run_sax ?config dag parser =
  let t = create ?config dag in
  Xaos_xml.Sax.iter (feed t) parser;
  finish t

(* ------------------------------------------------------------------ *)
(* The derived looking-for set (Section 4.1, Table 2)                  *)
(* ------------------------------------------------------------------ *)

(* Allowed levels for one x-node: the intersection over its x-dag parents
   of the level sets induced by their open matches. A finite set comes
   from child/self edges, a half-infinite ray from descendant edges. *)
type allowed =
  | Finite of int list  (* sorted *)
  | Ray of int  (* all levels >= the bound *)

let intersect a b =
  match a, b with
  | Finite xs, Finite ys -> Finite (List.filter (fun x -> List.mem x ys) xs)
  | Finite xs, Ray r | Ray r, Finite xs -> Finite (List.filter (fun x -> x >= r) xs)
  | Ray r1, Ray r2 -> Ray (max r1 r2)

let looking_for t =
  if t.finished then [ (t.dag.xtree.root.id, Exact 0) ]
  else begin
    let n = Array.length t.info in
    let entries = ref [] in
    for v = n - 1 downto 0 do
      if v <> t.dag.xtree.root.id then begin
        let info = t.info.(v) in
        let allowed =
          Array.fold_left
            (fun acc (kind, p) ->
              match acc with
              | None -> None
              | Some acc -> (
                let levels =
                  List.map (fun (m : Matching.t) -> m.item.level)
                    t.open_stacks.(p)
                in
                match levels with
                | [] -> None
                | _ :: _ ->
                  let contribution =
                    match kind with
                    | Xdag.Kchild ->
                      Finite (List.sort Int.compare (List.map succ levels))
                    | Xdag.Kself -> Finite (List.sort Int.compare levels)
                    | Xdag.Kdescendant ->
                      Ray (List.fold_left min max_int levels + 1)
                    | Xdag.Kdescendant_or_self ->
                      Ray (List.fold_left min max_int levels)
                  in
                  Some (intersect acc contribution)))
            (Some (Ray 0)) info.dag_parents
        in
        match allowed with
        | None | Some (Finite []) -> ()
        | Some (Ray _) -> entries := (v, Any) :: !entries
        | Some (Finite levels) ->
          (* The paper suspends exact entries that cannot match the next
             start event (which is necessarily at depth + 1). *)
          if List.mem (t.depth + 1) levels then
            entries := (v, Exact (t.depth + 1)) :: !entries
      end
    done;
    !entries
  end
