module Ast = Xaos_xpath.Ast
module Symbol = Xaos_xml.Symbol

(* Prefix-sharing trie over (axis, test) steps, generalized from the
   YFilter baseline (lib/baseline/yfilter.ml) so any payload can ride on
   an accept node: the baseline hangs query ids here, Query_set hangs
   equivalence-class keys. Edges precompute their name test's interned
   symbol ([Symbol.none] for the wildcard) so the per-event transition
   compares integers — build and run within one symbol-table generation,
   like every engine. *)
type 'a edge = {
  e_axis : Ast.axis;
  e_test : Ast.node_test;
  e_sym : Symbol.t;  (* [Symbol.none] iff [e_test] is the wildcard *)
  e_target : 'a node;
}

and 'a node = {
  id : int;
  mutable edges : 'a edge list;
  mutable accepts : 'a list;
  mutable has_descendant : bool;
}

type 'a t = {
  root : 'a node;
  mutable states : int;
  mutable payloads : int;
  generation : int;
}

let create () =
  {
    root = { id = 0; edges = []; accepts = []; has_descendant = false };
    states = 1;
    payloads = 0;
    generation = Symbol.generation ();
  }

let generation t = t.generation

let state_count t = t.states

let payload_count t = t.payloads

let add t prefix payload =
  if prefix = [] then invalid_arg "Prefix_gate.add: empty prefix";
  let rec insert node = function
    | [] -> node.accepts <- node.accepts @ [ payload ]
    | (axis, test) :: rest ->
      (match axis with
       | Ast.Child | Ast.Descendant -> ()
       | Ast.Parent | Ast.Ancestor | Ast.Self | Ast.Descendant_or_self
       | Ast.Ancestor_or_self ->
         invalid_arg "Prefix_gate.add: prefix steps must be child/descendant");
      let child =
        match
          List.find_opt
            (fun e -> e.e_axis = axis && e.e_test = test)
            node.edges
        with
        | Some e -> e.e_target
        | None ->
          let child =
            { id = t.states; edges = []; accepts = []; has_descendant = false }
          in
          t.states <- t.states + 1;
          let e_sym =
            match test with
            | Ast.Name n -> Symbol.intern n
            | Ast.Wildcard -> Symbol.none
          in
          node.edges <-
            node.edges
            @ [ { e_axis = axis; e_test = test; e_sym; e_target = child } ];
          if axis = Ast.Descendant then node.has_descendant <- true;
          child
      in
      insert child rest
  in
  insert t.root prefix;
  t.payloads <- t.payloads + 1

(* Runtime: YFilter's stack of active-state sets. An activation is
   {e fresh} when its node was reached by an edge at exactly this level —
   its child edges fire on the element's children, its descendant edges
   on any proper descendant. An activation {e carried} down from a
   shallower level may only fire its descendant edges. A payload is
   reported when its node is freshly activated (the element completes
   the prefix). *)
type 'a activation = {
  a_node : 'a node;
  a_carried : bool;
}

type 'a run = {
  automaton : 'a t;
  mutable stack : 'a activation list list;
}

let start automaton =
  {
    automaton;
    stack = [ [ { a_node = automaton.root; a_carried = false } ] ];
  }

let step_set current sym accepted =
  let next = ref [] in
  let fresh = Hashtbl.create 8 in
  let activate node =
    if not (Hashtbl.mem fresh node.id) then begin
      Hashtbl.add fresh node.id ();
      List.iter (fun p -> accepted := p :: !accepted) node.accepts;
      next := { a_node = node; a_carried = false } :: !next
    end
  in
  (* integer comparison only: the edge's name test was interned at build
     time, and wildcard matchability is a precomputed per-symbol bit *)
  let edge_matches e =
    if Symbol.equal e.e_sym Symbol.none then Symbol.matches_wildcard sym
    else Symbol.equal e.e_sym sym
  in
  let fire (activation : 'a activation) =
    List.iter
      (fun e ->
        match e.e_axis with
        | Ast.Child ->
          if (not activation.a_carried) && edge_matches e then
            activate e.e_target
        | Ast.Descendant -> if edge_matches e then activate e.e_target
        | Ast.Parent | Ast.Ancestor | Ast.Self | Ast.Descendant_or_self
        | Ast.Ancestor_or_self ->
          assert false)
      activation.a_node.edges
  in
  List.iter fire current;
  (* nodes with pending descendant edges survive into the deeper set;
     a fresh copy already in [next] subsumes the carried one *)
  List.iter
    (fun a ->
      if a.a_node.has_descendant && not (Hashtbl.mem fresh a.a_node.id)
      then begin
        Hashtbl.add fresh a.a_node.id ();
        next := { a_node = a.a_node; a_carried = true } :: !next
      end)
    current;
  !next

let start_element run sym =
  match run.stack with
  | current :: _ ->
    let accepted = ref [] in
    let next = step_set current sym accepted in
    run.stack <- next :: run.stack;
    !accepted
  | [] -> invalid_arg "Prefix_gate.start_element: unbalanced events"

let end_element run =
  match run.stack with
  | _ :: (_ :: _ as rest) -> run.stack <- rest
  | [ _ ] | [] -> invalid_arg "Prefix_gate.end_element: unbalanced events"

let feed run event =
  match event with
  | Xaos_xml.Event.Start_element { sym; _ } -> start_element run sym
  | Xaos_xml.Event.End_element _ -> end_element run; []
  | Xaos_xml.Event.Text _ | Xaos_xml.Event.Comment _
  | Xaos_xml.Event.Processing_instruction _ ->
    []
