(** Matching structures (paper, Section 4.2).

    A matching structure [M(v, e)] compactly represents the set of
    matchings at x-node [v] in which [v] is mapped to document element
    [e]. It holds one {e submatching slot} per x-tree child of [v]; a slot
    is a set of matching structures of that child ({!Pointers}), or — the
    Section 5.1 optimization — a bare support count ({!Counter}) when the
    child's subtree contains no output x-node, in which case the child
    structures do not need to be retained for the output traversal and can
    be reclaimed by the GC.

    Every placement of a structure into a slot is recorded in the placed
    structure so that it can be revoked later: propagation across backward
    axes is {e optimistic} (paper steps 13 and 22) and {!refute} performs
    the recursive cleanup of step 23. *)

type state =
  | Pending  (** the element is still open, or being resolved *)
  | Satisfied  (** a total matching at this x-node (possibly optimistic) *)
  | Refuted  (** conclusively no total matching *)

(** A pointer slot is a growable array with O(1) swap-with-last removal;
    each entry records its index and each placement points at its entry,
    so undoing one optimistic propagation never rescans a submatching. *)
type slot_store = {
  mutable entries : entry array;
  mutable len : int;
}

and entry = {
  e_child : t;
  mutable e_index : int;
}

and slot =
  | Pointers of slot_store
  | Counter of int ref

and t = {
  serial : int;  (** unique per engine run; used as a visited key *)
  xnode : int;
  item : Item.t;
  slots : slot array;
      (** indexed like the x-node's [Xtree.children] list *)
  mutable placements : placement list;
      (** where this structure has been placed; consulted by {!refute} *)
  mutable state : state;
  mutable sat_byte : int;
      (** stream byte offset when this structure first became
          [Satisfied]; [-1] until then, and reset to [-1] by {!refute}
          (a superseded satisfaction must not leak into latency
          accounting). The engine stamps it so that emission latency —
          bytes of document between a result becoming decidable and it
          being emitted — can be observed. *)
  mutable undecided : int;
      (** earliest-decision bookkeeping: number of live placements into
          this structure whose child is not yet [stable]. Incremented by
          {!place}, decremented when the child is refuted (by {!refute})
          or latched stable (by the engine). [0] means every current
          slot entry is final, so no slot of this structure can ever
          empty again. *)
  mutable stable : bool;
      (** latched by the engine (earliest mode): this structure is
          certain to be [Satisfied] in the completed document and can
          never be refuted. Monotone — never unset. *)
  mutable anchored : bool;
      (** latched by the engine (earliest mode): certainly reachable
          from the final satisfied root structure, i.e. it participates
          in a total matching of the whole query. *)
  mutable emitted : bool;
      (** earliest mode: [on_match] already fired for this structure;
          the end-of-run collection must not deliver it again. *)
  mutable early_pushed : bool;
      (** earliest mode: this structure latched stable while its element
          was still open and the engine pushed it into its consistent
          forward-axis targets at that moment; resolution must not push
          it again. *)
}

and placement = {
  p_target : t;
  p_slot : int;
  p_entry : entry option;  (** [None] when the slot is a counter *)
}

val create : serial:int -> xnode:int -> item:Item.t -> pointer_slots:bool array -> t
(** [pointer_slots.(i)] selects {!Pointers} (vs {!Counter}) for slot [i]. *)

val approx_bytes : t -> int
(** Rough heap footprint of this structure in bytes (record, slots, tag
    string) — summed into {!Stats.t.retained_bytes} by the engine so the
    relevance ratio (retained vs document bytes) can be reported. *)

val place : child:t -> target:t -> slot:int -> unit
(** Add [child] to [target]'s slot and record the placement in [child]. *)

val slot_filled : t -> int -> bool

val satisfied_now : t -> bool
(** All slots non-empty. *)

val refute : ?on_undo:(t -> unit) -> stats:Stats.t -> t -> unit
(** Mark the structure [Refuted] and undo all its placements; if removing
    it from a previously [Satisfied] target empties one of the target's
    slots, the target is refuted recursively. Each undo decrements the
    target's [undecided] count (a refuted child was never [stable], so it
    was counted at {!place} time). [on_undo] (default a no-op) is called
    for each surviving target whose slot entry was removed without
    triggering recursive refutation — the engine's hook to re-check
    earliest-decision stability. Also resets [sat_byte]. *)

val count_matchings : t -> int
(** Number of distinct total matchings represented (the paper's Figure 4
    counts 4 for the running example). Memoized over the shared DAG.
    Requires all slots to be [Pointers] (i.e. the Section 5.1 counter
    optimization disabled). *)

val collect_outputs :
  ?on_emit:(t -> unit) -> is_output:(int -> bool) -> t -> Item.t list
(** The output projection of all represented matchings: traverses the
    structure once (visited set on serials) emitting the element of every
    reached structure whose x-node is an output — the paper's Section 4.4
    emission. Unsorted, duplicate-free by construction of the visit.
    [on_emit] (default a no-op) is called once per emitted structure —
    the observability hook for emission-latency measurement. *)

val enumerate_tuples : outputs:int array -> t -> Item.t array list
(** Multi-output result tuples (Section 5.3): one tuple per distinct
    output-projection of a total matching, each array indexed like
    [outputs]. Materializes the cross products — intended for result sets
    of sane size; see {!count_matchings} for a cheap cardinality. *)

val pp : Format.formatter -> t -> unit
(** One-line summary, e.g. [M(W(7)@4 : x3) sat]. *)
