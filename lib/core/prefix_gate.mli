(** Shared-prefix automaton front-end: a payload-polymorphic
    generalization of the YFilter baseline's prefix-sharing trie
    (see {!Xaos_baseline.Yfilter}, Diao et al., which now delegates its
    matching to this module).

    Prefixes are linear runs of [child]/[descendant] steps with name or
    wildcard tests, evaluated from the document root. All registered
    prefixes share one trie; a document is walked with a stack of active
    state sets, and each element reports the payloads whose prefix it
    completes. Shared prefixes cost one state-set entry no matter how
    many payloads hang off them — the YFilter scalability property.

    {!Query_set} uses this as the dispatch front-end for whole-query-set
    compaction: payloads are equivalence-class keys (see
    {!Query.class_key}), class engines stay dormant until the gate
    accepts one of their {!Query.gate_prefixes}, and are then attached
    mid-document through the open-chain replay machinery. *)

type 'a t
(** The shared trie. Grows by {!add}; never shrinks. *)

val create : unit -> 'a t

val generation : 'a t -> int
(** The symbol-table generation the trie was built in. Edge symbols are
    interned at {!add} time, so the trie is only valid while
    [Xaos_xml.Symbol.generation () = generation t] — rebuild after a
    reset. *)

val add : 'a t -> (Xaos_xpath.Ast.axis * Xaos_xpath.Ast.node_test) list -> 'a -> unit
(** Register a prefix; the payload is reported by every run whenever an
    element completes the prefix.
    @raise Invalid_argument on an empty prefix or a step whose axis is
    not [child]/[descendant]. *)

val state_count : 'a t -> int
(** Number of trie nodes — with shared prefixes, typically far fewer
    than the total number of steps. *)

val payload_count : 'a t -> int
(** Number of {!add}ed prefixes. *)

(** {1 Running} *)

type 'a run
(** A walk over one document. Cheap to start; one per document. *)

val start : 'a t -> 'a run

val start_element : 'a run -> Xaos_xml.Symbol.t -> 'a list
(** Advance on an element-start and return the payloads newly accepted
    at this element (a payload is reported once per accepting element,
    in {!add} order per trie node). Almost always []. *)

val end_element : 'a run -> unit

val feed : 'a run -> Xaos_xml.Event.t -> 'a list
(** Event-driven convenience over {!start_element}/{!end_element}; text,
    comment and PI events return []. *)
