type t = {
  sink : Xaos_xml.Event.t -> unit;
  mutable depth : int;
  mutable elements : int;
}

let create sink = { sink; depth = 0; elements = 0 }

let attributes attrs =
  List.map
    (fun (attr_name, attr_value) -> { Xaos_xml.Event.attr_name; attr_value })
    attrs

let element t ?(attrs = []) tag body =
  t.depth <- t.depth + 1;
  t.elements <- t.elements + 1;
  let level = t.depth in
  let sym = Xaos_xml.Symbol.intern tag in
  t.sink
    (Xaos_xml.Event.Start_element
       { name = tag; sym; attributes = attributes attrs; level });
  body ();
  t.sink (Xaos_xml.Event.End_element { name = tag; sym; level });
  t.depth <- t.depth - 1

let text t s = if String.length s > 0 then t.sink (Xaos_xml.Event.Text s)

let leaf t ?attrs tag content = element t ?attrs tag (fun () -> text t content)

let level t = t.depth

let element_count t = t.elements
