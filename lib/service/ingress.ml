type 'a verdict =
  | Accepted
  | Shed_incoming
  | Displaced of 'a

type 'a cell = {
  pri : int;
  seq : int;
  item : 'a;
}

type 'a t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  high : int;
  low : int;
  (* take order: priority descending, then seq ascending — so the head is
     the next item out and the LAST cell is the displacement victim
     (lowest priority, youngest). Linear insertion: the queue is bounded
     by [high], which is small by design. *)
  mutable cells : 'a cell list;
  mutable len : int;
  mutable seq : int;
  mutable overloaded : bool;
  mutable closed : bool;
  mutable shed : int;
  mutable displaced : int;
  mutable overload_entries : int;
}

let create ?low ~high () =
  let low = match low with Some l -> l | None -> high / 2 in
  if not (0 <= low && low < high) then
    invalid_arg "Ingress.create: need 0 <= low < high";
  { mu = Mutex.create (); nonempty = Condition.create (); high; low;
    cells = []; len = 0; seq = 0; overloaded = false; closed = false;
    shed = 0; displaced = 0; overload_entries = 0 }

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let insert t ~priority item =
  let cell = { pri = priority; seq = t.seq; item } in
  t.seq <- t.seq + 1;
  let rec go = function
    | c :: rest when c.pri >= priority -> c :: go rest
    | rest -> cell :: rest
  in
  t.cells <- go t.cells;
  t.len <- t.len + 1

(* drop the last cell: lowest priority, youngest within it *)
let drop_victim t =
  let rec go = function
    | [] -> assert false
    | [ last ] -> ([], last)
    | c :: rest ->
      let rest', last = go rest in
      (c :: rest', last)
  in
  let cells', victim = go t.cells in
  t.cells <- cells';
  t.len <- t.len - 1;
  victim

let offer t ~priority item =
  with_lock t @@ fun () ->
  if t.closed then begin
    t.shed <- t.shed + 1;
    Shed_incoming
  end
  else if (not t.overloaded) && t.len < t.high then begin
    insert t ~priority item;
    if t.len >= t.high then begin
      t.overloaded <- true;
      t.overload_entries <- t.overload_entries + 1
    end;
    Condition.signal t.nonempty;
    Accepted
  end
  else begin
    if not t.overloaded then begin
      (* len reached high without the accept path noticing (e.g. high
         watermark hit exactly by displacement churn) *)
      t.overloaded <- true;
      t.overload_entries <- t.overload_entries + 1
    end;
    if t.len = 0 then begin
      (* overloaded but drained (hysteresis window): there is room *)
      insert t ~priority item;
      Condition.signal t.nonempty;
      Accepted
    end
    else begin
      let last = List.nth t.cells (t.len - 1) in
      if priority > last.pri then begin
        let victim = drop_victim t in
        insert t ~priority item;
        t.displaced <- t.displaced + 1;
        Condition.signal t.nonempty;
        Displaced victim.item
      end
      else begin
        t.shed <- t.shed + 1;
        Shed_incoming
      end
    end
  end

let take t =
  with_lock t @@ fun () ->
  let rec wait () =
    match t.cells with
    | c :: rest ->
      t.cells <- rest;
      t.len <- t.len - 1;
      if t.overloaded && t.len <= t.low then t.overloaded <- false;
      Some c.item
    | [] ->
      if t.closed then None
      else begin
        Condition.wait t.nonempty t.mu;
        wait ()
      end
  in
  wait ()

let close t =
  with_lock t @@ fun () ->
  t.closed <- true;
  Condition.broadcast t.nonempty

let length t = with_lock t @@ fun () -> t.len

let overloaded t = with_lock t @@ fun () -> t.overloaded

let shed_count t = with_lock t @@ fun () -> t.shed

let displaced_count t = with_lock t @@ fun () -> t.displaced

let overload_entries t = with_lock t @@ fun () -> t.overload_entries
