(** The chaos soak: one shared harness for the robustness acceptance
    test, the CI smoke job and the [xaos soak] subcommand.

    It starts a real {!Server} on a Unix-domain socket {e in-process},
    connects subscriber and publisher clients over the socket, and
    drives thousands of documents through it with {!Xaos_xml.Chaos}
    faults enabled. Every chaos kind maps to a wire-level behaviour:

    - byte-level faults (truncation, tag corruption, text/depth bursts)
      are applied to the published bytes with {!Xaos_xml.Chaos.corrupt};
    - [Split_refill] publishes the request line in tiny write chunks
      (the server must reassemble frames across reads);
    - [Inject_exn] opens a throwaway connection, sends {e half} a
      publish line and slams it shut — a client dying mid-request.

    One {e poison} subscription ([//*[*]//*[*]//*]) is registered whose
    live-structure count exceeds the configured budget on every
    document, so it aborts, quarantines, backs off, is re-admitted and
    fails again — exercising the whole quarantine lifecycle. The healthy
    subscriptions are differentially checked: for every document whose
    bytes reached the server unfaulted, the per-subscription match
    counts in the [processed] event must equal a clean
    {!Xaos_core.Query_set} oracle run computed before the server
    started. An overload phase (bursts of low-priority documents past
    the high watermark, then high-priority displacers) asserts explicit
    shed and displacement responses.

    The harness never asserts itself — it reports; callers gate. *)

type config = {
  docs : int;  (** main-stream documents *)
  subs : int;  (** live subscriptions, including the poison one *)
  fault_rate : float;
  seed : int;
  socket_path : string;
  report_path : string option;  (** write the final run report here *)
  event_log_path : string option;
      (** stream every {!Xaos_obs.Eventlog} record to this NDJSON file
          as it happens — the artifact CI uploads *)
  slow_ms : float option;
      (** broker slow-document threshold; [Some 0.] (the default) flags
          every document, making the slow-log acceptance gate
          deterministic *)
  flight_sample : int;
      (** flight-recorder sampling grid (every Nth document keeps);
          0 disables the recorder and its gate *)
  flight_dir : string option;
      (** write kept flight recordings here (bounded by the recorder's
          file cap); [None] keeps them in memory only *)
}

val default_config : config
(** 2000 docs, 100 subs, fault rate 0.15, seed 42, socket in the temp
    directory, no report or event-log file, slow threshold 0 ms, flight
    sampling every 25th document with no output directory.

    The harness enables {!Xaos_obs.Telemetry}, the {!Xaos_obs.Eventlog}
    and {!Xaos_obs.Attrib} for the duration of {!run} (restoring the
    prior state on exit), so the summary's report carries populated
    per-stage and emission-latency histograms plus the attribution
    section, and the conservation check always runs. *)

type summary = {
  published : int;  (** main-stream documents offered *)
  completed : int;  (** processed + shed + displaced *)
  processed : int;
  shed : int;  (** overload: refused at the door *)
  displaced : int;  (** overload: evicted from the queue *)
  client_aborts : int;  (** connections killed mid-publish *)
  match_events : int;
  item_events : int;
      (** mid-document ["item"] pushes received from earliest-mode
          subscriptions (every other healthy subscription opts in) *)
  item_checked : int;
      (** (checked document, earliest subscription) pairs whose streamed
          item count was compared to the final match count *)
  item_mismatches : int;  (** pairs where the two delivery paths disagreed *)
  quarantine_events : int;  (** quarantine notifications delivered *)
  readmit_events : int;
  sax_faults : int;
  limit_ends : int;
  deadline_ends : int;
  quarantined_total : int;  (** broker-side quarantine transitions *)
  readmitted_total : int;
  checked : int;  (** differential comparisons performed *)
  mismatches : int;
  mismatch_examples : string list;  (** first few, for diagnostics *)
  overload_seen : bool;
  crashes : int;  (** server thread crashes — must be 0 *)
  report_valid : bool;  (** final report passed {!Xaos_obs.Report.validate} *)
  log_quarantines : int;
      (** typed (reason-coded) quarantine records in the event log *)
  log_sheds : int;
  log_readmits : int;
  log_slow : int;  (** typed slow-document records in the event log *)
  slow_docs : int;  (** broker slow-log entries recorded *)
  slow_gate : bool;
      (** the configured threshold makes slow records deterministic
          ([slow_ms = Some 0.]), so {!healthy} may require them *)
  attrib_subs : int;  (** cost accounts registered during the run *)
  attrib_errors : string list;
      (** conservation failures: any disagreement between the
          {!Xaos_obs.Attrib} registry totals and the broker's
          independently accumulated pipeline totals — must be empty *)
  flight_written : int;  (** flight-recording files written *)
  flight_gate : bool;  (** the recorder was active ([flight_sample > 0]) *)
  flight_stages : string list;
      (** span names of the last kept flight recording — {!healthy}
          requires all six pipeline stages when [flight_gate] *)
  latency_sections : string list;
      (** names of the non-empty latency histograms in the final report *)
  report : Xaos_obs.Report.t;
}

val run : ?progress:(string -> unit) -> config -> summary
(** Runs the whole scenario and stops the server before returning.
    [progress] receives coarse phase messages (the CLI prints them, the
    test suite passes [ignore]). *)

val healthy : summary -> (unit, string) result
(** The acceptance gate in one place: [Ok] when no crashes, no
    differential mismatches (including the earliest-mode item-vs-match
    comparison, which must have run at least once and agreed
    everywhere), every published document accounted for,
    quarantine + re-admission + overload all observed, the report
    schema-valid, the event log holding at least one typed quarantine,
    shed and readmit record, the per-stage + emission latency
    histograms all non-empty, cost attribution conserved against the
    pipeline totals, and — when the respective feature gates are set —
    slow-document records present and the last flight recording
    covering all six pipeline stages; [Error reason] otherwise. *)
