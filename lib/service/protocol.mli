(** Wire protocol of the subscription service: line-delimited JSON over a
    Unix-domain socket, one request or response object per line, encoded
    with {!Xaos_obs.Json} (no external JSON dependency).

    Requests (client → server) carry an ["op"] field:
    {v
    {"op":"subscribe","name":"q1","query":"//a//b"}
    {"op":"unsubscribe","name":"q1"}
    {"op":"publish","id":"doc-1","priority":5,"doc":"<a><b/></a>"}
    {"op":"stats"} {"op":"report"} {"op":"shutdown"}
    {"op":"stats-stream","interval_s":1.0,"count":10}
    {"op":"metrics"}
    {"op":"profile","n":10,"by":"match_s"}
    {"op":"slowlog","max":20}
    v}

    Responses and asynchronous events (server → client) carry either an
    ["ok"] field (the direct answer to a request) or an ["event"] field:
    [item] (one result element of an [earliest] subscription this
    connection owns, pushed mid-document the moment it is decided, with
    the element's document-order id, tag and level),
    [match] (a subscription this connection owns matched a document),
    [processed] (the document this connection published was evaluated,
    with per-subscription match counts and fault accounting),
    [overload] (the published document was shed or displaced by admission
    control), [quarantine]/[readmit] (lifecycle of a subscription
    this connection owns), and [stats] (one periodic snapshot of a
    running [stats-stream]). *)

type request =
  | Subscribe of { name : string; query : string; earliest : bool }
      (** [earliest] opts this subscription into earliest-decision
          emission: the server additionally pushes one ["item"] event
          per result element the moment it is decided, while the
          document is still streaming (the per-document ["match"]
          summary still follows). Optional on the wire, default
          [false]. *)
  | Unsubscribe of { name : string }
  | Publish of { doc_id : string; priority : int; doc : string }
  | Stats
  | Stats_stream of { interval_s : float; count : int option }
      (** push a ["stats"] event with the full stats snapshot every
          [interval_s] seconds on this connection, [count] times ([None]
          = until the connection closes). [interval_s] defaults to 1.0
          on the wire and must be positive. *)
  | Metrics
      (** one-shot Prometheus-style text exposition of every telemetry
          cell and latency histogram ({!Xaos_obs.Expose.render}),
          returned in the ["metrics"] field of the reply *)
  | Profile of { top_n : int; by : string }
      (** the per-subscription cost table ({!Xaos_obs.Attrib}): registry
          totals plus the [top_n] most expensive accounts ordered by
          [by] (an {!Xaos_obs.Attrib.order_of_string} spelling; defaults
          on the wire: [n] 10, [by] ["match_s"]). Answered even while
          attribution is disabled — the reply carries an ["enabled"]
          flag so the client can say so. *)
  | Slowlog of { max : int }
      (** the newest [max] (wire default 20) slow-document records from
          the broker's threshold-triggered log
          ({!Broker.slow_docs}). *)
  | Report
  | Shutdown

val request_to_json : request -> Xaos_obs.Json.t

val request_of_json : Xaos_obs.Json.t -> (request, string) result

val request_of_line : string -> (request, string) result
(** Parse one line (without the trailing newline). *)

val op_name : request -> string

(** {1 Response builders}

    All return a single-object {!Xaos_obs.Json.t}; {!to_line} frames it. *)

val ok : op:string -> (string * Xaos_obs.Json.t) list -> Xaos_obs.Json.t

val error : op:string -> string -> Xaos_obs.Json.t

val overload : doc_id:string -> shed:[ `Incoming | `Displaced of string ] ->
  Xaos_obs.Json.t
(** The admission-control refusal, sent to [doc_id]'s publisher:
    [`Incoming] means [doc_id] was refused at the door; [`Displaced by]
    means [doc_id] had been queued but was evicted by the
    higher-priority document [by]. *)

val event : kind:string -> (string * Xaos_obs.Json.t) list -> Xaos_obs.Json.t

val to_line : Xaos_obs.Json.t -> string
(** Compact single-line encoding, trailing ['\n'] included. *)
