type config = {
  threshold : int;
  base_penalty : int;
  max_penalty : int;
}

let default_config = { threshold = 3; base_penalty = 16; max_penalty = 1024 }

type entry = {
  mutable consecutive : int;
  mutable penalty : int;  (** length of the next quarantine *)
  mutable state : (string * int) option;  (** (reason, release tick) *)
}

type t = {
  config : config;
  entries : (string, entry) Hashtbl.t;
  mutable n_quarantined : int;
  mutable n_readmitted : int;
}

let create ?(config = default_config) () =
  if config.threshold < 1 then invalid_arg "Quarantine: threshold < 1";
  { config; entries = Hashtbl.create 64; n_quarantined = 0; n_readmitted = 0 }

let entry t name =
  match Hashtbl.find_opt t.entries name with
  | Some e -> e
  | None ->
    let e =
      { consecutive = 0; penalty = t.config.base_penalty; state = None }
    in
    Hashtbl.add t.entries name e;
    e

let record_failure t ~now ~name ~reason =
  let e = entry t name in
  e.consecutive <- e.consecutive + 1;
  if e.consecutive < t.config.threshold then `Counted
  else begin
    e.consecutive <- 0;
    e.state <- Some (reason, now + e.penalty);
    e.penalty <- min t.config.max_penalty (e.penalty * 2);
    t.n_quarantined <- t.n_quarantined + 1;
    `Quarantined
  end

let record_success t ~name =
  match Hashtbl.find_opt t.entries name with
  | None -> ()
  | Some e ->
    e.consecutive <- 0;
    e.penalty <- max t.config.base_penalty (e.penalty / 2)

let is_quarantined t name =
  match Hashtbl.find_opt t.entries name with
  | Some { state = Some _; _ } -> true
  | _ -> false

let reason t name =
  match Hashtbl.find_opt t.entries name with
  | Some { state = Some (r, _); _ } -> Some r
  | _ -> None

let due t ~now =
  Hashtbl.fold
    (fun name e acc ->
      match e.state with
      | Some (_, release) when release <= now -> name :: acc
      | _ -> acc)
    t.entries []
  |> List.sort compare

let readmit t name =
  match Hashtbl.find_opt t.entries name with
  | Some ({ state = Some _; _ } as e) ->
    e.state <- None;
    e.consecutive <- 0;
    t.n_readmitted <- t.n_readmitted + 1
  | _ -> ()

let forget t name = Hashtbl.remove t.entries name

let quarantined t =
  Hashtbl.fold
    (fun name e acc ->
      match e.state with
      | Some (reason, release) -> (name, reason, release) :: acc
      | None -> acc)
    t.entries []
  |> List.sort compare

let times_quarantined t = t.n_quarantined

let times_readmitted t = t.n_readmitted
