module Json = Xaos_obs.Json
module Report = Xaos_obs.Report
module Sax = Xaos_xml.Sax
module Chaos = Xaos_xml.Chaos
module Prng = Xaos_workloads.Prng
open Xaos_core

type config = {
  docs : int;
  subs : int;
  fault_rate : float;
  seed : int;
  socket_path : string;
  report_path : string option;
  event_log_path : string option;
  slow_ms : float option;
  flight_sample : int;
  flight_dir : string option;
}

let default_config =
  { docs = 2000; subs = 100; fault_rate = 0.15; seed = 42;
    socket_path = Filename.concat (Filename.get_temp_dir_name ()) "xaos-soak.sock";
    report_path = None; event_log_path = None;
    slow_ms = Some 0.; flight_sample = 25; flight_dir = None }

type summary = {
  published : int;
  completed : int;
  processed : int;
  shed : int;
  displaced : int;
  client_aborts : int;
  match_events : int;
  item_events : int;  (** mid-document pushes from earliest subscriptions *)
  item_checked : int;
      (** (checked doc, earliest sub) pairs differentially verified *)
  item_mismatches : int;
      (** pairs whose streamed item count ≠ the final match count *)
  quarantine_events : int;
  readmit_events : int;
  sax_faults : int;
  limit_ends : int;
  deadline_ends : int;
  quarantined_total : int;
  readmitted_total : int;
  checked : int;
  mismatches : int;
  mismatch_examples : string list;
  overload_seen : bool;
  crashes : int;
  report_valid : bool;
  log_quarantines : int;
  log_sheds : int;
  log_readmits : int;
  log_slow : int;
  slow_docs : int;
  slow_gate : bool;
  attrib_subs : int;
  attrib_errors : string list;
  flight_written : int;
  flight_gate : bool;
  flight_stages : string list;
  latency_sections : string list;
  report : Report.t;
}

(* {1 Workload shape}

   Small topic documents (~30 elements) so thousands evaluate in
   seconds; the healthy queries are the selective pub/sub class of
   bench/filtering.ml. The poison query's live-structure count on this
   shape (~190, measured) sits far above the healthy peak (~15), so a
   budget between the two makes it — and only it — abort on every
   document: the quarantine lifecycle runs on the main stream itself. *)

let topic i = Printf.sprintf "t%02d" i

let topic_count = 40

let gen_doc rng =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<feed><channel>";
  for _ = 1 to 3 do
    let t = topic (Prng.int rng topic_count) in
    Buffer.add_string buf ("<" ^ t ^ ">");
    for i = 1 to 8 do
      Buffer.add_string buf
        (Printf.sprintf "<item><name>n%d</name></item>" i)
    done;
    Buffer.add_string buf ("</" ^ t ^ ">")
  done;
  Buffer.add_string buf "</channel></feed>";
  Buffer.contents buf

let gen_query rng =
  let t = topic (Prng.int rng topic_count) in
  match Prng.int rng 3 with
  | 0 -> Printf.sprintf "//%s/item" t
  | 1 -> Printf.sprintf "/feed/channel/%s//name" t
  | _ -> Printf.sprintf "//%s//name" t

let poison_name = "poison"

let poison_query = "//*[*]//*[*]//*"

let structure_budget = 96

(* {1 Socket client plumbing} *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then go (off + Unix.write fd b off (len - off))
  in
  go 0

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path) with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e);
  fd

let read_lines fd on_line =
  let chunk = Bytes.create 65536 in
  let acc = Buffer.create 4096 in
  let process () =
    let s = Buffer.contents acc in
    let len = String.length s in
    let rec go start =
      match String.index_from_opt s start '\n' with
      | None ->
        Buffer.clear acc;
        Buffer.add_substring acc s start (len - start)
      | Some nl ->
        on_line (String.sub s start (nl - start));
        go (nl + 1)
    in
    go 0
  in
  let rec loop () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes acc chunk 0 n;
      process ();
      loop ()
    | exception Unix.Unix_error _ -> ()
  in
  loop ()

let send fd req = write_all fd (Protocol.to_line (Protocol.request_to_json req))

let publish_line ~doc_id ~priority doc =
  Protocol.to_line
    (Protocol.request_to_json (Protocol.Publish { doc_id; priority; doc }))

(* {1 The shared tally: everything the reader threads learn} *)

type tally = {
  mu : Mutex.t;
  mutable sub_acks : int;
  mutable sub_errors : string list;
  mutable accepted : int;
  mutable shed : int;
  mutable displaced : int;
  mutable processed : int;
  mutable match_events : int;
  mutable item_events : int;
  item_counts : (string, int) Hashtbl.t;  (* "<doc>/<sub>" -> items pushed *)
  mutable quarantine_events : int;
  mutable readmit_events : int;
  mutable sax_faults : int;
  mutable limit_ends : int;
  mutable deadline_ends : int;
  outcomes : (string, (string * int) list) Hashtbl.t;
  terminal : (string, unit) Hashtbl.t;
  mutable stats_json : Json.t option;
  mutable report_json : Json.t option;
}

let new_tally () =
  { mu = Mutex.create (); sub_acks = 0; sub_errors = []; accepted = 0;
    shed = 0; displaced = 0; processed = 0; match_events = 0;
    item_events = 0; item_counts = Hashtbl.create 4096;
    quarantine_events = 0; readmit_events = 0; sax_faults = 0;
    limit_ends = 0; deadline_ends = 0; outcomes = Hashtbl.create 4096;
    terminal = Hashtbl.create 4096; stats_json = None; report_json = None }

let locked ty f =
  Mutex.lock ty.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock ty.mu) f

let on_json ty j =
  locked ty @@ fun () ->
  let str name = Option.bind (Json.member name j) Json.to_str in
  let int name =
    Option.value ~default:0 (Option.bind (Json.member name j) Json.to_int)
  in
  match str "event" with
  | Some "processed" ->
    ty.processed <- ty.processed + 1;
    ty.sax_faults <- ty.sax_faults + int "faults";
    (match Json.member "limit" j with
    | Some (Json.String _) -> ty.limit_ends <- ty.limit_ends + 1
    | _ -> ());
    (match Json.member "deadline" j with
    | Some (Json.Bool true) -> ty.deadline_ends <- ty.deadline_ends + 1
    | _ -> ());
    let id = Option.value ~default:"?" (str "id") in
    let matches =
      match Option.bind (Json.member "matches" j) Json.to_obj with
      | Some fields ->
        List.filter_map
          (fun (name, v) -> Option.map (fun n -> (name, n)) (Json.to_int v))
          fields
      | None -> []
    in
    Hashtbl.replace ty.outcomes id matches;
    Hashtbl.replace ty.terminal id ()
  | Some "match" -> ty.match_events <- ty.match_events + 1
  | Some "item" ->
    ty.item_events <- ty.item_events + 1;
    let key =
      Option.value ~default:"?" (str "id")
      ^ "/"
      ^ Option.value ~default:"?" (str "name")
    in
    Hashtbl.replace ty.item_counts key
      (1 + Option.value ~default:0 (Hashtbl.find_opt ty.item_counts key))
  | Some "quarantine" -> ty.quarantine_events <- ty.quarantine_events + 1
  | Some "readmit" -> ty.readmit_events <- ty.readmit_events + 1
  | Some _ -> ()
  | None -> (
    match (Json.member "ok" j, str "op") with
    | Some (Json.Bool true), Some "subscribe" -> ty.sub_acks <- ty.sub_acks + 1
    | Some (Json.Bool true), Some "publish" -> ty.accepted <- ty.accepted + 1
    | Some (Json.Bool true), Some "stats" -> ty.stats_json <- Json.member "stats" j
    | Some (Json.Bool true), Some "report" ->
      ty.report_json <- Json.member "report" j
    | Some (Json.Bool false), Some "publish"
      when str "error" = Some "overload" -> (
      let id = Option.value ~default:"?" (str "id") in
      Hashtbl.replace ty.terminal id ();
      match str "shed" with
      | Some "incoming" -> ty.shed <- ty.shed + 1
      | Some "displaced" -> ty.displaced <- ty.displaced + 1
      | _ -> ())
    | Some (Json.Bool false), op ->
      let msg = Option.value ~default:"?" (str "error") in
      ty.sub_errors <-
        (Option.value ~default:"?" op ^ ": " ^ msg) :: ty.sub_errors
    | _ -> ())

let spawn_reader ty fd =
  Thread.create
    (fun () ->
      read_lines fd (fun line ->
          match Json.parse line with Ok j -> on_json ty j | Error _ -> ()))
    ()

(* poll until [cond] holds under the tally lock, or [timeout] elapses *)
let wait_for ty ~timeout cond =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if locked ty cond then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.002;
      go ()
    end
  in
  go ()

(* {1 The scenario} *)

let doc_id i = Printf.sprintf "doc-%05d" i

let run ?(progress = fun (_ : string) -> ()) cfg =
  (* 1. deterministic workload *)
  let rng_docs = Prng.create cfg.seed in
  let docs = Array.init cfg.docs (fun _ -> gen_doc rng_docs) in
  let plans =
    Array.init cfg.docs (fun i ->
        Chaos.plan ~seed:cfg.seed ~rate:cfg.fault_rate i)
  in
  let rng_q = Prng.create (cfg.seed + 1) in
  let healthy_subs =
    List.init
      (max 1 (cfg.subs - 1))
      (fun i -> (Printf.sprintf "sub-%04d" i, gen_query rng_q))
  in
  (* 2. clean oracle, computed before the server exists (the broker
     resets the symbol table periodically; no concurrent interning) *)
  progress "oracle: precomputing clean match counts";
  let oracle_set =
    match
      Query_set.compile healthy_subs
    with
    | Ok s -> s
    | Error e -> failwith ("soak oracle: " ^ e)
  in
  let unfaulted i =
    match Chaos.kind plans.(i) with
    | None | Some Chaos.Split_refill -> true  (* same bytes on the wire *)
    | Some _ -> false
  in
  let expected =
    Array.init cfg.docs (fun i ->
        if not (unfaulted i) then None
        else
          Some
            (Query_set.run_string oracle_set docs.(i)
            |> List.filter_map (fun (o : Query_set.outcome) ->
                   match o.items with
                   | [] -> None
                   | items -> Some (o.query_name, List.length items))))
  in
  (* 3. observability on for the duration: latency histograms fill and
     every supervision decision lands in the event log (and the NDJSON
     file when configured). Enabled after the oracle runs so the
     histograms hold only what the server under test did; prior state
     is restored on the way out. *)
  let tel_was = Xaos_obs.Telemetry.enabled () in
  let log_was = Xaos_obs.Eventlog.enabled () in
  let attrib_was = Xaos_obs.Attrib.enabled () in
  Xaos_obs.Telemetry.enable ();
  Xaos_obs.Histogram.reset_all ();
  Xaos_obs.Eventlog.enable ();
  Xaos_obs.Eventlog.set_capacity 8192;
  (* cost attribution is always on under soak: the conservation check
     (accounts sum to pipeline totals) is part of the acceptance gate *)
  Xaos_obs.Attrib.reset ();
  Xaos_obs.Attrib.enable ();
  (* flight recorder: with the slow threshold at 0 every document keeps,
     so [Flight.last] is guaranteed to hold a full recording *)
  if cfg.flight_sample > 0 then begin
    Xaos_obs.Flight.disable ();
    Xaos_obs.Flight.reset ();
    Xaos_obs.Flight.configure ~sample_every:cfg.flight_sample
      ?dir:cfg.flight_dir ()
  end;
  let sink_ch =
    match cfg.event_log_path with
    | None -> None
    | Some path ->
      let oc = open_out path in
      (* OCaml 5 channels serialize concurrent writers internally *)
      Xaos_obs.Eventlog.set_sink
        (Some (fun line -> output_string oc (line ^ "\n")));
      Some oc
  in
  Fun.protect ~finally:(fun () ->
      Xaos_obs.Eventlog.set_sink None;
      (match sink_ch with Some oc -> close_out_noerr oc | None -> ());
      Xaos_obs.Flight.disable ();
      if not attrib_was then Xaos_obs.Attrib.disable ();
      if not log_was then Xaos_obs.Eventlog.disable ();
      if not tel_was then Xaos_obs.Telemetry.disable ())
  @@ fun () ->
  (* 4. the server under test *)
  progress "server: starting";
  let server_cfg =
    { (Server.default_config cfg.socket_path) with
      high_watermark = 32; low_watermark = 8; out_queue = 16384;
      broker =
        { Broker.budget = Some structure_budget; deadline_s = Some 5.0;
          limits = { Sax.default_limits with max_text_bytes = 16384 };
          quarantine =
            { Quarantine.threshold = 3; base_penalty = 12; max_penalty = 192 };
          reset_symbols_every = 128; earliest = false; prefix_gate = true;
          slow_ms = cfg.slow_ms } }
  in
  let server = Server.start server_cfg in
  let ty = new_tally () in
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  (* 4. subscribers: healthy subscriptions spread over four
     connections, the poison one on its own *)
  let sub_conns = Array.init 4 (fun _ -> connect cfg.socket_path) in
  let poison_conn = connect cfg.socket_path in
  let pub = connect cfg.socket_path in
  let readers =
    List.map (spawn_reader ty)
      (pub :: poison_conn :: Array.to_list sub_conns)
  in
  (* every other healthy subscription opts into earliest-decision
     emission, so the soak exercises both modes side by side on the same
     chaos stream and can check them against each other *)
  let earliest_sub i = i mod 2 = 0 in
  let earliest_names : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun i (name, query) ->
      if earliest_sub i then Hashtbl.replace earliest_names name ();
      send sub_conns.(i mod 4)
        (Protocol.Subscribe { name; query; earliest = earliest_sub i }))
    healthy_subs;
  send poison_conn
    (Protocol.Subscribe
       { name = poison_name; query = poison_query; earliest = false });
  let want_acks = List.length healthy_subs + 1 in
  if not (wait_for ty ~timeout:30.0 (fun () -> ty.sub_acks >= want_acks))
  then failwith "soak: subscriptions not acknowledged";
  (match locked ty (fun () -> ty.sub_errors) with
  | [] -> ()
  | e :: _ -> failwith ("soak: subscribe failed: " ^ e));
  (* 5. overload: low-priority bursts past the high watermark, then
     high-priority displacers; retry until both responses observed *)
  progress "overload: forcing watermark crossings";
  let tiny =
    "<feed><channel><t00><item><name>x</name></item></t00></channel></feed>"
  in
  let burst_total = ref 0 in
  let round = ref 0 in
  while
    locked ty (fun () -> ty.shed = 0 || ty.displaced = 0) && !round < 25
  do
    incr round;
    let r = !round in
    for k = 1 to 3 * server_cfg.high_watermark do
      incr burst_total;
      write_all pub
        (publish_line ~doc_id:(Printf.sprintf "burst-%d-%d" r k) ~priority:0
           tiny)
    done;
    for k = 1 to 4 do
      incr burst_total;
      write_all pub
        (publish_line ~doc_id:(Printf.sprintf "hi-%d-%d" r k) ~priority:9
           tiny)
    done;
    (* drain the round so the queue leaves the overloaded state *)
    let target = !burst_total in
    ignore
      (wait_for ty ~timeout:30.0 (fun () ->
           Hashtbl.length ty.terminal >= target))
  done;
  let overload_seen =
    locked ty (fun () -> ty.shed > 0 && ty.displaced > 0)
  in
  (* 6. the main chaos stream *)
  progress "stream: publishing documents with faults";
  let client_aborts = ref 0 in
  let expected_terminal = ref !burst_total in
  for i = 0 to cfg.docs - 1 do
    let plan = plans.(i) in
    let id = doc_id i in
    (match Chaos.kind plan with
    | Some Chaos.Inject_exn ->
      (* a client dying mid-request: half a line, then hang up *)
      let fd = connect cfg.socket_path in
      let line = publish_line ~doc_id:id ~priority:1 docs.(i) in
      write_all fd (String.sub line 0 (String.length line / 2));
      (try Unix.close fd with Unix.Unix_error _ -> ());
      incr client_aborts
    | Some Chaos.Split_refill ->
      (* the full request, a few bytes per write: frame reassembly *)
      let line = publish_line ~doc_id:id ~priority:1 docs.(i) in
      let len = String.length line in
      let rec go off =
        if off < len then begin
          write_all pub (String.sub line off (min 7 (len - off)));
          go (off + 7)
        end
      in
      go 0;
      incr expected_terminal
    | _ ->
      let payload = Chaos.corrupt plan docs.(i) in
      write_all pub (publish_line ~doc_id:id ~priority:1 payload);
      incr expected_terminal);
    (* flow control: keep a bounded number of documents in flight so
       the main stream exercises the evaluator, not just the queue *)
    let target = !expected_terminal in
    ignore
      (wait_for ty ~timeout:60.0 (fun () ->
           target - Hashtbl.length ty.terminal <= 24))
  done;
  progress "drain: waiting for the stream to complete";
  let all = !expected_terminal in
  ignore
    (wait_for ty ~timeout:120.0 (fun () -> Hashtbl.length ty.terminal >= all));
  (* the mid-document item pushes travel on the subscriber connections,
     not the publisher's, so "all documents terminal" does not imply
     their writers have drained — wait until the count stops moving *)
  let rec settle last tries =
    Thread.delay 0.05;
    let now = locked ty (fun () -> ty.item_events) in
    if now <> last && tries > 0 then settle now (tries - 1)
  in
  settle (locked ty (fun () -> ty.item_events)) 200;
  (* 7. differential check: unfaulted documents, healthy subscriptions.
     For earliest-mode subscriptions additionally check that the items
     streamed mid-document add up to exactly the final match count — the
     two delivery paths must agree result for result. *)
  progress "verify: differential against the clean oracle";
  let checked = ref 0 in
  let mismatches = ref 0 in
  let item_checked = ref 0 in
  let item_mismatches = ref 0 in
  let examples = ref [] in
  locked ty (fun () ->
      for i = 0 to cfg.docs - 1 do
        match expected.(i) with
        | Some exp when Hashtbl.mem ty.outcomes (doc_id i) ->
          let got =
            Hashtbl.find ty.outcomes (doc_id i)
            |> List.filter (fun (n, _) -> n <> poison_name)
          in
          incr checked;
          let norm l = List.sort compare l in
          if norm exp <> norm got then begin
            incr mismatches;
            if List.length !examples < 5 then
              examples :=
                Printf.sprintf "%s: expected %s, got %s" (doc_id i)
                  (String.concat ","
                     (List.map (fun (n, k) -> Printf.sprintf "%s=%d" n k) exp))
                  (String.concat ","
                     (List.map (fun (n, k) -> Printf.sprintf "%s=%d" n k) got))
                :: !examples
          end;
          List.iter
            (fun (n, k) ->
              if Hashtbl.mem earliest_names n then begin
                incr item_checked;
                let streamed =
                  Option.value ~default:0
                    (Hashtbl.find_opt ty.item_counts (doc_id i ^ "/" ^ n))
                in
                if streamed <> k then begin
                  incr item_mismatches;
                  if List.length !examples < 5 then
                    examples :=
                      Printf.sprintf "%s/%s: %d items streamed, %d matched"
                        (doc_id i) n streamed k
                      :: !examples
                end
              end)
            got
        | _ -> ()
      done);
  (* 8. final stats + report over the wire *)
  send pub Protocol.Stats;
  send pub Protocol.Report;
  ignore
    (wait_for ty ~timeout:30.0 (fun () ->
         ty.stats_json <> None && ty.report_json <> None));
  let report_json = locked ty (fun () -> ty.report_json) in
  let report_valid, report =
    match report_json with
    | Some rj -> (
      match (Report.validate rj, Report.of_json rj) with
      | Ok (), Ok r -> (true, r)
      | _, Ok r -> (false, r)
      | _, Error _ -> (false, Server.report server))
    | None -> (false, Server.report server)
  in
  (match cfg.report_path with
  | Some path -> Report.write path report
  | None -> ());
  let broker_stats = Broker.stats (Server.broker server) in
  let stat name =
    match List.assoc_opt name broker_stats with
    | Some v -> int_of_float v
    | None -> 0
  in
  let fstat name =
    Option.value ~default:0. (List.assoc_opt name broker_stats)
  in
  (* conservation: the Attrib registry and the broker accumulated the
     same run outcomes through two independent code paths — every count
     must agree exactly (match time up to float summation order) *)
  let totals = Xaos_obs.Attrib.totals () in
  let attrib_errors =
    let errs = ref [] in
    let check name got want =
      if got <> want then
        errs :=
          Printf.sprintf "%s: attrib %d <> pipeline %d" name got want :: !errs
    in
    check "docs" totals.Xaos_obs.Attrib.t_docs (stat "service/run_outcomes");
    check "events" totals.t_events (stat "service/deliveries");
    check "emissions" totals.t_emissions (stat "service/emitted_items");
    check "faults" totals.t_faults
      (stat "service/runs_aborted" + stat "service/runs_failed");
    let want = fstat "service/match_seconds" in
    if abs_float (totals.t_match_s -. want) > 1e-6 *. Float.max 1. want then
      errs :=
        Printf.sprintf "match_s: attrib %.9f <> pipeline %.9f"
          totals.t_match_s want
        :: !errs;
    List.rev !errs
  in
  let flight_stages =
    match Xaos_obs.Flight.last () with
    | Some fl -> Xaos_obs.Flight.span_names fl
    | None -> []
  in
  let completed =
    locked ty (fun () ->
        let n = ref 0 in
        for i = 0 to cfg.docs - 1 do
          if Hashtbl.mem ty.terminal (doc_id i) then incr n
        done;
        !n)
  in
  (* typed event-log accounting: only records carrying a reason code
     count — the gate is on *typed* supervision records, not prose *)
  let log_events = Xaos_obs.Eventlog.events () in
  let count_kind k =
    List.length
      (List.filter
         (fun (e : Xaos_obs.Eventlog.event) -> e.kind = k && e.reason <> None)
         log_events)
  in
  let latency_sections =
    List.filter_map
      (fun (s : Xaos_obs.Histogram.summary) ->
        if s.Xaos_obs.Histogram.s_count > 0 then
          Some s.Xaos_obs.Histogram.s_name
        else None)
      report.Report.service_latency
  in
  let summary =
    locked ty (fun () ->
        { published = cfg.docs - !client_aborts; completed;
          processed = ty.processed; shed = ty.shed;
          displaced = ty.displaced; client_aborts = !client_aborts;
          match_events = ty.match_events;
          item_events = ty.item_events; item_checked = !item_checked;
          item_mismatches = !item_mismatches;
          quarantine_events = ty.quarantine_events;
          readmit_events = ty.readmit_events; sax_faults = ty.sax_faults;
          limit_ends = ty.limit_ends; deadline_ends = ty.deadline_ends;
          quarantined_total = stat "service/quarantined";
          readmitted_total = stat "service/readmitted"; checked = !checked;
          mismatches = !mismatches; mismatch_examples = List.rev !examples;
          overload_seen; crashes = Server.crash_count server; report_valid;
          log_quarantines = count_kind "quarantine";
          log_sheds = count_kind "shed";
          log_readmits = count_kind "readmit";
          log_slow = count_kind "slow-doc";
          slow_docs = stat "service/slow_docs";
          slow_gate = (cfg.slow_ms = Some 0.);
          attrib_subs = totals.Xaos_obs.Attrib.t_subscriptions;
          attrib_errors;
          flight_written = Xaos_obs.Flight.written ();
          flight_gate = cfg.flight_sample > 0;
          flight_stages; latency_sections; report })
  in
  progress "done";
  (* shutdown, not just close: it wakes the reader threads blocked in
     [Unix.read] so they can be joined *)
  List.iter
    (fun fd ->
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ())
    (pub :: poison_conn :: Array.to_list sub_conns);
  List.iter Thread.join readers;
  summary

let healthy s =
  if s.crashes > 0 then
    Error (Printf.sprintf "%d server thread crashes" s.crashes)
  else if s.mismatches > 0 then
    Error
      (Printf.sprintf "%d differential mismatches (e.g. %s)" s.mismatches
         (match s.mismatch_examples with e :: _ -> e | [] -> "?"))
  else if s.completed < s.published then
    Error
      (Printf.sprintf "only %d/%d documents accounted for" s.completed
         s.published)
  else if s.checked = 0 then Error "no differential checks performed"
  else if s.item_checked = 0 then
    Error "no earliest-mode item deliveries verified"
  else if s.item_mismatches > 0 then
    Error
      (Printf.sprintf "%d earliest-mode item/match mismatches (e.g. %s)"
         s.item_mismatches
         (match s.mismatch_examples with e :: _ -> e | [] -> "?"))
  else if not s.overload_seen then
    Error "no overload responses observed (shed + displaced)"
  else if s.quarantined_total = 0 then Error "quarantine never triggered"
  else if s.readmitted_total = 0 then Error "re-admission never triggered"
  else if not s.report_valid then Error "final report failed validation"
  else if s.log_quarantines = 0 then
    Error "no typed quarantine record in the event log"
  else if s.log_sheds = 0 then Error "no typed shed record in the event log"
  else if s.log_readmits = 0 then
    Error "no typed readmit record in the event log"
  else if s.attrib_errors <> [] then
    Error
      ("cost attribution not conserved: "
      ^ String.concat "; " s.attrib_errors)
  else if s.attrib_subs = 0 then Error "no cost accounts registered"
  else if s.slow_gate && (s.slow_docs = 0 || s.log_slow = 0) then
    Error
      (Printf.sprintf
         "slow-document log never triggered (%d broker records, %d typed \
          log records)"
         s.slow_docs s.log_slow)
  else if
    s.flight_gate
    && not
         (List.for_all
            (fun n -> List.mem n s.flight_stages)
            [ "ingress"; "parse"; "dispatch"; "match"; "emission"; "writer" ])
  then
    Error
      (Printf.sprintf "flight recording incomplete (stages: %s)"
         (String.concat ", " s.flight_stages))
  else if
    not
      (List.for_all
         (fun h -> List.mem h s.latency_sections)
         [ "stage/parse"; "stage/dispatch"; "stage/subscription_match";
           "engine/emission" ])
  then
    Error
      (Printf.sprintf "latency histograms incomplete (have: %s)"
         (String.concat ", " s.latency_sections))
  else Ok ()
