(** Bounded ingress queue with watermark hysteresis and priority-based
    load shedding — the admission control in front of the evaluator.

    The invariant the service needs: {!offer} {e never blocks}, so the
    accept loop and the reader threads stay responsive no matter how far
    behind the evaluator falls. Instead of blocking, an offer against a
    full queue gets an explicit verdict the caller turns into an
    overload response on the wire.

    Hysteresis: the queue enters the {e overloaded} state when its
    length reaches the high watermark and leaves it only when a consumer
    drains it down to the low watermark. While overloaded, an incoming
    document is admitted only by displacing a queued document of
    strictly lower priority (lowest priority first, youngest first
    within a priority — the freshest low-value work is the cheapest to
    throw away); otherwise the incoming document itself is shed. The gap
    between the watermarks is what prevents shed/accept flapping at the
    boundary.

    Consumers {!take} in priority order (FIFO within a priority) and
    block when the queue is empty. Thread-safe. *)

type 'a t

type 'a verdict =
  | Accepted
  | Shed_incoming  (** refused: queue overloaded, priority too low *)
  | Displaced of 'a  (** accepted by evicting this queued item *)

val create : ?low:int -> high:int -> unit -> 'a t
(** [high] is both the high watermark and the queue bound; [low]
    defaults to [high / 2].
    @raise Invalid_argument unless [0 <= low < high]. *)

val offer : 'a t -> priority:int -> 'a -> 'a verdict
(** Non-blocking admission. Higher [priority] wins. *)

val take : 'a t -> 'a option
(** Highest-priority, oldest item; blocks while empty. [None] once the
    queue is closed and drained. *)

val close : 'a t -> unit
(** Wake all takers; subsequent offers are shed. *)

val length : 'a t -> int

val overloaded : 'a t -> bool

val shed_count : 'a t -> int
(** Items refused ({!Shed_incoming}) since creation. *)

val displaced_count : 'a t -> int

val overload_entries : 'a t -> int
(** Times the queue crossed into the overloaded state. *)
