(** Subscription quarantine: the fault-isolation policy of the service.

    A subscription whose engine repeatedly aborts (budget trips) or
    raises is taken out of the dispatch set with a reason code instead of
    degrading every other subscription's document latency. Quarantine is
    time-limited in {e document ticks} (the broker's monotone document
    counter — deterministic under test, unlike wall clock): after the
    penalty elapses the subscription is re-admittable on probation.

    Backoff decays in both directions: each re-quarantine {e doubles}
    the penalty (a subscription that keeps failing is retried ever more
    rarely, up to a cap), and each clean document {e halves} it back
    toward the base (a subscription that recovered is trusted again).
    Failures must be consecutive to count — one bad document against a
    pathological query does not accumulate forever. *)

type config = {
  threshold : int;  (** consecutive failures before quarantine *)
  base_penalty : int;  (** first quarantine length, in document ticks *)
  max_penalty : int;  (** backoff cap *)
}

val default_config : config
(** threshold 3, base penalty 16 ticks, cap 1024. *)

type t

val create : ?config:config -> unit -> t

val record_failure :
  t -> now:int -> name:string -> reason:string -> [ `Counted | `Quarantined ]
(** One abort/raise attributed to [name] at document tick [now].
    [`Quarantined] means this failure crossed the threshold: the caller
    must remove the subscription from dispatch. [reason] is kept (last
    failure wins) for observability. *)

val record_success : t -> name:string -> unit
(** A clean document: resets the consecutive-failure count and decays
    the stored penalty. *)

val is_quarantined : t -> string -> bool

val reason : t -> string -> string option
(** Reason code of a currently quarantined subscription. *)

val due : t -> now:int -> string list
(** Quarantined names whose penalty has elapsed at tick [now]. *)

val readmit : t -> string -> unit
(** Lift the quarantine (caller re-registers the subscription). The
    failure count restarts at zero — probation, not amnesty: the next
    [threshold] failures re-quarantine with a doubled penalty. *)

val forget : t -> string -> unit
(** Drop all state for [name] (unsubscribed). *)

val quarantined : t -> (string * string * int) list
(** Currently quarantined: (name, reason, release tick). *)

val times_quarantined : t -> int
(** Total quarantine transitions since {!create}. *)

val times_readmitted : t -> int
