module Json = Xaos_obs.Json

type request =
  | Subscribe of { name : string; query : string; earliest : bool }
  | Unsubscribe of { name : string }
  | Publish of { doc_id : string; priority : int; doc : string }
  | Stats
  | Stats_stream of { interval_s : float; count : int option }
  | Metrics
  | Profile of { top_n : int; by : string }
  | Slowlog of { max : int }
  | Report
  | Shutdown

let op_name = function
  | Subscribe _ -> "subscribe"
  | Unsubscribe _ -> "unsubscribe"
  | Publish _ -> "publish"
  | Stats -> "stats"
  | Stats_stream _ -> "stats-stream"
  | Metrics -> "metrics"
  | Profile _ -> "profile"
  | Slowlog _ -> "slowlog"
  | Report -> "report"
  | Shutdown -> "shutdown"

let request_to_json r =
  let fields =
    match r with
    | Subscribe { name; query; earliest } ->
      [ ("name", Json.String name); ("query", Json.String query) ]
      @ (if earliest then [ ("earliest", Json.Bool true) ] else [])
    | Unsubscribe { name } -> [ ("name", Json.String name) ]
    | Publish { doc_id; priority; doc } ->
      [ ("id", Json.String doc_id); ("priority", Json.Int priority);
        ("doc", Json.String doc) ]
    | Stats_stream { interval_s; count } ->
      ("interval_s", Json.Float interval_s)
      :: (match count with Some n -> [ ("count", Json.Int n) ] | None -> [])
    | Profile { top_n; by } ->
      [ ("n", Json.Int top_n); ("by", Json.String by) ]
    | Slowlog { max } -> [ ("max", Json.Int max) ]
    | Stats | Metrics | Report | Shutdown -> []
  in
  Json.Obj (("op", Json.String (op_name r)) :: fields)

let str_field name j =
  match Json.member name j with
  | Some f -> (
    match Json.to_str f with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "field %S must be a string" name))
  | None -> Error (Printf.sprintf "missing field %S" name)

let request_of_json j =
  match Json.member "op" j with
  | None -> Error "missing field \"op\""
  | Some op -> (
    match Json.to_str op with
    | None -> Error "field \"op\" must be a string"
    | Some "subscribe" -> (
      Result.bind (str_field "name" j) @@ fun name ->
      Result.bind (str_field "query" j) @@ fun query ->
      match Json.member "earliest" j with
      | None -> Ok (Subscribe { name; query; earliest = false })
      | Some (Json.Bool earliest) -> Ok (Subscribe { name; query; earliest })
      | Some _ -> Error "field \"earliest\" must be a boolean")
    | Some "unsubscribe" ->
      Result.bind (str_field "name" j) @@ fun name -> Ok (Unsubscribe { name })
    | Some "publish" ->
      Result.bind (str_field "id" j) @@ fun doc_id ->
      Result.bind (str_field "doc" j) @@ fun doc ->
      let priority =
        match Json.member "priority" j with
        | Some p -> Option.value ~default:0 (Json.to_int p)
        | None -> 0
      in
      Ok (Publish { doc_id; priority; doc })
    | Some "stats" -> Ok Stats
    | Some "stats-stream" ->
      let interval_s =
        match Json.member "interval_s" j with
        | Some v -> Option.value ~default:1.0 (Json.to_float v)
        | None -> 1.0
      in
      let count =
        match Json.member "count" j with
        | Some v -> Json.to_int v
        | None -> None
      in
      if interval_s <= 0. then Error "field \"interval_s\" must be positive"
      else Ok (Stats_stream { interval_s; count })
    | Some "metrics" -> Ok Metrics
    | Some "profile" ->
      let top_n =
        match Json.member "n" j with
        | Some v -> Option.value ~default:10 (Json.to_int v)
        | None -> 10
      in
      let by =
        match Option.bind (Json.member "by" j) Json.to_str with
        | Some s -> s
        | None -> "match_s"
      in
      if top_n <= 0 then Error "field \"n\" must be positive"
      else Ok (Profile { top_n; by })
    | Some "slowlog" ->
      let max =
        match Json.member "max" j with
        | Some v -> Option.value ~default:20 (Json.to_int v)
        | None -> 20
      in
      if max <= 0 then Error "field \"max\" must be positive"
      else Ok (Slowlog { max })
    | Some "report" -> Ok Report
    | Some "shutdown" -> Ok Shutdown
    | Some other -> Error (Printf.sprintf "unknown op %S" other))

let request_of_line line =
  match Json.parse line with
  | Error e -> Error ("bad json: " ^ e)
  | Ok j -> request_of_json j

let ok ~op fields =
  Json.Obj (("ok", Json.Bool true) :: ("op", Json.String op) :: fields)

let error ~op msg =
  Json.Obj
    [ ("ok", Json.Bool false); ("op", Json.String op);
      ("error", Json.String msg) ]

let overload ~doc_id ~shed =
  let shed_field =
    match shed with
    | `Incoming -> [ ("shed", Json.String "incoming") ]
    | `Displaced by ->
      [ ("shed", Json.String "displaced"); ("by", Json.String by) ]
  in
  Json.Obj
    (("ok", Json.Bool false) :: ("op", Json.String "publish")
     :: ("id", Json.String doc_id) :: ("error", Json.String "overload")
     :: shed_field)

let event ~kind fields = Json.Obj (("event", Json.String kind) :: fields)

let to_line j = Json.to_string ~indent:false j ^ "\n"
