module Json = Xaos_obs.Json
module Telemetry = Xaos_obs.Telemetry
module Report = Xaos_obs.Report
module Histogram = Xaos_obs.Histogram
module Eventlog = Xaos_obs.Eventlog
module Expose = Xaos_obs.Expose
module Attrib = Xaos_obs.Attrib
module Flight = Xaos_obs.Flight

type config = {
  socket_path : string;
  high_watermark : int;
  low_watermark : int;
  out_queue : int;
  write_timeout_s : float;
  max_line_bytes : int;
  broker : Broker.config;
}

let default_config socket_path =
  { socket_path; high_watermark = 64; low_watermark = 16; out_queue = 1024;
    write_timeout_s = 5.0; max_line_bytes = 8 * 1024 * 1024;
    broker = Broker.default_config }

type out_entry = {
  ol_line : string;
  ol_stamp : float;
      (** enqueue stamp; 0. while telemetry is off, otherwise feeds the
          writer-queue-wait histogram *)
  ol_notify : (unit -> unit) option;
      (** fired exactly once when the entry leaves the queue — after the
          write, on a full-queue drop, or during teardown drain; the
          evaluator hangs the flight-recording finish on it so the
          [writer] span covers the real write *)
}

type client = {
  cid : int;
  fd : Unix.file_descr;
  out_mu : Mutex.t;
  out_cond : Condition.t;
  out : out_entry Queue.t;
  mutable out_closed : bool;
}

type pending = {
  p_doc_id : string;
  p_doc : string;
  p_client : client;
  p_enqueued_at : float;
      (** admission stamp (0. while telemetry is off); feeds the
          ingress-queue-wait histogram when the evaluator picks it up *)
}

type t = {
  config : config;
  brk : Broker.t;
  ingress : pending Ingress.t;
  listen_fd : Unix.file_descr;
  mu : Mutex.t;  (** clients, owners, lifecycle flags, counters *)
  finished : Condition.t;
  mutable clients : client list;
  owners : (string, client) Hashtbl.t;
  mutable next_cid : int;
  mutable stopping : bool;
  mutable stopped : bool;
  mutable acceptor : Thread.t option;
  mutable evaluator : Thread.t option;
  mutable crashes : int;
  mutable dropped : int;  (** responses dropped on full client queues *)
  mutable conn_total : int;
}

let counter_shed = Telemetry.counter "xaos_service_shed_total"
let counter_displaced = Telemetry.counter "xaos_service_displaced_total"
let counter_dropped = Telemetry.counter "xaos_service_dropped_responses_total"
let counter_crashes = Telemetry.counter "xaos_service_thread_crashes_total"
let gauge_connections = Telemetry.gauge "xaos_service_connections"
let gauge_queue = Telemetry.gauge "xaos_service_ingress_queue"

let hist_ingress_wait =
  Histogram.create ~unit_:"s" ~scale:1e-6
    ~help:"time a document waited in the ingress queue before evaluation"
    "stage/ingress_wait"

let hist_writer_wait =
  Histogram.create ~unit_:"s" ~scale:1e-6
    ~help:"time a response waited in a client out-queue before the write"
    "stage/writer_wait"

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* a thread body that records instead of propagating: one misbehaving
   connection (or a bug) must never take the process down *)
let guarded t f () =
  try f () with
  | Thread.Exit -> ()
  | exn ->
    Eventlog.record ~level:Eventlog.Error ~kind:"crash"
      ~reason:Eventlog.Thread_crash
      ~detail:[ ("exn", Json.String (Printexc.to_string exn)) ]
      "thread";
    with_lock t @@ fun () ->
    t.crashes <- t.crashes + 1;
    Telemetry.incr counter_crashes

(* {1 Per-client output: bounded queue + writer thread} *)

let fire_notify = function Some f -> (try f () with _ -> ()) | None -> ()

let enqueue ?notify t c line =
  let stamp = if Telemetry.enabled () then Telemetry.now () else 0. in
  Mutex.lock c.out_mu;
  let dropped =
    if c.out_closed then true
    else if Queue.length c.out >= t.config.out_queue then true
    else begin
      Queue.push { ol_line = line; ol_stamp = stamp; ol_notify = notify } c.out;
      Condition.signal c.out_cond;
      false
    end
  in
  let was_closed = c.out_closed in
  Mutex.unlock c.out_mu;
  if dropped then begin
    fire_notify notify;
    if not was_closed then begin
      with_lock t (fun () -> t.dropped <- t.dropped + 1);
      Telemetry.incr counter_dropped;
      Eventlog.record ~level:Eventlog.Warn ~kind:"drop"
        ~reason:Eventlog.Out_queue_full
        ("client-" ^ string_of_int c.cid)
    end
  end

let send ?notify t c json = enqueue ?notify t c (Protocol.to_line json)

(* empty the out-queue and fire the orphaned notifies: queue entries
   must not hold a flight recording open past the connection's death *)
let drain_notifies c =
  Mutex.lock c.out_mu;
  let entries = Queue.fold (fun acc e -> e :: acc) [] c.out in
  Queue.clear c.out;
  Mutex.unlock c.out_mu;
  List.iter (fun e -> fire_notify e.ol_notify) entries

(* Invoked concurrently from the reader (EOF), the writer (write error)
   and [stop]; removal from [t.clients] elects the single caller that
   tears the connection down. Everyone else is a no-op — in particular
   nobody closes [c.fd] twice, which could hit a recycled descriptor
   number belonging to a newer connection. *)
let close_client t c =
  let first =
    with_lock t @@ fun () ->
    if List.memq c t.clients then begin
      t.clients <- List.filter (fun c' -> c' != c) t.clients;
      Telemetry.set_gauge gauge_connections (List.length t.clients);
      let owned =
        Hashtbl.fold
          (fun name owner acc -> if owner == c then name :: acc else acc)
          t.owners []
      in
      List.iter (Hashtbl.remove t.owners) owned;
      Some owned
    end
    else None
  in
  match first with
  | None -> ()
  | Some owned ->
    (* subscriptions die with their connection *)
    List.iter (fun name -> ignore (Broker.unsubscribe t.brk ~name)) owned;
    Mutex.lock c.out_mu;
    c.out_closed <- true;
    Condition.broadcast c.out_cond;
    Mutex.unlock c.out_mu;
    (* shutdown wakes the connection's blocked reader thread; close alone
       would leave it parked in [Unix.read] forever *)
    (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    drain_notifies c

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then begin
      let n = Unix.write fd b off (len - off) in
      go (off + n)
    end
  in
  go 0

let writer_loop t c () =
  let rec loop () =
    Mutex.lock c.out_mu;
    let rec next () =
      if c.out_closed then None
      else if Queue.is_empty c.out then begin
        Condition.wait c.out_cond c.out_mu;
        next ()
      end
      else Some (Queue.pop c.out)
    in
    let entry = next () in
    Mutex.unlock c.out_mu;
    match entry with
    | None -> ()
    | Some e ->
      if e.ol_stamp > 0. then
        Histogram.record_seconds hist_writer_wait
          (Telemetry.now () -. e.ol_stamp);
      (* SO_SNDTIMEO turns a stalled consumer into EAGAIN here *)
      (match write_all c.fd e.ol_line with
      | () ->
        fire_notify e.ol_notify;
        loop ()
      | exception Unix.Unix_error _ ->
        fire_notify e.ol_notify;
        close_client t c)
  in
  loop ()

(* {1 Request handling} *)

let stats t =
  Broker.stats t.brk
  @ (with_lock t @@ fun () ->
     let f = float_of_int in
     [ ("ingress/queue", f (Ingress.length t.ingress));
       ("ingress/shed", f (Ingress.shed_count t.ingress));
       ("ingress/displaced", f (Ingress.displaced_count t.ingress));
       ("ingress/overload_entries", f (Ingress.overload_entries t.ingress));
       ("server/connections", f (List.length t.clients));
       ("server/connections_total", f t.conn_total);
       ("server/dropped_responses", f t.dropped);
       ("server/thread_crashes", f t.crashes) ])

let report t =
  let broker_stats = Broker.stats t.brk in
  let extra =
    List.filter (fun (k, _) -> not (List.mem_assoc k broker_stats)) (stats t)
  in
  Broker.report ~extra_stats:extra t.brk

let rec handle_request t c req =
  match req with
  | Protocol.Subscribe { name; query; earliest } -> (
    match Broker.subscribe ~earliest t.brk ~name ~query with
    | Ok () ->
      with_lock t (fun () -> Hashtbl.replace t.owners name c);
      send t c (Protocol.ok ~op:"subscribe" [ ("name", Json.String name) ])
    | Error e -> send t c (Protocol.error ~op:"subscribe" e))
  | Protocol.Unsubscribe { name } ->
    let known = Broker.unsubscribe t.brk ~name in
    with_lock t (fun () -> Hashtbl.remove t.owners name);
    if known then
      send t c (Protocol.ok ~op:"unsubscribe" [ ("name", Json.String name) ])
    else send t c (Protocol.error ~op:"unsubscribe" ("unknown: " ^ name))
  | Protocol.Publish { doc_id; priority; doc } -> (
    let verdict =
      Ingress.offer t.ingress ~priority
        { p_doc_id = doc_id; p_doc = doc; p_client = c;
          p_enqueued_at =
            (if Telemetry.enabled () || Flight.active () then Telemetry.now ()
             else 0.) }
    in
    Telemetry.set_gauge gauge_queue (Ingress.length t.ingress);
    match verdict with
    | Ingress.Accepted ->
      send t c
        (Protocol.ok ~op:"publish"
           [ ("id", Json.String doc_id); ("queued", Json.Bool true) ])
    | Ingress.Shed_incoming ->
      Telemetry.incr counter_shed;
      Eventlog.record ~level:Eventlog.Warn ~kind:"shed"
        ~reason:Eventlog.Queue_full
        ~detail:[ ("priority", Json.Int priority) ]
        doc_id;
      send t c (Protocol.overload ~doc_id ~shed:`Incoming)
    | Ingress.Displaced victim ->
      Telemetry.incr counter_displaced;
      Eventlog.record ~level:Eventlog.Warn ~kind:"displace"
        ~reason:Eventlog.Displaced
        ~detail:[ ("by", Json.String doc_id) ]
        victim.p_doc_id;
      send t c
        (Protocol.ok ~op:"publish"
           [ ("id", Json.String doc_id); ("queued", Json.Bool true) ]);
      send t victim.p_client
        (Protocol.overload ~doc_id:victim.p_doc_id ~shed:(`Displaced doc_id)))
  | Protocol.Stats ->
    let fields = List.map (fun (k, v) -> (k, Json.Float v)) (stats t) in
    send t c (Protocol.ok ~op:"stats" [ ("stats", Json.Obj fields) ])
  | Protocol.Metrics ->
    send t c
      (Protocol.ok ~op:"metrics"
         [ ("metrics", Json.String (Expose.render ())) ])
  | Protocol.Profile { top_n; by } -> (
    match Attrib.order_of_string by with
    | None -> send t c (Protocol.error ~op:"profile" ("unknown order: " ^ by))
    | Some order ->
      send t c
        (Protocol.ok ~op:"profile"
           [ ("enabled", Json.Bool (Attrib.enabled ()));
             ("by", Json.String (Attrib.order_name order));
             ("totals", Attrib.totals_to_json (Attrib.totals ()));
             ("top",
              Json.List
                (List.map Attrib.snapshot_to_json
                   (Attrib.top ~by:order top_n))) ]))
  | Protocol.Slowlog { max } ->
    let slow =
      Broker.slow_docs t.brk |> List.filteri (fun i _ -> i < max)
    in
    send t c
      (Protocol.ok ~op:"slowlog"
         [ ("count", Json.Int (List.length slow));
           ("slow", Json.List (List.map Broker.slow_doc_to_json slow)) ])
  | Protocol.Stats_stream { interval_s; count } ->
    send t c
      (Protocol.ok ~op:"stats-stream"
         [ ("interval_s", Json.Float interval_s);
           ("count",
            match count with Some n -> Json.Int n | None -> Json.Null) ]);
    ignore
      (Thread.create (guarded t (stats_stream_loop t c ~interval_s ~count)) ())
  | Protocol.Report ->
    send t c
      (Protocol.ok ~op:"report"
         [ ("report", Report.to_json (report t)) ])
  | Protocol.Shutdown ->
    send t c (Protocol.ok ~op:"shutdown" []);
    stop t

(* {1 Stats streaming: one pusher thread per subscribed connection} *)

(* Pushes a ["stats"] event every [interval_s] seconds until [count]
   snapshots are out, the connection closes, or the server stops. A
   slow consumer costs nothing extra: snapshots land in the same
   bounded out-queue as everything else and are dropped like any other
   response when it is full. *)
and stats_stream_loop t c ~interval_s ~count () =
  let started = Unix.gettimeofday () in
  let closed () =
    Mutex.lock c.out_mu;
    let v = c.out_closed in
    Mutex.unlock c.out_mu;
    v || with_lock t (fun () -> t.stopping)
  in
  let rec go seq =
    if not (closed ()) then begin
      let fields = List.map (fun (k, v) -> (k, Json.Float v)) (stats t) in
      let quarantined =
        List.map
          (fun (name, reason, release) ->
            Json.Obj
              [ ("name", Json.String name);
                ("reason", Json.String reason);
                ("release_tick", Json.Int release) ])
          (Broker.quarantined t.brk)
      in
      let top_costs =
        if Attrib.enabled () then
          [ ( "top_costs",
              Json.List
                (List.map Attrib.snapshot_to_json
                   (Attrib.top ~by:Attrib.By_match_s 5)) ) ]
        else []
      in
      send t c
        (Protocol.event ~kind:"stats"
           ([ ("seq", Json.Int seq);
              ("elapsed_s", Json.Float (Unix.gettimeofday () -. started));
              ("stats", Json.Obj fields);
              ("quarantined", Json.List quarantined) ]
           @ top_costs));
      let more =
        match count with Some n -> seq + 1 < n | None -> true
      in
      if more then begin
        Thread.delay interval_s;
        go (seq + 1)
      end
    end
  in
  go 0

(* {1 Reader: line framing over a streaming socket} *)

and reader_loop t c () =
  let chunk = Bytes.create 65536 in
  let acc = Buffer.create 4096 in
  let process_lines () =
    let s = Buffer.contents acc in
    let len = String.length s in
    let rec go start =
      match String.index_from_opt s start '\n' with
      | None ->
        Buffer.clear acc;
        Buffer.add_substring acc s start (len - start)
      | Some nl ->
        let line = String.sub s start (nl - start) in
        if String.trim line <> "" then begin
          match Protocol.request_of_line line with
          | Ok req -> handle_request t c req
          | Error e -> send t c (Protocol.error ~op:"parse" e)
        end;
        go (nl + 1)
    in
    go 0
  in
  (* A partial line may legitimately span many reads (a client is free
     to write one byte at a time), but it may not grow without bound:
     past [max_line_bytes] the connection fails closed — a typed event,
     an error response, then teardown — rather than buffer a rogue
     frame until the process dies, and rather than "recover" by parsing
     a truncated prefix as if it were the whole request. *)
  let overflow () =
    Eventlog.record ~level:Eventlog.Warn ~kind:"frame"
      ~reason:Eventlog.Line_too_long
      ~detail:[ ("bytes", Json.Int (Buffer.length acc)) ]
      ("client-" ^ string_of_int c.cid);
    send t c
      (Protocol.error ~op:"parse"
         (Printf.sprintf "line exceeds %d bytes" t.config.max_line_bytes));
    (* best effort: give the writer a moment to flush the refusal
       before [close_client] wakes it with [out_closed] *)
    let deadline = Unix.gettimeofday () +. 1.0 in
    let rec drain () =
      Mutex.lock c.out_mu;
      let empty = Queue.is_empty c.out || c.out_closed in
      Mutex.unlock c.out_mu;
      if (not empty) && Unix.gettimeofday () < deadline then begin
        Thread.delay 0.01;
        drain ()
      end
    in
    drain ()
  in
  let rec loop () =
    match Unix.read c.fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes acc chunk 0 n;
      if Bytes.index_opt (Bytes.sub chunk 0 n) '\n' <> None then
        process_lines ();
      if Buffer.length acc > t.config.max_line_bytes then overflow ()
      else loop ()
    | exception Unix.Unix_error _ -> ()
  in
  loop ();
  close_client t c

(* {1 Evaluator: the only thread that runs documents} *)

and process_pending t p =
  Telemetry.set_gauge gauge_queue (Ingress.length t.ingress);
  let pickup = Telemetry.now () in
  if p.p_enqueued_at > 0. then
    Histogram.record_seconds hist_ingress_wait (pickup -. p.p_enqueued_at);
  (* flight recording: started for every document while the recorder is
     active; the keep/discard decision is Flight's at finish time *)
  let fl =
    if Flight.active () then Some (Flight.start ~doc_id:p.p_doc_id) else None
  in
  (match fl with
  | Some fl when p.p_enqueued_at > 0. ->
    Flight.span fl ~name:"ingress" ~start:p.p_enqueued_at ~stop:pickup ()
  | _ -> ());
  (* mid-document result push for earliest-mode subscriptions: the
     broker calls this from the evaluation thread the moment an element
     is decided, so the owning connection sees each result while the
     document is still streaming.  Looking up the owner takes [t.mu]
     while the broker holds its own lock; that nesting is one-way (no
     path acquires the broker lock while holding [t.mu] — [close_client]
     releases it before unsubscribing), so it cannot deadlock. *)
  let on_item ~name (item : Xaos_core.Item.t) =
    match with_lock t (fun () -> Hashtbl.find_opt t.owners name) with
    | Some oc ->
      send t oc
        (Protocol.event ~kind:"item"
           [ ("id", Json.String p.p_doc_id); ("name", Json.String name);
             ("item_id", Json.Int item.id);
             ("tag", Json.String (Xaos_core.Item.tag item));
             ("level", Json.Int item.level) ])
    | None -> ()
  in
  let o = Broker.publish ~on_item ?flight:fl t.brk ~doc_id:p.p_doc_id p.p_doc in
  (* the recording closes from the writer thread, after the processed
     event reaches the wire, so the [writer] span covers the real
     write-back; the notify also fires on drop/teardown, so the
     recording can never leak *)
  let notify =
    match fl with
    | None -> None
    | Some fl ->
      let wstart = Telemetry.now () in
      Some
        (fun () ->
          Flight.span fl ~name:"writer" ~start:wstart
            ~stop:(Telemetry.now ()) ();
          ignore (Flight.finish fl))
  in
  send ?notify t p.p_client
    (Protocol.event ~kind:"processed"
       [ ("id", Json.String o.doc_id); ("tick", Json.Int o.tick);
         ("events", Json.Int o.events); ("faults", Json.Int o.faults);
         ("deadline", Json.Bool o.deadline_hit);
         ("limit",
          match o.limit_hit with
          | Some k -> Json.String k
          | None -> Json.Null);
         ("matches",
          Json.Obj (List.map (fun (n, k) -> (n, Json.Int k)) o.matches));
         ("aborted",
          Json.List (List.map (fun n -> Json.String n) o.aborted));
         ("failed",
          Json.Obj (List.map (fun (n, m) -> (n, Json.String m)) o.failed));
         ("quarantined",
          Json.List
            (List.map (fun (n, _) -> Json.String n) o.quarantined_now));
         ("readmitted",
          Json.List (List.map (fun n -> Json.String n) o.readmitted)) ]);
  let owner name = with_lock t (fun () -> Hashtbl.find_opt t.owners name) in
  List.iter
    (fun (name, count) ->
      match owner name with
      | Some oc ->
        send t oc
          (Protocol.event ~kind:"match"
             [ ("id", Json.String o.doc_id); ("name", Json.String name);
               ("count", Json.Int count) ])
      | None -> ())
    o.matches;
  List.iter
    (fun (name, reason) ->
      match owner name with
      | Some oc ->
        send t oc
          (Protocol.event ~kind:"quarantine"
             [ ("name", Json.String name); ("reason", Json.String reason) ])
      | None -> ())
    o.quarantined_now;
  List.iter
    (fun name ->
      match owner name with
      | Some oc ->
        send t oc
          (Protocol.event ~kind:"readmit" [ ("name", Json.String name) ])
      | None -> ())
    o.readmitted

(* each document is guarded individually: an exception escaping one
   evaluation is counted as a crash but must not end the loop, or the
   service would accept connections yet never process another document *)
and evaluator_loop t () =
  let rec loop () =
    match Ingress.take t.ingress with
    | None -> ()
    | Some p ->
      (try process_pending t p with
      | Thread.Exit -> raise Thread.Exit
      | exn ->
        Eventlog.record ~level:Eventlog.Error ~kind:"crash"
          ~reason:Eventlog.Thread_crash
          ~detail:[ ("exn", Json.String (Printexc.to_string exn)) ]
          p.p_doc_id;
        with_lock t (fun () -> t.crashes <- t.crashes + 1);
        Telemetry.incr counter_crashes);
      loop ()
  in
  loop ()

(* {1 Lifecycle} *)

and accept_loop t () =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error _ -> ()  (* listener closed: stopping *)
    | fd, _ ->
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.config.write_timeout_s;
      let c =
        with_lock t @@ fun () ->
        let c =
          { cid = t.next_cid; fd; out_mu = Mutex.create ();
            out_cond = Condition.create (); out = Queue.create ();
            out_closed = false }
        in
        t.next_cid <- t.next_cid + 1;
        t.conn_total <- t.conn_total + 1;
        t.clients <- c :: t.clients;
        Telemetry.set_gauge gauge_connections (List.length t.clients);
        c
      in
      ignore (Thread.create (guarded t (reader_loop t c)) ());
      ignore (Thread.create (guarded t (writer_loop t c)) ());
      loop ()
  in
  loop ()

and stop t =
  let threads =
    with_lock t @@ fun () ->
    if t.stopping then []
    else begin
      t.stopping <- true;
      [ t.acceptor; t.evaluator ]
    end
  in
  if threads <> [] then begin
    (* shutdown wakes the acceptor blocked in [Unix.accept]; closing the
       descriptor alone does not *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with
    | Unix.Unix_error _ -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Ingress.close t.ingress;
    let self = Thread.id (Thread.self ()) in
    List.iter
      (function
        | Some th when Thread.id th <> self -> Thread.join th
        | _ -> ())
      threads;
    let clients = with_lock t (fun () -> t.clients) in
    List.iter (close_client t) clients;
    (try Unix.unlink t.config.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
    with_lock t @@ fun () ->
    t.stopped <- true;
    Condition.broadcast t.finished
  end

let start config =
  (* a dead client mid-write must be an EPIPE error, not a fatal signal *)
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try Unix.unlink config.socket_path with
  | Unix.Unix_error _ | Sys_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path);
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let t =
    { config; brk = Broker.create ~config:config.broker ();
      ingress =
        Ingress.create ~low:config.low_watermark ~high:config.high_watermark
          ();
      listen_fd; mu = Mutex.create (); finished = Condition.create ();
      clients = []; owners = Hashtbl.create 64; next_cid = 0;
      stopping = false; stopped = false; acceptor = None; evaluator = None;
      crashes = 0; dropped = 0; conn_total = 0 }
  in
  t.acceptor <- Some (Thread.create (guarded t (accept_loop t)) ());
  t.evaluator <- Some (Thread.create (guarded t (evaluator_loop t)) ());
  t

let broker t = t.brk

let wait t =
  with_lock t @@ fun () ->
  while not t.stopped do
    Condition.wait t.finished t.mu
  done

let crash_count t = with_lock t @@ fun () -> t.crashes

let connections t = with_lock t @@ fun () -> List.length t.clients
