open Xaos_core
module Sax = Xaos_xml.Sax
module Telemetry = Xaos_obs.Telemetry
module Tracer = Xaos_obs.Tracer
module Report = Xaos_obs.Report
module Json = Xaos_obs.Json

type config = {
  budget : int option;
  deadline_s : float option;
  limits : Sax.limits;
  quarantine : Quarantine.config;
  reset_symbols_every : int;
  earliest : bool;
  prefix_gate : bool;
      (** route gateable equivalence classes through the shared-prefix
          trie so their engines stay dormant until a document touches
          one of their prefixes (see {!Xaos_core.Query_set.start}) *)
  slow_ms : float option;
      (** a document whose total pipeline time reaches this many
          milliseconds lands in the slow-document log with its
          per-subscription breakdown ([Some 0.] flags every document —
          deterministic for tests); [None] disables the log *)
}

let default_config =
  { budget = Some 50_000; deadline_s = Some 2.0;
    limits = Sax.default_limits; quarantine = Quarantine.default_config;
    reset_symbols_every = 256; earliest = false; prefix_gate = true;
    slow_ms = None }

type status =
  | Live
  | Quarantined of string

type sub = {
  sub_query : Query.t;  (** survives Symbol.reset: re-resolves at start *)
}

(* One slow-document record: what crossed the threshold and who paid
   for it. [sd_top] is the per-subscription breakdown, descending by
   match time. *)
type slow_doc = {
  sd_doc_id : string;
  sd_tick : int;
  sd_total_ms : float;
  sd_events : int;
  sd_faults : int;
  sd_deadline : bool;
  sd_limit : string option;
  sd_top : (string * float) list;
}

let slow_log_cap = 64
let slow_top_n = 5

type t = {
  mu : Mutex.t;
  config : config;
  set : Query_set.t;
  subs : (string, sub) Hashtbl.t;
  quarantine : Quarantine.t;
  mutable tick : int;
  (* plain-int accounting: stats must work with telemetry disabled *)
  mutable n_events : int;
  mutable n_faults : int;
  mutable n_matches : int;
  mutable n_deadline : int;
  mutable n_limit : int;
  mutable n_aborted : int;
  mutable n_failed : int;
  (* pipeline totals accumulated independently of Attrib, so the
     conservation test compares two different accumulation paths *)
  mutable n_outcomes : int;
  mutable n_delivered : int;
  mutable n_emitted : int;
  mutable n_match_s : float;
  mutable n_slow : int;
  mutable n_classes : int;  (* engine classes in the last session *)
  mutable n_members : int;  (* subscriptions fanning into them *)
  mutable slow_log : slow_doc list;  (* newest first, <= slow_log_cap *)
}

let counter_docs = Telemetry.counter "xaos_service_docs_total"
let counter_faults = Telemetry.counter "xaos_service_sax_faults_total"
let counter_deadline = Telemetry.counter "xaos_service_deadline_total"
let counter_limit = Telemetry.counter "xaos_service_limit_total"
let counter_quarantined = Telemetry.counter "xaos_service_quarantined_total"
let counter_readmitted = Telemetry.counter "xaos_service_readmitted_total"
let gauge_live = Telemetry.gauge "xaos_service_live_subscriptions"
let span_publish =
  Telemetry.span ~help:"time evaluating one published document"
    "xaos_service_publish_seconds"

(* Per-stage latency histograms (microsecond base, reported in seconds).
   Parse and dispatch are recorded once per document; subscription match
   time once per (document, run) pair from the outcome's [spent_s]. *)
module Histogram = Xaos_obs.Histogram
module Eventlog = Xaos_obs.Eventlog
module Attrib = Xaos_obs.Attrib
module Flight = Xaos_obs.Flight

let hist_parse =
  Histogram.create ~unit_:"s" ~scale:1e-6
    ~help:"SAX parse time per document" "stage/parse"

let hist_dispatch =
  Histogram.create ~unit_:"s" ~scale:1e-6
    ~help:"event dispatch + matching time per document" "stage/dispatch"

let hist_sub_match =
  Histogram.create ~unit_:"s" ~scale:1e-6
    ~help:"per-subscription match time per document"
    "stage/subscription_match"

let create ?(config = default_config) () =
  { mu = Mutex.create (); config; set = Query_set.of_queries [];
    subs = Hashtbl.create 64;
    quarantine = Quarantine.create ~config:config.quarantine ();
    tick = 0; n_events = 0; n_faults = 0; n_matches = 0; n_deadline = 0;
    n_limit = 0; n_aborted = 0; n_failed = 0; n_outcomes = 0;
    n_delivered = 0; n_emitted = 0; n_match_s = 0.; n_slow = 0;
    n_classes = 0; n_members = 0; slow_log = [] }

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let subscribe ?(earliest = false) t ~name ~query =
  with_lock t @@ fun () ->
  if Hashtbl.mem t.subs name then Error ("duplicate subscription: " ^ name)
  else begin
    (* the emission mode is baked into the compiled query, so it follows
       the subscription through quarantine and re-admission for free *)
    let config =
      if earliest || t.config.earliest then
        { Engine.default_config with emission = Engine.Earliest }
      else Engine.default_config
    in
    match Query.compile ~config query with
    | Error e -> Error e
    | Ok q ->
      Hashtbl.add t.subs name { sub_query = q };
      Query_set.register t.set name q;
      Telemetry.set_gauge gauge_live (Query_set.size t.set);
      Ok ()
  end

let unsubscribe t ~name =
  with_lock t @@ fun () ->
  if not (Hashtbl.mem t.subs name) then false
  else begin
    Hashtbl.remove t.subs name;
    Quarantine.forget t.quarantine name;
    ignore (Query_set.unregister t.set name);
    Telemetry.set_gauge gauge_live (Query_set.size t.set);
    true
  end

let subscriptions t =
  with_lock t @@ fun () ->
  Hashtbl.fold
    (fun name _ acc ->
      let status =
        match Quarantine.reason t.quarantine name with
        | Some r -> Quarantined r
        | None -> Live
      in
      (name, status) :: acc)
    t.subs []
  |> List.sort compare

type doc_outcome = {
  doc_id : string;
  tick : int;
  matches : (string * int) list;
  events : int;
  faults : int;
  deadline_hit : bool;
  limit_hit : string option;
  aborted : string list;
  failed : (string * string) list;
  quarantined_now : (string * string) list;
  readmitted : string list;
}

(* re-admit every quarantined subscription whose backoff elapsed *)
let readmit_due t =
  let due = Quarantine.due t.quarantine ~now:t.tick in
  List.filter
    (fun name ->
      Quarantine.readmit t.quarantine name;
      match Hashtbl.find_opt t.subs name with
      | Some sub when not (Query_set.mem t.set name) ->
        Query_set.register t.set name sub.sub_query;
        Telemetry.incr counter_readmitted;
        Eventlog.record ~kind:"readmit" ~reason:Eventlog.Backoff_elapsed
          ~detail:[ ("tick", Json.Int t.tick); ("probation", Json.Bool true) ]
          name;
        true
      | _ ->
        (* unsubscribed while quarantined *)
        Quarantine.forget t.quarantine name;
        false)
    due

(* attribute per-run failures to their subscriptions; returns the ones
   quarantined by this document *)
let account_outcomes t ~doc_died outcomes =
  List.filter_map
    (fun (o : Query_set.outcome) ->
      let name = o.query_name in
      let failure_reason =
        match o.failed with
        | Some msg -> Some ("raised: " ^ msg)
        | None ->
          (* under a document-level end every run is flagged aborted;
             only blame the subscription when the document survived *)
          if o.aborted && not doc_died then Some "budget-exceeded" else None
      in
      match failure_reason with
      | None ->
        (* a document-level end is neutral for budget-aborted runs: not a
           failure, but not a success either — a success would reset the
           consecutive-failure streak of a near-quarantine subscription
           on every unrelated document-wide deadline *)
        if not doc_died then Quarantine.record_success t.quarantine ~name;
        None
      | Some reason -> (
        if o.failed <> None then t.n_failed <- t.n_failed + 1
        else t.n_aborted <- t.n_aborted + 1;
        match
          Quarantine.record_failure t.quarantine ~now:t.tick ~name ~reason
        with
        | `Counted -> None
        | `Quarantined ->
          ignore (Query_set.unregister t.set name);
          Telemetry.incr counter_quarantined;
          Telemetry.set_gauge gauge_live (Query_set.size t.set);
          Eventlog.record ~level:Eventlog.Warn ~kind:"quarantine"
            ~reason:
              (if o.failed <> None then Eventlog.Engine_raised
               else Eventlog.Budget_exceeded)
            ~detail:
              [ ("tick", Json.Int t.tick); ("reason", Json.String reason) ]
            name;
          Some (name, reason)))
    outcomes

let publish ?on_item ?flight t ~doc_id doc =
  with_lock t @@ fun () ->
  Telemetry.enter span_publish;
  if Tracer.enabled () then Tracer.phase_begin "service.publish";
  Fun.protect ~finally:(fun () ->
      if Tracer.enabled () then Tracer.phase_end "service.publish";
      Telemetry.leave span_publish)
  @@ fun () ->
  t.tick <- t.tick + 1;
  (match flight with Some fl -> Flight.set_tick fl t.tick | None -> ());
  Telemetry.incr counter_docs;
  if
    t.config.reset_symbols_every > 0
    && t.tick mod t.config.reset_symbols_every = 0
  then Xaos_xml.Symbol.reset ();
  let readmitted = readmit_due t in
  let session =
    Query_set.start ?budget:t.config.budget ~gate:t.config.prefix_gate
      ?on_item t.set
  in
  let classes, members, _ = Query_set.session_stats session in
  t.n_classes <- classes;
  t.n_members <- members;
  let faults = ref 0 in
  let deadline_hit = ref false in
  let limit_hit = ref None in
  let events = ref 0 in
  let started = Unix.gettimeofday () in
  let parser =
    Sax.of_string ~limits:t.config.limits ~mode:Sax.Lenient
      ~on_fault:(fun _ -> incr faults)
      doc
  in
  let parse_s = ref 0. and dispatch_s = ref 0. in
  (try
     if Telemetry.enabled () then begin
       (* instrumented loop: split time between the parser pull and the
          dispatch/match step, and keep the session's byte offset
          current so results are stamped for emission latency. Separate
          from the plain loop so the telemetry-off path never reads the
          clock. *)
       let rec loop () =
         let t0 = Telemetry.now () in
         let pulled = Sax.next parser in
         parse_s := !parse_s +. (Telemetry.now () -. t0);
         match pulled with
         | None -> ()
         | Some ev ->
           incr events;
           Query_set.set_stream_byte session (Sax.bytes_read parser);
           let t1 = Telemetry.now () in
           Query_set.feed session ev;
           dispatch_s := !dispatch_s +. (Telemetry.now () -. t1);
           (match t.config.deadline_s with
           | Some d
             when !events land 63 = 0
                  && Unix.gettimeofday () -. started > d ->
             deadline_hit := true
           | _ -> ());
           if not !deadline_hit then loop ()
       in
       loop ()
     end
     else
       let rec loop () =
         match Sax.next parser with
         | None -> ()
         | Some ev ->
           incr events;
           Query_set.feed session ev;
           (match t.config.deadline_s with
           | Some d
             when !events land 63 = 0
                  && Unix.gettimeofday () -. started > d ->
             deadline_hit := true
           | _ -> ());
           if not !deadline_hit then loop ()
       in
       loop ()
   with Sax.Limit_exceeded (_, kind, _) ->
     limit_hit := Some (Sax.limit_kind_name kind));
  let doc_died = !deadline_hit || !limit_hit <> None in
  if !deadline_hit then
    Eventlog.record ~level:Eventlog.Warn ~kind:"doc-end"
      ~reason:Eventlog.Doc_deadline
      ~detail:[ ("tick", Json.Int t.tick); ("events", Json.Int !events) ]
      doc_id;
  (match !limit_hit with
  | Some kind ->
    Eventlog.record ~level:Eventlog.Warn ~kind:"doc-end"
      ~reason:(Eventlog.Sax_limit kind)
      ~detail:[ ("tick", Json.Int t.tick); ("events", Json.Int !events) ]
      doc_id
  | None -> ());
  let fin_t0 = match flight with Some _ -> Telemetry.now () | None -> 0. in
  let outcomes =
    if doc_died then Query_set.finish_partial session
    else Query_set.finish session
  in
  let fin_t1 = match flight with Some _ -> Telemetry.now () | None -> 0. in
  if Telemetry.enabled () then begin
    Histogram.record_seconds hist_parse !parse_s;
    Histogram.record_seconds hist_dispatch !dispatch_s;
    List.iter
      (fun (o : Query_set.outcome) ->
        Histogram.record_seconds hist_sub_match o.spent_s)
      outcomes
  end;
  let quarantined_now = account_outcomes t ~doc_died outcomes in
  (* pipeline totals and per-subscription cost charges from the same
     outcomes, accumulated through two separate paths on purpose: the
     conservation test asserts they agree *)
  let attrib_on = Attrib.enabled () in
  let run_faulted (o : Query_set.outcome) =
    o.failed <> None || (o.aborted && not doc_died)
  in
  List.iter
    (fun (o : Query_set.outcome) ->
      let emitted = List.length o.items in
      t.n_outcomes <- t.n_outcomes + 1;
      t.n_delivered <- t.n_delivered + o.delivered;
      t.n_emitted <- t.n_emitted + emitted;
      t.n_match_s <- t.n_match_s +. o.spent_s;
      if attrib_on then
        Attrib.charge
          (Attrib.account o.query_name)
          ~events:o.delivered ~match_s:o.spent_s
          ~structures:o.stats.Stats.structures_created
          ~live_peak:o.stats.Stats.live_peak
          ~retained_peak_bytes:o.stats.Stats.retained_peak_bytes
          ~emissions:emitted ~fault:(run_faulted o))
    outcomes;
  let total_s = Unix.gettimeofday () -. started in
  let any_run_fault = List.exists run_faulted outcomes in
  (* slow-document log: threshold-triggered, bounded ring plus a typed
     event-log record carrying the per-subscription breakdown *)
  let slow =
    match t.config.slow_ms with
    | Some ms when total_s *. 1000. >= ms -> true
    | _ -> false
  in
  if slow then begin
    let top =
      List.stable_sort
        (fun (a : Query_set.outcome) b -> compare b.spent_s a.spent_s)
        outcomes
      |> List.filteri (fun i _ -> i < slow_top_n)
      |> List.map (fun (o : Query_set.outcome) -> (o.query_name, o.spent_s))
    in
    let sd =
      { sd_doc_id = doc_id; sd_tick = t.tick;
        sd_total_ms = total_s *. 1000.; sd_events = !events;
        sd_faults = !faults; sd_deadline = !deadline_hit;
        sd_limit = !limit_hit; sd_top = top }
    in
    t.n_slow <- t.n_slow + 1;
    t.slow_log <-
      sd :: List.filteri (fun i _ -> i < slow_log_cap - 1) t.slow_log;
    Eventlog.record ~level:Eventlog.Warn ~kind:"slow-doc"
      ~reason:Eventlog.Slow_document
      ~detail:
        [ ("tick", Json.Int t.tick);
          ("total_ms", Json.Float sd.sd_total_ms);
          ("events", Json.Int !events);
          ( "top",
            Json.List
              (List.map
                 (fun (name, s) ->
                   Json.Obj
                     [ ("sub", Json.String name); ("match_s", Json.Float s) ])
                 top) ) ]
      doc_id
  end;
  (* flight spans: track 0 carries the sequential pipeline stages (parse
     and dispatch are disjoint measured subsets of the wall interval, so
     they sit before the real finish window), track 1 carries the match
     aggregate with per-subscription children laid sequentially inside
     it *)
  (match flight with
  | None -> ()
  | Some fl ->
    if slow then Flight.mark_slow fl;
    if doc_died || !faults > 0 || any_run_fault then Flight.mark_faulted fl;
    let p_end = started +. !parse_s in
    let d_end = p_end +. !dispatch_s in
    Flight.span fl ~name:"parse" ~start:started ~stop:p_end
      ~args:[ ("events", Json.Int !events) ]
      ();
    Flight.span fl ~name:"dispatch" ~start:p_end ~stop:d_end ();
    Flight.span fl ~name:"emission" ~start:fin_t0 ~stop:fin_t1
      ~args:[ ("outcomes", Json.Int (List.length outcomes)) ]
      ();
    Flight.span fl ~cat:"match" ~track:1 ~name:"match" ~start:p_end
      ~stop:fin_t1 ();
    let cursor = ref p_end in
    let shown = ref 0 in
    List.iter
      (fun (o : Query_set.outcome) ->
        if o.spent_s > 0. && !shown < 40 then begin
          incr shown;
          Flight.span fl ~cat:"match" ~track:1 ~name:o.query_name
            ~start:!cursor
            ~stop:(!cursor +. o.spent_s)
            ~args:
              [ ("events", Json.Int o.delivered);
                ("items", Json.Int (List.length o.items)) ]
            ();
          cursor := !cursor +. o.spent_s
        end)
      outcomes);
  let matches =
    List.filter_map
      (fun (o : Query_set.outcome) ->
        match o.items with
        | [] -> None
        | items -> Some (o.query_name, List.length items))
      outcomes
  in
  t.n_events <- t.n_events + !events;
  t.n_faults <- t.n_faults + !faults;
  t.n_matches <- t.n_matches + List.length matches;
  if !faults > 0 then Telemetry.add counter_faults !faults;
  if !deadline_hit then begin
    t.n_deadline <- t.n_deadline + 1;
    Telemetry.incr counter_deadline
  end;
  if !limit_hit <> None then begin
    t.n_limit <- t.n_limit + 1;
    Telemetry.incr counter_limit
  end;
  Telemetry.sample_gc ();
  { doc_id; tick = t.tick; matches; events = !events; faults = !faults;
    deadline_hit = !deadline_hit; limit_hit = !limit_hit;
    aborted =
      List.filter_map
        (fun (o : Query_set.outcome) ->
          if o.aborted && o.failed = None && not doc_died then
            Some o.query_name
          else None)
        outcomes;
    failed =
      List.filter_map
        (fun (o : Query_set.outcome) ->
          Option.map (fun m -> (o.query_name, m)) o.failed)
        outcomes;
    quarantined_now; readmitted }

let docs_seen t = with_lock t @@ fun () -> t.tick

let stats t =
  with_lock t @@ fun () ->
  let f = float_of_int in
  [ ("service/docs", f t.tick); ("service/events", f t.n_events);
    ("service/sax_faults", f t.n_faults);
    ("service/subscription_matches", f t.n_matches);
    ("service/deadline_ends", f t.n_deadline);
    ("service/limit_ends", f t.n_limit);
    ("service/runs_aborted", f t.n_aborted);
    ("service/runs_failed", f t.n_failed);
    ("service/quarantined", f (Quarantine.times_quarantined t.quarantine));
    ("service/readmitted", f (Quarantine.times_readmitted t.quarantine));
    ("service/live_subscriptions", f (Query_set.size t.set));
    ("service/quarantined_now",
     f (List.length (Quarantine.quarantined t.quarantine)));
    ("service/run_outcomes", f t.n_outcomes);
    ("service/deliveries", f t.n_delivered);
    ("service/emitted_items", f t.n_emitted);
    ("service/match_seconds", t.n_match_s);
    ("service/slow_docs", f t.n_slow);
    ("service/queryset_classes", f t.n_classes);
    ("service/queryset_members", f t.n_members);
    ("service/compaction_ratio",
     if t.n_classes = 0 then 1. else f t.n_members /. f t.n_classes) ]
  @ Histogram.stats ()

let quarantined t = with_lock t @@ fun () -> Quarantine.quarantined t.quarantine

let slow_docs t = with_lock t @@ fun () -> t.slow_log

let slow_doc_to_json sd =
  Json.Obj
    ([
       ("doc_id", Json.String sd.sd_doc_id);
       ("tick", Json.Int sd.sd_tick);
       ("total_ms", Json.Float sd.sd_total_ms);
       ("events", Json.Int sd.sd_events);
       ("faults", Json.Int sd.sd_faults);
       ("deadline", Json.Bool sd.sd_deadline);
     ]
    @ (match sd.sd_limit with
      | None -> []
      | Some kind -> [ ("limit", Json.String kind) ])
    @ [
        ( "top",
          Json.List
            (List.map
               (fun (name, s) ->
                 Json.Obj
                   [ ("sub", Json.String name); ("match_s", Json.Float s) ])
               sd.sd_top) );
      ])

let report ?(extra_stats = []) t =
  let stats = stats t @ extra_stats in
  let config =
    with_lock t @@ fun () ->
    [ ("budget",
       match t.config.budget with Some b -> Json.Int b | None -> Json.Null);
      ("deadline_s",
       match t.config.deadline_s with
       | Some d -> Json.Float d
       | None -> Json.Null);
      ("quarantine_threshold", Json.Int t.config.quarantine.threshold);
      ("reset_symbols_every", Json.Int t.config.reset_symbols_every);
      ("subscriptions", Json.Int (Hashtbl.length t.subs)) ]
  in
  Report.make ~kind:"service" ~config ~stats
    ~spans:(Telemetry.span_summaries ())
    ~service_latency:(Histogram.summaries ())
    ?attribution:
      (if Attrib.enabled () then Some (Attrib.report_section ()) else None)
    ~gc:(Report.gc_now ()) ()
