(** The evaluation core of the service: a {!Xaos_core.Query_set} registry
    under supervision.

    Each published document runs with three independent guards:

    - a {e structure budget} per run ({!Xaos_core.Engine.Budget_exceeded}
      — a pathological query aborts {e individually}, with its partial
      results, and the rest of the set keeps going);
    - a {e wall-clock deadline} for the whole document (checked every few
      events; on expiry the session is finished partially — bounded
      per-document latency is the service contract);
    - SAX {e resource limits} + lenient recovery (malformed input is
      repaired where possible and every recovery is counted; a tripped
      limit ends the document partially instead of killing the process).

    Supervision feeds {!Quarantine}: a run that trips its budget or
    raises is a failure attributed to that subscription; crossing the
    threshold unregisters it from the dispatch set with a reason code.
    Document-level ends (deadline, limit, truncation) are {e not}
    attributed — they are the document's fault. Quarantined subscriptions
    are re-admitted automatically once their backoff elapses, on the
    document tick counter.

    Long-lived sessions reset the {!Xaos_xml.Symbol} interning table
    every [reset_symbols_every] documents so the symbol space tracks the
    live vocabulary instead of growing forever; compiled queries
    re-resolve at engine creation, so this is invisible to subscribers.

    Thread-safe: one internal lock serializes {!publish} with the
    subscription operations. *)

type config = {
  budget : int option;  (** live matching structures per run *)
  deadline_s : float option;  (** per-document wall clock *)
  limits : Xaos_xml.Sax.limits;
  quarantine : Quarantine.config;
  reset_symbols_every : int;  (** documents between interning resets; 0 = never *)
  earliest : bool;
      (** compile {e every} subscription in earliest-decision emission
          mode ({!Xaos_core.Engine.Earliest}), regardless of what the
          individual {!subscribe} calls asked for — the [serve
          --earliest] switch *)
  prefix_gate : bool;
      (** route gateable equivalence classes through the shared-prefix
          trie ({!Xaos_core.Prefix_gate}): their engines stay dormant —
          zero cost — until the document touches one of their forward
          prefixes, then attach mid-document via open-chain replay.
          Results are unchanged (the prefix analysis is conservative);
          on by default *)
  slow_ms : float option;
      (** slow-document threshold in milliseconds: a document whose
          total pipeline time reaches it lands in {!slow_docs} and the
          event log with its per-subscription breakdown ([Some 0.]
          flags every document — deterministic for tests); [None]
          disables the log *)
}

val default_config : config
(** budget 50k structures, deadline 2 s, {!Xaos_xml.Sax.default_limits},
    default quarantine, symbol reset every 256 documents, deferred
    emission, prefix gate on, no slow-document log. *)

type t

val create : ?config:config -> unit -> t

(** {1 Subscriptions} *)

val subscribe :
  ?earliest:bool -> t -> name:string -> query:string -> (unit, string) result
(** Compile and register. [Error] on a bad expression or duplicate
    name. [earliest] (default [false]) compiles the query in
    earliest-decision emission mode ({!Xaos_core.Engine.Earliest}): its
    results are additionally delivered one by one through {!publish}'s
    [on_item] callback the moment each is decided, mid-document. The
    mode is baked into the compiled query, so it survives quarantine
    and re-admission. *)

val unsubscribe : t -> name:string -> bool

type status =
  | Live
  | Quarantined of string  (** reason code *)

val subscriptions : t -> (string * status) list
(** Sorted by name. *)

(** {1 Publishing} *)

type doc_outcome = {
  doc_id : string;
  tick : int;  (** this document's position in the broker's stream *)
  matches : (string * int) list;  (** subscriptions with ≥ 1 result *)
  events : int;  (** SAX events evaluated *)
  faults : int;  (** lenient-mode recoveries in this document *)
  deadline_hit : bool;
  limit_hit : string option;  (** tripped {!Xaos_xml.Sax.limit_kind} name *)
  aborted : string list;  (** runs that tripped the structure budget *)
  failed : (string * string) list;  (** runs that raised, with message *)
  quarantined_now : (string * string) list;
      (** subscriptions quarantined by this document, with reason *)
  readmitted : string list;  (** subscriptions re-admitted before it *)
}

val publish :
  ?on_item:(name:string -> Xaos_core.Item.t -> unit) ->
  ?flight:Xaos_obs.Flight.t ->
  t -> doc_id:string -> string -> doc_outcome
(** Evaluate one document against every live subscription. Never raises
    on document content: malformed bytes, limit trips, budget trips and
    engine failures all land in the outcome.

    [on_item] receives each result element of every non-deferred
    (earliest / eager) subscription the moment it is decided, while the
    document is still streaming — called from the publishing thread,
    in document order per subscription, exactly once per (subscription,
    element). Deferred subscriptions never reach it; their matches are
    only summarized in the outcome. The outcome's [matches] counts are
    identical in every mode.

    While telemetry is enabled, per-stage latencies are recorded into
    the [stage/parse], [stage/dispatch] and [stage/subscription_match]
    histograms, result emission latency (in document bytes) into
    [engine/emission], and every supervision decision — quarantine,
    re-admission, document-level end — into the {!Xaos_obs.Eventlog}
    with a typed reason code.

    While {!Xaos_obs.Attrib} is enabled, every run outcome is charged
    to the owning subscription's cost account (events delivered, match
    time, structures, peaks, emissions, faults), and the broker keeps
    independent pipeline totals for the conservation check. The [tick]
    in the outcome is the document's monotone id.

    [flight] attaches an in-progress flight recording: the broker adds
    the parse/dispatch/emission stage spans plus the per-subscription
    match spans and marks the recording slow/faulted as appropriate.
    The caller finishes the recording (the server does it from the
    writer thread so the [writer] span is included). *)

(** {1 Observability} *)

val docs_seen : t -> int

val stats : t -> (string * float) list
(** Scalar counters for the run report: documents, events, faults,
    matches, deadline/limit ends, aborts, failures, quarantine and
    re-admission totals, live/quarantined subscription counts, plus the
    key quantiles of every non-empty latency histogram
    ({!Xaos_obs.Histogram.stats}). *)

val quarantined : t -> (string * string * int) list
(** Currently quarantined subscriptions: (name, reason, release tick) —
    what [xaos top] shows. *)

type slow_doc = {
  sd_doc_id : string;
  sd_tick : int;
  sd_total_ms : float;
  sd_events : int;
  sd_faults : int;
  sd_deadline : bool;
  sd_limit : string option;
  sd_top : (string * float) list;
      (** per-subscription breakdown: (name, match seconds), descending *)
}
(** One slow-document record. *)

val slow_docs : t -> slow_doc list
(** The slow-document log, newest first, bounded (64 records) — what
    the [slowlog] wire op serves. *)

val slow_doc_to_json : slow_doc -> Xaos_obs.Json.t

val report : ?extra_stats:(string * float) list -> t -> Xaos_obs.Report.t
(** Schema-current run report of kind ["service"]; [extra_stats] lets
    the server add transport-side counters (shed, displaced, drops). *)
