(** The transport shell around {!Broker}: a Unix-domain socket server
    speaking {!Protocol}, built so that no single client can stall the
    others.

    Thread layout:

    - one {e accept} thread — never evaluates, never writes; a slow or
      hostile client cannot block admission of new connections;
    - one {e reader} thread per connection — parses requests; [publish]
      is an {!Ingress.offer} (non-blocking, verdict returned
      immediately), subscription/stats ops take the broker lock briefly;
    - one {e evaluator} thread — drains the ingress queue in priority
      order and runs {!Broker.publish}; this is the only thread that
      evaluates documents, so per-document latency is the queue delay
      plus one evaluation;
    - one {e writer} thread per connection, fed by a bounded out-queue.
      When a consumer stops reading, its queue fills and further events
      for it are {e dropped and counted} (never buffered unboundedly,
      never blocking the evaluator), and the socket send timeout
      eventually declares the client dead.

    Any uncaught exception in a thread is recorded in {!crash_count}
    (and the thread exits) rather than killing the process — the soak
    test gates on this staying zero. *)

type config = {
  socket_path : string;
  high_watermark : int;  (** ingress bound; overload above this *)
  low_watermark : int;  (** overload clears below this *)
  out_queue : int;  (** per-client pending responses before drops *)
  write_timeout_s : float;  (** socket send timeout per client *)
  max_line_bytes : int;
      (** frame cap: a connection whose unterminated request line grows
          past this many bytes fails closed — a typed
          {!Xaos_obs.Eventlog.Line_too_long} event, one [parse] error
          response, then disconnect.  A request split across many tiny
          writes below the cap is reassembled normally. *)
  broker : Broker.config;
}

val default_config : string -> config
(** [default_config socket_path]: watermarks 64/16, out-queue 1024,
    write timeout 5 s, 8 MiB frame cap, {!Broker.default_config}. *)

type t

val start : config -> t
(** Bind (replacing a stale socket file), spawn the accept and evaluator
    threads, return immediately.
    @raise Unix.Unix_error when the socket cannot be bound. *)

val broker : t -> Broker.t

val stop : t -> unit
(** Close the listener, drain and stop the evaluator, disconnect
    clients, remove the socket file. Idempotent. *)

val wait : t -> unit
(** Block until the server is stopped (by {!stop} or a [shutdown]
    request). *)

val stats : t -> (string * float) list
(** Broker stats plus transport counters: [ingress/*] (queue length,
    shed, displaced, overload entries) and [server/*] (connections,
    dropped responses, crashes). *)

val report : t -> Xaos_obs.Report.t
(** {!Broker.report} with the transport counters as extra stats. *)

val crash_count : t -> int

val connections : t -> int
