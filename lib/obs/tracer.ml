(* The ring holds preallocated slots only in the sense of an [event
   array] initialized with a dummy; recording allocates one immutable
   event record (the enabled path is diagnostic, not the production hot
   path — the disabled path allocates nothing). *)

type kind =
  | Created of { parent_serial : int }
  | Propagated of { target_serial : int; optimistic : bool }
  | Undone of { target_serial : int }
  | Refuted
  | Emitted of { item_id : int }
  | Phase of { phase_name : string; enter : bool }

type event = {
  id : int;
  parent : int;
  kind : kind;
  serial : int;
  xnode : int;
  item_id : int;
  tag : string;
  level : int;
  byte : int;
  line : int;
  ts : float;
}

let dummy =
  {
    id = -1;
    parent = -1;
    kind = Refuted;
    serial = -1;
    xnode = -1;
    item_id = -1;
    tag = "";
    level = -1;
    byte = -1;
    line = -1;
    ts = 0.;
  }

let default_capacity = 65536

type state = {
  ring : event array;
  mutable total : int;  (* events recorded since reset; ids are 0..total-1 *)
  mutable t0 : float;
  (* structure serial -> causal id of its Created event. Entries are
     never evicted when the ring wraps: a stale entry only means [find]
     on the id returns None, which is exactly the documented contract. *)
  created_ids : (int, int) Hashtbl.t;
  mutable byte : int;
  mutable line : int;
}

let on = ref false

let state =
  ref
    {
      ring = Array.make default_capacity dummy;
      total = 0;
      t0 = 0.;
      created_ids = Hashtbl.create 256;
      byte = -1;
      line = -1;
    }

let enabled () = !on

let capacity () = Array.length !state.ring

let reset () =
  let s = !state in
  Array.fill s.ring 0 (Array.length s.ring) dummy;
  s.total <- 0;
  s.t0 <- Telemetry.now ();
  Hashtbl.reset s.created_ids;
  s.byte <- -1;
  s.line <- -1

let enable ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Tracer.enable: capacity must be positive";
  state :=
    {
      ring = Array.make capacity dummy;
      total = 0;
      t0 = Telemetry.now ();
      created_ids = Hashtbl.create 256;
      byte = -1;
      line = -1;
    };
  on := true

let disable () = on := false

let set_position ~byte ~line =
  if !on then begin
    let s = !state in
    s.byte <- byte;
    s.line <- line
  end

let record ~kind ~serial ~xnode ~item_id ~tag ~level ~parent =
  let s = !state in
  let id = s.total in
  let e =
    {
      id;
      parent;
      kind;
      serial;
      xnode;
      item_id;
      tag;
      level;
      byte = s.byte;
      line = s.line;
      ts = Telemetry.now () -. s.t0;
    }
  in
  s.ring.(id mod Array.length s.ring) <- e;
  s.total <- id + 1;
  id

let creation_id serial =
  match Hashtbl.find_opt !state.created_ids serial with
  | Some id -> id
  | None -> -1

let created ~serial ~xnode ~item_id ~tag ~level ~parent_serial =
  if !on then begin
    let id =
      record
        ~kind:(Created { parent_serial })
        ~serial ~xnode ~item_id ~tag ~level
        ~parent:(creation_id parent_serial)
    in
    Hashtbl.replace !state.created_ids serial id
  end

let propagated ~optimistic ~child ~target =
  if !on then
    ignore
      (record
         ~kind:(Propagated { target_serial = target; optimistic })
         ~serial:child ~xnode:(-1) ~item_id:(-1) ~tag:"" ~level:(-1)
         ~parent:(creation_id child))

let undone ~child ~target =
  if !on then
    ignore
      (record
         ~kind:(Undone { target_serial = target })
         ~serial:child ~xnode:(-1) ~item_id:(-1) ~tag:"" ~level:(-1)
         ~parent:(creation_id child))

let refuted ~serial =
  if !on then
    ignore
      (record ~kind:Refuted ~serial ~xnode:(-1) ~item_id:(-1) ~tag:""
         ~level:(-1) ~parent:(creation_id serial))

let emitted ~serial ~item_id =
  if !on then
    ignore
      (record
         ~kind:(Emitted { item_id })
         ~serial ~xnode:(-1) ~item_id ~tag:"" ~level:(-1)
         ~parent:(creation_id serial))

let phase_event name enter =
  if !on then
    ignore
      (record
         ~kind:(Phase { phase_name = name; enter })
         ~serial:(-1) ~xnode:(-1) ~item_id:(-1) ~tag:"" ~level:(-1)
         ~parent:(-1))

let phase_begin name = phase_event name true

let phase_end name = phase_event name false

(* ------------------------------------------------------------------ *)
(* Draining                                                            *)
(* ------------------------------------------------------------------ *)

let recorded () = !state.total

let dropped () =
  let s = !state in
  max 0 (s.total - Array.length s.ring)

let oldest_retained () = dropped ()

let find id =
  let s = !state in
  if id < 0 || id >= s.total || id < oldest_retained () then None
  else Some s.ring.(id mod Array.length s.ring)

let events () =
  let s = !state in
  let first = oldest_retained () in
  List.init (s.total - first) (fun i ->
      s.ring.((first + i) mod Array.length s.ring))

let creation ~serial = find (creation_id serial)

(* ------------------------------------------------------------------ *)
(* Provenance                                                          *)
(* ------------------------------------------------------------------ *)

(* Retained-events fold, oldest first, without materializing the list. *)
let fold_events f init =
  let s = !state in
  let acc = ref init in
  for id = oldest_retained () to s.total - 1 do
    acc := f !acc s.ring.(id mod Array.length s.ring)
  done;
  !acc

let undos_survived ~serial =
  fold_events
    (fun n e ->
      match e.kind with
      | Undone { target_serial } when target_serial = serial -> n + 1
      | _ -> n)
    0

(* The last emission of [item_id]: under disjunct [or] engines the same
   element can be emitted by several structures; the latest event is the
   one the current run produced. *)
let find_emitted item_id =
  fold_events
    (fun acc e ->
      match e.kind with
      | Emitted { item_id = i } when i = item_id -> Some e
      | _ -> acc)
    None

(* The surviving placement of [serial]: the last Propagated event whose
   placement was not subsequently removed by a matching Undone. A result
   structure's placements all survived (an undone one would have refuted
   it), so "the last surviving one" is the link the emission traversed. *)
let surviving_propagation serial =
  fold_events
    (fun acc e ->
      if e.serial <> serial then acc
      else
        match e.kind with
        | Propagated { target_serial; _ } -> Some (e, target_serial)
        | Undone { target_serial } -> (
          match acc with
          | Some (_, t) when t = target_serial -> None
          | _ -> acc)
        | _ -> acc)
    None

let provenance ~item_id =
  match find_emitted item_id with
  | None -> []
  | Some emission ->
    (* Walk placement links rootward. The x-tree parent chain is finite
       and placements only go child-structure -> parent-structure, but a
       dropped creation plus serial reuse across engines could in
       principle loop — the visited set makes termination unconditional. *)
    let visited = Hashtbl.create 16 in
    let rec climb serial acc =
      if Hashtbl.mem visited serial then List.rev acc
      else begin
        Hashtbl.add visited serial ();
        let acc =
          match creation ~serial with Some c -> c :: acc | None -> acc
        in
        match surviving_propagation serial with
        | Some (p, target) when target <> 0 -> climb target (p :: acc)
        | Some (p, _) -> List.rev (p :: acc)  (* placed into the root *)
        | None -> List.rev acc
      end
    in
    emission :: climb emission.serial []

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)
(* ------------------------------------------------------------------ *)

let us ts = ts *. 1e6

let base_args e extra =
  let args =
    [ ("cause", Json.Int e.id); ("parent_cause", Json.Int e.parent) ]
    @ extra
    @ (if e.byte >= 0 then [ ("byte", Json.Int e.byte) ] else [])
    @ if e.line >= 0 then [ ("line", Json.Int e.line) ] else []
  in
  ("args", Json.Obj args)

let common ~name ~cat ~ph e extra =
  [
    ("name", Json.String name);
    ("cat", Json.String cat);
    ("ph", Json.String ph);
    ("ts", Json.Float (us e.ts));
    ("pid", Json.Int 1);
    ("tid", Json.Int 1);
  ]
  @ extra
  @ [ base_args e [] ]

let structure_name e =
  if e.tag = "" then Printf.sprintf "M#%d" e.serial
  else Printf.sprintf "M#%d %s" e.serial e.tag

let async ~name ~ph e extra_args =
  Json.Obj
    [
      ("name", Json.String name);
      ("cat", Json.String "structure");
      ("ph", Json.String ph);
      ("ts", Json.Float (us e.ts));
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
      ("id", Json.Int e.serial);
      base_args e extra_args;
    ]

let event_to_chrome e =
  match e.kind with
  | Phase { phase_name; enter } ->
    Json.Obj
      (common ~name:phase_name ~cat:"phase" ~ph:(if enter then "B" else "E")
         e [])
  | Created { parent_serial } ->
    async ~name:(structure_name e) ~ph:"b" e
      [
        ("serial", Json.Int e.serial);
        ("xnode", Json.Int e.xnode);
        ("item", Json.Int e.item_id);
        ("tag", Json.String e.tag);
        ("level", Json.Int e.level);
        ("parent_serial", Json.Int parent_serial);
      ]
  | Propagated { target_serial; optimistic } ->
    async
      ~name:(if optimistic then "optimistic-propagate" else "propagate")
      ~ph:"n" e
      [ ("target", Json.Int target_serial) ]
  | Undone { target_serial } ->
    async ~name:"undo" ~ph:"n" e [ ("target", Json.Int target_serial) ]
  | Refuted -> async ~name:"refute" ~ph:"e" e []
  | Emitted { item_id } ->
    Json.Obj
      [
        ("name", Json.String "emit");
        ("cat", Json.String "result");
        ("ph", Json.String "i");
        ("ts", Json.Float (us e.ts));
        ("pid", Json.Int 1);
        ("tid", Json.Int 1);
        ("s", Json.String "p");
        base_args e [ ("item", Json.Int item_id) ];
      ]

let to_chrome () =
  let evs = events () in
  let span_end =
    match evs with
    | [] -> 0.
    | _ -> List.fold_left (fun acc e -> Float.max acc e.ts) 0. evs
  in
  (* one X (complete) event covering the whole recorded window, so the
     trace always has a top-level duration row *)
  let whole =
    Json.Obj
      [
        ("name", Json.String "xaos trace");
        ("cat", Json.String "trace");
        ("ph", Json.String "X");
        ("ts", Json.Float 0.);
        ("dur", Json.Float (us span_end));
        ("pid", Json.Int 1);
        ("tid", Json.Int 1);
        ( "args",
          Json.Obj
            [
              ("recorded", Json.Int (recorded ()));
              ("dropped", Json.Int (dropped ()));
            ] );
      ]
  in
  Json.Obj
    [
      ("displayTimeUnit", Json.String "ms");
      ("traceEvents", Json.List (whole :: List.map event_to_chrome evs));
    ]

let write_chrome path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string (to_chrome ()));
      output_char oc '\n')
