(** Periodic stream snapshots: a time series, over document bytes, of
    the quantities the paper reasons about — live matching structures
    (the "store only the relevant fraction" claim), the looking-for set
    size (the filtering claim), open-element depth, throughput, and GC
    heap size.

    The driver of the event loop owns the sampling cadence: per event it
    calls the cheap {!due} check and, when it fires, gathers the engine
    quantities and calls {!sample}. The series enforces monotonicity in
    [bytes] — a regressing sample is dropped, so a recorded series is
    always a valid progress curve. *)

type point = {
  sn_bytes : int;  (** input bytes consumed when the sample was taken *)
  sn_events : int;  (** events fed so far *)
  sn_depth : int;  (** open-element depth *)
  sn_live : int;  (** live matching structures (created - refuted) *)
  sn_looking_for : int;  (** size of the looking-for set *)
  sn_retained_bytes : int;
      (** estimated bytes in live matching structures at the sample
          ([0] when the driver does not track them) *)
  sn_elapsed_s : float;  (** seconds since {!create} *)
  sn_bytes_per_sec : float;  (** [sn_bytes / sn_elapsed_s]; 0 at t=0 *)
  sn_heap_words : int;  (** major-heap size ({!Gc.quick_stat}) *)
}

type series

val create :
  ?interval_bytes:int -> ?on_point:(point -> unit) -> unit -> series
(** A fresh series; the first sample is due immediately, then every
    [interval_bytes] (default 65536) of stream progress. Uses
    {!Telemetry.now} as its clock. [on_point] is called with each point
    right after it is recorded — how [xaos eval --metrics] streams the
    series as NDJSON during the run instead of only at exit. *)

val due : series -> bytes:int -> bool
(** Whether the next sample is due — two loads and a compare, cheap
    enough for a per-event call. *)

val sample :
  ?retained_bytes:int -> series -> bytes:int -> events:int -> depth:int ->
  live:int -> looking_for:int -> unit
(** Record a point (unconditionally — pair with {!due} for cadence).
    Elapsed time, throughput and heap size are captured here. Samples
    with [bytes] below the last recorded point are dropped. *)

val points : series -> point list
(** Chronological. *)

val length : series -> int
