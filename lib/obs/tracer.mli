(** Causal provenance tracer: a bounded ring buffer of typed
    matching-structure lifecycle events.

    Where {!Telemetry} aggregates (counters, histograms, span totals),
    the tracer records {e individual} events — structure created /
    propagated / optimistically propagated / undone / refuted / emitted —
    each stamped with a monotonically assigned causal id, the causal id
    of its parent cause, the x-node, and the SAX byte/line position at
    which it happened. Two consumers sit on top:

    - {!to_chrome} exports the buffer as Chrome trace-event JSON (the
      format ui.perfetto.dev loads): engine phases become duration
      events, structure lifecycles async begin/instant/end events;
    - {!provenance} walks parent-cause links backward from an emitted
      result item, reconstructing {e why} it is in the answer — the
      chain of creations and propagations connecting it to the root.

    Flag discipline is the same as {!Telemetry}: when disabled, every
    hook is one flag load and an untaken branch, no allocation. The
    instrumented code guards each call site with {!enabled} so argument
    evaluation is skipped too. Positions are threaded in by whoever
    drives the event loop ({!set_position} before each event); the
    engine itself never sees the byte stream.

    The buffer is a ring: at capacity, the oldest events are overwritten.
    Causal ids stay valid as references — {!find} simply returns [None]
    for an event that has been dropped — so parent-cause links of
    retained events never dangle into garbage.

    Not thread-safe, same as the telemetry sink. *)

(** What happened. [serial] fields refer to matching-structure serial
    numbers (unique per engine run; the root structure is serial 0 and
    never gets a [Created] event). *)
type kind =
  | Created of { parent_serial : int }
      (** a structure was allocated at a start event; [parent_serial] is
          the open witness that made the element relevant ([-1] when the
          relevance filter is off or the witness is unknown) *)
  | Propagated of { target_serial : int; optimistic : bool }
      (** the subject structure was placed into [target_serial]'s slot —
          a confirmed forward-axis push, or an optimistic backward-axis
          pull when [optimistic] *)
  | Undone of { target_serial : int }
      (** the refutation cascade removed the subject's placement from
          [target_serial] *)
  | Refuted  (** conclusively no total matching at this structure *)
  | Emitted of { item_id : int }
      (** the subject's element was reported as a result item *)
  | Phase of { phase_name : string; enter : bool }
      (** an engine/driver phase boundary (duration events in the
          Chrome export); [serial] is [-1] *)

type event = {
  id : int;  (** causal id, monotone over the whole trace *)
  parent : int;
      (** causal id of the parent cause: the [Created] event of
          [parent_serial] for creations, of the subject structure for
          everything else; [-1] when unknown *)
  kind : kind;
  serial : int;  (** subject structure; [-1] for phases *)
  xnode : int;  (** x-node of the subject; [-1] for phases *)
  item_id : int;  (** document-order id of the subject's element *)
  tag : string;  (** element tag of the subject; [""] for phases *)
  level : int;  (** element level; [-1] for phases *)
  byte : int;  (** SAX byte offset of the current event; [-1] unknown *)
  line : int;  (** SAX line; [-1] unknown *)
  ts : float;  (** seconds since {!enable}, {!Telemetry.now} clock *)
}

(** {1 Control} *)

val enable : ?capacity:int -> unit -> unit
(** Start recording into a fresh ring of [capacity] events (default
    65536). Implies {!reset}. *)

val disable : unit -> unit
(** Stop recording; the buffer is kept for draining. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Drop every recorded event and restart causal ids at 0. *)

val capacity : unit -> int

(** {1 Hook points}

    All are no-ops when disabled; hot-path callers should still guard
    with [if Tracer.enabled () then ...] so arguments are not even
    evaluated. *)

val set_position : byte:int -> line:int -> unit
(** Thread the SAX position in; subsequent events are stamped with it.
    Two stores — cheap enough for a per-event call. *)

val created :
  serial:int -> xnode:int -> item_id:int -> tag:string -> level:int ->
  parent_serial:int -> unit

val propagated : optimistic:bool -> child:int -> target:int -> unit
(** [child] was placed into [target]'s slot. Subject is [child]. *)

val undone : child:int -> target:int -> unit

val refuted : serial:int -> unit

val emitted : serial:int -> item_id:int -> unit

val phase_begin : string -> unit

val phase_end : string -> unit

(** {1 Draining} *)

val events : unit -> event list
(** Retained events, oldest first. *)

val recorded : unit -> int
(** Total events recorded since {!enable}/{!reset}, including dropped. *)

val dropped : unit -> int
(** Events overwritten by the ring. [recorded () - dropped ()] are
    retained. *)

val find : int -> event option
(** Event by causal id; [None] if never recorded or already dropped. *)

val creation : serial:int -> event option
(** The [Created] event of a structure, if still retained. *)

(** {1 Provenance} *)

val provenance : item_id:int -> event list
(** Why is element [item_id] in the result? The causal chain, emission
    first: the [Emitted] event, then alternating [Created] and
    [Propagated] events walking the surviving placement links from the
    emitting structure up toward the root structure. Propagations undone
    later are skipped (they did not carry the result). Empty when no
    emission of [item_id] is retained. *)

val undos_survived : serial:int -> int
(** Retained [Undone] events that removed an entry from one of this
    structure's slots — optimism revoked under it while it survived. *)

(** {1 Chrome trace-event export}

    The JSON Object Format of the Trace Event specification, loadable in
    ui.perfetto.dev or chrome://tracing: phases map to [B]/[E] duration
    events, the whole trace to one [X] complete event, creations to [b]
    (async begin), propagations/undos to [n] (async instant), refutations
    to [e] (async end) — all on the structure's async id track — and
    emissions to [i] (instant). Timestamps are microseconds since
    {!enable}; [args] carry the causal id, parent cause, x-node, element
    id, and byte/line position of every event. *)

val to_chrome : unit -> Json.t

val write_chrome : string -> unit
(** {!to_chrome} to a file, trailing newline included.
    @raise Sys_error on I/O failure. *)
