(** Fixed-bucket log-scale histograms for live service latencies.

    Complements {!Telemetry}'s histograms with what a long-running
    service needs: a wider range (2{^0} … 2{^30}, then +inf — byte
    distances across large documents land in real buckets), quantile
    estimation readable mid-run, and cross-thread merging.

    Values are recorded as non-negative {e integers} in a fixed base
    unit (bytes, microseconds); the optional [scale] converts to the
    reported unit on the {e read} path only, so the record path never
    touches a float. Recording is guarded by {!Telemetry.enabled} — when
    the sink is off it is one load and one branch, no allocation.

    Like {!Telemetry}, instances are not thread-safe; a worker thread
    records into a private {!make} scratch instance and {!merge}s it
    into the shared registered one under its own lock. *)

type t

val bucket_count : int
(** [32]: upper bounds 2{^0} … 2{^30}, then +inf. *)

val create : ?help:string -> ?unit_:string -> ?scale:float -> string -> t
(** Register (or retrieve) the histogram [name] in the process-wide
    registry. Name it by the [subsystem/metric] stat convention (e.g.
    ["stage/parse"]). [unit_] is the {e reported} unit (["s"],
    ["bytes"]); [scale] (default [1.0]) multiplies recorded integers
    into that unit on read — a seconds histogram records microseconds
    with [~scale:1e-6]. Registering an existing name returns the
    existing cell (creation-time options are ignored then). *)

val make : ?help:string -> ?unit_:string -> ?scale:float -> string -> t
(** An unregistered scratch instance — a per-thread accumulator to
    {!merge} into a registered one. *)

val registered : unit -> t list
(** Registration order. *)

val find : string -> t option

(** {1 Recording} *)

val record : t -> int -> unit
(** Observe one integer value (clamped at 0). No-op unless
    {!Telemetry.enabled}. *)

val record_seconds : t -> float -> unit
(** Observe a duration in seconds on a microsecond-base histogram; the
    conversion happens after the enabled check, so the disabled path
    does not box. *)

val merge : into:t -> t -> unit
(** Add [src]'s counts into [into]. [src] is unchanged. Unconditional —
    merging drained scratch data must work even after the sink was
    disabled. *)

val reset : t -> unit

val reset_all : unit -> unit
(** Zero every {e registered} histogram. *)

(** {1 Reading} *)

val count : t -> int

val name : t -> string

val unit_of : t -> string

val quantile : t -> float -> float
(** Estimated [q]-quantile in reported units: the upper bound of the
    first bucket whose cumulative count reaches [ceil (q * count)].
    Overshoots the true order statistic by strictly less than 2x (the
    +inf bucket reports the exact maximum). [0.] when empty. *)

val p50 : t -> float

val p90 : t -> float

val p99 : t -> float

val max_value : t -> float
(** Exact maximum observed, in reported units ([0.] when empty). *)

val sum : t -> float

val mean : t -> float

type summary = {
  s_name : string;
  s_unit : string;
  s_count : int;
  s_sum : float;
  s_max : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
  s_buckets : (float * int) list;
      (** (upper bound in reported units, cumulative count); the last
          bound is [infinity] *)
}
(** What lands in a report's [service_latency] section
    (see {!Report}). *)

val summary : t -> summary

val summaries : unit -> summary list
(** Summaries of every registered histogram with at least one
    observation, in registration order. *)

val stats : unit -> (string * float) list
(** Key quantiles of every non-empty registered histogram as flat
    report stats: [<name>_p50_<unit>], [<name>_p99_<unit>],
    [<name>_count] — the [_s]/[_bytes] suffixes are what
    [xaos report diff]'s worse-when-larger heuristic keys on. *)
