type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\000' .. '\031' ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest representation that parses back to the same float: JSON has
   no NaN/Infinity, so those degrade to null (and a report should never
   contain them anyway). *)
let float_repr x =
  if Float.is_nan x || Float.is_integer (x /. 0.) then "null"
  else
    let s = Printf.sprintf "%.15g" x in
    let s = if float_of_string s = x then s else Printf.sprintf "%.17g" x in
    (* "1e3" and "1" are valid JSON ints; keep the float-ness explicit so
       parsing round-trips the constructor too *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let to_buffer ?(indent = true) buf json =
  let pad n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float x -> Buffer.add_string buf (float_repr x)
    | String s -> escape_to buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          if indent then pad (depth + 1);
          emit (depth + 1) item)
        items;
      nl ();
      if indent then pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (key, value) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          if indent then pad (depth + 1);
          escape_to buf key;
          Buffer.add_string buf (if indent then ": " else ":");
          emit (depth + 1) value)
        fields;
      nl ();
      if indent then pad depth;
      Buffer.add_char buf '}'
  in
  emit 0 json

let to_string ?indent json =
  let buf = Buffer.create 1024 in
  to_buffer ?indent buf json;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then input.[!pos] else '\000' in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    if peek () <> c then error (Printf.sprintf "expected '%c'" c);
    advance ()
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub input !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else error ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then error "unterminated string";
      match input.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then error "unterminated escape";
         match input.[!pos] with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'f' -> Buffer.add_char buf '\012'; advance ()
         | 'u' ->
           advance ();
           if !pos + 4 > n then error "truncated \\u escape";
           let code =
             try int_of_string ("0x" ^ String.sub input !pos 4)
             with _ -> error "invalid \\u escape"
           in
           pos := !pos + 4;
           (* reports only ever escape control characters; encode the
              general case as UTF-8 anyway *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
         | c -> error (Printf.sprintf "invalid escape '\\%c'" c));
        loop ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = '-' then advance ();
    while match peek () with '0' .. '9' -> true | _ -> false do
      advance ()
    done;
    let is_float = ref false in
    if peek () = '.' then begin
      is_float := true;
      advance ();
      while match peek () with '0' .. '9' -> true | _ -> false do
        advance ()
      done
    end;
    (match peek () with
    | 'e' | 'E' ->
      is_float := true;
      advance ();
      (match peek () with '+' | '-' -> advance () | _ -> ());
      while match peek () with '0' .. '9' -> true | _ -> false do
        advance ()
      done
    | _ -> ());
    let text = String.sub input start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some x -> Float x
      | None -> error ("invalid number " ^ text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        (* out-of-range integer literal: fall back to float *)
        match float_of_string_opt text with
        | Some x -> Float x
        | None -> error ("invalid number " ^ text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | 'n' -> literal "null" Null
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | '"' -> String (parse_string ())
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          (key, value)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | '-' | '0' .. '9' -> parse_number ()
    | '\000' when !pos >= n -> error "unexpected end of input"
    | c -> error (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then error "trailing garbage after JSON value";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON error at offset %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int n -> Some n
  | Float x when Float.is_integer x && Float.abs x < 1e15 ->
    Some (int_of_float x)
  | _ -> None

let to_float = function
  | Int n -> Some (float_of_int n)
  | Float x -> Some x
  | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_list = function List items -> Some items | _ -> None

let to_obj = function Obj fields -> Some fields | _ -> None
