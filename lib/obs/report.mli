(** Versioned, machine-readable run reports.

    One schema serves every producer — [xaos eval --report], the bench
    harness's [BENCH_*.json], CI smoke runs — so a "before/after" diff of
    two runs is always a diff of two documents with the same shape.

    Schema policy: [schema_version] is bumped on any
    backwards-incompatible change (field removal, type change, meaning
    change); adding optional fields is compatible and does not bump it.
    v2 added the [relevance] section and [retained_bytes] on snapshot
    points; v3 added the [service_latency] section (histogram summaries
    of the live service's per-stage and emission latencies); v4 added the
    [attribution] section (per-subscription cost accounts) — all
    optional on read, so {!of_json} and {!validate} accept every version
    from {!min_schema_version} up to the current one; {!make} always
    stamps the current version. *)

val schema_version : int
(** Currently [4]. *)

val min_schema_version : int
(** Oldest version this build still reads ([1]). *)

type table = {
  title : string;
  columns : string list;
  rows : string list list;
}
(** A rendered result table (the bench harness records every table it
    prints). Cells are strings — presentation data; numeric series belong
    in [stats] or [snapshots]. *)

type gc_summary = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;
  top_heap_words : int;
}

val gc_now : unit -> gc_summary
(** Snapshot of {!Gc.quick_stat}. *)

type relevance = {
  rel_bytes_seen : int;  (** document bytes consumed by the parse *)
  rel_retained_bytes : int;
      (** estimated bytes in live matching structures at end of run *)
  rel_retained_peak_bytes : int;  (** largest retained figure observed *)
  rel_elements_total : int;
  rel_elements_stored : int;
  rel_ratio : float;
      (** [retained_peak_bytes / bytes_seen] — the paper's
          relevant-fraction space claim, measured *)
}
(** Relevance-ratio accounting (schema v2): how much of the document the
    engine actually held, against how much streamed past. *)

val relevance_of :
  bytes_seen:int -> retained_bytes:int -> retained_peak_bytes:int ->
  elements_total:int -> elements_stored:int -> relevance
(** Build a section, deriving [rel_ratio] ([0.] when [bytes_seen = 0]). *)

type attrib_entry = {
  ae_key : string;  (** subscription id the costs are charged to *)
  ae_docs : int;  (** run outcomes charged (one per document routed) *)
  ae_events : int;  (** parse events delivered to this subscription *)
  ae_match_s : float;  (** match time spent, seconds *)
  ae_structures : int;  (** matching structures created, summed *)
  ae_live_peak : int;  (** max live structures over any one document *)
  ae_retained_peak_bytes : int;
      (** max retained bytes over any one document *)
  ae_emissions : int;  (** result items emitted *)
  ae_faults : int;  (** budget/deadline/engine faults charged *)
}
(** One subscription's cost account (schema v4). *)

type attribution = {
  at_subscriptions : int;
      (** accounts in the registry — may exceed [List.length at_top] *)
  at_docs : int;
  at_events : int;
  at_match_s : float;
  at_structures : int;
  at_emissions : int;
  at_faults : int;
  at_top : attrib_entry list;  (** descending by [ae_match_s] *)
}
(** Per-subscription cost attribution (schema v4): registry-wide totals
    plus the top accounts by match time. *)

type t = {
  version : int;
  kind : string;  (** producer: ["eval"], ["bench"], … *)
  created_at : float;  (** Unix seconds *)
  config : (string * Json.t) list;  (** what was run, and how *)
  stats : (string * float) list;  (** scalar results, by stable name *)
  spans : Telemetry.span_summary list;
  snapshots : Snapshot.point list;
  tables : table list;
  gc : gc_summary option;
  relevance : relevance option;
  service_latency : Histogram.summary list;
      (** schema v3: histogram summaries of the service's per-stage and
          emission latencies; empty list = section absent *)
  attribution : attribution option;
      (** schema v4: per-subscription cost accounts *)
}

val make :
  ?config:(string * Json.t) list ->
  ?stats:(string * float) list ->
  ?spans:Telemetry.span_summary list ->
  ?snapshots:Snapshot.point list ->
  ?tables:table list ->
  ?gc:gc_summary ->
  ?relevance:relevance ->
  ?service_latency:Histogram.summary list ->
  ?attribution:attribution ->
  kind:string ->
  unit ->
  t
(** A report stamped with {!schema_version} and the current time. *)

val to_json : t -> Json.t

val point_to_json : Snapshot.point -> Json.t
(** One snapshot point as the same object that appears in [snapshots] —
    reused by the CLI to stream points as NDJSON during a run. *)

val of_json : Json.t -> (t, string) result
(** Strict decode: missing required fields, wrong types, or an
    unsupported [version] are errors. Versions older than the current
    one decode with the later optional sections absent/zeroed. *)

val validate : Json.t -> (unit, string) result
(** {!of_json} plus semantic checks: snapshot series monotone in bytes,
    span counts positive, relevance quantities consistent,
    service-latency histograms well-formed (monotone cumulative buckets
    summing to the count, monotone quantiles), and attribution accounts
    non-negative with top entries sorted by match time. What the CI
    smoke-bench job runs. *)

val to_string : t -> string

val write : string -> t -> unit
(** Write to a file, trailing newline included.
    @raise Sys_error on I/O failure. *)

val read : string -> (t, string) result
(** Read and decode; I/O errors are returned as [Error]. *)
