(** Per-subscription cost accounts.

    Every stage of the service pipeline that does work on behalf of a
    subscription charges that work — events routed, match time,
    structures created, peak live/retained footprint, emissions, faults —
    to the subscription's account. The registry is process-global and
    keyed by subscription id, so accounts persist across quarantine and
    unsubscribe/resubscribe: attribution follows the tenant, not the
    connection.

    Discipline mirrors {!Telemetry}: attribution is off by default, and
    while off {!charge} is a single flag test. The broker only performs
    the per-outcome account lookups when {!enabled} is true, so the
    disabled service pipeline pays nothing.

    Charging is done from the broker's single evaluator thread without a
    lock (mutable word-sized fields cannot tear); the registry mutex
    guards only find-or-create and listing. Readers may observe a
    snapshot one document stale — fine for profiles. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop every account. Tests and fresh bench runs. *)

type account
(** A mutable cost account. Obtain via {!account}; hold onto the handle
    to charge without repeated registry lookups. *)

val account : string -> account
(** Find or create the account for a subscription id. Registry-locked;
    call once per subscription (or per outcome — it is cheap, not
    free). *)

val key : account -> string

val charge :
  account ->
  events:int ->
  match_s:float ->
  structures:int ->
  live_peak:int ->
  retained_peak_bytes:int ->
  emissions:int ->
  fault:bool ->
  unit
(** Charge one per-document run outcome to the account: increments docs
    by one, adds [events]/[match_s]/[structures]/[emissions], maxes the
    peaks, and counts a fault if [fault]. No-op while disabled. *)

(** {1 Read side} *)

type snapshot = {
  sn_key : string;
  sn_docs : int;
  sn_events : int;
  sn_match_s : float;
  sn_structures : int;
  sn_live_peak : int;
  sn_retained_peak_bytes : int;
  sn_emissions : int;
  sn_faults : int;
}
(** An immutable copy of one account's counters. *)

val accounts : unit -> snapshot list
(** Every account, in registration order. *)

type order_by =
  | By_match_s
  | By_events
  | By_emissions
  | By_structures
  | By_faults

val order_name : order_by -> string
(** Stable wire spelling: ["match_s"], ["events"], … *)

val order_of_string : string -> order_by option
(** Inverse of {!order_name}, with a few aliases (["match"], ["time"],
    ["items"]). *)

val top : ?by:order_by -> int -> snapshot list
(** The [n] most expensive accounts, descending by the chosen measure
    (default {!By_match_s}); stable for ties. *)

type totals = {
  t_subscriptions : int;
  t_docs : int;
  t_events : int;
  t_match_s : float;
  t_structures : int;
  t_emissions : int;
  t_faults : int;
}

val totals : unit -> totals
(** Registry-wide sums — what the conservation test compares against the
    broker's independently accumulated pipeline totals. *)

val snapshot_to_json : snapshot -> Json.t
val totals_to_json : totals -> Json.t

val report_section : ?top_n:int -> unit -> Report.attribution
(** The schema-v4 [attribution] report section: totals plus the top
    [top_n] (default 20) accounts by match time. *)
