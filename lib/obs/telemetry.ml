(* The update path is deliberately branch-and-store only: [on] is the
   single sink flag every operation checks before touching its cell. *)

let on = ref false

let clock = ref Unix.gettimeofday

let now () = !clock ()

let set_clock f = clock := f

let enable () = on := true

let disable () = on := false

let enabled () = !on

(* ------------------------------------------------------------------ *)
(* Metric cells                                                        *)
(* ------------------------------------------------------------------ *)

type counter = { c_name : string; c_help : string; mutable c_value : int }

(* Float-backed so ratio gauges (e.g. queryset compaction) expose real
   values; the int API truncates on read. *)
type gauge = {
  g_name : string;
  g_help : string;
  mutable g_value : float;
  mutable g_max : float;
}

let bucket_count = 22 (* upper bounds 2^0 .. 2^20, then +inf *)

type histogram = {
  h_name : string;
  h_help : string;
  mutable hc_count : int;
  mutable hc_sum : float;
  mutable hc_min : float;
  mutable hc_max : float;
  hc_buckets : int array;  (* non-cumulative; cumulated on drain *)
}

type span = {
  sp_name : string;
  sp_help : string;
  mutable sp_count : int;
  mutable sp_total : float;
  mutable sp_min : float;
  mutable sp_max : float;
  mutable sp_t0 : float;  (* negative = no open occurrence *)
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Span of span

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

(* registration order, for stable exposition and reports *)
let order : metric list ref = ref []

let register name m =
  Hashtbl.add registry name m;
  order := m :: !order;
  m

let find_or_register name make expect =
  match Hashtbl.find_opt registry name with
  | Some m -> (
    match expect m with
    | Some cell -> cell
    | None -> invalid_arg ("Telemetry: metric kind mismatch for " ^ name))
  | None -> (
    match expect (register name (make ())) with
    | Some cell -> cell
    | None -> assert false)

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

let counter ?(help = "") name =
  find_or_register name
    (fun () -> Counter { c_name = name; c_help = help; c_value = 0 })
    (function Counter c -> Some c | _ -> None)

let incr c = if !on then c.c_value <- c.c_value + 1

let add c n = if !on then c.c_value <- c.c_value + n

let counter_value c = c.c_value

(* ------------------------------------------------------------------ *)
(* Gauges                                                              *)
(* ------------------------------------------------------------------ *)

let gauge ?(help = "") name =
  find_or_register name
    (fun () -> Gauge { g_name = name; g_help = help; g_value = 0.; g_max = 0. })
    (function Gauge g -> Some g | _ -> None)

let set_gauge_float g v =
  if !on then begin
    g.g_value <- v;
    if v > g.g_max then g.g_max <- v
  end

let set_gauge g v = set_gauge_float g (float_of_int v)

let gauge_value g = int_of_float g.g_value

let gauge_max g = int_of_float g.g_max

let gauge_value_float g = g.g_value

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

let histogram ?(help = "") name =
  find_or_register name
    (fun () ->
      Histogram
        {
          h_name = name;
          h_help = help;
          hc_count = 0;
          hc_sum = 0.;
          hc_min = infinity;
          hc_max = neg_infinity;
          hc_buckets = Array.make bucket_count 0;
        })
    (function Histogram h -> Some h | _ -> None)

let bucket_bound i =
  if i >= bucket_count - 1 then infinity else Float.of_int (1 lsl i)

let bucket_index x =
  let rec loop i = if i >= bucket_count - 1 || x <= bucket_bound i then i else loop (i + 1) in
  loop 0

let observe h x =
  if !on then begin
    h.hc_count <- h.hc_count + 1;
    h.hc_sum <- h.hc_sum +. x;
    if x < h.hc_min then h.hc_min <- x;
    if x > h.hc_max then h.hc_max <- x;
    let i = bucket_index x in
    h.hc_buckets.(i) <- h.hc_buckets.(i) + 1
  end

let observe_int h n = observe h (float_of_int n)

type histogram_summary = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (float * int) list;
}

let histogram_summary h =
  let cumulative = ref 0 in
  let buckets =
    List.init bucket_count (fun i ->
        cumulative := !cumulative + h.hc_buckets.(i);
        (bucket_bound i, !cumulative))
  in
  {
    h_count = h.hc_count;
    h_sum = h.hc_sum;
    h_min = (if h.hc_count = 0 then 0. else h.hc_min);
    h_max = (if h.hc_count = 0 then 0. else h.hc_max);
    h_buckets = buckets;
  }

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let span ?(help = "") name =
  find_or_register name
    (fun () ->
      Span
        {
          sp_name = name;
          sp_help = help;
          sp_count = 0;
          sp_total = 0.;
          sp_min = infinity;
          sp_max = neg_infinity;
          sp_t0 = -1.;
        })
    (function Span s -> Some s | _ -> None)

let enter s = if !on then s.sp_t0 <- !clock ()

let leave s =
  if !on && s.sp_t0 >= 0. then begin
    let d = !clock () -. s.sp_t0 in
    let d = if d < 0. then 0. else d in
    s.sp_t0 <- -1.;
    s.sp_count <- s.sp_count + 1;
    s.sp_total <- s.sp_total +. d;
    if d < s.sp_min then s.sp_min <- d;
    if d > s.sp_max then s.sp_max <- d
  end

let time s f =
  enter s;
  match f () with
  | result ->
    leave s;
    result
  | exception e ->
    leave s;
    raise e

type span_summary = {
  span_name : string;
  count : int;
  total_s : float;
  min_s : float;
  max_s : float;
}

let span_summary s =
  {
    span_name = s.sp_name;
    count = s.sp_count;
    total_s = s.sp_total;
    min_s = (if s.sp_count = 0 then 0. else s.sp_min);
    max_s = (if s.sp_count = 0 then 0. else s.sp_max);
  }

(* ------------------------------------------------------------------ *)
(* Registry-wide operations                                            *)
(* ------------------------------------------------------------------ *)

let reset () =
  List.iter
    (function
      | Counter c -> c.c_value <- 0
      | Gauge g ->
        g.g_value <- 0.;
        g.g_max <- 0.
      | Histogram h ->
        h.hc_count <- 0;
        h.hc_sum <- 0.;
        h.hc_min <- infinity;
        h.hc_max <- neg_infinity;
        Array.fill h.hc_buckets 0 bucket_count 0
      | Span s ->
        s.sp_count <- 0;
        s.sp_total <- 0.;
        s.sp_min <- infinity;
        s.sp_max <- neg_infinity;
        s.sp_t0 <- -1.)
    !order

let in_order () = List.rev !order

let counters () =
  List.filter_map
    (function
      | Counter c when c.c_value <> 0 -> Some (c.c_name, c.c_value)
      | _ -> None)
    (in_order ())

let gauges () =
  List.filter_map
    (function
      | Gauge g when g.g_value <> 0. || g.g_max <> 0. ->
        Some (g.g_name, int_of_float g.g_value)
      | _ -> None)
    (in_order ())

let span_summaries () =
  List.filter_map
    (function
      | Span s when s.sp_count > 0 -> Some (span_summary s)
      | _ -> None)
    (in_order ())

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

let preamble buf name help kind =
  if help <> "" then begin
    Buffer.add_string buf "# HELP ";
    Buffer.add_string buf name;
    Buffer.add_char buf ' ';
    Buffer.add_string buf help;
    Buffer.add_char buf '\n'
  end;
  Buffer.add_string buf "# TYPE ";
  Buffer.add_string buf name;
  Buffer.add_char buf ' ';
  Buffer.add_string buf kind;
  Buffer.add_char buf '\n'

let sample buf name value =
  Buffer.add_string buf name;
  Buffer.add_char buf ' ';
  Buffer.add_string buf value;
  Buffer.add_char buf '\n'

let fnum x =
  if Float.is_integer x && Float.abs x < 1e15 then
    string_of_int (int_of_float x)
  else Printf.sprintf "%.9g" x

(* Cell names are free-form stat-convention strings (the GC gauges are
   [gc/minor_collections] and so on); the text format only allows
   [[a-zA-Z0-9_:]], so names are mapped at this emit boundary. Mirrors
   {!Expose.sanitize_name} — which lives downstream of this module and
   cannot be called from here. *)
let prom_name name =
  if name = "" then "_"
  else begin
    let mapped =
      String.map
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
          | _ -> '_')
        name
    in
    match mapped.[0] with '0' .. '9' -> "_" ^ mapped | _ -> mapped
  end

let expose buf =
  List.iter
    (function
      | Counter c ->
        let n = prom_name c.c_name in
        preamble buf n c.c_help "counter";
        sample buf n (string_of_int c.c_value)
      | Gauge g ->
        let n = prom_name g.g_name in
        preamble buf n g.g_help "gauge";
        sample buf n (fnum g.g_value);
        sample buf (n ^ "_max") (fnum g.g_max)
      | Histogram h ->
        let n = prom_name h.h_name in
        preamble buf n h.h_help "histogram";
        let s = histogram_summary h in
        List.iter
          (fun (bound, cumulative) ->
            let le =
              if bound = infinity then "+Inf" else fnum bound
            in
            sample buf
              (Printf.sprintf "%s_bucket{le=\"%s\"}" n le)
              (string_of_int cumulative))
          s.h_buckets;
        sample buf (n ^ "_sum") (fnum s.h_sum);
        sample buf (n ^ "_count") (string_of_int s.h_count)
      | Span s ->
        let n = prom_name s.sp_name in
        preamble buf n s.sp_help "summary";
        sample buf (n ^ "_count") (string_of_int s.sp_count);
        sample buf (n ^ "_sum") (fnum s.sp_total))
    (in_order ())

(* ------------------------------------------------------------------ *)
(* GC probes                                                           *)
(* ------------------------------------------------------------------ *)

(* GC gauges, sampled by the broker once per document: the direct
   measure for the arena-pooling roadmap item. Registered eagerly so
   they appear in the exposition (at zero) even before the first
   sample. *)
let gc_minor_collections =
  gauge ~help:"OCaml GC minor collections (Gc.quick_stat)"
    "xaos_gc_minor_collections"

let gc_major_collections =
  gauge ~help:"OCaml GC major collections (Gc.quick_stat)"
    "xaos_gc_major_collections"

let gc_promoted_words =
  gauge ~help:"Words promoted from the minor heap (Gc.quick_stat)"
    "xaos_gc_promoted_words"

let gc_heap_words =
  gauge ~help:"Major heap size in words (Gc.quick_stat)" "xaos_gc_heap_words"

let sample_gc () =
  if !on then begin
    let s = Gc.quick_stat () in
    set_gauge gc_minor_collections s.Gc.minor_collections;
    set_gauge gc_major_collections s.Gc.major_collections;
    set_gauge gc_promoted_words (int_of_float s.Gc.promoted_words);
    set_gauge gc_heap_words s.Gc.heap_words
  end

let with_peak_heap f =
  Gc.compact ();
  let peak = ref (Gc.quick_stat ()).Gc.heap_words in
  let alarm =
    Gc.create_alarm (fun () ->
        let w = (Gc.quick_stat ()).Gc.heap_words in
        if w > !peak then peak := w)
  in
  let finish () = Gc.delete_alarm alarm in
  let result =
    try f ()
    with e ->
      finish ();
      raise e
  in
  finish ();
  let w = (Gc.quick_stat ()).Gc.heap_words in
  if w > !peak then peak := w;
  (result, !peak)
