(* Per-subscription cost accounts.

   The registry is process-global and keyed by subscription id, so an
   account survives quarantine, unsubscribe/resubscribe, and broker
   restarts within the process — cost attribution is about the tenant,
   not the connection. Accounts follow Telemetry's discipline: when
   disabled, [charge] is a single flag test and the hot path allocates
   nothing.

   Thread-safety: the registry mutex guards find-or-create and listing.
   Charging mutates account fields directly without the lock — all
   charges come from the broker's single evaluator thread, and readers
   (the `profile` wire op, report writers) tolerate a snapshot that is
   one document stale. OCaml mutable int and float record fields are
   word-sized in-place stores, so a torn read cannot produce a garbage
   value, only a slightly old one. *)

type account = {
  key : string;
  mutable a_docs : int;
  mutable a_events : int;
  mutable a_match_s : float;
  mutable a_structures : int;
  mutable a_live_peak : int;
  mutable a_retained_peak_bytes : int;
  mutable a_emissions : int;
  mutable a_faults : int;
}

let on = ref false
let enable () = on := true
let disable () = on := false
let enabled () = !on

let mu = Mutex.create ()
let registry : (string, account) Hashtbl.t = Hashtbl.create 64

(* Insertion order, so listings are stable when costs tie. *)
let order : string list ref = ref []

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let reset () =
  locked (fun () ->
      Hashtbl.reset registry;
      order := [])

let account key =
  locked (fun () ->
      match Hashtbl.find_opt registry key with
      | Some a -> a
      | None ->
        let a =
          {
            key;
            a_docs = 0;
            a_events = 0;
            a_match_s = 0.;
            a_structures = 0;
            a_live_peak = 0;
            a_retained_peak_bytes = 0;
            a_emissions = 0;
            a_faults = 0;
          }
        in
        Hashtbl.replace registry key a;
        order := key :: !order;
        a)

let key a = a.key

let charge a ~events ~match_s ~structures ~live_peak ~retained_peak_bytes
    ~emissions ~fault =
  if !on then begin
    a.a_docs <- a.a_docs + 1;
    a.a_events <- a.a_events + events;
    a.a_match_s <- a.a_match_s +. match_s;
    a.a_structures <- a.a_structures + structures;
    if live_peak > a.a_live_peak then a.a_live_peak <- live_peak;
    if retained_peak_bytes > a.a_retained_peak_bytes then
      a.a_retained_peak_bytes <- retained_peak_bytes;
    a.a_emissions <- a.a_emissions + emissions;
    if fault then a.a_faults <- a.a_faults + 1
  end

(* ------------------------------------------------------------------ *)
(* Read side                                                           *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  sn_key : string;
  sn_docs : int;
  sn_events : int;
  sn_match_s : float;
  sn_structures : int;
  sn_live_peak : int;
  sn_retained_peak_bytes : int;
  sn_emissions : int;
  sn_faults : int;
}

let snapshot_of a =
  {
    sn_key = a.key;
    sn_docs = a.a_docs;
    sn_events = a.a_events;
    sn_match_s = a.a_match_s;
    sn_structures = a.a_structures;
    sn_live_peak = a.a_live_peak;
    sn_retained_peak_bytes = a.a_retained_peak_bytes;
    sn_emissions = a.a_emissions;
    sn_faults = a.a_faults;
  }

let accounts () =
  locked (fun () ->
      List.rev_map
        (fun key -> snapshot_of (Hashtbl.find registry key))
        !order)

type order_by =
  | By_match_s
  | By_events
  | By_emissions
  | By_structures
  | By_faults

let order_name = function
  | By_match_s -> "match_s"
  | By_events -> "events"
  | By_emissions -> "emissions"
  | By_structures -> "structures"
  | By_faults -> "faults"

let order_of_string = function
  | "match_s" | "match" | "time" -> Some By_match_s
  | "events" -> Some By_events
  | "emissions" | "items" -> Some By_emissions
  | "structures" -> Some By_structures
  | "faults" -> Some By_faults
  | _ -> None

let measure by s =
  match by with
  | By_match_s -> s.sn_match_s
  | By_events -> float_of_int s.sn_events
  | By_emissions -> float_of_int s.sn_emissions
  | By_structures -> float_of_int s.sn_structures
  | By_faults -> float_of_int s.sn_faults

let top ?(by = By_match_s) n =
  let all = accounts () in
  let sorted =
    List.stable_sort (fun a b -> compare (measure by b) (measure by a)) all
  in
  List.filteri (fun i _ -> i < n) sorted

type totals = {
  t_subscriptions : int;
  t_docs : int;
  t_events : int;
  t_match_s : float;
  t_structures : int;
  t_emissions : int;
  t_faults : int;
}

let totals () =
  List.fold_left
    (fun t s ->
      {
        t_subscriptions = t.t_subscriptions + 1;
        t_docs = t.t_docs + s.sn_docs;
        t_events = t.t_events + s.sn_events;
        t_match_s = t.t_match_s +. s.sn_match_s;
        t_structures = t.t_structures + s.sn_structures;
        t_emissions = t.t_emissions + s.sn_emissions;
        t_faults = t.t_faults + s.sn_faults;
      })
    {
      t_subscriptions = 0;
      t_docs = 0;
      t_events = 0;
      t_match_s = 0.;
      t_structures = 0;
      t_emissions = 0;
      t_faults = 0;
    }
    (accounts ())

let snapshot_to_json s =
  Json.Obj
    [
      ("key", Json.String s.sn_key);
      ("docs", Json.Int s.sn_docs);
      ("events", Json.Int s.sn_events);
      ("match_s", Json.Float s.sn_match_s);
      ("structures", Json.Int s.sn_structures);
      ("live_peak", Json.Int s.sn_live_peak);
      ("retained_peak_bytes", Json.Int s.sn_retained_peak_bytes);
      ("emissions", Json.Int s.sn_emissions);
      ("faults", Json.Int s.sn_faults);
    ]

let totals_to_json t =
  Json.Obj
    [
      ("subscriptions", Json.Int t.t_subscriptions);
      ("docs", Json.Int t.t_docs);
      ("events", Json.Int t.t_events);
      ("match_s", Json.Float t.t_match_s);
      ("structures", Json.Int t.t_structures);
      ("emissions", Json.Int t.t_emissions);
      ("faults", Json.Int t.t_faults);
    ]

let entry_of_snapshot s =
  {
    Report.ae_key = s.sn_key;
    ae_docs = s.sn_docs;
    ae_events = s.sn_events;
    ae_match_s = s.sn_match_s;
    ae_structures = s.sn_structures;
    ae_live_peak = s.sn_live_peak;
    ae_retained_peak_bytes = s.sn_retained_peak_bytes;
    ae_emissions = s.sn_emissions;
    ae_faults = s.sn_faults;
  }

let report_section ?(top_n = 20) () =
  let t = totals () in
  {
    Report.at_subscriptions = t.t_subscriptions;
    at_docs = t.t_docs;
    at_events = t.t_events;
    at_match_s = t.t_match_s;
    at_structures = t.t_structures;
    at_emissions = t.t_emissions;
    at_faults = t.t_faults;
    at_top = List.map entry_of_snapshot (top ~by:By_match_s top_n);
  }
