(** Minimal JSON tree, printer and parser.

    Just enough JSON for the telemetry run reports ({!Report}): no
    streaming, no schema system, no external dependency (the container
    ships no JSON library). Floats are printed with enough digits to
    round-trip exactly through {!parse}, so a report can be re-read and
    compared structurally. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** insertion order is preserved *)

val to_string : ?indent:bool -> t -> string
(** [indent] pretty-prints with two-space indentation (default [true]). *)

val to_buffer : ?indent:bool -> Buffer.t -> t -> unit

val parse : string -> (t, string) result
(** Parse one JSON document; trailing garbage is an error. Numbers
    without [.], [e] or [E] parse as [Int], the rest as [Float]. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on missing field or non-object. *)

val to_int : t -> int option
(** [Int n], or a [Float] with integral value. *)

val to_float : t -> float option
(** Any number. *)

val to_str : t -> string option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option
