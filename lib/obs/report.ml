let schema_version = 4

let min_schema_version = 1

type table = {
  title : string;
  columns : string list;
  rows : string list list;
}

type gc_summary = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;
  top_heap_words : int;
}

let gc_now () =
  let s = Gc.quick_stat () in
  {
    minor_words = s.Gc.minor_words;
    promoted_words = s.Gc.promoted_words;
    major_words = s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    compactions = s.Gc.compactions;
    heap_words = s.Gc.heap_words;
    top_heap_words = s.Gc.top_heap_words;
  }

type relevance = {
  rel_bytes_seen : int;
  rel_retained_bytes : int;
  rel_retained_peak_bytes : int;
  rel_elements_total : int;
  rel_elements_stored : int;
  rel_ratio : float;
}

let relevance_of ~bytes_seen ~retained_bytes ~retained_peak_bytes
    ~elements_total ~elements_stored =
  {
    rel_bytes_seen = bytes_seen;
    rel_retained_bytes = retained_bytes;
    rel_retained_peak_bytes = retained_peak_bytes;
    rel_elements_total = elements_total;
    rel_elements_stored = elements_stored;
    rel_ratio =
      (if bytes_seen > 0 then
         float_of_int retained_peak_bytes /. float_of_int bytes_seen
       else 0.);
  }

(* One subscription's cost account in the v4 attribution section. *)
type attrib_entry = {
  ae_key : string;
  ae_docs : int;
  ae_events : int;
  ae_match_s : float;
  ae_structures : int;
  ae_live_peak : int;
  ae_retained_peak_bytes : int;
  ae_emissions : int;
  ae_faults : int;
}

type attribution = {
  at_subscriptions : int;  (* accounts in the registry, not just top-N *)
  at_docs : int;
  at_events : int;
  at_match_s : float;
  at_structures : int;
  at_emissions : int;
  at_faults : int;
  at_top : attrib_entry list;  (* descending by match_s *)
}

type t = {
  version : int;
  kind : string;
  created_at : float;
  config : (string * Json.t) list;
  stats : (string * float) list;
  spans : Telemetry.span_summary list;
  snapshots : Snapshot.point list;
  tables : table list;
  gc : gc_summary option;
  relevance : relevance option;
  service_latency : Histogram.summary list;
      (* schema v3; empty = section absent *)
  attribution : attribution option;  (* schema v4 *)
}

let make ?(config = []) ?(stats = []) ?(spans = []) ?(snapshots = [])
    ?(tables = []) ?gc ?relevance ?(service_latency = []) ?attribution ~kind
    () =
  {
    version = schema_version;
    kind;
    created_at = Telemetry.now ();
    config;
    stats;
    spans;
    snapshots;
    tables;
    gc;
    relevance;
    service_latency;
    attribution;
  }

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let span_to_json (s : Telemetry.span_summary) =
  Json.Obj
    [
      ("name", Json.String s.Telemetry.span_name);
      ("count", Json.Int s.Telemetry.count);
      ("total_s", Json.Float s.Telemetry.total_s);
      ("min_s", Json.Float s.Telemetry.min_s);
      ("max_s", Json.Float s.Telemetry.max_s);
    ]

let point_to_json (p : Snapshot.point) =
  Json.Obj
    [
      ("bytes", Json.Int p.Snapshot.sn_bytes);
      ("events", Json.Int p.Snapshot.sn_events);
      ("depth", Json.Int p.Snapshot.sn_depth);
      ("live_structures", Json.Int p.Snapshot.sn_live);
      ("looking_for", Json.Int p.Snapshot.sn_looking_for);
      ("retained_bytes", Json.Int p.Snapshot.sn_retained_bytes);
      ("elapsed_s", Json.Float p.Snapshot.sn_elapsed_s);
      ("bytes_per_sec", Json.Float p.Snapshot.sn_bytes_per_sec);
      ("heap_words", Json.Int p.Snapshot.sn_heap_words);
    ]

let relevance_to_json r =
  Json.Obj
    [
      ("bytes_seen", Json.Int r.rel_bytes_seen);
      ("retained_bytes", Json.Int r.rel_retained_bytes);
      ("retained_peak_bytes", Json.Int r.rel_retained_peak_bytes);
      ("elements_total", Json.Int r.rel_elements_total);
      ("elements_stored", Json.Int r.rel_elements_stored);
      ("ratio", Json.Float r.rel_ratio);
    ]

let table_to_json t =
  Json.Obj
    [
      ("title", Json.String t.title);
      ("columns", Json.List (List.map (fun c -> Json.String c) t.columns));
      ( "rows",
        Json.List
          (List.map
             (fun row -> Json.List (List.map (fun c -> Json.String c) row))
             t.rows) );
    ]

(* Bucket upper bounds can be [infinity] (the last one always is), which
   JSON cannot carry as a number — the Prometheus spelling "+Inf" is
   used instead. *)
let bound_to_json b =
  if b = infinity then Json.String "+Inf" else Json.Float b

let latency_to_json (s : Histogram.summary) =
  Json.Obj
    [
      ("name", Json.String s.Histogram.s_name);
      ("unit", Json.String s.Histogram.s_unit);
      ("count", Json.Int s.Histogram.s_count);
      ("sum", Json.Float s.Histogram.s_sum);
      ("max", Json.Float s.Histogram.s_max);
      ("p50", Json.Float s.Histogram.s_p50);
      ("p90", Json.Float s.Histogram.s_p90);
      ("p99", Json.Float s.Histogram.s_p99);
      ( "buckets",
        Json.List
          (List.map
             (fun (bound, cumulative) ->
               Json.Obj
                 [ ("le", bound_to_json bound);
                   ("count", Json.Int cumulative) ])
             s.Histogram.s_buckets) );
    ]

let gc_to_json g =
  Json.Obj
    [
      ("minor_words", Json.Float g.minor_words);
      ("promoted_words", Json.Float g.promoted_words);
      ("major_words", Json.Float g.major_words);
      ("minor_collections", Json.Int g.minor_collections);
      ("major_collections", Json.Int g.major_collections);
      ("compactions", Json.Int g.compactions);
      ("heap_words", Json.Int g.heap_words);
      ("top_heap_words", Json.Int g.top_heap_words);
    ]

let attrib_entry_to_json e =
  Json.Obj
    [
      ("key", Json.String e.ae_key);
      ("docs", Json.Int e.ae_docs);
      ("events", Json.Int e.ae_events);
      ("match_s", Json.Float e.ae_match_s);
      ("structures", Json.Int e.ae_structures);
      ("live_peak", Json.Int e.ae_live_peak);
      ("retained_peak_bytes", Json.Int e.ae_retained_peak_bytes);
      ("emissions", Json.Int e.ae_emissions);
      ("faults", Json.Int e.ae_faults);
    ]

let attribution_to_json a =
  Json.Obj
    [
      ("subscriptions", Json.Int a.at_subscriptions);
      ("docs", Json.Int a.at_docs);
      ("events", Json.Int a.at_events);
      ("match_s", Json.Float a.at_match_s);
      ("structures", Json.Int a.at_structures);
      ("emissions", Json.Int a.at_emissions);
      ("faults", Json.Int a.at_faults);
      ("top", Json.List (List.map attrib_entry_to_json a.at_top));
    ]

let to_json r =
  Json.Obj
    ([
       ("schema_version", Json.Int r.version);
       ("kind", Json.String r.kind);
       ("created_at", Json.Float r.created_at);
       ("config", Json.Obj r.config);
       ( "stats",
         Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) r.stats) );
       ("spans", Json.List (List.map span_to_json r.spans));
       ("snapshots", Json.List (List.map point_to_json r.snapshots));
       ("tables", Json.List (List.map table_to_json r.tables));
     ]
    @ (match r.gc with None -> [] | Some g -> [ ("gc", gc_to_json g) ])
    @ (match r.relevance with
      | None -> []
      | Some rel -> [ ("relevance", relevance_to_json rel) ])
    @ (match r.service_latency with
      | [] -> []
      | latencies ->
        [ ("service_latency", Json.List (List.map latency_to_json latencies))
        ])
    @
    match r.attribution with
    | None -> []
    | Some a -> [ ("attribution", attribution_to_json a) ])

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

(* Tiny result-returning field combinators; [path] makes errors name the
   offending field. *)
let ( let* ) r f = Result.bind r f

let field path key json =
  match Json.member key json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing field %S" path key)

let req path key conv json =
  let* v = field path key json in
  match conv v with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "%s: field %S has the wrong type" path key)

let decode_list path conv items =
  let rec loop i acc = function
    | [] -> Ok (List.rev acc)
    | item :: rest -> (
      match conv (Printf.sprintf "%s[%d]" path i) item with
      | Ok x -> loop (i + 1) (x :: acc) rest
      | Error _ as e -> e)
  in
  loop 0 [] items

(* Optional field with a default: absent is fine (v1 documents lack the
   v2 additions), present-but-mistyped is still an error. *)
let opt path key conv ~default json =
  match Json.member key json with
  | None -> Ok default
  | Some v -> (
    match conv v with
    | Some x -> Ok x
    | None ->
      Error (Printf.sprintf "%s: field %S has the wrong type" path key))

let span_of_json path json =
  let* span_name = req path "name" Json.to_str json in
  let* count = req path "count" Json.to_int json in
  let* total_s = req path "total_s" Json.to_float json in
  let* min_s = req path "min_s" Json.to_float json in
  let* max_s = req path "max_s" Json.to_float json in
  Ok { Telemetry.span_name; count; total_s; min_s; max_s }

let point_of_json path json =
  let* sn_bytes = req path "bytes" Json.to_int json in
  let* sn_events = req path "events" Json.to_int json in
  let* sn_depth = req path "depth" Json.to_int json in
  let* sn_live = req path "live_structures" Json.to_int json in
  let* sn_looking_for = req path "looking_for" Json.to_int json in
  (* added in schema v2; v1 snapshots decode with 0 *)
  let* sn_retained_bytes =
    opt path "retained_bytes" Json.to_int ~default:0 json
  in
  let* sn_elapsed_s = req path "elapsed_s" Json.to_float json in
  let* sn_bytes_per_sec = req path "bytes_per_sec" Json.to_float json in
  let* sn_heap_words = req path "heap_words" Json.to_int json in
  Ok
    {
      Snapshot.sn_bytes;
      sn_events;
      sn_depth;
      sn_live;
      sn_looking_for;
      sn_retained_bytes;
      sn_elapsed_s;
      sn_bytes_per_sec;
      sn_heap_words;
    }

let relevance_of_json path json =
  let* rel_bytes_seen = req path "bytes_seen" Json.to_int json in
  let* rel_retained_bytes = req path "retained_bytes" Json.to_int json in
  let* rel_retained_peak_bytes =
    req path "retained_peak_bytes" Json.to_int json
  in
  let* rel_elements_total = req path "elements_total" Json.to_int json in
  let* rel_elements_stored = req path "elements_stored" Json.to_int json in
  let* rel_ratio = req path "ratio" Json.to_float json in
  Ok
    {
      rel_bytes_seen;
      rel_retained_bytes;
      rel_retained_peak_bytes;
      rel_elements_total;
      rel_elements_stored;
      rel_ratio;
    }

let bound_of_json path json =
  match json with
  | Json.String "+Inf" -> Ok infinity
  | _ -> (
    match Json.to_float json with
    | Some x -> Ok x
    | None -> Error (path ^ ": bucket bound is neither a number nor \"+Inf\""))

let latency_of_json path json =
  let* s_name = req path "name" Json.to_str json in
  let* s_unit = req path "unit" Json.to_str json in
  let* s_count = req path "count" Json.to_int json in
  let* s_sum = req path "sum" Json.to_float json in
  let* s_max = req path "max" Json.to_float json in
  let* s_p50 = req path "p50" Json.to_float json in
  let* s_p90 = req path "p90" Json.to_float json in
  let* s_p99 = req path "p99" Json.to_float json in
  let* bucket_values = req path "buckets" Json.to_list json in
  let* s_buckets =
    decode_list (path ^ ".buckets")
      (fun p v ->
        let* le = field p "le" v in
        let* bound = bound_of_json p le in
        let* cumulative = req p "count" Json.to_int v in
        Ok (bound, cumulative))
      bucket_values
  in
  Ok
    {
      Histogram.s_name;
      s_unit;
      s_count;
      s_sum;
      s_max;
      s_p50;
      s_p90;
      s_p99;
      s_buckets;
    }

let table_of_json path json =
  let* title = req path "title" Json.to_str json in
  let* column_values = req path "columns" Json.to_list json in
  let* columns =
    decode_list (path ^ ".columns")
      (fun p v ->
        match Json.to_str v with
        | Some s -> Ok s
        | None -> Error (p ^ ": expected string"))
      column_values
  in
  let* row_values = req path "rows" Json.to_list json in
  let* rows =
    decode_list (path ^ ".rows")
      (fun p v ->
        match Json.to_list v with
        | None -> Error (p ^ ": expected array")
        | Some cells ->
          decode_list p
            (fun pc c ->
              match Json.to_str c with
              | Some s -> Ok s
              | None -> Error (pc ^ ": expected string"))
            cells)
      row_values
  in
  Ok { title; columns; rows }

let gc_of_json path json =
  let* minor_words = req path "minor_words" Json.to_float json in
  let* promoted_words = req path "promoted_words" Json.to_float json in
  let* major_words = req path "major_words" Json.to_float json in
  let* minor_collections = req path "minor_collections" Json.to_int json in
  let* major_collections = req path "major_collections" Json.to_int json in
  let* compactions = req path "compactions" Json.to_int json in
  let* heap_words = req path "heap_words" Json.to_int json in
  let* top_heap_words = req path "top_heap_words" Json.to_int json in
  Ok
    {
      minor_words;
      promoted_words;
      major_words;
      minor_collections;
      major_collections;
      compactions;
      heap_words;
      top_heap_words;
    }

let attrib_entry_of_json path json =
  let* ae_key = req path "key" Json.to_str json in
  let* ae_docs = req path "docs" Json.to_int json in
  let* ae_events = req path "events" Json.to_int json in
  let* ae_match_s = req path "match_s" Json.to_float json in
  let* ae_structures = req path "structures" Json.to_int json in
  let* ae_live_peak = req path "live_peak" Json.to_int json in
  let* ae_retained_peak_bytes =
    req path "retained_peak_bytes" Json.to_int json
  in
  let* ae_emissions = req path "emissions" Json.to_int json in
  let* ae_faults = req path "faults" Json.to_int json in
  Ok
    {
      ae_key;
      ae_docs;
      ae_events;
      ae_match_s;
      ae_structures;
      ae_live_peak;
      ae_retained_peak_bytes;
      ae_emissions;
      ae_faults;
    }

let attribution_of_json path json =
  let* at_subscriptions = req path "subscriptions" Json.to_int json in
  let* at_docs = req path "docs" Json.to_int json in
  let* at_events = req path "events" Json.to_int json in
  let* at_match_s = req path "match_s" Json.to_float json in
  let* at_structures = req path "structures" Json.to_int json in
  let* at_emissions = req path "emissions" Json.to_int json in
  let* at_faults = req path "faults" Json.to_int json in
  let* top_values = req path "top" Json.to_list json in
  let* at_top =
    decode_list (path ^ ".top") attrib_entry_of_json top_values
  in
  Ok
    {
      at_subscriptions;
      at_docs;
      at_events;
      at_match_s;
      at_structures;
      at_emissions;
      at_faults;
      at_top;
    }

let of_json json =
  let path = "report" in
  let* version = req path "schema_version" Json.to_int json in
  if version < min_schema_version || version > schema_version then
    Error
      (Printf.sprintf
         "report: unsupported schema_version %d (this build reads %d-%d)"
         version min_schema_version schema_version)
  else
    let* kind = req path "kind" Json.to_str json in
    let* created_at = req path "created_at" Json.to_float json in
    let* config = req path "config" Json.to_obj json in
    let* stats_fields = req path "stats" Json.to_obj json in
    let* stats =
      decode_list (path ^ ".stats")
        (fun p (k, v) ->
          match Json.to_float v with
          | Some x -> Ok (k, x)
          | None -> Error (Printf.sprintf "%s: field %S is not a number" p k))
        stats_fields
    in
    let* span_values = req path "spans" Json.to_list json in
    let* spans = decode_list (path ^ ".spans") span_of_json span_values in
    let* point_values = req path "snapshots" Json.to_list json in
    let* snapshots =
      decode_list (path ^ ".snapshots") point_of_json point_values
    in
    let* table_values = req path "tables" Json.to_list json in
    let* tables = decode_list (path ^ ".tables") table_of_json table_values in
    let* gc =
      match Json.member "gc" json with
      | None | Some Json.Null -> Ok None
      | Some g -> Result.map Option.some (gc_of_json (path ^ ".gc") g)
    in
    let* relevance =
      match Json.member "relevance" json with
      | None | Some Json.Null -> Ok None
      | Some r ->
        Result.map Option.some (relevance_of_json (path ^ ".relevance") r)
    in
    (* added in schema v3; absent in earlier documents *)
    let* service_latency =
      match Json.member "service_latency" json with
      | None | Some Json.Null -> Ok []
      | Some (Json.List values) ->
        decode_list (path ^ ".service_latency") latency_of_json values
      | Some _ -> Error (path ^ ": field \"service_latency\" must be an array")
    in
    (* added in schema v4; absent in earlier documents *)
    let* attribution =
      match Json.member "attribution" json with
      | None | Some Json.Null -> Ok None
      | Some a ->
        Result.map Option.some (attribution_of_json (path ^ ".attribution") a)
    in
    Ok
      {
        version;
        kind;
        created_at;
        config;
        stats;
        spans;
        snapshots;
        tables;
        gc;
        relevance;
        service_latency;
        attribution;
      }

let validate json =
  let* r = of_json json in
  let* () =
    let rec monotone last = function
      | [] -> Ok ()
      | (p : Snapshot.point) :: rest ->
        if p.Snapshot.sn_bytes < last then
          Error
            (Printf.sprintf
               "report.snapshots: bytes regress (%d after %d) — not a valid \
                progress curve"
               p.Snapshot.sn_bytes last)
        else monotone p.Snapshot.sn_bytes rest
    in
    monotone (-1) r.snapshots
  in
  let* () =
    let rec spans_ok = function
      | [] -> Ok ()
      | (s : Telemetry.span_summary) :: rest ->
        if s.Telemetry.count <= 0 then
          Error
            (Printf.sprintf "report.spans: span %S has non-positive count"
               s.Telemetry.span_name)
        else if s.Telemetry.total_s < 0. then
          Error
            (Printf.sprintf "report.spans: span %S has negative total"
               s.Telemetry.span_name)
        else spans_ok rest
    in
    spans_ok r.spans
  in
  let* () =
    let latency_ok (s : Histogram.summary) =
      let name = s.Histogram.s_name in
      if s.s_count < 0 then
        Error
          (Printf.sprintf "report.service_latency: %S has negative count" name)
      else if s.s_p50 < 0. || s.s_p90 < s.s_p50 || s.s_p99 < s.s_p90 then
        Error
          (Printf.sprintf
             "report.service_latency: %S quantiles not monotone" name)
      else begin
        let rec buckets_ok last = function
          | [] -> Ok ()
          | (_, cumulative) :: rest ->
            if cumulative < last then
              Error
                (Printf.sprintf
                   "report.service_latency: %S cumulative buckets regress"
                   name)
            else buckets_ok cumulative rest
        in
        let* () = buckets_ok 0 s.s_buckets in
        match List.rev s.s_buckets with
        | (_, total) :: _ when total <> s.s_count ->
          Error
            (Printf.sprintf
               "report.service_latency: %S bucket total %d disagrees with \
                count %d"
               name total s.s_count)
        | _ -> Ok ()
      end
    in
    let rec all_ok = function
      | [] -> Ok ()
      | s :: rest ->
        let* () = latency_ok s in
        all_ok rest
    in
    all_ok r.service_latency
  in
  let* () =
    match r.relevance with
    | None -> Ok ()
    | Some rel ->
      if
        rel.rel_bytes_seen < 0 || rel.rel_retained_bytes < 0
        || rel.rel_retained_peak_bytes < 0 || rel.rel_elements_total < 0
        || rel.rel_elements_stored < 0
      then Error "report.relevance: negative quantity"
      else if rel.rel_retained_bytes > rel.rel_retained_peak_bytes then
        Error "report.relevance: retained_bytes above its recorded peak"
      else if rel.rel_elements_stored > rel.rel_elements_total then
        Error "report.relevance: more elements stored than seen"
      else if rel.rel_ratio < 0. then Error "report.relevance: negative ratio"
      else Ok ()
  in
  match r.attribution with
  | None -> Ok ()
  | Some a ->
    if
      a.at_subscriptions < 0 || a.at_docs < 0 || a.at_events < 0
      || a.at_match_s < 0. || a.at_structures < 0 || a.at_emissions < 0
      || a.at_faults < 0
    then Error "report.attribution: negative total"
    else if List.length a.at_top > a.at_subscriptions then
      Error "report.attribution: more top entries than subscriptions"
    else begin
      let entry_ok e =
        if
          e.ae_docs < 0 || e.ae_events < 0 || e.ae_match_s < 0.
          || e.ae_structures < 0 || e.ae_live_peak < 0
          || e.ae_retained_peak_bytes < 0 || e.ae_emissions < 0
          || e.ae_faults < 0
        then
          Error
            (Printf.sprintf "report.attribution: entry %S negative quantity"
               e.ae_key)
        else Ok ()
      in
      let rec entries_ok last = function
        | [] -> Ok ()
        | e :: rest ->
          let* () = entry_ok e in
          if e.ae_match_s > last then
            Error
              (Printf.sprintf
                 "report.attribution: top entries not sorted by match_s \
                  (entry %S)"
                 e.ae_key)
          else entries_ok e.ae_match_s rest
      in
      entries_ok infinity a.at_top
    end

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let to_string r = Json.to_string (to_json r)

let write path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string r);
      output_char oc '\n')

let read path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | contents -> (
    match Json.parse contents with
    | Error msg -> Error msg
    | Ok json -> of_json json)
