(* Fixed-bucket log-scale histograms for live service latencies.

   Design constraints, in order:

   - the record path must cost nothing when telemetry is disabled — one
     load, one branch, no allocation. Values are therefore plain [int]s
     (bytes, microseconds): no float boxing anywhere near the hot path;
   - instances must be mergeable, so a worker thread can record into a
     private scratch histogram lock-free and fold it into the shared
     registered one under whatever lock it already holds;
   - quantiles must be readable live, mid-run, without draining: the
     buckets are kept non-cumulative and cumulated on read.

   The bucket layout extends {!Telemetry}'s 2^i scheme to 2^30 so byte
   distances across large documents land in real buckets rather than
   piling into +inf. An observed value [v] falls in the bucket whose
   upper bound is the smallest power of two >= v, so a quantile estimate
   (the bucket's upper bound) overshoots the true order statistic by
   less than 2x — the error bound the tests pin down. *)

let bucket_count = 32 (* upper bounds 2^0 .. 2^30, then +inf *)

let bound_value i = if i >= bucket_count - 1 then max_int else 1 lsl i

type t = {
  name : string;
  help : string;
  unit_ : string;
  scale : float; (* read-path multiplier: recorded int -> reported unit *)
  mutable count : int;
  mutable sum : int;
  mutable max_seen : int;
  buckets : int array; (* non-cumulative *)
}

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let order : t list ref = ref []

let make ?(help = "") ?(unit_ = "") ?(scale = 1.0) name =
  {
    name;
    help;
    unit_;
    scale;
    count = 0;
    sum = 0;
    max_seen = 0;
    buckets = Array.make bucket_count 0;
  }

let create ?help ?unit_ ?scale name =
  match Hashtbl.find_opt registry name with
  | Some h -> h
  | None ->
    let h = make ?help ?unit_ ?scale name in
    Hashtbl.add registry name h;
    order := h :: !order;
    h

let registered () = List.rev !order

let find name = Hashtbl.find_opt registry name

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

(* Index of the smallest upper bound >= v: one bit-length computation,
   no loop over the bounds. [v <= 1] lands in bucket 0 (bound 2^0). *)
let bucket_index v =
  if v <= 1 then 0
  else begin
    (* bits needed for v-1: ceil(log2 v) *)
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    let i = bits (v - 1) 0 in
    if i >= bucket_count - 1 then bucket_count - 1 else i
  end

let record h v =
  if Telemetry.enabled () then begin
    let v = if v < 0 then 0 else v in
    h.count <- h.count + 1;
    h.sum <- h.sum + v;
    if v > h.max_seen then h.max_seen <- v;
    let i = bucket_index v in
    Array.unsafe_set h.buckets i (Array.unsafe_get h.buckets i + 1)
  end

let record_seconds h s =
  (* microsecond resolution; the float->int conversion only runs when the
     sink is on, so the disabled path never boxes *)
  if Telemetry.enabled () then record h (int_of_float (s *. 1e6))

let merge ~into src =
  into.count <- into.count + src.count;
  into.sum <- into.sum + src.sum;
  if src.max_seen > into.max_seen then into.max_seen <- src.max_seen;
  for i = 0 to bucket_count - 1 do
    into.buckets.(i) <- into.buckets.(i) + src.buckets.(i)
  done

let reset h =
  h.count <- 0;
  h.sum <- 0;
  h.max_seen <- 0;
  Array.fill h.buckets 0 bucket_count 0

let reset_all () = List.iter reset !order

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let count h = h.count

let name h = h.name

let unit_of h = h.unit_

(* Smallest bucket upper bound whose cumulative count reaches
   [ceil (q * count)] — within 2x of the true order statistic. The +inf
   bucket reports the exact maximum instead of infinity. *)
let quantile h q =
  if h.count = 0 then 0.
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int h.count)) in
      if r < 1 then 1 else if r > h.count then h.count else r
    in
    let rec go i cum =
      if i >= bucket_count then h.scale *. float_of_int h.max_seen
      else begin
        let cum = cum + h.buckets.(i) in
        if cum >= rank then
          if i = bucket_count - 1 then h.scale *. float_of_int h.max_seen
          else h.scale *. float_of_int (bound_value i)
        else go (i + 1) cum
      end
    in
    go 0 0
  end

let p50 h = quantile h 0.50

let p90 h = quantile h 0.90

let p99 h = quantile h 0.99

let max_value h = h.scale *. float_of_int h.max_seen

let sum h = h.scale *. float_of_int h.sum

let mean h =
  if h.count = 0 then 0. else h.scale *. float_of_int h.sum /. float_of_int h.count

type summary = {
  s_name : string;
  s_unit : string;
  s_count : int;
  s_sum : float;
  s_max : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
  s_buckets : (float * int) list;
      (* (upper bound in reported units, cumulative count); last bound is
         [infinity] *)
}

let summary h =
  let cumulative = ref 0 in
  let buckets =
    List.init bucket_count (fun i ->
        cumulative := !cumulative + h.buckets.(i);
        let bound =
          if i = bucket_count - 1 then infinity
          else h.scale *. float_of_int (bound_value i)
        in
        (bound, !cumulative))
  in
  {
    s_name = h.name;
    s_unit = h.unit_;
    s_count = h.count;
    s_sum = sum h;
    s_max = max_value h;
    s_p50 = p50 h;
    s_p90 = p90 h;
    s_p99 = p99 h;
    s_buckets = buckets;
  }

let summaries () =
  List.filter_map
    (fun h -> if h.count > 0 then Some (summary h) else None)
    (registered ())

(* Key quantiles as flat report stats. Histogram names follow the
   [subsystem/metric] stat convention, so the derived entries do too —
   and the [_s]/[_bytes] unit suffix is what the diff gate's
   worse-when-larger heuristic keys on. *)
let stats () =
  List.concat_map
    (fun h ->
      if h.count = 0 then []
      else begin
        let suffix = if h.unit_ = "" then "" else "_" ^ h.unit_ in
        [
          (h.name ^ "_p50" ^ suffix, p50 h);
          (h.name ^ "_p99" ^ suffix, p99 h);
          (h.name ^ "_count", float_of_int h.count);
        ]
      end)
    (registered ())
