(* Prometheus-style text exposition of the whole observability state:
   the {!Telemetry} registry (counters, gauges, spans, its own
   histograms), every registered {!Histogram}, and — when attribution is
   on — per-subscription cost samples from {!Attrib}.

   Telemetry cells already carry Prometheus-convention names
   ([xaos_<subsystem>_<what>_total]); {!Histogram}s carry stat-convention
   names ([stage/parse]) and are mapped here: '/' becomes '_', the
   [xaos_] prefix is added, and the reported unit is appended in long
   form ([stage/parse] with unit "s" -> [xaos_stage_parse_seconds]).

   Attribution samples are the first place arbitrary user-chosen strings
   (subscription ids) reach the exposition, as label values — so names
   are sanitized and label values escaped here, at the boundary, rather
   than trusting every producer. *)

let fnum x =
  if Float.is_integer x && Float.abs x < 1e15 then
    string_of_int (int_of_float x)
  else Printf.sprintf "%.9g" x

(* Map anything outside the Prometheus metric-name alphabet to '_', and
   guard the leading character (names cannot start with a digit). *)
let sanitize_name name =
  if name = "" then "_"
  else begin
    let mapped =
      String.map
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
          | _ -> '_')
        name
    in
    match mapped.[0] with '0' .. '9' -> "_" ^ mapped | _ -> mapped
  end

(* Label values may contain anything; the text format requires escaping
   backslash, double quote and newline. *)
let escape_label_value v =
  let buf = Buffer.create (String.length v + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let metric_name (h : Histogram.t) =
  let slug =
    String.map
      (fun c -> if c = '/' || c = '-' then '_' else c)
      (Histogram.name h)
  in
  let unit_suffix =
    match Histogram.unit_of h with
    | "s" -> "_seconds"
    | "" -> ""
    | u -> "_" ^ u
  in
  sanitize_name ("xaos_" ^ slug ^ unit_suffix)

let add_histogram buf h =
  let name = metric_name h in
  Buffer.add_string buf ("# TYPE " ^ name ^ " histogram\n");
  let s = Histogram.summary h in
  List.iter
    (fun (bound, cumulative) ->
      let le = if bound = infinity then "+Inf" else fnum bound in
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name le cumulative))
    s.Histogram.s_buckets;
  Buffer.add_string buf
    (Printf.sprintf "%s_sum %s\n" name (fnum s.Histogram.s_sum));
  Buffer.add_string buf
    (Printf.sprintf "%s_count %d\n" name s.Histogram.s_count)

(* One family per account measure, every account as one labeled sample:
   the subscription id travels as a label value, escaped. *)
let add_attribution buf =
  match Attrib.accounts () with
  | [] -> ()
  | accounts ->
    let family name help value =
      Buffer.add_string buf
        (Printf.sprintf "# HELP %s %s\n# TYPE %s counter\n" name help name);
      List.iter
        (fun (a : Attrib.snapshot) ->
          Buffer.add_string buf
            (Printf.sprintf "%s{sub=\"%s\"} %s\n" name
               (escape_label_value a.Attrib.sn_key)
               (value a)))
        accounts
    in
    family "xaos_attrib_match_seconds_total"
      "Match time charged to the subscription" (fun a ->
        fnum a.Attrib.sn_match_s);
    family "xaos_attrib_events_total"
      "Parse events delivered to the subscription" (fun a ->
        string_of_int a.Attrib.sn_events);
    family "xaos_attrib_emissions_total"
      "Result items emitted for the subscription" (fun a ->
        string_of_int a.Attrib.sn_emissions);
    family "xaos_attrib_faults_total"
      "Budget/deadline/engine faults charged to the subscription" (fun a ->
        string_of_int a.Attrib.sn_faults)

let render () =
  let buf = Buffer.create 8192 in
  Telemetry.expose buf;
  List.iter (add_histogram buf) (Histogram.registered ());
  if Attrib.enabled () then add_attribution buf;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Format validation                                                   *)
(* ------------------------------------------------------------------ *)

(* A structural check of the text format, strong enough for the CLI
   smoke tests and CI scrape gate: every line is a [# HELP]/[# TYPE]
   comment or a [name{labels} value] sample, names are legal, label
   values are properly quoted and escaped, values parse, and every
   family declared [histogram] ends with its [_count] sample. Not a
   full Prometheus parser. *)

let name_ok name =
  name <> ""
  && (match name.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       name

let value_ok v =
  match v with
  | "+Inf" | "-Inf" | "NaN" -> true
  | _ -> ( match float_of_string_opt v with Some _ -> true | None -> false)

(* Parse a sample line into (bare name, value), walking the optional
   label block with escape-aware scanning — a label value may contain
   spaces and escaped quotes, so splitting at the first space is not
   enough. *)
let parse_sample line =
  let n = String.length line in
  let is_name_char = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
    | _ -> false
  in
  let rec scan_name i = if i < n && is_name_char line.[i] then scan_name (i + 1) else i in
  let name_end = scan_name 0 in
  let name = String.sub line 0 name_end in
  if not (name_ok name) then Error "bad metric name"
  else if name_end < n && line.[name_end] = '{' then begin
    (* labels: label_name="value"(,label_name="value")* *)
    let rec labels i =
      let le = scan_name i in
      if le = i then Error "bad label name"
      else if le >= n || line.[le] <> '=' then Error "missing '=' after label"
      else if le + 1 >= n || line.[le + 1] <> '"' then
        Error "label value not quoted"
      else begin
        let rec value j =
          if j >= n then Error "unterminated label value"
          else
            match line.[j] with
            | '"' -> Ok (j + 1)
            | '\\' ->
              if j + 1 >= n then Error "dangling escape in label value"
              else (
                match line.[j + 1] with
                | '\\' | '"' | 'n' -> value (j + 2)
                | _ -> Error "bad escape in label value")
            | _ -> value (j + 1)
        in
        match value (le + 2) with
        | Error _ as e -> e
        | Ok j ->
          if j < n && line.[j] = ',' then labels (j + 1)
          else if j < n && line.[j] = '}' then Ok (j + 1)
          else Error "bad label separator"
      end
    in
    match labels (name_end + 1) with
    | Error _ as e -> e
    | Ok close ->
      if close < n && line.[close] = ' ' then
        Ok (name, String.sub line (close + 1) (n - close - 1))
      else Error "missing value after labels"
  end
  else
    match String.index_opt line ' ' with
    | Some i when i = name_end ->
      Ok (name, String.sub line (i + 1) (n - i - 1))
    | _ -> Error "missing value"

let check text =
  let err lineno msg line =
    Error (Printf.sprintf "line %d: %s: %s" lineno msg line)
  in
  let lines = String.split_on_char '\n' text in
  let histograms = Hashtbl.create 16 in (* name -> has _count sample *)
  let rec go lineno = function
    | [] -> Ok ()
    | "" :: rest -> go (lineno + 1) rest
    | line :: rest when String.length line > 0 && line.[0] = '#' -> (
      match String.split_on_char ' ' line with
      | "#" :: ("HELP" | "TYPE") :: name :: more
        when name_ok name && more <> [] ->
        if List.nth (String.split_on_char ' ' line) 1 = "TYPE" then begin
          match more with
          | [ ("counter" | "gauge" | "summary") ] -> go (lineno + 1) rest
          | [ "histogram" ] ->
            Hashtbl.replace histograms name false;
            go (lineno + 1) rest
          | _ -> err lineno "bad TYPE kind" line
        end
        else go (lineno + 1) rest
      | _ -> err lineno "malformed comment" line)
    | line :: rest -> (
      match parse_sample line with
      | Error msg -> err lineno msg line
      | Ok (bare_name, value_part) ->
        if not (value_ok (String.trim value_part)) then
          err lineno "bad sample value" line
        else begin
          let suffix = "_count" in
          let bl = String.length bare_name and sl = String.length suffix in
          if bl > sl && String.sub bare_name (bl - sl) sl = suffix then begin
            let family = String.sub bare_name 0 (bl - sl) in
            if Hashtbl.mem histograms family then
              Hashtbl.replace histograms family true
          end;
          go (lineno + 1) rest
        end)
  in
  match go 1 lines with
  | Error _ as e -> e
  | Ok () -> (
    match
      Hashtbl.fold
        (fun name seen acc -> if seen then acc else name :: acc)
        histograms []
    with
    | [] -> Ok ()
    | name :: _ ->
      Error (Printf.sprintf "histogram %s has no _count sample" name))
