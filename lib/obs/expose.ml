(* Prometheus-style text exposition of the whole observability state:
   the {!Telemetry} registry (counters, gauges, spans, its own
   histograms) plus every registered {!Histogram}.

   Telemetry cells already carry Prometheus-convention names
   ([xaos_<subsystem>_<what>_total]); {!Histogram}s carry stat-convention
   names ([stage/parse]) and are mapped here: '/' becomes '_', the
   [xaos_] prefix is added, and the reported unit is appended in long
   form ([stage/parse] with unit "s" -> [xaos_stage_parse_seconds]). *)

let fnum x =
  if Float.is_integer x && Float.abs x < 1e15 then
    string_of_int (int_of_float x)
  else Printf.sprintf "%.9g" x

let metric_name (h : Histogram.t) =
  let slug =
    String.map
      (fun c -> if c = '/' || c = '-' then '_' else c)
      (Histogram.name h)
  in
  let unit_suffix =
    match Histogram.unit_of h with
    | "s" -> "_seconds"
    | "" -> ""
    | u -> "_" ^ u
  in
  "xaos_" ^ slug ^ unit_suffix

let add_histogram buf h =
  let name = metric_name h in
  Buffer.add_string buf ("# TYPE " ^ name ^ " histogram\n");
  let s = Histogram.summary h in
  List.iter
    (fun (bound, cumulative) ->
      let le = if bound = infinity then "+Inf" else fnum bound in
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name le cumulative))
    s.Histogram.s_buckets;
  Buffer.add_string buf
    (Printf.sprintf "%s_sum %s\n" name (fnum s.Histogram.s_sum));
  Buffer.add_string buf
    (Printf.sprintf "%s_count %d\n" name s.Histogram.s_count)

let render () =
  let buf = Buffer.create 8192 in
  Telemetry.expose buf;
  List.iter (add_histogram buf) (Histogram.registered ());
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Format validation                                                   *)
(* ------------------------------------------------------------------ *)

(* A structural check of the text format, strong enough for the CLI
   smoke tests and CI scrape gate: every line is a [# HELP]/[# TYPE]
   comment or a [name{labels} value] sample, names are legal, values
   parse, and every family declared [histogram] ends with its [_count]
   sample. Not a full Prometheus parser. *)

let name_ok name =
  name <> ""
  && (match name.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       name

let value_ok v =
  match v with
  | "+Inf" | "-Inf" | "NaN" -> true
  | _ -> ( match float_of_string_opt v with Some _ -> true | None -> false)

let check text =
  let err lineno msg line =
    Error (Printf.sprintf "line %d: %s: %s" lineno msg line)
  in
  let lines = String.split_on_char '\n' text in
  let histograms = Hashtbl.create 16 in (* name -> has _count sample *)
  let rec go lineno = function
    | [] -> Ok ()
    | "" :: rest -> go (lineno + 1) rest
    | line :: rest when String.length line > 0 && line.[0] = '#' -> (
      match String.split_on_char ' ' line with
      | "#" :: ("HELP" | "TYPE") :: name :: more
        when name_ok name && more <> [] ->
        if List.nth (String.split_on_char ' ' line) 1 = "TYPE" then begin
          match more with
          | [ ("counter" | "gauge" | "summary") ] -> go (lineno + 1) rest
          | [ "histogram" ] ->
            Hashtbl.replace histograms name false;
            go (lineno + 1) rest
          | _ -> err lineno "bad TYPE kind" line
        end
        else go (lineno + 1) rest
      | _ -> err lineno "malformed comment" line)
    | line :: rest -> (
      (* name{labels} value | name value *)
      let name_part, value_part =
        match String.index_opt line ' ' with
        | None -> (line, "")
        | Some i ->
          ( String.sub line 0 i,
            String.sub line (i + 1) (String.length line - i - 1) )
      in
      let bare_name =
        match String.index_opt name_part '{' with
        | None -> name_part
        | Some i ->
          if name_part.[String.length name_part - 1] <> '}' then ""
          else String.sub name_part 0 i
      in
      if not (name_ok bare_name) then err lineno "bad metric name" line
      else if not (value_ok (String.trim value_part)) then
        err lineno "bad sample value" line
      else begin
        let suffix = "_count" in
        let bl = String.length bare_name and sl = String.length suffix in
        if bl > sl && String.sub bare_name (bl - sl) sl = suffix then begin
          let family = String.sub bare_name 0 (bl - sl) in
          if Hashtbl.mem histograms family then
            Hashtbl.replace histograms family true
        end;
        go (lineno + 1) rest
      end)
  in
  match go 1 lines with
  | Error _ as e -> e
  | Ok () -> (
    match
      Hashtbl.fold
        (fun name seen acc -> if seen then acc else name :: acc)
        histograms []
    with
    | [] -> Ok ()
    | name :: _ ->
      Error (Printf.sprintf "histogram %s has no _count sample" name))
