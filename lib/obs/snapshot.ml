type point = {
  sn_bytes : int;
  sn_events : int;
  sn_depth : int;
  sn_live : int;
  sn_looking_for : int;
  sn_retained_bytes : int;
  sn_elapsed_s : float;
  sn_bytes_per_sec : float;
  sn_heap_words : int;
}

type series = {
  interval : int;
  t0 : float;
  on_point : (point -> unit) option;
  mutable next_at : int;
  mutable last_bytes : int;
  mutable rev_points : point list;
  mutable n : int;
}

let create ?(interval_bytes = 65536) ?on_point () =
  if interval_bytes <= 0 then
    invalid_arg "Snapshot.create: interval_bytes must be positive";
  {
    interval = interval_bytes;
    t0 = Telemetry.now ();
    on_point;
    next_at = 0;
    last_bytes = -1;
    rev_points = [];
    n = 0;
  }

let due s ~bytes = bytes >= s.next_at

let sample ?(retained_bytes = 0) s ~bytes ~events ~depth ~live ~looking_for =
  if bytes >= s.last_bytes then begin
    let elapsed = Telemetry.now () -. s.t0 in
    let rate = if elapsed > 0. then float_of_int bytes /. elapsed else 0. in
    let point =
      {
        sn_bytes = bytes;
        sn_events = events;
        sn_depth = depth;
        sn_live = live;
        sn_looking_for = looking_for;
        sn_retained_bytes = retained_bytes;
        sn_elapsed_s = elapsed;
        sn_bytes_per_sec = rate;
        sn_heap_words = (Gc.quick_stat ()).Gc.heap_words;
      }
    in
    s.last_bytes <- bytes;
    s.next_at <- bytes + s.interval;
    s.rev_points <- point :: s.rev_points;
    s.n <- s.n + 1;
    match s.on_point with Some f -> f point | None -> ()
  end

let points s = List.rev s.rev_points

let length s = s.n
