(** Structured NDJSON event log for the running service.

    Every supervision decision the service takes — quarantining a
    subscription, shedding a document at admission, dropping a response
    on a full out-queue, a thread crash, a re-admission — becomes one
    typed record: a severity {!level}, a [kind] string, a [subject] (the
    subscription, document or thread the decision was about), an
    optional typed {!reason} code, and free-form JSON detail.

    Records land in a bounded ring (newest win; overwrites are counted)
    and, when a sink is installed, are also emitted immediately as one
    compact JSON line each — the event-log file the soak harness writes
    and CI uploads. Appends take an internal lock (the server logs from
    several threads) but the log is per-{e decision}, not per-XML-event:
    this is not hot-path instrumentation, and the whole module is a
    no-op until {!enable}. *)

type level =
  | Debug
  | Info
  | Warn
  | Error

val level_name : level -> string

(** Typed reason codes with stable wire strings — consumers match on
    the code ({!reason_code}), never on prose. *)
type reason =
  | Budget_exceeded  (** run tripped its structure budget *)
  | Engine_raised  (** run raised a non-budget exception *)
  | Queue_full  (** ingress at the high watermark, document refused *)
  | Displaced  (** evicted from the queue by a higher-priority document *)
  | Out_queue_full  (** response dropped on a full client out-queue *)
  | Backoff_elapsed  (** quarantine penalty served; probation begins *)
  | Thread_crash  (** exception escaped a server thread body *)
  | Doc_deadline  (** document ended by the wall-clock deadline *)
  | Line_too_long
      (** a protocol line exceeded the frame cap; the connection fails
          closed rather than deliver a truncated parse *)
  | Slow_document
      (** a document's total pipeline time crossed the broker's
          slow-document threshold *)
  | Sax_limit of string  (** document ended by a parser resource limit *)

val reason_code : reason -> string
(** E.g. ["budget-exceeded"], ["sax-limit:max_depth"]. *)

type event = {
  seq : int;  (** monotone over the process, survives ring drops *)
  at : float;  (** {!Telemetry.now} at record time *)
  level : level;
  kind : string;  (** ["quarantine"], ["shed"], ["drop"], ["crash"], … *)
  subject : string;
  reason : reason option;
  detail : (string * Json.t) list;
}

val to_json : event -> Json.t

val to_line : event -> string
(** Compact single-line JSON, no trailing newline. *)

(** {1 Control} *)

val enable : unit -> unit

val disable : unit -> unit

val enabled : unit -> bool

val set_level : level -> unit
(** Minimum severity recorded (default [Info]); lower levels are
    filtered before touching the ring or the sink. *)

val set_capacity : int -> unit
(** Resize the ring (default 1024). Clears it.
    @raise Invalid_argument when not positive. *)

val set_sink : (string -> unit) option -> unit
(** Also emit each record as one JSON line, outside the internal lock.
    [None] removes the sink. *)

val clear : unit -> unit
(** Empty the ring and zero the overwrite counter (the sequence counter
    keeps running). *)

(** {1 Recording and reading} *)

val record :
  ?level:level -> ?reason:reason -> ?detail:(string * Json.t) list ->
  kind:string -> string -> unit
(** [record ~kind subject] appends one event (default level [Info]).
    No-op while disabled or below the minimum level. *)

val events : unit -> event list
(** Ring contents, oldest first. *)

val dropped : unit -> int
(** Events overwritten by ring wrap-around since the last {!clear}. *)

val recorded : unit -> int
(** Events accepted since process start (ring + overwritten). *)
