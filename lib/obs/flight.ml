(* Sampled per-document flight recorder.

   One recording covers one document's trip through the service
   pipeline: ingress wait, parse, dispatch, per-subscription match,
   emission, writer. Spans are collected unconditionally once a
   recording has been started (starting is the sampled decision), then
   kept or dropped at [finish]: every [sample_every]-th document is
   kept, and every slow or faulted one regardless of sampling.

   Kept recordings are exported in the Chrome trace-event format the
   repo's Tracer already writes — `{"displayTimeUnit": "ms",
   "traceEvents": [...]}` with complete ("X") events — so a flight file
   loads in Perfetto next to an engine trace. Track 0 carries the
   document root plus the sequential pipeline stages; track 1 carries
   the per-subscription match spans. Pipeline-stage spans use measured
   stage durations laid against the document's wall clock: parse and
   dispatch are the summed instrumented chunks placed back to back from
   publish start (each is a disjoint subset of the wall interval, so
   they never collide with the later real intervals), per-subscription
   spans are real per-run durations laid sequentially inside the match
   window. The layout is attribution, not an exact interleaving — the
   evaluator alternates between stages at parse-chunk granularity. *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_track : int;
  sp_start_s : float;  (* absolute, Telemetry.now clock *)
  sp_dur_s : float;
  sp_args : (string * Json.t) list;
}

type t = {
  fl_doc_id : string;
  fl_started : float;
  fl_mu : Mutex.t;
  mutable fl_tick : int;
  mutable fl_spans : span list;  (* reverse order of addition *)
  mutable fl_slow : bool;
  mutable fl_faulted : bool;
  mutable fl_finished : bool;
}

(* ------------------------------------------------------------------ *)
(* Module configuration                                                *)
(* ------------------------------------------------------------------ *)

let cfg_mu = Mutex.create ()
let cfg_sample_every = ref 0 (* <= 0: recorder off *)
let cfg_dir : string option ref = ref None
let cfg_max_files = ref 64
let n_written = ref 0
let last_kept : t option ref = ref None

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let configure ?sample_every ?dir ?max_files () =
  locked cfg_mu (fun () ->
      (match sample_every with
      | Some n -> cfg_sample_every := n
      | None -> ());
      (match dir with Some d -> cfg_dir := Some d | None -> ());
      match max_files with Some n -> cfg_max_files := n | None -> ())

let disable () =
  locked cfg_mu (fun () ->
      cfg_sample_every := 0;
      cfg_dir := None)

let active () = !cfg_sample_every > 0

let reset () =
  locked cfg_mu (fun () ->
      n_written := 0;
      last_kept := None)

let written () = !n_written
let last () = !last_kept

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let start ~doc_id =
  {
    fl_doc_id = doc_id;
    fl_started = Telemetry.now ();
    fl_mu = Mutex.create ();
    fl_tick = 0;
    fl_spans = [];
    fl_slow = false;
    fl_faulted = false;
    fl_finished = false;
  }

let doc_id fl = fl.fl_doc_id
let set_tick fl tick = fl.fl_tick <- tick
let mark_slow fl = fl.fl_slow <- true
let mark_faulted fl = fl.fl_faulted <- true

let span fl ?(cat = "pipeline") ?(track = 0) ?(args = []) ~name ~start ~stop
    () =
  let dur = if stop > start then stop -. start else 0. in
  locked fl.fl_mu (fun () ->
      fl.fl_spans <-
        {
          sp_name = name;
          sp_cat = cat;
          sp_track = track;
          sp_start_s = start;
          sp_dur_s = dur;
          sp_args = args;
        }
        :: fl.fl_spans)

let span_names fl =
  locked fl.fl_mu (fun () ->
      List.rev_map (fun s -> s.sp_name) fl.fl_spans)

let keep fl =
  fl.fl_slow || fl.fl_faulted
  ||
  let every = !cfg_sample_every in
  every > 0 && fl.fl_tick mod every = 0

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let micros s = Json.Float (s *. 1e6)

let to_chrome fl =
  let spans = locked fl.fl_mu (fun () -> List.rev fl.fl_spans) in
  (* Shift everything so the earliest span starts at ts 0 — ingress
     starts before publish, and Perfetto prefers non-negative stamps. *)
  let t0 =
    List.fold_left
      (fun acc s -> min acc s.sp_start_s)
      fl.fl_started spans
  in
  let t_end =
    List.fold_left
      (fun acc s -> max acc (s.sp_start_s +. s.sp_dur_s))
      fl.fl_started spans
  in
  let event s =
    Json.Obj
      ([
         ("name", Json.String s.sp_name);
         ("cat", Json.String s.sp_cat);
         ("ph", Json.String "X");
         ("ts", micros (s.sp_start_s -. t0));
         ("dur", micros s.sp_dur_s);
         ("pid", Json.Int fl.fl_tick);
         ("tid", Json.Int s.sp_track);
       ]
      @ match s.sp_args with [] -> [] | args -> [ ("args", Json.Obj args) ])
  in
  let root =
    Json.Obj
      [
        ("name", Json.String ("doc " ^ fl.fl_doc_id));
        ("cat", Json.String "doc");
        ("ph", Json.String "X");
        ("ts", micros 0.);
        ("dur", micros (t_end -. t0));
        ("pid", Json.Int fl.fl_tick);
        ("tid", Json.Int 0);
        ( "args",
          Json.Obj
            [
              ("doc_id", Json.String fl.fl_doc_id);
              ("tick", Json.Int fl.fl_tick);
              ("slow", Json.Bool fl.fl_slow);
              ("faulted", Json.Bool fl.fl_faulted);
            ] );
      ]
  in
  Json.Obj
    [
      ("displayTimeUnit", Json.String "ms");
      ("traceEvents", Json.List (root :: List.map event spans));
    ]

let safe_name id =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    (if String.length id > 40 then String.sub id 0 40 else id)

let write_file fl =
  match !cfg_dir with
  | None -> None
  | Some dir ->
    let may_write =
      locked cfg_mu (fun () ->
          if !n_written < !cfg_max_files then begin
            incr n_written;
            true
          end
          else false)
    in
    if not may_write then None
    else begin
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let path =
        Filename.concat dir
          (Printf.sprintf "flight-%06d-%s.json" fl.fl_tick
             (safe_name fl.fl_doc_id))
      in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc (Json.to_string (to_chrome fl));
          output_char oc '\n');
      Some path
    end

let finish fl =
  let first =
    locked fl.fl_mu (fun () ->
        if fl.fl_finished then false
        else begin
          fl.fl_finished <- true;
          true
        end)
  in
  if not first then None
  else if not (keep fl) then None
  else begin
    last_kept := Some fl;
    try write_file fl with Sys_error _ | Unix.Unix_error _ -> None
  end
