(** Sampled per-document flight recorder.

    A recording captures one document's causal span tree across the six
    service pipeline stages — ingress → parse → dispatch →
    per-subscription match → emission → writer — and exports it in the
    same Chrome trace-event JSON the engine {!Tracer} writes, so flight
    files load directly in Perfetto.

    Sampling contract: the caller starts a recording for every document
    while the recorder is {!active}; {!finish} keeps it only when the
    document's tick falls on the [sample_every] grid, or when it was
    marked slow or faulted (those always keep). Kept recordings are
    written to the configured directory, capped at [max_files] per
    process so a long soak cannot fill the disk.

    Span layout: track 0 holds a root span for the document plus the
    sequential pipeline stages; track 1 holds per-subscription match
    spans. Stage spans carry measured durations laid against the
    document's wall clock — an attribution of time to stages, not an
    exact interleaving (the evaluator alternates stages at parse-chunk
    granularity). *)

type t
(** One in-progress recording. Mutation is mutex-guarded: the evaluator
    and the writer thread both add spans. *)

(** {1 Module configuration} *)

val configure :
  ?sample_every:int -> ?dir:string -> ?max_files:int -> unit -> unit
(** Set sampling grid (0 or negative disables), output directory
    (created on first write), and the per-process file cap (default
    64). Unspecified fields keep their current value. *)

val disable : unit -> unit
(** Stop recording: clears the sampling grid and the directory. *)

val active : unit -> bool
(** Whether callers should start recordings ([sample_every > 0]). *)

val reset : unit -> unit
(** Forget the written-file count and the last kept recording. Tests. *)

val written : unit -> int
(** Flight files written by this process. *)

val last : unit -> t option
(** The most recently kept recording (whether or not it reached disk) —
    lets in-process harnesses assert on span coverage without reading
    files back. *)

(** {1 Recording} *)

val start : doc_id:string -> t
(** Begin a recording stamped with the current {!Telemetry.now}. *)

val doc_id : t -> string

val set_tick : t -> int -> unit
(** The broker's monotone document number — drives the sampling grid
    and becomes the trace's pid. *)

val mark_slow : t -> unit
(** Document crossed the slow threshold: always keep. *)

val mark_faulted : t -> unit
(** Document faulted at least one run (or died): always keep. *)

val span :
  t ->
  ?cat:string ->
  ?track:int ->
  ?args:(string * Json.t) list ->
  name:string ->
  start:float ->
  stop:float ->
  unit ->
  unit
(** Add a complete span, absolute [start]/[stop] on the
    {!Telemetry.now} clock (negative durations clamp to zero). *)

val span_names : t -> string list
(** Names of the spans added so far, in order — assertion helper. *)

val keep : t -> bool
(** Whether {!finish} would keep this recording now. *)

(** {1 Export} *)

val to_chrome : t -> Json.t
(** The recording as a Chrome trace-event document: a root span plus
    one complete event per recorded span, timestamps shifted so the
    earliest span starts at 0. *)

val finish : t -> string option
(** Close the recording (idempotent — only the first call acts). If the
    keep rule selects it, remembers it as {!last} and, when a directory
    is configured and the file cap is not exhausted, writes
    [flight-<tick>-<docid>.json] and returns the path. *)
