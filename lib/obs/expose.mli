(** Prometheus-style text exposition of the whole observability state.

    One {!render} produces the {!Telemetry} registry (via
    {!Telemetry.expose}) followed by every registered {!Histogram} in
    standard histogram format — what [xaos metrics] returns to a
    scraper, what [--metrics] sinks append at exit, and what the CI
    soak job scrapes mid-run.

    {!Histogram} names use the [subsystem/metric] stat convention and
    are mapped to legal Prometheus names here: ['/'] becomes ['_'], an
    [xaos_] prefix is added and the reported unit is appended in long
    form — [stage/parse] (unit ["s"]) renders as
    [xaos_stage_parse_seconds].

    When {!Attrib} is enabled the rendering also carries one labeled
    sample per cost account ([xaos_attrib_match_seconds_total{sub="…"}]
    and friends). Subscription ids are arbitrary user strings, so they
    are escaped at this boundary — see {!escape_label_value} and
    {!sanitize_name}. *)

val render : unit -> string

val metric_name : Histogram.t -> string
(** The exposition name a histogram renders under. *)

val sanitize_name : string -> string
(** Map every character outside the Prometheus metric-name alphabet
    ([[a-zA-Z0-9_:]]) to ['_'], prefixing ['_'] when the result would
    start with a digit. [""] becomes ["_"]. *)

val escape_label_value : string -> string
(** Escape a string for use inside a quoted label value: backslash,
    double quote and newline become backslash-escaped two-character
    sequences. *)

val check : string -> (unit, string) result
(** Structural validation of exposition text: every line is a
    [# HELP]/[# TYPE] comment or a [name{labels} value] sample, metric
    names are legal, label values are quoted with only legal escapes
    (label values may contain spaces), values parse as numbers (or
    [+Inf]/[-Inf]/[NaN]), [TYPE] kinds are known, and every family
    declared [histogram] has a [_count] sample. Not a full Prometheus
    parser — a smoke gate for tests and CI. *)
