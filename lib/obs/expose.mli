(** Prometheus-style text exposition of the whole observability state.

    One {!render} produces the {!Telemetry} registry (via
    {!Telemetry.expose}) followed by every registered {!Histogram} in
    standard histogram format — what [xaos metrics] returns to a
    scraper, what [--metrics] sinks append at exit, and what the CI
    soak job scrapes mid-run.

    {!Histogram} names use the [subsystem/metric] stat convention and
    are mapped to legal Prometheus names here: ['/'] becomes ['_'], an
    [xaos_] prefix is added and the reported unit is appended in long
    form — [stage/parse] (unit ["s"]) renders as
    [xaos_stage_parse_seconds]. *)

val render : unit -> string

val metric_name : Histogram.t -> string
(** The exposition name a histogram renders under. *)

val check : string -> (unit, string) result
(** Structural validation of exposition text: every line is a
    [# HELP]/[# TYPE] comment or a [name{labels} value] sample, metric
    names are legal, values parse as numbers (or [+Inf]/[-Inf]/[NaN]),
    [TYPE] kinds are known, and every family declared [histogram] has a
    [_count] sample. Not a full Prometheus parser — a smoke gate for
    tests and CI. *)
