(* Structured event log for the running service: every supervision
   decision (quarantine, shed, drop, crash, readmit, …) becomes one
   typed record in a bounded ring, optionally tee'd to a sink as NDJSON.

   The ring keeps the most recent [capacity] events and counts what it
   overwrote — the live dashboard reads the tail, the soak harness
   asserts on the full stream via the sink. Unlike {!Telemetry} this
   module takes a lock per append: events are per-decision, not
   per-XML-event, and the server logs from several threads. *)

type level =
  | Debug
  | Info
  | Warn
  | Error

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

(* Typed reason codes with stable wire strings: consumers (CI
   assertions, dashboards) match on the code, never on prose. *)
type reason =
  | Budget_exceeded  (** run tripped its structure budget *)
  | Engine_raised  (** run raised a non-budget exception *)
  | Queue_full  (** ingress at the high watermark, document refused *)
  | Displaced  (** evicted from the queue by a higher-priority document *)
  | Out_queue_full  (** response dropped on a full client out-queue *)
  | Backoff_elapsed  (** quarantine penalty served; probation begins *)
  | Thread_crash  (** exception escaped a server thread body *)
  | Doc_deadline  (** document ended by the wall-clock deadline *)
  | Line_too_long
      (** a protocol line exceeded the frame cap; the connection fails
          closed rather than deliver a truncated parse *)
  | Slow_document
      (** a document's total pipeline time crossed the broker's
          slow-document threshold *)
  | Sax_limit of string  (** document ended by a parser resource limit *)

let reason_code = function
  | Budget_exceeded -> "budget-exceeded"
  | Engine_raised -> "engine-raised"
  | Queue_full -> "queue-full"
  | Displaced -> "displaced"
  | Out_queue_full -> "out-queue-full"
  | Backoff_elapsed -> "backoff-elapsed"
  | Thread_crash -> "thread-crash"
  | Doc_deadline -> "doc-deadline"
  | Line_too_long -> "line-too-long"
  | Slow_document -> "slow-document"
  | Sax_limit kind -> "sax-limit:" ^ kind

type event = {
  seq : int;
  at : float;
  level : level;
  kind : string;
  subject : string;
  reason : reason option;
  detail : (string * Json.t) list;
}

let to_json e =
  Json.Obj
    ([
       ("seq", Json.Int e.seq);
       ("at", Json.Float e.at);
       ("level", Json.String (level_name e.level));
       ("kind", Json.String e.kind);
       ("subject", Json.String e.subject);
     ]
    @ (match e.reason with
      | None -> []
      | Some r -> [ ("reason", Json.String (reason_code r)) ])
    @ match e.detail with [] -> [] | d -> [ ("detail", Json.Obj d) ])

let to_line e = Json.to_string ~indent:false (to_json e)

(* ------------------------------------------------------------------ *)
(* The (process-global) log                                            *)
(* ------------------------------------------------------------------ *)

let mu = Mutex.create ()

let on = ref false

let min_level = ref Info

let capacity = ref 1024

let ring : event option array ref = ref (Array.make 1024 None)

let head = ref 0 (* next write position *)

let stored = ref 0 (* events currently in the ring *)

let seq = ref 0

let dropped_count = ref 0

let sink : (string -> unit) option ref = ref None

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let enable () = on := true

let disable () = on := false

let enabled () = !on

let set_level l = min_level := l

let set_capacity n =
  if n <= 0 then invalid_arg "Eventlog.set_capacity: must be positive";
  locked @@ fun () ->
  capacity := n;
  ring := Array.make n None;
  head := 0;
  stored := 0

let set_sink f = sink := f

let clear () =
  locked @@ fun () ->
  Array.fill !ring 0 (Array.length !ring) None;
  head := 0;
  stored := 0;
  dropped_count := 0

let record ?(level = Info) ?reason ?(detail = []) ~kind subject =
  if !on && level_rank level >= level_rank !min_level then begin
    let e =
      locked @@ fun () ->
      let e =
        { seq = !seq; at = Telemetry.now (); level; kind; subject; reason;
          detail }
      in
      seq := !seq + 1;
      let r = !ring in
      if !stored = Array.length r then dropped_count := !dropped_count + 1
      else stored := !stored + 1;
      r.(!head) <- Some e;
      head := (!head + 1) mod Array.length r;
      e
    in
    (* the sink runs outside the lock: it may write to a file or socket *)
    match !sink with None -> () | Some f -> f (to_line e)
  end

let events () =
  locked @@ fun () ->
  let r = !ring in
  let n = Array.length r in
  let start = (!head - !stored + n) mod n in
  List.init !stored (fun i ->
      match r.((start + i) mod n) with
      | Some e -> e
      | None -> assert false)

let dropped () = !dropped_count

let recorded () = !seq
