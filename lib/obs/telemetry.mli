(** Zero-cost-when-disabled instrumentation: counters, gauges, histograms
    and wall-clock spans behind a process-global sink.

    The design splits the classic sink interface in two:

    - the {e update path} (what instrumented code calls per event) writes
      into preallocated metric cells and is guarded by a single mutable
      flag — when no sink is installed every operation is one load, one
      branch, no allocation;
    - the {e drain path} (what reports and the Prometheus exposition
      call, once per run) reads the aggregated cells.

    Metric handles are created once, at module-load time of the
    instrumented code, and registered in a process-wide registry keyed by
    name; creating a metric twice returns the same cell. Handles stay
    valid across {!enable}/{!disable}/{!reset} cycles.

    Not thread-safe: the engine is single-threaded per run, and the
    counters are plain mutable ints. *)

(** {1 Sink control} *)

val enable : unit -> unit
(** Install the in-memory aggregation sink: subsequent metric operations
    update their cells. *)

val disable : unit -> unit
(** Remove the sink: subsequent operations are no-ops. Aggregated values
    are kept (drain them before {!reset}). *)

val enabled : unit -> bool

val reset : unit -> unit
(** Zero every registered metric (and abandon any open span). *)

val now : unit -> float
(** The clock used for spans, in seconds. Defaults to
    [Unix.gettimeofday]; see {!set_clock}. *)

val set_clock : (unit -> float) -> unit
(** Replace the span clock — deterministic tests inject a fake one. *)

(** {1 Counters} *)

type counter

val counter : ?help:string -> string -> counter
(** Registers (or retrieves) the monotonically increasing counter
    [name]. Prometheus convention: name it [xaos_<subsystem>_<what>_total]. *)

val incr : counter -> unit

val add : counter -> int -> unit

val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : ?help:string -> string -> gauge

val set_gauge : gauge -> int -> unit
(** Also tracks the high-water mark, exposed as [<name>_max]. *)

val set_gauge_float : gauge -> float -> unit
(** Gauges are float-backed (ratio gauges need it); {!set_gauge} is
    [set_gauge_float] of the int. Exposition prints integral values
    without a decimal point. *)

val gauge_value : gauge -> int
(** Truncates; see {!gauge_value_float} for the exact value. *)

val gauge_max : gauge -> int

val gauge_value_float : gauge -> float

(** {1 Histograms} *)

type histogram

val histogram : ?help:string -> string -> histogram
(** Fixed exponential buckets: upper bounds 1, 2, 4, … 2{^20}, +inf. *)

val observe : histogram -> float -> unit

val observe_int : histogram -> int -> unit

type histogram_summary = {
  h_count : int;
  h_sum : float;
  h_min : float;  (** 0 when empty *)
  h_max : float;
  h_buckets : (float * int) list;
      (** (upper bound, cumulative count); last bound is [infinity] *)
}

val histogram_summary : histogram -> histogram_summary

(** {1 Spans}

    A span accumulates wall-clock durations of a named phase:
    {!enter}/{!leave} bracket one occurrence. Spans are not reentrant —
    the engine's phases are strictly sequential, which is what keeps the
    hot path allocation-free. An unmatched {!leave} (e.g. telemetry
    enabled mid-phase) is ignored. *)

type span

val span : ?help:string -> string -> span

val enter : span -> unit

val leave : span -> unit

val time : span -> (unit -> 'a) -> 'a
(** [enter]/[leave] around a thunk, exception-safe. Allocates a closure:
    for cold phases (compilation, whole runs), not per-event code. *)

type span_summary = {
  span_name : string;
  count : int;
  total_s : float;
  min_s : float;  (** 0 when empty *)
  max_s : float;
}

val span_summary : span -> span_summary

(** {1 Draining} *)

val counters : unit -> (string * int) list
(** Registered counters with nonzero value, in registration order. *)

val gauges : unit -> (string * int) list

val span_summaries : unit -> span_summary list
(** Registered spans with nonzero count, in registration order. *)

val expose : Buffer.t -> unit
(** Prometheus text exposition of the whole registry: [# HELP]/[# TYPE]
    preambles, counters and gauges as single samples, histograms with
    cumulative [_bucket{le="…"}] samples, spans as [summary] with
    [_count]/[_sum]. *)

(** {1 GC probes} *)

val sample_gc : unit -> unit
(** Refresh the [gc/*] gauges — minor/major collections, promoted words,
    major-heap words — from {!Gc.quick_stat}. The broker calls this once
    per document; no-op while disabled. The gauges' [_max] high-water
    marks make the per-run peaks visible in the exposition. *)

val with_peak_heap : (unit -> 'a) -> 'a * int
(** Run the thunk while sampling the major-heap size at the end of every
    major collection; returns (result, peak heap {e words} seen). This is
    what "memory use" means for a streaming engine: retention between
    collections, not final live data. Compacts first so earlier garbage
    does not count against the thunk. *)
