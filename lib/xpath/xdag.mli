(** The x-dag representation (paper, Section 3.2).

    The x-dag is derived from the x-tree by reformulating every backward
    constraint as a forward one — the key step that makes streaming
    processing possible:

    + [child] and [descendant] x-tree edges are kept;
    + [parent] edges are reversed and relabeled [child]; [ancestor] edges
      are reversed and relabeled [descendant] (and, for our axis
      extensions, [ancestor-or-self] reverses to [descendant-or-self]
      while [self] keeps its orientation);
    + every non-root x-node left without an incoming edge receives a
      [descendant] edge from [Root].

    All x-dag edges therefore point downward in document-containment
    order. The engine uses the x-dag to decide *relevance* of incoming
    elements (the looking-for set). *)

(** Forward edge kinds after reformulation. *)
type kind =
  | Kchild  (** target is a child of the source's match *)
  | Kdescendant  (** proper descendant *)
  | Kself  (** the same element *)
  | Kdescendant_or_self

exception Unsatisfiable
(** Raised by {!of_xtree} when reversal creates a cycle through a strict
    edge (e.g. [/parent::x], which asks for an element strictly above the
    root): no document can satisfy the expression. *)

type t = {
  xtree : Xtree.t;
  parents : (kind * int) list array;
      (** incoming x-dag edges of each x-node, by x-node id *)
  children : (kind * int) list array;  (** outgoing x-dag edges *)
  topo : int array;
      (** all x-node ids in a topological order of the x-dag, Root first *)
  tree_order : int array;
      (** x-node ids ordered children-before-parents w.r.t. the {e x-tree},
          refined so that same-element (self-edge) dependencies of the
          x-dag are respected; the engine resolves an element's matches in
          this order at end events *)
  by_tag : (string, int list) Hashtbl.t;
      (** tag -> x-node ids whose label is exactly that name *)
  wildcard_nodes : int list;  (** x-node ids with a wildcard label *)
  mutable key_cache : string option;  (** memoized {!key}; do not touch *)
}

val kind_of_axis : Ast.axis -> kind
(** The forward kind of a forward axis. @raise Invalid_argument on a
    backward axis (those are reversed, not mapped). *)

val of_xtree : Xtree.t -> t
(** @raise Unsatisfiable — see above. *)

val fingerprint : t -> string
(** Canonical structural serialization of the underlying x-tree (x-nodes
    in id order: label, incoming axis and parent id, output flag,
    attribute and text tests). The x-tree builder assigns dense ids
    deterministically, so two x-dags are structurally identical iff
    their fingerprints are equal. Interned symbols are {e not} part of
    the fingerprint: it survives {!Xaos_xml.Symbol.reset}. *)

val key : t -> string
(** Memoized digest of {!fingerprint} — the canonical equivalence-class
    key of a compiled disjunct, stable across documents and symbol-table
    generations. *)

val intern : t -> t
(** Hash-cons: return the canonical x-dag for this structure, so
    duplicate subscriptions share one compiled artifact. The table is
    bounded; past the cap the argument is returned unshared (keys stay
    valid regardless). *)

val intern_stats : unit -> int * int
(** [(table_size, hits)] of the hash-cons table, for observability. *)

val tag_of : t -> int -> string option
(** The element name an x-node looks for: [Some tag] for a named node
    test, [None] for Root and wildcard nodes. The static half of the
    looking-for set — {!Xaos_core.Engine.subscribe_interest} layers the
    dynamic (open-match driven) half on top. *)

val is_wildcard : t -> int -> bool
(** Whether the x-node carries a wildcard node test. *)

val tags : t -> string list
(** The distinct element names appearing as node tests — every tag this
    expression could ever look for (unordered). *)

val has_wildcard : t -> bool
(** Whether any x-node is a wildcard: such an expression can look for
    elements of any tag, so tag-keyed dispatch must route it through a
    wildcard bucket. *)

val candidates : t -> string -> int list
(** X-node ids whose label matches the given element tag (named nodes
    first, then wildcards); never includes Root. *)

val join_points : t -> int list
(** X-nodes with more than one incoming x-dag edge (paper, Section 4):
    shared by several sub-dags, the reason composition works on the x-tree
    rather than the x-dag. *)

val is_tree : t -> bool
(** No join points: the Rxp used no backward axis and the x-dag coincides
    with the x-tree (the simple case of Section 4). *)

val pp : Format.formatter -> t -> unit
