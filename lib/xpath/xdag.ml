type kind =
  | Kchild
  | Kdescendant
  | Kself
  | Kdescendant_or_self

exception Unsatisfiable

type t = {
  xtree : Xtree.t;
  parents : (kind * int) list array;
  children : (kind * int) list array;
  topo : int array;
  tree_order : int array;
  by_tag : (string, int list) Hashtbl.t;
  wildcard_nodes : int list;
  mutable key_cache : string option;
}

let kind_of_axis = function
  | Ast.Child -> Kchild
  | Ast.Descendant -> Kdescendant
  | Ast.Self -> Kself
  | Ast.Descendant_or_self -> Kdescendant_or_self
  | (Ast.Parent | Ast.Ancestor | Ast.Ancestor_or_self) as axis ->
    invalid_arg
      (Printf.sprintf "Xdag.kind_of_axis: backward axis %s"
         (Ast.axis_name axis))

(* Kahn's algorithm; a leftover node means a cycle, which can only arise
   from edge reversal (e.g. /parent::x) and always includes a strict
   containment edge, so the expression is unsatisfiable. *)
let topological_sort n children =
  let indegree = Array.make n 0 in
  Array.iter
    (List.iter (fun (_, target) -> indegree.(target) <- indegree.(target) + 1))
    children;
  let queue = Queue.create () in
  Array.iteri (fun id d -> if d = 0 then Queue.add id queue) indegree;
  let order = Array.make n (-1) in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    order.(!count) <- id;
    incr count;
    List.iter
      (fun (_, target) ->
        indegree.(target) <- indegree.(target) - 1;
        if indegree.(target) = 0 then Queue.add target queue)
      children.(id)
  done;
  if !count < n then raise Unsatisfiable;
  order

let of_xtree (xtree : Xtree.t) =
  let n = Xtree.size xtree in
  let parents = Array.make n [] in
  let children = Array.make n [] in
  let add_edge kind source target =
    children.(source) <- (kind, target) :: children.(source);
    parents.(target) <- (kind, source) :: parents.(target)
  in
  (* Rules 1 and 2: keep forward edges, reverse backward ones. *)
  Array.iter
    (fun (node : Xtree.xnode) ->
      List.iter
        (fun (axis, (child : Xtree.xnode)) ->
          match axis with
          | Ast.Child | Ast.Descendant | Ast.Self | Ast.Descendant_or_self ->
            add_edge (kind_of_axis axis) node.id child.id
          | Ast.Parent -> add_edge Kchild child.id node.id
          | Ast.Ancestor -> add_edge Kdescendant child.id node.id
          | Ast.Ancestor_or_self ->
            add_edge Kdescendant_or_self child.id node.id)
        node.children)
    xtree.nodes;
  (* Rule 3: connect orphaned x-nodes to Root with a descendant edge. *)
  Array.iter
    (fun (node : Xtree.xnode) ->
      if node.id <> xtree.root.id && parents.(node.id) = [] then
        add_edge Kdescendant xtree.root.id node.id)
    xtree.nodes;
  let topo = topological_sort n children in
  (* End events resolve an element's matches children-before-parents of
     the x-tree; ids increase from parent to child, so descending id order
     is exactly that, and it also respects same-element (Kself /
     or-self) dependencies, which always point from an x-tree parent to
     its child. *)
  let tree_order = Array.init n (fun i -> n - 1 - i) in
  let by_tag = Hashtbl.create 16 in
  let wildcard_nodes = ref [] in
  (* Iterate downward so the per-tag lists come out in ascending id order. *)
  for i = n - 1 downto 0 do
    match xtree.nodes.(i).label with
    | Xtree.Root -> ()
    | Xtree.Test (Ast.Name tag) ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt by_tag tag) in
      Hashtbl.replace by_tag tag (i :: existing)
    | Xtree.Test Ast.Wildcard -> wildcard_nodes := i :: !wildcard_nodes
  done;
  { xtree; parents; children; topo; tree_order; by_tag;
    wildcard_nodes = !wildcard_nodes; key_cache = None }

(* --- Structural fingerprinting and hash-consing ------------------------- *)

(* The x-dag is a pure function of its x-tree (edge reversal and the
   orphan rule are deterministic), and the x-tree is built from the AST
   with dense ids assigned parents-before-children in a deterministic
   order. Serializing the x-nodes in id order therefore yields a
   canonical string: two x-dags are structurally identical iff their
   serializations are equal. Symbols are deliberately NOT part of the
   fingerprint — the symbol table is reset between documents, and class
   keys must survive resets. *)
let fingerprint t =
  let buf = Buffer.create 256 in
  let str s =
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  in
  let axis_char = function
    | Ast.Child -> 'c'
    | Ast.Descendant -> 'd'
    | Ast.Parent -> 'p'
    | Ast.Ancestor -> 'a'
    | Ast.Self -> 's'
    | Ast.Descendant_or_self -> 'D'
    | Ast.Ancestor_or_self -> 'A'
  in
  Array.iter
    (fun (node : Xtree.xnode) ->
      Buffer.add_char buf '|';
      (match node.label with
       | Xtree.Root -> Buffer.add_char buf 'R'
       | Xtree.Test Ast.Wildcard -> Buffer.add_char buf 'W'
       | Xtree.Test (Ast.Name tag) -> Buffer.add_char buf 'N'; str tag);
      (match node.parent_edge with
       | None -> Buffer.add_char buf '^'
       | Some (axis, parent) ->
         Buffer.add_char buf (axis_char axis);
         Buffer.add_string buf (string_of_int parent.id));
      if node.output then Buffer.add_char buf '$';
      List.iter
        (fun (a : Ast.attr_test) ->
          Buffer.add_char buf '@';
          str a.attr_key;
          match a.attr_value with
          | None -> Buffer.add_char buf '?'
          | Some v -> Buffer.add_char buf '='; str v)
        node.attrs;
      List.iter
        (fun (tt : Ast.text_test) ->
          Buffer.add_char buf
            (match tt.text_op with
             | Ast.Text_equals -> 'T'
             | Ast.Text_contains -> 't');
          str tt.text_value)
        node.texts)
    t.xtree.nodes;
  Buffer.contents buf

let key t =
  match t.key_cache with
  | Some k -> k
  | None ->
    let k = Digest.to_hex (Digest.string (fingerprint t)) in
    t.key_cache <- Some k;
    k

(* Hash-cons table: one canonical x-dag per structural key, so duplicate
   subscriptions share compiled artifacts. Bounded so an adversarial
   churn of distinct queries cannot grow it without limit — beyond the
   cap, dags are simply not shared (keys remain valid either way). *)
let intern_cap = 4096
let intern_table : (string, t) Hashtbl.t = Hashtbl.create 64
let intern_hits = ref 0

let intern t =
  let k = key t in
  match Hashtbl.find_opt intern_table k with
  | Some canonical -> incr intern_hits; canonical
  | None ->
    if Hashtbl.length intern_table < intern_cap then
      Hashtbl.add intern_table k t;
    t

let intern_stats () = (Hashtbl.length intern_table, !intern_hits)

let tag_of t v =
  match t.xtree.nodes.(v).label with
  | Xtree.Test (Ast.Name tag) -> Some tag
  | Xtree.Root | Xtree.Test Ast.Wildcard -> None

let is_wildcard t v =
  match t.xtree.nodes.(v).label with
  | Xtree.Test Ast.Wildcard -> true
  | Xtree.Root | Xtree.Test (Ast.Name _) -> false

let tags t = Hashtbl.fold (fun tag _ acc -> tag :: acc) t.by_tag []

let has_wildcard t = t.wildcard_nodes <> []

let candidates t tag =
  let named = Option.value ~default:[] (Hashtbl.find_opt t.by_tag tag) in
  if Ast.test_matches Ast.Wildcard tag then named @ t.wildcard_nodes
  else named

let join_points t =
  let result = ref [] in
  for i = Array.length t.parents - 1 downto 0 do
    match t.parents.(i) with
    | _ :: _ :: _ -> result := i :: !result
    | [] | [ _ ] -> ()
  done;
  !result

let is_tree t = join_points t = []

let pp_kind ppf = function
  | Kchild -> Format.pp_print_string ppf "child"
  | Kdescendant -> Format.pp_print_string ppf "descendant"
  | Kself -> Format.pp_print_string ppf "self"
  | Kdescendant_or_self -> Format.pp_print_string ppf "descendant-or-self"

let pp ppf t =
  Array.iter
    (fun (node : Xtree.xnode) ->
      Format.fprintf ppf "%d %a:" node.id Xtree.pp_label node.label;
      List.iter
        (fun (kind, target) ->
          Format.fprintf ppf " -%a-> %d" pp_kind kind target)
        t.children.(node.id);
      Format.pp_print_newline ppf ())
    t.xtree.nodes
