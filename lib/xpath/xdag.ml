type kind =
  | Kchild
  | Kdescendant
  | Kself
  | Kdescendant_or_self

exception Unsatisfiable

type t = {
  xtree : Xtree.t;
  parents : (kind * int) list array;
  children : (kind * int) list array;
  topo : int array;
  tree_order : int array;
  by_tag : (string, int list) Hashtbl.t;
  wildcard_nodes : int list;
}

let kind_of_axis = function
  | Ast.Child -> Kchild
  | Ast.Descendant -> Kdescendant
  | Ast.Self -> Kself
  | Ast.Descendant_or_self -> Kdescendant_or_self
  | (Ast.Parent | Ast.Ancestor | Ast.Ancestor_or_self) as axis ->
    invalid_arg
      (Printf.sprintf "Xdag.kind_of_axis: backward axis %s"
         (Ast.axis_name axis))

(* Kahn's algorithm; a leftover node means a cycle, which can only arise
   from edge reversal (e.g. /parent::x) and always includes a strict
   containment edge, so the expression is unsatisfiable. *)
let topological_sort n children =
  let indegree = Array.make n 0 in
  Array.iter
    (List.iter (fun (_, target) -> indegree.(target) <- indegree.(target) + 1))
    children;
  let queue = Queue.create () in
  Array.iteri (fun id d -> if d = 0 then Queue.add id queue) indegree;
  let order = Array.make n (-1) in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    order.(!count) <- id;
    incr count;
    List.iter
      (fun (_, target) ->
        indegree.(target) <- indegree.(target) - 1;
        if indegree.(target) = 0 then Queue.add target queue)
      children.(id)
  done;
  if !count < n then raise Unsatisfiable;
  order

let of_xtree (xtree : Xtree.t) =
  let n = Xtree.size xtree in
  let parents = Array.make n [] in
  let children = Array.make n [] in
  let add_edge kind source target =
    children.(source) <- (kind, target) :: children.(source);
    parents.(target) <- (kind, source) :: parents.(target)
  in
  (* Rules 1 and 2: keep forward edges, reverse backward ones. *)
  Array.iter
    (fun (node : Xtree.xnode) ->
      List.iter
        (fun (axis, (child : Xtree.xnode)) ->
          match axis with
          | Ast.Child | Ast.Descendant | Ast.Self | Ast.Descendant_or_self ->
            add_edge (kind_of_axis axis) node.id child.id
          | Ast.Parent -> add_edge Kchild child.id node.id
          | Ast.Ancestor -> add_edge Kdescendant child.id node.id
          | Ast.Ancestor_or_self ->
            add_edge Kdescendant_or_self child.id node.id)
        node.children)
    xtree.nodes;
  (* Rule 3: connect orphaned x-nodes to Root with a descendant edge. *)
  Array.iter
    (fun (node : Xtree.xnode) ->
      if node.id <> xtree.root.id && parents.(node.id) = [] then
        add_edge Kdescendant xtree.root.id node.id)
    xtree.nodes;
  let topo = topological_sort n children in
  (* End events resolve an element's matches children-before-parents of
     the x-tree; ids increase from parent to child, so descending id order
     is exactly that, and it also respects same-element (Kself /
     or-self) dependencies, which always point from an x-tree parent to
     its child. *)
  let tree_order = Array.init n (fun i -> n - 1 - i) in
  let by_tag = Hashtbl.create 16 in
  let wildcard_nodes = ref [] in
  (* Iterate downward so the per-tag lists come out in ascending id order. *)
  for i = n - 1 downto 0 do
    match xtree.nodes.(i).label with
    | Xtree.Root -> ()
    | Xtree.Test (Ast.Name tag) ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt by_tag tag) in
      Hashtbl.replace by_tag tag (i :: existing)
    | Xtree.Test Ast.Wildcard -> wildcard_nodes := i :: !wildcard_nodes
  done;
  { xtree; parents; children; topo; tree_order; by_tag;
    wildcard_nodes = !wildcard_nodes }

let tag_of t v =
  match t.xtree.nodes.(v).label with
  | Xtree.Test (Ast.Name tag) -> Some tag
  | Xtree.Root | Xtree.Test Ast.Wildcard -> None

let is_wildcard t v =
  match t.xtree.nodes.(v).label with
  | Xtree.Test Ast.Wildcard -> true
  | Xtree.Root | Xtree.Test (Ast.Name _) -> false

let tags t = Hashtbl.fold (fun tag _ acc -> tag :: acc) t.by_tag []

let has_wildcard t = t.wildcard_nodes <> []

let candidates t tag =
  let named = Option.value ~default:[] (Hashtbl.find_opt t.by_tag tag) in
  if Ast.test_matches Ast.Wildcard tag then named @ t.wildcard_nodes
  else named

let join_points t =
  let result = ref [] in
  for i = Array.length t.parents - 1 downto 0 do
    match t.parents.(i) with
    | _ :: _ :: _ -> result := i :: !result
    | [] | [ _ ] -> ()
  done;
  !result

let is_tree t = join_points t = []

let pp_kind ppf = function
  | Kchild -> Format.pp_print_string ppf "child"
  | Kdescendant -> Format.pp_print_string ppf "descendant"
  | Kself -> Format.pp_print_string ppf "self"
  | Kdescendant_or_self -> Format.pp_print_string ppf "descendant-or-self"

let pp ppf t =
  Array.iter
    (fun (node : Xtree.xnode) ->
      Format.fprintf ppf "%d %a:" node.id Xtree.pp_label node.label;
      List.iter
        (fun (kind, target) ->
          Format.fprintf ppf " -%a-> %d" pp_kind kind target)
        t.children.(node.id);
      Format.pp_print_newline ppf ())
    t.xtree.nodes
