(** A YFilter-style shared automaton for {e forward-only, linear} path
    expressions — the class of streaming system the paper improves upon
    (Diao et al.'s YFilter, and XFilter before it, are the "related work"
    comparators; both are restricted to forward axes).

    All subscriptions are combined into one prefix-sharing automaton
    (YFilter's NFA); a document is filtered in a single pass with a stack
    of active state sets. Shared prefixes are evaluated once no matter how
    many subscriptions contain them — the scalability trick of those
    systems, reproduced here so the repository contains a faithful member
    of the class χαος is compared against.

    Supported subscriptions: absolute location paths whose steps use only
    [child] and [descendant] axes with name or wildcard tests and no
    predicates (XFilter's "simple XPath location path expressions").
    Everything else — backward axes above all — is rejected by {!build}:
    that rejection is precisely the gap the χαος algorithm closes. *)

type query_id = int
(** Index of the subscription in the list passed to {!build}. *)

val supported : Xaos_xpath.Ast.path -> bool
(** Whether the expression is in the supported class. *)

type t
(** The shared automaton. Immutable. *)

val build : Xaos_xpath.Ast.path list -> (t, string) result
(** Combine subscriptions; fails naming the first unsupported one. *)

val query_count : t -> int

val state_count : t -> int
(** Number of automaton nodes — with shared prefixes, typically far fewer
    than the total number of steps. *)

(** {1 Filtering} *)

type run

val start : t -> run

val feed : run -> Xaos_xml.Event.t -> unit

val matches : run -> query_id list
(** Subscriptions with at least one match so far (sorted, distinct).
    Usable mid-stream: filtering decisions are made eagerly. *)

val match_counts : run -> int array
(** Per-subscription number of matching elements so far. *)

val run_string : t -> string -> query_id list
(** One-shot filtering of a document. *)
