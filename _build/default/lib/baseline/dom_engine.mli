(** Xalan-like DOM XPath engine — the paper's comparator (Section 6).

    The whole document is materialized as a {!Xaos_xml.Dom.doc} before
    evaluation, and each location step is evaluated by traversing the
    requested axis from {e every} context node, filtering by node test and
    predicates. Like Xalan's [SimpleXPathAPI], the engine performs no
    cross-node memoization, so elements may be visited many times — e.g.
    [/descendant::x/ancestor::y] revisits each [x]'s ancestor chain — with
    worst-case time O(D{^n}) for document size D and n steps (Gottlob et
    al., cited in the paper's introduction). This is precisely the
    inefficiency χαος removes, and the bimodal behaviour Figure 7
    attributes to the baseline.

    Results are node sets: document order, duplicate-free. Semantics agree
    with {!Xaos_core.Semantics} on the supported fragment (differentially
    tested). [$] marks are ignored, as Xalan has no multi-output notion. *)

type counters = {
  mutable nodes_visited : int;
      (** axis-traversal visits, counting repeats — the "unnecessary
          traversals" the paper measures indirectly *)
  mutable predicate_evaluations : int;
}

val eval :
  ?dedup:bool -> Xaos_xml.Dom.doc -> Xaos_xpath.Ast.path -> Xaos_core.Item.t list
(** Evaluate over a prebuilt tree. With [dedup = false] (the default, and
    the faithful model of Xalan's behaviour) duplicate context nodes are
    {e not} merged between steps, so subtrees are re-traversed from every
    context that reaches them; [dedup = true] is the improved variant that
    sorts and merges the node set after every step. Both agree on the
    result (a sorted, duplicate-free node set). *)

val eval_with_counters :
  ?dedup:bool ->
  Xaos_xml.Dom.doc ->
  Xaos_xpath.Ast.path ->
  Xaos_core.Item.t list * counters

val eval_string : string -> Xaos_xpath.Ast.path -> Xaos_core.Item.t list
(** Parse (building the full tree, as Xalan does) and evaluate.
    @raise Xaos_xml.Sax.Error on ill-formed XML. *)

val eval_query : Xaos_xml.Dom.doc -> string -> (Xaos_core.Item.t list, string) result
(** Convenience: parse the expression too. *)
