lib/baseline/yfilter.mli: Xaos_xml Xaos_xpath
