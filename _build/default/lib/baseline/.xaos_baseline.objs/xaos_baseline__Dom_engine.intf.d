lib/baseline/dom_engine.mli: Xaos_core Xaos_xml Xaos_xpath
