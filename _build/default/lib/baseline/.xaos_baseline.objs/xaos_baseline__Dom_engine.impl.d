lib/baseline/dom_engine.ml: Int List Seq String Xaos_core Xaos_xml Xaos_xpath
