lib/baseline/yfilter.ml: Array Hashtbl List Printf Xaos_xml Xaos_xpath
