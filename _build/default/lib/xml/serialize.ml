let escape_into buf ~attr s =
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' when not attr -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' when attr -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let escape_text s =
  let buf = Buffer.create (String.length s + 8) in
  escape_into buf ~attr:false s;
  Buffer.contents buf

let escape_attribute s =
  let buf = Buffer.create (String.length s + 8) in
  escape_into buf ~attr:true s;
  Buffer.contents buf

let start_tag_to_buffer buf name attributes =
  Buffer.add_char buf '<';
  Buffer.add_string buf name;
  List.iter
    (fun { Event.attr_name; attr_value } ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf attr_name;
      Buffer.add_string buf "=\"";
      escape_into buf ~attr:true attr_value;
      Buffer.add_char buf '"')
    attributes;
  Buffer.add_char buf '>'

let event_to_buffer buf = function
  | Event.Start_element { name; attributes; _ } ->
    start_tag_to_buffer buf name attributes
  | Event.End_element { name; _ } ->
    Buffer.add_string buf "</";
    Buffer.add_string buf name;
    Buffer.add_char buf '>'
  | Event.Text s -> escape_into buf ~attr:false s
  | Event.Comment s ->
    Buffer.add_string buf "<!--";
    Buffer.add_string buf s;
    Buffer.add_string buf "-->"
  | Event.Processing_instruction { target; content } ->
    Buffer.add_string buf "<?";
    Buffer.add_string buf target;
    if String.length content > 0 then begin
      Buffer.add_char buf ' ';
      Buffer.add_string buf content
    end;
    Buffer.add_string buf "?>"

let doc_to_buffer buf doc =
  Dom.iter_events (event_to_buffer buf) doc

let to_string doc =
  let buf = Buffer.create 4096 in
  doc_to_buffer buf doc;
  Buffer.contents buf

let to_channel oc doc =
  let buf = Buffer.create 65536 in
  Dom.iter_events
    (fun ev ->
      event_to_buffer buf ev;
      if Buffer.length buf >= 65536 then begin
        Buffer.output_buffer oc buf;
        Buffer.clear buf
      end)
    doc;
  Buffer.output_buffer oc buf

let events_to_string events =
  let buf = Buffer.create 4096 in
  List.iter (event_to_buffer buf) events;
  Buffer.contents buf
