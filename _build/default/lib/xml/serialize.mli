(** XML output: escaping, event-stream and tree serialization.

    Serialization inverts parsing: [Sax.events_of_string (to_string doc)]
    yields the same element structure (text may be re-coalesced). Used by
    the workload generators to materialize benchmark documents and by the
    tests for roundtrip properties. *)

val escape_text : string -> string
(** Escape ['<'], ['>'] and ['&'] for character-data context. *)

val escape_attribute : string -> string
(** Escape ['<'], ['&'] and ['"'] for double-quoted attribute context. *)

val event_to_buffer : Buffer.t -> Event.t -> unit
(** Append the markup of one event. Start and end events produce start and
    end tags; no self-closing form is emitted. *)

val doc_to_buffer : Buffer.t -> Dom.doc -> unit
(** Serialize the document below the virtual root. *)

val to_string : Dom.doc -> string

val to_channel : out_channel -> Dom.doc -> unit

val events_to_string : Event.t list -> string
