type position = {
  line : int;
  column : int;
  offset : int;
}

exception Error of position * string

(* Parsing proceeds through three phases: the prolog (before the root
   element), the content of the root element, and the epilog (after it).
   [stack] holds the open element names; its length is the current depth. *)
type phase =
  | Prolog
  | Content
  | Epilog
  | Done

type t = {
  refill : bytes -> int -> int;
  buf : bytes;
  mutable pos : int;  (* next unread byte in [buf] *)
  mutable len : int;  (* number of valid bytes in [buf] *)
  mutable eof : bool;
  mutable line : int;
  mutable column : int;
  mutable offset : int;
  mutable stack : string list;
  mutable depth : int;
  mutable phase : phase;
  mutable pending : Event.t list;  (* queued events, e.g. End after <a/> *)
  scratch : Buffer.t;
  scratch2 : Buffer.t;
}

let buffer_size = 65536

let make refill =
  {
    refill;
    buf = Bytes.create buffer_size;
    pos = 0;
    len = 0;
    eof = false;
    line = 1;
    column = 1;
    offset = 0;
    stack = [];
    depth = 0;
    phase = Prolog;
    pending = [];
    scratch = Buffer.create 256;
    scratch2 = Buffer.create 64;
  }

let of_function refill = make refill

let of_channel ic = make (fun buf n -> input ic buf 0 n)

let of_string s =
  let consumed = ref 0 in
  let refill buf n =
    let remaining = String.length s - !consumed in
    let count = min n remaining in
    Bytes.blit_string s !consumed buf 0 count;
    consumed := !consumed + count;
    count
  in
  make refill

let position p = { line = p.line; column = p.column; offset = p.offset }

let depth p = p.depth

let pp_position ppf ({ line; column; offset } : position) =
  Format.fprintf ppf "line %d, column %d (byte %d)" line column offset

let error p msg = raise (Error (position p, msg))

let errorf p fmt = Format.kasprintf (fun msg -> error p msg) fmt

(* ------------------------------------------------------------------ *)
(* Character-level input                                               *)
(* ------------------------------------------------------------------ *)

let ensure p =
  if p.pos >= p.len && not p.eof then begin
    let count = p.refill p.buf buffer_size in
    p.pos <- 0;
    p.len <- count;
    if count = 0 then p.eof <- true
  end

(* Peek at the next byte without consuming it; '\000' at end of input
   (NUL is not legal in XML, so the sentinel is unambiguous). *)
let peek p =
  ensure p;
  if p.pos >= p.len then '\000' else Bytes.unsafe_get p.buf p.pos

let advance p =
  ensure p;
  if p.pos < p.len then begin
    let c = Bytes.unsafe_get p.buf p.pos in
    p.pos <- p.pos + 1;
    p.offset <- p.offset + 1;
    if Char.equal c '\n' then begin
      p.line <- p.line + 1;
      p.column <- 1
    end
    else p.column <- p.column + 1
  end

let next_char p =
  let c = peek p in
  if Char.equal c '\000' then error p "unexpected end of input";
  advance p;
  c

let expect p expected =
  let c = next_char p in
  if not (Char.equal c expected) then
    errorf p "expected %C but found %C" expected c

let expect_string p s = String.iter (fun c -> expect p c) s

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space p =
  while is_space (peek p) do
    advance p
  done

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | c -> Char.code c >= 0x80 (* permissive: any non-ASCII byte *)

let is_name_char c =
  is_name_start c || (match c with '0' .. '9' | '-' | '.' -> true | _ -> false)

let read_name p =
  let c = peek p in
  if not (is_name_start c) then errorf p "expected a name but found %C" c;
  Buffer.clear p.scratch2;
  while is_name_char (peek p) do
    Buffer.add_char p.scratch2 (next_char p)
  done;
  Buffer.contents p.scratch2

(* ------------------------------------------------------------------ *)
(* References                                                          *)
(* ------------------------------------------------------------------ *)

(* Add the UTF-8 encoding of the Unicode scalar value [u] to [buf]. *)
let add_utf8 p buf u =
  if u < 0 || u > 0x10FFFF || (u >= 0xD800 && u <= 0xDFFF) then
    errorf p "invalid character reference U+%X" u;
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex_value p = function
  | '0' .. '9' as c -> Char.code c - Char.code '0'
  | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
  | c -> errorf p "invalid hexadecimal digit %C" c

(* Read a reference after the '&' has been consumed, appending the
   replacement text to [buf]. *)
let read_reference p buf =
  if Char.equal (peek p) '#' then begin
    advance p;
    let value = ref 0 in
    let digits = ref 0 in
    let hex = Char.equal (peek p) 'x' in
    if hex then advance p;
    let rec loop () =
      match peek p with
      | ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') as c
        when hex || (c >= '0' && c <= '9') ->
        value := (!value * if hex then 16 else 10) + hex_value p c;
        incr digits;
        advance p;
        loop ()
      | _ -> ()
    in
    loop ();
    if !digits = 0 then error p "empty character reference";
    expect p ';';
    add_utf8 p buf !value
  end
  else begin
    let name = read_name p in
    expect p ';';
    match name with
    | "lt" -> Buffer.add_char buf '<'
    | "gt" -> Buffer.add_char buf '>'
    | "amp" -> Buffer.add_char buf '&'
    | "apos" -> Buffer.add_char buf '\''
    | "quot" -> Buffer.add_char buf '"'
    | other -> errorf p "unknown entity reference &%s;" other
  end

(* ------------------------------------------------------------------ *)
(* Markup                                                              *)
(* ------------------------------------------------------------------ *)

let read_attribute_value p =
  let quote = next_char p in
  if not (Char.equal quote '"' || Char.equal quote '\'') then
    error p "attribute value must be quoted";
  Buffer.clear p.scratch;
  let rec loop () =
    let c = peek p in
    if Char.equal c quote then advance p
    else
      match c with
      | '\000' -> error p "unexpected end of input in attribute value"
      | '<' -> error p "'<' is not allowed in attribute values"
      | '&' ->
        advance p;
        read_reference p p.scratch;
        loop ()
      | c ->
        advance p;
        Buffer.add_char p.scratch c;
        loop ()
  in
  loop ();
  Buffer.contents p.scratch

let read_attributes p =
  let rec loop acc =
    skip_space p;
    match peek p with
    | '>' | '/' -> List.rev acc
    | c when is_name_start c ->
      let attr_name = read_name p in
      skip_space p;
      expect p '=';
      skip_space p;
      let attr_value = read_attribute_value p in
      if List.exists (fun a -> String.equal a.Event.attr_name attr_name) acc
      then errorf p "duplicate attribute %s" attr_name;
      loop ({ Event.attr_name; attr_value } :: acc)
    | c -> errorf p "unexpected %C in tag" c
  in
  loop []

(* "<!-" consumed; consume the second '-' and the comment body. A literal
   "--" inside a comment is ill-formed per the XML spec. *)
let read_comment p =
  expect p '-';
  Buffer.clear p.scratch;
  let rec loop () =
    let c = next_char p in
    if Char.equal c '-' && Char.equal (peek p) '-' then begin
      advance p;
      expect p '>'
    end
    else begin
      Buffer.add_char p.scratch c;
      loop ()
    end
  in
  loop ();
  Event.Comment (Buffer.contents p.scratch)

(* "<![" consumed; expect "CDATA[" then scan to "]]>". [brackets] counts the
   run of ']' characters read but not yet emitted: the final two belong to
   the terminator, any excess is literal content ("]]]>" => "]" ^ end). *)
let read_cdata p =
  expect_string p "CDATA[";
  Buffer.clear p.scratch;
  let rec loop brackets =
    match next_char p with
    | ']' -> loop (brackets + 1)
    | '>' when brackets >= 2 ->
      for _ = 1 to brackets - 2 do
        Buffer.add_char p.scratch ']'
      done
    | c ->
      for _ = 1 to brackets do
        Buffer.add_char p.scratch ']'
      done;
      Buffer.add_char p.scratch c;
      loop 0
  in
  loop 0;
  Event.Text (Buffer.contents p.scratch)

(* "<?" consumed. *)
let read_pi p =
  let target = read_name p in
  skip_space p;
  Buffer.clear p.scratch;
  let rec loop () =
    let c = next_char p in
    if Char.equal c '?' && Char.equal (peek p) '>' then advance p
    else begin
      Buffer.add_char p.scratch c;
      loop ()
    end
  in
  loop ();
  (target, Buffer.contents p.scratch)

(* "<!D" dispatched; skip the whole declaration, including an internal
   subset in square brackets and quoted system/public literals. *)
let skip_doctype p =
  expect_string p "DOCTYPE";
  let rec loop bracket_depth =
    match next_char p with
    | '[' -> loop (bracket_depth + 1)
    | ']' -> loop (bracket_depth - 1)
    | '>' when bracket_depth = 0 -> ()
    | '"' ->
      let rec str () = if not (Char.equal (next_char p) '"') then str () in
      str ();
      loop bracket_depth
    | '\'' ->
      let rec str () = if not (Char.equal (next_char p) '\'') then str () in
      str ();
      loop bracket_depth
    | _ -> loop bracket_depth
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let read_text p =
  Buffer.clear p.scratch;
  let rec loop () =
    match peek p with
    | '<' | '\000' -> ()
    | '&' ->
      advance p;
      read_reference p p.scratch;
      loop ()
    | c ->
      advance p;
      Buffer.add_char p.scratch c;
      loop ()
  in
  loop ();
  Buffer.contents p.scratch

(* The '<' and the first name character are still unread. *)
let start_element p =
  let name = read_name p in
  let attributes = read_attributes p in
  skip_space p;
  match next_char p with
  | '>' ->
    p.stack <- name :: p.stack;
    p.depth <- p.depth + 1;
    if p.phase = Prolog then p.phase <- Content;
    Event.Start_element { name; attributes; level = p.depth }
  | '/' ->
    expect p '>';
    (* Self-closing: emit Start now, queue the matching End. Depth is left
       unchanged since the element opens and closes atomically. *)
    let level = p.depth + 1 in
    p.pending <- Event.End_element { name; level } :: p.pending;
    if p.phase = Prolog then p.phase <- Epilog;
    Event.Start_element { name; attributes; level }
  | c -> errorf p "unexpected %C at end of start tag" c

let end_element p =
  let name = read_name p in
  skip_space p;
  expect p '>';
  match p.stack with
  | [] -> errorf p "unmatched end tag </%s>" name
  | top :: rest ->
    if not (String.equal top name) then
      errorf p "mismatched end tag: expected </%s> but found </%s>" top name;
    let level = p.depth in
    p.stack <- rest;
    p.depth <- p.depth - 1;
    if p.depth = 0 then p.phase <- Epilog;
    Event.End_element { name; level }

let rec next p =
  match p.pending with
  | ev :: rest ->
    p.pending <- rest;
    Some ev
  | [] -> (
    match p.phase with
    | Done -> None
    | Epilog ->
      skip_space p;
      (match peek p with
      | '\000' ->
        p.phase <- Done;
        None
      | '<' -> (
        advance p;
        match peek p with
        | '!' -> (
          advance p;
          match peek p with
          | '-' ->
            advance p;
            Some (read_comment p)
          | c -> errorf p "unexpected declaration %C after the root element" c)
        | '?' ->
          advance p;
          let target, content = read_pi p in
          Some (Event.Processing_instruction { target; content })
        | _ -> error p "only one root element is allowed")
      | _ -> error p "text content is not allowed after the root element")
    | Prolog -> (
      skip_space p;
      match peek p with
      | '\000' -> error p "empty document: no root element"
      | '<' -> (
        advance p;
        match peek p with
        | '!' -> (
          advance p;
          match peek p with
          | '-' ->
            advance p;
            Some (read_comment p)
          | 'D' ->
            skip_doctype p;
            next p
          | c -> errorf p "unexpected declaration starting with %C" c)
        | '?' ->
          advance p;
          let target, content = read_pi p in
          if String.equal (String.lowercase_ascii target) "xml" then
            (* XML declaration: consume silently. *)
            next p
          else Some (Event.Processing_instruction { target; content })
        | '/' -> error p "end tag before any start tag"
        | _ -> Some (start_element p))
      | _ -> error p "text content is not allowed before the root element")
    | Content -> (
      match peek p with
      | '\000' ->
        errorf p "unexpected end of input: %d element(s) still open" p.depth
      | '<' -> (
        advance p;
        match peek p with
        | '/' ->
          advance p;
          Some (end_element p)
        | '!' -> (
          advance p;
          match peek p with
          | '-' ->
            advance p;
            Some (read_comment p)
          | '[' ->
            advance p;
            (match read_cdata p with
            | Event.Text "" -> next p
            | other -> Some other)
          | c -> errorf p "unexpected declaration starting with %C" c)
        | '?' ->
          advance p;
          let target, content = read_pi p in
          Some (Event.Processing_instruction { target; content })
        | _ -> Some (start_element p))
      | _ ->
        let text = read_text p in
        if String.length text = 0 then next p else Some (Event.Text text)))

let iter f p =
  let rec loop () =
    match next p with
    | None -> ()
    | Some ev ->
      f ev;
      loop ()
  in
  loop ()

let fold f init p =
  let rec loop acc =
    match next p with
    | None -> acc
    | Some ev -> loop (f acc ev)
  in
  loop init

let events_of_string s =
  let p = of_string s in
  List.rev (fold (fun acc ev -> ev :: acc) [] p)
