(** Streaming (SAX-style) XML parser.

    This is the event source of the paper's Figure 1. The parser is a pull
    parser: {!next} returns the next {!Event.t} of the depth-first pre-order
    traversal of the document, without ever materializing the tree. Memory
    use is bounded by the input buffer plus the open-element stack, so
    arbitrarily large documents can be processed.

    Supported XML: elements, attributes, character data, entity references
    ([&lt; &gt; &amp; &apos; &quot;]) and character references ([&#n;] /
    [&#xh;]), CDATA sections, comments, processing instructions, the XML
    declaration, and (skipped) DOCTYPE declarations including an internal
    subset. Namespaces are not interpreted: a qualified name is just a tag
    string, as in the paper's data model. DTD-defined entities are not
    expanded.

    Well-formedness is enforced: one root element, properly nested matching
    tags, quoted attribute values, no duplicate attributes, no ['<'] in
    attribute values, no content after the root element. *)

type position = {
  line : int;  (** 1-based *)
  column : int;  (** 1-based, in bytes *)
  offset : int;  (** 0-based byte offset *)
}

exception Error of position * string
(** Raised by {!next} on ill-formed input. *)

type t
(** A parser over one document. *)

val of_string : string -> t

val of_channel : in_channel -> t

val of_function : (bytes -> int -> int) -> t
(** [of_function refill]: [refill buf n] must write at most [n] bytes into
    [buf] starting at offset 0 and return how many were written; [0] means
    end of input. *)

val next : t -> Event.t option
(** The next event, or [None] once the document has been fully consumed.
    After [None], subsequent calls keep returning [None].
    @raise Error on ill-formed input. *)

val position : t -> position
(** Current position, for error reporting and progress tracking. *)

val depth : t -> int
(** Number of currently open elements. The level of the next start event
    would be [depth t + 1]. *)

val iter : (Event.t -> unit) -> t -> unit
(** Push-style driver: applies the callback to every remaining event. *)

val fold : ('a -> Event.t -> 'a) -> 'a -> t -> 'a

val events_of_string : string -> Event.t list
(** Parse a complete document held in memory. Convenient for tests. *)

val pp_position : Format.formatter -> position -> unit
