lib/xml/serialize.mli: Buffer Dom Event
