lib/xml/dom.mli: Event Format Sax Seq
