lib/xml/dom.ml: Buffer Event Format List Sax Seq
