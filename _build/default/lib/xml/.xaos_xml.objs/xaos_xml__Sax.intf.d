lib/xml/sax.mli: Event Format
