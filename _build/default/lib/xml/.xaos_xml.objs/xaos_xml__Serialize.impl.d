lib/xml/serialize.ml: Buffer Dom Event List String
