lib/xml/event.ml: Format List String
