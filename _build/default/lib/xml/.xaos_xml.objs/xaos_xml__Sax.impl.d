lib/xml/sax.ml: Buffer Bytes Char Event Format List String
