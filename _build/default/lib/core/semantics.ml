module Ast = Xaos_xpath.Ast
module Xtree = Xaos_xpath.Xtree
module Dom = Xaos_xml.Dom

let consistent axis (d1 : Dom.element) (d2 : Dom.element) =
  match axis with
  | Ast.Child -> (match d2.parent with Some p -> p == d1 | None -> false)
  | Ast.Descendant -> Dom.is_ancestor d1 d2
  | Ast.Parent -> (match d1.parent with Some p -> p == d2 | None -> false)
  | Ast.Ancestor -> Dom.is_ancestor d2 d1
  | Ast.Self -> d1 == d2
  | Ast.Descendant_or_self -> d1 == d2 || Dom.is_ancestor d1 d2
  | Ast.Ancestor_or_self -> d1 == d2 || Dom.is_ancestor d2 d1

let axis_elements _doc axis (d : Dom.element) =
  match axis with
  | Ast.Child -> Dom.element_children d
  | Ast.Descendant -> List.of_seq (Dom.descendants d)
  | Ast.Parent -> (match d.parent with Some p -> [ p ] | None -> [])
  | Ast.Ancestor -> List.sort (fun (a : Dom.element) b -> Int.compare a.id b.id) (Dom.ancestors d)
  | Ast.Self -> [ d ]
  | Ast.Descendant_or_self -> List.of_seq (Dom.self_and_descendants d)
  | Ast.Ancestor_or_self ->
    List.sort
      (fun (a : Dom.element) b -> Int.compare a.id b.id)
      (d :: Dom.ancestors d)

(* All total matchings at x-node [v] mapping [v] to [d], as sorted
   assignment lists. Memoized on (x-node, element id): the same subproblem
   recurs whenever an element is reachable over several axis paths. *)
let matchings_at (xtree : Xtree.t) doc =
  let memo = Hashtbl.create 256 in
  let rec at (v : Xtree.xnode) (d : Dom.element) =
    let key = (v.id, d.id) in
    match Hashtbl.find_opt memo key with
    | Some ms -> ms
    | None ->
      let find key =
        List.find_map
          (fun { Xaos_xml.Event.attr_name; attr_value } ->
            if String.equal attr_name key then Some attr_value else None)
          d.attributes
      in
      let ms =
        if
          not
            (Xtree.label_matches v.label d.tag
            && Xtree.attrs_match v ~find
            && List.for_all
                 (fun test ->
                   Ast.text_test_matches test (Dom.text_content d))
                 v.texts)
        then []
        else
          List.fold_left
            (fun acc (axis, (w : Xtree.xnode)) ->
              match acc with
              | [] -> []
              | acc ->
                let sub =
                  List.concat_map (at w) (axis_elements doc axis d)
                in
                List.concat_map
                  (fun partial -> List.map (fun s -> merge partial s) sub)
                  acc)
            [ [ (v.id, d) ] ]
            v.children
      in
      Hashtbl.add memo key ms;
      ms
  (* Assignments cover disjoint x-node sets (distinct subtrees), so a
     plain keyed merge keeps them sorted. *)
  and merge a b =
    match a, b with
    | [], t | t, [] -> t
    | (ka, va) :: ta, (kb, vb) :: tb ->
      if ka < kb then (ka, va) :: merge ta b
      else if kb < ka then (kb, vb) :: merge a tb
      else (ka, va) :: merge ta tb
  in
  at xtree.root doc.Dom.root

let total_matchings xtree doc =
  List.sort_uniq
    (fun a b -> compare (List.map (fun (k, (d : Dom.element)) -> (k, d.id)) a)
        (List.map (fun (k, (d : Dom.element)) -> (k, d.id)) b))
    (matchings_at xtree doc)

let eval (xtree : Xtree.t) doc =
  let out =
    match xtree.outputs with
    | o :: _ -> o.id
    | [] -> invalid_arg "Semantics.eval: x-tree has no output"
  in
  matchings_at xtree doc
  |> List.filter_map (fun m ->
         Option.map Item.of_element (List.assoc_opt out m))
  |> Item.sort_dedup

let eval_tuples (xtree : Xtree.t) doc =
  let outputs = List.map (fun (o : Xtree.xnode) -> o.id) xtree.outputs in
  matchings_at xtree doc
  |> List.filter_map (fun m ->
         let items =
           List.map (fun o -> Option.map Item.of_element (List.assoc_opt o m)) outputs
         in
         if List.for_all Option.is_some items then
           Some (Array.of_list (List.map Option.get items))
         else None)
  |> List.sort_uniq compare

(* Unsatisfiable disjuncts (e.g. /parent::x) need no special casing: the
   enumeration finds no witness and contributes nothing. *)
let eval_path path doc =
  Xaos_xpath.Dnf.expand path
  |> List.concat_map (fun disjunct ->
         eval (Xaos_xpath.Xtree.of_path disjunct) doc)
  |> Item.sort_dedup
