(** Executable matching semantics (paper, Section 3.3) — the reference
    oracle for the test suite.

    A matching for x-tree [T] is a partial map from x-nodes to document
    elements whose mapped vertices satisfy their node tests and whose
    mapped edges satisfy their axis relations; a document element is in
    the result of the Rxp iff some {e total} matching at Root maps the
    output x-node to it. This module enumerates total matchings directly
    over a DOM tree by structural recursion — exponential in the number of
    matchings and intended for small test documents only. The streaming
    engine and the DOM baseline are both checked against it. *)

val consistent :
  Xaos_xpath.Ast.axis -> Xaos_xml.Dom.element -> Xaos_xml.Dom.element -> bool
(** [consistent axis d1 d2]: does the pair satisfy the axis relation,
    i.e. is [d2] in [axis(d1)]? *)

val axis_elements :
  Xaos_xml.Dom.doc ->
  Xaos_xpath.Ast.axis ->
  Xaos_xml.Dom.element ->
  Xaos_xml.Dom.element list
(** The elements reached from a context element over an axis, in document
    order. The virtual root is reachable only over backward axes. *)

val total_matchings :
  Xaos_xpath.Xtree.t ->
  Xaos_xml.Dom.doc ->
  (int * Xaos_xml.Dom.element) list list
(** All total matchings at Root: each is an assignment of every x-node id
    to a document element, sorted by x-node id. Duplicate-free. *)

val eval : Xaos_xpath.Xtree.t -> Xaos_xml.Dom.doc -> Item.t list
(** Output projection of {!total_matchings} for the (first) output x-node:
    document order, duplicate-free. *)

val eval_tuples :
  Xaos_xpath.Xtree.t -> Xaos_xml.Dom.doc -> Item.t array list
(** Multi-output projection, deduplicated, sorted. *)

val eval_path : Xaos_xpath.Ast.path -> Xaos_xml.Dom.doc -> Item.t list
(** [or]-expansion followed by {!eval} on each disjunct, results unioned.
    Unsatisfiable disjuncts contribute nothing. *)
