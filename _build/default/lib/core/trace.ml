type step = {
  index : int;
  event : Xaos_xml.Event.t;
  matches : (int * Item.t) list;
  looking_for : (int * Engine.level_requirement) list;
  propagations : int;
  undos : int;
  discarded : bool;
}

type t = {
  steps : step list;
  result : Result_set.t;
  stats : Stats.t;
}

let run ?config dag events =
  let engine = Engine.create ?config dag in
  let steps = ref [] in
  let index = ref 1 (* the paper's step 1 is the virtual Root start *) in
  List.iter
    (fun event ->
      match event with
      | Xaos_xml.Event.Start_element _ ->
        let stats = Engine.stats engine in
        let props0 = stats.Stats.propagations and undos0 = stats.Stats.undos in
        Engine.feed engine event;
        incr index;
        let matches = Engine.frame_matches engine in
        steps :=
          {
            index = !index;
            event;
            matches;
            looking_for = Engine.looking_for engine;
            propagations = stats.Stats.propagations - props0;
            undos = stats.Stats.undos - undos0;
            discarded = matches = [];
          }
          :: !steps
      | Xaos_xml.Event.End_element _ ->
        (* the structures about to be resolved belong to the innermost
           open element: capture before feeding *)
        let matches = Engine.frame_matches engine in
        let stats = Engine.stats engine in
        let props0 = stats.Stats.propagations and undos0 = stats.Stats.undos in
        Engine.feed engine event;
        incr index;
        steps :=
          {
            index = !index;
            event;
            matches;
            looking_for = Engine.looking_for engine;
            propagations = stats.Stats.propagations - props0;
            undos = stats.Stats.undos - undos0;
            discarded = matches = [];
          }
          :: !steps
      | Xaos_xml.Event.Text _ | Xaos_xml.Event.Comment _
      | Xaos_xml.Event.Processing_instruction _ ->
        Engine.feed engine event)
    events;
  let result = Engine.finish engine in
  { steps = List.rev !steps; result; stats = Engine.stats engine }

let run_string ?config dag input =
  run ?config dag (Xaos_xml.Sax.events_of_string input)

let label_of (xtree : Xaos_xpath.Xtree.t) v =
  Format.asprintf "%a" Xaos_xpath.Xtree.pp_label
    xtree.Xaos_xpath.Xtree.nodes.(v).Xaos_xpath.Xtree.label

let pp_looking_for ~xtree ppf entries =
  Format.pp_print_char ppf '{';
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (v, req) ->
      match req with
      | Engine.Exact l -> Format.fprintf ppf "(%s,%d)" (label_of xtree v) l
      | Engine.Any -> Format.fprintf ppf "(%s,inf)" (label_of xtree v))
    ppf entries;
  Format.pp_print_char ppf '}'

let pp_step ~xtree ppf step =
  let event = Format.asprintf "%a" Xaos_xml.Event.pp step.event in
  let matches =
    if step.matches = [] then
      match step.event with
      | Xaos_xml.Event.Start_element _ -> "discarded"
      | _ -> "-"
    else
      String.concat ","
        (List.map (fun (v, _) -> label_of xtree v) step.matches)
  in
  let activity =
    match step.propagations, step.undos with
    | 0, 0 -> ""
    | p, 0 -> Format.sprintf "  +%d prop" p
    | 0, u -> Format.sprintf "  -%d undo" u
    | p, u -> Format.sprintf "  +%d prop -%d undo" p u
  in
  Format.fprintf ppf "%3d  %-12s %-12s %a%s" step.index event matches
    (pp_looking_for ~xtree) step.looking_for activity

let pp ~xtree ppf t =
  Format.fprintf ppf "%3s  %-12s %-12s %s@." "#" "event" "matches"
    "looking-for set after the event";
  List.iter (fun step -> Format.fprintf ppf "%a@." (pp_step ~xtree) step) t.steps;
  Format.fprintf ppf "result: %a@." Result_set.pp t.result;
  Format.fprintf ppf "stats:  %a@." Stats.pp t.stats
