type t = {
  items : Item.t list;
  tuples : Item.t array list option;
  matching_count : int option;
}

let empty = { items = []; tuples = None; matching_count = None }

let union a b =
  {
    items = Item.sort_dedup (a.items @ b.items);
    tuples =
      (match a.tuples, b.tuples with
      | None, t | t, None -> t
      | Some x, Some y -> Some (List.sort_uniq compare (x @ y)));
    matching_count =
      (match a.matching_count, b.matching_count with
      | Some x, Some y -> Some (x + y)
      | _, _ -> None);
  }

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Item.pp)
    t.items;
  match t.tuples with
  | None -> ()
  | Some tuples ->
    Format.fprintf ppf " tuples: %d" (List.length tuples)
