(** Results of evaluating one expression on one document. *)

type t = {
  items : Item.t list;
      (** the selected elements, in document order, duplicate-free; for a
          multi-output expression these are the elements of the first
          output node *)
  tuples : Item.t array list option;
      (** [Some _] for [$]-marked multi-output expressions (Section 5.3):
          one array per distinct result tuple, indexed by mark order;
          [None] for ordinary single-output expressions *)
  matching_count : int option;
      (** number of total matchings at Root (the paper's Figure 4 counts
          4 for the running example); [None] when the engine ran with the
          counter optimization or eagerly, which discard the information *)
}

val empty : t

val union : t -> t -> t
(** Result union across [or]-disjuncts: items are merged in document
    order; tuple lists are concatenated and deduplicated; matching counts
    are summed when both present (disjuncts may overlap, so the sum is an
    upper bound and is dropped unless both sides carry counts). *)

val pp : Format.formatter -> t -> unit
