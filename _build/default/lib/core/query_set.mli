(** Evaluate many compiled queries over one document in a single pass —
    the publish/subscribe arrangement of the filtering systems the paper
    compares against (XFilter/YFilter), with χαος's extra capability:
    subscriptions may use backward axes.

    Every query gets its own engines (no cross-query sharing of automaton
    states as in YFilter — an avenue the paper leaves open); what is
    shared is the single parse of the document, which in practice
    dominates the cost of filtering small messages. *)

type t
(** An immutable set of named compiled queries. *)

val of_queries : (string * Query.t) list -> t
(** Build from (name, query) pairs. Names must be unique.
    @raise Invalid_argument on a duplicate name. *)

val compile :
  ?config:Engine.config -> (string * string) list -> (t, string) result
(** Compile (name, expression) pairs; fails with the first offending
    expression's error, prefixed by its name. *)

val names : t -> string list

val size : t -> int

(** {1 Matching} *)

type outcome = {
  query_name : string;
  items : Item.t list;  (** document order, duplicate-free *)
}

val run_events : t -> Xaos_xml.Event.t list -> outcome list
(** One pass; outcomes in query order, including empty ones. *)

val run_sax : t -> Xaos_xml.Sax.t -> outcome list

val run_string : t -> string -> outcome list

val run_doc : t -> Xaos_xml.Dom.doc -> outcome list

val matching_names : outcome list -> string list
(** Names of the queries with at least one result — the routing decision
    of a filtering broker. *)
