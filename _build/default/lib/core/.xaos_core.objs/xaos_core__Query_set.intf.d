lib/core/query_set.mli: Engine Item Query Xaos_xml
