lib/core/query.mli: Engine Item Result_set Stats Xaos_xml Xaos_xpath
