lib/core/result_set.mli: Format Item
