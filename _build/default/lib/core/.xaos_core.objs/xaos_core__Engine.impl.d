lib/core/engine.ml: Array Buffer Hashtbl Int Item List Matching Option Printf Result_set Stats String Xaos_xml Xaos_xpath
