lib/core/item.mli: Format Xaos_xml
