lib/core/query.ml: Engine Fun List Result_set Stats Xaos_xml Xaos_xpath
