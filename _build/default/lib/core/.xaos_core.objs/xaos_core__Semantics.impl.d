lib/core/semantics.ml: Array Hashtbl Int Item List Option String Xaos_xml Xaos_xpath
