lib/core/engine.mli: Item Result_set Stats Xaos_xml Xaos_xpath
