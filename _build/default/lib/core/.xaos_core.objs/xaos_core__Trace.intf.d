lib/core/trace.mli: Engine Format Item Result_set Stats Xaos_xml Xaos_xpath
