lib/core/semantics.mli: Item Xaos_xml Xaos_xpath
