lib/core/trace.ml: Array Engine Format Item List Result_set Stats String Xaos_xml Xaos_xpath
