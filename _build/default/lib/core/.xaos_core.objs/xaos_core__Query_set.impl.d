lib/core/query_set.ml: Hashtbl Item List Printf Query Result_set Xaos_xml
