lib/core/matching.ml: Array Format Hashtbl Item List Option Stats
