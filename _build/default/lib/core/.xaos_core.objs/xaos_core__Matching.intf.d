lib/core/matching.mli: Format Item Stats
