lib/core/item.ml: Array Format Int String Xaos_xml
