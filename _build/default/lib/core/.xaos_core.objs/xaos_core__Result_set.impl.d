lib/core/result_set.ml: Format Item List
