(** Execution counters of the streaming engine.

    [elements_discarded] / [elements_total] is the quantity reported in the
    paper's Table 3: the fraction of document elements filtered out as not
    relevant (and therefore never stored). *)

type t = {
  mutable elements_total : int;
      (** document elements seen (start events), virtual root excluded *)
  mutable elements_stored : int;
      (** elements found relevant for at least one x-node *)
  mutable elements_discarded : int;  (** the rest *)
  mutable structures_created : int;  (** matching structures allocated *)
  mutable propagations : int;
      (** placements of a matching into a submatching slot, both confirmed
          pushes and optimistic pulls *)
  mutable undos : int;
      (** placements removed by the optimistic-propagation cleanup *)
  mutable max_depth : int;  (** deepest open-element nesting reached *)
}

val create : unit -> t

val discarded_fraction : t -> float
(** [elements_discarded / elements_total]; [0.] on an empty document. *)

val add : t -> t -> t
(** Pointwise sum ([max] for [max_depth]): aggregates the per-disjunct
    engines of an [or] query. *)

val pp : Format.formatter -> t -> unit
