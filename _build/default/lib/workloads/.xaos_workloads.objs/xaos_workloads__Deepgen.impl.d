lib/workloads/deepgen.ml: Array Buffer Emitter List Prng Xaos_xml
