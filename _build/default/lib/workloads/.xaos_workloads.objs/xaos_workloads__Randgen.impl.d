lib/workloads/randgen.ml: Array Buffer Char Emitter List Printf Prng Xaos_xml Xaos_xpath
