lib/workloads/randgen.mli: Xaos_xml Xaos_xpath
