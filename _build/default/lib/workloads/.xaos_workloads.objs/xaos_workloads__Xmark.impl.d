lib/workloads/xmark.ml: Array Buffer Emitter Fun List Printf Prng String Xaos_xml
