lib/workloads/emitter.ml: List String Xaos_xml
