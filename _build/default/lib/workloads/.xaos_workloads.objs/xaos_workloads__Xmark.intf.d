lib/workloads/xmark.mli: Xaos_xml
