lib/workloads/prng.mli:
