lib/workloads/emitter.mli: Xaos_xml
