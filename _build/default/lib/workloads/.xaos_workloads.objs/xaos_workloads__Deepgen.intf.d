lib/workloads/deepgen.mli: Xaos_xml
