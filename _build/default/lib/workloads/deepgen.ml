type config = {
  seed : int;
  target_elements : int;
  max_depth : int;
}

let config ?(seed = 7) ?(max_depth = 120) target_elements =
  if max_depth < 2 then invalid_arg "Deepgen.config: max_depth must be >= 2";
  { seed; target_elements; max_depth }

let tags = [| "s"; "np"; "vp"; "pp"; "n"; "v"; "det"; "adj" |]

(* Phrase-structure-ish productions: nonterminals expand into sequences
   that recurse through [s]/[np]/[vp]/[pp]; leaves carry a word. *)
let productions tag =
  match tag with
  | "s" -> [| [ "np"; "vp" ]; [ "s"; "pp" ]; [ "vp" ] |]
  | "np" -> [| [ "det"; "n" ]; [ "np"; "pp" ]; [ "adj"; "np" ]; [ "n" ] |]
  | "vp" -> [| [ "v"; "np" ]; [ "vp"; "pp" ]; [ "v"; "s" ]; [ "v" ] |]
  | "pp" -> [| [ "det"; "np" ]; [ "pp"; "np" ] |]
  | _ -> [||]

let words =
  [| "time"; "flies"; "like"; "an"; "arrow"; "fruit"; "banana"; "old";
     "man"; "boat"; "saw"; "telescope"; "park"; "walked"; "quick" |]

let generate cfg sink =
  let rng = Prng.create cfg.seed in
  let em = Emitter.create sink in
  (* The grammar's expected branching exceeds 1, so recursion is bounded
     both by [max_depth] and by a global element budget: once either is
     hit, nodes become leaves. Depth-first order means the leftmost spine
     still reaches [max_depth] long before the budget runs out. *)
  let budget = ref cfg.target_elements in
  let rec node tag depth =
    Emitter.element em tag (fun () ->
        decr budget;
        let expansions = productions tag in
        if Array.length expansions = 0 || depth >= cfg.max_depth || !budget <= 0
        then Emitter.text em (Prng.pick rng words)
        else begin
          let expansion = Prng.pick rng expansions in
          List.iter (fun child -> node child (depth + 1)) expansion
        end)
  in
  Emitter.element em "treebank" (fun () ->
      while Emitter.element_count em < cfg.target_elements do
        node "s" 1
      done);
  Emitter.element_count em

let to_string cfg =
  let buf = Buffer.create (cfg.target_elements * 12) in
  let _n = generate cfg (Xaos_xml.Serialize.event_to_buffer buf) in
  Buffer.contents buf

let to_doc cfg =
  let events = ref [] in
  let _n = generate cfg (fun ev -> events := ev :: !events) in
  Xaos_xml.Dom.of_events (List.rev !events)
