(** Random XPath expressions with matching documents — the paper's custom
    generator (Section 6.2, Figures 6 and 7).

    The paper: "We use a custom XPath generator to generate a set of
    random XPath expressions (of size 6 — six node tests in the
    expression), and for each XPath expression, we generate a random XML
    document based on the XPath expression. The generated XML document has
    the characteristic that, for large document sizes, the XPath
    expression will have many matches (and near matches)."

    Mechanism: a random document {e fragment} is generated first; a size-6
    pattern is then sampled by walking the fragment with random axis moves
    (child / descendant / parent / ancestor, possibly branching into
    predicates), which guarantees the derived expression matches the
    fragment. The benchmark document is a stream of verbatim fragment
    instances (matches), single-tag mutations (near matches) and random
    noise subtrees, nested at varying depths, so match count grows
    linearly with document size. *)

type fragment = {
  tag : string;
  children : fragment list;
}

type t = {
  query : Xaos_xpath.Ast.path;
      (** size-[size] expression; uses the paper's four axes *)
  fragment : fragment;  (** a witness: embedding it yields a match *)
}

val generate_spec : ?size:int -> ?alphabet:int -> seed:int -> unit -> t
(** A (query, fragment) pair. [size] is the number of node tests
    (default 6, as in the paper); [alphabet] the number of distinct tags
    in fragments (default 5). Deterministic in all parameters. *)

val document :
  t -> seed:int -> elements:int -> (Xaos_xml.Event.t -> unit) -> int
(** Stream a document of at least [elements] elements built around the
    spec's fragment; returns the exact element count. *)

val document_string : t -> seed:int -> elements:int -> string

val document_doc : t -> seed:int -> elements:int -> Xaos_xml.Dom.doc

val fragment_string : fragment -> string
(** Serialization of one fragment instance (for debugging). *)
