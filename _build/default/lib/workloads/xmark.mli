(** XMark-like auction-site document generator (Section 6.1 workload).

    The real XMark generator (Schmidt et al., CWI) is a C program that is
    not available in this environment; this module is a deterministic
    synthetic reimplementation of its document {e shape} — the auction
    site with regions/items, categories whose descriptions contain
    recursively nested [parlist]/[listitem] structures, people, and open
    and closed auctions — with entity counts in the original's proportions
    (at scale 1.0: 1000 categories, 21750 items, 25500 persons, 12000 open
    and 9750 closed auctions).

    What the paper's experiments need from XMark is preserved:
    - [listitem] elements occur in the descriptions of items, auctions
      {e and} categories, but only the ones under a [category] have a
      [category] ancestor, so the Figure 5 query
      [//listitem/ancestor::category//name] stores only a tiny fraction of
      the document (Table 3 reports < 0.2 %);
    - document size grows linearly with the scale factor;
    - nesting is recursive ([parlist] inside [listitem] inside [parlist]),
      exercising the engine on recursive documents.

    Generation is streaming: events are pushed to a sink and the document
    need never exist in memory, so multi-hundred-MB inputs can be produced
    and consumed in constant space. *)

type config = {
  scale : float;  (** XMark scale factor; 1.0 ≈ 10{^6}-element document *)
  seed : int;
}

val config : ?seed:int -> float -> config
(** [config scale] with the default seed 20030310. *)

type counts = {
  categories : int;
  items : int;
  persons : int;
  open_auctions : int;
  closed_auctions : int;
}

val counts : config -> counts
(** The planned top-level entity counts for a scale factor. *)

val generate : config -> (Xaos_xml.Event.t -> unit) -> int
(** Push the document's events to the sink; returns the number of
    elements generated. Deterministic in [config]. *)

val to_string : config -> string
(** Serialize to an XML string (document must fit in memory). *)

val to_file : config -> string -> int
(** Write the XML to a file; returns the element count. *)

val to_doc : config -> Xaos_xml.Dom.doc
(** Materialize as a DOM tree (for the baseline engine). *)

val paper_query : string
(** The Figure 5 / Table 3 expression:
    [//listitem/ancestor::category//name]. *)
