module Ast = Xaos_xpath.Ast

type fragment = {
  tag : string;
  children : fragment list;
}

type t = {
  query : Ast.path;
  fragment : fragment;
}

(* ------------------------------------------------------------------ *)
(* Fragments                                                           *)
(* ------------------------------------------------------------------ *)

let tag_of_index i = Printf.sprintf "%c" (Char.chr (Char.code 'a' + i))

let rec random_fragment rng ~alphabet ~budget ~depth =
  let tag = tag_of_index (Prng.int rng alphabet) in
  let children =
    if depth >= 5 || !budget <= 0 then []
    else begin
      let n = Prng.int rng 4 in
      List.init n (fun _ -> ())
      |> List.filter_map (fun () ->
             if !budget > 0 then begin
               decr budget;
               Some (random_fragment rng ~alphabet ~budget ~depth:(depth + 1))
             end
             else None)
    end
  in
  { tag; children }

(* Indexed view of a fragment for the pattern walk. *)
type fnode = {
  index : int;
  ftag : string;
  parent : int;  (* -1 for the fragment root *)
  depth : int;
  mutable kids : int list;
}

let index_fragment fragment =
  let nodes = ref [] in
  let count = ref 0 in
  let rec walk parent depth f =
    let index = !count in
    incr count;
    let node = { index; ftag = f.tag; parent; depth; kids = [] } in
    nodes := node :: !nodes;
    let kid_ids = List.map (walk index (depth + 1)) f.children in
    node.kids <- kid_ids;
    index
  in
  ignore (walk (-1) 0 fragment);
  let arr = Array.make !count (List.hd !nodes) in
  List.iter (fun n -> arr.(n.index) <- n) !nodes;
  arr

let descendants_of arr i =
  let acc = ref [] in
  let rec walk j =
    List.iter
      (fun k ->
        acc := k :: !acc;
        walk k)
      arr.(j).kids
  in
  walk i;
  !acc

let ancestors_of arr i =
  let acc = ref [] in
  let rec walk j =
    let p = arr.(j).parent in
    if p >= 0 then begin
      acc := p :: !acc;
      walk p
    end
  in
  walk i;
  !acc

(* ------------------------------------------------------------------ *)
(* Pattern sampling                                                    *)
(* ------------------------------------------------------------------ *)

type pattern = {
  pnode : int;  (* fragment node this pattern node is anchored to *)
  in_axis : Ast.axis;
  mutable branches : pattern list;
}

(* The paper's four axes. Recursive axes are weighted heavier: XPath in
   the wild (and the paper's own examples) is dominated by [//] and
   [ancestor::] steps, and those are exactly the expressions on which the
   engines differ. *)
let axis_pool =
  [| Ast.Child; Ast.Descendant; Ast.Descendant; Ast.Descendant; Ast.Parent;
     Ast.Ancestor; Ast.Ancestor |]

(* One random axis move from fragment node [i]; None if the axis has no
   target there (e.g. child of a leaf). *)
let random_move rng arr i =
  match Prng.pick rng axis_pool with
  | Ast.Child -> (
    match arr.(i).kids with
    | [] -> None
    | kids -> Some (Ast.Child, List.nth kids (Prng.int rng (List.length kids))))
  | Ast.Descendant -> (
    match descendants_of arr i with
    | [] -> None
    | ds -> Some (Ast.Descendant, List.nth ds (Prng.int rng (List.length ds))))
  | Ast.Parent ->
    if arr.(i).parent >= 0 then Some (Ast.Parent, arr.(i).parent) else None
  | Ast.Ancestor -> (
    match ancestors_of arr i with
    | [] -> None
    | ancs -> Some (Ast.Ancestor, List.nth ancs (Prng.int rng (List.length ancs))))
  | Ast.Self | Ast.Descendant_or_self | Ast.Ancestor_or_self -> None

let sample_pattern rng arr ~size =
  let start = Prng.int rng (Array.length arr) in
  let root = { pnode = start; in_axis = Ast.Descendant; branches = [] } in
  let all = ref [ root ] in
  let remaining = ref (size - 1) in
  let attempts = ref 0 in
  while !remaining > 0 && !attempts < 1000 do
    incr attempts;
    (* extend mostly from the most recent node; sometimes branch off an
       earlier one, which turns into a predicate *)
    let source =
      match !all with
      | last :: _ when not (Prng.chance rng 0.25) -> last
      | nodes -> List.nth nodes (Prng.int rng (List.length nodes))
    in
    match random_move rng arr source.pnode with
    | None -> ()
    | Some (axis, target) ->
      let node = { pnode = target; in_axis = axis; branches = [] } in
      source.branches <- source.branches @ [ node ];
      all := node :: !all;
      decr remaining
  done;
  root

(* The pattern tree is an x-tree shape; turn it back into an expression:
   the main path threads through each node's last branch, earlier branches
   become predicates. *)
let rec path_of_pattern arr root =
  { Ast.absolute = true; steps = steps_of arr root }

and steps_of arr (p : pattern) =
  let step_of branches =
    {
      Ast.axis = p.in_axis;
      test = Ast.Name arr.(p.pnode).ftag;
      predicates =
        List.map (fun b -> Ast.Path { Ast.absolute = false; steps = steps_of arr b }) branches;
      marked = false;
    }
  in
  match List.rev p.branches with
  | [] -> [ step_of [] ]
  | continuation :: preds -> step_of (List.rev preds) :: steps_of arr continuation

let generate_spec ?(size = 6) ?(alphabet = 5) ~seed () =
  let rng = Prng.create seed in
  let rec try_once attempt =
    let budget = ref (Prng.range rng 8 14) in
    let fragment = random_fragment rng ~alphabet ~budget ~depth:0 in
    let arr = index_fragment fragment in
    let pattern = sample_pattern rng arr ~size in
    let query = path_of_pattern arr pattern in
    (* tiny fragments can fail to host a size-6 walk; retry *)
    if Ast.step_count query = size || attempt > 50 then { query; fragment }
    else try_once (attempt + 1)
  in
  try_once 0

(* ------------------------------------------------------------------ *)
(* Documents                                                           *)
(* ------------------------------------------------------------------ *)

(* Emit a fragment instance; with small probability a full instance is
   re-embedded inside a node, producing nested (overlapping) matches —
   this is what makes descendant/ancestor steps expensive for a
   per-context-node DOM engine, which rescans the shared subtrees from
   every match. *)
let rec emit_instance em rng ~recursion f =
  Emitter.element em f.tag (fun () ->
      List.iter (emit_instance em rng ~recursion) f.children;
      if recursion > 0 && Prng.chance rng 0.1 then
        emit_instance em rng ~recursion:(recursion - 1) f)

(* A near match: one node's tag replaced by a tag outside the alphabet. *)
let rec mutate rng f =
  if Prng.chance rng 0.3 || f.children = [] then { f with tag = "zz" }
  else begin
    let i = Prng.int rng (List.length f.children) in
    {
      f with
      children = List.mapi (fun j c -> if j = i then mutate rng c else c) f.children;
    }
  end

let rec emit_noise em rng ~alphabet ~depth =
  let tag = tag_of_index (Prng.int rng alphabet) in
  Emitter.element em tag (fun () ->
      if depth < 10 then
        for _ = 1 to Prng.int rng 3 do
          emit_noise em rng ~alphabet ~depth:(depth + 1)
        done)

let emit_fragment em f =
  let rng = Prng.create 0 in
  emit_instance em rng ~recursion:0 f

let document t ~seed ~elements sink =
  let rng = Prng.create seed in
  let em = Emitter.create sink in
  let alphabet = 5 in
  Emitter.element em "doc" (fun () ->
      while Emitter.element_count em < elements do
        (* instances are nested under noise chains of varying depth so
           matches occur at many levels of the tree *)
        let rec nest levels body =
          if levels = 0 then body ()
          else
            Emitter.element em (tag_of_index (Prng.int rng alphabet)) (fun () ->
                nest (levels - 1) body)
        in
        let choice = Prng.int rng 10 in
        if choice < 4 then
          nest (Prng.int rng 12) (fun () ->
              emit_instance em rng ~recursion:3 t.fragment)
        else if choice < 7 then
          nest (Prng.int rng 12) (fun () ->
              emit_instance em rng ~recursion:1 (mutate rng t.fragment))
        else emit_noise em rng ~alphabet ~depth:0
      done);
  Emitter.element_count em

let document_string t ~seed ~elements =
  let buf = Buffer.create (elements * 8) in
  let _count =
    document t ~seed ~elements (Xaos_xml.Serialize.event_to_buffer buf)
  in
  Buffer.contents buf

let document_doc t ~seed ~elements =
  let events = ref [] in
  let _count = document t ~seed ~elements (fun ev -> events := ev :: !events) in
  Xaos_xml.Dom.of_events (List.rev !events)

let fragment_string fragment =
  let buf = Buffer.create 256 in
  let em = Emitter.create (Xaos_xml.Serialize.event_to_buffer buf) in
  emit_fragment em fragment;
  Buffer.contents buf
