type config = {
  scale : float;
  seed : int;
}

let config ?(seed = 20030310) scale = { scale; seed }

type counts = {
  categories : int;
  items : int;
  persons : int;
  open_auctions : int;
  closed_auctions : int;
}

(* Entity counts at scale 1.0 follow the original XMark generator. *)
let counts { scale; _ } =
  let at base = max 1 (int_of_float (float_of_int base *. scale)) in
  {
    categories = at 1000;
    items = at 21750;
    persons = at 25500;
    open_auctions = at 12000;
    closed_auctions = at 9750;
  }

let paper_query = "//listitem/ancestor::category//name"

let words =
  [|
    "auction"; "bidder"; "price"; "reserve"; "lot"; "gallery"; "estate";
    "vintage"; "rare"; "mint"; "condition"; "shipping"; "payment"; "credit";
    "silver"; "golden"; "antique"; "modern"; "classic"; "original"; "signed";
    "limited"; "edition"; "collector"; "museum"; "quality"; "restored";
    "working"; "boxed"; "sealed"; "graded"; "certified"; "authentic";
    "provenance"; "catalogue"; "appraisal"; "estimate"; "hammer"; "premium";
    "consignment"; "viewing"; "preview"; "closing"; "opening"; "increment";
    "porcelain"; "ceramic"; "bronze"; "marble"; "walnut"; "mahogany"; "oak";
    "silk"; "linen"; "leather"; "crystal"; "amber"; "ivory"; "pearl"; "jade";
  |]

let regions =
  [| "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" |]

let sentence rng n =
  let buf = Buffer.create (n * 8) in
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf (Prng.pick rng words)
  done;
  Buffer.contents buf

let date rng =
  Printf.sprintf "%02d/%02d/%04d" (Prng.range rng 1 12) (Prng.range rng 1 28)
    (Prng.range rng 1998 2003)

let time rng =
  Printf.sprintf "%02d:%02d:%02d" (Prng.range rng 0 23) (Prng.range rng 0 59)
    (Prng.range rng 0 59)

let person_name rng =
  Printf.sprintf "%s %s"
    (String.capitalize_ascii (Prng.pick rng words))
    (String.capitalize_ascii (Prng.pick rng words))

(* Recursive parlist/listitem nesting — the structure the Figure 5 query
   targets. Depth is bounded as in the original generator. *)
let rec parlist em rng depth =
  Emitter.element em "parlist" (fun () ->
      for _ = 1 to Prng.range rng 2 5 do
        Emitter.element em "listitem" (fun () ->
            if depth < 2 && Prng.chance rng 0.2 then parlist em rng (depth + 1)
            else Emitter.leaf em "text" (sentence rng (Prng.range rng 4 12)))
      done)

let description em rng =
  Emitter.element em "description" (fun () ->
      if Prng.chance rng 0.3 then parlist em rng 0
      else Emitter.leaf em "text" (sentence rng (Prng.range rng 8 30)))

let category em rng index =
  Emitter.element em "category"
    ~attrs:[ ("id", Printf.sprintf "category%d" index) ]
    (fun () ->
      Emitter.leaf em "name" (sentence rng 2);
      description em rng)

let item em rng counts index =
  Emitter.element em "item"
    ~attrs:[ ("id", Printf.sprintf "item%d" index) ]
    (fun () ->
      Emitter.leaf em "location" (Prng.pick rng regions);
      Emitter.leaf em "quantity" (string_of_int (Prng.range rng 1 10));
      Emitter.leaf em "name" (sentence rng 3);
      Emitter.element em "payment" (fun () ->
          Emitter.text em "Cash, Creditcard");
      description em rng;
      Emitter.element em "shipping" (fun () ->
          Emitter.text em "Will ship internationally");
      for _ = 1 to Prng.range rng 1 3 do
        Emitter.leaf em "incategory"
          ~attrs:
            [ ("category",
               Printf.sprintf "category%d" (Prng.int rng counts.categories)) ]
          ""
      done;
      Emitter.element em "mailbox" (fun () ->
          for _ = 1 to Prng.int rng 3 do
            Emitter.element em "mail" (fun () ->
                Emitter.leaf em "from" (person_name rng);
                Emitter.leaf em "to" (person_name rng);
                Emitter.leaf em "date" (date rng);
                Emitter.leaf em "text" (sentence rng (Prng.range rng 5 20)))
          done))

let person em rng counts index =
  ignore counts;
  Emitter.element em "person"
    ~attrs:[ ("id", Printf.sprintf "person%d" index) ]
    (fun () ->
      Emitter.leaf em "name" (person_name rng);
      Emitter.leaf em "emailaddress"
        (Printf.sprintf "mailto:%s@%s.example" (Prng.pick rng words)
           (Prng.pick rng words));
      if Prng.chance rng 0.5 then
        Emitter.leaf em "phone"
          (Printf.sprintf "+%d (%d) %d" (Prng.range rng 1 99)
             (Prng.range rng 100 999) (Prng.range rng 1000000 9999999));
      if Prng.chance rng 0.4 then
        Emitter.element em "address" (fun () ->
            Emitter.leaf em "street"
              (Printf.sprintf "%d %s St" (Prng.range rng 1 99)
                 (String.capitalize_ascii (Prng.pick rng words)));
            Emitter.leaf em "city" (String.capitalize_ascii (Prng.pick rng words));
            Emitter.leaf em "country" "United States";
            Emitter.leaf em "zipcode" (string_of_int (Prng.range rng 10000 99999)));
      if Prng.chance rng 0.3 then
        Emitter.leaf em "creditcard"
          (Printf.sprintf "%d %d %d %d" (Prng.range rng 1000 9999)
             (Prng.range rng 1000 9999) (Prng.range rng 1000 9999)
             (Prng.range rng 1000 9999));
      Emitter.element em "watches" (fun () ->
          for _ = 1 to Prng.int rng 3 do
            Emitter.leaf em "watch"
              ~attrs:
                [ ("open_auction",
                   Printf.sprintf "open_auction%d" (Prng.int rng 1000)) ]
              ""
          done))

let open_auction em rng counts index =
  Emitter.element em "open_auction"
    ~attrs:[ ("id", Printf.sprintf "open_auction%d" index) ]
    (fun () ->
      Emitter.leaf em "initial"
        (Printf.sprintf "%d.%02d" (Prng.range rng 1 300) (Prng.range rng 0 99));
      for _ = 1 to Prng.int rng 6 do
        Emitter.element em "bidder" (fun () ->
            Emitter.leaf em "date" (date rng);
            Emitter.leaf em "time" (time rng);
            Emitter.leaf em "personref"
              ~attrs:
                [ ("person",
                   Printf.sprintf "person%d" (Prng.int rng counts.persons)) ]
              "";
            Emitter.leaf em "increase"
              (Printf.sprintf "%d.%02d" (Prng.range rng 1 20)
                 (Prng.range rng 0 99)))
      done;
      Emitter.leaf em "current"
        (Printf.sprintf "%d.%02d" (Prng.range rng 1 500) (Prng.range rng 0 99));
      Emitter.leaf em "itemref"
        ~attrs:
          [ ("item", Printf.sprintf "item%d" (Prng.int rng counts.items)) ]
        "";
      Emitter.leaf em "seller"
        ~attrs:
          [ ("person", Printf.sprintf "person%d" (Prng.int rng counts.persons)) ]
        "";
      Emitter.element em "annotation" (fun () ->
          Emitter.leaf em "author" (person_name rng);
          description em rng;
          Emitter.leaf em "happiness" (string_of_int (Prng.range rng 1 10)));
      Emitter.leaf em "quantity" (string_of_int (Prng.range rng 1 10));
      Emitter.leaf em "type" "Regular";
      Emitter.element em "interval" (fun () ->
          Emitter.leaf em "start" (date rng);
          Emitter.leaf em "end" (date rng)))

let closed_auction em rng counts index =
  ignore index;
  Emitter.element em "closed_auction" (fun () ->
      Emitter.leaf em "seller"
        ~attrs:
          [ ("person", Printf.sprintf "person%d" (Prng.int rng counts.persons)) ]
        "";
      Emitter.leaf em "buyer"
        ~attrs:
          [ ("person", Printf.sprintf "person%d" (Prng.int rng counts.persons)) ]
        "";
      Emitter.leaf em "itemref"
        ~attrs:
          [ ("item", Printf.sprintf "item%d" (Prng.int rng counts.items)) ]
        "";
      Emitter.leaf em "price"
        (Printf.sprintf "%d.%02d" (Prng.range rng 1 500) (Prng.range rng 0 99));
      Emitter.leaf em "date" (date rng);
      Emitter.leaf em "quantity" (string_of_int (Prng.range rng 1 10));
      Emitter.leaf em "type" "Regular";
      Emitter.element em "annotation" (fun () ->
          Emitter.leaf em "author" (person_name rng);
          description em rng))

let generate cfg sink =
  let rng = Prng.create cfg.seed in
  let em = Emitter.create sink in
  let c = counts cfg in
  Emitter.element em "site" (fun () ->
      Emitter.element em "regions" (fun () ->
          let per_region = max 1 (c.items / Array.length regions) in
          Array.iteri
            (fun r region ->
              Emitter.element em region (fun () ->
                  for i = 0 to per_region - 1 do
                    item em rng c ((r * per_region) + i)
                  done))
            regions);
      Emitter.element em "categories" (fun () ->
          for i = 0 to c.categories - 1 do
            category em rng i
          done);
      Emitter.element em "catgraph" (fun () ->
          for _ = 1 to c.categories do
            Emitter.leaf em "edge"
              ~attrs:
                [ ("from", Printf.sprintf "category%d" (Prng.int rng c.categories));
                  ("to", Printf.sprintf "category%d" (Prng.int rng c.categories));
                ]
              ""
          done);
      Emitter.element em "people" (fun () ->
          for i = 0 to c.persons - 1 do
            person em rng c i
          done);
      Emitter.element em "open_auctions" (fun () ->
          for i = 0 to c.open_auctions - 1 do
            open_auction em rng c i
          done);
      Emitter.element em "closed_auctions" (fun () ->
          for i = 0 to c.closed_auctions - 1 do
            closed_auction em rng c i
          done));
  Emitter.element_count em

let to_string cfg =
  let buf = Buffer.create (1 lsl 20) in
  let _count = generate cfg (Xaos_xml.Serialize.event_to_buffer buf) in
  Buffer.contents buf

let to_file cfg file =
  let oc = open_out_bin file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      let count =
        generate cfg (fun ev ->
            Xaos_xml.Serialize.event_to_buffer buf ev;
            if Buffer.length buf >= 65536 then begin
              Buffer.output_buffer oc buf;
              Buffer.clear buf
            end)
      in
      Buffer.output_buffer oc buf;
      count)

let to_doc cfg =
  let events = ref [] in
  let _count = generate cfg (fun ev -> events := ev :: !events) in
  Xaos_xml.Dom.of_events (List.rev !events)
