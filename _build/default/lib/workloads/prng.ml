type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* 62 random bits, then modulo; bias is negligible for generator use *)
  Int64.to_int (Int64.shift_right_logical (next t) 2) mod bound

let float t bound =
  let bits = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. bits /. 9007199254740992. (* 2^53 *)

let bool t = Int64.logand (next t) 1L = 1L

let chance t p = float t 1.0 < p

let pick t arr = arr.(int t (Array.length arr))

let range t lo hi =
  if hi < lo then invalid_arg "Prng.range: empty range";
  lo + int t (hi - lo + 1)
