(** Deterministic pseudo-random numbers for workload generation
    (splitmix64). Self-contained so generated benchmark documents are
    bit-identical across OCaml versions and platforms, which
    [Stdlib.Random] does not promise. *)

type t

val create : int -> t
(** Seeded generator. Equal seeds give equal streams. *)

val split : t -> t
(** An independent generator derived from the current state; the parent
    advances. Lets sibling subtrees be generated independently of each
    other's consumption. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** Uniform in [\[0, bound)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a nonempty array. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)
