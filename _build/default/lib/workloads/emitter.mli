(** Helper for generating well-formed event streams without materializing
    a tree: tracks levels and balances start/end events by construction. *)

type t

val create : (Xaos_xml.Event.t -> unit) -> t

val element :
  t -> ?attrs:(string * string) list -> string -> (unit -> unit) -> unit
(** [element t tag body] emits the start event, runs [body] to produce the
    content, then emits the end event. *)

val leaf : t -> ?attrs:(string * string) list -> string -> string -> unit
(** An element containing only text (omitted when empty). *)

val text : t -> string -> unit

val level : t -> int
(** Level the next start event would get minus one (current depth). *)

val element_count : t -> int
(** Number of elements emitted so far. *)
