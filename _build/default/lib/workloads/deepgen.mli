(** Deeply recursive documents, in the spirit of the Treebank corpus that
    streaming-XPath papers use to stress recursion: parse-tree-like
    nesting where the same tags recur at many levels, so ancestor- and
    descendant-axis expressions have many overlapping witnesses and open
    stacks grow deep.

    (XMark is wide and shallow — max depth ~12; this generator reaches
    depths in the hundreds.) *)

type config = {
  seed : int;
  target_elements : int;  (** minimum element count *)
  max_depth : int;  (** deepest nesting to generate (≥ 2) *)
}

val config : ?seed:int -> ?max_depth:int -> int -> config
(** [config target_elements], default seed 7, default max depth 120. *)

val generate : config -> (Xaos_xml.Event.t -> unit) -> int
(** Stream the document; returns the element count. Deterministic. *)

val to_string : config -> string

val to_doc : config -> Xaos_xml.Dom.doc

val tags : string array
(** The grammar alphabet used ([s], [np], [vp], [pp], [n], [v], [det],
    [adj]) — useful for writing queries against the output. *)
