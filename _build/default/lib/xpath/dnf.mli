(** Disjunctive-normal-form expansion of [or] predicates (paper,
    Section 5.2).

    χαος evaluates conjunctive expressions; an expression with [or] is
    rewritten into an equivalent disjunction of or-free expressions, and
    each disjunct is evaluated independently (the engine runs all of them
    in the same single pass; the result is the union). The expansion can
    be exponential in the number of [or]s, which the paper deems
    acceptable since XPath expressions are small; {!expand_bounded}
    guards against pathological inputs. *)

val expand : Ast.path -> Ast.path list
(** The list of or-free disjuncts, in left-to-right order. The result is
    a singleton iff the input had no [or] (the input is then returned
    unchanged). *)

val expand_bounded : limit:int -> Ast.path -> (Ast.path list, string) result
(** Like {!expand} but fails once more than [limit] disjuncts would be
    produced. *)
