(** Abstract syntax of the XPath subset.

    The grammar is the paper's Restricted XPath (Rxp, Table 1) —
    location paths over the axes [child], [descendant], [parent],
    [ancestor] with conjunctive predicates — extended with:

    - the [self], [descendant-or-self] and [ancestor-or-self] axes
      (the paper notes χαος "is extensible to handle all thirteen axis
      specifiers"; these three fit the same containment-order framework);
    - the wildcard node test [*];
    - [or] in predicate expressions (Section 5.2 of the paper);
    - [$]-marked output nodes for multiple outputs (Section 5.3);
    - abbreviated syntax ([//], bare names, [..], [.]), which desugars
      onto the axes above. *)

type axis =
  | Child
  | Descendant
  | Parent
  | Ancestor
  | Self
  | Descendant_or_self
  | Ancestor_or_self

type node_test =
  | Name of string
  | Wildcard  (** [*]: any element; does not match the virtual root *)

type attr_test = {
  attr_key : string;
  attr_value : string option;
      (** [None]: existence test [@key]; [Some v]: equality [@key='v'] *)
}

type text_op =
  | Text_equals  (** [text()='v'] *)
  | Text_contains  (** [contains(text(),'v')] *)

type text_test = {
  text_op : text_op;
  text_value : string;
}

type step = {
  axis : axis;
  test : node_test;
  predicates : predicate list;  (** conjunction of bracketed predicates *)
  marked : bool;  (** [$]-marked output node (extended XPath, Section 5.3) *)
}

and predicate =
  | Path of path
  | Attr of attr_test
      (** extension: attribute existence/equality test on the context
          element. Attributes arrive on start events, so these are pure
          filters for the streaming engine — no matching structure is
          involved. *)
  | Text of text_test
      (** extension: test on the element's {e string value} (concatenated
          text content, as in XPath's [string(.)]); [text()='v'] tests
          equality, [contains(text(),'v')] substring containment. The
          string value is only known at the element's end event, so the
          streaming engine buffers text for elements whose x-node carries
          such a test and decides at resolution time. *)
  | And of predicate * predicate
  | Or of predicate * predicate

and path = {
  absolute : bool;
      (** [true] for [/...] paths, evaluated from the root regardless of
          context *)
  steps : step list;  (** nonempty *)
}

val forward : axis -> bool
(** [child], [descendant], [self], [descendant-or-self]. *)

val backward : axis -> bool
(** [parent], [ancestor], [ancestor-or-self]. *)

val reverse_axis : axis -> axis
(** The axis naming the inverse relation, e.g.
    [reverse_axis Ancestor = Descendant]. Used to build the x-dag. *)

val axis_name : axis -> string

val test_matches : node_test -> string -> bool
(** Whether a document element with the given tag satisfies the node test.
    The virtual root's reserved tag is matched by neither constructor. *)

val attr_test_matches : attr_test -> find:(string -> string option) -> bool
(** Whether an element whose attribute lookup is [find] satisfies the
    test. *)

val text_test_matches : text_test -> string -> bool
(** Whether a string value satisfies the test. *)

val uses_backward_axis : path -> bool
(** Whether any step, including inside predicates, uses a backward axis.
    Queries without backward axes are the fragment handled by prior
    streaming systems (XFilter/YFilter/XTrie/TurboXPath). *)

val has_marks : path -> bool
(** Whether any [$] mark appears (switches result arity to tuples). *)

val step_count : path -> int
(** Number of steps including those in predicates — the paper's notion of
    expression size (Section 6.2 uses size-6 expressions). *)

val pp_axis : Format.formatter -> axis -> unit
val pp_node_test : Format.formatter -> node_test -> unit
val pp_step : Format.formatter -> step -> unit
val pp_predicate : Format.formatter -> predicate -> unit
val pp : Format.formatter -> path -> unit
(** Prints unabbreviated syntax, re-parsable by {!Parser.parse}. *)

val to_string : path -> string

val equal : path -> path -> bool
