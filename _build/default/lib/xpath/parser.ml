exception Parse_error of int * string

let fail lx msg = raise (Parse_error (Lexer.pos lx, msg))

let failf lx fmt = Format.kasprintf (fun msg -> fail lx msg) fmt

let axis_of_name = function
  | "child" -> Some Ast.Child
  | "descendant" -> Some Ast.Descendant
  | "parent" -> Some Ast.Parent
  | "ancestor" -> Some Ast.Ancestor
  | "self" -> Some Ast.Self
  | "descendant-or-self" -> Some Ast.Descendant_or_self
  | "ancestor-or-self" -> Some Ast.Ancestor_or_self
  | _ -> None

(* A step, with [default_axis] supplied by the preceding separator:
   [Child] after '/', [Descendant] after '//'. *)
let rec parse_step lx ~default_axis =
  match Lexer.peek lx with
  | Lexer.Dollar ->
    ignore (Lexer.next lx);
    let step = parse_step lx ~default_axis in
    if step.Ast.marked then fail lx "duplicate '$' mark";
    { step with Ast.marked = true }
  | Lexer.Dot ->
    ignore (Lexer.next lx);
    if default_axis <> Ast.Child then
      fail lx "'.' cannot follow '//'; write 'descendant-or-self::*'";
    finish_step lx Ast.Self Ast.Wildcard
  | Lexer.Dot_dot ->
    ignore (Lexer.next lx);
    if default_axis <> Ast.Child then
      fail lx "'..' cannot follow '//'";
    finish_step lx Ast.Parent Ast.Wildcard
  | Lexer.Star ->
    ignore (Lexer.next lx);
    finish_step lx default_axis Ast.Wildcard
  | Lexer.Name name -> (
    match Lexer.peek2 lx with
    | Lexer.Axis_sep -> (
      ignore (Lexer.next lx);
      ignore (Lexer.next lx);
      match axis_of_name name with
      | None -> failf lx "unknown axis %s" name
      | Some axis ->
        if default_axis = Ast.Descendant then
          fail lx "'//' cannot precede an explicit axis; spell the step out";
        let test = parse_node_test lx in
        finish_step lx axis test)
    | _ ->
      ignore (Lexer.next lx);
      finish_step lx default_axis (Ast.Name name))
  | tok -> failf lx "expected a step but found %s" (describe tok)

and parse_node_test lx =
  match Lexer.next lx with
  | Lexer.Name name -> Ast.Name name
  | Lexer.Star -> Ast.Wildcard
  | tok -> failf lx "expected a node test but found %s" (describe tok)

and finish_step lx axis test =
  let predicates = parse_predicates lx [] in
  { Ast.axis; test; predicates; marked = false }

and parse_predicates lx acc =
  match Lexer.peek lx with
  | Lexer.Lbracket ->
    ignore (Lexer.next lx);
    let pred = parse_or lx in
    (match Lexer.next lx with
    | Lexer.Rbracket -> parse_predicates lx (pred :: acc)
    | tok -> failf lx "expected ']' but found %s" (describe tok))
  | _ -> List.rev acc

(* or-expression: term ('or' term)*, left-associative, binds loosest. *)
and parse_or lx =
  let rec loop left =
    match Lexer.peek lx with
    | Lexer.Name "or" ->
      ignore (Lexer.next lx);
      loop (Ast.Or (left, parse_and lx))
    | _ -> left
  in
  loop (parse_and lx)

and parse_and lx =
  let rec loop left =
    match Lexer.peek lx with
    | Lexer.Name "and" ->
      ignore (Lexer.next lx);
      loop (Ast.And (left, parse_factor lx))
    | _ -> left
  in
  loop (parse_factor lx)

and parse_factor lx =
  match Lexer.peek lx with
  | Lexer.Lparen ->
    ignore (Lexer.next lx);
    let inner = parse_or lx in
    (match Lexer.next lx with
    | Lexer.Rparen -> inner
    | tok -> failf lx "expected ')' but found %s" (describe tok))
  | Lexer.At -> Ast.Attr (parse_attr_test lx)
  | Lexer.Name "text" when Lexer.peek2 lx = Lexer.Lparen ->
    (* text() = 'v' *)
    ignore (Lexer.next lx);
    ignore (Lexer.next lx);
    expect lx Lexer.Rparen "')'";
    expect lx Lexer.Equals "'='";
    let text_value = parse_literal lx in
    Ast.Text { Ast.text_op = Ast.Text_equals; text_value }
  | Lexer.Name "contains" when Lexer.peek2 lx = Lexer.Lparen ->
    (* contains(text(), 'v') *)
    ignore (Lexer.next lx);
    ignore (Lexer.next lx);
    (match Lexer.next lx with
    | Lexer.Name "text" -> ()
    | tok -> failf lx "contains() only supports text(); found %s" (describe tok));
    expect lx Lexer.Lparen "'('";
    expect lx Lexer.Rparen "')'";
    expect lx Lexer.Comma "','";
    let text_value = parse_literal lx in
    expect lx Lexer.Rparen "')'";
    Ast.Text { Ast.text_op = Ast.Text_contains; text_value }
  | _ -> Ast.Path (parse_path lx)

and expect lx expected_tok what =
  let tok = Lexer.next lx in
  if tok <> expected_tok then
    failf lx "expected %s but found %s" what (describe tok)

and parse_literal lx =
  match Lexer.next lx with
  | Lexer.Literal v -> v
  | tok -> failf lx "expected a string literal but found %s" (describe tok)

(* The '@' is still unread. *)
and parse_attr_test lx =
  (match Lexer.next lx with
  | Lexer.At -> ()
  | tok -> failf lx "expected '@' but found %s" (describe tok));
  let attr_key =
    match Lexer.next lx with
    | Lexer.Name name -> name
    | tok -> failf lx "expected an attribute name but found %s" (describe tok)
  in
  match Lexer.peek lx with
  | Lexer.Equals -> (
    ignore (Lexer.next lx);
    match Lexer.next lx with
    | Lexer.Literal value -> { Ast.attr_key; attr_value = Some value }
    | tok -> failf lx "expected a string literal but found %s" (describe tok))
  | _ -> { Ast.attr_key; attr_value = None }

(* A location path: absolute if it starts with '/' or '//'. *)
and parse_path lx =
  match Lexer.peek lx with
  | Lexer.Slash ->
    ignore (Lexer.next lx);
    let steps = parse_relative lx ~default_axis:Ast.Child in
    { Ast.absolute = true; steps }
  | Lexer.Double_slash ->
    ignore (Lexer.next lx);
    let steps = parse_relative lx ~default_axis:Ast.Descendant in
    { Ast.absolute = true; steps }
  | _ ->
    let steps = parse_relative lx ~default_axis:Ast.Child in
    { Ast.absolute = false; steps }

and parse_relative lx ~default_axis =
  let first = parse_step lx ~default_axis in
  (* A trailing attribute step — [.../@key] inside a predicate —
     desugars onto the preceding element step: [a/@k] means "an [a] child
     that has attribute [k]", i.e. [a[@k]]. *)
  let attach_attr acc =
    let test = parse_attr_test lx in
    match acc with
    | step :: rest ->
      { step with Ast.predicates = step.Ast.predicates @ [ Ast.Attr test ] }
      :: rest
    | [] -> assert false
  in
  let rec loop acc =
    match Lexer.peek lx with
    | Lexer.Slash -> (
      ignore (Lexer.next lx);
      match Lexer.peek lx with
      | Lexer.At -> List.rev (attach_attr acc)
      | _ -> loop (parse_step lx ~default_axis:Ast.Child :: acc))
    | Lexer.Double_slash ->
      ignore (Lexer.next lx);
      loop (parse_step lx ~default_axis:Ast.Descendant :: acc)
    | _ -> List.rev acc
  in
  loop [ first ]

and describe = function
  | Lexer.Slash -> "'/'"
  | Lexer.Double_slash -> "'//'"
  | Lexer.Axis_sep -> "'::'"
  | Lexer.Lbracket -> "'['"
  | Lexer.Rbracket -> "']'"
  | Lexer.Lparen -> "'('"
  | Lexer.Rparen -> "')'"
  | Lexer.Dollar -> "'$'"
  | Lexer.Star -> "'*'"
  | Lexer.Dot -> "'.'"
  | Lexer.Dot_dot -> "'..'"
  | Lexer.At -> "'@'"
  | Lexer.Equals -> "'='"
  | Lexer.Comma -> "','"
  | Lexer.Literal s -> Printf.sprintf "string %S" s
  | Lexer.Name n -> Printf.sprintf "name %S" n
  | Lexer.End -> "end of input"

let parse input =
  let lx = Lexer.create input in
  try
    let path = parse_path lx in
    match Lexer.next lx with
    | Lexer.End -> path
    | tok -> failf lx "trailing %s after the expression" (describe tok)
  with Lexer.Lex_error (pos, msg) -> raise (Parse_error (pos, msg))

let parse_result input =
  match parse input with
  | path -> Ok path
  | exception Parse_error (pos, msg) ->
    Error (Printf.sprintf "position %d: %s" pos msg)
