lib/xpath/dnf.ml: Ast List Printf
