lib/xpath/lexer.ml: Char List Printf String
