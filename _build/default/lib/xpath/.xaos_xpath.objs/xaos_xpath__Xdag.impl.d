lib/xpath/xdag.ml: Array Ast Format Hashtbl List Option Printf Queue Xtree
