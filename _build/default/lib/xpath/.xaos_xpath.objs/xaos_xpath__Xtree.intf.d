lib/xpath/xtree.mli: Ast Format
