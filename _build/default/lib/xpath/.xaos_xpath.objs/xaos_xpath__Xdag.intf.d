lib/xpath/xdag.mli: Ast Format Hashtbl Xtree
