lib/xpath/ast.ml: Char Format List Option String
