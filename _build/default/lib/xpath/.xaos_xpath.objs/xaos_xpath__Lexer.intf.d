lib/xpath/lexer.mli:
