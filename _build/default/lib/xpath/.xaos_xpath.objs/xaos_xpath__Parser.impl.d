lib/xpath/parser.ml: Ast Format Lexer List Printf
