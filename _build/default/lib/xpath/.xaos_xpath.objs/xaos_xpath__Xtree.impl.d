lib/xpath/xtree.ml: Array Ast Format List String
