lib/xpath/dnf.mli: Ast
