type token =
  | Slash
  | Double_slash
  | Axis_sep
  | Lbracket
  | Rbracket
  | Lparen
  | Rparen
  | Dollar
  | Star
  | Dot
  | Dot_dot
  | At
  | Equals
  | Comma
  | Literal of string
  | Name of string
  | End

exception Lex_error of int * string

type t = {
  input : string;
  mutable offset : int;  (* next unread byte *)
  mutable lookahead : (token * int) list;  (* tokens already scanned *)
  mutable last_pos : int;
}

let create input = { input; offset = 0; lookahead = []; last_pos = 0 }

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true
  | _ -> false

let is_name_char c =
  is_name_start c || (match c with '0' .. '9' | '-' -> true | _ -> false)

let scan t =
  let n = String.length t.input in
  let i = ref t.offset in
  while !i < n && (match t.input.[!i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
    incr i
  done;
  let start = !i in
  if start >= n then begin
    t.offset <- start;
    (End, start)
  end
  else begin
    let tok =
      match t.input.[start] with
      | '/' ->
        if start + 1 < n && Char.equal t.input.[start + 1] '/' then begin
          i := start + 2;
          Double_slash
        end
        else begin
          i := start + 1;
          Slash
        end
      | ':' ->
        if start + 1 < n && Char.equal t.input.[start + 1] ':' then begin
          i := start + 2;
          Axis_sep
        end
        else raise (Lex_error (start, "expected '::'"))
      | '[' ->
        i := start + 1;
        Lbracket
      | ']' ->
        i := start + 1;
        Rbracket
      | '(' ->
        i := start + 1;
        Lparen
      | ')' ->
        i := start + 1;
        Rparen
      | '$' ->
        i := start + 1;
        Dollar
      | '*' ->
        i := start + 1;
        Star
      | '@' ->
        i := start + 1;
        At
      | '=' ->
        i := start + 1;
        Equals
      | ',' ->
        i := start + 1;
        Comma
      | ('\'' | '"') as quote ->
        let j = ref (start + 1) in
        while !j < n && not (Char.equal t.input.[!j] quote) do
          incr j
        done;
        if !j >= n then raise (Lex_error (start, "unterminated string literal"));
        i := !j + 1;
        Literal (String.sub t.input (start + 1) (!j - start - 1))
      | '.' ->
        if start + 1 < n && Char.equal t.input.[start + 1] '.' then begin
          i := start + 2;
          Dot_dot
        end
        else begin
          i := start + 1;
          Dot
        end
      | c when is_name_start c ->
        let j = ref (start + 1) in
        while !j < n && is_name_char t.input.[!j] do
          incr j
        done;
        i := !j;
        Name (String.sub t.input start (!j - start))
      | c -> raise (Lex_error (start, Printf.sprintf "unexpected character %C" c))
    in
    t.offset <- !i;
    (tok, start)
  end

let fill t count =
  while List.length t.lookahead < count do
    t.lookahead <- t.lookahead @ [ scan t ]
  done

let peek t =
  fill t 1;
  match t.lookahead with
  | (tok, pos) :: _ ->
    t.last_pos <- pos;
    tok
  | [] -> assert false

let peek2 t =
  fill t 2;
  match t.lookahead with
  | _ :: (tok, _) :: _ -> tok
  | _ -> assert false

let next t =
  fill t 1;
  match t.lookahead with
  | (tok, pos) :: rest ->
    t.lookahead <- rest;
    t.last_pos <- pos;
    tok
  | [] -> assert false

let pos t = t.last_pos
