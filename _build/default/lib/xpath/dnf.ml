(* Cross product accumulating in left-to-right order. *)
let cross (xs : 'a list) (ys : 'b list) (combine : 'a -> 'b -> 'c) : 'c list =
  List.concat_map (fun x -> List.map (fun y -> combine x y) ys) xs

let rec expand_path (path : Ast.path) : Ast.path list =
  List.map
    (fun steps -> { path with Ast.steps })
    (expand_steps path.Ast.steps)

and expand_steps = function
  | [] -> [ [] ]
  | step :: rest ->
    cross (expand_step step) (expand_steps rest) (fun s ss -> s :: ss)

and expand_step (step : Ast.step) : Ast.step list =
  let rec expand_preds = function
    | [] -> [ [] ]
    | pred :: rest ->
      cross (expand_predicate pred) (expand_preds rest) (fun p ps -> p :: ps)
  in
  List.map
    (fun predicates -> { step with Ast.predicates })
    (expand_preds step.Ast.predicates)

(* Each result is an or-free predicate (a conjunction of paths). *)
and expand_predicate = function
  | Ast.Path p -> List.map (fun p -> Ast.Path p) (expand_path p)
  | (Ast.Attr _ | Ast.Text _) as atom -> [ atom ]
  | Ast.And (a, b) ->
    cross (expand_predicate a) (expand_predicate b) (fun x y -> Ast.And (x, y))
  | Ast.Or (a, b) -> expand_predicate a @ expand_predicate b

let expand path =
  match expand_path path with
  | [ single ] -> [ (if Ast.equal single path then path else single) ]
  | many -> many

let expand_bounded ~limit path =
  (* Count before materializing to avoid building a huge list first. *)
  let rec count_path (p : Ast.path) =
    List.fold_left (fun acc s -> acc * count_step s) 1 p.Ast.steps
  and count_step (s : Ast.step) =
    List.fold_left (fun acc p -> acc * count_pred p) 1 s.Ast.predicates
  and count_pred = function
    | Ast.Path p -> count_path p
    | Ast.Attr _ | Ast.Text _ -> 1
    | Ast.And (a, b) -> count_pred a * count_pred b
    | Ast.Or (a, b) -> count_pred a + count_pred b
  in
  let total = count_path path in
  if total > limit then
    Error
      (Printf.sprintf "or-expansion would produce %d disjuncts (limit %d)"
         total limit)
  else Ok (expand path)
