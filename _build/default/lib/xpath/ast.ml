type axis =
  | Child
  | Descendant
  | Parent
  | Ancestor
  | Self
  | Descendant_or_self
  | Ancestor_or_self

type node_test =
  | Name of string
  | Wildcard

type attr_test = {
  attr_key : string;
  attr_value : string option;
}

type text_op =
  | Text_equals
  | Text_contains

type text_test = {
  text_op : text_op;
  text_value : string;
}

type step = {
  axis : axis;
  test : node_test;
  predicates : predicate list;
  marked : bool;
}

and predicate =
  | Path of path
  | Attr of attr_test
  | Text of text_test
  | And of predicate * predicate
  | Or of predicate * predicate

and path = {
  absolute : bool;
  steps : step list;
}

let forward = function
  | Child | Descendant | Self | Descendant_or_self -> true
  | Parent | Ancestor | Ancestor_or_self -> false

let backward axis = not (forward axis)

let reverse_axis = function
  | Child -> Parent
  | Descendant -> Ancestor
  | Parent -> Child
  | Ancestor -> Descendant
  | Self -> Self
  | Descendant_or_self -> Ancestor_or_self
  | Ancestor_or_self -> Descendant_or_self

let axis_name = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Self -> "self"
  | Descendant_or_self -> "descendant-or-self"
  | Ancestor_or_self -> "ancestor-or-self"

let attr_test_matches { attr_key; attr_value } ~find =
  match find attr_key, attr_value with
  | None, _ -> false
  | Some _, None -> true
  | Some actual, Some expected -> String.equal actual expected

(* Naive substring search; test values are short. *)
let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  if nl = 0 then true
  else begin
    let rec at i = i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1)) in
    at 0
  end

let text_test_matches { text_op; text_value } s =
  match text_op with
  | Text_equals -> String.equal s text_value
  | Text_contains -> contains ~needle:text_value s

let test_matches test tag =
  (* '#' is not a name character, so the virtual root's "#root" tag can be
     recognized and excluded from wildcard matches. *)
  match test with
  | Name n -> String.equal n tag
  | Wildcard -> String.length tag = 0 || not (Char.equal tag.[0] '#')

let rec path_exists_step f { steps; _ } = List.exists (step_exists f) steps

and step_exists f step =
  f step || List.exists (predicate_exists f) step.predicates

and predicate_exists f = function
  | Path p -> path_exists_step f p
  | Attr _ | Text _ -> false
  | And (a, b) | Or (a, b) -> predicate_exists f a || predicate_exists f b

let uses_backward_axis path = path_exists_step (fun s -> backward s.axis) path

let has_marks path = path_exists_step (fun s -> s.marked) path

let rec path_steps { steps; _ } =
  List.fold_left (fun acc s -> acc + step_size s) 0 steps

and step_size step =
  1 + List.fold_left (fun acc p -> acc + predicate_size p) 0 step.predicates

and predicate_size = function
  | Path p -> path_steps p
  | Attr _ | Text _ -> 0
  | And (a, b) | Or (a, b) -> predicate_size a + predicate_size b

let step_count = path_steps

let pp_axis ppf axis = Format.pp_print_string ppf (axis_name axis)

let pp_node_test ppf = function
  | Name n -> Format.pp_print_string ppf n
  | Wildcard -> Format.pp_print_char ppf '*'

let rec pp_step ppf { axis; test; predicates; marked } =
  if marked then Format.pp_print_char ppf '$';
  Format.fprintf ppf "%a::%a" pp_axis axis pp_node_test test;
  List.iter (fun p -> Format.fprintf ppf "[%a]" pp_predicate p) predicates

(* Parenthesization preserves the tree exactly: [or] binds looser than
   [and], both parse left-associatively, so an [or] under an [and], and
   any right operand built with the same operator, need parentheses. *)
and pp_predicate ppf = function
  | Path p -> pp ppf p
  | Attr { attr_key; attr_value } -> (
    Format.fprintf ppf "@%s" attr_key;
    match attr_value with
    | None -> ()
    | Some v -> Format.fprintf ppf "=%a" pp_quoted v)
  | Text { text_op; text_value } -> (
    match text_op with
    | Text_equals -> Format.fprintf ppf "text()=%a" pp_quoted text_value
    | Text_contains ->
      Format.fprintf ppf "contains(text(),%a)" pp_quoted text_value)
  | And (a, b) ->
    let left ppf = function
      | (Path _ | Attr _ | Text _ | And _) as p -> pp_predicate ppf p
      | Or _ as p -> pp_parens ppf p
    and right ppf = function
      | (Path _ | Attr _ | Text _) as p -> pp_predicate ppf p
      | (And _ | Or _) as p -> pp_parens ppf p
    in
    Format.fprintf ppf "%a and %a" left a right b
  | Or (a, b) ->
    let right ppf = function
      | (Path _ | Attr _ | Text _ | And _) as p -> pp_predicate ppf p
      | Or _ as p -> pp_parens ppf p
    in
    Format.fprintf ppf "%a or %a" pp_predicate a right b

and pp_parens ppf p = Format.fprintf ppf "(%a)" pp_predicate p

and pp_quoted ppf v =
  if String.contains v '\'' then Format.fprintf ppf "\"%s\"" v
  else Format.fprintf ppf "'%s'" v

and pp ppf { absolute; steps } =
  if absolute then Format.pp_print_char ppf '/';
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_char ppf '/')
    pp_step ppf steps

let to_string path = Format.asprintf "%a" pp path

let rec equal a b =
  a.absolute = b.absolute
  && List.length a.steps = List.length b.steps
  && List.for_all2 equal_step a.steps b.steps

and equal_step a b =
  a.axis = b.axis
  && a.test = b.test
  && a.marked = b.marked
  && List.length a.predicates = List.length b.predicates
  && List.for_all2 equal_predicate a.predicates b.predicates

and equal_predicate a b =
  match a, b with
  | Path a, Path b -> equal a b
  | Attr a, Attr b ->
    String.equal a.attr_key b.attr_key
    && Option.equal String.equal a.attr_value b.attr_value
  | Text a, Text b ->
    a.text_op = b.text_op && String.equal a.text_value b.text_value
  | And (a1, a2), And (b1, b2) | Or (a1, a2), Or (b1, b2) ->
    equal_predicate a1 b1 && equal_predicate a2 b2
  | (Path _ | Attr _ | Text _ | And _ | Or _), _ -> false
