(** Recursive-descent parser for the XPath subset.

    Accepts both the paper's unabbreviated Rxp syntax
    (e.g. [/descendant::Y[child::U]/descendant::W[ancestor::Z/child::V]])
    and abbreviated syntax
    (e.g. [//listitem/ancestor::category//name], [a/b[.//c]/..]).

    Abbreviations desugar as follows:
    - a leading [/] makes the path absolute; a leading [//x] is
      [/descendant::x];
    - [a//b] is [a/descendant::b] (equivalent to the XPath 1.0 expansion
      for element node tests);
    - a bare name [x] is [child::x], and [*] is [child::*];
    - [.] is [self::*] (with a wildcard that matches any element) and [..]
      is [parent::*];
    - [$] before a step marks it as an output node (Section 5.3).

    [or] binds looser than [and], both are left-associative, and
    parentheses group, as in XPath 1.0. *)

exception Parse_error of int * string
(** Byte position in the input and message. *)

val parse : string -> Ast.path
(** @raise Parse_error on syntax errors. *)

val parse_result : string -> (Ast.path, string) result
(** Like {!parse}, with the error rendered as ["position N: message"]. *)
