(** The x-tree representation of an Rxp (paper, Section 3.1 and Appendix A).

    An x-tree is a rooted tree with an x-node per node test of the
    expression plus a [Root] x-node; each non-root x-node has a unique
    incoming edge labeled with its step's axis. One or more x-nodes are
    designated output nodes ([$] marks, or by default the rightmost node
    test not contained in a predicate).

    The construction follows the Appendix A rules, specialized to the
    grammar: the main path grows a chain from [Root]; each predicate path
    grows a subtree from its context node (or a fresh chain from [Root]
    when absolute). [or] is not representable — expand with {!Dnf} first. *)

type label =
  | Root
  | Test of Ast.node_test

type xnode = {
  id : int;  (** dense index; [Root] has id 0; parents have smaller ids *)
  label : label;
  parent_edge : (Ast.axis * xnode) option;  (** [None] only for [Root] *)
  mutable children : (Ast.axis * xnode) list;
      (** outgoing x-tree edges, in construction order *)
  mutable output : bool;
  mutable attrs : Ast.attr_test list;
      (** conjunction of attribute tests from the step's predicates
          (extension); checked together with the label *)
  mutable texts : Ast.text_test list;
      (** conjunction of string-value tests (extension); decidable only at
          the element's end event *)
}

type t = {
  root : xnode;
  nodes : xnode array;  (** indexed by id; topologically ordered (parents first) *)
  outputs : xnode list;  (** in expression order; nonempty *)
}

val of_path : Ast.path -> t
(** Build the x-tree. The top-level path is evaluated from the root (the
    Rxp grammar only derives absolute top-level paths; a relative one is
    accepted and treated as absolute).
    @raise Invalid_argument if the path contains [or] — see {!Dnf}. *)

val size : t -> int
(** Number of x-nodes including [Root]. *)

val label_matches : label -> string -> bool
(** Whether a document element tag satisfies an x-node's label. [Root]
    matches only the virtual root's reserved tag. *)

val attrs_match : xnode -> find:(string -> string option) -> bool
(** Whether an element's attributes (accessed through [find]) satisfy all
    of the x-node's attribute tests. *)

val subtree_has_output : t -> bool array
(** [has.(v)] iff the x-tree subtree rooted at x-node [v] contains an
    output node — the Section 5.1 criterion for which x-nodes need full
    matching structures rather than booleans. *)

val pp_label : Format.formatter -> label -> unit

val pp : Format.formatter -> t -> unit
(** Multi-line dump: one line per x-node with its incoming axis, e.g.
    [2 W <-descendant- 1 [output]]. *)
