(** Tokenizer for XPath expressions. *)

type token =
  | Slash  (** [/] *)
  | Double_slash  (** [//] *)
  | Axis_sep  (** [::] *)
  | Lbracket
  | Rbracket
  | Lparen
  | Rparen
  | Dollar  (** [$] output mark *)
  | Star  (** [*] *)
  | Dot  (** [.] *)
  | Dot_dot  (** [..] *)
  | At  (** [@], introduces an attribute test *)
  | Equals  (** [=] inside an attribute or text test *)
  | Comma  (** [,] inside a [contains(...)] call *)
  | Literal of string  (** quoted string, ['...'] or ["..."] *)
  | Name of string
      (** Names cover tags, axis names and the [and]/[or] keywords; the
          parser disambiguates by position, as XPath requires. *)
  | End

exception Lex_error of int * string
(** Byte position and message. *)

type t

val create : string -> t

val peek : t -> token
val peek2 : t -> token
(** One more token of lookahead, needed to tell [name::...] (an axis) from
    [name] (a child step). *)

val next : t -> token
val pos : t -> int
(** Byte position of the token returned by the last [next]/[peek]. *)
