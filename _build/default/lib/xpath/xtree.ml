type label =
  | Root
  | Test of Ast.node_test

type xnode = {
  id : int;
  label : label;
  parent_edge : (Ast.axis * xnode) option;
  mutable children : (Ast.axis * xnode) list;
  mutable output : bool;
  mutable attrs : Ast.attr_test list;
  mutable texts : Ast.text_test list;
}

type t = {
  root : xnode;
  nodes : xnode array;
  outputs : xnode list;
}

type builder = {
  mutable rev_nodes : xnode list;
  mutable count : int;
  mutable rev_marks : xnode list;
}

let fresh b label parent_edge =
  let node =
    { id = b.count; label; parent_edge; children = []; output = false;
      attrs = []; texts = [] }
  in
  b.count <- b.count + 1;
  b.rev_nodes <- node :: b.rev_nodes;
  (match parent_edge with
  | Some (axis, parent) -> parent.children <- parent.children @ [ (axis, node) ]
  | None -> ());
  node

(* Appendix A, specialized: a path extends a chain from its context node
   (from Root when absolute); predicates recurse with the step's x-node as
   context. Returns the x-node of the last step. *)
let rec add_path b ~root ~context (path : Ast.path) =
  let start = if path.absolute then root else context in
  List.fold_left (add_step b ~root) start path.steps

and add_step b ~root context (step : Ast.step) =
  let node = fresh b (Test step.test) (Some (step.axis, context)) in
  if step.marked then begin
    node.output <- true;
    b.rev_marks <- node :: b.rev_marks
  end;
  List.iter (add_predicate b ~root ~context:node) step.predicates;
  node

and add_predicate b ~root ~context = function
  | Ast.Path p -> ignore (add_path b ~root ~context p)
  | Ast.Attr test -> context.attrs <- context.attrs @ [ test ]
  | Ast.Text test -> context.texts <- context.texts @ [ test ]
  | Ast.And (x, y) ->
    add_predicate b ~root ~context x;
    add_predicate b ~root ~context y
  | Ast.Or _ ->
    invalid_arg "Xtree.of_path: 'or' must be expanded first (see Dnf)"

let of_path path =
  let b = { rev_nodes = []; count = 0; rev_marks = [] } in
  let root = fresh b Root None in
  let last = add_path b ~root ~context:root path in
  let outputs =
    match List.rev b.rev_marks with
    | [] ->
      last.output <- true;
      [ last ]
    | marks -> marks
  in
  let nodes = Array.of_list (List.rev b.rev_nodes) in
  { root; nodes; outputs }

let size t = Array.length t.nodes

let attrs_match node ~find =
  List.for_all (fun test -> Ast.attr_test_matches test ~find) node.attrs

let label_matches label tag =
  match label with
  | Root -> String.equal tag "#root"
  | Test test -> Ast.test_matches test tag

let subtree_has_output t =
  let has = Array.make (size t) false in
  (* Children have larger ids than parents, so one reverse sweep
     propagates the flag bottom-up. *)
  for i = Array.length t.nodes - 1 downto 0 do
    let node = t.nodes.(i) in
    has.(i) <-
      node.output
      || List.exists (fun (_, child) -> has.(child.id)) node.children
  done;
  has

let pp_label ppf = function
  | Root -> Format.pp_print_string ppf "Root"
  | Test test -> Ast.pp_node_test ppf test

let pp ppf t =
  Array.iter
    (fun node ->
      Format.fprintf ppf "%d %a" node.id pp_label node.label;
      (match node.parent_edge with
      | Some (axis, parent) ->
        Format.fprintf ppf " <-%a- %d" Ast.pp_axis axis parent.id
      | None -> ());
      if node.output then Format.pp_print_string ppf " [output]";
      Format.pp_print_newline ppf ())
    t.nodes
