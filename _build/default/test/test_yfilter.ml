(* The YFilter-style shared automaton: construction, prefix sharing, the
   stack-of-state-sets runtime, and its deliberate restriction to the
   forward-only class. *)

module Yfilter = Xaos_baseline.Yfilter
module Parser = Xaos_xpath.Parser
open Xaos_core

let build queries =
  match Yfilter.build (List.map Parser.parse queries) with
  | Ok nfa -> nfa
  | Error e -> Alcotest.fail e

let test_supported_class () =
  let ok = [ "/a"; "//a"; "/a/b//c"; "//*/a"; "/a//*" ] in
  let bad =
    [ "//a/ancestor::b"; "/a/.."; "//a[b]"; "/$a"; "/a/self::a";
      "//a[@k]"; "a/b" (* relative *) ]
  in
  List.iter
    (fun q ->
      Alcotest.(check bool) q true (Yfilter.supported (Parser.parse q)))
    ok;
  List.iter
    (fun q ->
      Alcotest.(check bool) q false (Yfilter.supported (Parser.parse q)))
    bad

let test_build_rejects_unsupported () =
  match Yfilter.build [ Parser.parse "/a"; Parser.parse "//b/parent::c" ] with
  | Error msg ->
    Alcotest.(check bool) "names the subscription" true
      (String.length msg > 0 && String.contains msg '1')
  | Ok _ -> Alcotest.fail "expected rejection"

let test_prefix_sharing () =
  (* /a/b/c, /a/b/d, /a/b share the /a/b prefix: root + a + b + c + d *)
  let nfa = build [ "/a/b/c"; "/a/b/d"; "/a/b" ] in
  Alcotest.(check int) "five states" 5 (Yfilter.state_count nfa);
  Alcotest.(check int) "three queries" 3 (Yfilter.query_count nfa)

let test_basic_matching () =
  let nfa = build [ "/r/a"; "/r/b"; "//c"; "/r/a/c" ] in
  Alcotest.(check (list int))
    "matches" [ 0; 2; 3 ]
    (Yfilter.run_string nfa "<r><a><c/></a></r>")

let test_child_vs_descendant () =
  let nfa = build [ "/r/x"; "//x" ] in
  (* x at depth 3: child query misses, descendant hits *)
  Alcotest.(check (list int)) "deep x" [ 1 ]
    (Yfilter.run_string nfa "<r><m><x/></m></r>");
  Alcotest.(check (list int)) "shallow x" [ 0; 1 ]
    (Yfilter.run_string nfa "<r><x/></r>")

let test_child_edge_does_not_refire_deeper () =
  (* //a/b: b must be a DIRECT child of an a *)
  let nfa = build [ "//a/b" ] in
  Alcotest.(check (list int)) "direct" [ 0 ]
    (Yfilter.run_string nfa "<r><a><b/></a></r>");
  Alcotest.(check (list int)) "indirect misses" []
    (Yfilter.run_string nfa "<r><a><m><b/></m></a></r>")

let test_descendant_fires_at_any_depth () =
  let nfa = build [ "//a//b" ] in
  List.iter
    (fun doc ->
      Alcotest.(check (list int)) doc [ 0 ] (Yfilter.run_string nfa doc))
    [ "<a><b/></a>"; "<a><m><b/></m></a>"; "<r><a><m><n><b/></n></m></a></r>" ]

let test_wildcards () =
  let nfa = build [ "/*/b"; "//*" ] in
  Alcotest.(check (list int)) "wildcards" [ 0; 1 ]
    (Yfilter.run_string nfa "<r><b/></r>")

let test_recursive_document () =
  let nfa = build [ "//a/a/a" ] in
  Alcotest.(check (list int)) "triple nesting" [ 0 ]
    (Yfilter.run_string nfa "<a><a><a/></a></a>");
  Alcotest.(check (list int)) "double only" []
    (Yfilter.run_string nfa "<a><a><b/></a></a>")

let test_match_counts () =
  let nfa = build [ "//b"; "/r/zzz" ] in
  let run = Yfilter.start nfa in
  Xaos_xml.Sax.iter (Yfilter.feed run)
    (Xaos_xml.Sax.of_string "<r><b/><c><b/></c></r>");
  Alcotest.(check (array int)) "counts" [| 2; 0 |] (Yfilter.match_counts run)

let test_mid_stream_decisions () =
  let nfa = build [ "//b" ] in
  let run = Yfilter.start nfa in
  let events = Xaos_xml.Sax.events_of_string "<r><b/><c/></r>" in
  (* after the second event (<b>), the decision is already made *)
  List.iteri (fun i ev -> if i < 2 then Yfilter.feed run ev) events;
  Alcotest.(check (list int)) "eager decision" [ 0 ] (Yfilter.matches run)

let test_agrees_with_xaos () =
  let queries = [ "/r/a/b"; "//a//b"; "//b/c"; "/r//c"; "//*/*/*/*" ] in
  let docs =
    [ "<r><a><b><c/></b></a></r>"; "<r><c/></r>"; "<b><c/></b>";
      "<r><a><a><b/></a></a></r>" ]
  in
  let nfa = build queries in
  List.iter
    (fun doc ->
      let yf = Yfilter.run_string nfa doc in
      let expected =
        List.concat
          (List.mapi
             (fun qi q ->
               if
                 (Query.run_string (Query.compile_exn q) doc).Result_set.items
                 <> []
               then [ qi ]
               else [])
             queries)
      in
      Alcotest.(check (list int)) doc expected yf)
    docs

let suite =
  [
    ("supported class", `Quick, test_supported_class);
    ("rejects unsupported", `Quick, test_build_rejects_unsupported);
    ("prefix sharing", `Quick, test_prefix_sharing);
    ("basic matching", `Quick, test_basic_matching);
    ("child vs descendant", `Quick, test_child_vs_descendant);
    ("child edge depth", `Quick, test_child_edge_does_not_refire_deeper);
    ("descendant any depth", `Quick, test_descendant_fires_at_any_depth);
    ("wildcards", `Quick, test_wildcards);
    ("recursive document", `Quick, test_recursive_document);
    ("match counts", `Quick, test_match_counts);
    ("mid-stream decisions", `Quick, test_mid_stream_decisions);
    ("agrees with xaos", `Quick, test_agrees_with_xaos);
  ]
