(* The executable matching semantics of Section 3.3 (the oracle itself):
   consistency relation, matching enumeration, Figure 4's count. *)

open Xaos_core
module Ast = Xaos_xpath.Ast
module Dom = Xaos_xml.Dom
module Parser = Xaos_xpath.Parser
module Xtree = Xaos_xpath.Xtree

let fig2 = "<X><Y><W/><Z><V/><V/><W><W/></W></Z><U/></Y><Y><Z><W/></Z><U/></Y></X>"
let fig3 = "/descendant::Y[child::U]/descendant::W[ancestor::Z/child::V]"

let get doc id =
  match Dom.element_by_id doc id with
  | Some e -> e
  | None -> Alcotest.failf "missing element %d" id

let test_consistency_relation () =
  let doc = Dom.of_string fig2 in
  let d i = get doc i in
  (* (v1,d1) consistent with (v2,d2) over edge axis means d2 in axis(d1) *)
  Alcotest.(check bool) "Z4 ancestor of W7" true
    (Semantics.consistent Ast.Ancestor (d 7) (d 4));
  Alcotest.(check bool) "W7 not ancestor of Z4" false
    (Semantics.consistent Ast.Ancestor (d 4) (d 7));
  Alcotest.(check bool) "V5 child of Z4" true
    (Semantics.consistent Ast.Child (d 4) (d 5));
  Alcotest.(check bool) "W8 descendant of Y2" true
    (Semantics.consistent Ast.Descendant (d 2) (d 8));
  Alcotest.(check bool) "self" true (Semantics.consistent Ast.Self (d 3) (d 3));
  Alcotest.(check bool) "parent" true
    (Semantics.consistent Ast.Parent (d 8) (d 7))

let test_axis_elements () =
  let doc = Dom.of_string fig2 in
  let ids axis i =
    List.map
      (fun (e : Dom.element) -> e.id)
      (Semantics.axis_elements doc axis (get doc i))
  in
  Alcotest.(check (list int)) "children of Y2" [ 3; 4; 9 ] (ids Ast.Child 2);
  Alcotest.(check (list int)) "ancestors of W8" [ 0; 1; 2; 4; 7 ]
    (ids Ast.Ancestor 8);
  Alcotest.(check (list int)) "descendants of Z4" [ 5; 6; 7; 8 ]
    (ids Ast.Descendant 4)

let test_figure4_matchings () =
  (* Figure 4 lists the four total matchings at Root:
     [Root, Y2, U9, W7|W8, Z4, V5|V6] *)
  let doc = Dom.of_string fig2 in
  let xtree = Xtree.of_path (Parser.parse fig3) in
  let ms = Semantics.total_matchings xtree doc in
  Alcotest.(check int) "four matchings" 4 (List.length ms);
  let projections =
    List.map
      (fun m -> List.map (fun (v, (e : Dom.element)) -> (v, e.id)) m)
      ms
    |> List.sort compare
  in
  (* x-nodes: 0 Root, 1 Y, 2 U, 3 W, 4 Z, 5 V *)
  let expected =
    [ [ (0, 0); (1, 2); (2, 9); (3, 7); (4, 4); (5, 5) ];
      [ (0, 0); (1, 2); (2, 9); (3, 7); (4, 4); (5, 6) ];
      [ (0, 0); (1, 2); (2, 9); (3, 8); (4, 4); (5, 5) ];
      [ (0, 0); (1, 2); (2, 9); (3, 8); (4, 4); (5, 6) ] ]
  in
  Alcotest.(check (list (list (pair int int)))) "figure 4" expected projections

let test_eval_projection () =
  let doc = Dom.of_string fig2 in
  let xtree = Xtree.of_path (Parser.parse fig3) in
  Alcotest.(check (list int)) "solution ids" [ 7; 8 ]
    (List.map (fun (i : Item.t) -> i.id) (Semantics.eval xtree doc))

let test_eval_tuples () =
  let doc = Dom.of_string "<a><b/><b/></a>" in
  let xtree = Xtree.of_path (Parser.parse "/$a/$b") in
  let tuples = Semantics.eval_tuples xtree doc in
  Alcotest.(check int) "two tuples" 2 (List.length tuples)

let test_unsatisfiable_path_empty () =
  let doc = Dom.of_string "<a/>" in
  Alcotest.(check int) "no matchings for /parent::x" 0
    (List.length (Semantics.eval_path (Parser.parse "/parent::x") doc))

let test_or_path () =
  let doc = Dom.of_string "<a><b/><c/></a>" in
  Alcotest.(check (list int)) "or union" [ 2; 3 ]
    (List.map
       (fun (i : Item.t) -> i.id)
       (Semantics.eval_path (Parser.parse "/a/*[self::b or self::c]") doc))

let suite =
  [
    ("consistency relation", `Quick, test_consistency_relation);
    ("axis elements", `Quick, test_axis_elements);
    ("figure 4 matchings", `Quick, test_figure4_matchings);
    ("eval projection", `Quick, test_eval_projection);
    ("eval tuples", `Quick, test_eval_tuples);
    ("unsatisfiable path", `Quick, test_unsatisfiable_path_empty);
    ("or path", `Quick, test_or_path);
  ]
