(* Deep-recursion generator and engine behaviour on deeply nested input. *)

open Xaos_core
module Deepgen = Xaos_workloads.Deepgen
module Dom = Xaos_xml.Dom

let max_depth_of doc =
  let deepest = ref 0 in
  Dom.iter_elements
    (fun e -> if e.Dom.level > !deepest then deepest := e.Dom.level)
    doc;
  !deepest

let test_reaches_depth () =
  let doc = Deepgen.to_doc (Deepgen.config ~max_depth:80 20_000) in
  Alcotest.(check bool) "enough elements" true (doc.Dom.element_count > 20_000);
  let d = max_depth_of doc in
  Alcotest.(check bool)
    (Printf.sprintf "deep nesting (%d)" d)
    true
    (d >= 60)

let test_depth_capped () =
  let doc = Deepgen.to_doc (Deepgen.config ~max_depth:10 5_000) in
  Alcotest.(check bool) "cap respected" true (max_depth_of doc <= 11)

let test_deterministic () =
  let a = Deepgen.to_string (Deepgen.config 2_000) in
  let b = Deepgen.to_string (Deepgen.config 2_000) in
  Alcotest.(check bool) "equal" true (String.equal a b)

let test_well_formed_and_tags () =
  let doc = Deepgen.to_doc (Deepgen.config 3_000) in
  Dom.iter_elements
    (fun e ->
      if e.Dom.id > 1 && not (Array.mem e.Dom.tag Deepgen.tags) then
        Alcotest.failf "unexpected tag %s" e.Dom.tag)
    doc

let test_engines_agree_on_deep_recursion () =
  let doc_s = Deepgen.to_string (Deepgen.config ~max_depth:100 15_000) in
  let doc = Dom.of_string doc_s in
  List.iter
    (fun query ->
      let path = Xaos_xpath.Parser.parse query in
      let streaming =
        (Query.run_string (Query.compile_exn query) doc_s).Result_set.items
      in
      let baseline =
        Xaos_baseline.Dom_engine.eval doc path |> List.sort_uniq Item.compare
      in
      Alcotest.(check int)
        (query ^ " sizes")
        (List.length baseline) (List.length streaming);
      Alcotest.(check bool) (query ^ " agree") true
        (List.equal Item.equal baseline streaming))
    [ "//np//np//np//np"; "//v/ancestor::vp/ancestor::vp";
      "//pp[np]/parent::np"; "//s[vp[v]]//n"; "//np/ancestor::s[pp]" ]

let test_deep_open_stacks () =
  (* a query whose open stacks grow with nesting must not misbehave *)
  let doc_s = Deepgen.to_string (Deepgen.config ~max_depth:120 10_000) in
  let q = Query.compile_exn "//s//s" in
  let result, stats = Query.run_string_with_stats q doc_s in
  Alcotest.(check bool) "found nested sentences" true
    (List.length result.Result_set.items > 10);
  Alcotest.(check bool) "stack depth tracked" true (stats.Stats.max_depth > 60)

let suite =
  [
    ("reaches depth", `Quick, test_reaches_depth);
    ("depth capped", `Quick, test_depth_capped);
    ("deterministic", `Quick, test_deterministic);
    ("well-formed tags", `Quick, test_well_formed_and_tags);
    ("engines agree on deep recursion", `Slow, test_engines_agree_on_deep_recursion);
    ("deep open stacks", `Quick, test_deep_open_stacks);
  ]
