(* X-tree and x-dag construction: the paper's Figure 3 and the Appendix A
   building rules. *)

module Ast = Xaos_xpath.Ast
module Parser = Xaos_xpath.Parser
module Xtree = Xaos_xpath.Xtree
module Xdag = Xaos_xpath.Xdag

let xtree_of input = Xtree.of_path (Parser.parse input)

let node_summary (t : Xtree.t) =
  Array.to_list t.nodes
  |> List.map (fun (n : Xtree.xnode) ->
         let label = Format.asprintf "%a" Xtree.pp_label n.label in
         let parent =
           match n.parent_edge with
           | None -> "-"
           | Some (axis, p) -> Printf.sprintf "%s:%d" (Ast.axis_name axis) p.id
         in
         Printf.sprintf "%d:%s<%s%s" n.id label parent
           (if n.output then "!" else ""))

let check_tree input expected =
  Alcotest.(check (list string)) input expected (node_summary (xtree_of input))

let test_figure3_xtree () =
  (* Figure 3(a): /descendant::Y[child::U]/descendant::W[ancestor::Z/child::V] *)
  check_tree "/descendant::Y[child::U]/descendant::W[ancestor::Z/child::V]"
    [ "0:Root<-"; "1:Y<descendant:0"; "2:U<child:1"; "3:W<descendant:1!";
      "4:Z<ancestor:3"; "5:V<child:4" ]

let test_default_output_is_main_path_end () =
  check_tree "/a[b]/c[d]"
    [ "0:Root<-"; "1:a<child:0"; "2:b<child:1"; "3:c<child:1!";
      "4:d<child:3" ]

let test_absolute_predicate_roots_at_root () =
  (* AbsLocPath inside a predicate merges with Root (Appendix A). *)
  check_tree "/a[/b/c]"
    [ "0:Root<-"; "1:a<child:0!"; "2:b<child:0"; "3:c<child:2" ]

let test_conjunction_of_predicates () =
  check_tree "//chapter[ancestor::book and child::table]"
    [ "0:Root<-"; "1:chapter<descendant:0!"; "2:book<ancestor:1";
      "3:table<child:1" ]

let test_marked_outputs () =
  let t = xtree_of "/$a/b/$c" in
  Alcotest.(check (list int))
    "outputs in mark order" [ 1; 3 ]
    (List.map (fun (n : Xtree.xnode) -> n.id) t.outputs)

let test_subtree_has_output () =
  let t = xtree_of "/a[b]/c[d]" in
  Alcotest.(check (list bool))
    "only the root chain and c"
    [ true; true; false; true; false ]
    (Array.to_list (Xtree.subtree_has_output t))

let test_or_rejected () =
  match Xtree.of_path (Parser.parse "/a[b or c]") with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ---------------- x-dag ---------------- *)

let dag_of input = Xdag.of_xtree (xtree_of input)

let edge_summary (dag : Xdag.t) =
  Array.to_list
    (Array.mapi
       (fun v children ->
         let kids =
           List.map
             (fun (kind, target) ->
               let k =
                 match kind with
                 | Xdag.Kchild -> "c"
                 | Xdag.Kdescendant -> "d"
                 | Xdag.Kself -> "s"
                 | Xdag.Kdescendant_or_self -> "ds"
               in
               Printf.sprintf "%s%d" k target)
             children
         in
         Printf.sprintf "%d>%s" v (String.concat "," (List.sort compare kids)))
       dag.children)

let check_dag input expected =
  Alcotest.(check (list string)) input expected (edge_summary (dag_of input))

let test_figure3_xdag () =
  (* Figure 3(b): parent/ancestor edges reversed; Root gains descendant
     edges to the orphaned Y and Z. *)
  check_dag "/descendant::Y[child::U]/descendant::W[ancestor::Z/child::V]"
    [ "0>d1,d4"; "1>c2,d3"; "2>"; "3>"; "4>c5,d3"; "5>" ]

let test_backward_query_dag () =
  (* //listitem/ancestor::category//name *)
  check_dag "//listitem/ancestor::category//name"
    [ "0>d1,d2"; "1>"; "2>d1,d3"; "3>" ]

let test_forward_only_dag_is_tree () =
  let dag = dag_of "/a[b]//c" in
  Alcotest.(check bool) "is tree" true (Xdag.is_tree dag);
  Alcotest.(check (list int)) "no join points" [] (Xdag.join_points dag)

let test_join_points () =
  let dag = dag_of "//Y[U]//W[ancestor::Z/V]" in
  Alcotest.(check bool) "not a tree" false (Xdag.is_tree dag);
  (* W is shared by the sub-dags of Y and Z (paper, Section 4). *)
  Alcotest.(check (list int)) "join points" [ 3 ] (Xdag.join_points dag)

let test_topological_order () =
  let dag = dag_of "//listitem/ancestor::category//name" in
  let position = Array.make (Array.length dag.topo) 0 in
  Array.iteri (fun i v -> position.(v) <- i) dag.topo;
  Array.iteri
    (fun v children ->
      List.iter
        (fun (_, w) ->
          if position.(v) >= position.(w) then
            Alcotest.failf "edge %d->%d violates topo order" v w)
        children)
    dag.children

let test_unsatisfiable_cycles () =
  List.iter
    (fun input ->
      match dag_of input with
      | _ -> Alcotest.failf "expected Unsatisfiable for %s" input
      | exception Xdag.Unsatisfiable -> ())
    [ "/parent::x"; "/ancestor::x"; "/a[/parent::x]" ]

let test_candidates_by_tag () =
  let dag = dag_of "//a[b]/ancestor::a//*" in
  (* the wildcard x-node also matches tag a, after the named nodes *)
  Alcotest.(check (list int)) "a nodes" [ 1; 3; 4 ] (Xdag.candidates dag "a");
  (* wildcard node also matches tag a and b *)
  Alcotest.(check (list int)) "b nodes + wildcard" [ 2; 4 ]
    (List.sort compare (Xdag.candidates dag "b"));
  Alcotest.(check (list int)) "unknown tag hits only wildcard" [ 4 ]
    (Xdag.candidates dag "zzz");
  Alcotest.(check (list int)) "virtual root tag matches nothing" []
    (Xdag.candidates dag "#root")

let test_self_axis_edges () =
  let dag = dag_of "/a/self::b" in
  (* self keeps its orientation as a Kself edge *)
  Alcotest.(check (list string)) "self edge"
    [ "0>c1"; "1>s2"; "2>" ]
    (edge_summary dag)

let test_or_self_reversal () =
  (* b's tree edge reverses to a descendant-or-self edge b->a, leaving b
     orphaned, so rule 3 also adds Root -descendant-> b *)
  check_dag "/a/ancestor-or-self::b" [ "0>c1,d2"; "1>"; "2>ds1" ]

let suite =
  [
    ("figure 3 x-tree", `Quick, test_figure3_xtree);
    ("default output", `Quick, test_default_output_is_main_path_end);
    ("absolute predicate", `Quick, test_absolute_predicate_roots_at_root);
    ("predicate conjunction", `Quick, test_conjunction_of_predicates);
    ("marked outputs", `Quick, test_marked_outputs);
    ("subtree_has_output", `Quick, test_subtree_has_output);
    ("or rejected", `Quick, test_or_rejected);
    ("figure 3 x-dag", `Quick, test_figure3_xdag);
    ("backward query dag", `Quick, test_backward_query_dag);
    ("forward-only dag is tree", `Quick, test_forward_only_dag_is_tree);
    ("join points", `Quick, test_join_points);
    ("topological order", `Quick, test_topological_order);
    ("unsatisfiable cycles", `Quick, test_unsatisfiable_cycles);
    ("candidates by tag", `Quick, test_candidates_by_tag);
    ("self axis edges", `Quick, test_self_axis_edges);
    ("or-self reversal", `Quick, test_or_self_reversal);
  ]
