(* Serializer escaping and parse/serialize roundtrips. *)

module Dom = Xaos_xml.Dom
module Serialize = Xaos_xml.Serialize
module Sax = Xaos_xml.Sax

let test_escape_text () =
  Alcotest.(check string) "text" "a&lt;b&gt;c&amp;d\"e'f"
    (Serialize.escape_text "a<b>c&d\"e'f")

let test_escape_attribute () =
  Alcotest.(check string) "attr" "a&lt;b>c&amp;d&quot;e'f"
    (Serialize.escape_attribute "a<b>c&d\"e'f")

let roundtrip input =
  let doc = Dom.of_string input in
  let out = Serialize.to_string doc in
  let doc2 = Dom.of_string out in
  Alcotest.(check string) "stable after one roundtrip" out
    (Serialize.to_string doc2)

let test_roundtrip_structure () =
  roundtrip "<a x=\"1\"><b>t&amp;u</b><c/><!--k--><?pi data?></a>"

let test_roundtrip_preserves_elements () =
  let input = "<a><b><c/></b><b/></a>" in
  let doc = Dom.of_string input in
  let reparsed = Dom.of_string (Serialize.to_string doc) in
  Alcotest.(check int) "element count" doc.Dom.element_count
    reparsed.Dom.element_count

let test_special_characters_roundtrip () =
  let input = "<a k=\"&quot;&lt;&amp;\">x&lt;y&amp;z&gt;w</a>" in
  let doc = Dom.of_string input in
  let reparsed = Dom.of_string (Serialize.to_string doc) in
  let get (d : Dom.doc) =
    match Dom.element_by_id d 1 with
    | Some e -> (Dom.text_content e, e.Dom.attributes)
    | None -> Alcotest.fail "missing root element"
  in
  let text1, attrs1 = get doc in
  let text2, attrs2 = get reparsed in
  Alcotest.(check string) "text preserved" text1 text2;
  Alcotest.(check int) "attrs preserved" (List.length attrs1) (List.length attrs2);
  Alcotest.(check string) "attr value" "\"<&"
    (List.hd attrs2).Xaos_xml.Event.attr_value

let test_events_to_string () =
  let events = Sax.events_of_string "<a><b>x</b></a>" in
  Alcotest.(check string) "rendering" "<a><b>x</b></a>"
    (Serialize.events_to_string events)

let test_to_channel_matches_to_string () =
  let doc = Dom.of_string "<a><b>one</b><c d=\"2\"/></a>" in
  let file = Filename.temp_file "xaos" ".xml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out_bin file in
      Serialize.to_channel oc doc;
      close_out oc;
      let ic = open_in_bin file in
      let n = in_channel_length ic in
      let contents = really_input_string ic n in
      close_in ic;
      Alcotest.(check string) "channel = string" (Serialize.to_string doc)
        contents)

let suite =
  [
    ("escape text", `Quick, test_escape_text);
    ("escape attribute", `Quick, test_escape_attribute);
    ("roundtrip structure", `Quick, test_roundtrip_structure);
    ("roundtrip element count", `Quick, test_roundtrip_preserves_elements);
    ("special characters", `Quick, test_special_characters_roundtrip);
    ("events to string", `Quick, test_events_to_string);
    ("to_channel", `Quick, test_to_channel_matches_to_string);
  ]
