(* The execution tracer against the paper's Table 2 walkthrough. *)

open Xaos_core
module Parser = Xaos_xpath.Parser
module Xtree = Xaos_xpath.Xtree
module Xdag = Xaos_xpath.Xdag

let fig2 = "<X><Y><W/><Z><V/><V/><W><W/></W></Z><U/></Y><Y><Z><W/></Z><U/></Y></X>"
let fig3 = "/descendant::Y[child::U]/descendant::W[ancestor::Z/child::V]"

let trace_fig () =
  let xtree = Xtree.of_path (Parser.parse fig3) in
  (xtree, Trace.run_string (Xdag.of_xtree xtree) fig2)

let test_step_numbering () =
  let _, t = trace_fig () in
  (* 26 element events, numbered 2..27 as in the paper (Root is step 1) *)
  Alcotest.(check int) "26 steps" 26 (List.length t.Trace.steps);
  Alcotest.(check int) "first index" 2 (List.hd t.Trace.steps).Trace.index;
  Alcotest.(check int) "last index" 27
    (List.nth t.Trace.steps 25).Trace.index

let test_matches_column () =
  let _, t = trace_fig () in
  (* x-node ids: 0 Root, 1 Y, 2 U, 3 W, 4 Z, 5 V. Table 2's Matches
     column (with its step-19 typo corrected: Y 10,2 matches Y). *)
  let expected =
    [ []; [ 1 ]; []; []; [ 4 ]; [ 5 ]; [ 5 ]; [ 5 ]; [ 5 ]; [ 3 ]; [ 3 ];
      [ 3 ]; [ 3 ]; [ 4 ]; [ 2 ]; [ 2 ]; [ 1 ]; [ 1 ]; [ 4 ]; [ 3 ]; [ 3 ];
      [ 4 ]; [ 2 ]; [ 2 ]; [ 1 ]; [] ]
  in
  List.iteri
    (fun i step ->
      Alcotest.(check (list int))
        (Printf.sprintf "step %d" (i + 2))
        (List.nth expected i)
        (List.map fst step.Trace.matches))
    t.Trace.steps

let test_discard_flags () =
  let _, t = trace_fig () in
  let discarded_steps =
    List.filter_map
      (fun s -> if s.Trace.discarded then Some s.Trace.index else None)
      t.Trace.steps
  in
  (* X's start and end, W3's start and end *)
  Alcotest.(check (list int)) "discarded" [ 2; 4; 5; 27 ] discarded_steps

let test_paper_undo_at_step_23 () =
  let _, t = trace_fig () in
  let step23 = List.find (fun s -> s.Trace.index = 23) t.Trace.steps in
  Alcotest.(check bool) "undo happened at E:Z11" true (step23.Trace.undos > 0);
  let step22 = List.find (fun s -> s.Trace.index = 22) t.Trace.steps in
  Alcotest.(check bool) "optimistic propagation at E:W12" true
    (step22.Trace.propagations > 0)

let test_trace_result_matches_run () =
  let _, t = trace_fig () in
  Alcotest.(check (list int)) "solution" [ 7; 8 ]
    (List.map (fun (i : Item.t) -> i.Item.id) t.Trace.result.Result_set.items)

let test_propagation_totals_consistent () =
  let _, t = trace_fig () in
  let props =
    List.fold_left (fun acc s -> acc + s.Trace.propagations) 0 t.Trace.steps
  in
  let undos =
    List.fold_left (fun acc s -> acc + s.Trace.undos) 0 t.Trace.steps
  in
  Alcotest.(check int) "propagations" t.Trace.stats.Stats.propagations props;
  Alcotest.(check int) "undos" t.Trace.stats.Stats.undos undos

let test_pp_renders () =
  let xtree, t = trace_fig () in
  let rendered = Format.asprintf "%a" (Trace.pp ~xtree) t in
  Alcotest.(check bool) "mentions result" true
    (String.length rendered > 200)

let suite =
  [
    ("step numbering", `Quick, test_step_numbering);
    ("matches column", `Quick, test_matches_column);
    ("discard flags", `Quick, test_discard_flags);
    ("step 22/23 optimism", `Quick, test_paper_undo_at_step_23);
    ("result matches", `Quick, test_trace_result_matches_run);
    ("totals consistent", `Quick, test_propagation_totals_consistent);
    ("pp renders", `Quick, test_pp_renders);
  ]
