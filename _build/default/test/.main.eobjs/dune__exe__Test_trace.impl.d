test/test_trace.ml: Alcotest Format Item List Printf Result_set Stats String Trace Xaos_core Xaos_xpath
