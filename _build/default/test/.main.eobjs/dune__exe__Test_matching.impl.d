test/test_matching.ml: Alcotest Array Item List Matching Printf Stats Xaos_core
