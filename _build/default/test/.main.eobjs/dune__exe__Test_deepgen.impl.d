test/test_deepgen.ml: Alcotest Array Item List Printf Query Result_set Stats String Xaos_baseline Xaos_core Xaos_workloads Xaos_xml Xaos_xpath
