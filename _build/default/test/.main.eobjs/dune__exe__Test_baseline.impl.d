test/test_baseline.ml: Alcotest Buffer Item List Printf Semantics Xaos_baseline Xaos_core Xaos_xml Xaos_xpath
