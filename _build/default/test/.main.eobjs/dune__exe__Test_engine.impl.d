test/test_engine.ml: Alcotest Array Engine Format Item List Printf Query Result_set Stats Xaos_core Xaos_xml Xaos_xpath
