test/test_text.ml: Alcotest Engine Item List Query Result_set Semantics Xaos_baseline Xaos_core Xaos_xml Xaos_xpath
