test/test_misc.ml: Alcotest Buffer Engine Item List Query Result_set Stats Xaos_core Xaos_xml Xaos_xpath
