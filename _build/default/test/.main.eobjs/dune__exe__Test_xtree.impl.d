test/test_xtree.ml: Alcotest Array Format List Printf String Xaos_xpath
