test/main.mli:
