test/test_xpath.ml: Alcotest List Printf Xaos_xpath
