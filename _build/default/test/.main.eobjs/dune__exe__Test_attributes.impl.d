test/test_attributes.ml: Alcotest Array Engine Item List Query Result_set Semantics Xaos_baseline Xaos_core Xaos_xml Xaos_xpath
