test/test_workloads.ml: Alcotest List Printf Query Result_set Stats String Xaos_core Xaos_workloads Xaos_xml Xaos_xpath
