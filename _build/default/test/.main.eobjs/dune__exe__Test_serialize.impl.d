test/test_serialize.ml: Alcotest Filename Fun List Sys Xaos_xml
