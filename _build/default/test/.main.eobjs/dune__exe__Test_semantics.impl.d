test/test_semantics.ml: Alcotest Item List Semantics Xaos_core Xaos_xml Xaos_xpath
