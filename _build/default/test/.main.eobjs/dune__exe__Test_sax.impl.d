test/test_sax.ml: Alcotest Buffer Bytes List String Xaos_xml
