test/test_dnf.ml: Alcotest List Xaos_xpath
