test/test_properties.ml: Engine Format Fun Item List Printf QCheck QCheck_alcotest Query Result_set Semantics Stats String Xaos_baseline Xaos_core Xaos_xml Xaos_xpath
