test/test_yfilter.ml: Alcotest List Query Result_set String Xaos_baseline Xaos_core Xaos_xml Xaos_xpath
