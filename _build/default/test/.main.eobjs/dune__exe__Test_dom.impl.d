test/test_dom.ml: Alcotest Fun List Option Printf Xaos_xml
