test/test_query.ml: Alcotest Engine Filename Fun Item List Query Query_set Result_set Stats String Sys Xaos_core Xaos_xml
