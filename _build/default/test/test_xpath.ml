(* XPath lexing/parsing, pretty-printing, and the abbreviation desugaring. *)

module Ast = Xaos_xpath.Ast
module Parser = Xaos_xpath.Parser

let parses_to expected input =
  match Parser.parse_result input with
  | Error msg -> Alcotest.failf "parse %S failed: %s" input msg
  | Ok path -> Alcotest.(check string) input expected (Ast.to_string path)

let fails input =
  match Parser.parse_result input with
  | Error _ -> ()
  | Ok path ->
    Alcotest.failf "expected %S to fail, parsed as %s" input
      (Ast.to_string path)

let test_paper_expressions () =
  parses_to "/descendant::Y[child::U]/descendant::W[ancestor::Z/child::V]"
    "/descendant::Y[child::U]/descendant::W[ancestor::Z/child::V]";
  parses_to "/descendant::listitem/ancestor::category/descendant::name"
    "//listitem/ancestor::category//name";
  parses_to "/descendant::chapter[ancestor::book and child::table]"
    "//chapter[ancestor::book and child::table]"

let test_abbreviations () =
  parses_to "/child::a/child::b" "/a/b";
  parses_to "/descendant::a" "//a";
  parses_to "/child::a/descendant::b" "/a//b";
  parses_to "/child::a/parent::*" "/a/..";
  parses_to "/child::a/self::*" "/a/.";
  parses_to "/child::*" "/*";
  parses_to "/child::a[self::*/descendant::b]" "/a[.//b]"

let test_relative_paths () =
  parses_to "child::a/child::b" "a/b";
  parses_to "descendant::a" "descendant::a"

let test_axes () =
  List.iter
    (fun axis -> parses_to ("/" ^ axis ^ "::x") ("/" ^ axis ^ "::x"))
    [ "child"; "descendant"; "parent"; "ancestor"; "self";
      "descendant-or-self"; "ancestor-or-self" ]

let test_predicates () =
  parses_to "/child::a[child::b]" "/a[b]";
  parses_to "/child::a[child::b][child::c]" "/a[b][c]";
  parses_to "/child::a[child::b and child::c]" "/a[b and c]";
  parses_to "/child::a[child::b or child::c]" "/a[b or c]";
  parses_to "/child::a[child::b and child::c or child::d]" "/a[b and c or d]";
  parses_to "/child::a[child::b and (child::c or child::d)]"
    "/a[b and (c or d)]";
  parses_to "/child::a[/descendant::b]" "/a[//b]";
  parses_to "/child::a[/child::b/child::c]" "/a[/b/c]"

let test_operator_precedence () =
  (* or binds looser than and: a or b and c == a or (b and c) *)
  match Parser.parse "/x[a or b and c]" with
  | { Ast.steps = [ { predicates = [ Ast.Or (_, Ast.And _) ]; _ } ]; _ } -> ()
  | p -> Alcotest.failf "wrong precedence: %s" (Ast.to_string p)

let test_and_or_as_names () =
  (* 'and' and 'or' are plain tag names outside operator position *)
  parses_to "/child::and/child::or" "/and/or";
  parses_to "/child::x[child::and]" "/x[and]"

let test_marks () =
  parses_to "/$child::a/$child::b" "/$a/$b";
  let p = Parser.parse "/$a/b/$c" in
  Alcotest.(check bool) "has marks" true (Ast.has_marks p);
  let q = Parser.parse "/a/b" in
  Alcotest.(check bool) "no marks" false (Ast.has_marks q)

let test_step_count () =
  let count input = Ast.step_count (Parser.parse input) in
  Alcotest.(check int) "plain" 3 (count "/a/b/c");
  Alcotest.(check int) "predicates counted" 6
    (count "/a[b/c]/d[e]//f");
  Alcotest.(check int) "paper example" 5
    (count "/descendant::Y[child::U]/descendant::W[ancestor::Z/child::V]")

let test_uses_backward () =
  let uses input = Ast.uses_backward_axis (Parser.parse input) in
  Alcotest.(check bool) "forward only" false (uses "/a//b[c]");
  Alcotest.(check bool) "parent" true (uses "/a/..");
  Alcotest.(check bool) "inside predicate" true (uses "/a[b/ancestor::c]")

let test_syntax_errors () =
  fails "";
  fails "/";
  fails "//";
  fails "/a/";
  fails "/a[";
  fails "/a[]";
  fails "/a]";
  fails "/a[b";
  fails "/unknownaxis::a";
  fails "/a b";
  fails "/$$a";
  fails "/..::a";
  fails "/a[(b]";
  fails "/a[b and]";
  fails "/a[and b]";
  fails "//..";
  fails "//parent::a";
  fails "/a::";
  fails "/:a"

let test_pretty_print_reparses () =
  List.iter
    (fun input ->
      let p = Parser.parse input in
      let printed = Ast.to_string p in
      let reparsed = Parser.parse printed in
      Alcotest.(check bool)
        (Printf.sprintf "fixpoint for %s" input)
        true
        (Ast.equal p reparsed))
    [ "/a[b or c and d]/..//$e[.//f]"; "//x[ancestor::y/parent::z]";
      "/descendant-or-self::a/ancestor-or-self::b" ]

let suite =
  [
    ("paper expressions", `Quick, test_paper_expressions);
    ("abbreviations", `Quick, test_abbreviations);
    ("relative paths", `Quick, test_relative_paths);
    ("axes", `Quick, test_axes);
    ("predicates", `Quick, test_predicates);
    ("operator precedence", `Quick, test_operator_precedence);
    ("and/or as names", `Quick, test_and_or_as_names);
    ("output marks", `Quick, test_marks);
    ("step count", `Quick, test_step_count);
    ("uses backward", `Quick, test_uses_backward);
    ("syntax errors", `Quick, test_syntax_errors);
    ("pretty-print fixpoint", `Quick, test_pretty_print_reparses);
  ]
