(* Workload generators: determinism, well-formedness, scaling, and the
   match-richness properties the benchmarks rely on. *)

open Xaos_core
module Xmark = Xaos_workloads.Xmark
module Randgen = Xaos_workloads.Randgen
module Prng = Xaos_workloads.Prng
module Dom = Xaos_xml.Dom

let test_prng_determinism () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done;
  let c = Prng.create 8 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Prng.int a 1000 <> Prng.int c 1000 then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_prng_bounds () =
  let rng = Prng.create 3 in
  for _ = 1 to 1000 do
    let x = Prng.int rng 10 in
    if x < 0 || x >= 10 then Alcotest.failf "out of range: %d" x;
    let y = Prng.range rng 5 7 in
    if y < 5 || y > 7 then Alcotest.failf "range violated: %d" y;
    let f = Prng.float rng 2.0 in
    if f < 0. || f >= 2.0 then Alcotest.failf "float out of range: %f" f
  done

let test_prng_split_independent () =
  let rng = Prng.create 9 in
  let child = Prng.split rng in
  (* consuming the child must not change the parent's continuation *)
  let rng2 = Prng.create 9 in
  let _child2 = Prng.split rng2 in
  for _ = 1 to 10 do
    ignore (Prng.int child 100)
  done;
  Alcotest.(check int) "parent unaffected by child use" (Prng.int rng2 1000)
    (Prng.int rng 1000)

let test_xmark_well_formed () =
  let s = Xmark.to_string (Xmark.config 0.005) in
  let doc = Dom.of_string s in
  Alcotest.(check bool) "has elements" true (doc.Dom.element_count > 500);
  Alcotest.(check string) "root is site" "site"
    (match Dom.element_children doc.Dom.root with
    | [ site ] -> site.Dom.tag
    | _ -> "?")

let test_xmark_deterministic () =
  let a = Xmark.to_string (Xmark.config 0.002) in
  let b = Xmark.to_string (Xmark.config 0.002) in
  Alcotest.(check bool) "same string" true (String.equal a b);
  let c = Xmark.to_string (Xmark.config ~seed:99 0.002) in
  Alcotest.(check bool) "different seed differs" true (not (String.equal a c))

let test_xmark_scaling () =
  let count scale =
    let n = ref 0 in
    ignore (Xmark.generate (Xmark.config scale) (fun _ -> incr n));
    !n
  in
  let small = count 0.002 and big = count 0.008 in
  (* event count (hence element count) should scale roughly linearly *)
  let ratio = float_of_int big /. float_of_int small in
  Alcotest.(check bool)
    (Printf.sprintf "scales linearly (ratio %.2f)" ratio)
    true
    (ratio > 2.8 && ratio < 5.5)

let test_xmark_counts () =
  let c = Xmark.counts (Xmark.config 1.0) in
  Alcotest.(check int) "categories" 1000 c.Xmark.categories;
  Alcotest.(check int) "items" 21750 c.Xmark.items;
  Alcotest.(check int) "persons" 25500 c.Xmark.persons

let test_xmark_generate_matches_to_string () =
  let cfg = Xmark.config 0.002 in
  let via_string = Xmark.to_string cfg in
  let events = ref [] in
  let n = Xmark.generate cfg (fun ev -> events := ev :: !events) in
  let via_events =
    Xaos_xml.Serialize.events_to_string (List.rev !events)
  in
  Alcotest.(check string) "same output" via_string via_events;
  let doc = Dom.of_string via_string in
  Alcotest.(check int) "count = elements (excluding virtual root)"
    (doc.Dom.element_count - 1) n

let test_xmark_paper_query_selectivity () =
  let s = Xmark.to_string (Xmark.config 0.01) in
  let q = Query.compile_exn Xmark.paper_query in
  let result, stats = Query.run_string_with_stats q s in
  (* Table 3: over 99.5% of elements are discarded as irrelevant. *)
  Alcotest.(check bool) "over 99.5% discarded" true
    (Stats.discarded_fraction stats > 0.995);
  Alcotest.(check bool) "some results exist" true
    (result.Result_set.items <> [])

let test_xmark_has_listitems_outside_categories () =
  (* the selectivity of Figure 5's query depends on most listitems NOT
     having a category ancestor *)
  let s = Xmark.to_string (Xmark.config 0.02) in
  let all = Query.compile_exn "//listitem" in
  let under_cat = Query.compile_exn "//category//listitem" in
  let n_all = List.length (Query.run_string all s).Result_set.items in
  let n_cat = List.length (Query.run_string under_cat s).Result_set.items in
  Alcotest.(check bool)
    (Printf.sprintf "listitems mostly outside categories (%d vs %d)" n_all n_cat)
    true
    (n_all > 4 * n_cat && n_cat > 0)

let test_randgen_spec_size () =
  for seed = 1 to 20 do
    let spec = Randgen.generate_spec ~seed () in
    Alcotest.(check int)
      (Printf.sprintf "size 6 (seed %d)" seed)
      6
      (Xaos_xpath.Ast.step_count spec.Randgen.query)
  done

let test_randgen_fragment_matches () =
  (* embedding just the fragment as the document must yield a match *)
  for seed = 1 to 20 do
    let spec = Randgen.generate_spec ~seed () in
    let doc_s = Randgen.fragment_string spec.Randgen.fragment in
    let q = Query.compile_exn (Xaos_xpath.Ast.to_string spec.Randgen.query) in
    let r = Query.run_string q doc_s in
    Alcotest.(check bool)
      (Printf.sprintf "witness matches (seed %d)" seed)
      true
      (r.Result_set.items <> [])
  done

let test_randgen_documents_have_many_matches () =
  let spec = Randgen.generate_spec ~seed:5 () in
  let q = Query.compile_exn (Xaos_xpath.Ast.to_string spec.Randgen.query) in
  let small = Randgen.document_string spec ~seed:1 ~elements:1000 in
  let large = Randgen.document_string spec ~seed:1 ~elements:4000 in
  let n_small = List.length (Query.run_string q small).Result_set.items in
  let n_large = List.length (Query.run_string q large).Result_set.items in
  Alcotest.(check bool)
    (Printf.sprintf "matches grow with size (%d -> %d)" n_small n_large)
    true
    (n_small > 0 && n_large > 2 * n_small)

let test_randgen_document_element_count () =
  let spec = Randgen.generate_spec ~seed:2 () in
  let events = ref [] in
  let n = Randgen.document spec ~seed:3 ~elements:500 (fun e -> events := e :: !events) in
  Alcotest.(check bool) "at least the requested size" true (n >= 500);
  let doc = Dom.of_events (List.rev !events) in
  Alcotest.(check int) "count consistent" (doc.Dom.element_count - 1) n

let test_randgen_deterministic () =
  let spec1 = Randgen.generate_spec ~seed:11 () in
  let spec2 = Randgen.generate_spec ~seed:11 () in
  Alcotest.(check bool) "same query" true
    (Xaos_xpath.Ast.equal spec1.Randgen.query spec2.Randgen.query);
  let d1 = Randgen.document_string spec1 ~seed:4 ~elements:300 in
  let d2 = Randgen.document_string spec2 ~seed:4 ~elements:300 in
  Alcotest.(check bool) "same document" true (String.equal d1 d2)

let suite =
  [
    ("prng determinism", `Quick, test_prng_determinism);
    ("prng bounds", `Quick, test_prng_bounds);
    ("prng split", `Quick, test_prng_split_independent);
    ("xmark well-formed", `Quick, test_xmark_well_formed);
    ("xmark deterministic", `Quick, test_xmark_deterministic);
    ("xmark scaling", `Quick, test_xmark_scaling);
    ("xmark counts", `Quick, test_xmark_counts);
    ("xmark generate/to_string", `Quick, test_xmark_generate_matches_to_string);
    ("xmark selectivity", `Slow, test_xmark_paper_query_selectivity);
    ("xmark listitem distribution", `Slow, test_xmark_has_listitems_outside_categories);
    ("randgen spec size", `Quick, test_randgen_spec_size);
    ("randgen witness matches", `Quick, test_randgen_fragment_matches);
    ("randgen match growth", `Quick, test_randgen_documents_have_many_matches);
    ("randgen element count", `Quick, test_randgen_document_element_count);
    ("randgen deterministic", `Quick, test_randgen_deterministic);
  ]
