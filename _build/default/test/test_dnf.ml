(* DNF expansion of or-predicates (paper, Section 5.2). *)

module Ast = Xaos_xpath.Ast
module Parser = Xaos_xpath.Parser
module Dnf = Xaos_xpath.Dnf

let expand input =
  List.map Ast.to_string (Dnf.expand (Parser.parse input))

let check input expected = Alcotest.(check (list string)) input expected (expand input)

let test_no_or_is_identity () =
  let p = Parser.parse "/a[b and c]/d" in
  match Dnf.expand p with
  | [ only ] -> Alcotest.(check bool) "same path" true (Ast.equal p only)
  | other -> Alcotest.failf "expected singleton, got %d" (List.length other)

let test_simple_or () =
  check "/a[b or c]"
    [ "/child::a[child::b]"; "/child::a[child::c]" ]

let test_or_under_and () =
  check "/a[x and (b or c)]"
    [ "/child::a[child::x and child::b]"; "/child::a[child::x and child::c]" ]

let test_nested_or () =
  check "/a[b or c or d]"
    [ "/child::a[child::b]"; "/child::a[child::c]"; "/child::a[child::d]" ]

let test_or_in_two_steps_multiplies () =
  Alcotest.(check int) "2x2 disjuncts" 4
    (List.length (expand "/a[b or c]/d[e or f]"))

let test_or_inside_nested_path () =
  check "/a[b[c or d]]"
    [ "/child::a[child::b[child::c]]"; "/child::a[child::b[child::d]]" ]

let test_expansion_preserves_marks () =
  let disjuncts = Dnf.expand (Parser.parse "/$a[b or c]") in
  List.iter
    (fun d -> Alcotest.(check bool) "marked" true (Ast.has_marks d))
    disjuncts

let test_bounded_ok () =
  match Dnf.expand_bounded ~limit:4 (Parser.parse "/a[b or c]/d[e or f]") with
  | Ok l -> Alcotest.(check int) "4 fits" 4 (List.length l)
  | Error e -> Alcotest.fail e

let test_bounded_overflow () =
  match Dnf.expand_bounded ~limit:3 (Parser.parse "/a[b or c]/d[e or f]") with
  | Ok _ -> Alcotest.fail "expected overflow"
  | Error _ -> ()

let suite =
  [
    ("no or is identity", `Quick, test_no_or_is_identity);
    ("simple or", `Quick, test_simple_or);
    ("or under and", `Quick, test_or_under_and);
    ("three-way or", `Quick, test_nested_or);
    ("or in two steps", `Quick, test_or_in_two_steps_multiplies);
    ("or inside nested path", `Quick, test_or_inside_nested_path);
    ("marks preserved", `Quick, test_expansion_preserves_marks);
    ("bounded ok", `Quick, test_bounded_ok);
    ("bounded overflow", `Quick, test_bounded_overflow);
  ]
