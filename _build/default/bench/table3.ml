(* Table 3: number (and fraction) of elements discarded by χαος as not
   relevant while processing XMark documents with
   //listitem/ancestor::category//name.

   The paper reports, for scales 0.03125..4, that fewer than 0.2 % of the
   elements are stored — the engine's looking-for filtering drops
   everything without a category ancestor. We print the same row shape:
   scale, document size, element count, % discarded. *)

open Xaos_core

let run ~scales () =
  Util.print_header "Table 3: elements discarded by the relevance filter";
  let rows =
    List.map
      (fun scale ->
        let cfg = Xaos_workloads.Xmark.config scale in
        let buf = Buffer.create (1 lsl 20) in
        let _n =
          Xaos_workloads.Xmark.generate cfg
            (Xaos_xml.Serialize.event_to_buffer buf)
        in
        let doc_s = Buffer.contents buf in
        let q = Query.compile_exn Xaos_workloads.Xmark.paper_query in
        let _result, stats = Query.run_string_with_stats q doc_s in
        ( scale,
          Util.mb (String.length doc_s),
          stats.Stats.elements_total,
          stats.Stats.elements_discarded,
          Stats.discarded_fraction stats ))
      scales
  in
  Util.print_table
    ~columns:[ "scale"; "doc size MB"; "elements"; "discarded"; "% discarded" ]
    (List.map
       (fun (scale, size, total, discarded, frac) ->
         [ Printf.sprintf "%.4g" scale;
           Printf.sprintf "%.2f" size;
           Util.fint total;
           Util.fint discarded;
           Util.fpct frac ])
       rows);
  Util.note "paper: > 99.8%% discarded at every scale (less than .2%% stored)";
  rows
